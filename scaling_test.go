package softlora

import (
	"context"
	"os"
	"runtime"
	"testing"
	"time"
)

// TestGatewayBatchScalingFloor asserts the multi-core throughput contract
// behind ProcessBatch: on a machine with at least four cores, the 8-uplink
// batch at Workers = 4 must run at least 2.5× faster than at Workers = 1.
// The per-worker pipelines share nothing but the read-only plans and the
// commit stage, so anything below that floor means a serialization bug
// (shared scratch, lock contention, a worker pool that stopped fanning
// out) — exactly the regressions a single-core test run cannot see.
//
// Wall-clock assertions are inherently machine-sensitive, so the test is
// opt-in: it runs only with SOFTLORA_SCALING_TEST=1 (the CI scaling job
// sets it on a multi-core runner) and skips on fewer than four CPUs.
func TestGatewayBatchScalingFloor(t *testing.T) {
	if os.Getenv("SOFTLORA_SCALING_TEST") == "" {
		t.Skip("set SOFTLORA_SCALING_TEST=1 to run the multi-core scaling floor")
	}
	if n := runtime.NumCPU(); n < 4 {
		t.Skipf("need at least 4 CPUs for the 4-worker floor, have %d", n)
	}
	timeBatch := func(workers int) time.Duration {
		gw, jobs := batchFixture(t, workers, 8)
		ctx := context.Background()
		check := func(rs []BatchResult) {
			for i, r := range rs {
				if r.Err != nil {
					t.Fatalf("workers=%d uplink %d: %v", workers, i, r.Err)
				}
			}
		}
		check(gw.ProcessBatch(ctx, jobs)) // warm the per-worker scratch
		best := time.Duration(1<<63 - 1)
		for rep := 0; rep < 5; rep++ {
			start := time.Now()
			check(gw.ProcessBatch(ctx, jobs))
			if el := time.Since(start); el < best {
				best = el
			}
		}
		return best
	}
	t1 := timeBatch(1)
	t4 := timeBatch(4)
	speedup := float64(t1) / float64(t4)
	t.Logf("workers-1 %v, workers-4 %v, speedup %.2fx", t1, t4, speedup)
	if speedup < 2.5 {
		t.Errorf("4-worker batch only %.2fx faster than 1-worker (%v vs %v), floor is 2.5x",
			speedup, t4, t1)
	}
}
