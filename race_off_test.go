//go:build !race

package softlora

const raceEnabled = false
