package softlora

import (
	"bytes"
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"
)

// batchFixture renders a batch of uplink captures through a deterministic
// simulation and returns a fresh gateway (with the given worker count) plus
// the jobs. Rendering uses its own rand stream so every fixture is
// identical regardless of worker count.
func batchFixture(t *testing.T, workers, nUplinks int) (*Gateway, []Uplink) {
	return batchFixtureCfg(t, workers, nUplinks, nil)
}

// batchFixtureCfg is batchFixture with a Config hook applied before the
// gateway is built, for tests toggling knobs (OnsetFloat64) that must not
// change results.
func batchFixtureCfg(t *testing.T, workers, nUplinks int, mutate func(*Config)) (*Gateway, []Uplink) {
	t.Helper()
	rng := rand.New(rand.NewSource(77))
	cfg := Config{Rand: rng, FB: FBDechirpFFT, Workers: workers}
	if mutate != nil {
		mutate(&cfg)
	}
	gw, err := NewGateway(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sim := &Simulation{Gateway: gw, NoiseFloordBm: -100, Rand: rng}
	jobs := make([]Uplink, nUplinks)
	now := 10.0
	for i := range jobs {
		dev := NewSimDevice("dev", -23, 40, 14, 80, 100)
		gw.EnrollDevice(dev.ID, dev.Transmitter.BiasHz(gw.Params()))
		dev.Record(now-1, []byte{byte(i)})
		cap, records, err := sim.RenderUplink(dev, now)
		if err != nil {
			t.Fatal(err)
		}
		jobs[i] = Uplink{Capture: cap, ClaimedID: dev.ID, Records: records}
		now += 2
	}
	return gw, jobs
}

func TestProcessBatchReportsAllUplinks(t *testing.T) {
	gw, jobs := batchFixture(t, 4, 6)
	results := gw.ProcessBatch(context.Background(), jobs)
	if len(results) != len(jobs) {
		t.Fatalf("got %d results for %d uplinks", len(results), len(jobs))
	}
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("uplink %d: %v", i, r.Err)
		}
		if r.Report == nil {
			t.Fatalf("uplink %d: nil report", i)
		}
		if r.Report.Verdict != VerdictGenuine {
			t.Errorf("uplink %d: verdict %v", i, r.Report.Verdict)
		}
		if ppm := r.Report.FrequencyBiasPPM; math.Abs(ppm-(-23)) > 1 {
			t.Errorf("uplink %d: bias %.2f ppm, want ≈ -23", i, ppm)
		}
	}
}

// TestProcessBatchDeterministicAcrossWorkerCounts is the reproducibility
// contract: per-uplink seeds are derived from Config.Rand, so results must
// not depend on the worker pool size or scheduling order.
func TestProcessBatchDeterministicAcrossWorkerCounts(t *testing.T) {
	gw1, jobs1 := batchFixture(t, 1, 8)
	gw8, jobs8 := batchFixture(t, 8, 8)
	res1 := gw1.ProcessBatch(context.Background(), jobs1)
	res8 := gw8.ProcessBatch(context.Background(), jobs8)
	for i := range res1 {
		if (res1[i].Err == nil) != (res8[i].Err == nil) {
			t.Fatalf("uplink %d: error mismatch: %v vs %v", i, res1[i].Err, res8[i].Err)
		}
		if res1[i].Err != nil {
			continue
		}
		a, b := res1[i].Report, res8[i].Report
		if a.FrequencyBiasHz != b.FrequencyBiasHz || a.ArrivalTime != b.ArrivalTime || a.OnsetSample != b.OnsetSample {
			t.Errorf("uplink %d: 1-worker %+v vs 8-worker %+v", i, a, b)
		}
	}
}

// TestProcessBatchSameDeviceDeterministicCommit is the ordered-commit
// contract on the paper's core security decision: a batch containing
// several uplinks from the SAME device must yield identical verdicts and
// an identical serialized bias database for every worker count. Under the
// old interleaved per-worker Check, the order the device's frames folded
// into the EWMA database depended on goroutine scheduling, so the learned
// state (and potentially the verdicts) varied run to run; the two-stage
// pipeline commits in uplink-index order after the PHY stage, making both
// bit-identical.
func TestProcessBatchSameDeviceDeterministicCommit(t *testing.T) {
	run := func(workers int) ([]Verdict, []byte) {
		t.Helper()
		// batchFixture renders every uplink from the same device "dev";
		// the per-uplink noise draws differ, so each frame carries a
		// different FB estimate and the database fold order matters.
		gw, jobs := batchFixture(t, workers, 8)
		verdicts := make([]Verdict, len(jobs))
		for i, r := range gw.ProcessBatch(context.Background(), jobs) {
			if r.Err != nil {
				t.Fatalf("workers=%d uplink %d: %v", workers, i, r.Err)
			}
			verdicts[i] = r.Report.Verdict
		}
		var buf bytes.Buffer
		if err := gw.SaveBiasDatabase(&buf); err != nil {
			t.Fatal(err)
		}
		return verdicts, buf.Bytes()
	}
	wantVerdicts, wantDB := run(1)
	for _, workers := range []int{4, 8} {
		verdicts, db := run(workers)
		for i := range verdicts {
			if verdicts[i] != wantVerdicts[i] {
				t.Errorf("workers=%d uplink %d: verdict %s, want %s (workers=1)",
					workers, i, verdicts[i], wantVerdicts[i])
			}
		}
		if !bytes.Equal(db, wantDB) {
			t.Errorf("workers=%d: serialized bias database differs from workers=1:\n%s\nvs\n%s",
				workers, db, wantDB)
		}
	}
}

// TestProcessBatchDeterministicAcrossFloatLanes pins the float32 decision
// lanes' bit-identity contract: the AIC detector's coarse/mid stages run in
// float32 by default and in float64 with Config.OnsetFloat64, but both
// lanes feed the same dense float64 final refinement, so verdicts and the
// serialized bias database must be byte-identical with the toggle on or
// off — and across worker counts, since the lanes live in per-worker
// pipelines.
func TestProcessBatchDeterministicAcrossFloatLanes(t *testing.T) {
	run := func(workers int, f64 bool) ([]Verdict, []byte) {
		t.Helper()
		gw, jobs := batchFixtureCfg(t, workers, 8, func(cfg *Config) { cfg.OnsetFloat64 = f64 })
		verdicts := make([]Verdict, len(jobs))
		for i, r := range gw.ProcessBatch(context.Background(), jobs) {
			if r.Err != nil {
				t.Fatalf("workers=%d float64=%v uplink %d: %v", workers, f64, i, r.Err)
			}
			verdicts[i] = r.Report.Verdict
		}
		var buf bytes.Buffer
		if err := gw.SaveBiasDatabase(&buf); err != nil {
			t.Fatal(err)
		}
		return verdicts, buf.Bytes()
	}
	wantVerdicts, wantDB := run(1, false)
	for _, workers := range []int{1, 4} {
		for _, f64 := range []bool{false, true} {
			if workers == 1 && !f64 {
				continue
			}
			verdicts, db := run(workers, f64)
			for i := range verdicts {
				if verdicts[i] != wantVerdicts[i] {
					t.Errorf("workers=%d float64=%v uplink %d: verdict %s, want %s",
						workers, f64, i, verdicts[i], wantVerdicts[i])
				}
			}
			if !bytes.Equal(db, wantDB) {
				t.Errorf("workers=%d float64=%v: serialized bias database differs from the float32 workers=1 run",
					workers, f64)
			}
		}
	}
}

func TestProcessBatchRepeatable(t *testing.T) {
	// Two gateways built from the same seed replay the same batch
	// SEQUENCE bit for bit, while successive batches within one gateway
	// draw fresh per-uplink randomness (the batch ordinal is mixed into
	// the job seeds, like the serial path advancing Config.Rand).
	gwA, jobsA := batchFixture(t, 2, 3)
	gwB, jobsB := batchFixture(t, 2, 3)
	a1 := gwA.ProcessBatch(context.Background(), jobsA)
	a2 := gwA.ProcessBatch(context.Background(), jobsA)
	b1 := gwB.ProcessBatch(context.Background(), jobsB)
	b2 := gwB.ProcessBatch(context.Background(), jobsB)
	sameDraws := true
	for i := range a1 {
		if a1[i].Err != nil || a2[i].Err != nil || b1[i].Err != nil || b2[i].Err != nil {
			t.Fatalf("uplink %d errored: %v / %v / %v / %v", i, a1[i].Err, a2[i].Err, b1[i].Err, b2[i].Err)
		}
		if a1[i].Report.FrequencyBiasHz != b1[i].Report.FrequencyBiasHz ||
			a2[i].Report.FrequencyBiasHz != b2[i].Report.FrequencyBiasHz {
			t.Errorf("uplink %d: same seed and batch ordinal produced different bias", i)
		}
		if a1[i].Report.FrequencyBiasHz != a2[i].Report.FrequencyBiasHz {
			sameDraws = false
		}
	}
	if sameDraws {
		t.Error("successive batches repeated identical stochastic draws for every uplink")
	}
}

func TestProcessBatchCancelledContext(t *testing.T) {
	gw, jobs := batchFixture(t, 2, 4)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	results := gw.ProcessBatch(ctx, jobs)
	for i, r := range results {
		if !errors.Is(r.Err, context.Canceled) {
			t.Errorf("uplink %d: err = %v, want context.Canceled", i, r.Err)
		}
	}
}

func TestProcessBatchNilCapture(t *testing.T) {
	gw, jobs := batchFixture(t, 2, 2)
	jobs[1].Capture = nil
	results := gw.ProcessBatch(context.Background(), jobs)
	if results[0].Err != nil {
		t.Errorf("uplink 0: %v", results[0].Err)
	}
	if !errors.Is(results[1].Err, ErrNilCapture) {
		t.Errorf("uplink 1: err = %v, want ErrNilCapture", results[1].Err)
	}
}

func TestProcessBatchEmpty(t *testing.T) {
	gw, _ := batchFixture(t, 2, 1)
	if res := gw.ProcessBatch(context.Background(), nil); len(res) != 0 {
		t.Errorf("empty batch returned %d results", len(res))
	}
}

// TestUplinkBatchMatchesDevices drives the simulation-level batch API end
// to end: every device's records must come back timestamped and genuine.
func TestUplinkBatchMatchesDevices(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	gw, err := NewGateway(Config{Rand: rng, FB: FBDechirpFFT, Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	sim := &Simulation{Gateway: gw, NoiseFloordBm: -100, Rand: rng}
	var ups []SimUplink
	now := 10.0
	for i := 0; i < 5; i++ {
		dev := NewSimDevice("node", -23, 40, 14, 80, 100)
		gw.EnrollDevice(dev.ID, dev.Transmitter.BiasHz(gw.Params()))
		dev.Record(now-2, []byte{byte(i)})
		ups = append(ups, SimUplink{Device: dev, Time: now})
		now += 3
	}
	results, err := sim.UplinkBatch(context.Background(), ups)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("uplink %d: %v", i, r.Err)
		}
		if !r.Report.Accepted {
			t.Errorf("uplink %d rejected", i)
		}
		if len(r.Report.Timestamps) != len(r.Records) {
			t.Errorf("uplink %d: %d timestamps for %d records", i, len(r.Report.Timestamps), len(r.Records))
		}
		want := ups[i].Time - 2
		if got := r.Report.Timestamps[0]; math.Abs(got-want) > 0.01 {
			t.Errorf("uplink %d: reconstructed %f, want ≈ %f", i, got, want)
		}
	}
}

// TestProcessBatchConcurrentStress exists primarily for `go test -race
// -run Batch`: many workers hammering the shared replay database and their
// private pipelines at once.
func TestProcessBatchConcurrentStress(t *testing.T) {
	gw, jobs := batchFixture(t, 8, 16)
	for round := 0; round < 2; round++ {
		for i, r := range gw.ProcessBatch(context.Background(), jobs) {
			if r.Err != nil {
				t.Fatalf("round %d uplink %d: %v", round, i, r.Err)
			}
		}
	}
}
