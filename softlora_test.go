package softlora

import (
	"bytes"
	"errors"
	"math"
	"math/rand"
	"testing"

	"softlora/internal/attack"
	"softlora/internal/chip"
	"softlora/internal/lora"
	"softlora/internal/radio"
	"softlora/internal/sdr"
	"softlora/internal/timestamp"
)

func testGateway(t *testing.T, rng *rand.Rand) *Gateway {
	t.Helper()
	gw, err := NewGateway(Config{Rand: rng})
	if err != nil {
		t.Fatal(err)
	}
	return gw
}

func TestNewGatewayValidation(t *testing.T) {
	if _, err := NewGateway(Config{}); !errors.Is(err, ErrNilRand) {
		t.Errorf("err = %v", err)
	}
	rng := rand.New(rand.NewSource(1))
	if _, err := NewGateway(Config{Rand: rng, Onset: "bogus"}); !errors.Is(err, ErrBadMethod) {
		t.Errorf("err = %v", err)
	}
	if _, err := NewGateway(Config{Rand: rng, FB: "bogus"}); !errors.Is(err, ErrBadMethod) {
		t.Errorf("err = %v", err)
	}
	bad := lora.DefaultParams(7)
	bad.SF = 99
	if _, err := NewGateway(Config{Rand: rng, Params: bad}); err == nil {
		t.Error("expected error for invalid params")
	}
}

func TestGatewayDefaults(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	gw := testGateway(t, rng)
	if gw.Params().SF != 7 {
		t.Errorf("default SF = %d", gw.Params().SF)
	}
}

func TestEndToEndGenuineUplink(t *testing.T) {
	rng := rand.New(rand.NewSource(130))
	gw := testGateway(t, rng)
	sim := &Simulation{Gateway: gw, NoiseFloordBm: -100, Rand: rng}
	dev := NewSimDevice("node-1", -25, 40, 14, 80, 150)
	gw.EnrollDevice("node-1", dev.Transmitter.BiasHz(gw.Params()))

	// Sensor data at t=50 and t=80; uplink at t=100.
	dev.Record(50, []byte{0xA1})
	dev.Record(80, []byte{0xA2})
	report, records, err := sim.Uplink(dev, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 2 {
		t.Fatalf("records = %d", len(records))
	}
	if report.Verdict != VerdictGenuine {
		t.Errorf("verdict = %s", report.Verdict)
	}
	if !report.Accepted {
		t.Error("genuine frame rejected")
	}
	// Arrival time ≈ 100 (µs-level propagation + onset error).
	if math.Abs(report.ArrivalTime-100) > 1e-4 {
		t.Errorf("arrival = %f, want ~100", report.ArrivalTime)
	}
	// Reconstructed timestamps within the sync-free error budget
	// (drift over ≤50 s at 40 ppm = 2 ms, plus quantization).
	if math.Abs(report.Timestamps[0]-50) > 0.005 {
		t.Errorf("timestamp[0] = %f, want ~50", report.Timestamps[0])
	}
	if math.Abs(report.Timestamps[1]-80) > 0.005 {
		t.Errorf("timestamp[1] = %f, want ~80", report.Timestamps[1])
	}
	// Estimated bias ≈ −25 ppm.
	if math.Abs(report.FrequencyBiasPPM+25) > 1 {
		t.Errorf("bias = %f ppm, want ~-25", report.FrequencyBiasPPM)
	}
}

func TestEndToEndReplayDetected(t *testing.T) {
	// Full paper pipeline: jam-and-replay in the building, SoftLoRa
	// detects the replay and refuses to timestamp the data.
	rng := rand.New(rand.NewSource(131))
	gw := testGateway(t, rng)
	p := gw.Params()

	b := radio.DefaultBuilding()
	device := b.FixedNode()
	gwPos, _ := b.Column("C3", 6)
	devGwLoss := b.LossdB(device, gwPos)

	scn := &attack.Scenario{
		Params:     p,
		SampleRate: sdr.DefaultSampleRate,
		Rand:       rng,
		Gateway:    chip.NewReceiver(p),

		DeviceTxPowerdBm:     14,
		DeviceGatewayLossdB:  devGwLoss,
		GatewayNoiseFloordBm: b.NoiseFloordBm,

		JammerTxPowerdBm:    14.1,
		JammerGatewayLossdB: 40,
		JamOnsetAfter:       attack.PickJamOnset(chip.NewReceiver(p), 20, 0.5),

		DeviceEaveLossdB:      40,
		JammerEaveLossdB:      devGwLoss,
		EaveNoiseFloordBm:     b.NoiseFloordBm,
		ReplayerGatewayLossdB: 40,
		Replayer: attack.Replayer{
			FrequencyBiasHz: -620,
			TxPowerdBm:      7,
			Delay:           30, // inject a 30 s timestamp error
		},
	}

	const deviceBias = -22e3
	gw.EnrollDevice("node-1", deviceBias)

	frame := lora.Frame{Params: p, Payload: []byte("data-to-delay-12345")}
	res, err := scn.Execute(frame, lora.Impairments{FrequencyBias: deviceBias, InitialPhase: 0.8}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stealthy {
		t.Fatalf("jamming not stealthy: %v", res.JamOutcome)
	}

	// The gateway's SDR captures the REPLAYED emission.
	sim := &Simulation{Gateway: gw, NoiseFloordBm: b.NoiseFloordBm, Rand: rng}
	cap, err := sim.CaptureEmission(res.ReplayEmission)
	if err != nil {
		t.Fatal(err)
	}
	rec := timestamp.FrameRecord{Elapsed: 5000} // datum taken 5 s before TX
	report, err := gw.ProcessUplink(cap, "node-1", []timestamp.FrameRecord{rec})
	if err != nil {
		t.Fatal(err)
	}
	if report.Verdict != VerdictReplay {
		t.Fatalf("verdict = %s, want replay (bias %.0f Hz vs enrolled %.0f)",
			report.Verdict, report.FrequencyBiasHz, deviceBias)
	}
	if report.Accepted || report.Timestamps != nil {
		t.Error("replayed frame must not produce timestamps")
	}
}

func TestNaiveGatewayFooledSoftLoRaNot(t *testing.T) {
	// The contrast the paper draws: arrival-time timestamping alone is off
	// by τ; the SoftLoRa verdict prevents using it.
	rng := rand.New(rand.NewSource(132))
	gw := testGateway(t, rng)
	gw.EnrollDevice("node-1", -22e3)

	const t0, tau = 10.0, 60.0
	p := gw.Params()
	spec := lora.Frame{Params: p, Payload: []byte("x")}
	replayer := attack.Replayer{FrequencyBiasHz: -700, Delay: tau}
	wf, err := spec.Modulate(lora.Impairments{FrequencyBias: -22e3}, sdr.DefaultSampleRate)
	if err != nil {
		t.Fatal(err)
	}
	replayed := replayer.Reemit(wf, sdr.DefaultSampleRate)
	em := radio.Emission{
		Waveform:   replayed,
		StartTime:  t0 + tau,
		TxPowerdBm: 0,
		PathLossdB: 40,
		Distance:   1,
	}
	sim := &Simulation{Gateway: gw, NoiseFloordBm: -110, Rand: rng}
	cap, err := sim.CaptureEmission(em)
	if err != nil {
		t.Fatal(err)
	}
	rec := timestamp.FrameRecord{Elapsed: 0}
	report, err := gw.ProcessUplink(cap, "node-1", []timestamp.FrameRecord{rec})
	if err != nil {
		t.Fatal(err)
	}
	// A naive gateway would stamp the datum at arrival ≈ t0+tau: wrong by τ.
	naive := report.ArrivalTime
	if math.Abs(naive-(t0+tau)) > 0.01 {
		t.Errorf("naive arrival = %f, want ~%f", naive, t0+tau)
	}
	// SoftLoRa flags it instead.
	if report.Verdict != VerdictReplay {
		t.Errorf("verdict = %s, want replay", report.Verdict)
	}
}

func TestBiasDatabasePersistence(t *testing.T) {
	rng := rand.New(rand.NewSource(133))
	gw := testGateway(t, rng)
	gw.EnrollDevice("node-1", -21e3)
	var buf bytes.Buffer
	if err := gw.SaveBiasDatabase(&buf); err != nil {
		t.Fatal(err)
	}
	gw2 := testGateway(t, rng)
	if err := gw2.LoadBiasDatabase(&buf); err != nil {
		t.Fatal(err)
	}
	mean, frames, ok := gw2.DeviceBias("node-1")
	if !ok || mean != -21e3 || frames == 0 {
		t.Errorf("bias = %f frames = %d ok = %v", mean, frames, ok)
	}
	if _, _, ok := gw2.DeviceBias("missing"); ok {
		t.Error("missing device reported present")
	}
}

func TestProcessUplinkCaptureTooShort(t *testing.T) {
	rng := rand.New(rand.NewSource(134))
	gw := testGateway(t, rng)
	// A capture with a frame onset too close to the end: no second chirp.
	p := gw.Params()
	spec := lora.ChirpSpec{SF: p.SF, Bandwidth: p.Bandwidth}
	n := int(p.SamplesPerChirp(sdr.DefaultSampleRate))
	iq := make([]complex128, 2*n)
	spec.AddTo(iq, sdr.DefaultSampleRate, float64(n)/sdr.DefaultSampleRate)
	// Light noise so detection works.
	for i := range iq {
		iq[i] += complex(rng.NormFloat64()*0.01, rng.NormFloat64()*0.01)
	}
	cap := &radio.Capture{IQ: iq, Rate: sdr.DefaultSampleRate}
	if _, err := gw.ProcessUplink(cap, "n", nil); !errors.Is(err, ErrCaptureShort) {
		t.Errorf("err = %v, want ErrCaptureShort", err)
	}
}

func TestSimulationRequiresRand(t *testing.T) {
	gw := testGateway(t, rand.New(rand.NewSource(3)))
	sim := &Simulation{Gateway: gw}
	dev := NewSimDevice("d", -20, 40, 14, 80, 10)
	if _, _, err := sim.Uplink(dev, 0); !errors.Is(err, ErrNilRand) {
		t.Errorf("err = %v", err)
	}
	if _, err := sim.CaptureEmission(radio.Emission{}); !errors.Is(err, ErrNilRand) {
		t.Errorf("err = %v", err)
	}
}

func TestGatewayWithLeastSquaresEstimator(t *testing.T) {
	rng := rand.New(rand.NewSource(135))
	gw, err := NewGateway(Config{Rand: rng, FB: FBLeastSquares})
	if err != nil {
		t.Fatal(err)
	}
	sim := &Simulation{Gateway: gw, NoiseFloordBm: -100, Rand: rng}
	dev := NewSimDevice("n", -22, 40, 14, 80, 100)
	gw.EnrollDevice("n", dev.Transmitter.BiasHz(gw.Params()))
	dev.Record(99, nil)
	report, _, err := sim.Uplink(dev, 100)
	if err != nil {
		t.Fatal(err)
	}
	if report.Verdict != VerdictGenuine {
		t.Errorf("verdict = %s (bias %.0f Hz)", report.Verdict, report.FrequencyBiasHz)
	}
}

func TestGatewayWithDechirpFFTEstimator(t *testing.T) {
	rng := rand.New(rand.NewSource(136))
	gw, err := NewGateway(Config{Rand: rng, FB: FBDechirpFFT})
	if err != nil {
		t.Fatal(err)
	}
	sim := &Simulation{Gateway: gw, NoiseFloordBm: -100, Rand: rng}
	dev := NewSimDevice("n", -22, 40, 14, 80, 100)
	gw.EnrollDevice("n", dev.Transmitter.BiasHz(gw.Params()))
	dev.Record(99, nil)
	report, _, err := sim.Uplink(dev, 100)
	if err != nil {
		t.Fatal(err)
	}
	if report.Verdict != VerdictGenuine {
		t.Errorf("verdict = %s (bias %.0f Hz)", report.Verdict, report.FrequencyBiasHz)
	}
}

func TestGatewayEnvelopeOnset(t *testing.T) {
	rng := rand.New(rand.NewSource(137))
	gw, err := NewGateway(Config{Rand: rng, Onset: OnsetEnvelope})
	if err != nil {
		t.Fatal(err)
	}
	sim := &Simulation{Gateway: gw, NoiseFloordBm: -105, Rand: rng}
	dev := NewSimDevice("n", -24, 40, 14, 70, 50)
	gw.EnrollDevice("n", dev.Transmitter.BiasHz(gw.Params()))
	dev.Record(9.5, nil)
	report, _, err := sim.Uplink(dev, 10)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(report.ArrivalTime-10) > 1e-4 {
		t.Errorf("arrival = %f", report.ArrivalTime)
	}
}

func TestSDRBiasDoesNotBreakDetection(t *testing.T) {
	// The gateway's own δRx shifts every estimate equally, so replay
	// detection (which compares against learned history from the SAME
	// receiver) is unaffected — the paper's point that δTx need not be
	// isolated (§7.1).
	rng := rand.New(rand.NewSource(138))
	recv := &sdr.Receiver{FrequencyBias: 5e3, ADCBits: 8, Rand: rng}
	gw, err := NewGateway(Config{Rand: rng, SDR: recv})
	if err != nil {
		t.Fatal(err)
	}
	sim := &Simulation{Gateway: gw, NoiseFloordBm: -100, Rand: rng}
	dev := NewSimDevice("n", -22, 40, 14, 80, 100)
	// Enroll via observed frames (learned through the biased receiver).
	for i := 0; i < 4; i++ {
		dev.Record(float64(i), nil)
		if _, _, err := sim.Uplink(dev, float64(i)+0.5); err != nil {
			t.Fatal(err)
		}
	}
	dev.Record(10, nil)
	report, _, err := sim.Uplink(dev, 10.5)
	if err != nil {
		t.Fatal(err)
	}
	if report.Verdict != VerdictGenuine {
		t.Errorf("verdict = %s", report.Verdict)
	}
	// δ includes −δRx: estimated ≈ −22 ppm*869.75e6 − 5 kHz.
	want := -22e-6*869.75e6 - 5e3
	if math.Abs(report.FrequencyBiasHz-want) > 500 {
		t.Errorf("bias = %f, want ~%f", report.FrequencyBiasHz, want)
	}
}

func TestGatewayWithUpDownEstimator(t *testing.T) {
	rng := rand.New(rand.NewSource(139))
	gw, err := NewGateway(Config{Rand: rng, FB: FBUpDown})
	if err != nil {
		t.Fatal(err)
	}
	if gw.CaptureChirps() <= 4 {
		t.Errorf("CaptureChirps = %d, up/down needs the SFD", gw.CaptureChirps())
	}
	sim := &Simulation{Gateway: gw, NoiseFloordBm: -100, Rand: rng}
	dev := NewSimDevice("n", -22, 40, 14, 80, 100)
	gw.EnrollDevice("n", dev.Transmitter.BiasHz(gw.Params()))
	dev.Record(99, nil)
	report, _, err := sim.Uplink(dev, 100)
	if err != nil {
		t.Fatal(err)
	}
	if report.Verdict != VerdictGenuine {
		t.Errorf("verdict = %s (bias %.0f Hz)", report.Verdict, report.FrequencyBiasHz)
	}
	// The joint estimator must land very close to the device's true bias,
	// unaffected by onset error.
	want := dev.Transmitter.BiasHz(gw.Params())
	if math.Abs(report.FrequencyBiasHz-want) > 150 {
		t.Errorf("bias = %.0f, want ~%.0f", report.FrequencyBiasHz, want)
	}
	if math.Abs(report.ArrivalTime-100) > 5e-6 {
		t.Errorf("refined arrival = %.9f, want ~100 within µs", report.ArrivalTime)
	}
}

func TestGatewayWithDechirpOnset(t *testing.T) {
	rng := rand.New(rand.NewSource(145))
	gw, err := NewGateway(Config{Rand: rng, Onset: OnsetDechirp})
	if err != nil {
		t.Fatal(err)
	}
	sim := &Simulation{Gateway: gw, NoiseFloordBm: -100, Rand: rng}
	dev := NewSimDevice("n", -23, 40, 14, 80, 100)
	gw.EnrollDevice("n", dev.Transmitter.BiasHz(gw.Params()))
	dev.Record(9.5, nil)
	report, _, err := sim.Uplink(dev, 10)
	if err != nil {
		t.Fatal(err)
	}
	if report.Verdict != VerdictGenuine {
		t.Errorf("verdict = %s", report.Verdict)
	}
	if math.Abs(report.ArrivalTime-10) > 1e-5 {
		t.Errorf("arrival = %f", report.ArrivalTime)
	}
}
