package softlora

import (
	"bytes"
	"context"
	"math"
	"math/rand"
	"testing"

	"softlora/internal/radio"
)

// multiFixture builds an n-gateway deployment in the default building with
// one device at the fixed-node position, enrolled at its true bias.
func multiFixture(t *testing.T, n int, seed int64) (*MultiGatewaySimulation, *SimDevice, radio.Position) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	b := radio.DefaultBuilding()
	// Dechirp onset + dechirp-FFT FB: the building's links sit at −5..13
	// dB SNR, where the AIC detector's timing error (which couples into
	// the FB estimate) would dominate the fingerprint.
	m, err := NewMultiGatewaySimulation(b, n, Config{Rand: rng, Onset: OnsetDechirp, FB: FBDechirpFFT})
	if err != nil {
		t.Fatal(err)
	}
	dev := NewSimDevice("node-1", -23, 40, 14, 0, 0)
	m.Server.Enroll(dev.ID, dev.Transmitter.BiasHz(m.Sites[0].Gateway.Params()), 10)
	return m, dev, b.FixedNode()
}

func TestMultiGatewayPlacement(t *testing.T) {
	b := radio.DefaultBuilding()
	rng := rand.New(rand.NewSource(7))
	m, err := NewMultiGatewaySimulation(b, 3, Config{Rand: rng})
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Sites) != 3 {
		t.Fatalf("sites = %d", len(m.Sites))
	}
	// Gateways sit on the top floor, spread end to end.
	for i, s := range m.Sites {
		if s.Position.Floor != b.Floors {
			t.Errorf("site %d on floor %d", i, s.Position.Floor)
		}
	}
	if m.Sites[0].Position.X >= m.Sites[2].Position.X {
		t.Error("gateways not spread along the building")
	}
	// All sites share one server.
	for i, s := range m.Sites {
		if s.Gateway.NetworkServer() != m.Server {
			t.Errorf("site %d has a private server", i)
		}
	}
	if _, err := NewMultiGatewaySimulation(b, 0, Config{Rand: rng}); err == nil {
		t.Error("0 gateways accepted")
	}
}

func TestMultiGatewayGenuineUplinkFusesAllReceivers(t *testing.T) {
	m, dev, pos := multiFixture(t, 2, 200)
	dev.Record(9, []byte{1})
	report, records, err := m.Uplink(dev, pos, 10)
	if err != nil {
		t.Fatal(err)
	}
	if report.Verdict != VerdictGenuine || !report.Accepted {
		t.Errorf("verdict = %s accepted=%v", report.Verdict, report.Accepted)
	}
	if len(report.Observations) != 2 {
		t.Fatalf("observations = %d, want both gateways", len(report.Observations))
	}
	if report.Frame.Receivers != 2 {
		t.Errorf("fused receivers = %d", report.Frame.Receivers)
	}
	// One verdict for the frame despite two receivers.
	st := m.Server.Stats()
	if st.FramesChecked != 1 || st.DuplicatesSuppressed != 1 {
		t.Errorf("stats = %+v, want 1 frame / 1 suppressed duplicate", st)
	}
	// Fused bias near the device's true bias.
	want := dev.Transmitter.BiasHz(m.Sites[0].Gateway.Params())
	if math.Abs(report.Frame.FBHz-want) > 400 {
		t.Errorf("fused FB = %.0f, want ≈ %.0f", report.Frame.FBHz, want)
	}
	// Timestamp reconstructed from the elected receiver's arrival.
	if len(records) != 1 || len(report.Timestamps) != 1 {
		t.Fatalf("records/timestamps = %d/%d", len(records), len(report.Timestamps))
	}
	if math.Abs(report.Timestamps[0]-9) > 0.01 {
		t.Errorf("timestamp = %f, want ≈ 9", report.Timestamps[0])
	}
}

func TestMultiGatewayReplayFlaggedExactlyOnce(t *testing.T) {
	m, dev, pos := multiFixture(t, 2, 202)
	p := m.Sites[0].Gateway.Params()

	// A genuine frame first.
	dev.Record(9, nil)
	report, _, err := m.Uplink(dev, pos, 10)
	if err != nil {
		t.Fatal(err)
	}
	if report.Verdict != VerdictGenuine {
		t.Fatalf("genuine frame: verdict = %s", report.Verdict)
	}
	recBefore, _ := m.Server.Record(dev.ID)

	// The replayer re-emits the frame with its own oscillator's extra
	// bias (paper Fig. 13: ≥543 Hz); both gateways hear the replay.
	replayer := NewSimDevice(dev.ID, -23+p.PPM(-620), 40, 14, 0, 0)
	replayer.Record(39, nil)
	report, _, err = m.Uplink(replayer, pos, 40)
	if err != nil {
		t.Fatal(err)
	}
	if report.Verdict != VerdictReplay || report.Accepted {
		t.Fatalf("replayed frame: verdict = %s accepted=%v (FB %.0f)",
			report.Verdict, report.Accepted, report.Frame.FBHz)
	}
	if report.Timestamps != nil {
		t.Error("replayed frame must not produce timestamps")
	}
	if len(report.Observations) != 2 {
		t.Fatalf("observations = %d, want the replay heard twice", len(report.Observations))
	}

	// Flagged exactly once: two frames checked in total (genuine +
	// replay), two duplicates suppressed (one per frame), and the replay
	// did not touch the learned record.
	st := m.Server.Stats()
	if st.FramesChecked != 2 {
		t.Errorf("frames checked = %d, want 2 (one verdict per frame)", st.FramesChecked)
	}
	if st.Observations != 4 || st.DuplicatesSuppressed != 2 {
		t.Errorf("stats = %+v", st)
	}
	// The replay must not update the learned bias state. LastSeen is the
	// one exception: a record under active attack is deliberately kept
	// alive (evicting it would let the replayer re-enroll as the device),
	// so the observation stamp advances while Mean/Dev/Min/Max/Count
	// stay frozen.
	recAfter, _ := m.Server.Record(dev.ID)
	if recAfter.LastSeen <= recBefore.LastSeen {
		t.Error("replayed frame did not advance the record's LastSeen stamp")
	}
	recAfter.LastSeen = recBefore.LastSeen
	if recBefore != recAfter {
		t.Error("replayed frame updated the shared database")
	}
}

func TestMultiGatewayDeterministic(t *testing.T) {
	run := func() (float64, []byte) {
		m, dev, pos := multiFixture(t, 3, 202)
		var fb float64
		for i := 0; i < 3; i++ {
			dev.Record(float64(10*i), nil)
			report, _, err := m.Uplink(dev, pos, float64(10*i)+5)
			if err != nil {
				t.Fatal(err)
			}
			fb = report.Frame.FBHz
		}
		var buf bytes.Buffer
		if err := m.Server.Save(&buf); err != nil {
			t.Fatal(err)
		}
		return fb, buf.Bytes()
	}
	fb1, db1 := run()
	fb2, db2 := run()
	if fb1 != fb2 {
		t.Errorf("fused FB differs across identical runs: %f vs %f", fb1, fb2)
	}
	if !bytes.Equal(db1, db2) {
		t.Error("database bytes differ across identical runs")
	}
}

func TestMultiGatewayUplinkBatch(t *testing.T) {
	m, dev, pos := multiFixture(t, 2, 203)
	ups := make([]MultiSimUplink, 3)
	for i := range ups {
		dev.Record(float64(20*i)+9, []byte{byte(i)})
		ups[i] = MultiSimUplink{Device: dev, Position: pos, Time: float64(20*i) + 10}
	}
	results, err := m.UplinkBatch(context.Background(), ups)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("uplink %d: %v", i, r.Err)
		}
		if r.Report.Verdict != VerdictGenuine {
			t.Errorf("uplink %d: verdict = %s", i, r.Report.Verdict)
		}
		if len(r.Report.Timestamps) != len(r.Records) {
			t.Errorf("uplink %d: %d timestamps for %d records", i, len(r.Report.Timestamps), len(r.Records))
		}
	}
}

func TestMultiGatewayFusionTighterThanWorstReceiver(t *testing.T) {
	m, dev, pos := multiFixture(t, 3, 204)
	dev.Record(9, nil)
	report, _, err := m.Uplink(dev, pos, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Observations) < 2 {
		t.Skipf("only %d receivers locked on", len(report.Observations))
	}
	minJ := math.Inf(1)
	for _, o := range report.Observations {
		if o.JitterHz < minJ {
			minJ = o.JitterHz
		}
	}
	if report.Frame.JitterHz > minJ {
		t.Errorf("fused jitter %.1f Hz worse than best receiver %.1f Hz",
			report.Frame.JitterHz, minJ)
	}
}
