package softlora

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"testing"
)

// TestUplinkBatchPooledSteadyStateBytes is the end-to-end allocation
// regression for the pooled capture path: once the buffer pool is warm, a
// full simulated batch round — Channel.Receive renders, Downconvert, the
// gateway batch pipeline, and the Release calls threading the buffers back
// — must not reallocate the multi-hundred-KB capture buffers. Before
// pooling, a 4-uplink round allocated ~1.9 MB of captures alone; with the
// per-uplink rand sources replaced by reseeded pipeline generators and the
// reports/timestamps slab-allocated per batch, a round now costs ~4.5 KB
// (result slices, record flushing, goroutine scheduling). The budget
// leaves ~3× headroom over that.
func TestUplinkBatchPooledSteadyStateBytes(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops items under the race detector; the byte budget only holds in normal builds")
	}
	const batch = 4
	rng := rand.New(rand.NewSource(42))
	gw, err := NewGateway(Config{Rand: rng, FB: FBDechirpFFT, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	sim := &Simulation{Gateway: gw, NoiseFloordBm: -100, Rand: rng}
	devs := make([]*SimDevice, batch)
	for i := range devs {
		devs[i] = NewSimDevice(fmt.Sprintf("dev-%d", i), -23, 40, 14, 80, 100)
		gw.EnrollDevice(devs[i].ID, devs[i].Transmitter.BiasHz(gw.Params()))
	}
	now := 10.0
	round := func() {
		ups := make([]SimUplink, batch)
		for i, d := range devs {
			d.Record(now-1, nil)
			ups[i] = SimUplink{Device: d, Time: now}
			now += 2
		}
		results, err := sim.UplinkBatch(context.Background(), ups)
		if err != nil {
			t.Fatal(err)
		}
		for i, r := range results {
			if r.Err != nil {
				t.Fatalf("uplink %d: %v", i, r.Err)
			}
		}
	}
	// Warm-up: sizes the pool, every worker pipeline's scratch and plans.
	round()
	round()

	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	const rounds = 3
	for i := 0; i < rounds; i++ {
		round()
	}
	runtime.ReadMemStats(&after)
	perRound := (after.TotalAlloc - before.TotalAlloc) / rounds
	if perRound > 16<<10 {
		t.Errorf("steady-state batch round allocated %d bytes, want <= 16 KB", perRound)
	}
}
