// Package softlora is an attack-aware, synchronization-free data
// timestamping gateway for LoRaWAN, reproducing "Attack-Aware Data
// Timestamping in Low-Power Synchronization-Free LoRaWAN" (Gu, Tan, Huang —
// ICDCS 2020).
//
// A SoftLoRa gateway pairs a commodity LoRaWAN radio with a low-cost SDR
// receiver. For every uplink it:
//
//  1. timestamps the PHY preamble onset to microseconds (AIC or envelope
//     detector on the SDR I/Q capture),
//  2. estimates the transmitter's oscillator frequency bias from the second
//     preamble chirp (0.14 ppm resolution), and
//  3. checks the bias against the claimed device's history — a frame
//     replayed by the frame delay attack carries the replayer's extra bias
//     (≥ 0.6 ppm) and is rejected, so data timestamps cannot be spoofed by
//     jam-and-replay adversaries.
//
// Sensor data carries only 18-bit elapsed times; the gateway reconstructs
// absolute timestamps from the verified PHY arrival time.
//
// # Concurrency and scratch ownership
//
// The DSP hot path (dechirp windows, FFTs, phase fits) runs on planned,
// preallocated scratch: FFT plans are immutable and shared process-wide,
// but every detector/estimator instance owns mutable scratch buffers and is
// single-goroutine. The gateway therefore keeps one pipeline (onset
// detector + FB estimator + SDR front end) per worker: ProcessUplink uses
// the gateway's own serial pipeline, while ProcessBatch fans a batch of
// captures across a bounded worker pool (Config.Workers, default
// GOMAXPROCS), each worker building its own pipeline so the hot path stays
// lock- and allocation-free. Never hand one pipeline's scratch to two
// goroutines: one plan/scratch set per worker, no sharing.
//
// # Two-stage processing and the ordering contract
//
// Each uplink is processed in two stages. The PHY stage (down-conversion,
// onset timestamping, FB + jitter estimation) is side-effect-free and runs
// concurrently on the worker pool. The detection/commit stage applies the
// §7.2 verdict against the bias database and is deterministic: ProcessBatch
// commits verdicts in uplink-index order after the PHY stage completes, so
// a batch's verdicts AND the resulting database state are bit-identical
// regardless of worker count or goroutine scheduling — even when one device
// appears several times in a batch.
//
// The database itself lives in an internal netserver.NetworkServer. A
// gateway built without Config.Server embeds a private one (single-gateway
// mode, the historical behavior); gateways sharing one server form a
// multi-receiver deployment in which the server deduplicates frames heard
// by several gateways and fuses their FB estimates before judging each
// frame once (see MultiGatewaySimulation and package netserver).
package softlora

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"

	"softlora/internal/core"
	"softlora/internal/lora"
	"softlora/internal/netserver"
	"softlora/internal/radio"
	"softlora/internal/sdr"
	"softlora/internal/timestamp"
)

// Verdict classifies a processed uplink.
type Verdict string

// Uplink verdicts.
const (
	// VerdictGenuine: frequency bias consistent with the claimed device.
	VerdictGenuine Verdict = "genuine"
	// VerdictReplay: the frame delay attack's replay step was detected;
	// the frame is dropped and its timestamps are not trusted.
	VerdictReplay Verdict = "replay"
	// VerdictEnrolling: the device's bias is still being learned.
	VerdictEnrolling Verdict = "enrolling"
	// VerdictPending: the frame is held in the network server's streaming
	// dedup window awaiting more receiver copies; the committed verdict
	// arrives as a later window event.
	VerdictPending Verdict = "pending"
)

// OnsetMethod selects the PHY timestamping algorithm.
type OnsetMethod string

// Onset detection methods (§6.1.2 plus the despreading extension).
const (
	OnsetAIC      OnsetMethod = "aic"
	OnsetEnvelope OnsetMethod = "envelope"
	// OnsetDechirp uses the despreading-based triangle-apex detector
	// (DESIGN.md §6): microseconds down to ~−10 dB where the paper's
	// time-domain detectors degrade.
	OnsetDechirp OnsetMethod = "dechirp"
)

// FBMethod selects the frequency-bias estimator.
type FBMethod string

// FB estimation methods (§7.1 plus the extensions of DESIGN.md §6).
const (
	FBLinearRegression FBMethod = "linear-regression"
	FBLeastSquares     FBMethod = "least-squares"
	FBDechirpFFT       FBMethod = "dechirp-fft"
	// FBUpDown jointly estimates bias and timing from one preamble up
	// chirp and one SFD down chirp, cancelling onset-error-induced bias.
	// It needs captures spanning the whole preamble + SFD (~12.5 chirps)
	// instead of the paper's 2; Simulation sizes its captures accordingly.
	FBUpDown FBMethod = "updown"
)

// Config configures a Gateway.
type Config struct {
	// Params is the LoRa channel configuration (DefaultParams(7) if SF is
	// unset).
	Params lora.Params
	// SDR models the attached SDR receiver; nil uses an ideal 8-bit
	// RTL-SDR with zero bias.
	SDR *sdr.Receiver
	// SampleRate of SDR captures (sdr.DefaultSampleRate when 0).
	SampleRate float64
	// Onset selects the timestamping detector (OnsetAIC by default).
	Onset OnsetMethod
	// OnsetCoarseDecimation tunes the dechirp onset detector's hierarchical
	// coarse scan: the boxcar decimation factor of its quarter-chirp
	// fill-metric windows (0 = core.DefaultCoarseDecimation, 1 = full-rate
	// scan). Only meaningful with OnsetDechirp.
	OnsetCoarseDecimation int
	// OnsetRefineCombBins widens the frequency comb the dechirp onset
	// detector's sliding refinement tracks around each candidate tone
	// (0 = default). Only meaningful with OnsetDechirp.
	OnsetRefineCombBins int
	// OnsetExhaustive runs the dechirp onset detector's brute-force
	// reference search instead of the coarse→fine hierarchy — orders of
	// magnitude slower, intended for parity debugging only. Only
	// meaningful with OnsetDechirp.
	OnsetExhaustive bool
	// OnsetFloat64 forces the AIC detector's coarse/mid decision stages
	// onto the float64 reference lane instead of the default float32 fast
	// lane. The final refinement is float64 either way, so verdicts and
	// database bytes are identical across the toggle (the determinism suite
	// pins it); the knob exists for parity debugging. Only meaningful with
	// OnsetAIC.
	OnsetFloat64 bool
	// FB selects the bias estimator (FBLinearRegression by default;
	// FBLeastSquares is the low-SNR option at higher CPU cost).
	FB FBMethod
	// FBExhaustive runs the dechirp-FFT estimator's monolithic padded-FFT
	// reference instead of the decimated coarse→zoom hierarchy — several
	// times slower, intended for accuracy parity runs and for biases
	// beyond the ±BW/2 fingerprint band the fast path searches. Only
	// meaningful with FBDechirpFFT.
	FBExhaustive bool
	// ToleranceHz is the replay-detection deviation threshold
	// (core.DefaultToleranceHz when 0). Ignored when Server is set — a
	// shared network server owns its own detection configuration.
	ToleranceHz float64
	// GatewayID identifies this gateway in the PHY observations it emits
	// ("gw-0" when empty). Only meaningful in multi-gateway deployments.
	GatewayID string
	// Server, when non-nil, is the shared network server this gateway
	// feeds its observations to: several gateways pointing at one server
	// form a multi-receiver deployment with frame dedup and FB fusion.
	// Nil embeds a private server (single-gateway mode).
	Server *netserver.NetworkServer
	// Workers bounds the ProcessBatch worker pool (GOMAXPROCS when 0).
	Workers int
	// Rand drives the SDR phase and the least-squares optimizer; required.
	Rand *rand.Rand
}

// pipeline is one worker's private processing chain: SDR front end, onset
// detector and FB estimator all hold per-instance scratch (FFT buffers,
// dechirp templates), so a pipeline must never be shared between
// goroutines.
type pipeline struct {
	receiver  *sdr.Receiver
	onset     core.OnsetDetector
	estimator core.FBEstimator
	updown    *core.UpDownEstimator // non-nil when FBUpDown is selected

	// rng is the pipeline's reusable batch random source: ProcessBatch
	// reseeds it per uplink instead of allocating a fresh generator (a
	// ~5 KB rngSource each) for every job. It runs on fastSeedSource so the
	// per-uplink reseed is one store, not a ~10 µs table rebuild.
	rng *rand.Rand
	// sdrCap is the worker's reusable down-converted capture header; its IQ
	// buffer cycles through the capture pool each uplink.
	sdrCap sdr.Capture
}

// fastSeedSource is a rand.Source64 on a splitmix64 counter stream.
// rand.NewSource's generator rebuilds a ~5 KB lagged-Fibonacci table on
// every Seed; ProcessBatch reseeds per uplink, which made seeding alone
// ~4% of batch time. A counter + finalizer mix seeds in O(1) with more
// than enough statistical quality for phase draws and noise seeding.
type fastSeedSource struct{ state uint64 }

func (s *fastSeedSource) Seed(seed int64) { s.state = uint64(seed) }

func (s *fastSeedSource) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (s *fastSeedSource) Int63() int64 { return int64(s.Uint64() >> 1) }

// setRand points the pipeline's stochastic stages (SDR phase draw,
// least-squares optimizer) at the given source.
func (p *pipeline) setRand(rng *rand.Rand) {
	p.receiver.Rand = rng
	if ls, ok := p.estimator.(*core.LeastSquaresEstimator); ok {
		ls.Rand = rng
	}
}

// Gateway is a SoftLoRa gateway instance.
//
// ProcessUplink runs on the gateway's own serial pipeline and is not safe
// for concurrent use; ProcessBatch is the concurrent entry point (each
// worker owns a private pipeline). The bias database behind both lives in
// the gateway's network server (embedded unless Config.Server was set) and
// is safe for concurrent use.
type Gateway struct {
	params     lora.Params
	sampleRate float64
	fbMethod   FBMethod
	fbExh      bool // dechirp-FFT estimator reference mode (Config knob)
	onsetMeth  OnsetMethod
	onsetDecim int          // dechirp detector coarse decimation (Config knob)
	onsetComb  int          // dechirp detector refinement comb half-width
	onsetExh   bool         // dechirp detector brute-force reference mode
	onsetF64   bool         // AIC detector float64 reference lane (Config knob)
	recvProto  sdr.Receiver // per-worker receivers are stamped from this
	workers    int
	pipe       *pipeline // serial-path pipeline (ProcessUplink)
	gatewayID  string
	server     *netserver.NetworkServer

	rand       *rand.Rand
	seedOnce   sync.Once
	batchSeed  int64
	batchCount atomic.Int64 // ProcessBatch invocations, mixed into job seeds
	pipePool   sync.Pool    // *pipeline, reused across ProcessBatch calls
}

// CaptureChirps returns how many chirp times after the onset the gateway's
// SDR capture must span for the configured estimator: 4 for the paper's
// two-chirp analysis (with margin), preamble+4 for the up/down joint
// estimator, which needs the SFD.
func (g *Gateway) CaptureChirps() int {
	if g.fbMethod == FBUpDown {
		return g.params.PreambleChirps + 4
	}
	return 4
}

// Configuration errors.
var (
	ErrNilRand      = errors.New("softlora: Config.Rand must be set")
	ErrBadMethod    = errors.New("softlora: unknown method")
	ErrCaptureShort = errors.New("softlora: capture too short for onset + two chirps")
	ErrNilCapture   = errors.New("softlora: batch uplink has no capture")
)

// NewGateway validates the configuration and builds a Gateway.
func NewGateway(cfg Config) (*Gateway, error) {
	if cfg.Rand == nil {
		return nil, ErrNilRand
	}
	params := cfg.Params
	if params.SF == 0 {
		params = lora.DefaultParams(7)
	}
	if err := params.Validate(); err != nil {
		return nil, fmt.Errorf("softlora: %w", err)
	}
	rate := cfg.SampleRate
	if rate == 0 {
		rate = sdr.DefaultSampleRate
	}
	switch cfg.Onset {
	case "", OnsetAIC, OnsetEnvelope, OnsetDechirp:
	default:
		return nil, fmt.Errorf("%w: onset %q", ErrBadMethod, cfg.Onset)
	}
	switch cfg.FB {
	case "", FBLinearRegression, FBLeastSquares, FBDechirpFFT, FBUpDown:
	default:
		return nil, fmt.Errorf("%w: fb %q", ErrBadMethod, cfg.FB)
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	gatewayID := cfg.GatewayID
	if gatewayID == "" {
		gatewayID = "gw-0"
	}
	g := &Gateway{
		params:     params,
		sampleRate: rate,
		fbMethod:   cfg.FB,
		fbExh:      cfg.FBExhaustive,
		onsetMeth:  cfg.Onset,
		onsetDecim: cfg.OnsetCoarseDecimation,
		onsetComb:  cfg.OnsetRefineCombBins,
		onsetExh:   cfg.OnsetExhaustive,
		onsetF64:   cfg.OnsetFloat64,
		workers:    workers,
		gatewayID:  gatewayID,
		rand:       cfg.Rand,
	}
	if cfg.SDR != nil {
		g.recvProto = *cfg.SDR
	} else {
		g.recvProto = sdr.Receiver{ADCBits: 8}
	}
	// The serial pipeline keeps the caller's receiver instance (and its
	// random source) so single-uplink behaviour matches earlier versions.
	g.pipe = g.newPipeline()
	if cfg.SDR != nil {
		g.pipe.receiver = cfg.SDR
	}
	if g.pipe.receiver.Rand == nil {
		g.pipe.receiver.Rand = cfg.Rand
	}
	if ls, ok := g.pipe.estimator.(*core.LeastSquaresEstimator); ok {
		ls.Rand = cfg.Rand
	}
	if cfg.Server != nil {
		g.server = cfg.Server
	} else {
		g.server = netserver.New(netserver.Config{ToleranceHz: cfg.ToleranceHz})
	}
	return g, nil
}

// newPipeline builds a fresh processing chain with its own scratch state.
// The pipeline's random source is unset; callers must setRand before use
// (batch workers reseed and install the pipeline's own rng per uplink).
func (g *Gateway) newPipeline() *pipeline {
	p := &pipeline{rng: rand.New(&fastSeedSource{})}
	recv := g.recvProto
	p.receiver = &recv
	switch g.onsetMeth {
	case "", OnsetAIC:
		p.onset = &core.AICDetector{LowPassCutoffHz: core.DefaultPrefilterCutoffHz, Float64: g.onsetF64}
	case OnsetEnvelope:
		p.onset = &core.EnvelopeDetector{SmoothLen: 8, LowPassCutoffHz: core.DefaultPrefilterCutoffHz}
	case OnsetDechirp:
		p.onset = &core.DechirpOnsetDetector{
			Params:           g.params,
			CoarseDecimation: g.onsetDecim,
			RefineCombBins:   g.onsetComb,
			Exhaustive:       g.onsetExh,
		}
	}
	switch g.fbMethod {
	case "", FBLinearRegression:
		p.estimator = &core.LinearRegressionEstimator{Params: g.params}
	case FBLeastSquares:
		p.estimator = &core.LeastSquaresEstimator{Params: g.params, Decimation: 4}
	case FBDechirpFFT:
		p.estimator = &core.DechirpFFTEstimator{Params: g.params, Exhaustive: g.fbExh}
	case FBUpDown:
		p.updown = &core.UpDownEstimator{Params: g.params}
	}
	return p
}

// Params returns the gateway's channel configuration.
func (g *Gateway) Params() lora.Params { return g.params }

// UplinkReport is the outcome of processing one uplink.
type UplinkReport struct {
	// ArrivalTime is the PHY-timestamped preamble onset on the channel
	// timeline (seconds).
	ArrivalTime float64
	// OnsetSample is the onset position within the SDR capture.
	OnsetSample int
	// FrequencyBiasHz is the estimated δ = δTx − δRx.
	FrequencyBiasHz float64
	// FrequencyBiasPPM expresses the bias in ppm of the channel center.
	FrequencyBiasPPM float64
	// FBJitterHz is the PHY stage's estimate of this frame's FB
	// estimation jitter (1σ, Hz) through this link — the weight a
	// network server uses when fusing multi-gateway estimates.
	FBJitterHz float64
	// Verdict is the replay-detection decision.
	Verdict Verdict
	// Accepted reports whether the frame's data was accepted for
	// timestamping (false for replays).
	Accepted bool
	// Timestamps are the reconstructed global times of the frame's data
	// records (nil when the frame is rejected).
	Timestamps []float64
}

// ProcessUplink runs the full SoftLoRa pipeline on an antenna-level capture:
// SDR down-conversion, PHY onset timestamping, FB estimation on the second
// preamble chirp, replay detection against the claimed device, and
// sync-free timestamp reconstruction for the frame's elapsed-time records.
//
// The capture must include noise lead-in before the frame and at least two
// preamble chirps after the onset. claimedID is the source device ID
// decoded from the frame by the commodity LoRaWAN radio.
//
// ProcessUplink runs on the gateway's serial pipeline and must not be
// called concurrently; use ProcessBatch for concurrent processing.
func (g *Gateway) ProcessUplink(cap *radio.Capture, claimedID string, records []timestamp.FrameRecord) (*UplinkReport, error) {
	report := &UplinkReport{}
	if err := g.phyStage(g.pipe, cap, report); err != nil {
		return nil, err
	}
	g.commitStage(claimedID, "", 0, records, report, nil)
	return report, nil
}

// phyStage runs the side-effect-free half of the pipeline on one capture:
// SDR down-conversion, PHY onset timestamping, FB estimation on the second
// preamble chirp, and FB-jitter estimation from the link's measured SNR. It
// fills the report's measurement fields and touches nothing shared — no
// database, no verdict — so distinct pipelines may run it concurrently.
// Batch callers hand slots of a per-batch report slab so the steady state
// allocates nothing per uplink.
func (g *Gateway) phyStage(p *pipeline, capt *radio.Capture, report *UplinkReport) error {
	sdrCap := &p.sdrCap
	if err := p.receiver.DownconvertInto(sdrCap, capt); err != nil {
		return fmt.Errorf("softlora: %w", err)
	}
	// The down-converted capture is consumed entirely within this call;
	// recycling its buffer keeps the batch path free of per-uplink
	// multi-hundred-KB allocations.
	defer sdrCap.Release()
	onset, err := p.onset.DetectOnset(sdrCap.IQ, sdrCap.Rate)
	if err != nil {
		return fmt.Errorf("softlora: %w", err)
	}
	n := int(g.params.SamplesPerChirp(sdrCap.Rate))
	var fbHz float64
	fbStart := onset.Sample
	arrival := sdrCap.TimeOf(onset.Sample)
	if p.updown != nil {
		res, udErr := p.updown.Estimate(sdrCap.IQ, onset.Sample, sdrCap.Rate)
		if udErr != nil {
			return fmt.Errorf("softlora: %w", udErr)
		}
		fbHz = res.DeltaHz
		// The joint estimator also refines the PHY timestamp.
		arrival += res.TimingCorrection
	} else {
		// The first captured chirp yields the timestamp; the second yields
		// the FB (§5.1).
		second := onset.Sample + n
		if second+n > len(sdrCap.IQ) {
			return fmt.Errorf("%w: onset %d, capture %d", ErrCaptureShort, onset.Sample, len(sdrCap.IQ))
		}
		est, estErr := p.estimator.EstimateFB(sdrCap.IQ[second:second+n], sdrCap.Rate)
		if estErr != nil {
			return fmt.Errorf("softlora: %w", estErr)
		}
		fbHz = est.DeltaHz
		fbStart = second
	}
	*report = UplinkReport{
		ArrivalTime:      arrival,
		OnsetSample:      onset.Sample,
		FrequencyBiasHz:  fbHz,
		FrequencyBiasPPM: g.params.PPM(fbHz),
		FBJitterHz:       fbJitterHz(sdrCap.IQ, onset.Sample, fbStart, n, sdrCap.Rate),
	}
	return nil
}

// fbJitterHz estimates the 1σ FB estimation jitter of one frame from the
// capture itself: noise power from the lead-in before the onset, signal
// power from the chirp the estimator analyzed, folded through the
// Cramér-Rao frequency bound σ_f ≈ (rate/2π)·sqrt(6/(SNR·n³)). Real
// estimators sit above the bound (the PHY onset feeds timing error into δ,
// see fb.go), so this is a relative fusion weight, not an absolute error
// bar; observations through noisier links weigh proportionally less. Falls
// back to DefaultJitterHz (the paper's 120 Hz estimation resolution) when
// the capture has no usable lead-in.
func fbJitterHz(iq []complex128, onset, fbStart, n int, rate float64) float64 {
	noiseLo := onset - 1024
	if noiseLo < 0 {
		noiseLo = 0
	}
	if fbStart+n > len(iq) {
		n = len(iq) - fbStart
	}
	if onset-noiseLo < 16 || n < 16 {
		return netserver.DefaultJitterHz
	}
	var noise float64
	for _, v := range iq[noiseLo:onset] {
		re, im := real(v), imag(v)
		noise += re*re + im*im
	}
	noise /= float64(onset - noiseLo)
	var sig float64
	for _, v := range iq[fbStart : fbStart+n] {
		re, im := real(v), imag(v)
		sig += re*re + im*im
	}
	sig = sig/float64(n) - noise
	if noise <= 0 || sig <= 0 {
		return netserver.DefaultJitterHz
	}
	snr := sig / noise
	nf := float64(n)
	j := rate / (2 * math.Pi) * math.Sqrt(6/(snr*nf*nf*nf))
	if j < 1 {
		j = 1
	}
	return j
}

// commitStage is the deterministic half of the pipeline: it wraps the PHY
// measurements into an observation for the gateway's network server, runs
// the §7.2 verdict (the only shared-state touch in the whole pipeline) and
// finalizes the report — verdict, acceptance, and reconstructed timestamps
// (backed by ts when its capacity suffices). Callers own the commit order:
// ProcessBatch invokes it in uplink-index order so verdicts and database
// state do not depend on PHY-stage scheduling.
func (g *Gateway) commitStage(claimedID, frameID string, uplinkIndex int64, records []timestamp.FrameRecord, report *UplinkReport, ts []float64) {
	verdict := g.server.Check(g.observation(report, claimedID, frameID, uplinkIndex))
	report.Verdict = verdictFromCore(verdict)
	report.Accepted = report.Verdict != VerdictReplay
	if report.Accepted {
		if cap(ts) >= len(records) {
			report.Timestamps = ts[:len(records)]
		} else {
			report.Timestamps = make([]float64, len(records))
		}
		for i, r := range records {
			report.Timestamps[i] = timestamp.Reconstruct(report.ArrivalTime, r)
		}
	}
}

// verdictFromCore maps a core verdict into the gateway-level vocabulary.
func verdictFromCore(v core.Verdict) Verdict {
	switch v {
	case core.VerdictReplay:
		return VerdictReplay
	case core.VerdictEnrolling:
		return VerdictEnrolling
	case core.VerdictPending:
		return VerdictPending
	default:
		return VerdictGenuine
	}
}

// Observe runs only the PHY stage on a capture and returns the resulting
// observation for a shared network server — the multi-gateway entry point:
// each gateway that heard the frame Observes its own capture (tagging it
// with the common frameID), and the server dedups, fuses and judges the
// frame once. Observe never touches the bias database. It runs on the
// gateway's serial pipeline and must not be called concurrently with
// ProcessUplink or another Observe on the same gateway.
func (g *Gateway) Observe(cap *radio.Capture, claimedID, frameID string) (netserver.PHYObservation, error) {
	var report UplinkReport
	if err := g.phyStage(g.pipe, cap, &report); err != nil {
		return netserver.PHYObservation{}, err
	}
	return g.observation(&report, claimedID, frameID, 0), nil
}

// observation wraps a PHY-stage report into the network-server observation
// for the claimed device and frame — the one place the report-to-observation
// field mapping lives, shared by the single-gateway commit stage and the
// multi-gateway Observe path.
func (g *Gateway) observation(report *UplinkReport, claimedID, frameID string, uplinkIndex int64) netserver.PHYObservation {
	return netserver.PHYObservation{
		GatewayID:   g.gatewayID,
		DeviceID:    claimedID,
		FrameID:     frameID,
		UplinkIndex: uplinkIndex,
		FBHz:        report.FrequencyBiasHz,
		JitterHz:    report.FBJitterHz,
		ArrivalTime: report.ArrivalTime,
		OnsetSample: report.OnsetSample,
	}
}

// NetworkServer returns the server holding this gateway's bias database —
// the embedded single-gateway one unless Config.Server was provided.
func (g *Gateway) NetworkServer() *netserver.NetworkServer { return g.server }

// EnrollDevice pre-loads a device's known bias (offline database
// construction, §7.2) into the gateway's network server.
func (g *Gateway) EnrollDevice(id string, biasHz float64) {
	g.server.Enroll(id, biasHz, core.DefaultEnrollFrames)
}

// DeviceBias returns the learned bias state for a device.
func (g *Gateway) DeviceBias(id string) (mean float64, frames int, ok bool) {
	rec, ok := g.server.Record(id)
	if !ok {
		return 0, 0, false
	}
	return rec.Mean, rec.Count, true
}

// SaveBiasDatabase writes the FB database as JSON.
func (g *Gateway) SaveBiasDatabase(w io.Writer) error { return g.server.Save(w) }

// LoadBiasDatabase replaces the FB database from JSON. Records are
// validated; a hostile or corrupted database is rejected with
// core.ErrBadDatabase and the current database is kept.
func (g *Gateway) LoadBiasDatabase(r io.Reader) error { return g.server.Load(r) }

// Uplink is one queued capture for batch processing: the antenna-level
// capture plus the frame metadata the commodity radio decoded from it.
type Uplink struct {
	Capture   *radio.Capture
	ClaimedID string
	Records   []timestamp.FrameRecord
}

// BatchResult pairs one batch uplink's report with its processing error.
// Exactly one of Report and Err is non-nil.
type BatchResult struct {
	Report *UplinkReport
	Err    error
}

// batchRandSeed lazily draws the batch seed base from the gateway's random
// source (once, so serial-path determinism is unaffected until the first
// batch call).
func (g *Gateway) batchRandSeed() int64 {
	g.seedOnce.Do(func() { g.batchSeed = g.rand.Int63() })
	return g.batchSeed
}

// jobSeed derives a decorrelated per-uplink seed (splitmix64 finalizer) so
// batch results are reproducible for a given Config.Rand regardless of
// worker count or scheduling order. The batch ordinal is mixed in so
// successive batches draw independent randomness for the same uplink index
// (matching the serial path, which advances Config.Rand per uplink).
func jobSeed(base, batchNo int64, i int) int64 {
	z := uint64(base) + uint64(batchNo)*0xD1B54A32D192ED03 + (uint64(i)+1)*0x9E3779B97F4A7C15
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return int64(z &^ (1 << 63))
}

// ProcessBatch fans a batch of uplink captures across a bounded worker pool
// (Config.Workers, default GOMAXPROCS). Each worker builds a private
// pipeline — its own SDR front end, onset detector and FB estimator with
// their plans and scratch — and runs only the side-effect-free PHY stage,
// so the DSP hot path runs without locks or allocation. Once every PHY
// stage has finished, the detection/commit stage applies the §7.2 verdict
// in uplink-index order on the calling goroutine.
//
// Results are positionally aligned with uplinks. Stochastic stages draw
// from a per-uplink seed derived from Config.Rand and the batch ordinal,
// and verdicts commit in uplink-index order, so a batch's results AND the
// bias-database state after it are bit-identical regardless of worker
// count or scheduling — including when one device appears several times in
// the batch. Successive batches still draw independent randomness per
// uplink.
//
// Cancelling ctx stops workers from starting further uplinks; already
// started ones finish. Cancelled entries report ctx's error.
func (g *Gateway) ProcessBatch(ctx context.Context, uplinks []Uplink) []BatchResult {
	results := make([]BatchResult, len(uplinks))
	if len(uplinks) == 0 {
		return results
	}
	workers := g.workers
	if workers > len(uplinks) {
		workers = len(uplinks)
	}
	if workers < 1 {
		workers = 1
	}
	// Reports and reconstructed timestamps come out of two batch-level
	// slabs instead of per-uplink allocations: the record counts are known
	// upfront, workers write disjoint slots, and the whole batch hands
	// ownership to the caller in one piece.
	reports := make([]UplinkReport, len(uplinks))
	tsOff := make([]int, len(uplinks)+1)
	for i, u := range uplinks {
		tsOff[i+1] = tsOff[i] + len(u.Records)
	}
	tsSlab := make([]float64, tsOff[len(uplinks)])
	seedBase := g.batchRandSeed()
	batchNo := g.batchCount.Add(1)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Workers reuse pooled pipelines so the warmed scratch (dechirp
			// templates, FFT buffers) survives across batches.
			p, ok := g.pipePool.Get().(*pipeline)
			if !ok {
				p = g.newPipeline()
			}
			defer g.pipePool.Put(p)
			for {
				i := int(next.Add(1) - 1)
				if i >= len(uplinks) {
					return
				}
				if err := ctx.Err(); err != nil {
					results[i] = BatchResult{Err: err}
					continue
				}
				if uplinks[i].Capture == nil {
					results[i] = BatchResult{Err: ErrNilCapture}
					continue
				}
				// Reseeding the pipeline's own generator replaces the old
				// per-uplink rand.New (a fresh ~5 KB source per job) and
				// draws the identical stream for a given seed.
				p.rng.Seed(jobSeed(seedBase, batchNo, i))
				p.setRand(p.rng)
				if err := g.phyStage(p, uplinks[i].Capture, &reports[i]); err != nil {
					results[i] = BatchResult{Err: err}
				}
			}
		}()
	}
	wg.Wait()
	// Deterministic commit stage: every verdict is applied in uplink-index
	// order, so the database sees the same update sequence no matter how
	// the PHY stages above were scheduled.
	for i := range uplinks {
		if results[i].Err != nil {
			continue
		}
		ts := tsSlab[tsOff[i]:tsOff[i]:tsOff[i+1]]
		g.commitStage(uplinks[i].ClaimedID, "", int64(i), uplinks[i].Records, &reports[i], ts)
		results[i] = BatchResult{Report: &reports[i]}
	}
	return results
}
