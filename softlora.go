// Package softlora is an attack-aware, synchronization-free data
// timestamping gateway for LoRaWAN, reproducing "Attack-Aware Data
// Timestamping in Low-Power Synchronization-Free LoRaWAN" (Gu, Tan, Huang —
// ICDCS 2020).
//
// A SoftLoRa gateway pairs a commodity LoRaWAN radio with a low-cost SDR
// receiver. For every uplink it:
//
//  1. timestamps the PHY preamble onset to microseconds (AIC or envelope
//     detector on the SDR I/Q capture),
//  2. estimates the transmitter's oscillator frequency bias from the second
//     preamble chirp (0.14 ppm resolution), and
//  3. checks the bias against the claimed device's history — a frame
//     replayed by the frame delay attack carries the replayer's extra bias
//     (≥ 0.6 ppm) and is rejected, so data timestamps cannot be spoofed by
//     jam-and-replay adversaries.
//
// Sensor data carries only 18-bit elapsed times; the gateway reconstructs
// absolute timestamps from the verified PHY arrival time.
//
// # Concurrency and scratch ownership
//
// The DSP hot path (dechirp windows, FFTs, phase fits) runs on planned,
// preallocated scratch: FFT plans are immutable and shared process-wide,
// but every detector/estimator instance owns mutable scratch buffers and is
// single-goroutine. The gateway therefore keeps one pipeline (onset
// detector + FB estimator + SDR front end) per worker: ProcessUplink uses
// the gateway's own serial pipeline, while ProcessBatch fans a batch of
// captures across a bounded worker pool (Config.Workers, default
// GOMAXPROCS), each worker building its own pipeline so the hot path stays
// lock- and allocation-free. Only the replay-detection bias database is
// shared, behind its own mutex. Never hand one pipeline's scratch to two
// goroutines: one plan/scratch set per worker, no sharing.
package softlora

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"

	"softlora/internal/core"
	"softlora/internal/lora"
	"softlora/internal/radio"
	"softlora/internal/sdr"
	"softlora/internal/timestamp"
)

// Verdict classifies a processed uplink.
type Verdict string

// Uplink verdicts.
const (
	// VerdictGenuine: frequency bias consistent with the claimed device.
	VerdictGenuine Verdict = "genuine"
	// VerdictReplay: the frame delay attack's replay step was detected;
	// the frame is dropped and its timestamps are not trusted.
	VerdictReplay Verdict = "replay"
	// VerdictEnrolling: the device's bias is still being learned.
	VerdictEnrolling Verdict = "enrolling"
)

// OnsetMethod selects the PHY timestamping algorithm.
type OnsetMethod string

// Onset detection methods (§6.1.2 plus the despreading extension).
const (
	OnsetAIC      OnsetMethod = "aic"
	OnsetEnvelope OnsetMethod = "envelope"
	// OnsetDechirp uses the despreading-based triangle-apex detector
	// (DESIGN.md §6): microseconds down to ~−10 dB where the paper's
	// time-domain detectors degrade.
	OnsetDechirp OnsetMethod = "dechirp"
)

// FBMethod selects the frequency-bias estimator.
type FBMethod string

// FB estimation methods (§7.1 plus the extensions of DESIGN.md §6).
const (
	FBLinearRegression FBMethod = "linear-regression"
	FBLeastSquares     FBMethod = "least-squares"
	FBDechirpFFT       FBMethod = "dechirp-fft"
	// FBUpDown jointly estimates bias and timing from one preamble up
	// chirp and one SFD down chirp, cancelling onset-error-induced bias.
	// It needs captures spanning the whole preamble + SFD (~12.5 chirps)
	// instead of the paper's 2; Simulation sizes its captures accordingly.
	FBUpDown FBMethod = "updown"
)

// Config configures a Gateway.
type Config struct {
	// Params is the LoRa channel configuration (DefaultParams(7) if SF is
	// unset).
	Params lora.Params
	// SDR models the attached SDR receiver; nil uses an ideal 8-bit
	// RTL-SDR with zero bias.
	SDR *sdr.Receiver
	// SampleRate of SDR captures (sdr.DefaultSampleRate when 0).
	SampleRate float64
	// Onset selects the timestamping detector (OnsetAIC by default).
	Onset OnsetMethod
	// OnsetCoarseDecimation tunes the dechirp onset detector's hierarchical
	// coarse scan: the boxcar decimation factor of its quarter-chirp
	// fill-metric windows (0 = core.DefaultCoarseDecimation, 1 = full-rate
	// scan). Only meaningful with OnsetDechirp.
	OnsetCoarseDecimation int
	// OnsetRefineCombBins widens the frequency comb the dechirp onset
	// detector's sliding refinement tracks around each candidate tone
	// (0 = default). Only meaningful with OnsetDechirp.
	OnsetRefineCombBins int
	// OnsetExhaustive runs the dechirp onset detector's brute-force
	// reference search instead of the coarse→fine hierarchy — orders of
	// magnitude slower, intended for parity debugging only. Only
	// meaningful with OnsetDechirp.
	OnsetExhaustive bool
	// FB selects the bias estimator (FBLinearRegression by default;
	// FBLeastSquares is the low-SNR option at higher CPU cost).
	FB FBMethod
	// FBExhaustive runs the dechirp-FFT estimator's monolithic padded-FFT
	// reference instead of the decimated coarse→zoom hierarchy — several
	// times slower, intended for accuracy parity runs and for biases
	// beyond the ±BW/2 fingerprint band the fast path searches. Only
	// meaningful with FBDechirpFFT.
	FBExhaustive bool
	// ToleranceHz is the replay-detection deviation threshold
	// (core.DefaultToleranceHz when 0).
	ToleranceHz float64
	// Workers bounds the ProcessBatch worker pool (GOMAXPROCS when 0).
	Workers int
	// Rand drives the SDR phase and the least-squares optimizer; required.
	Rand *rand.Rand
}

// pipeline is one worker's private processing chain: SDR front end, onset
// detector and FB estimator all hold per-instance scratch (FFT buffers,
// dechirp templates), so a pipeline must never be shared between
// goroutines.
type pipeline struct {
	receiver  *sdr.Receiver
	onset     core.OnsetDetector
	estimator core.FBEstimator
	updown    *core.UpDownEstimator // non-nil when FBUpDown is selected

	// rng is the pipeline's reusable batch random source: ProcessBatch
	// reseeds it per uplink instead of allocating a fresh generator (a
	// ~5 KB rngSource each) for every job.
	rng *rand.Rand
}

// setRand points the pipeline's stochastic stages (SDR phase draw,
// least-squares optimizer) at the given source.
func (p *pipeline) setRand(rng *rand.Rand) {
	p.receiver.Rand = rng
	if ls, ok := p.estimator.(*core.LeastSquaresEstimator); ok {
		ls.Rand = rng
	}
}

// Gateway is a SoftLoRa gateway instance.
//
// ProcessUplink runs on the gateway's own serial pipeline and is not safe
// for concurrent use; ProcessBatch is the concurrent entry point (each
// worker owns a private pipeline). The bias database behind both is
// mutex-protected and shared.
type Gateway struct {
	params     lora.Params
	sampleRate float64
	fbMethod   FBMethod
	fbExh      bool // dechirp-FFT estimator reference mode (Config knob)
	onsetMeth  OnsetMethod
	onsetDecim int          // dechirp detector coarse decimation (Config knob)
	onsetComb  int          // dechirp detector refinement comb half-width
	onsetExh   bool         // dechirp detector brute-force reference mode
	recvProto  sdr.Receiver // per-worker receivers are stamped from this
	workers    int
	pipe       *pipeline // serial-path pipeline (ProcessUplink)
	detector   *core.ReplayDetector

	rand       *rand.Rand
	seedOnce   sync.Once
	batchSeed  int64
	batchCount atomic.Int64 // ProcessBatch invocations, mixed into job seeds
	pipePool   sync.Pool    // *pipeline, reused across ProcessBatch calls
}

// CaptureChirps returns how many chirp times after the onset the gateway's
// SDR capture must span for the configured estimator: 4 for the paper's
// two-chirp analysis (with margin), preamble+4 for the up/down joint
// estimator, which needs the SFD.
func (g *Gateway) CaptureChirps() int {
	if g.fbMethod == FBUpDown {
		return g.params.PreambleChirps + 4
	}
	return 4
}

// Configuration errors.
var (
	ErrNilRand      = errors.New("softlora: Config.Rand must be set")
	ErrBadMethod    = errors.New("softlora: unknown method")
	ErrCaptureShort = errors.New("softlora: capture too short for onset + two chirps")
	ErrNilCapture   = errors.New("softlora: batch uplink has no capture")
)

// NewGateway validates the configuration and builds a Gateway.
func NewGateway(cfg Config) (*Gateway, error) {
	if cfg.Rand == nil {
		return nil, ErrNilRand
	}
	params := cfg.Params
	if params.SF == 0 {
		params = lora.DefaultParams(7)
	}
	if err := params.Validate(); err != nil {
		return nil, fmt.Errorf("softlora: %w", err)
	}
	rate := cfg.SampleRate
	if rate == 0 {
		rate = sdr.DefaultSampleRate
	}
	switch cfg.Onset {
	case "", OnsetAIC, OnsetEnvelope, OnsetDechirp:
	default:
		return nil, fmt.Errorf("%w: onset %q", ErrBadMethod, cfg.Onset)
	}
	switch cfg.FB {
	case "", FBLinearRegression, FBLeastSquares, FBDechirpFFT, FBUpDown:
	default:
		return nil, fmt.Errorf("%w: fb %q", ErrBadMethod, cfg.FB)
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	g := &Gateway{
		params:     params,
		sampleRate: rate,
		fbMethod:   cfg.FB,
		fbExh:      cfg.FBExhaustive,
		onsetMeth:  cfg.Onset,
		onsetDecim: cfg.OnsetCoarseDecimation,
		onsetComb:  cfg.OnsetRefineCombBins,
		onsetExh:   cfg.OnsetExhaustive,
		workers:    workers,
		rand:       cfg.Rand,
	}
	if cfg.SDR != nil {
		g.recvProto = *cfg.SDR
	} else {
		g.recvProto = sdr.Receiver{ADCBits: 8}
	}
	// The serial pipeline keeps the caller's receiver instance (and its
	// random source) so single-uplink behaviour matches earlier versions.
	g.pipe = g.newPipeline()
	if cfg.SDR != nil {
		g.pipe.receiver = cfg.SDR
	}
	if g.pipe.receiver.Rand == nil {
		g.pipe.receiver.Rand = cfg.Rand
	}
	if ls, ok := g.pipe.estimator.(*core.LeastSquaresEstimator); ok {
		ls.Rand = cfg.Rand
	}
	g.detector = core.NewReplayDetector()
	if cfg.ToleranceHz > 0 {
		g.detector.ToleranceHz = cfg.ToleranceHz
	}
	return g, nil
}

// newPipeline builds a fresh processing chain with its own scratch state.
// The pipeline's random source is unset; callers must setRand before use
// (batch workers reseed and install the pipeline's own rng per uplink).
func (g *Gateway) newPipeline() *pipeline {
	p := &pipeline{rng: rand.New(rand.NewSource(0))}
	recv := g.recvProto
	p.receiver = &recv
	switch g.onsetMeth {
	case "", OnsetAIC:
		p.onset = &core.AICDetector{LowPassCutoffHz: core.DefaultPrefilterCutoffHz}
	case OnsetEnvelope:
		p.onset = &core.EnvelopeDetector{SmoothLen: 8, LowPassCutoffHz: core.DefaultPrefilterCutoffHz}
	case OnsetDechirp:
		p.onset = &core.DechirpOnsetDetector{
			Params:           g.params,
			CoarseDecimation: g.onsetDecim,
			RefineCombBins:   g.onsetComb,
			Exhaustive:       g.onsetExh,
		}
	}
	switch g.fbMethod {
	case "", FBLinearRegression:
		p.estimator = &core.LinearRegressionEstimator{Params: g.params}
	case FBLeastSquares:
		p.estimator = &core.LeastSquaresEstimator{Params: g.params, Decimation: 4}
	case FBDechirpFFT:
		p.estimator = &core.DechirpFFTEstimator{Params: g.params, Exhaustive: g.fbExh}
	case FBUpDown:
		p.updown = &core.UpDownEstimator{Params: g.params}
	}
	return p
}

// Params returns the gateway's channel configuration.
func (g *Gateway) Params() lora.Params { return g.params }

// UplinkReport is the outcome of processing one uplink.
type UplinkReport struct {
	// ArrivalTime is the PHY-timestamped preamble onset on the channel
	// timeline (seconds).
	ArrivalTime float64
	// OnsetSample is the onset position within the SDR capture.
	OnsetSample int
	// FrequencyBiasHz is the estimated δ = δTx − δRx.
	FrequencyBiasHz float64
	// FrequencyBiasPPM expresses the bias in ppm of the channel center.
	FrequencyBiasPPM float64
	// Verdict is the replay-detection decision.
	Verdict Verdict
	// Accepted reports whether the frame's data was accepted for
	// timestamping (false for replays).
	Accepted bool
	// Timestamps are the reconstructed global times of the frame's data
	// records (nil when the frame is rejected).
	Timestamps []float64
}

// ProcessUplink runs the full SoftLoRa pipeline on an antenna-level capture:
// SDR down-conversion, PHY onset timestamping, FB estimation on the second
// preamble chirp, replay detection against the claimed device, and
// sync-free timestamp reconstruction for the frame's elapsed-time records.
//
// The capture must include noise lead-in before the frame and at least two
// preamble chirps after the onset. claimedID is the source device ID
// decoded from the frame by the commodity LoRaWAN radio.
//
// ProcessUplink runs on the gateway's serial pipeline and must not be
// called concurrently; use ProcessBatch for concurrent processing.
func (g *Gateway) ProcessUplink(cap *radio.Capture, claimedID string, records []timestamp.FrameRecord) (*UplinkReport, error) {
	return g.process(g.pipe, cap, claimedID, records, &UplinkReport{}, nil)
}

// process runs the pipeline stages on one capture into the caller-provided
// report (batch callers hand slots of a per-batch slab so the steady state
// allocates nothing per uplink; ts, when its capacity suffices, likewise
// backs the report's Timestamps). Everything except the replay-database
// check touches only the pipeline's own scratch, so distinct pipelines may
// run process concurrently.
func (g *Gateway) process(p *pipeline, capt *radio.Capture, claimedID string, records []timestamp.FrameRecord, report *UplinkReport, ts []float64) (*UplinkReport, error) {
	sdrCap, err := p.receiver.Downconvert(capt)
	if err != nil {
		return nil, fmt.Errorf("softlora: %w", err)
	}
	// The down-converted capture is consumed entirely within this call;
	// recycling its buffer keeps the batch path free of per-uplink
	// multi-hundred-KB allocations.
	defer sdrCap.Release()
	onset, err := p.onset.DetectOnset(sdrCap.IQ, sdrCap.Rate)
	if err != nil {
		return nil, fmt.Errorf("softlora: %w", err)
	}
	n := int(g.params.SamplesPerChirp(sdrCap.Rate))
	var fbHz float64
	arrival := sdrCap.TimeOf(onset.Sample)
	if p.updown != nil {
		res, udErr := p.updown.Estimate(sdrCap.IQ, onset.Sample, sdrCap.Rate)
		if udErr != nil {
			return nil, fmt.Errorf("softlora: %w", udErr)
		}
		fbHz = res.DeltaHz
		// The joint estimator also refines the PHY timestamp.
		arrival += res.TimingCorrection
	} else {
		// The first captured chirp yields the timestamp; the second yields
		// the FB (§5.1).
		second := onset.Sample + n
		if second+n > len(sdrCap.IQ) {
			return nil, fmt.Errorf("%w: onset %d, capture %d", ErrCaptureShort, onset.Sample, len(sdrCap.IQ))
		}
		est, estErr := p.estimator.EstimateFB(sdrCap.IQ[second:second+n], sdrCap.Rate)
		if estErr != nil {
			return nil, fmt.Errorf("softlora: %w", estErr)
		}
		fbHz = est.DeltaHz
	}
	verdict := g.detector.Check(claimedID, fbHz)
	*report = UplinkReport{
		ArrivalTime:      arrival,
		OnsetSample:      onset.Sample,
		FrequencyBiasHz:  fbHz,
		FrequencyBiasPPM: g.params.PPM(fbHz),
	}
	switch verdict {
	case core.VerdictReplay:
		report.Verdict = VerdictReplay
	case core.VerdictEnrolling:
		report.Verdict = VerdictEnrolling
	default:
		report.Verdict = VerdictGenuine
	}
	report.Accepted = report.Verdict != VerdictReplay
	if report.Accepted {
		if cap(ts) >= len(records) {
			report.Timestamps = ts[:len(records)]
		} else {
			report.Timestamps = make([]float64, len(records))
		}
		for i, r := range records {
			report.Timestamps[i] = timestamp.Reconstruct(report.ArrivalTime, r)
		}
	}
	return report, nil
}

// EnrollDevice pre-loads a device's known bias (offline database
// construction, §7.2).
func (g *Gateway) EnrollDevice(id string, biasHz float64) {
	g.detector.Enroll(id, biasHz, core.DefaultEnrollFrames)
}

// DeviceBias returns the learned bias state for a device.
func (g *Gateway) DeviceBias(id string) (mean float64, frames int, ok bool) {
	rec, ok := g.detector.Record(id)
	if !ok {
		return 0, 0, false
	}
	return rec.Mean, rec.Count, true
}

// SaveBiasDatabase writes the FB database as JSON.
func (g *Gateway) SaveBiasDatabase(w io.Writer) error { return g.detector.Save(w) }

// LoadBiasDatabase replaces the FB database from JSON.
func (g *Gateway) LoadBiasDatabase(r io.Reader) error { return g.detector.Load(r) }

// Uplink is one queued capture for batch processing: the antenna-level
// capture plus the frame metadata the commodity radio decoded from it.
type Uplink struct {
	Capture   *radio.Capture
	ClaimedID string
	Records   []timestamp.FrameRecord
}

// BatchResult pairs one batch uplink's report with its processing error.
// Exactly one of Report and Err is non-nil.
type BatchResult struct {
	Report *UplinkReport
	Err    error
}

// batchRandSeed lazily draws the batch seed base from the gateway's random
// source (once, so serial-path determinism is unaffected until the first
// batch call).
func (g *Gateway) batchRandSeed() int64 {
	g.seedOnce.Do(func() { g.batchSeed = g.rand.Int63() })
	return g.batchSeed
}

// jobSeed derives a decorrelated per-uplink seed (splitmix64 finalizer) so
// batch results are reproducible for a given Config.Rand regardless of
// worker count or scheduling order. The batch ordinal is mixed in so
// successive batches draw independent randomness for the same uplink index
// (matching the serial path, which advances Config.Rand per uplink).
func jobSeed(base, batchNo int64, i int) int64 {
	z := uint64(base) + uint64(batchNo)*0xD1B54A32D192ED03 + (uint64(i)+1)*0x9E3779B97F4A7C15
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return int64(z &^ (1 << 63))
}

// ProcessBatch fans a batch of uplink captures across a bounded worker pool
// (Config.Workers, default GOMAXPROCS). Each worker builds a private
// pipeline — its own SDR front end, onset detector and FB estimator with
// their plans and scratch — so the DSP hot path runs without locks or
// allocation; only the replay-database check serializes, per uplink.
//
// Results are positionally aligned with uplinks. Stochastic stages draw
// from a per-uplink seed derived from Config.Rand and the batch ordinal,
// so a batch's results do not depend on worker count or scheduling, while
// successive batches still draw independent randomness per uplink. Replay verdicts still depend on
// database update order: when one device appears several times in a batch,
// the order its frames reach the shared bias database is not deterministic.
//
// Cancelling ctx stops workers from starting further uplinks; already
// started ones finish. Cancelled entries report ctx's error.
func (g *Gateway) ProcessBatch(ctx context.Context, uplinks []Uplink) []BatchResult {
	results := make([]BatchResult, len(uplinks))
	if len(uplinks) == 0 {
		return results
	}
	workers := g.workers
	if workers > len(uplinks) {
		workers = len(uplinks)
	}
	if workers < 1 {
		workers = 1
	}
	// Reports and reconstructed timestamps come out of two batch-level
	// slabs instead of per-uplink allocations: the record counts are known
	// upfront, workers write disjoint slots, and the whole batch hands
	// ownership to the caller in one piece.
	reports := make([]UplinkReport, len(uplinks))
	tsOff := make([]int, len(uplinks)+1)
	for i, u := range uplinks {
		tsOff[i+1] = tsOff[i] + len(u.Records)
	}
	tsSlab := make([]float64, tsOff[len(uplinks)])
	seedBase := g.batchRandSeed()
	batchNo := g.batchCount.Add(1)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Workers reuse pooled pipelines so the warmed scratch (dechirp
			// templates, FFT buffers) survives across batches.
			p, ok := g.pipePool.Get().(*pipeline)
			if !ok {
				p = g.newPipeline()
			}
			defer g.pipePool.Put(p)
			for {
				i := int(next.Add(1) - 1)
				if i >= len(uplinks) {
					return
				}
				if err := ctx.Err(); err != nil {
					results[i] = BatchResult{Err: err}
					continue
				}
				if uplinks[i].Capture == nil {
					results[i] = BatchResult{Err: ErrNilCapture}
					continue
				}
				// Reseeding the pipeline's own generator replaces the old
				// per-uplink rand.New (a fresh ~5 KB source per job) and
				// draws the identical stream for a given seed.
				p.rng.Seed(jobSeed(seedBase, batchNo, i))
				p.setRand(p.rng)
				ts := tsSlab[tsOff[i]:tsOff[i]:tsOff[i+1]]
				report, err := g.process(p, uplinks[i].Capture, uplinks[i].ClaimedID, uplinks[i].Records, &reports[i], ts)
				results[i] = BatchResult{Report: report, Err: err}
			}
		}()
	}
	wg.Wait()
	return results
}
