// Package softlora is an attack-aware, synchronization-free data
// timestamping gateway for LoRaWAN, reproducing "Attack-Aware Data
// Timestamping in Low-Power Synchronization-Free LoRaWAN" (Gu, Tan, Huang —
// ICDCS 2020).
//
// A SoftLoRa gateway pairs a commodity LoRaWAN radio with a low-cost SDR
// receiver. For every uplink it:
//
//  1. timestamps the PHY preamble onset to microseconds (AIC or envelope
//     detector on the SDR I/Q capture),
//  2. estimates the transmitter's oscillator frequency bias from the second
//     preamble chirp (0.14 ppm resolution), and
//  3. checks the bias against the claimed device's history — a frame
//     replayed by the frame delay attack carries the replayer's extra bias
//     (≥ 0.6 ppm) and is rejected, so data timestamps cannot be spoofed by
//     jam-and-replay adversaries.
//
// Sensor data carries only 18-bit elapsed times; the gateway reconstructs
// absolute timestamps from the verified PHY arrival time.
package softlora

import (
	"errors"
	"fmt"
	"io"
	"math/rand"

	"softlora/internal/core"
	"softlora/internal/lora"
	"softlora/internal/radio"
	"softlora/internal/sdr"
	"softlora/internal/timestamp"
)

// Verdict classifies a processed uplink.
type Verdict string

// Uplink verdicts.
const (
	// VerdictGenuine: frequency bias consistent with the claimed device.
	VerdictGenuine Verdict = "genuine"
	// VerdictReplay: the frame delay attack's replay step was detected;
	// the frame is dropped and its timestamps are not trusted.
	VerdictReplay Verdict = "replay"
	// VerdictEnrolling: the device's bias is still being learned.
	VerdictEnrolling Verdict = "enrolling"
)

// OnsetMethod selects the PHY timestamping algorithm.
type OnsetMethod string

// Onset detection methods (§6.1.2 plus the despreading extension).
const (
	OnsetAIC      OnsetMethod = "aic"
	OnsetEnvelope OnsetMethod = "envelope"
	// OnsetDechirp uses the despreading-based triangle-apex detector
	// (DESIGN.md §6): microseconds down to ~−10 dB where the paper's
	// time-domain detectors degrade.
	OnsetDechirp OnsetMethod = "dechirp"
)

// FBMethod selects the frequency-bias estimator.
type FBMethod string

// FB estimation methods (§7.1 plus the extensions of DESIGN.md §6).
const (
	FBLinearRegression FBMethod = "linear-regression"
	FBLeastSquares     FBMethod = "least-squares"
	FBDechirpFFT       FBMethod = "dechirp-fft"
	// FBUpDown jointly estimates bias and timing from one preamble up
	// chirp and one SFD down chirp, cancelling onset-error-induced bias.
	// It needs captures spanning the whole preamble + SFD (~12.5 chirps)
	// instead of the paper's 2; Simulation sizes its captures accordingly.
	FBUpDown FBMethod = "updown"
)

// Config configures a Gateway.
type Config struct {
	// Params is the LoRa channel configuration (DefaultParams(7) if SF is
	// unset).
	Params lora.Params
	// SDR models the attached SDR receiver; nil uses an ideal 8-bit
	// RTL-SDR with zero bias.
	SDR *sdr.Receiver
	// SampleRate of SDR captures (sdr.DefaultSampleRate when 0).
	SampleRate float64
	// Onset selects the timestamping detector (OnsetAIC by default).
	Onset OnsetMethod
	// FB selects the bias estimator (FBLinearRegression by default;
	// FBLeastSquares is the low-SNR option at higher CPU cost).
	FB FBMethod
	// ToleranceHz is the replay-detection deviation threshold
	// (core.DefaultToleranceHz when 0).
	ToleranceHz float64
	// Rand drives the SDR phase and the least-squares optimizer; required.
	Rand *rand.Rand
}

// Gateway is a SoftLoRa gateway instance.
type Gateway struct {
	params     lora.Params
	sampleRate float64
	receiver   *sdr.Receiver
	onset      core.OnsetDetector
	estimator  core.FBEstimator
	updown     *core.UpDownEstimator // non-nil when FBUpDown is selected
	detector   *core.ReplayDetector
}

// CaptureChirps returns how many chirp times after the onset the gateway's
// SDR capture must span for the configured estimator: 4 for the paper's
// two-chirp analysis (with margin), preamble+4 for the up/down joint
// estimator, which needs the SFD.
func (g *Gateway) CaptureChirps() int {
	if g.updown != nil {
		return g.params.PreambleChirps + 4
	}
	return 4
}

// Configuration errors.
var (
	ErrNilRand      = errors.New("softlora: Config.Rand must be set")
	ErrBadMethod    = errors.New("softlora: unknown method")
	ErrCaptureShort = errors.New("softlora: capture too short for onset + two chirps")
)

// NewGateway validates the configuration and builds a Gateway.
func NewGateway(cfg Config) (*Gateway, error) {
	if cfg.Rand == nil {
		return nil, ErrNilRand
	}
	params := cfg.Params
	if params.SF == 0 {
		params = lora.DefaultParams(7)
	}
	if err := params.Validate(); err != nil {
		return nil, fmt.Errorf("softlora: %w", err)
	}
	rate := cfg.SampleRate
	if rate == 0 {
		rate = sdr.DefaultSampleRate
	}
	receiver := cfg.SDR
	if receiver == nil {
		receiver = &sdr.Receiver{ADCBits: 8, Rand: cfg.Rand}
	}
	if receiver.Rand == nil {
		receiver.Rand = cfg.Rand
	}
	g := &Gateway{params: params, sampleRate: rate, receiver: receiver}
	switch cfg.Onset {
	case "", OnsetAIC:
		g.onset = &core.AICDetector{LowPassCutoffHz: core.DefaultPrefilterCutoffHz}
	case OnsetEnvelope:
		g.onset = &core.EnvelopeDetector{SmoothLen: 8, LowPassCutoffHz: core.DefaultPrefilterCutoffHz}
	case OnsetDechirp:
		g.onset = &core.DechirpOnsetDetector{Params: params}
	default:
		return nil, fmt.Errorf("%w: onset %q", ErrBadMethod, cfg.Onset)
	}
	switch cfg.FB {
	case "", FBLinearRegression:
		g.estimator = &core.LinearRegressionEstimator{Params: params}
	case FBLeastSquares:
		g.estimator = &core.LeastSquaresEstimator{Params: params, Decimation: 4, Rand: cfg.Rand}
	case FBDechirpFFT:
		g.estimator = &core.DechirpFFTEstimator{Params: params}
	case FBUpDown:
		g.updown = &core.UpDownEstimator{Params: params}
	default:
		return nil, fmt.Errorf("%w: fb %q", ErrBadMethod, cfg.FB)
	}
	g.detector = core.NewReplayDetector()
	if cfg.ToleranceHz > 0 {
		g.detector.ToleranceHz = cfg.ToleranceHz
	}
	return g, nil
}

// Params returns the gateway's channel configuration.
func (g *Gateway) Params() lora.Params { return g.params }

// UplinkReport is the outcome of processing one uplink.
type UplinkReport struct {
	// ArrivalTime is the PHY-timestamped preamble onset on the channel
	// timeline (seconds).
	ArrivalTime float64
	// OnsetSample is the onset position within the SDR capture.
	OnsetSample int
	// FrequencyBiasHz is the estimated δ = δTx − δRx.
	FrequencyBiasHz float64
	// FrequencyBiasPPM expresses the bias in ppm of the channel center.
	FrequencyBiasPPM float64
	// Verdict is the replay-detection decision.
	Verdict Verdict
	// Accepted reports whether the frame's data was accepted for
	// timestamping (false for replays).
	Accepted bool
	// Timestamps are the reconstructed global times of the frame's data
	// records (nil when the frame is rejected).
	Timestamps []float64
}

// ProcessUplink runs the full SoftLoRa pipeline on an antenna-level capture:
// SDR down-conversion, PHY onset timestamping, FB estimation on the second
// preamble chirp, replay detection against the claimed device, and
// sync-free timestamp reconstruction for the frame's elapsed-time records.
//
// The capture must include noise lead-in before the frame and at least two
// preamble chirps after the onset. claimedID is the source device ID
// decoded from the frame by the commodity LoRaWAN radio.
func (g *Gateway) ProcessUplink(cap *radio.Capture, claimedID string, records []timestamp.FrameRecord) (*UplinkReport, error) {
	sdrCap, err := g.receiver.Downconvert(cap)
	if err != nil {
		return nil, fmt.Errorf("softlora: %w", err)
	}
	onset, err := g.onset.DetectOnset(sdrCap.IQ, sdrCap.Rate)
	if err != nil {
		return nil, fmt.Errorf("softlora: %w", err)
	}
	n := int(g.params.SamplesPerChirp(sdrCap.Rate))
	var fbHz float64
	arrival := sdrCap.TimeOf(onset.Sample)
	if g.updown != nil {
		res, udErr := g.updown.Estimate(sdrCap.IQ, onset.Sample, sdrCap.Rate)
		if udErr != nil {
			return nil, fmt.Errorf("softlora: %w", udErr)
		}
		fbHz = res.DeltaHz
		// The joint estimator also refines the PHY timestamp.
		arrival += res.TimingCorrection
	} else {
		// The first captured chirp yields the timestamp; the second yields
		// the FB (§5.1).
		second := onset.Sample + n
		if second+n > len(sdrCap.IQ) {
			return nil, fmt.Errorf("%w: onset %d, capture %d", ErrCaptureShort, onset.Sample, len(sdrCap.IQ))
		}
		est, estErr := g.estimator.EstimateFB(sdrCap.IQ[second:second+n], sdrCap.Rate)
		if estErr != nil {
			return nil, fmt.Errorf("softlora: %w", estErr)
		}
		fbHz = est.DeltaHz
	}
	verdict := g.detector.Check(claimedID, fbHz)
	report := &UplinkReport{
		ArrivalTime:      arrival,
		OnsetSample:      onset.Sample,
		FrequencyBiasHz:  fbHz,
		FrequencyBiasPPM: g.params.PPM(fbHz),
	}
	switch verdict {
	case core.VerdictReplay:
		report.Verdict = VerdictReplay
	case core.VerdictEnrolling:
		report.Verdict = VerdictEnrolling
	default:
		report.Verdict = VerdictGenuine
	}
	report.Accepted = report.Verdict != VerdictReplay
	if report.Accepted {
		report.Timestamps = make([]float64, len(records))
		for i, r := range records {
			report.Timestamps[i] = timestamp.Reconstruct(report.ArrivalTime, r)
		}
	}
	return report, nil
}

// EnrollDevice pre-loads a device's known bias (offline database
// construction, §7.2).
func (g *Gateway) EnrollDevice(id string, biasHz float64) {
	g.detector.Enroll(id, biasHz, core.DefaultEnrollFrames)
}

// DeviceBias returns the learned bias state for a device.
func (g *Gateway) DeviceBias(id string) (mean float64, frames int, ok bool) {
	rec, ok := g.detector.Record(id)
	if !ok {
		return 0, 0, false
	}
	return rec.Mean, rec.Count, true
}

// SaveBiasDatabase writes the FB database as JSON.
func (g *Gateway) SaveBiasDatabase(w io.Writer) error { return g.detector.Save(w) }

// LoadBiasDatabase replaces the FB database from JSON.
func (g *Gateway) LoadBiasDatabase(r io.Reader) error { return g.detector.Load(r) }
