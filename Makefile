GO ?= go

.PHONY: ci fmt vet build test race bench

# ci is the gate every PR must pass: formatting, static checks, build, the
# full test suite, and the race detector over the concurrent batch pipeline.
ci: fmt vet build test race

fmt:
	@files=$$(gofmt -l .); if [ -n "$$files" ]; then \
		echo "gofmt needed on:"; echo "$$files"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -run Batch .

# bench refreshes BENCH_softlora.json (the cross-PR perf trajectory).
bench:
	sh scripts/bench.sh
