GO ?= go

.PHONY: ci fmt vet build test race determinism faults bench lint

# ci is the gate every PR must pass: formatting, static checks (go vet +
# the repo's own contract analyzers), build, the full test suite, the race
# detector over the concurrent paths (batch pipeline + network server +
# shared dsp scratch), the batch-determinism contract, and the
# crash-consistency fault-injection suite.
ci: fmt vet lint build test race determinism faults

fmt:
	@files=$$(gofmt -l .); if [ -n "$$files" ]; then \
		echo "gofmt needed on:"; echo "$$files"; exit 1; fi

vet:
	$(GO) vet ./...

# lint runs the softlora contract analyzers (internal/lint): determinism,
# hotpath, allocfree, complex64 widening, bufpool ownership, lock/shard
# discipline — interprocedurally, over the call graph of the whole load.
# -tests extends the load to each package's test variants, so contract
# regressions in _test.go helpers are caught too (package-wide directives
# still scope only to non-test files).
# See "Static contracts" in ROADMAP.md for the directives they understand.
lint:
	$(GO) run ./cmd/softlora-lint -tests ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -run Batch .
	$(GO) test -race ./internal/netserver
	$(GO) test -race -run 'Concurrent|Parallel|Race' ./internal/dsp

# determinism re-runs the ordered-commit contracts explicitly: verdicts and
# serialized bias-database bytes must be identical for every worker count
# (batch pipeline), with the AIC detector's float32 decision lanes toggled
# on or off (OnsetFloat64), and for every delivery schedule of the same
# copies (streaming dedup window).
determinism:
	$(GO) test -count=1 -run 'TestProcessBatchSameDeviceDeterministicCommit|TestProcessBatchDeterministicAcrossWorkerCounts|TestProcessBatchDeterministicAcrossFloatLanes|TestMultiGatewayDeterministic' .
	$(GO) test -count=1 -run 'TestChaosDatabaseBytesScheduleIndependent|TestCheckBatchOrderIndependentDatabase' ./internal/netserver

# faults replays the fault-injection suites: the filesystem injector
# (internal/faultinject) kills a bias-database flush at every filesystem
# operation — crash-before and crash-after — plus the recoverable-error
# retry and silent-bit-flip quarantine paths; the delivery chaos harness
# (TestChaos*) drives the streaming dedup window through duplicated,
# reordered, delayed and dropped schedules and asserts one committed
# verdict per frame with schedule-independent database bytes; then a short
# fuzz pass over the snapshot decoder. The contracts in
# internal/netserver/doc.go are exactly what this target enforces.
faults:
	$(GO) test -count=1 ./internal/faultinject
	$(GO) test -count=1 -run 'TestCrash|TestFault|TestChaos' ./internal/netserver
	$(GO) test -run '^$$' -fuzz '^FuzzLoadShard$$' -fuzztime 10s ./internal/netserver

# bench refreshes BENCH_softlora.json (the cross-PR perf trajectory).
bench:
	sh scripts/bench.sh
