GO ?= go

.PHONY: ci fmt vet build test race determinism bench

# ci is the gate every PR must pass: formatting, static checks, build, the
# full test suite, the race detector over the concurrent paths (batch
# pipeline + network server), and the batch-determinism contract.
ci: fmt vet build test race determinism

fmt:
	@files=$$(gofmt -l .); if [ -n "$$files" ]; then \
		echo "gofmt needed on:"; echo "$$files"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -run Batch .
	$(GO) test -race ./internal/netserver

# determinism re-runs the ordered-commit contract explicitly: verdicts and
# serialized bias-database bytes must be identical for every worker count,
# including same-device batches.
determinism:
	$(GO) test -count=1 -run 'TestProcessBatchSameDeviceDeterministicCommit|TestProcessBatchDeterministicAcrossWorkerCounts|TestMultiGatewayDeterministic' .

# bench refreshes BENCH_softlora.json (the cross-PR perf trajectory).
bench:
	sh scripts/bench.sh
