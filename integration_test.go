package softlora

// Integration and failure-injection tests for the full gateway pipeline:
// collisions, clipping, drift tracking over long sessions, attacks in the
// middle of sessions, and spreading-factor sweeps.

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"softlora/internal/attack"
	"softlora/internal/dsp"
	"softlora/internal/lora"
	"softlora/internal/radio"
	"softlora/internal/sdr"
	"softlora/internal/timestamp"
)

func TestLongSessionWithTemperatureDrift(t *testing.T) {
	// A device whose oscillator drifts 10 Hz per frame (temperature ramp —
	// slow relative to the frame rate, as in practice) stays genuine over
	// a long session because the gateway tracks the drift (§7.2), and a
	// replay injected afterwards is still caught. Note the inherent
	// trade-off: drift fast enough to outrun the tracker's lag would eat
	// into the detection margin.
	rng := rand.New(rand.NewSource(200))
	gw, err := NewGateway(Config{Rand: rng})
	if err != nil {
		t.Fatal(err)
	}
	sim := &Simulation{Gateway: gw, NoiseFloordBm: -100, Rand: rng}
	dev := NewSimDevice("drifting", -24, 40, 14, 80, 100)
	dev.Transmitter.TempDriftHzPerFrame = 10
	dev.Transmitter.JitterHz = 20

	var lastGenuineFB float64
	const frames = 60
	for i := 0; i < frames; i++ {
		now := float64(i) * 30
		dev.Record(now-1, nil)
		report, _, err := sim.Uplink(dev, now)
		if err != nil {
			t.Fatal(err)
		}
		if i >= 3 && report.Verdict != VerdictGenuine {
			t.Fatalf("frame %d: verdict = %s (fb %.0f Hz)", i, report.Verdict, report.FrequencyBiasHz)
		}
		lastGenuineFB = report.FrequencyBiasHz
	}
	// Total drift 60*25 = 1.5 kHz — far beyond the static tolerance, yet
	// tracked. Now a replayer shifts the next frame by −620 Hz.
	p := gw.Params()
	spec := lora.ChirpSpec{
		SF:              p.SF,
		Bandwidth:       p.Bandwidth,
		FrequencyOffset: lastGenuineFB - 620,
		Phase:           1.0,
	}
	lead := 2e-3
	iq := make([]complex128, int((lead+3*spec.Duration())*sdr.DefaultSampleRate))
	spec.AddTo(iq, sdr.DefaultSampleRate, lead)
	second := spec
	second.Phase = spec.EndPhase()
	second.AddTo(iq, sdr.DefaultSampleRate, lead+spec.Duration())
	noise := dsp.GaussianNoise(rng, len(iq), 1e-6)
	for i := range iq {
		iq[i] += noise[i]
	}
	cap := &radio.Capture{IQ: iq, Rate: sdr.DefaultSampleRate}
	report, err := gw.ProcessUplink(cap, "drifting", nil)
	if err != nil {
		t.Fatal(err)
	}
	if report.Verdict != VerdictReplay {
		t.Errorf("post-drift replay verdict = %s (fb %.0f vs last genuine %.0f)",
			report.Verdict, report.FrequencyBiasHz, lastGenuineFB)
	}
}

func TestAttackMidSessionDoesNotPoisonDatabase(t *testing.T) {
	rng := rand.New(rand.NewSource(201))
	gw, err := NewGateway(Config{Rand: rng})
	if err != nil {
		t.Fatal(err)
	}
	sim := &Simulation{Gateway: gw, NoiseFloordBm: -105, Rand: rng}
	dev := NewSimDevice("victim", -22, 40, 14, 75, 60)

	uplink := func(now float64) *UplinkReport {
		t.Helper()
		dev.Record(now-1, nil)
		report, _, err := sim.Uplink(dev, now)
		if err != nil {
			t.Fatal(err)
		}
		return report
	}
	for i := 0; i < 5; i++ {
		uplink(float64(i) * 20)
	}
	meanBefore, _, _ := gw.DeviceBias("victim")

	// Replay attack in the middle of the session.
	replayer := attack.Replayer{FrequencyBiasHz: -650, Delay: 40}
	frame := lora.Frame{Params: gw.Params(), Payload: []byte("x")}
	wf, err := frame.Modulate(lora.Impairments{FrequencyBias: dev.Transmitter.BiasHz(gw.Params())}, sdr.DefaultSampleRate)
	if err != nil {
		t.Fatal(err)
	}
	em := radio.Emission{
		Waveform:   replayer.Reemit(wf, sdr.DefaultSampleRate),
		StartTime:  140,
		TxPowerdBm: 0,
		PathLossdB: 40,
		Distance:   1,
	}
	cap, err := sim.CaptureEmission(em)
	if err != nil {
		t.Fatal(err)
	}
	report, err := gw.ProcessUplink(cap, "victim", []timestamp.FrameRecord{{Elapsed: 1000}})
	if err != nil {
		t.Fatal(err)
	}
	if report.Verdict != VerdictReplay {
		t.Fatalf("attack verdict = %s", report.Verdict)
	}
	meanAfter, _, _ := gw.DeviceBias("victim")
	if meanAfter != meanBefore {
		t.Errorf("replay poisoned database: %.1f -> %.1f", meanBefore, meanAfter)
	}
	// Subsequent genuine frames still pass.
	if r := uplink(200); r.Verdict != VerdictGenuine {
		t.Errorf("post-attack genuine frame: %s", r.Verdict)
	}
}

func TestCollisionDoesNotCrashPipeline(t *testing.T) {
	// Two frames from different devices colliding in the same capture:
	// the pipeline must return a defined result or a clean error — never
	// a bogus genuine verdict for the wrong device at a wildly different
	// bias.
	rng := rand.New(rand.NewSource(202))
	gw, err := NewGateway(Config{Rand: rng})
	if err != nil {
		t.Fatal(err)
	}
	p := gw.Params()
	const rate = sdr.DefaultSampleRate
	lead := 2e-3
	dur := 4 * p.ChirpTime()
	iq := make([]complex128, int((lead+dur)*rate))
	a := lora.ChirpSpec{SF: p.SF, Bandwidth: p.Bandwidth, FrequencyOffset: -21e3, Phase: 0.2}
	b := lora.ChirpSpec{SF: p.SF, Bandwidth: p.Bandwidth, FrequencyOffset: -18e3, Phase: 1.7, Amplitude: 0.9}
	for c := 0; c < 3; c++ {
		off := float64(c) * p.ChirpTime()
		ac := a
		ac.Phase = a.PhaseAt(off)
		ac.AddTo(iq, rate, lead+off)
		bc := b
		bc.Phase = b.PhaseAt(off)
		bc.AddTo(iq, rate, lead+off+0.3e-3) // partially overlapping
	}
	noise := dsp.GaussianNoise(rng, len(iq), 1e-4)
	for i := range iq {
		iq[i] += noise[i]
	}
	gw.EnrollDevice("a", -21e3)
	cap := &radio.Capture{IQ: iq, Rate: rate}
	report, err := gw.ProcessUplink(cap, "a", nil)
	if err != nil {
		return // clean error is acceptable under collision
	}
	// If it decodes, the estimate must either match device a (the Choir
	// observation: distinct FBs disentangle colliders) or be flagged.
	if report.Verdict == VerdictGenuine {
		if math.Abs(report.FrequencyBiasHz+21e3) > 500 {
			t.Errorf("collision produced genuine verdict at wrong bias %.0f", report.FrequencyBiasHz)
		}
	}
}

func TestClippedCaptureStillProcessed(t *testing.T) {
	// A strong interferer saturates the ADC for part of the capture; the
	// pipeline should survive (AGC + clipping) and still process the
	// frame.
	rng := rand.New(rand.NewSource(203))
	gw, err := NewGateway(Config{Rand: rng})
	if err != nil {
		t.Fatal(err)
	}
	p := gw.Params()
	const rate = sdr.DefaultSampleRate
	lead := 2e-3
	spec := lora.ChirpSpec{SF: p.SF, Bandwidth: p.Bandwidth, FrequencyOffset: -22e3}
	iq := make([]complex128, int((lead+3*spec.Duration())*rate))
	spec.AddTo(iq, rate, lead)
	second := spec
	second.Phase = spec.EndPhase()
	second.AddTo(iq, rate, lead+spec.Duration())
	// Impulsive interferer 30 dB hotter over a short burst before the
	// frame.
	for i := 100; i < 400; i++ {
		iq[i] += complex(30*math.Cos(float64(i)), 30*math.Sin(float64(i)))
	}
	noise := dsp.GaussianNoise(rng, len(iq), 1e-4)
	for i := range iq {
		iq[i] += noise[i]
	}
	gw.EnrollDevice("n", -22e3)
	cap := &radio.Capture{IQ: iq, Rate: rate}
	report, err := gw.ProcessUplink(cap, "n", nil)
	if err != nil {
		t.Fatalf("pipeline failed under clipping: %v", err)
	}
	// The burst must not masquerade as the onset.
	if report.OnsetSample < 450 {
		t.Errorf("onset %d landed inside the interference burst", report.OnsetSample)
	}
}

func TestPipelineAcrossSpreadingFactors(t *testing.T) {
	for _, sf := range []int{7, 8, 9} {
		sf := sf
		t.Run(fmt.Sprintf("SF%d", sf), func(t *testing.T) {
			rng := rand.New(rand.NewSource(204 + int64(sf)))
			p := lora.DefaultParams(sf)
			p.LowDataRateOptimize = false
			gw, err := NewGateway(Config{Params: p, Rand: rng})
			if err != nil {
				t.Fatal(err)
			}
			sim := &Simulation{Gateway: gw, NoiseFloordBm: -100, Rand: rng}
			dev := NewSimDevice("n", -23, 40, 14, 80, 100)
			gw.EnrollDevice("n", dev.Transmitter.BiasHz(p))
			dev.Record(9, nil)
			report, _, err := sim.Uplink(dev, 10)
			if err != nil {
				t.Fatal(err)
			}
			if report.Verdict != VerdictGenuine {
				t.Errorf("SF%d verdict = %s (fb %.0f)", sf, report.Verdict, report.FrequencyBiasHz)
			}
			if math.Abs(report.ArrivalTime-10) > 1e-4 {
				t.Errorf("SF%d arrival = %f", sf, report.ArrivalTime)
			}
		})
	}
}

func TestColdStartNewDeviceEnrollsThenProtects(t *testing.T) {
	rng := rand.New(rand.NewSource(205))
	gw, err := NewGateway(Config{Rand: rng})
	if err != nil {
		t.Fatal(err)
	}
	sim := &Simulation{Gateway: gw, NoiseFloordBm: -100, Rand: rng}
	dev := NewSimDevice("fresh", -26, 40, 14, 78, 90)
	verdicts := make([]Verdict, 0, 5)
	for i := 0; i < 5; i++ {
		dev.Record(float64(i*10), nil)
		report, _, err := sim.Uplink(dev, float64(i*10)+1)
		if err != nil {
			t.Fatal(err)
		}
		verdicts = append(verdicts, report.Verdict)
	}
	for i, v := range verdicts[:3] {
		if v != VerdictEnrolling {
			t.Errorf("frame %d: %s, want enrolling", i, v)
		}
	}
	for i, v := range verdicts[3:] {
		if v != VerdictGenuine {
			t.Errorf("frame %d: %s, want genuine", i+3, v)
		}
	}
}
