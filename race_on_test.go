//go:build race

package softlora

// raceEnabled reports that the race detector instruments this build;
// sync.Pool intentionally drops items under race, so pooled-allocation
// budgets do not hold.
const raceEnabled = true
