package faultinject

import (
	"reflect"
	"testing"
)

// obs is a minimal stand-in for a PHY observation: receiver + timestamp +
// payload identity.
type obs struct {
	GW string
	At float64
	ID int
}

func trafficOf(plan TrafficPlan) *Traffic[obs] {
	return NewTraffic(plan,
		func(o obs) string { return o.GW },
		func(o obs, d float64) obs { o.At += d; return o },
	)
}

func stream(n int) []obs {
	out := make([]obs, n)
	for i := range out {
		out[i] = obs{GW: "gw", At: float64(i), ID: i}
	}
	return out
}

func TestTrafficIdentityPlan(t *testing.T) {
	in := stream(50)
	got := trafficOf(TrafficPlan{Seed: 1}).Schedule(in)
	if !reflect.DeepEqual(got, in) {
		t.Fatal("zero plan must deliver the stream unchanged")
	}
}

func TestTrafficDeterministic(t *testing.T) {
	plan := TrafficPlan{
		Seed: 42, DupProb: 0.3, DupBurst: 3, DropProb: 0.1,
		DelayProb: 0.2, MaxDelay: 5, ReorderWindow: 8,
		GatewaySkew: map[string]float64{"gw": 0.25},
	}
	a := trafficOf(plan).Schedule(stream(200))
	b := trafficOf(plan).Schedule(stream(200))
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same plan and input must produce the same schedule")
	}
	c := trafficOf(TrafficPlan{Seed: 43, DupProb: 0.3, DupBurst: 3, DropProb: 0.1,
		DelayProb: 0.2, MaxDelay: 5, ReorderWindow: 8}).Schedule(stream(200))
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds should produce different schedules")
	}
}

func TestTrafficDuplicateBurst(t *testing.T) {
	tr := trafficOf(TrafficPlan{Seed: 7, DupProb: 1, DupBurst: 4, ReorderWindow: 2})
	got := tr.Schedule(stream(100))
	st := tr.Stats()
	if st.Duplicated == 0 {
		t.Fatal("DupProb=1 must duplicate")
	}
	if len(got) != 100+st.Duplicated {
		t.Fatalf("out=%d want %d", len(got), 100+st.Duplicated)
	}
	// Every logical item still delivered at least once.
	seen := map[int]int{}
	for _, o := range got {
		seen[o.ID]++
	}
	for i := 0; i < 100; i++ {
		if seen[i] < 2 {
			t.Fatalf("item %d delivered %d times, want >= 2", i, seen[i])
		}
	}
}

func TestTrafficDropAll(t *testing.T) {
	tr := trafficOf(TrafficPlan{Seed: 3, DropProb: 1})
	if got := tr.Schedule(stream(25)); len(got) != 0 {
		t.Fatalf("DropProb=1 delivered %d items", len(got))
	}
	if st := tr.Stats(); st.Dropped != 25 {
		t.Fatalf("Dropped=%d want 25", st.Dropped)
	}
}

func TestTrafficBoundedReorder(t *testing.T) {
	const window = 5
	tr := trafficOf(TrafficPlan{Seed: 11, ReorderWindow: window})
	got := tr.Schedule(stream(300))
	if len(got) != 300 {
		t.Fatalf("reorder must not add or drop: got %d", len(got))
	}
	for pos, o := range got {
		if d := pos - o.ID; d < -window || d > window {
			t.Fatalf("item %d displaced %d slots, bound %d", o.ID, d, window)
		}
	}
}

func TestTrafficGatewaySkew(t *testing.T) {
	in := []obs{{GW: "a", At: 10, ID: 0}, {GW: "b", At: 10, ID: 1}}
	tr := trafficOf(TrafficPlan{Seed: 1, GatewaySkew: map[string]float64{"b": -0.5}})
	got := tr.Schedule(in)
	if got[0].At != 10 || got[1].At != 9.5 {
		t.Fatalf("skew misapplied: %+v", got)
	}
	if tr.Stats().Skewed != 1 {
		t.Fatalf("Skewed=%d want 1", tr.Stats().Skewed)
	}
}

func TestSplitBatches(t *testing.T) {
	in := stream(10)
	b := SplitBatches(in, 4)
	if len(b) != 3 || len(b[0]) != 4 || len(b[1]) != 4 || len(b[2]) != 2 {
		t.Fatalf("bad split: %d batches", len(b))
	}
	if got := SplitBatches([]obs{}, 4); got != nil {
		t.Fatal("empty input should split to nil")
	}
	if got := SplitBatches(in, 0); len(got) != 10 {
		t.Fatalf("size<=0 should clamp to 1, got %d batches", len(got))
	}
}
