package faultinject

import (
	"math/rand"
	"sort"
)

// TrafficPlan configures the delivery chaos injector: a deterministic
// (seeded) transformation of a logical observation stream into one
// adversarial delivery schedule. The injector is generic over the item
// type so it lives beside the filesystem injector without importing the
// serving layer; the serving tests instantiate it with their observation
// type and two accessors.
type TrafficPlan struct {
	// Seed makes the schedule reproducible. Two injectors with the same
	// plan produce the same schedule for the same input.
	Seed int64
	// DupProb is the per-item probability of a duplicate burst: the item
	// is delivered again 1..DupBurst extra times (exact copies, as from a
	// looping packet forwarder). DupBurst <= 0 means 1.
	DupProb  float64
	DupBurst int
	// DropProb is the per-item probability the delivery is lost entirely.
	DropProb float64
	// DelayProb is the per-item probability of a late delivery: the
	// item's timestamp is shifted by up to MaxDelay seconds and its
	// delivery slot moves correspondingly later.
	DelayProb float64
	MaxDelay  float64
	// ReorderWindow bounds delivery reordering: each item's delivery slot
	// is displaced by up to this many positions. 0 preserves order.
	ReorderWindow int
	// GatewaySkew offsets every timestamp from a gateway by a constant
	// (seconds) — a receiver with a miscalibrated PHY clock.
	GatewaySkew map[string]float64
}

// TrafficStats counts what one Schedule call injected.
type TrafficStats struct {
	// In and Out are the logical input and delivered output counts.
	In, Out int
	// Duplicated counts extra copies emitted, Dropped lost deliveries,
	// Delayed late deliveries, Skewed items whose gateway had a
	// configured clock offset.
	Duplicated int
	Dropped    int
	Delayed    int
	Skewed     int
}

// Traffic is a delivery chaos injector over items of type T.
type Traffic[T any] struct {
	plan    TrafficPlan
	rng     *rand.Rand
	gateway func(T) string     // the item's receiver identity
	shift   func(T, float64) T // the item with its timestamp shifted
	stats   TrafficStats
}

// NewTraffic builds an injector. gateway returns an item's receiver ID
// (for GatewaySkew); shift returns a copy of the item with its timestamp
// moved by the given delta seconds. Either may be nil when the plan
// doesn't need it (no skew / no delay).
func NewTraffic[T any](plan TrafficPlan, gateway func(T) string, shift func(T, float64) T) *Traffic[T] {
	if plan.DupBurst <= 0 {
		plan.DupBurst = 1
	}
	return &Traffic[T]{
		plan:    plan,
		rng:     rand.New(rand.NewSource(plan.Seed)),
		gateway: gateway,
		shift:   shift,
	}
}

// delivery is one scheduled item with its delivery slot.
type delivery[T any] struct {
	item T
	slot float64
	seq  int // input order, the tie-break
}

// Schedule transforms a logical stream into one delivery schedule:
// per-gateway skew, drops, duplicate bursts, bounded reorder and delay —
// all driven by the plan's seeded RNG, so the same plan and input always
// yield the same schedule. The injector's RNG advances across calls;
// reuse a fresh injector to replay the identical schedule.
func (t *Traffic[T]) Schedule(items []T) []T {
	t.stats.In += len(items)
	dels := make([]delivery[T], 0, len(items))
	for i, it := range items {
		if skew, ok := t.skewFor(it); ok {
			it = t.shift(it, skew)
			t.stats.Skewed++
		}
		if t.plan.DropProb > 0 && t.rng.Float64() < t.plan.DropProb {
			t.stats.Dropped++
			continue
		}
		copies := 1
		if t.plan.DupProb > 0 && t.rng.Float64() < t.plan.DupProb {
			extra := 1 + t.rng.Intn(t.plan.DupBurst)
			copies += extra
			t.stats.Duplicated += extra
		}
		for c := 0; c < copies; c++ {
			d := delivery[T]{item: it, slot: float64(i), seq: len(dels)}
			if c > 0 {
				// Duplicate copies land later, within the reorder bound.
				d.slot += t.rng.Float64() * float64(t.plan.ReorderWindow)
			}
			if t.plan.DelayProb > 0 && t.rng.Float64() < t.plan.DelayProb {
				lag := t.rng.Float64() * t.plan.MaxDelay
				if t.shift != nil {
					d.item = t.shift(d.item, lag)
				}
				d.slot += float64(t.plan.ReorderWindow)
				t.stats.Delayed++
			}
			if t.plan.ReorderWindow > 0 {
				d.slot += t.rng.Float64() * float64(t.plan.ReorderWindow)
			}
			dels = append(dels, d)
		}
	}
	sort.SliceStable(dels, func(i, j int) bool {
		if dels[i].slot != dels[j].slot {
			return dels[i].slot < dels[j].slot
		}
		return dels[i].seq < dels[j].seq
	})
	out := make([]T, len(dels))
	for i, d := range dels {
		out[i] = d.item
	}
	t.stats.Out += len(out)
	return out
}

// skewFor returns the gateway-skew delta for an item when one applies.
func (t *Traffic[T]) skewFor(it T) (float64, bool) {
	if len(t.plan.GatewaySkew) == 0 || t.gateway == nil || t.shift == nil {
		return 0, false
	}
	skew, ok := t.plan.GatewaySkew[t.gateway(it)]
	if !ok || skew == 0 {
		return 0, false
	}
	return skew, true
}

// Stats returns cumulative injection counters across Schedule calls.
func (t *Traffic[T]) Stats() TrafficStats { return t.stats }

// SplitBatches cuts a delivery schedule into consecutive batches of at
// most size items — the shape a gateway backhaul hands the network server.
func SplitBatches[T any](items []T, size int) [][]T {
	if size <= 0 {
		size = 1
	}
	var out [][]T
	for len(items) > size {
		out = append(out, items[:size])
		items = items[size:]
	}
	if len(items) > 0 {
		out = append(out, items)
	}
	return out
}
