// Package faultinject wraps a vfs.FS with deterministic or probabilistic
// fault injection: short writes, ENOSPC, fsync failures, torn renames,
// bit-flip corruption, and whole-process crash points. The persistence
// layer's crash-consistency suite uses it to kill a snapshot flush at every
// filesystem operation and prove the loader always recovers a consistent
// database; the fleet driver runs it probabilistically to prove the
// background flusher's retry path under sustained I/O trouble.
//
// Every mutating operation (Create, Write, Sync, Close, Rename, Remove) is
// counted in call order, so a test can measure a flush once with Ops(),
// then re-run it with CrashAt(k) for every k — an exhaustive enumeration of
// crash points rather than a sampled one.
package faultinject

import (
	"errors"
	"io"
	"math/rand"
	"sync"

	"softlora/internal/vfs"
)

// Injected fault errors.
var (
	// ErrInjected is returned by a recoverable injected fault (short
	// write, fsync failure, failed rename): the operation failed but the
	// process lives and may retry.
	ErrInjected = errors.New("faultinject: injected I/O error")
	// ErrNoSpace is the injected ENOSPC.
	ErrNoSpace = errors.New("faultinject: no space left on device")
	// ErrCrashed is returned by every operation after a crash point: the
	// simulated process is dead and nothing further reaches the disk.
	ErrCrashed = errors.New("faultinject: crashed")
)

// Op selects which filesystem operation a scheduled fault matches.
type Op int

// Operations. OpAny matches every mutating operation.
const (
	OpAny Op = iota
	OpCreate
	OpWrite
	OpSync
	OpClose
	OpRename
	OpRemove
)

// Kind is the fault to inject when a schedule matches.
type Kind int

// Fault kinds.
const (
	// KindFail fails the operation with ErrInjected (no side effect).
	KindFail Kind = iota
	// KindShortWrite writes only the first half of the buffer, then
	// fails with ErrInjected. Meaningful on OpWrite; other ops fail
	// plainly.
	KindShortWrite
	// KindENOSPC fails the operation with ErrNoSpace (no bytes written).
	KindENOSPC
	// KindBitFlip flips one bit of the written buffer and reports
	// success — silent media corruption the loader must catch by
	// checksum. Meaningful on OpWrite; a no-op elsewhere.
	KindBitFlip
	// KindCrash kills the process before the operation executes: the
	// operation and every later one return ErrCrashed.
	KindCrash
	// KindCrashAfter lets the operation complete, then kills the
	// process: the operation succeeds and every later one returns
	// ErrCrashed. Applied to a rename this is the "torn rename" case —
	// the rename landed but nothing after it (manifest update, cleanup)
	// did.
	KindCrashAfter
)

type rule struct {
	op        Op
	remaining int
	kind      Kind
}

// FS wraps an inner vfs.FS with fault injection. The zero schedule injects
// nothing; faults are armed with FailAt/CrashAt/CrashAfter/Probabilistic.
// Safe for concurrent use.
type FS struct {
	inner vfs.FS

	mu       sync.Mutex
	rules    []rule
	ops      int
	injected int
	crashed  bool

	// probabilistic mode
	rng   *rand.Rand
	rate  float64
	kinds []Kind
}

// New wraps inner with an empty fault schedule.
func New(inner vfs.FS) *FS { return &FS{inner: inner} }

// FailAt schedules the n-th (1-based) occurrence of op to fail with kind.
func (f *FS) FailAt(op Op, n int, kind Kind) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.rules = append(f.rules, rule{op: op, remaining: n, kind: kind})
}

// CrashAt kills the simulated process at the n-th (1-based) mutating
// operation, before it executes.
func (f *FS) CrashAt(n int) { f.FailAt(OpAny, n, KindCrash) }

// CrashAfter kills the simulated process immediately after the n-th
// (1-based) mutating operation completes.
func (f *FS) CrashAfter(n int) { f.FailAt(OpAny, n, KindCrashAfter) }

// Probabilistic makes every mutating operation fail with probability rate,
// drawing the fault uniformly from kinds (recoverable kinds make sense
// here; a crash kind would end the run at the first hit). Deterministic
// given the seeded rng.
func (f *FS) Probabilistic(rng *rand.Rand, rate float64, kinds ...Kind) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.rng, f.rate = rng, rate
	if len(kinds) == 0 {
		kinds = []Kind{KindFail}
	}
	f.kinds = kinds
}

// Ops returns how many mutating operations have been observed.
func (f *FS) Ops() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.ops
}

// Injected returns how many faults have been injected.
func (f *FS) Injected() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.injected
}

// Crashed reports whether a crash point has fired.
func (f *FS) Crashed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.crashed
}

// Reset clears the schedule, counters and crash state (the inner FS keeps
// whatever state the faults left behind — that is the point).
func (f *FS) Reset() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.rules = nil
	f.ops, f.injected = 0, 0
	f.crashed = false
	f.rng, f.rate, f.kinds = nil, 0, nil
}

// step records one mutating operation and returns the fault to inject, if
// any. KindCrash/KindCrashAfter latch the crashed state here.
func (f *FS) step(op Op) (Kind, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return KindCrash, true
	}
	f.ops++
	for i := range f.rules {
		r := &f.rules[i]
		if r.remaining <= 0 || (r.op != OpAny && r.op != op) {
			continue
		}
		r.remaining--
		if r.remaining == 0 {
			f.injected++
			switch r.kind {
			case KindCrash, KindCrashAfter:
				f.crashed = true
			}
			return r.kind, true
		}
	}
	if f.rng != nil && f.rng.Float64() < f.rate {
		f.injected++
		return f.kinds[f.rng.Intn(len(f.kinds))], true
	}
	return 0, false
}

// opErr maps a non-write fault kind onto the operation's result. ok means
// the inner operation should still run (crash-after).
func opErr(kind Kind) (runInner bool, err error) {
	switch kind {
	case KindCrash:
		return false, ErrCrashed
	case KindCrashAfter:
		return true, nil
	case KindENOSPC:
		return false, ErrNoSpace
	case KindBitFlip:
		return true, nil // meaningless outside Write: pass through
	default:
		return false, ErrInjected
	}
}

// MkdirAll implements vfs.FS. Directory creation is treated as
// infrastructure, not a fault point (the snapshot protocol creates
// directories once, not per flush).
func (f *FS) MkdirAll(path string) error {
	if f.Crashed() {
		return ErrCrashed
	}
	return f.inner.MkdirAll(path)
}

// Create implements vfs.FS.
func (f *FS) Create(path string) (vfs.File, error) {
	if kind, hit := f.step(OpCreate); hit {
		run, err := opErr(kind)
		if !run {
			return nil, err
		}
		inner, cerr := f.inner.Create(path)
		if cerr != nil {
			return nil, cerr
		}
		return &file{fs: f, inner: inner}, err
	}
	inner, err := f.inner.Create(path)
	if err != nil {
		return nil, err
	}
	return &file{fs: f, inner: inner}, nil
}

// Open implements vfs.FS. Reads pass through (the loader is exercised
// against whatever bytes the faults left, not against read errors).
func (f *FS) Open(path string) (io.ReadCloser, error) {
	if f.Crashed() {
		return nil, ErrCrashed
	}
	return f.inner.Open(path)
}

// Rename implements vfs.FS.
func (f *FS) Rename(oldpath, newpath string) error {
	if kind, hit := f.step(OpRename); hit {
		run, err := opErr(kind)
		if !run {
			return err
		}
		if rerr := f.inner.Rename(oldpath, newpath); rerr != nil {
			return rerr
		}
		return err
	}
	return f.inner.Rename(oldpath, newpath)
}

// Remove implements vfs.FS.
func (f *FS) Remove(path string) error {
	if kind, hit := f.step(OpRemove); hit {
		run, err := opErr(kind)
		if !run {
			return err
		}
		if rerr := f.inner.Remove(path); rerr != nil {
			return rerr
		}
		return err
	}
	return f.inner.Remove(path)
}

// ReadDir implements vfs.FS.
func (f *FS) ReadDir(dir string) ([]string, error) {
	if f.Crashed() {
		return nil, ErrCrashed
	}
	return f.inner.ReadDir(dir)
}

// file routes Write/Sync/Close through the injector.
type file struct {
	fs    *FS
	inner vfs.File
}

// Write implements vfs.File.
func (w *file) Write(p []byte) (int, error) {
	if kind, hit := w.fs.step(OpWrite); hit {
		switch kind {
		case KindShortWrite:
			n, _ := w.inner.Write(p[:len(p)/2])
			return n, ErrInjected
		case KindENOSPC:
			return 0, ErrNoSpace
		case KindBitFlip:
			// Flip one bit, deterministically positioned by the op
			// counter, and report success — the checksum's job now.
			cp := make([]byte, len(p))
			copy(cp, p)
			if len(cp) > 0 {
				i := w.fs.Ops() % len(cp)
				cp[i] ^= 1 << (w.fs.Ops() % 8)
			}
			return w.inner.Write(cp)
		case KindCrash:
			return 0, ErrCrashed
		case KindCrashAfter:
			return w.inner.Write(p)
		default:
			return 0, ErrInjected
		}
	}
	return w.inner.Write(p)
}

// Sync implements vfs.File.
func (w *file) Sync() error {
	if kind, hit := w.fs.step(OpSync); hit {
		run, err := opErr(kind)
		if !run {
			return err
		}
		if serr := w.inner.Sync(); serr != nil {
			return serr
		}
		return err
	}
	return w.inner.Sync()
}

// Close implements vfs.File. The inner handle is always closed — a crashed
// or failed close must not leak the descriptor in the test process.
func (w *file) Close() error {
	kind, hit := w.fs.step(OpClose)
	cerr := w.inner.Close()
	if hit {
		run, err := opErr(kind)
		if !run || err != nil {
			if err == nil {
				err = ErrInjected
			}
			return err
		}
	}
	return cerr
}
