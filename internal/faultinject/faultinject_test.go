package faultinject

import (
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"softlora/internal/vfs"
)

func write(t *testing.T, fsys vfs.FS, path, content string) error {
	t.Helper()
	f, err := fsys.Create(path)
	if err != nil {
		return err
	}
	if _, err := f.Write([]byte(content)); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func TestPassThroughWhenUnarmed(t *testing.T) {
	dir := t.TempDir()
	fs := New(vfs.OS{})
	path := filepath.Join(dir, "a.txt")
	if err := write(t, fs, path, "hello"); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil || string(got) != "hello" {
		t.Fatalf("read back %q, %v", got, err)
	}
	if fs.Ops() != 4 { // Create, Write, Sync, Close
		t.Errorf("ops = %d, want 4", fs.Ops())
	}
	if fs.Injected() != 0 {
		t.Errorf("injected = %d", fs.Injected())
	}
}

func TestShortWriteWritesHalf(t *testing.T) {
	dir := t.TempDir()
	fs := New(vfs.OS{})
	fs.FailAt(OpWrite, 1, KindShortWrite)
	path := filepath.Join(dir, "a.txt")
	err := write(t, fs, path, "0123456789")
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	got, _ := os.ReadFile(path)
	if string(got) != "01234" {
		t.Errorf("file holds %q, want the first half", got)
	}
}

func TestCrashAtStopsEverythingAfter(t *testing.T) {
	dir := t.TempDir()
	fs := New(vfs.OS{})
	fs.CrashAt(3) // dies at the first Sync
	path := filepath.Join(dir, "a.txt")
	if err := write(t, fs, path, "abc"); !errors.Is(err, ErrCrashed) {
		t.Fatalf("err = %v, want ErrCrashed", err)
	}
	if !fs.Crashed() {
		t.Error("crash did not latch")
	}
	// Every subsequent operation is dead.
	if err := fs.Rename(path, path+"2"); !errors.Is(err, ErrCrashed) {
		t.Errorf("rename after crash: %v", err)
	}
	if _, err := fs.Create(filepath.Join(dir, "b.txt")); !errors.Is(err, ErrCrashed) {
		t.Errorf("create after crash: %v", err)
	}
	if _, err := fs.Open(path); !errors.Is(err, ErrCrashed) {
		t.Errorf("open after crash: %v", err)
	}
}

func TestCrashAfterLetsTheOpLand(t *testing.T) {
	dir := t.TempDir()
	fs := New(vfs.OS{})
	old := filepath.Join(dir, "old")
	new_ := filepath.Join(dir, "new")
	if err := write(t, fs, old, "x"); err != nil {
		t.Fatal(err)
	}
	fs.FailAt(OpRename, 1, KindCrashAfter)
	if err := fs.Rename(old, new_); err != nil {
		t.Fatalf("crash-after rename should report success, got %v", err)
	}
	if _, err := os.Stat(new_); err != nil {
		t.Error("rename did not land before the crash")
	}
	if err := fs.Remove(new_); !errors.Is(err, ErrCrashed) {
		t.Errorf("op after crash-after: %v", err)
	}
}

func TestBitFlipCorruptsSilently(t *testing.T) {
	dir := t.TempDir()
	fs := New(vfs.OS{})
	fs.FailAt(OpWrite, 1, KindBitFlip)
	path := filepath.Join(dir, "a.bin")
	want := []byte("payload-payload-payload")
	if err := write(t, fs, path, string(want)); err != nil {
		t.Fatalf("bit flip must be silent, got %v", err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("length changed: %d vs %d", len(got), len(want))
	}
	diff := 0
	for i := range got {
		if got[i] != want[i] {
			diff++
		}
	}
	if diff != 1 {
		t.Errorf("%d bytes differ, want exactly 1", diff)
	}
	// The caller's buffer must not have been mutated.
	if string(want) != "payload-payload-payload" {
		t.Error("injector scribbled on the caller's buffer")
	}
}

func TestProbabilisticIsDeterministicPerSeed(t *testing.T) {
	run := func() (ops, injected int) {
		dir := t.TempDir()
		fs := New(vfs.OS{})
		fs.Probabilistic(rand.New(rand.NewSource(9)), 0.3, KindFail, KindENOSPC)
		for i := 0; i < 50; i++ {
			_ = write(t, fs, filepath.Join(dir, "f"), "data")
		}
		return fs.Ops(), fs.Injected()
	}
	o1, i1 := run()
	o2, i2 := run()
	if o1 != o2 || i1 != i2 {
		t.Errorf("two seeded runs diverged: (%d,%d) vs (%d,%d)", o1, i1, o2, i2)
	}
	if i1 == 0 {
		t.Error("probabilistic injector at rate 0.3 never fired in 50 writes")
	}
}

func TestScheduledFaultCountsPerOpType(t *testing.T) {
	dir := t.TempDir()
	fs := New(vfs.OS{})
	fs.FailAt(OpSync, 2, KindFail) // second Sync only
	if err := write(t, fs, filepath.Join(dir, "a"), "x"); err != nil {
		t.Fatalf("first file should be clean: %v", err)
	}
	if err := write(t, fs, filepath.Join(dir, "b"), "x"); !errors.Is(err, ErrInjected) {
		t.Fatalf("second sync should fail: %v", err)
	}
	if err := write(t, fs, filepath.Join(dir, "c"), "x"); err != nil {
		t.Fatalf("third file should be clean again: %v", err)
	}
}
