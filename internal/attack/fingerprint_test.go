package attack

import (
	"errors"
	"math"
	"testing"
)

func TestFingerprinterNoProfiles(t *testing.T) {
	var f Fingerprinter
	if _, _, err := f.ClassifyFB(-20e3); !errors.Is(err, ErrNoProfiles) {
		t.Errorf("err = %v", err)
	}
	if _, _, err := f.Classify(-20e3, -80); !errors.Is(err, ErrNoProfiles) {
		t.Errorf("err = %v", err)
	}
}

func TestFingerprinterDistinctBiases(t *testing.T) {
	var f Fingerprinter
	f.Learn("node-1", -24e3, -80)
	f.Learn("node-2", -18e3, -95)
	id, margin, err := f.ClassifyFB(-23.9e3)
	if err != nil {
		t.Fatal(err)
	}
	if id != "node-1" {
		t.Errorf("id = %s", id)
	}
	if margin < 5 {
		t.Errorf("margin = %f, want confident", margin)
	}
}

func TestFingerprinterSimilarBiasesAmbiguousByFBAlone(t *testing.T) {
	// The Fig. 13 situation: nodes 3, 8, 14 share similar FBs. FB-only
	// classification is ambiguous; FB+RSSI separates them (§4.2.1/§7.1).
	var f Fingerprinter
	f.Learn("node-3", -21000, -70) // near the eavesdropper
	f.Learn("node-8", -21080, -95) // far away
	// Observed frame: FB between the two, RSSI matching node-8.
	fb, rssi := -21050.0, -94.0
	_, fbMargin, err := f.ClassifyFB(fb)
	if err != nil {
		t.Fatal(err)
	}
	if fbMargin > 3 {
		t.Errorf("FB-only margin = %f, expected ambiguous (<3)", fbMargin)
	}
	id, jointMargin, err := f.Classify(fb, rssi)
	if err != nil {
		t.Fatal(err)
	}
	if id != "node-8" {
		t.Errorf("joint id = %s, want node-8", id)
	}
	if jointMargin < 3 {
		t.Errorf("joint margin = %f, want confident", jointMargin)
	}
}

func TestFingerprinterExactMatchInfiniteMargin(t *testing.T) {
	var f Fingerprinter
	f.Learn("only", -20e3, -80)
	id, margin, err := f.Classify(-20e3, -80)
	if err != nil {
		t.Fatal(err)
	}
	if id != "only" || !math.IsInf(margin, 1) {
		t.Errorf("id=%s margin=%f", id, margin)
	}
}

func TestFingerprinterLearnUpdates(t *testing.T) {
	var f Fingerprinter
	f.Learn("n", -20e3, -80)
	f.Learn("n", -21e3, -80) // device re-profiled
	id, _, err := f.ClassifyFB(-21e3)
	if err != nil || id != "n" {
		t.Errorf("id=%s err=%v", id, err)
	}
}
