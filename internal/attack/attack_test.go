package attack

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"

	"softlora/internal/chip"
	"softlora/internal/core"
	"softlora/internal/lora"
	"softlora/internal/radio"
)

const testRate = 500e3

// buildingScenario reproduces §8.1.1: device and eavesdropper in section A
// 3rd floor, gateway and replayer in section C3 6th floor, SF8.
func buildingScenario(rng *rand.Rand) (*Scenario, *radio.Building) {
	b := radio.DefaultBuilding()
	p := lora.DefaultParams(8)
	p.LowDataRateOptimize = false
	device := b.FixedNode() // A1, floor 3
	gwPos, _ := b.Column("C3", 6)
	devGwLoss := b.LossdB(device, gwPos)
	s := &Scenario{
		Params:     p,
		SampleRate: testRate,
		Rand:       rng,
		Gateway:    chip.NewReceiver(p),

		DeviceTxPowerdBm:     14,
		DeviceGatewayLossdB:  devGwLoss,
		DeviceGatewayMeters:  b.Distance(device, gwPos),
		GatewayNoiseFloordBm: b.NoiseFloordBm,

		JammerTxPowerdBm:    14.1, // paper §8.1.1
		JammerGatewayLossdB: 40,   // jammer is next to the gateway
		JamOnsetAfter:       0,    // set below

		DeviceEaveLossdB:  40,        // eavesdropper next to the device
		JammerEaveLossdB:  devGwLoss, // jamming crosses the whole building
		EaveNoiseFloordBm: b.NoiseFloordBm,

		ReplayerGatewayLossdB: 40,
		Replayer: Replayer{
			FrequencyBiasHz: -620,
			TxPowerdBm:      7, // the stealthy bound from §8.1.1
			Delay:           2.0,
			JitterHz:        10,
			Rand:            rng,
		},
	}
	s.JamOnsetAfter = PickJamOnset(s.Gateway, 20, 0.5)
	return s, b
}

func testFrame(p lora.Params) lora.Frame {
	return lora.Frame{Params: p, Payload: []byte("sensor reading #042!")}
}

func TestExecuteRequiresConfig(t *testing.T) {
	s := &Scenario{}
	if _, err := s.Execute(lora.Frame{}, lora.Impairments{}, 0); err != ErrNilRand {
		t.Errorf("err = %v, want ErrNilRand", err)
	}
	s.Rand = rand.New(rand.NewSource(1))
	if _, err := s.Execute(lora.Frame{}, lora.Impairments{}, 0); err != ErrNilGateway {
		t.Errorf("err = %v, want ErrNilGateway", err)
	}
}

func TestFullAttackInBuilding(t *testing.T) {
	rng := rand.New(rand.NewSource(120))
	s, _ := buildingScenario(rng)
	frame := testFrame(s.Params)
	imp := lora.Impairments{FrequencyBias: -22e3, InitialPhase: 1.0}
	res, err := s.Execute(frame, imp, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	// §8.1.1's full claims:
	if !res.Stealthy {
		t.Errorf("jamming outcome = %v, want silent-drop", res.JamOutcome)
	}
	if !res.RecordingUsable {
		t.Errorf("eavesdropper SINR = %.1f dB: recording unusable", res.EavesdropSINRdB)
	}
	if !res.RSSIInconspicuous {
		t.Errorf("replay RSSI %.1f vs legit %.1f dBm: conspicuous", res.ReplayRSSIdBm, res.LegitRSSIdBm)
	}
	if res.InjectedDelay != 2.0 {
		t.Errorf("injected delay = %f", res.InjectedDelay)
	}
	if res.ReplayEmission.Waveform == nil {
		t.Fatal("no replay waveform")
	}
	if res.ReplayEmission.StartTime != 0.01+2.0 {
		t.Errorf("replay start = %f", res.ReplayEmission.StartTime)
	}
}

func TestJammingWeakAtEavesdropper(t *testing.T) {
	// The jamming signal crosses the whole building before reaching the
	// eavesdropper, so the recording stays clean (the paper's power-
	// control waiver).
	rng := rand.New(rand.NewSource(121))
	s, _ := buildingScenario(rng)
	res, err := s.Execute(testFrame(s.Params), lora.Impairments{FrequencyBias: -20e3}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.EavesdropSINRdB < 10 {
		t.Errorf("eavesdrop SINR = %.1f dB, want strong", res.EavesdropSINRdB)
	}
}

func TestReplayCarriesExtraFrequencyBias(t *testing.T) {
	// The SoftLoRa-visible artifact: FB(replayed) − FB(original) ≈ the
	// replayer's oscillator bias (Fig. 13).
	rng := rand.New(rand.NewSource(122))
	s, _ := buildingScenario(rng)
	s.Replayer.JitterHz = 1e-9 // isolate the deterministic shift
	const deviceBias = -21.5e3
	res, err := s.Execute(testFrame(s.Params), lora.Impairments{FrequencyBias: deviceBias, InitialPhase: 0.5}, 0)
	if err != nil {
		t.Fatal(err)
	}
	est := &core.LinearRegressionEstimator{Params: s.Params}
	// Original: estimate from the eavesdropper's recording (first chirp
	// starts at t0 = capture start).
	n := int(s.Params.SamplesPerChirp(testRate))
	orig, err := est.EstimateFB(res.Recording.IQ[:n], testRate)
	if err != nil {
		t.Fatal(err)
	}
	// Replayed: estimate from the replay waveform.
	rep, err := est.EstimateFB(res.ReplayEmission.Waveform[:n], testRate)
	if err != nil {
		t.Fatal(err)
	}
	shift := rep.DeltaHz - orig.DeltaHz
	if math.Abs(shift-(-620)) > 60 {
		t.Errorf("replay-induced FB shift = %.0f Hz, want ≈ −620", shift)
	}
	// The same shift must be visible through the gateway's fast dechirp-FFT
	// path (the estimator the batch pipeline runs): the replay fingerprint
	// cannot depend on which estimator tier the gateway picked.
	fft := &core.DechirpFFTEstimator{Params: s.Params}
	origFFT, err := fft.EstimateFB(res.Recording.IQ[:n], testRate)
	if err != nil {
		t.Fatal(err)
	}
	repFFT, err := fft.EstimateFB(res.ReplayEmission.Waveform[:n], testRate)
	if err != nil {
		t.Fatal(err)
	}
	if fftShift := repFFT.DeltaHz - origFFT.DeltaHz; math.Abs(fftShift-(-620)) > 60 {
		t.Errorf("dechirp-FFT replay-induced shift = %.0f Hz, want ≈ −620", fftShift)
	}
}

func TestReplayerReemitShiftsFrequency(t *testing.T) {
	r := &Replayer{FrequencyBiasHz: -500}
	const rate = 100e3
	// A pure tone at 1 kHz shifts to 0.5 kHz.
	n := 4096
	wf := make([]complex128, n)
	for i := range wf {
		wf[i] = cmplx.Exp(complex(0, 2*math.Pi*1000*float64(i)/rate))
	}
	out := r.Reemit(wf, rate)
	var sum float64
	for i := 1; i < len(out); i++ {
		sum += cmplx.Phase(out[i] * cmplx.Conj(out[i-1]))
	}
	got := sum / float64(len(out)-1) * rate / (2 * math.Pi)
	if math.Abs(got-500) > 5 {
		t.Errorf("replayed tone at %.1f Hz, want 500", got)
	}
}

func TestReplayerJitterVariesAcrossReplays(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	r := &Replayer{FrequencyBiasHz: -620, JitterHz: 30, Rand: rng}
	wf := make([]complex128, 256)
	for i := range wf {
		wf[i] = 1
	}
	measure := func(out []complex128) float64 {
		var sum float64
		for i := 1; i < len(out); i++ {
			sum += cmplx.Phase(out[i] * cmplx.Conj(out[i-1]))
		}
		return sum / float64(len(out)-1)
	}
	a := measure(r.Reemit(wf, 100e3))
	b := measure(r.Reemit(wf, 100e3))
	if a == b {
		t.Error("jitter should vary the replay bias")
	}
}

func TestPickJamOnsetInsideWindow(t *testing.T) {
	p := lora.DefaultParams(7)
	r := chip.NewReceiver(p)
	w1, w2 := r.EffectiveAttackWindow(20)
	for _, frac := range []float64{0, 0.5, 1} {
		onset := PickJamOnset(r, 20, frac)
		if onset <= w1 || onset >= w2 {
			t.Errorf("frac %.1f: onset %f outside (%f, %f)", frac, onset, w1, w2)
		}
	}
	// Out-of-range fracs clamp.
	if PickJamOnset(r, 20, -5) <= w1 || PickJamOnset(r, 20, 5) >= w2 {
		t.Error("clamping failed")
	}
}

func TestAttackOutsideWindowIsNotStealthy(t *testing.T) {
	rng := rand.New(rand.NewSource(124))
	s, _ := buildingScenario(rng)
	// Jam immediately: the chip re-locks to the jammer (captured, not
	// stealthy — the gateway sees a frame, just not the right one).
	s.JamOnsetAfter = 0.001
	res, err := s.Execute(testFrame(s.Params), lora.Impairments{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stealthy {
		t.Error("early jamming should not be classified stealthy")
	}
	if res.JamOutcome != chip.OutcomeJammerCaptured {
		t.Errorf("outcome = %v", res.JamOutcome)
	}
	// Jam after the frame: both frames received.
	s2, _ := buildingScenario(rng)
	s2.JamOnsetAfter = 10
	res2, err := s2.Execute(testFrame(s.Params), lora.Impairments{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res2.JamOutcome != chip.OutcomeBothReceived {
		t.Errorf("late jam outcome = %v", res2.JamOutcome)
	}
}

func TestHighPowerReplayIsConspicuous(t *testing.T) {
	rng := rand.New(rand.NewSource(125))
	s, _ := buildingScenario(rng)
	s.Replayer.TxPowerdBm = 20 // way above the device's weak RSSI
	res, err := s.Execute(testFrame(s.Params), lora.Impairments{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.RSSIInconspicuous {
		t.Error("20 dBm replay next to the gateway should be conspicuous")
	}
}
