package attack

import (
	"errors"
	"math"
)

// Fingerprinter implements the adversary-side device identification the
// paper discusses in §4.2.1 and §7.1: the eavesdropper wants to attack a
// specific node, so it fingerprints transmitters by their frequency bias —
// and, because some nodes share similar biases (Fig. 13's nodes 3, 8, 14),
// "the adversary may jointly use the FBs and the received signal strengths
// that are affected by the transmitters' geographic locations".
type Fingerprinter struct {
	// FBScaleHz normalizes the FB axis of the nearest-neighbor distance
	// (default 200 Hz, roughly the per-frame estimation spread).
	FBScaleHz float64
	// RSSIScaledB normalizes the RSSI axis (default 2 dB).
	RSSIScaledB float64

	devices map[string]fingerprint
}

type fingerprint struct {
	fbHz    float64
	rssidBm float64
}

// ErrNoProfiles is returned when classifying before any Learn call.
var ErrNoProfiles = errors.New("attack: fingerprinter has no learned profiles")

// Learn records (or updates) a device's observed profile.
func (f *Fingerprinter) Learn(deviceID string, fbHz, rssidBm float64) {
	if f.devices == nil {
		f.devices = make(map[string]fingerprint)
	}
	f.devices[deviceID] = fingerprint{fbHz: fbHz, rssidBm: rssidBm}
}

func (f *Fingerprinter) scales() (fb, rssi float64) {
	fb = f.FBScaleHz
	if fb <= 0 {
		fb = 200
	}
	rssi = f.RSSIScaledB
	if rssi <= 0 {
		rssi = 2
	}
	return fb, rssi
}

// ClassifyFB identifies the transmitter by frequency bias alone
// (nearest neighbor). Ambiguity is reported via the margin: the ratio of
// the runner-up distance to the winner distance (≤ ~1 means ambiguous).
func (f *Fingerprinter) ClassifyFB(fbHz float64) (deviceID string, margin float64, err error) {
	if len(f.devices) == 0 {
		return "", 0, ErrNoProfiles
	}
	fbScale, _ := f.scales()
	best, second := math.Inf(1), math.Inf(1)
	var bestID string
	for id, fp := range f.devices {
		d := math.Abs(fp.fbHz-fbHz) / fbScale
		switch {
		case d < best:
			second = best
			best = d
			bestID = id
		case d < second:
			second = d
		}
	}
	return bestID, marginOf(best, second), nil
}

// Classify identifies the transmitter from the joint (FB, RSSI) profile.
func (f *Fingerprinter) Classify(fbHz, rssidBm float64) (deviceID string, margin float64, err error) {
	if len(f.devices) == 0 {
		return "", 0, ErrNoProfiles
	}
	fbScale, rssiScale := f.scales()
	best, second := math.Inf(1), math.Inf(1)
	var bestID string
	for id, fp := range f.devices {
		dfb := (fp.fbHz - fbHz) / fbScale
		drssi := (fp.rssidBm - rssidBm) / rssiScale
		d := math.Sqrt(dfb*dfb + drssi*drssi)
		switch {
		case d < best:
			second = best
			best = d
			bestID = id
		case d < second:
			second = d
		}
	}
	return bestID, marginOf(best, second), nil
}

// marginOf returns second/best with care for degenerate values.
func marginOf(best, second float64) float64 {
	if math.IsInf(second, 1) {
		return math.Inf(1)
	}
	if best == 0 {
		return math.Inf(1)
	}
	return second / best
}
