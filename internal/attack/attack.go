// Package attack implements the paper's frame delay attack (§4): a
// combination of stealthy jamming and delayed replay that injects an
// arbitrary delay τ into the delivery of a LoRaWAN uplink without breaking
// its cryptographic integrity.
//
// Roles (Fig. 1):
//
//   - The jammer (co-located with the replayer near the gateway) starts
//     transmitting inside the effective attack window (t0+w1, t0+w2] so the
//     victim chip drops the legitimate frame silently.
//   - The eavesdropper, near the end device, records the frame's radio
//     waveform; the jamming signal is weak there after propagation loss.
//   - The replayer re-emits the recorded waveform τ seconds after the
//     legitimate onset, through its own radio front end — adding its
//     oscillator's frequency bias, the artifact SoftLoRa detects.
package attack

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"softlora/internal/chip"
	"softlora/internal/dsp"
	"softlora/internal/lora"
	"softlora/internal/radio"
)

// Replayer models the USRP-based replayer: a software-defined transmitter
// that re-emits recorded I/Q through its own oscillator.
type Replayer struct {
	// FrequencyBiasHz is the replayer oscillator's bias. The paper's USRP
	// N210 adds −543 to −743 Hz (−0.62 to −0.85 ppm at 869.75 MHz).
	FrequencyBiasHz float64
	// JitterHz is the per-replay bias jitter (default 30 Hz when Rand is
	// set).
	JitterHz float64
	// TxPowerdBm is the replay transmit power (≤7 dBm keeps the replay
	// inconspicuous at the gateway, §8.1.1).
	TxPowerdBm float64
	// Delay is the injected delay τ from the legitimate onset to the
	// replay onset, seconds.
	Delay float64
	// Rand supplies jitter; optional.
	Rand *rand.Rand
}

// Reemit passes a recorded waveform through the replayer's transmit chain:
// a frequency shift by the replayer's oscillator bias. The returned
// waveform has unit power scale (power is applied via the channel's
// Emission.TxPowerdBm).
func (r *Replayer) Reemit(wf []complex128, sampleRate float64) []complex128 {
	bias := r.FrequencyBiasHz
	if r.Rand != nil {
		j := r.JitterHz
		if j == 0 {
			j = 30
		}
		bias += r.Rand.NormFloat64() * j
	}
	out := make([]complex128, len(wf))
	if len(wf) == 0 {
		return out
	}
	rot := dsp.NewRotator(1, 0, bias, 1/sampleRate)
	rot.MulInto(out, wf)
	return out
}

// Scenario wires the attack geometry: path losses from each actor to each
// receiver and the victim gateway's chip model.
type Scenario struct {
	// Params is the channel/data-rate configuration in use.
	Params lora.Params
	// SampleRate for waveform captures.
	SampleRate float64
	// Rand drives noise; required.
	Rand *rand.Rand

	// Gateway is the victim chip model.
	Gateway *chip.Receiver

	// Device→gateway link.
	DeviceTxPowerdBm     float64
	DeviceGatewayLossdB  float64
	DeviceGatewayMeters  float64
	GatewayNoiseFloordBm float64

	// Jammer→gateway link (the jammer sits near the gateway).
	JammerTxPowerdBm    float64
	JammerGatewayLossdB float64
	// JamOnsetAfter is the jamming onset relative to the legitimate frame
	// onset; pick inside the effective attack window.
	JamOnsetAfter float64

	// Device→eavesdropper and jammer→eavesdropper links (the eavesdropper
	// sits near the device, far from the jammer).
	DeviceEaveLossdB      float64
	JammerEaveLossdB      float64
	EaveNoiseFloordBm     float64
	EavesdropperBiasHz    float64 // the eavesdropper SDR's own δRx
	ReplayerGatewayLossdB float64

	// Replayer re-emits the recording after τ.
	Replayer Replayer
}

// Result reports one executed frame delay attack.
type Result struct {
	// JamOutcome is what the victim gateway chip experienced.
	JamOutcome chip.Outcome
	// Stealthy is true when the jamming raised no alert (the effective
	// attack window was hit).
	Stealthy bool
	// EavesdropSINRdB is the device-signal to jam-plus-noise ratio at the
	// eavesdropper; the recording is usable when it exceeds the
	// demodulation floor.
	EavesdropSINRdB float64
	// RecordingUsable reports whether the replayed frame can decode.
	RecordingUsable bool
	// Recording is the eavesdropper's capture (starts at the legitimate
	// frame onset).
	Recording *radio.Capture
	// ReplayEmission is the replayer's transmission toward the gateway,
	// ready to be fed to a channel/SDR capture.
	ReplayEmission radio.Emission
	// ReplayRSSIdBm is the replayed frame's received power at the gateway.
	ReplayRSSIdBm float64
	// LegitRSSIdBm is the device's normal received power at the gateway.
	LegitRSSIdBm float64
	// RSSIInconspicuous is true when the replay stays below the gateway
	// front end's saturation level, so the reception looks like a normal
	// frame (§8.1.1: a replayer next to the gateway must keep its USRP at
	// ≤7 dBm for the replay to go unnoticed).
	RSSIInconspicuous bool
	// InjectedDelay is τ: the timestamp error a synchronization-free
	// gateway would incur.
	InjectedDelay float64
}

// Scenario validation errors.
var (
	ErrNilRand    = errors.New("attack: Scenario.Rand must be set")
	ErrNilGateway = errors.New("attack: Scenario.Gateway must be set")
)

// saturationRSSIdBm is the received power above which the victim front end
// saturates and the reception becomes conspicuous. Calibrated to §8.1.1's
// observation that a replayer next to the gateway (≈40 dB path loss) stays
// unnoticed up to 7 dBm transmit power: 7 − 40 = −33 dBm.
const saturationRSSIdBm = -32.5

// Execute runs the full frame delay attack for one uplink frame emitted at
// t0 with the given impairments, and returns the attack outcome plus the
// replay emission for the gateway's receive pipeline.
func (s *Scenario) Execute(frame lora.Frame, imp lora.Impairments, t0 float64) (*Result, error) {
	if s.Rand == nil {
		return nil, ErrNilRand
	}
	if s.Gateway == nil {
		return nil, ErrNilGateway
	}
	res := &Result{InjectedDelay: s.Replayer.Delay}

	// 1. Jamming at the victim gateway: classify the chip outcome.
	legit := chip.Transmission{
		Start:      t0,
		PayloadLen: len(frame.Payload),
		PowerdBm:   s.DeviceTxPowerdBm - s.DeviceGatewayLossdB,
	}
	jam := chip.Transmission{
		Start:      t0 + s.JamOnsetAfter,
		PayloadLen: len(frame.Payload),
		PowerdBm:   s.JammerTxPowerdBm - s.JammerGatewayLossdB,
	}
	res.JamOutcome = s.Gateway.Classify(legit, &jam)
	res.Stealthy = res.JamOutcome == chip.OutcomeSilentDrop
	res.LegitRSSIdBm = legit.PowerdBm

	// 2. Eavesdropper recording near the device: the device signal is
	// strong, the jamming weak after crossing the building/distance.
	deviceAtEave := s.DeviceTxPowerdBm - s.DeviceEaveLossdB
	jamAtEave := s.JammerTxPowerdBm - s.JammerEaveLossdB
	interference := radio.DBmToPower(jamAtEave) + radio.DBmToPower(s.EaveNoiseFloordBm)
	res.EavesdropSINRdB = deviceAtEave - radio.PowerTodBm(interference)
	res.RecordingUsable = res.EavesdropSINRdB >= lora.DemodulationFloorSNR(s.Params.SF)

	dur, err := frame.ModulatedDuration()
	if err != nil {
		return nil, fmt.Errorf("attack: %w", err)
	}
	eaveChannel := &radio.Channel{
		SampleRate:    s.SampleRate,
		NoiseFloordBm: s.EaveNoiseFloordBm,
		Rand:          s.Rand,
	}
	emissions := []radio.Emission{
		{
			Frame:       frame,
			Impairments: imp,
			StartTime:   t0,
			TxPowerdBm:  s.DeviceTxPowerdBm,
			PathLossdB:  s.DeviceEaveLossdB,
		},
		{
			Frame:       frame, // jamming frame: same airtime class
			Impairments: lora.Impairments{FrequencyBias: 5e3},
			StartTime:   t0 + s.JamOnsetAfter,
			TxPowerdBm:  s.JammerTxPowerdBm,
			PathLossdB:  s.JammerEaveLossdB,
		},
	}
	recording, err := eaveChannel.Receive(emissions, t0, dur+2e-3)
	if err != nil {
		return nil, fmt.Errorf("attack: eavesdropper capture: %w", err)
	}
	// The eavesdropper SDR contributes its own bias to the recording.
	if s.EavesdropperBiasHz != 0 && len(recording.IQ) > 0 {
		rot := dsp.NewRotator(1, 0, -s.EavesdropperBiasHz, 1/recording.Rate)
		rot.MulInto(recording.IQ, recording.IQ)
	}
	res.Recording = recording

	// 3. Replay after τ: re-emit through the replayer's front end. The
	// recording has the path gain to the eavesdropper baked in; normalize
	// to unit power so Emission.TxPowerdBm sets the on-air power.
	replayWf := s.Replayer.Reemit(recording.IQ, s.SampleRate)
	if p := powerOf(replayWf); p > 0 {
		scale := complex(1/math.Sqrt(p), 0)
		for i := range replayWf {
			replayWf[i] *= scale
		}
	}
	res.ReplayEmission = radio.Emission{
		Waveform:   replayWf,
		StartTime:  t0 + s.Replayer.Delay,
		TxPowerdBm: s.Replayer.TxPowerdBm,
		PathLossdB: s.ReplayerGatewayLossdB,
		Distance:   1, // the replayer sits next to the gateway
	}
	res.ReplayRSSIdBm = s.Replayer.TxPowerdBm - s.ReplayerGatewayLossdB
	res.RSSIInconspicuous = res.ReplayRSSIdBm <= saturationRSSIdBm
	return res, nil
}

func powerOf(x []complex128) float64 {
	if len(x) == 0 {
		return 0
	}
	var sum float64
	for _, v := range x {
		sum += real(v)*real(v) + imag(v)*imag(v)
	}
	return sum / float64(len(x))
}

// PickJamOnset returns a jamming onset inside the effective attack window
// for the given receiver and payload length, at the window fraction frac
// (0 → just after w1, 1 → at w2).
func PickJamOnset(r *chip.Receiver, payloadLen int, frac float64) float64 {
	w1, w2 := r.EffectiveAttackWindow(payloadLen)
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	// Keep a small guard after w1.
	guard := (w2 - w1) * 0.05
	return w1 + guard + frac*(w2-w1-2*guard)
}
