// Package vfs is the minimal filesystem seam the persistence layer writes
// through. Production code uses OS (the real filesystem); tests substitute
// an implementation that injects faults (package faultinject) so every
// crash point of a snapshot flush can be exercised deterministically.
//
// The interface is deliberately tiny — exactly the operations an atomic
// write-to-temp + fsync + rename snapshot protocol needs — so a fault
// injector can enumerate its operations exhaustively.
package vfs

import (
	"io"
	"os"
	"path/filepath"
	"sort"
)

// File is a writable file handle. Sync must flush written data to stable
// storage before returning; the snapshot protocol relies on the
// write → Sync → Close → Rename ordering for crash safety.
type File interface {
	io.Writer
	Sync() error
	Close() error
}

// FS is the filesystem surface of the persistence layer.
type FS interface {
	// MkdirAll creates a directory (and parents) if missing.
	MkdirAll(path string) error
	// Create opens path for writing, truncating any existing file.
	Create(path string) (File, error)
	// Open opens path for reading.
	Open(path string) (io.ReadCloser, error)
	// Rename atomically replaces newpath with oldpath (POSIX rename
	// semantics: after a crash either the old or the new file content is
	// visible at newpath, never a mix).
	Rename(oldpath, newpath string) error
	// Remove deletes path.
	Remove(path string) error
	// ReadDir lists the names (not paths) of the entries of dir, sorted.
	ReadDir(dir string) ([]string, error)
}

// OS is the real filesystem.
type OS struct{}

// MkdirAll implements FS.
func (OS) MkdirAll(path string) error { return os.MkdirAll(path, 0o755) }

// Create implements FS.
func (OS) Create(path string) (File, error) {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	return f, nil
}

// Open implements FS.
func (OS) Open(path string) (io.ReadCloser, error) { return os.Open(path) }

// Rename implements FS.
func (OS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

// Remove implements FS.
func (OS) Remove(path string) error { return os.Remove(path) }

// ReadDir implements FS.
func (OS) ReadDir(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		names = append(names, e.Name())
	}
	sort.Strings(names)
	return names, nil
}

// Join joins path elements with the platform separator — a convenience so
// FS consumers do not also need path/filepath.
func Join(elem ...string) string { return filepath.Join(elem...) }
