package dsp

import "math"

// OscRenormInterval is the number of recurrence steps an oscillator runs
// between exact re-seeds. Each step performs one (Rotator) or two
// (Oscillator) complex multiplies, so rounding error accumulates as a slow
// random walk in both magnitude and phase; re-seeding from the closed-form
// phase polynomial every OscRenormInterval samples resets the walk, keeping
// the phase error well below 1e-9 rad per block (see the drift property
// tests) at an amortized cost of one math.Sincos per ~kilosample.
const OscRenormInterval = 1024

// Oscillator generates the sample stream
//
//	s[i] = A·exp(j·(φ0 + 2π·(f·t + k·t²/2))),   t = i·dt
//
// with a second-order recurrence: s[i+1] = s[i]·r[i], r[i+1] = r[i]·q where
// q = exp(j·2π·k·dt²) is constant. That is two complex multiplies per sample
// in place of the phase-polynomial evaluation plus math.Sincos a direct
// renderer pays — the waveform of a LoRa chirp segment (quadratic phase) at
// roughly one tenth of the cost. A zero sweep rate k degenerates to a
// constant-frequency rotator, but use Rotator for that: it saves the second
// multiply.
//
// An Oscillator is a value type holding only its own state; its methods
// allocate nothing and it is single-goroutine like all mutable dsp state.
type Oscillator struct {
	s, r, q complex128
	i, left int
	amp     float64
	phase0  float64
	f, k    float64
	dt      float64
}

// NewOscillator seeds an oscillator producing amp·exp(j·(phase0 +
// 2π·(freqHz·t + sweepHzPerS·t²/2))) at t = i·dt for i = 0, 1, 2, …
func NewOscillator(amp, phase0, freqHz, sweepHzPerS, dt float64) Oscillator {
	o := Oscillator{amp: amp, phase0: phase0, f: freqHz, k: sweepHzPerS, dt: dt}
	sq, cq := math.Sincos(2 * math.Pi * sweepHzPerS * dt * dt)
	o.q = complex(cq, sq)
	o.reseed(0)
	return o
}

// reseed recomputes s and r exactly from the phase polynomial at step i,
// discarding all accumulated recurrence rounding error.
func (o *Oscillator) reseed(i int) {
	o.i = i
	o.left = OscRenormInterval
	t := float64(i) * o.dt
	sp, cp := math.Sincos(o.phase0 + 2*math.Pi*(o.f*t+0.5*o.k*t*t))
	o.s = complex(o.amp*cp, o.amp*sp)
	// Phase step from sample i to i+1: 2π(f·dt + k·dt²·(i + 1/2)).
	sr, cr := math.Sincos(2 * math.Pi * (o.f*o.dt + o.k*o.dt*o.dt*(float64(i)+0.5)))
	o.r = complex(cr, sr)
}

// chunk clamps n to the samples remaining before the next re-seed,
// re-seeding first if the interval is exhausted.
func (o *Oscillator) chunk(n int) int {
	if o.left == 0 {
		o.reseed(o.i)
	}
	if n > o.left {
		n = o.left
	}
	return n
}

// Next returns the current sample and advances one step.
func (o *Oscillator) Next() complex128 {
	o.chunk(1)
	v := o.s
	o.s *= o.r
	o.r *= o.q
	o.i++
	o.left--
	return v
}

// Fill writes the next len(dst) samples into dst.
func (o *Oscillator) Fill(dst []complex128) {
	for len(dst) > 0 {
		n := o.chunk(len(dst))
		s, r, q := o.s, o.r, o.q
		for j := 0; j < n; j++ {
			dst[j] = s
			s *= r
			r *= q
		}
		o.s, o.r = s, r
		o.i += n
		o.left -= n
		dst = dst[n:]
	}
}

// AddTo adds the next len(dst) samples into dst.
func (o *Oscillator) AddTo(dst []complex128) {
	for len(dst) > 0 {
		n := o.chunk(len(dst))
		s, r, q := o.s, o.r, o.q
		for j := 0; j < n; j++ {
			dst[j] += s
			s *= r
			r *= q
		}
		o.s, o.r = s, r
		o.i += n
		o.left -= n
		dst = dst[n:]
	}
}

// MulInto writes dst[i] = src[i] · s[i] for the next len(src) samples.
// dst must be at least as long as src; dst and src may be the same slice
// (in-place rotation).
func (o *Oscillator) MulInto(dst, src []complex128) {
	for len(src) > 0 {
		n := o.chunk(len(src))
		s, r, q := o.s, o.r, o.q
		for j := 0; j < n; j++ {
			dst[j] = src[j] * s
			s *= r
			r *= q
		}
		o.s, o.r = s, r
		o.i += n
		o.left -= n
		dst, src = dst[n:], src[n:]
	}
}

// Rotator is the first-order variant of Oscillator for constant-frequency
// rotation: s[i] = A·exp(j·(φ0 + 2π·f·dt·i)), advanced by a single complex
// multiply per sample with the same exact re-seed every OscRenormInterval
// samples.
type Rotator struct {
	s, r    complex128
	i, left int
	amp     float64
	phase0  float64
	f, dt   float64
}

// NewRotator seeds a rotator producing amp·exp(j·(phase0 + 2π·freqHz·dt·i)).
func NewRotator(amp, phase0, freqHz, dt float64) Rotator {
	o := Rotator{amp: amp, phase0: phase0, f: freqHz, dt: dt}
	sr, cr := math.Sincos(2 * math.Pi * freqHz * dt)
	o.r = complex(cr, sr)
	o.reseed(0)
	return o
}

func (o *Rotator) reseed(i int) {
	o.i = i
	o.left = OscRenormInterval
	sp, cp := math.Sincos(o.phase0 + 2*math.Pi*o.f*o.dt*float64(i))
	o.s = complex(o.amp*cp, o.amp*sp)
}

func (o *Rotator) chunk(n int) int {
	if o.left == 0 {
		o.reseed(o.i)
	}
	if n > o.left {
		n = o.left
	}
	return n
}

// Next returns the current sample and advances one step.
func (o *Rotator) Next() complex128 {
	o.chunk(1)
	v := o.s
	o.s *= o.r
	o.i++
	o.left--
	return v
}

// Fill writes the next len(dst) samples into dst.
func (o *Rotator) Fill(dst []complex128) {
	for len(dst) > 0 {
		n := o.chunk(len(dst))
		s, r := o.s, o.r
		for j := 0; j < n; j++ {
			dst[j] = s
			s *= r
		}
		o.s = s
		o.i += n
		o.left -= n
		dst = dst[n:]
	}
}

// MulInto writes dst[i] = src[i] · s[i] for the next len(src) samples.
// dst must be at least as long as src; dst and src may be the same slice
// (in-place rotation).
//
// The loop runs two interleaved phasor lanes advanced by r² so the
// recurrence's multiply latency overlaps across iterations; the lanes'
// rounding differs from the scalar recurrence by ~1 ulp per step, which
// the exact re-seed bounds exactly like the scalar drift.
func (o *Rotator) MulInto(dst, src []complex128) {
	for len(src) > 0 {
		n := o.chunk(len(src))
		s, r := o.s, o.r
		s1 := s * r
		r2 := r * r
		j := 0
		for ; j+2 <= n; j += 2 {
			dst[j] = src[j] * s
			dst[j+1] = src[j+1] * s1
			s *= r2
			s1 *= r2
		}
		if j < n {
			dst[j] = src[j] * s
			s = s1
		}
		o.s = s
		o.i += n
		o.left -= n
		dst, src = dst[n:], src[n:]
	}
}
