package dsp

import (
	"math"
	"math/rand"
)

// DEConfig configures the differential-evolution global optimizer
// (Storn & Price 1997), the solver the paper uses for its least-squares FB
// estimation (§7.1.2, via scipy's differential_evolution).
type DEConfig struct {
	// PopulationSize is the number of candidate vectors; if < 4 a default of
	// 15 per dimension is used.
	PopulationSize int
	// MaxGenerations bounds the number of evolution rounds. Default 100.
	MaxGenerations int
	// F is the differential weight in (0, 2]. Default 0.7.
	F float64
	// CR is the crossover probability in [0, 1]. Default 0.9.
	CR float64
	// Tol terminates early when the population's cost spread falls below
	// Tol*|mean cost|. Default 1e-8.
	Tol float64
	// Rand supplies randomness; it must be non-nil.
	Rand *rand.Rand
	// PolishIters applies coordinate-descent refinement steps to the best
	// vector after evolution. Default 40.
	PolishIters int
}

// DEResult reports the optimizer outcome.
type DEResult struct {
	X           []float64 // best vector found
	Cost        float64   // objective at X
	Generations int       // generations actually run
	Evaluations int       // objective evaluations performed
}

// DifferentialEvolution minimizes fn over the box [lower[i], upper[i]] using
// the DE/rand/1/bin strategy with optional polishing. fn must be safe to
// call repeatedly; it is never called concurrently.
func DifferentialEvolution(fn func([]float64) float64, lower, upper []float64, cfg DEConfig) DEResult {
	dim := len(lower)
	if dim == 0 || len(upper) != dim || cfg.Rand == nil {
		return DEResult{Cost: math.Inf(1)}
	}
	rng := cfg.Rand
	np := cfg.PopulationSize
	if np < 4 {
		np = 15 * dim
		if np < 20 {
			np = 20
		}
	}
	maxGen := cfg.MaxGenerations
	if maxGen <= 0 {
		maxGen = 100
	}
	f := cfg.F
	if f <= 0 || f > 2 {
		f = 0.7
	}
	cr := cfg.CR
	if cr <= 0 || cr > 1 {
		cr = 0.9
	}
	tol := cfg.Tol
	if tol <= 0 {
		tol = 1e-8
	}
	polish := cfg.PolishIters
	if polish < 0 {
		polish = 0
	} else if polish == 0 {
		polish = 40
	}

	clamp := func(v float64, i int) float64 {
		if v < lower[i] {
			return lower[i]
		}
		if v > upper[i] {
			return upper[i]
		}
		return v
	}

	pop := make([][]float64, np)
	cost := make([]float64, np)
	evals := 0
	for i := range pop {
		v := make([]float64, dim)
		for d := 0; d < dim; d++ {
			v[d] = lower[d] + rng.Float64()*(upper[d]-lower[d])
		}
		pop[i] = v
		cost[i] = fn(v)
		evals++
	}
	trial := make([]float64, dim)
	gens := 0
	for g := 0; g < maxGen; g++ {
		gens = g + 1
		for i := 0; i < np; i++ {
			// Pick three distinct indices != i.
			var a, b, c int
			for {
				a = rng.Intn(np)
				if a != i {
					break
				}
			}
			for {
				b = rng.Intn(np)
				if b != i && b != a {
					break
				}
			}
			for {
				c = rng.Intn(np)
				if c != i && c != a && c != b {
					break
				}
			}
			jRand := rng.Intn(dim)
			for d := 0; d < dim; d++ {
				if d == jRand || rng.Float64() < cr {
					trial[d] = clamp(pop[a][d]+f*(pop[b][d]-pop[c][d]), d)
				} else {
					trial[d] = pop[i][d]
				}
			}
			tc := fn(trial)
			evals++
			if tc <= cost[i] {
				copy(pop[i], trial)
				cost[i] = tc
			}
		}
		// Convergence check.
		minC, maxC, sumC := math.Inf(1), math.Inf(-1), 0.0
		for _, cv := range cost {
			if cv < minC {
				minC = cv
			}
			if cv > maxC {
				maxC = cv
			}
			sumC += cv
		}
		mean := sumC / float64(np)
		if maxC-minC <= tol*(math.Abs(mean)+tol) {
			break
		}
	}
	bestI := 0
	for i := 1; i < np; i++ {
		if cost[i] < cost[bestI] {
			bestI = i
		}
	}
	best := make([]float64, dim)
	copy(best, pop[bestI])
	bestCost := cost[bestI]

	// Coordinate-descent polish: shrink a per-dimension step until no
	// improvement.
	if polish > 0 {
		steps := make([]float64, dim)
		for d := range steps {
			steps[d] = (upper[d] - lower[d]) / float64(np)
		}
		for it := 0; it < polish; it++ {
			improved := false
			for d := 0; d < dim; d++ {
				for _, dir := range []float64{1, -1} {
					cand := clamp(best[d]+dir*steps[d], d)
					if cand == best[d] {
						continue
					}
					old := best[d]
					best[d] = cand
					c := fn(best)
					evals++
					if c < bestCost {
						bestCost = c
						improved = true
					} else {
						best[d] = old
					}
				}
			}
			if !improved {
				for d := range steps {
					steps[d] /= 2
				}
			}
		}
	}
	return DEResult{X: best, Cost: bestCost, Generations: gens, Evaluations: evals}
}
