package dsp_test

import (
	"math"
	"math/rand"
	"testing"

	"softlora/internal/dsp"
	"softlora/internal/stattest"
)

// The drawn sequence differs from math/rand's NormFloat64 by design; the
// distributional gate in stattest is the contract instead.
func TestGaussianSourceStatistics(t *testing.T) {
	var g dsp.GaussianSource
	g.Seed(1)
	x := make([]float64, 1<<20)
	for i := range x {
		x[i] = g.Norm()
	}
	stattest.CheckGaussian(t, x, 1)
}

func TestGaussianSourceSeedDeterminism(t *testing.T) {
	var a, b dsp.GaussianSource
	// 1000 draws cross several 256-sample refill boundaries; the stream must
	// not depend on where the buffer edges land.
	a.Seed(42)
	want := make([]float64, 1000)
	for i := range want {
		want[i] = a.Norm()
	}
	// b consumes a few values under a different seed first: Seed must fully
	// reset, including discarding buffered draws mid-block.
	b.Seed(7)
	for i := 0; i < 13; i++ {
		b.Norm()
	}
	b.Seed(42)
	for i, w := range want {
		if got := b.Norm(); got != w {
			t.Fatalf("draw %d: got %v, want %v after reseed", i, got, w)
		}
	}
	// NormPair is just two stream draws in order.
	b.Seed(42)
	for i := 0; i < len(want)-1; i += 2 {
		re, im := b.NormPair()
		if re != want[i] || im != want[i+1] {
			t.Fatalf("NormPair at %d: got (%v, %v), want (%v, %v)", i, re, im, want[i], want[i+1])
		}
	}
	// Different seeds must give different streams.
	b.Seed(43)
	same := 0
	for i := 0; i < 100; i++ {
		if b.Norm() == want[i] {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("seeds 42 and 43 share %d of 100 draws; streams not independent", same)
	}
	// The zero value must behave exactly like Seed(0), not emit a zeroed
	// buffer.
	var z dsp.GaussianSource
	b.Seed(0)
	for i := 0; i < 300; i++ {
		if got, w := z.Norm(), b.Norm(); got != w {
			t.Fatalf("zero-value draw %d: got %v, want %v", i, got, w)
		}
	}
}

func TestGaussianSourceZeroAlloc(t *testing.T) {
	var g dsp.GaussianSource
	g.Seed(5)
	g.Norm() // pay one-time warmup outside the measured region
	var sink float64
	allocs := testing.AllocsPerRun(100, func() {
		for i := 0; i < 1024; i++ {
			sink += g.Norm()
		}
	})
	if allocs != 0 {
		t.Fatalf("Norm allocated %.1f times per 1024 draws, want 0", allocs)
	}
	_ = sink
}

func BenchmarkGaussianSource(b *testing.B) {
	var g dsp.GaussianSource
	g.Seed(1)
	var sink float64
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sink += g.Norm()
	}
	_ = sink
}

// Call-site share of the parity-of-statistics gate: GaussianNoise now draws
// from the ziggurat source, so its per-component statistics must match the
// requested circular Gaussian power.
func TestGaussianNoiseStatistics(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const n, power = 1 << 17, 2.5
	x := dsp.GaussianNoise(rng, n, power)
	comps := make([]float64, 0, 2*n)
	for _, v := range x {
		comps = append(comps, real(v), imag(v))
	}
	stattest.CheckGaussian(t, comps, math.Sqrt(power/2))
}
