package dsp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLinearRegressionExactLine(t *testing.T) {
	x := []float64{0, 1, 2, 3, 4}
	y := make([]float64, len(x))
	for i, v := range x {
		y[i] = 2.5*v - 1.25
	}
	fit := LinearRegression(x, y)
	if math.Abs(fit.Slope-2.5) > 1e-12 || math.Abs(fit.Intercept+1.25) > 1e-12 {
		t.Fatalf("fit = %+v", fit)
	}
	if math.Abs(fit.R2-1) > 1e-12 {
		t.Errorf("R2 = %f, want 1", fit.R2)
	}
}

func TestLinearRegressionNoisy(t *testing.T) {
	rng := rand.New(rand.NewSource(40))
	n := 2000
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = float64(i) / 100
		y[i] = -0.7*x[i] + 3 + rng.NormFloat64()*0.1
	}
	fit := LinearRegression(x, y)
	if math.Abs(fit.Slope+0.7) > 0.01 {
		t.Errorf("slope = %f, want -0.7", fit.Slope)
	}
	if math.Abs(fit.Intercept-3) > 0.1 {
		t.Errorf("intercept = %f, want 3", fit.Intercept)
	}
	if fit.R2 < 0.9 {
		t.Errorf("R2 = %f, want > 0.9", fit.R2)
	}
}

func TestLinearRegressionDegenerate(t *testing.T) {
	if fit := LinearRegression(nil, nil); fit != (LinearFit{}) {
		t.Error("empty input should give zero fit")
	}
	if fit := LinearRegression([]float64{1, 2}, []float64{1}); fit != (LinearFit{}) {
		t.Error("mismatched lengths should give zero fit")
	}
	// Constant x: slope undefined, returns mean as intercept.
	fit := LinearRegression([]float64{2, 2, 2}, []float64{1, 2, 3})
	if fit.Slope != 0 || math.Abs(fit.Intercept-2) > 1e-12 {
		t.Errorf("constant-x fit = %+v", fit)
	}
}

func TestLinearRegressionUniformMatchesGeneral(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	n := 500
	x0, dx := 0.25, 0.001
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = x0 + float64(i)*dx
		y[i] = 123*x[i] - 4 + rng.NormFloat64()*0.01
	}
	a := LinearRegression(x, y)
	b := LinearRegressionUniform(y, x0, dx)
	if math.Abs(a.Slope-b.Slope) > 1e-6*math.Abs(a.Slope) {
		t.Errorf("slopes differ: %f vs %f", a.Slope, b.Slope)
	}
	if math.Abs(a.Intercept-b.Intercept) > 1e-6 {
		t.Errorf("intercepts differ: %f vs %f", a.Intercept, b.Intercept)
	}
	if math.Abs(a.R2-b.R2) > 1e-9 {
		t.Errorf("R2 differ: %f vs %f", a.R2, b.R2)
	}
}

func TestLinearRegressionUniformProperty(t *testing.T) {
	f := func(slopeRaw, interceptRaw int16) bool {
		slope := float64(slopeRaw) / 100
		intercept := float64(interceptRaw) / 100
		y := make([]float64, 64)
		for i := range y {
			y[i] = slope*float64(i)*0.5 + intercept
		}
		fit := LinearRegressionUniform(y, 0, 0.5)
		return math.Abs(fit.Slope-slope) < 1e-6+1e-9*math.Abs(slope) &&
			math.Abs(fit.Intercept-intercept) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestUnwrapPhaseLinearRamp(t *testing.T) {
	// A steadily increasing phase wrapped into (-pi, pi] should unwrap back
	// to the ramp (modulo constant).
	n := 500
	truth := make([]float64, n)
	wrapped := make([]float64, n)
	for i := range truth {
		truth[i] = 0.13 * float64(i)
		wrapped[i] = WrapPhase(truth[i])
	}
	un := UnwrapPhase(wrapped)
	for i := range truth {
		if math.Abs(un[i]-truth[i]) > 1e-9 {
			t.Fatalf("unwrap[%d] = %f, want %f", i, un[i], truth[i])
		}
	}
}

func TestUnwrapPhaseDownRamp(t *testing.T) {
	n := 500
	truth := make([]float64, n)
	wrapped := make([]float64, n)
	for i := range truth {
		truth[i] = -0.21 * float64(i)
		wrapped[i] = WrapPhase(truth[i])
	}
	un := UnwrapPhase(wrapped)
	for i := range truth {
		if math.Abs(un[i]-truth[i]) > 1e-9 {
			t.Fatalf("unwrap[%d] = %f, want %f", i, un[i], truth[i])
		}
	}
}

func TestWrapPhaseRange(t *testing.T) {
	f := func(raw int32) bool {
		theta := float64(raw) / 1e6
		w := WrapPhase(theta)
		if w <= -math.Pi || w > math.Pi {
			return false
		}
		// Difference must be a multiple of 2*pi.
		d := (theta - w) / (2 * math.Pi)
		return math.Abs(d-math.Round(d)) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestUnwrapEmpty(t *testing.T) {
	if got := UnwrapPhase(nil); len(got) != 0 {
		t.Error("expected empty output")
	}
}
