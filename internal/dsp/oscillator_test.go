package dsp

import (
	"math"
	"math/cmplx"
	"testing"
)

// exactSample is the closed-form reference the oscillators must track.
func exactSample(amp, phase0, f, k, dt float64, i int) complex128 {
	t := float64(i) * dt
	s, c := math.Sincos(phase0 + 2*math.Pi*(f*t+0.5*k*t*t))
	return complex(amp*c, amp*s)
}

// phaseErr returns |arg(got · conj(want))| — the phase discrepancy
// independent of magnitude.
func phaseErr(got, want complex128) float64 {
	return math.Abs(cmplx.Phase(got * cmplx.Conj(want)))
}

// TestOscillatorDriftAgainstSincos is the recurrence accuracy contract: a
// chirp-rate oscillator run over a full SF 7–12 chirp at the SDR rate, with
// realistic oscillator offsets, stays within 1e-9 rad of the closed-form
// phase and within 1e-9 relative magnitude — the renormalization (exact
// re-seed every OscRenormInterval samples) bounds the error per block.
func TestOscillatorDriftAgainstSincos(t *testing.T) {
	const rate = 2.4e6
	const w = 125e3
	for sf := 7; sf <= 12; sf++ {
		n := float64(int(1) << sf)
		k := w * w / n
		total := int(n / w * rate) // samples in one chirp
		for _, delta := range []float64{-36e3, 0, 17.3e3} {
			f0 := -w/2 + delta
			osc := NewOscillator(1, 0.8, f0, k, 1/rate)
			var maxPhase, maxMag float64
			for i := 0; i < total; i++ {
				got := osc.Next()
				want := exactSample(1, 0.8, f0, k, 1/rate, i)
				if pe := phaseErr(got, want); pe > maxPhase {
					maxPhase = pe
				}
				if me := math.Abs(cmplx.Abs(got) - 1); me > maxMag {
					maxMag = me
				}
			}
			if maxPhase > 1e-9 {
				t.Errorf("SF%d δ=%g: max phase error %.3g rad, want < 1e-9", sf, delta, maxPhase)
			}
			if maxMag > 1e-9 {
				t.Errorf("SF%d δ=%g: max magnitude drift %.3g, want < 1e-9", sf, delta, maxMag)
			}
		}
	}
}

func TestRotatorDriftAgainstSincos(t *testing.T) {
	const dt = 1 / 2.4e6
	for _, f := range []float64{-743, 0, 22.8e3, 1.1e6} {
		rot := NewRotator(1, 1.3, f, dt)
		var maxPhase float64
		for i := 0; i < 100_000; i++ {
			got := rot.Next()
			want := exactSample(1, 1.3, f, 0, dt, i)
			if pe := phaseErr(got, want); pe > maxPhase {
				maxPhase = pe
			}
		}
		if maxPhase > 1e-9 {
			t.Errorf("f=%g: max phase error %.3g rad, want < 1e-9", f, maxPhase)
		}
	}
}

// TestOscillatorBatchMethodsMatchNext pins the chunked batch entry points
// (Fill/AddTo/MulInto and their re-seed boundaries) bit-for-bit against the
// per-sample Next sequence.
func TestOscillatorBatchMethodsMatchNext(t *testing.T) {
	const n = 3 * OscRenormInterval / 2 // crosses one re-seed boundary
	mk := func() Oscillator { return NewOscillator(0.7, 0.2, -30e3, 1.19e8, 1/2.4e6) }

	ref := mk()
	want := make([]complex128, n)
	for i := range want {
		want[i] = ref.Next()
	}

	fill := make([]complex128, n)
	o := mk()
	o.Fill(fill[:100])
	o.Fill(fill[100:]) // split fills must continue seamlessly
	for i := range fill {
		if fill[i] != want[i] {
			t.Fatalf("Fill[%d] = %v, want %v", i, fill[i], want[i])
		}
	}

	add := make([]complex128, n)
	o = mk()
	o.AddTo(add)
	for i := range add {
		if add[i] != want[i] {
			t.Fatalf("AddTo[%d] = %v, want %v", i, add[i], want[i])
		}
	}

	src := make([]complex128, n)
	for i := range src {
		src[i] = complex(float64(i%5)-2, 1)
	}
	mul := make([]complex128, n)
	o = mk()
	o.MulInto(mul, src)
	for i := range mul {
		if mul[i] != src[i]*want[i] {
			t.Fatalf("MulInto[%d] = %v, want %v", i, mul[i], src[i]*want[i])
		}
	}
}

func TestRotatorBatchMethodsMatchNext(t *testing.T) {
	const n = 2*OscRenormInterval + 37
	mk := func() Rotator { return NewRotator(1.5, -0.4, 9.7e3, 1/2.4e6) }

	ref := mk()
	want := make([]complex128, n)
	for i := range want {
		want[i] = ref.Next()
	}

	fill := make([]complex128, n)
	o := mk()
	o.Fill(fill)
	for i := range fill {
		if fill[i] != want[i] {
			t.Fatalf("Fill[%d] = %v, want %v", i, fill[i], want[i])
		}
	}

	src := make([]complex128, n)
	for i := range src {
		src[i] = complex(1, float64(i%3))
	}
	inplace := make([]complex128, n)
	copy(inplace, src)
	o = mk()
	o.MulInto(inplace, inplace) // in-place rotation is allowed
	for i := range inplace {
		// MulInto's two-lane unroll rounds differently from the scalar
		// recurrence by a few ulp; the re-seed bounds both identically.
		if d := cmplx.Abs(inplace[i] - src[i]*want[i]); d > 1e-12 {
			t.Fatalf("in-place MulInto[%d] = %v, want %v (Δ %g)", i, inplace[i], src[i]*want[i], d)
		}
	}
}

func TestOscillatorZeroAlloc(t *testing.T) {
	dst := make([]complex128, 4096)
	src := make([]complex128, 4096)
	osc := NewOscillator(1, 0, -20e3, 1.19e8, 1/2.4e6)
	rot := NewRotator(1, 0, -20e3, 1/2.4e6)
	if allocs := testing.AllocsPerRun(10, func() {
		osc.Fill(dst)
		osc.AddTo(dst)
		osc.MulInto(dst, src)
		rot.Fill(dst)
		rot.MulInto(dst, src)
	}); allocs != 0 {
		t.Errorf("oscillator batch methods allocated %v times per run", allocs)
	}
}
