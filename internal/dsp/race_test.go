package dsp_test

import (
	"math/cmplx"
	"sync"
	"testing"

	"softlora/internal/dsp"
)

// These tests exist for `make race`: they drive the package's shared and
// per-goroutine scratch through concurrent use so the race detector can
// vet the ownership contracts that plan caching and "one instance per
// goroutine" scratch rely on. They also assert bit-identical results, so
// a lost cache race would surface as a wrong transform, not only as a
// detector report.

// TestConcurrentPlanForSharedCache hammers the global plan cache from many
// goroutines asking for overlapping sizes while transforming goroutine-
// private buffers through the shared plans.
func TestConcurrentPlanForSharedCache(t *testing.T) {
	t.Parallel()
	sizes := []int{64, 256, 1024, 4096}
	refs := make(map[int][]complex128)
	for _, n := range sizes {
		buf := rampTrace(n)
		dsp.PlanFor(n).TransformInPlace(buf)
		refs[n] = buf
	}

	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan string, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for iter := 0; iter < 20; iter++ {
				n := sizes[(w+iter)%len(sizes)]
				buf := rampTrace(n)
				dsp.PlanFor(n).TransformInPlace(buf)
				for i := range buf {
					if buf[i] != refs[n][i] {
						errs <- "concurrent transform diverged from serial reference"
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}

// TestConcurrentTransformManyDistinctSlabs shares one plan across
// goroutines that each batch-transform a private slab. Plans are
// read-only after construction; this is the worker-pool idiom the batch
// pipeline uses.
func TestConcurrentTransformManyDistinctSlabs(t *testing.T) {
	t.Parallel()
	const n, blocks = 256, 4
	p := dsp.PlanFor(n)
	ref := rampTrace(n * blocks)
	p.TransformMany(ref)

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			slab := rampTrace(n * blocks)
			p.TransformMany(slab)
			for i := range slab {
				if slab[i] != ref[i] {
					t.Error("shared-plan batch transform diverged")
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestConcurrentGaussianSourcesIndependent runs one GaussianSource per
// goroutine — the documented ownership contract — and checks each stream
// replays its serial twin exactly.
func TestConcurrentGaussianSourcesIndependent(t *testing.T) {
	t.Parallel()
	const draws = 4096
	want := make([][]float64, 4)
	for w := range want {
		var g dsp.GaussianSource
		g.Seed(int64(w + 1))
		want[w] = make([]float64, draws)
		for i := range want[w] {
			want[w][i] = g.Norm()
		}
	}

	var wg sync.WaitGroup
	for w := range want {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var g dsp.GaussianSource
			g.Seed(int64(w + 1))
			for i := 0; i < draws; i++ {
				if got := g.Norm(); got != want[w][i] {
					t.Errorf("goroutine %d draw %d: got %v want %v", w, i, got, want[w][i])
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

// rampTrace builds a deterministic complex test vector.
func rampTrace(n int) []complex128 {
	buf := make([]complex128, n)
	for i := range buf {
		buf[i] = cmplx.Rect(1+float64(i%7)/7, float64(i)*0.37)
	}
	return buf
}
