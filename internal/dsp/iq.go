package dsp

import (
	"errors"
	"math"
	"math/cmplx"
)

// ErrEmptyTrace is returned by routines that require a non-empty trace.
var ErrEmptyTrace = errors.New("dsp: empty trace")

// I returns the in-phase (real) components of the trace.
func I(x []complex128) []float64 {
	out := make([]float64, len(x))
	for i, v := range x {
		out[i] = real(v)
	}
	return out
}

// Q returns the quadrature (imaginary) components of the trace.
func Q(x []complex128) []float64 {
	out := make([]float64, len(x))
	for i, v := range x {
		out[i] = imag(v)
	}
	return out
}

// Complex combines separate I and Q component slices into a complex trace.
// The result length is the shorter of the two inputs.
func Complex(iData, qData []float64) []complex128 {
	n := len(iData)
	if len(qData) < n {
		n = len(qData)
	}
	out := make([]complex128, n)
	for i := 0; i < n; i++ {
		out[i] = complex(iData[i], qData[i])
	}
	return out
}

// Power returns the average power of the trace, i.e. mean(|x|^2).
// It returns 0 for an empty trace.
func Power(x []complex128) float64 {
	if len(x) == 0 {
		return 0
	}
	var sum float64
	for _, v := range x {
		re, im := real(v), imag(v)
		sum += re*re + im*im
	}
	return sum / float64(len(x))
}

// PowerReal returns the average power of a real-valued trace.
func PowerReal(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	var sum float64
	for _, v := range x {
		sum += v * v
	}
	return sum / float64(len(x))
}

// Scale returns x scaled by the real gain g.
func Scale(x []complex128, g float64) []complex128 {
	out := make([]complex128, len(x))
	cg := complex(g, 0)
	for i, v := range x {
		out[i] = v * cg
	}
	return out
}

// ScaleInPlace multiplies every sample of x by the real gain g.
func ScaleInPlace(x []complex128, g float64) {
	cg := complex(g, 0)
	for i := range x {
		x[i] *= cg
	}
}

// Add returns the elementwise sum of a and b. The result has the length of
// the longer input; the shorter input is treated as zero-padded.
func Add(a, b []complex128) []complex128 {
	n := len(a)
	if len(b) > n {
		n = len(b)
	}
	out := make([]complex128, n)
	copy(out, a)
	for i, v := range b {
		out[i] += v
	}
	return out
}

// AddInPlace adds b into a starting at sample offset. Samples of b that fall
// outside a are ignored. A negative offset skips the leading -offset samples
// of b.
func AddInPlace(a, b []complex128, offset int) {
	for i, v := range b {
		j := i + offset
		if j < 0 {
			continue
		}
		if j >= len(a) {
			break
		}
		a[j] += v
	}
}

// Magnitude returns |x[i]| for every sample.
func Magnitude(x []complex128) []float64 {
	out := make([]float64, len(x))
	for i, v := range x {
		out[i] = cmplx.Abs(v)
	}
	return out
}

// Phase returns the four-quadrant phase atan2(Q, I) of every sample, in
// (-pi, pi].
func Phase(x []complex128) []float64 {
	out := make([]float64, len(x))
	for i, v := range x {
		out[i] = math.Atan2(imag(v), real(v))
	}
	return out
}

// Conj returns the elementwise complex conjugate of x.
func Conj(x []complex128) []complex128 {
	out := make([]complex128, len(x))
	for i, v := range x {
		out[i] = cmplx.Conj(v)
	}
	return out
}

// Mul returns the elementwise product of a and b. The result length is the
// shorter of the two inputs.
func Mul(a, b []complex128) []complex128 {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	out := make([]complex128, n)
	for i := 0; i < n; i++ {
		out[i] = a[i] * b[i]
	}
	return out
}

// Segment returns a copy of x[start:start+n], clamped to the bounds of x.
// It returns an empty slice when the clamped range is empty.
func Segment(x []complex128, start, n int) []complex128 {
	if start < 0 {
		start = 0
	}
	if start > len(x) {
		start = len(x)
	}
	end := start + n
	if n < 0 || end > len(x) {
		end = len(x)
	}
	out := make([]complex128, end-start)
	copy(out, x[start:end])
	return out
}

// Energy returns the total energy sum(|x|^2) of the trace.
func Energy(x []complex128) float64 {
	var sum float64
	for _, v := range x {
		re, im := real(v), imag(v)
		sum += re*re + im*im
	}
	return sum
}

// SNRdB converts a linear signal/noise power ratio into decibels.
func SNRdB(signalPower, noisePower float64) float64 {
	if noisePower <= 0 {
		return math.Inf(1)
	}
	return 10 * math.Log10(signalPower/noisePower)
}

// FromdB converts a value in decibels to a linear power ratio.
func FromdB(db float64) float64 { return math.Pow(10, db/10) }

// TodB converts a linear power ratio to decibels.
func TodB(ratio float64) float64 { return 10 * math.Log10(ratio) }
