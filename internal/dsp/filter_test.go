package dsp

import (
	"math"
	"math/cmplx"
	"testing"
)

func tone(n int, freq, rate float64) []complex128 {
	x := make([]complex128, n)
	for i := range x {
		x[i] = cmplx.Exp(complex(0, 2*math.Pi*freq*float64(i)/rate))
	}
	return x
}

func TestLowPassFIRPassesAndStops(t *testing.T) {
	const rate = 10000.0
	f := LowPassFIR(1000, rate, 129)
	pass := f.Apply(tone(4096, 300, rate))
	stop := f.Apply(tone(4096, 3000, rate))
	passP := Power(pass[200 : len(pass)-200])
	stopP := Power(stop[200 : len(stop)-200])
	if passP < 0.8 {
		t.Errorf("passband power = %f, want ~1", passP)
	}
	if stopP > 0.01*passP {
		t.Errorf("stopband power = %f, want << passband %f", stopP, passP)
	}
}

func TestLowPassFIRUnityDCGain(t *testing.T) {
	f := LowPassFIR(100, 1000, 65)
	var sum float64
	for _, h := range f.Taps {
		sum += h
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("DC gain = %f, want 1", sum)
	}
}

func TestLowPassFIROddTaps(t *testing.T) {
	f := LowPassFIR(100, 1000, 64)
	if len(f.Taps)%2 != 1 {
		t.Errorf("taps = %d, want odd", len(f.Taps))
	}
	f2 := LowPassFIR(100, 1000, 1)
	if len(f2.Taps) < 3 {
		t.Errorf("taps = %d, want >= 3", len(f2.Taps))
	}
}

func TestFilterDelayCompensation(t *testing.T) {
	// A step through the filter should transition near the original step
	// index, not shifted by the group delay.
	const n = 1000
	x := make([]complex128, n)
	for i := n / 2; i < n; i++ {
		x[i] = 1
	}
	f := LowPassFIR(100, 1000, 51)
	y := f.Apply(x)
	// Find where output crosses 0.5.
	cross := -1
	for i := 1; i < n; i++ {
		if real(y[i-1]) < 0.5 && real(y[i]) >= 0.5 {
			cross = i
			break
		}
	}
	if cross < 0 {
		t.Fatal("no crossing found")
	}
	if d := cross - n/2; d < -3 || d > 3 {
		t.Errorf("step crossing at %d, want near %d (delta %d)", cross, n/2, d)
	}
}

func TestApplyRealMatchesComplex(t *testing.T) {
	f := LowPassFIR(100, 1000, 31)
	xr := make([]float64, 256)
	xc := make([]complex128, 256)
	for i := range xr {
		v := math.Sin(2 * math.Pi * 30 * float64(i) / 1000)
		xr[i] = v
		xc[i] = complex(v, 0)
	}
	yr := f.ApplyReal(xr)
	yc := f.Apply(xc)
	for i := range yr {
		if math.Abs(yr[i]-real(yc[i])) > 1e-12 {
			t.Fatalf("mismatch at %d", i)
		}
	}
}

func TestDecimate(t *testing.T) {
	x := []complex128{0, 1, 2, 3, 4, 5, 6}
	got := Decimate(x, 3)
	want := []complex128{0, 3, 6}
	if len(got) != len(want) {
		t.Fatalf("len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Decimate = %v, want %v", got, want)
		}
	}
	id := Decimate(x, 1)
	if len(id) != len(x) {
		t.Fatal("factor 1 should copy")
	}
	id[0] = 99
	if x[0] == 99 {
		t.Fatal("Decimate factor 1 must copy")
	}
}

func TestDecimateFilteredPreservesBaseband(t *testing.T) {
	const rate = 8000.0
	x := tone(8192, 200, rate)
	y := DecimateFiltered(x, rate, 4)
	if len(y) != len(x)/4 {
		t.Fatalf("len = %d, want %d", len(y), len(x)/4)
	}
	// The tone survives decimation with ~unity power.
	p := Power(y[100 : len(y)-100])
	if p < 0.7 || p > 1.3 {
		t.Errorf("decimated tone power = %f, want ~1", p)
	}
}
