package dsp

import (
	"math"
	"math/rand"
	"testing"
)

func TestDESphere(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	sphere := func(x []float64) float64 {
		var s float64
		for _, v := range x {
			s += (v - 1.5) * (v - 1.5)
		}
		return s
	}
	res := DifferentialEvolution(sphere,
		[]float64{-10, -10, -10}, []float64{10, 10, 10},
		DEConfig{Rand: rng, MaxGenerations: 200})
	if res.Cost > 1e-4 {
		t.Fatalf("cost = %g, want ~0 (x = %v)", res.Cost, res.X)
	}
	for _, v := range res.X {
		if math.Abs(v-1.5) > 0.02 {
			t.Errorf("x = %v, want all ~1.5", res.X)
		}
	}
}

func TestDERastrigin(t *testing.T) {
	// Multimodal: DE should still find the global optimum at 0 in 2D.
	rng := rand.New(rand.NewSource(21))
	rastrigin := func(x []float64) float64 {
		s := 10.0 * float64(len(x))
		for _, v := range x {
			s += v*v - 10*math.Cos(2*math.Pi*v)
		}
		return s
	}
	res := DifferentialEvolution(rastrigin,
		[]float64{-5.12, -5.12}, []float64{5.12, 5.12},
		DEConfig{Rand: rng, MaxGenerations: 300, PopulationSize: 40})
	if res.Cost > 0.01 {
		t.Fatalf("cost = %g at %v, want ~0", res.Cost, res.X)
	}
}

func TestDERespectsBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	// Optimum outside the box: result must sit on the boundary.
	fn := func(x []float64) float64 { return (x[0] - 100) * (x[0] - 100) }
	res := DifferentialEvolution(fn, []float64{-1}, []float64{2},
		DEConfig{Rand: rng})
	if res.X[0] < -1 || res.X[0] > 2 {
		t.Fatalf("x = %f outside bounds", res.X[0])
	}
	if math.Abs(res.X[0]-2) > 1e-6 {
		t.Errorf("x = %f, want boundary 2", res.X[0])
	}
}

func TestDEInvalidInputs(t *testing.T) {
	res := DifferentialEvolution(func([]float64) float64 { return 0 },
		nil, nil, DEConfig{Rand: rand.New(rand.NewSource(1))})
	if !math.IsInf(res.Cost, 1) {
		t.Error("expected +Inf cost for empty bounds")
	}
	res = DifferentialEvolution(func([]float64) float64 { return 0 },
		[]float64{0}, []float64{1}, DEConfig{})
	if !math.IsInf(res.Cost, 1) {
		t.Error("expected +Inf cost for nil Rand")
	}
}

func TestDEDeterministicForSeed(t *testing.T) {
	fn := func(x []float64) float64 { return x[0]*x[0] + x[1]*x[1] }
	run := func() DEResult {
		return DifferentialEvolution(fn, []float64{-3, -3}, []float64{3, 3},
			DEConfig{Rand: rand.New(rand.NewSource(99)), MaxGenerations: 50})
	}
	a, b := run(), run()
	if a.Cost != b.Cost || a.X[0] != b.X[0] || a.X[1] != b.X[1] {
		t.Error("same seed should give identical results")
	}
}

func TestDEEarlyTermination(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	fn := func(x []float64) float64 { return 0 } // flat: converges instantly
	res := DifferentialEvolution(fn, []float64{0}, []float64{1},
		DEConfig{Rand: rng, MaxGenerations: 1000})
	if res.Generations >= 1000 {
		t.Errorf("generations = %d, expected early stop", res.Generations)
	}
}
