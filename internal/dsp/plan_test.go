package dsp

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
)

func randComplex(rng *rand.Rand, n int) []complex128 {
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return x
}

func maxSpectrumDiff(a, b []complex128) float64 {
	worst := 0.0
	for i := range a {
		if d := cmplx.Abs(a[i] - b[i]); d > worst {
			worst = d
		}
	}
	return worst
}

// naiveDFT is the O(n²) reference transform.
func naiveDFT(x []complex128) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		var sum complex128
		for t := 0; t < n; t++ {
			angle := -2 * math.Pi * float64(k) * float64(t) / float64(n)
			sum += x[t] * cmplx.Exp(complex(0, angle))
		}
		out[k] = sum
	}
	return out
}

// TestPlanMatchesFFTAllSizes cross-checks the planned transform against the
// allocating FFT/IFFT on random inputs for every length 2..4096, covering
// both power-of-two sizes and the zero-padding parity of everything in
// between.
func TestPlanMatchesFFTAllSizes(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for n := 2; n <= 4096; n++ {
		x := randComplex(rng, n)
		want := FFT(x)
		plan := PlanFor(n)
		if plan.Size() != NextPow2(n) {
			t.Fatalf("n=%d: plan size %d, want %d", n, plan.Size(), NextPow2(n))
		}
		got := make([]complex128, plan.Size())
		plan.Transform(got, x)
		if d := maxSpectrumDiff(got, want); d > 1e-9 {
			t.Fatalf("n=%d: planned FFT deviates from FFT by %g", n, d)
		}
		// Inverse parity against IFFT on the (padded) spectrum.
		wantInv := IFFT(got)
		gotInv := make([]complex128, plan.Size())
		plan.Inverse(gotInv, got)
		if d := maxSpectrumDiff(gotInv, wantInv); d > 1e-9 {
			t.Fatalf("n=%d: planned IFFT deviates from IFFT by %g", n, d)
		}
	}
}

// TestPlanRoundTrip checks Transform → Inverse recovers the (zero-padded)
// input across all power-of-two sizes up to 4096.
func TestPlanRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for n := 2; n <= 4096; n <<= 1 {
		plan := NewPlan(n)
		x := randComplex(rng, n)
		buf := make([]complex128, n)
		copy(buf, x)
		plan.TransformInPlace(buf)
		plan.InverseInPlace(buf)
		for i := range x {
			if d := cmplx.Abs(buf[i] - x[i]); d > 1e-9 {
				t.Fatalf("n=%d: round-trip error %g at sample %d", n, d, i)
			}
		}
	}
}

// TestPlanMatchesNaiveDFT anchors the plan against the O(n²) definition at
// a few sizes, independent of the legacy FFT implementation.
func TestPlanMatchesNaiveDFT(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, n := range []int{2, 8, 64, 256} {
		x := randComplex(rng, n)
		want := naiveDFT(x)
		got := make([]complex128, n)
		NewPlan(n).Transform(got, x)
		if d := maxSpectrumDiff(got, want); d > 1e-7*float64(n) {
			t.Fatalf("n=%d: planned FFT deviates from naive DFT by %g", n, d)
		}
	}
}

func TestNewPlanRejectsNonPow2(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewPlan(12) did not panic")
		}
	}()
	NewPlan(12)
}

// TestPlanZeroAlloc asserts the planned transforms never allocate after
// warm-up — the contract the per-worker gateway pipelines rely on.
func TestPlanZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	plan := PlanFor(1024)
	src := randComplex(rng, 1000) // exercises the zero-padding path too
	dst := make([]complex128, plan.Size())
	if allocs := testing.AllocsPerRun(100, func() {
		plan.Transform(dst, src)
	}); allocs != 0 {
		t.Errorf("Plan.Transform allocated %v times per run", allocs)
	}
	if allocs := testing.AllocsPerRun(100, func() {
		plan.TransformInPlace(dst)
	}); allocs != 0 {
		t.Errorf("Plan.TransformInPlace allocated %v times per run", allocs)
	}
	if allocs := testing.AllocsPerRun(100, func() {
		plan.InverseInPlace(dst)
	}); allocs != 0 {
		t.Errorf("Plan.InverseInPlace allocated %v times per run", allocs)
	}
}

// TestSpectrogramPlanMatchesSpectrogram checks the planned spectrogram
// against the one-shot API, including row reuse across calls.
func TestSpectrogramPlanMatchesSpectrogram(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	x := randComplex(rng, 1500)
	w := KaiserWindow(128, 8)
	want := Spectrogram(x, w, 16)
	sp := NewSpectrogramPlan(w, 16)
	var got [][]float64
	for pass := 0; pass < 2; pass++ { // second pass reuses rows
		got = sp.Compute(x, got)
	}
	if len(got) != len(want) {
		t.Fatalf("frames: got %d, want %d", len(got), len(want))
	}
	for f := range want {
		for b := range want[f] {
			if d := math.Abs(got[f][b] - want[f][b]); d > 1e-9*(1+want[f][b]) {
				t.Fatalf("frame %d bin %d: got %g, want %g", f, b, got[f][b], want[f][b])
			}
		}
	}
	if n := sp.Frames(len(x)); n != len(want) {
		t.Fatalf("Frames(%d) = %d, want %d", len(x), n, len(want))
	}
}

// TestPeakBinSq anchors the squared-magnitude scanner against a direct
// magnitude scan.
func TestPeakBinSq(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	spec := randComplex(rng, 257)
	bin, magSq := PeakBinSq(spec)
	wantBin, wantMag := 0, 0.0
	for i, v := range spec {
		if m := cmplx.Abs(v); m > wantMag {
			wantMag = m
			wantBin = i
		}
	}
	if bin != wantBin {
		t.Fatalf("bins disagree: %d vs %d", bin, wantBin)
	}
	if d := math.Abs(wantMag*wantMag - magSq); d > 1e-9*(1+magSq) {
		t.Fatalf("magnitude mismatch: |X|²=%g, want %g", magSq, wantMag*wantMag)
	}
}

// TestDechirpDecimatedPreservesTone drives the boxcar-decimated dechirp
// path with a synthetic chirp+tone whose dechirped product is a pure tone
// landing exactly on both the full-rate and the decimated bin grid, and
// checks (a) the decimated peak sits at the same frequency, (b) the
// droop-compensated peak power matches the full-rate transform's — i.e. the
// decimation loses none of the despreading gain.
func TestDechirpDecimatedPreservesTone(t *testing.T) {
	const n = 2048
	const d = 4
	const rate = 1e6
	phase := make([]float64, n)
	for i := range phase {
		ti := float64(i) / rate
		phase[i] = 2 * math.Pi * 3e4 * ti * ti * rate / 100 // arbitrary quadratic
	}
	// Tone on both grids: full nfft = 2048, decimated nfft = 512, and the
	// bin widths in Hz coincide (rate/2048 = (rate/4)/512), so the peak
	// lands on the same bin index in both spectra.
	const bin = 40
	f0 := float64(bin) / 2048 // cycles per full-rate sample
	x := make([]complex128, n)
	for i := range x {
		x[i] = cmplx.Exp(complex(0, phase[i]+2*math.Pi*f0*float64(i)))
	}
	var s DechirpScratch[int]
	s.Init(1, n, rate, 1, phase)
	full := s.Dechirp(x)
	fullBin, fullSq := PeakBinSq(full)
	if fullBin != bin {
		t.Fatalf("full-rate peak at bin %d, want %d", fullBin, bin)
	}
	dec := s.DechirpDecimated(x, d)
	if len(dec) != 512 {
		t.Fatalf("decimated spectrum length %d, want 512", len(dec))
	}
	decBin, decSq := PeakBinSq(dec)
	if decBin != bin {
		t.Fatalf("decimated peak at bin %d, want %d", decBin, bin)
	}
	droop := BoxcarDroopSq(d, f0)
	if ratio := decSq / droop / fullSq; math.Abs(ratio-1) > 0.01 {
		t.Errorf("droop-compensated decimated peak power off by %.3f× (droop %.4f)", ratio, droop)
	}
	// Repeated calls must reuse the lazily built decimated scratch.
	if allocs := testing.AllocsPerRun(20, func() {
		s.DechirpDecimated(x, d)
	}); allocs != 0 {
		t.Errorf("DechirpDecimated allocated %v times per run in steady state", allocs)
	}
	// d=1 degenerates to the full-rate path.
	if got := s.DechirpDecimated(x, 1); len(got) != len(full) {
		t.Errorf("d=1 spectrum length %d, want %d", len(got), len(full))
	}
}

func TestBoxcarDroopSq(t *testing.T) {
	if g := BoxcarDroopSq(1, 0.3); g != 1 {
		t.Errorf("d=1 droop = %g, want 1", g)
	}
	if g := BoxcarDroopSq(4, 0); g != 1 {
		t.Errorf("DC droop = %g, want 1", g)
	}
	// Analytic check at f=1/8, d=4: |sin(π/2)/(4·sin(π/8))|².
	want := math.Pow(1/(4*math.Sin(math.Pi/8)), 2)
	if g := BoxcarDroopSq(4, 0.125); math.Abs(g-want) > 1e-12 {
		t.Errorf("droop(4, 1/8) = %g, want %g", g, want)
	}
	// Monotone decay toward the first null within the decimated band.
	if !(BoxcarDroopSq(4, 0.05) > BoxcarDroopSq(4, 0.1)) {
		t.Error("droop must decay with |f|")
	}
}

// TestOverlapSaveMatchesDirectFIR checks the FFT overlap-save convolution
// against the direct form across sizes straddling the switch-over, at both
// edges and interior.
func TestOverlapSaveMatchesDirectFIR(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for _, n := range []int{1040, 4096, 9000, 20000} {
		x := randComplex(rng, n)
		f := LowPassFIR(100e3, 2.4e6, 129)
		got := f.Apply(x) // overlap-save path (n >= 8m)
		direct := &FIRFilter{Taps: f.Taps}
		want := make([]complex128, n)
		m := len(f.Taps)
		delay := m / 2
		for i := 0; i < n; i++ {
			var acc complex128
			for j := 0; j < m; j++ {
				k := i + delay - j
				if k < 0 || k >= n {
					continue
				}
				acc += x[k] * complex(direct.Taps[j], 0)
			}
			want[i] = acc
		}
		worst := 0.0
		for i := range want {
			if d := cmplx.Abs(got[i] - want[i]); d > worst {
				worst = d
			}
		}
		if worst > 1e-10 {
			t.Errorf("n=%d: overlap-save deviates from direct by %g", n, worst)
		}
	}
}

// TestTransformManyBitIdentical pins the batched entry point against
// per-block TransformInPlace: same plan, same input, bit-for-bit equal
// output for both kernel radices, plus the length-contract panic and the
// empty-slab no-op.
func TestTransformManyBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for _, n := range []int{64, 128, 1024} { // radix-4, radix-2, radix-4
		plan := NewPlan(n)
		const k = 5
		slab := randComplex(rng, k*n)
		want := make([]complex128, k*n)
		copy(want, slab)
		for b := 0; b < k; b++ {
			plan.TransformInPlace(want[b*n : (b+1)*n])
		}
		plan.TransformMany(slab)
		for i := range slab {
			if slab[i] != want[i] {
				t.Fatalf("n=%d: block output differs at %d: %v != %v", n, i, slab[i], want[i])
			}
		}
		plan.TransformMany(slab[:0]) // empty slab is a no-op
	}

	defer func() {
		if recover() == nil {
			t.Fatal("TransformMany with a ragged slab did not panic")
		}
	}()
	NewPlan(64).TransformMany(make([]complex128, 96))
}

func TestTransformManyZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	plan := PlanFor(256)
	slab := randComplex(rng, 8*plan.Size())
	if allocs := testing.AllocsPerRun(50, func() {
		plan.TransformMany(slab)
	}); allocs != 0 {
		t.Errorf("Plan.TransformMany allocated %v times per run", allocs)
	}
}
