package dsp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestGaussianNoisePower(t *testing.T) {
	rng := rand.New(rand.NewSource(30))
	for _, p := range []float64{0.1, 1, 10} {
		x := GaussianNoise(rng, 20000, p)
		got := Power(x)
		if math.Abs(got-p) > 0.05*p {
			t.Errorf("power = %f, want %f", got, p)
		}
	}
}

func TestGaussianNoiseZeroMean(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	x := GaussianNoise(rng, 20000, 1)
	mi := Mean(I(x))
	mq := Mean(Q(x))
	if math.Abs(mi) > 0.02 || math.Abs(mq) > 0.02 {
		t.Errorf("mean = (%f, %f), want ~(0, 0)", mi, mq)
	}
}

func TestColoredNoisePowerNormalized(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	x := ColoredNoise(rng, 16384, 2.5, ColoredNoiseConfig{})
	got := Power(x)
	if math.Abs(got-2.5) > 1e-9 {
		t.Errorf("power = %f, want 2.5 exactly (normalized)", got)
	}
}

func TestColoredNoiseIsColored(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	x := ColoredNoise(rng, 8192, 1, ColoredNoiseConfig{CutoffFraction: 0.25, ImpulseRate: -1})
	spec := FFT(x)
	n := len(spec)
	// Compare in-band vs out-of-band average power.
	var inBand, outBand float64
	var inN, outN int
	for k, v := range spec {
		f := math.Abs(BinFrequency(k, n, 1))
		p := real(v)*real(v) + imag(v)*imag(v)
		if f < 0.1 {
			inBand += p
			inN++
		} else if f > 0.2 {
			outBand += p
			outN++
		}
	}
	inBand /= float64(inN)
	outBand /= float64(outN)
	if inBand < 10*outBand {
		t.Errorf("in-band %g not >> out-of-band %g", inBand, outBand)
	}
}

func TestColoredNoiseEmpty(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	if got := ColoredNoise(rng, 0, 1, ColoredNoiseConfig{}); got != nil {
		t.Error("expected nil for n=0")
	}
}

func TestAddNoiseSNRAchievesTarget(t *testing.T) {
	rng := rand.New(rand.NewSource(35))
	signal := tone(8192, 100, 8192)
	noise := GaussianNoise(rng, 8192, 1)
	for _, snr := range []float64{-20, -5, 0, 10, 30} {
		noisy := AddNoiseSNR(signal, noise, snr)
		// Measured noise power from the exact residual.
		residual := make([]complex128, len(noisy))
		for i := range noisy {
			residual[i] = noisy[i] - signal[i]
		}
		gotSNR := SNRdB(Power(signal), Power(residual))
		if math.Abs(gotSNR-snr) > 0.01 {
			t.Errorf("target %f dB, measured %f dB", snr, gotSNR)
		}
	}
}

func TestAddNoiseSNRProperty(t *testing.T) {
	f := func(seed int64, snrRaw int8) bool {
		rng := rand.New(rand.NewSource(seed))
		snr := float64(snrRaw) / 4 // -32..32 dB
		signal := tone(2048, 64, 2048)
		noise := GaussianNoise(rng, 2048, 1)
		noisy := AddNoiseSNR(signal, noise, snr)
		residual := make([]complex128, len(noisy))
		for i := range noisy {
			residual[i] = noisy[i] - signal[i]
		}
		return math.Abs(SNRdB(Power(signal), Power(residual))-snr) < 0.01
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestAddNoiseSNRZeroCases(t *testing.T) {
	signal := tone(64, 4, 64)
	zero := make([]complex128, 64)
	out := AddNoiseSNR(signal, zero, 10)
	for i := range out {
		if out[i] != signal[i] {
			t.Fatal("zero noise should leave signal unchanged")
		}
	}
}

func TestNoiseForSNR(t *testing.T) {
	g := NoiseForSNR(1, 1, 20)
	// Noise power after gain g^2 should be 0.01.
	if math.Abs(g*g-0.01) > 1e-12 {
		t.Errorf("gain^2 = %g, want 0.01", g*g)
	}
	if NoiseForSNR(0, 1, 10) != 0 {
		t.Error("zero signal power should give zero gain")
	}
}
