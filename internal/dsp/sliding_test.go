package dsp

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
)

// directDFT evaluates Σ x[i]·e^{−jωi} by brute force.
func directDFT(x []complex128, omega float64) complex128 {
	var sum complex128
	for i, v := range x {
		sum += v * cmplx.Exp(complex(0, -omega*float64(i)))
	}
	return sum
}

func TestGoertzelDFTMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	x := randComplex(rng, 301)
	// FFT-grid frequencies and arbitrary off-grid ones.
	omegas := []float64{0, 2 * math.Pi / 301 * 17, 0.4567, 1.9, math.Pi, 5.1, -0.7}
	for _, w := range omegas {
		got := GoertzelDFT(x, w)
		want := directDFT(x, w)
		if d := cmplx.Abs(got - want); d > 1e-8 {
			t.Errorf("omega=%g: got %v, want %v (|diff|=%g)", w, got, want, d)
		}
	}
	if got := GoertzelDFT(nil, 1.0); got != 0 {
		t.Errorf("empty input: got %v, want 0", got)
	}
}

func TestGoertzelDFTMatchesFFTBins(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	const n = 256
	x := randComplex(rng, n)
	spec := FFT(x)
	for _, k := range []int{0, 1, 100, 255} {
		w := 2 * math.Pi * float64(k) / n
		got := GoertzelDFT(x, w)
		if d := cmplx.Abs(got - spec[k]); d > 1e-8 {
			t.Errorf("bin %d: goertzel %v, fft %v", k, got, spec[k])
		}
	}
}

func TestSlidingDFTMatchesGoertzel(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	x := randComplex(rng, 2000)
	const n = 600
	thetas := []float64{0.1, 0.7345, 2.9, -1.3}
	var s SlidingDFT
	s.Reset(x, 0, n, thetas)
	// Walk the window forward in uneven hops and cross-check every bin
	// against a fresh Goertzel evaluation of the same window.
	for _, hop := range []int{1, 7, 13, 250, 500} {
		s.Advance(x, hop)
		a := s.Start()
		for k, th := range thetas {
			want := GoertzelDFT(x[a:a+n], th)
			if d := cmplx.Abs(s.Sum(k) - want); d > 1e-7 {
				t.Errorf("start %d bin %d: sliding %v, direct %v (|diff|=%g)", a, k, s.Sum(k), want, d)
			}
		}
	}
	if s.Bins() != len(thetas) {
		t.Errorf("Bins() = %d, want %d", s.Bins(), len(thetas))
	}
}

func TestSlidingDFTMaxMagSq(t *testing.T) {
	// A pure tone: the bin at the tone frequency must dominate the others.
	const n = 512
	const tone = 0.5
	x := make([]complex128, 2*n)
	for i := range x {
		x[i] = cmplx.Exp(complex(0, tone*float64(i)))
	}
	var s SlidingDFT
	s.Reset(x, 0, n, []float64{tone, tone + 0.3})
	onTone := real(s.Sum(0))*real(s.Sum(0)) + imag(s.Sum(0))*imag(s.Sum(0))
	if got := s.MaxMagSq(); math.Abs(got-onTone) > 1e-6*onTone {
		t.Errorf("MaxMagSq = %g, want the on-tone bin %g", got, onTone)
	}
	s.Advance(x, n/2)
	if got := s.MaxMagSq(); math.Abs(got-float64(n)*float64(n)) > 1e-3*float64(n*n) {
		t.Errorf("after slide MaxMagSq = %g, want ~%d", got, n*n)
	}
}

func TestSlidingDFTZeroAllocSteadyState(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	x := randComplex(rng, 4000)
	thetas := []float64{0.3, 1.1, 2.2}
	var s SlidingDFT
	s.Reset(x, 0, 1024, thetas) // warm-up sizes the slices
	allocs := testing.AllocsPerRun(50, func() {
		s.Reset(x, 0, 1024, thetas)
		s.Advance(x, 64)
		_ = s.MaxMagSq()
	})
	if allocs != 0 {
		t.Errorf("SlidingDFT Reset/Advance allocated %v times per run in steady state", allocs)
	}
}
