package dsp

import (
	"math"
	"math/bits"
	"math/cmplx"
)

// NextPow2 returns the smallest power of two that is >= n, and 1 for n <= 1.
func NextPow2(n int) int {
	if n <= 1 {
		return 1
	}
	return 1 << bits.Len(uint(n-1))
}

// IsPow2 reports whether n is a positive power of two.
func IsPow2(n int) bool { return n > 0 && n&(n-1) == 0 }

// FFT computes the discrete Fourier transform of x using an iterative
// radix-2 Cooley-Tukey algorithm. If len(x) is not a power of two, x is
// zero-padded to the next power of two. The input is not modified.
func FFT(x []complex128) []complex128 {
	n := NextPow2(len(x))
	out := make([]complex128, n)
	copy(out, x)
	fftInPlace(out, false)
	return out
}

// IFFT computes the inverse discrete Fourier transform of x, zero-padding to
// a power of two if needed. The 1/N normalization is applied.
func IFFT(x []complex128) []complex128 {
	n := NextPow2(len(x))
	out := make([]complex128, n)
	copy(out, x)
	fftInPlace(out, true)
	inv := complex(1/float64(n), 0)
	for i := range out {
		out[i] *= inv
	}
	return out
}

// fftInPlace runs an in-place radix-2 FFT. len(x) must be a power of two.
// When inverse is true the conjugate (inverse) transform is computed without
// normalization.
func fftInPlace(x []complex128, inverse bool) {
	n := len(x)
	if n <= 1 {
		return
	}
	// Bit-reversal permutation.
	shift := bits.UintSize - uint(bits.Len(uint(n-1)))
	for i := 0; i < n; i++ {
		j := int(bits.Reverse(uint(i)) >> shift)
		if j > i {
			x[i], x[j] = x[j], x[i]
		}
	}
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	for size := 2; size <= n; size <<= 1 {
		half := size / 2
		step := sign * 2 * math.Pi / float64(size)
		wBase := cmplx.Exp(complex(0, step))
		for start := 0; start < n; start += size {
			w := complex(1, 0)
			for k := 0; k < half; k++ {
				a := x[start+k]
				b := x[start+k+half] * w
				x[start+k] = a + b
				x[start+k+half] = a - b
				w *= wBase
			}
		}
	}
}

// FFTShift rotates the spectrum so the zero-frequency bin is at the center.
func FFTShift(x []complex128) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	half := (n + 1) / 2
	copy(out, x[half:])
	copy(out[n-half:], x[:half])
	return out
}

// BinFrequency returns the signal frequency (Hz) corresponding to FFT bin k
// of an n-point transform at the given sample rate, mapping bins above n/2
// to negative frequencies.
func BinFrequency(k, n int, sampleRate float64) float64 {
	if k > n/2 {
		k -= n
	}
	return float64(k) * sampleRate / float64(n)
}

// PeakBin returns the index and magnitude of the largest-magnitude bin of
// the spectrum.
func PeakBin(spectrum []complex128) (bin int, magnitude float64) {
	for i, v := range spectrum {
		if m := cmplx.Abs(v); m > magnitude {
			magnitude = m
			bin = i
		}
	}
	return bin, magnitude
}

// InterpolatePeak refines a spectral peak location to sub-bin accuracy by
// fitting a parabola to the log-magnitudes of the peak bin and its two
// neighbors (with wraparound). It returns the fractional bin offset in
// [-0.5, 0.5] to add to the integer peak index.
func InterpolatePeak(spectrum []complex128, bin int) float64 {
	n := len(spectrum)
	if n < 3 {
		return 0
	}
	mag := func(i int) float64 {
		m := cmplx.Abs(spectrum[((i%n)+n)%n])
		if m <= 0 {
			m = 1e-300
		}
		return math.Log(m)
	}
	alpha, beta, gamma := mag(bin-1), mag(bin), mag(bin+1)
	denom := alpha - 2*beta + gamma
	if denom == 0 {
		return 0
	}
	d := 0.5 * (alpha - gamma) / denom
	if d > 0.5 {
		d = 0.5
	} else if d < -0.5 {
		d = -0.5
	}
	return d
}

// Spectrogram computes a short-time Fourier transform power spectrogram of
// the complex trace x. Each column is the power spectral density of one
// window of windowLen samples; consecutive windows overlap by overlap
// samples. The window function w must have length windowLen (use
// KaiserWindow to match the paper's Fig. 6 setup).
//
// The returned matrix is indexed as psd[frame][bin] with bins in FFT order.
func Spectrogram(x []complex128, w []float64, overlap int) [][]float64 {
	windowLen := len(w)
	if windowLen == 0 || len(x) < windowLen {
		return nil
	}
	hop := windowLen - overlap
	if hop < 1 {
		hop = 1
	}
	nFrames := (len(x)-windowLen)/hop + 1
	out := make([][]float64, 0, nFrames)
	buf := make([]complex128, NextPow2(windowLen))
	for f := 0; f < nFrames; f++ {
		start := f * hop
		for i := range buf {
			buf[i] = 0
		}
		for i := 0; i < windowLen; i++ {
			buf[i] = x[start+i] * complex(w[i], 0)
		}
		fftInPlace(buf, false)
		psd := make([]float64, len(buf))
		for i, v := range buf {
			re, im := real(v), imag(v)
			psd[i] = re*re + im*im
		}
		out = append(out, psd)
	}
	return out
}
