package dsp

import (
	"math"
	"math/bits"
)

// NextPow2 returns the smallest power of two that is >= n, and 1 for n <= 1.
func NextPow2(n int) int {
	if n <= 1 {
		return 1
	}
	return 1 << bits.Len(uint(n-1))
}

// IsPow2 reports whether n is a positive power of two.
func IsPow2(n int) bool { return n > 0 && n&(n-1) == 0 }

// FFT computes the discrete Fourier transform of x using an iterative
// radix-2 Cooley-Tukey algorithm. If len(x) is not a power of two, x is
// zero-padded to the next power of two. The input is not modified.
//
// FFT allocates its output; hot paths that transform repeatedly at one size
// should hold a Plan and reuse buffers via Transform/TransformInPlace.
func FFT(x []complex128) []complex128 {
	p := PlanFor(len(x))
	out := make([]complex128, p.Size())
	p.Transform(out, x)
	return out
}

// IFFT computes the inverse discrete Fourier transform of x, zero-padding to
// a power of two if needed. The 1/N normalization is applied.
func IFFT(x []complex128) []complex128 {
	p := PlanFor(len(x))
	out := make([]complex128, p.Size())
	p.Inverse(out, x)
	return out
}

// FFTShift rotates the spectrum so the zero-frequency bin is at the center.
func FFTShift(x []complex128) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	half := (n + 1) / 2
	copy(out, x[half:])
	copy(out[n-half:], x[:half])
	return out
}

// BinFrequency returns the signal frequency (Hz) corresponding to FFT bin k
// of an n-point transform at the given sample rate, mapping bins above n/2
// to negative frequencies.
func BinFrequency(k, n int, sampleRate float64) float64 {
	if k > n/2 {
		k -= n
	}
	return float64(k) * sampleRate / float64(n)
}

// FoldFrequency wraps f into the principal alias band (−rate/2, rate/2] of
// a sampling rate. Interpolated peak readouts need this: a fractional-bin
// correction applied at the Nyquist bin can push the result past +rate/2,
// where the physically observable frequency has already wrapped negative.
func FoldFrequency(f, rate float64) float64 {
	f = math.Mod(f, rate)
	if f > rate/2 {
		f -= rate
	} else if f <= -rate/2 {
		f += rate
	}
	return f
}

// PeakBinSq returns the index and SQUARED magnitude of the strongest bin —
// the one squared-magnitude scanner behind every peak search in the
// gateway (one multiply-add per bin, no square roots). Callers that need
// the linear magnitude take math.Sqrt of the result once; most consume the
// squared value directly (power ratios, relative comparisons).
func PeakBinSq(spectrum []complex128) (bin int, magSq float64) {
	for i, v := range spectrum {
		re, im := real(v), imag(v)
		if m := re*re + im*im; m > magSq {
			magSq = m
			bin = i
		}
	}
	return bin, magSq
}

// InterpolatePeak refines a spectral peak location to sub-bin accuracy by
// fitting a parabola to the log-magnitudes of the peak bin and its two
// neighbors (with wraparound). It returns the fractional bin offset in
// [-0.5, 0.5] to add to the integer peak index.
func InterpolatePeak(spectrum []complex128, bin int) float64 {
	n := len(spectrum)
	if n < 3 {
		return 0
	}
	// Log magnitudes from squared magnitudes: log|X| = log(|X|²)/2, saving
	// the square root per neighbor.
	mag := func(i int) float64 {
		v := spectrum[((i%n)+n)%n]
		re, im := real(v), imag(v)
		m := re*re + im*im
		if m <= 0 {
			m = 1e-300
		}
		return 0.5 * math.Log(m)
	}
	alpha, beta, gamma := mag(bin-1), mag(bin), mag(bin+1)
	denom := alpha - 2*beta + gamma
	if denom == 0 {
		return 0
	}
	d := 0.5 * (alpha - gamma) / denom
	if d > 0.5 {
		d = 0.5
	} else if d < -0.5 {
		d = -0.5
	}
	return d
}

// Spectrogram computes a short-time Fourier transform power spectrogram of
// the complex trace x. Each column is the power spectral density of one
// window of windowLen samples; consecutive windows overlap by overlap
// samples. The window function w must have length windowLen (use
// KaiserWindow to match the paper's Fig. 6 setup).
//
// The returned matrix is indexed as psd[frame][bin] with bins in FFT order.
// Repeated spectrograms with one window should build a SpectrogramPlan and
// reuse its buffers instead.
func Spectrogram(x []complex128, w []float64, overlap int) [][]float64 {
	if len(w) == 0 || len(x) < len(w) {
		return nil
	}
	return NewSpectrogramPlan(w, overlap).Compute(x, nil)
}
