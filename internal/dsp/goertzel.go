package dsp

import "math"

// GoertzelDFT evaluates the DFT of x at one arbitrary angular frequency
// omega (radians per sample):
//
//	X(ω) = Σ_{i<n} x[i]·e^{−jωi}
//
// in O(n) with the Goertzel recurrence — two real multiplies per sample
// against the real coefficient 2·cos ω, no twiddle table and no restriction
// of ω to an FFT bin grid. It allocates nothing, so hot paths may call it
// per window; when a caller needs the same frequencies across many window
// positions of one trace, SlidingDFT amortizes the evaluation to O(1) per
// one-sample shift instead.
func GoertzelDFT(x []complex128, omega float64) complex128 {
	n := len(x)
	if n == 0 {
		return 0
	}
	coeff := 2 * math.Cos(omega)
	var s1, s2 complex128
	for _, v := range x {
		// The coefficient is real, so scale componentwise instead of paying
		// a full complex multiply.
		s0 := v + complex(coeff*real(s1)-real(s2), coeff*imag(s1)-imag(s2))
		s2, s1 = s1, s0
	}
	// Unwind the final state: X(ω) = (s_{n−1} − e^{−jω}·s_{n−2})·e^{−jω(n−1)}.
	sin, cos := math.Sincos(omega)
	em := complex(cos, -sin)
	sinN, cosN := math.Sincos(omega * float64(n-1))
	return (s1 - em*s2) * complex(cosN, -sinN)
}
