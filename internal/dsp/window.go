package dsp

import "math"

// BesselI0 computes the zeroth-order modified Bessel function of the first
// kind via its power series. It is used to evaluate Kaiser windows.
func BesselI0(x float64) float64 {
	sum := 1.0
	term := 1.0
	half := x / 2
	for k := 1; k < 64; k++ {
		term *= (half / float64(k)) * (half / float64(k))
		sum += term
		if term < sum*1e-16 {
			break
		}
	}
	return sum
}

// KaiserWindow returns an n-point Kaiser window with shape parameter beta.
// Larger beta trades main-lobe width for side-lobe suppression.
func KaiserWindow(n int, beta float64) []float64 {
	if n <= 0 {
		return nil
	}
	if n == 1 {
		return []float64{1}
	}
	w := make([]float64, n)
	denom := BesselI0(beta)
	m := float64(n - 1)
	for i := 0; i < n; i++ {
		r := 2*float64(i)/m - 1
		w[i] = BesselI0(beta*math.Sqrt(1-r*r)) / denom
	}
	return w
}

// HannWindow returns an n-point Hann window.
func HannWindow(n int) []float64 {
	if n <= 0 {
		return nil
	}
	if n == 1 {
		return []float64{1}
	}
	w := make([]float64, n)
	for i := 0; i < n; i++ {
		w[i] = 0.5 * (1 - math.Cos(2*math.Pi*float64(i)/float64(n-1)))
	}
	return w
}

// RectangularWindow returns an n-point all-ones window.
func RectangularWindow(n int) []float64 {
	if n <= 0 {
		return nil
	}
	w := make([]float64, n)
	for i := range w {
		w[i] = 1
	}
	return w
}
