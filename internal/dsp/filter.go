package dsp

import "math"

// FIRFilter is a finite-impulse-response filter described by its tap
// coefficients.
//
// Long convolutions (Apply/ApplyInto on traces much longer than the tap
// count) run as FFT overlap-save through lazily built scratch state, so a
// filter instance is not safe for concurrent use once applied; build one
// filter per goroutine.
type FIRFilter struct {
	Taps []float64

	// Overlap-save scratch, built on first long Apply and rebuilt whenever
	// Taps no longer match the cached copy.
	fftN       int          // block FFT size
	tapsCached []float64    // taps the scratch was built for
	tapsFFT    []complex128 // FFT of zero-padded taps
	blockBuf   []complex128 // per-block work buffer
	plan       *Plan

	// Reversed-tap copy for the direct real evaluators (kernel laid out in
	// input order so the inner product runs forward over both slices).
	revTaps []float64
	// revTaps32 is the single-precision mirror of revTaps for the float32
	// decision lanes (AIC prefilter); rebuilt alongside revTaps.
	revTaps32 []float32
}

// reversed returns the taps in input order, rebuilt when Taps changed.
func (f *FIRFilter) reversed() []float64 {
	m := len(f.Taps)
	stale := len(f.revTaps) != m
	if !stale {
		for i, t := range f.Taps {
			if f.revTaps[m-1-i] != t {
				stale = true
				break
			}
		}
	}
	if stale {
		if cap(f.revTaps) < m {
			f.revTaps = make([]float64, m)
		}
		f.revTaps = f.revTaps[:m]
		for i, t := range f.Taps {
			f.revTaps[m-1-i] = t
		}
	}
	return f.revTaps
}

// scratchStale reports whether the overlap-save scratch no longer matches
// the (exported, mutable) Taps.
func (f *FIRFilter) scratchStale() bool {
	if f.tapsFFT == nil || len(f.tapsCached) != len(f.Taps) {
		return true
	}
	for i, t := range f.Taps {
		if f.tapsCached[i] != t {
			return true
		}
	}
	return false
}

// LowPassFIR designs a linear-phase low-pass FIR filter with the windowed-
// sinc method. cutoff is the -6 dB edge in Hz, sampleRate the sampling rate
// in Hz, and taps the (odd, >= 3) filter length; even values are rounded up.
func LowPassFIR(cutoff, sampleRate float64, taps int) *FIRFilter {
	if taps < 3 {
		taps = 3
	}
	if taps%2 == 0 {
		taps++
	}
	fc := cutoff / sampleRate // normalized cutoff (cycles/sample)
	mid := taps / 2
	h := make([]float64, taps)
	w := HannWindow(taps)
	var sum float64
	for i := 0; i < taps; i++ {
		k := float64(i - mid)
		var v float64
		if k == 0 {
			v = 2 * fc
		} else {
			v = math.Sin(2*math.Pi*fc*k) / (math.Pi * k)
		}
		h[i] = v * w[i]
		sum += h[i]
	}
	// Normalize for unity DC gain.
	if sum != 0 {
		for i := range h {
			h[i] /= sum
		}
	}
	return &FIRFilter{Taps: h}
}

// Apply convolves the filter with a complex trace and returns a trace of the
// same length. Group delay (len(Taps)/2 samples) is compensated so features
// stay time-aligned with the input.
func (f *FIRFilter) Apply(x []complex128) []complex128 {
	return f.ApplyInto(nil, x)
}

// ApplyInto is Apply writing into dst (grown as needed; pass nil to
// allocate), so steady-state filtering reuses one output buffer. dst must
// not alias x.
//
// Traces much longer than the filter are convolved by FFT overlap-save
// (O(n log n) instead of O(n·m)); short traces use the direct form.
func (f *FIRFilter) ApplyInto(dst []complex128, x []complex128) []complex128 {
	n := len(x)
	m := len(f.Taps)
	if n == 0 || m == 0 {
		return nil
	}
	if cap(dst) < n {
		dst = make([]complex128, n)
	}
	out := dst[:n]
	if m >= 16 && n >= 8*m {
		f.applyOverlapSave(out, x)
		return out
	}
	delay := m / 2
	for i := 0; i < n; i++ {
		var acc complex128
		// out[i] corresponds to input centered at i (delay-compensated).
		for j := 0; j < m; j++ {
			k := i + delay - j
			if k < 0 || k >= n {
				continue
			}
			acc += x[k] * complex(f.Taps[j], 0)
		}
		out[i] = acc
	}
	return out
}

// applyOverlapSave computes the same delay-compensated convolution as the
// direct form via FFT overlap-save blocks: each block transforms N input
// samples, multiplies by the cached tap spectrum and keeps the N-m+1 valid
// outputs. Scratch (tap FFT, block buffer) is built once per filter.
func (f *FIRFilter) applyOverlapSave(out, x []complex128) {
	n := len(x)
	m := len(f.Taps)
	delay := m / 2
	if f.scratchStale() {
		// Block size: a few thousand points amortizes the per-block FFTs
		// without oversizing the tap spectrum.
		N := NextPow2(8 * m)
		if N < 1024 {
			N = 1024
		}
		f.fftN = N
		f.plan = PlanFor(N)
		f.tapsCached = append(f.tapsCached[:0], f.Taps...)
		f.tapsFFT = make([]complex128, N)
		for i, t := range f.Taps {
			f.tapsFFT[i] = complex(t, 0)
		}
		f.plan.TransformInPlace(f.tapsFFT)
		f.blockBuf = make([]complex128, N)
	}
	N := f.fftN
	L := N - m + 1 // valid linear-convolution outputs per block
	buf := f.blockBuf
	// Full linear convolution index t runs 0..n+m-2; out[i] = y[i+delay].
	// Each block produces y[s .. s+L-1] from inputs x[s-m+1 .. s+L-1].
	for s := 0; s < n+m-1; s += L {
		for k := 0; k < N; k++ {
			idx := s - m + 1 + k
			if idx >= 0 && idx < n {
				buf[k] = x[idx]
			} else {
				buf[k] = 0
			}
		}
		f.plan.TransformInPlace(buf)
		for k := range buf {
			buf[k] *= f.tapsFFT[k]
		}
		f.plan.InverseInPlace(buf)
		for k := 0; k < L; k++ {
			t := s + k
			i := t - delay
			if i < 0 || i >= n {
				continue
			}
			out[i] = buf[m-1+k]
		}
	}
}

// ApplyReal convolves the filter with a real trace, delay-compensated.
func (f *FIRFilter) ApplyReal(x []float64) []float64 {
	n := len(x)
	m := len(f.Taps)
	if n == 0 || m == 0 {
		return nil
	}
	delay := m / 2
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		var acc float64
		for j := 0; j < m; j++ {
			k := i + delay - j
			if k < 0 || k >= n {
				continue
			}
			acc += x[k] * f.Taps[j]
		}
		out[i] = acc
	}
	return out
}

// reversed32 returns the float32 mirror of reversed(), rebuilt when Taps
// changed. Callers hold the result only within one apply call.
func (f *FIRFilter) reversed32() []float32 {
	rev := f.reversed()
	m := len(rev)
	stale := len(f.revTaps32) != m
	if !stale {
		for i, t := range rev {
			if f.revTaps32[i] != float32(t) {
				stale = true
				break
			}
		}
	}
	if stale {
		if cap(f.revTaps32) < m {
			f.revTaps32 = make([]float32, m)
		}
		f.revTaps32 = f.revTaps32[:m]
		for i, t := range rev {
			f.revTaps32[i] = float32(t)
		}
	}
	return f.revTaps32
}

// convRealAt evaluates the delay-compensated real convolution at output
// index i, zero-padding outside x. rev is reversed(); interior indices take
// the branch-free inner-product path, unrolled into four accumulators so the
// serial FP-add dependency chain stops bounding throughput (~30% faster on
// the 129-tap AIC prefilter than the single-accumulator form). The unroll
// reassociates the sum, so results differ from the naive loop in the last
// ulp — the accuracy suites gate that.
func (f *FIRFilter) convRealAt(x, rev []float64, i int) float64 {
	m := len(rev)
	delay := m / 2
	base := i + delay - (m - 1)
	if base >= 0 && base+m <= len(x) {
		w := x[base : base+m]
		rev = rev[:len(w)]
		var a0, a1, a2, a3 float64
		j := 0
		for ; j+4 <= len(w); j += 4 {
			w4 := w[j : j+4 : j+4]
			r4 := rev[j : j+4 : j+4]
			a0 += w4[0] * r4[0]
			a1 += w4[1] * r4[1]
			a2 += w4[2] * r4[2]
			a3 += w4[3] * r4[3]
		}
		for ; j < len(w); j++ {
			a0 += w[j] * rev[j]
		}
		return (a0 + a1) + (a2 + a3)
	}
	var acc float64
	for j, t := range rev {
		if k := base + j; k >= 0 && k < len(x) {
			acc += x[k] * t
		}
	}
	return acc
}

// convRealAt32 is convRealAt on the float32 lane. 24-bit mantissas are ample
// here: the lane feeds changepoint decisions on 8-bit-quantized envelopes
// whose own noise floor sits ~40 dB above float32 rounding error (see the
// parity tests' error budget).
func (f *FIRFilter) convRealAt32(x, rev []float32, i int) float32 {
	m := len(rev)
	delay := m / 2
	base := i + delay - (m - 1)
	if base >= 0 && base+m <= len(x) {
		w := x[base : base+m]
		rev = rev[:len(w)]
		var a0, a1, a2, a3 float32
		j := 0
		for ; j+4 <= len(w); j += 4 {
			w4 := w[j : j+4 : j+4]
			r4 := rev[j : j+4 : j+4]
			a0 += w4[0] * r4[0]
			a1 += w4[1] * r4[1]
			a2 += w4[2] * r4[2]
			a3 += w4[3] * r4[3]
		}
		for ; j < len(w); j++ {
			a0 += w[j] * rev[j]
		}
		return (a0 + a1) + (a2 + a3)
	}
	var acc float32
	for j, t := range rev {
		if k := base + j; k >= 0 && k < len(x) {
			acc += x[k] * t
		}
	}
	return acc
}

// ApplyRealDecimatedInto evaluates the delay-compensated real convolution
// only at output indices 0, dec, 2·dec, … — the polyphase shortcut when the
// consumer decimates the filtered trace anyway: cost O(n·m/dec) instead of
// filtering at full rate and discarding dec−1 of every dec outputs.
// dst[j] equals ApplyReal(x)[j·dec]; it is grown as needed (pass nil to
// allocate).
func (f *FIRFilter) ApplyRealDecimatedInto(dst, x []float64, dec int) []float64 {
	if dec < 1 {
		dec = 1
	}
	n := (len(x) + dec - 1) / dec
	if cap(dst) < n {
		dst = make([]float64, n)
	}
	dst = dst[:n]
	rev := f.reversed()
	for j := range dst {
		dst[j] = f.convRealAt(x, rev, j*dec)
	}
	return dst
}

// ApplyRealRangeInto evaluates the delay-compensated real convolution at
// output indices [lo, hi) only, writing the hi−lo results into dst (grown
// as needed). dst[j] equals ApplyReal(x)[lo+j].
func (f *FIRFilter) ApplyRealRangeInto(dst, x []float64, lo, hi int) []float64 {
	n := hi - lo
	if n < 0 {
		n = 0
	}
	if cap(dst) < n {
		dst = make([]float64, n)
	}
	dst = dst[:n]
	rev := f.reversed()
	for j := range dst {
		dst[j] = f.convRealAt(x, rev, lo+j)
	}
	return dst
}

// ApplyRealDecimatedInto32 is ApplyRealDecimatedInto on the float32 lane:
// dst[j] equals the single-precision evaluation of the same delay-
// compensated convolution at index j·dec.
func (f *FIRFilter) ApplyRealDecimatedInto32(dst, x []float32, dec int) []float32 {
	if dec < 1 {
		dec = 1
	}
	n := (len(x) + dec - 1) / dec
	if cap(dst) < n {
		dst = make([]float32, n)
	}
	dst = dst[:n]
	rev := f.reversed32()
	for j := range dst {
		dst[j] = f.convRealAt32(x, rev, j*dec)
	}
	return dst
}

// ApplyRealRangeInto32 is ApplyRealRangeInto on the float32 lane: dst[j]
// equals the single-precision evaluation at output index lo+j.
func (f *FIRFilter) ApplyRealRangeInto32(dst, x []float32, lo, hi int) []float32 {
	n := hi - lo
	if n < 0 {
		n = 0
	}
	if cap(dst) < n {
		dst = make([]float32, n)
	}
	dst = dst[:n]
	rev := f.reversed32()
	for j := range dst {
		dst[j] = f.convRealAt32(x, rev, lo+j)
	}
	return dst
}

// Decimate keeps every factor-th sample of x, starting at sample 0. The
// caller is responsible for prior anti-alias filtering (see LowPassFIR).
func Decimate(x []complex128, factor int) []complex128 {
	if factor <= 1 {
		out := make([]complex128, len(x))
		copy(out, x)
		return out
	}
	out := make([]complex128, 0, len(x)/factor+1)
	for i := 0; i < len(x); i += factor {
		out = append(out, x[i])
	}
	return out
}

// BoxcarDroopSq returns the squared magnitude response of a d-sample boxcar
// accumulator (the decimating summer behind DechirpScratch.DechirpDecimated)
// at the normalized full-rate frequency f in cycles per input sample,
// f ∈ [−0.5, 0.5): |sin(πfd) / (d·sin(πf))|², normalized to 1 at DC.
// Dividing a decimated power spectrum by this response flattens the
// boxcar's sinc droop so in-band bin powers match the undecimated
// transform's.
func BoxcarDroopSq(d int, f float64) float64 {
	if d <= 1 {
		return 1
	}
	den := math.Sin(math.Pi * f)
	if math.Abs(den) < 1e-12 {
		return 1
	}
	g := math.Sin(math.Pi*f*float64(d)) / (float64(d) * den)
	return g * g
}

// DecimateFiltered low-pass filters x to the new Nyquist frequency and then
// decimates by factor. sampleRate is the input rate in Hz.
func DecimateFiltered(x []complex128, sampleRate float64, factor int) []complex128 {
	if factor <= 1 {
		out := make([]complex128, len(x))
		copy(out, x)
		return out
	}
	newNyquist := sampleRate / float64(factor) / 2
	f := LowPassFIR(newNyquist*0.9, sampleRate, 4*factor+1)
	return Decimate(f.Apply(x), factor)
}
