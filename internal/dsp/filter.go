package dsp

import "math"

// FIRFilter is a finite-impulse-response filter described by its tap
// coefficients.
type FIRFilter struct {
	Taps []float64
}

// LowPassFIR designs a linear-phase low-pass FIR filter with the windowed-
// sinc method. cutoff is the -6 dB edge in Hz, sampleRate the sampling rate
// in Hz, and taps the (odd, >= 3) filter length; even values are rounded up.
func LowPassFIR(cutoff, sampleRate float64, taps int) *FIRFilter {
	if taps < 3 {
		taps = 3
	}
	if taps%2 == 0 {
		taps++
	}
	fc := cutoff / sampleRate // normalized cutoff (cycles/sample)
	mid := taps / 2
	h := make([]float64, taps)
	w := HannWindow(taps)
	var sum float64
	for i := 0; i < taps; i++ {
		k := float64(i - mid)
		var v float64
		if k == 0 {
			v = 2 * fc
		} else {
			v = math.Sin(2*math.Pi*fc*k) / (math.Pi * k)
		}
		h[i] = v * w[i]
		sum += h[i]
	}
	// Normalize for unity DC gain.
	if sum != 0 {
		for i := range h {
			h[i] /= sum
		}
	}
	return &FIRFilter{Taps: h}
}

// Apply convolves the filter with a complex trace and returns a trace of the
// same length. Group delay (len(Taps)/2 samples) is compensated so features
// stay time-aligned with the input.
func (f *FIRFilter) Apply(x []complex128) []complex128 {
	n := len(x)
	m := len(f.Taps)
	if n == 0 || m == 0 {
		return nil
	}
	delay := m / 2
	out := make([]complex128, n)
	for i := 0; i < n; i++ {
		var acc complex128
		// out[i] corresponds to input centered at i (delay-compensated).
		for j := 0; j < m; j++ {
			k := i + delay - j
			if k < 0 || k >= n {
				continue
			}
			acc += x[k] * complex(f.Taps[j], 0)
		}
		out[i] = acc
	}
	return out
}

// ApplyReal convolves the filter with a real trace, delay-compensated.
func (f *FIRFilter) ApplyReal(x []float64) []float64 {
	n := len(x)
	m := len(f.Taps)
	if n == 0 || m == 0 {
		return nil
	}
	delay := m / 2
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		var acc float64
		for j := 0; j < m; j++ {
			k := i + delay - j
			if k < 0 || k >= n {
				continue
			}
			acc += x[k] * f.Taps[j]
		}
		out[i] = acc
	}
	return out
}

// Decimate keeps every factor-th sample of x, starting at sample 0. The
// caller is responsible for prior anti-alias filtering (see LowPassFIR).
func Decimate(x []complex128, factor int) []complex128 {
	if factor <= 1 {
		out := make([]complex128, len(x))
		copy(out, x)
		return out
	}
	out := make([]complex128, 0, len(x)/factor+1)
	for i := 0; i < len(x); i += factor {
		out = append(out, x[i])
	}
	return out
}

// DecimateFiltered low-pass filters x to the new Nyquist frequency and then
// decimates by factor. sampleRate is the input rate in Hz.
func DecimateFiltered(x []complex128, sampleRate float64, factor int) []complex128 {
	if factor <= 1 {
		out := make([]complex128, len(x))
		copy(out, x)
		return out
	}
	newNyquist := sampleRate / float64(factor) / 2
	f := LowPassFIR(newNyquist*0.9, sampleRate, 4*factor+1)
	return Decimate(f.Apply(x), factor)
}
