package dsp

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
)

// directGridDFT is the brute-force reference: X_k = Σ x[i]·e^{−j(ω0+k·dω)i}.
func directGridDFT(x []complex128, omega0, domega float64, points int) []complex128 {
	out := make([]complex128, points)
	for k := 0; k < points; k++ {
		w := omega0 + float64(k)*domega
		var sum complex128
		for i, v := range x {
			s, c := math.Sincos(-w * float64(i))
			sum += v * complex(c, s)
		}
		out[k] = sum
	}
	return out
}

func TestZoomDFTMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(301))
	for _, tc := range []struct {
		m, points int
		omega0    float64
		domega    float64
	}{
		{307, 65, 0.83, 7.7e-4},
		{307, 65, -2.9, 7.7e-4}, // negative band start
		{128, 33, 3.1407, 1e-3}, // band straddling the Nyquist fold
		{64, 9, 0, 2e-2},
		{1000, 129, 1.5, 1e-4},
	} {
		x := make([]complex128, tc.m)
		for i := range x {
			x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		var z ZoomDFT
		z.Init(tc.m, tc.points, tc.domega)
		got := make([]complex128, tc.points)
		z.Transform(got, x, tc.omega0)
		want := directGridDFT(x, tc.omega0, tc.domega, tc.points)
		scale := 0.0
		for _, v := range want {
			if a := cmplx.Abs(v); a > scale {
				scale = a
			}
		}
		for k := range got {
			if e := cmplx.Abs(got[k] - want[k]); e > 1e-8*scale {
				t.Fatalf("m=%d points=%d: bin %d differs by %g (scale %g)",
					tc.m, tc.points, k, e, scale)
			}
		}
	}
}

func TestGoertzelGridMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(302))
	const m, points = 200, 17
	x := make([]complex128, m)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	const omega0, domega = 0.4, 3e-3
	got := make([]complex128, points)
	GoertzelGrid(got, x, omega0, domega)
	want := directGridDFT(x, omega0, domega, points)
	for k := range got {
		if e := cmplx.Abs(got[k] - want[k]); e > 1e-8*float64(m) {
			t.Fatalf("bin %d differs by %g", k, e)
		}
	}
}

// TestZoomDFTResolvesCloseTone pins the zoom property the FB estimator
// relies on: a tone off the coarse FFT grid is located on the fine grid to
// within one grid step.
func TestZoomDFTResolvesCloseTone(t *testing.T) {
	const m = 307
	const trueOmega = 0.7123456
	x := make([]complex128, m)
	for i := range x {
		s, c := math.Sincos(trueOmega * float64(i))
		x[i] = complex(c, s)
	}
	const points = 65
	const domega = 1e-4
	omega0 := trueOmega - float64(points/2)*domega - 3.3e-5 // off-center start
	var z ZoomDFT
	z.Init(m, points, domega)
	out := make([]complex128, points)
	z.Transform(out, x, omega0)
	bin, _ := PeakBinSq(out)
	got := omega0 + float64(bin)*domega
	if math.Abs(got-trueOmega) > domega {
		t.Errorf("zoom peak at ω=%g, want %g ± %g", got, trueOmega, domega)
	}
}

func TestZoomDFTZeroAllocSteadyState(t *testing.T) {
	rng := rand.New(rand.NewSource(303))
	const m, points = 307, 65
	x := make([]complex128, m)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	var z ZoomDFT
	z.Init(m, points, 7.7e-4)
	dst := make([]complex128, points)
	z.Transform(dst, x, 0.9) // warm-up (plan cache)
	allocs := testing.AllocsPerRun(20, func() {
		z.Transform(dst, x, 1.1)
	})
	if allocs != 0 {
		t.Errorf("ZoomDFT.Transform allocated %v times per run in steady state", allocs)
	}
	// Re-Init at the same geometry must not allocate either (scratch reuse).
	allocs = testing.AllocsPerRun(5, func() {
		z.Init(m, points, 7.7e-4)
	})
	if allocs != 0 {
		t.Errorf("ZoomDFT.Init allocated %v times per run at a warm geometry", allocs)
	}
}

func TestFoldFrequency(t *testing.T) {
	const rate = 125e3
	for _, tc := range []struct{ in, want float64 }{
		{0, 0},
		{62.5e3, 62.5e3},   // +Nyquist is the closed end of the band
		{-62.5e3, 62.5e3},  // −Nyquist folds to the closed end
		{62.6e3, -62.4e3},  // past +Nyquist wraps negative
		{-62.6e3, 62.4e3},  // past −Nyquist wraps positive
		{125e3 + 10, 10},   // full-rate alias
		{-125e3 - 10, -10}, // negative full-rate alias
		{3 * 125e3, 0},     // multiple wraps
		{2*125e3 + 100, 100},
	} {
		if got := FoldFrequency(tc.in, rate); math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("FoldFrequency(%g) = %g, want %g", tc.in, got, tc.want)
		}
	}
}

// BenchmarkZoomGrid compares the planned chirp-Z zoom against the dense
// Goertzel grid at the FB estimator's geometry (m=307 decimated samples,
// 65 grid points) — the builder's-choice measurement behind using the CZT
// in core.DechirpFFTEstimator.
func BenchmarkZoomGrid(b *testing.B) {
	rng := rand.New(rand.NewSource(304))
	const m, points = 307, 65
	const omega0, domega = 0.83, 7.7e-4
	x := make([]complex128, m)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	dst := make([]complex128, points)
	b.Run("czt", func(b *testing.B) {
		var z ZoomDFT
		z.Init(m, points, domega)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			z.Transform(dst, x, omega0)
		}
	})
	b.Run("goertzel-grid", func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			GoertzelGrid(dst, x, omega0, domega)
		}
	})
}
