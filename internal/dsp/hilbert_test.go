package dsp

import (
	"math"
	"testing"
)

func TestEnvelopeOfTone(t *testing.T) {
	// Envelope of A*cos(wt) should be ~A away from the edges.
	const n = 1024
	const amp = 2.5
	x := make([]float64, n)
	for i := range x {
		x[i] = amp * math.Cos(2*math.Pi*50*float64(i)/n)
	}
	env := Envelope(x)
	for i := n / 8; i < 7*n/8; i++ {
		if math.Abs(env[i]-amp) > 0.05*amp {
			t.Fatalf("envelope[%d] = %f, want ~%f", i, env[i], amp)
		}
	}
}

func TestEnvelopeOfBurstDetectsStep(t *testing.T) {
	// Tone starts halfway: envelope should be ~0 before and ~1 after.
	const n = 2048
	x := make([]float64, n)
	for i := n / 2; i < n; i++ {
		x[i] = math.Sin(2 * math.Pi * 100 * float64(i) / n)
	}
	env := Envelope(x)
	before := Mean(env[n/8 : 3*n/8])
	after := Mean(env[5*n/8 : 7*n/8])
	if before > 0.1 {
		t.Errorf("pre-onset envelope mean = %f, want ~0", before)
	}
	if math.Abs(after-1) > 0.1 {
		t.Errorf("post-onset envelope mean = %f, want ~1", after)
	}
}

func TestAnalyticSignalRealPartMatchesInput(t *testing.T) {
	const n = 512
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Sin(2*math.Pi*20*float64(i)/n) + 0.5*math.Cos(2*math.Pi*45*float64(i)/n)
	}
	a := AnalyticSignal(x)
	if len(a) != n {
		t.Fatalf("length = %d, want %d", len(a), n)
	}
	for i := range x {
		if math.Abs(real(a[i])-x[i]) > 1e-9 {
			t.Fatalf("real part mismatch at %d: %f vs %f", i, real(a[i]), x[i])
		}
	}
}

func TestAnalyticSignalQuadratureShift(t *testing.T) {
	// Hilbert transform of cos is sin: imag part should be the 90°-shifted
	// tone (away from edges).
	const n = 1024
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Cos(2 * math.Pi * 64 * float64(i) / n)
	}
	a := AnalyticSignal(x)
	for i := n / 8; i < 7*n/8; i++ {
		want := math.Sin(2 * math.Pi * 64 * float64(i) / n)
		if math.Abs(imag(a[i])-want) > 0.02 {
			t.Fatalf("imag[%d] = %f, want %f", i, imag(a[i]), want)
		}
	}
}

func TestAnalyticSignalEmpty(t *testing.T) {
	if got := AnalyticSignal(nil); got != nil {
		t.Error("expected nil for empty input")
	}
}
