package dsp

import "math"

// ZoomDFT evaluates the DFT of an m-sample sequence on a dense uniform
// frequency grid — the "zoom" stage of a coarse-to-fine spectral estimate,
// where a small FFT has already localized a tone and the grid refines it far
// below the FFT's bin spacing:
//
//	X_k = Σ_{i<m} x[i]·e^{−j(ω0 + k·dω)·i}     k = 0..points−1
//
// It is a chirp-Z transform: with ik = (i² + k² − (k−i)²)/2 the grid
// evaluation factors into a premultiply by the fixed chirp e^{−j·dω·i²/2},
// a linear convolution against the fixed kernel e^{+j·dω·t²/2}, and a
// postmultiply by e^{−j·dω·k²/2}. The convolution runs through one cached
// FFT plan of length NextPow2(m+points−1), so a transform costs two
// planned transforms of that size — O((m+points)·log(m+points)) — against
// O(points·m) for a Goertzel evaluation per grid point (GoertzelGrid, the
// reference implementation the CZT is tested and benchmarked against).
//
// The grid start ω0 is a per-call argument (only the spacing dω is baked
// into the kernel), applied as a first-order phasor recurrence over the
// input, so one initialized ZoomDFT serves any band of a given width.
// After Init, Transform allocates nothing. Not safe for concurrent use:
// one instance per goroutine.
type ZoomDFT struct {
	m      int
	points int
	domega float64

	plan   *Plan
	pre    []complex128 // e^{−j·dω·i²/2}, i < m
	post   []complex128 // e^{−j·dω·k²/2}, k < points
	kernel []complex128 // FFT of e^{+j·dω·t²/2} laid out circularly over L
	work   []complex128 // L-point convolution buffer
}

// Stale reports whether the kernel must be rebuilt for this geometry.
func (z *ZoomDFT) Stale(m, points int, domega float64) bool {
	return z.m != m || z.points != points || z.domega != domega
}

// Init precomputes the chirp tables and the convolution kernel's transform
// for m-sample inputs, the given grid size, and grid spacing domega
// (radians per sample). m and points must be positive.
func (z *ZoomDFT) Init(m, points int, domega float64) {
	z.m, z.points, z.domega = m, points, domega
	l := NextPow2(m + points - 1)
	z.plan = PlanFor(l)
	if cap(z.pre) < m {
		z.pre = make([]complex128, m)
	}
	z.pre = z.pre[:m]
	for i := range z.pre {
		s, c := math.Sincos(-domega * float64(i) * float64(i) / 2)
		z.pre[i] = complex(c, s)
	}
	if cap(z.post) < points {
		z.post = make([]complex128, points)
	}
	z.post = z.post[:points]
	for k := range z.post {
		s, c := math.Sincos(-domega * float64(k) * float64(k) / 2)
		z.post[k] = complex(c, s)
	}
	if cap(z.kernel) < l {
		z.kernel = make([]complex128, l)
		z.work = make([]complex128, l)
	}
	z.kernel = z.kernel[:l]
	z.work = z.work[:l]
	// The linear convolution index k−i spans −(m−1)..points−1; lay the
	// kernel out circularly so the length-l circular convolution matches
	// the linear one on the first `points` outputs.
	for i := range z.kernel {
		z.kernel[i] = 0
	}
	for t := -(m - 1); t < points; t++ {
		s, c := math.Sincos(domega * float64(t) * float64(t) / 2)
		z.kernel[((t%l)+l)%l] = complex(c, s)
	}
	z.plan.TransformInPlace(z.kernel)
}

// Points returns the grid size the kernel was built for (0 before Init).
func (z *ZoomDFT) Points() int { return z.points }

// Transform evaluates the grid X_k = Σ x[i]·e^{−j(omega0+k·dω)i} into
// dst[:points]. len(x) must equal the Init m; len(dst) must be at least
// points. It allocates nothing.
//
//softlora:allocfree
func (z *ZoomDFT) Transform(dst, x []complex128, omega0 float64) {
	m := z.m
	if len(x) != m {
		panic("dsp: ZoomDFT input length does not match Init")
	}
	work := z.work
	// a[i] = x[i]·e^{−j·ω0·i}·pre[i]; the ω0 ramp runs on a first-order
	// phasor recurrence (re-seeded internally by the Rotator) so the
	// per-call band placement costs one complex multiply per sample.
	rot := NewRotator(1, 0, -omega0/(2*math.Pi), 1)
	rot.MulInto(work[:m], x)
	for i := 0; i < m; i++ {
		work[i] *= z.pre[i]
	}
	for i := m; i < len(work); i++ {
		work[i] = 0
	}
	z.plan.TransformInPlace(work)
	for i := range work {
		work[i] *= z.kernel[i]
	}
	z.plan.InverseInPlace(work)
	for k := 0; k < z.points; k++ {
		dst[k] = work[k] * z.post[k]
	}
}

// GoertzelGrid evaluates the same uniform frequency grid as ZoomDFT by
// running one Goertzel recurrence per grid point — O(points·len(x)), no
// setup and no state. It is the reference for the CZT's parity tests and
// the break-even comparison in the zoom benchmarks; prefer ZoomDFT when the
// same (m, points, dω) geometry repeats.
func GoertzelGrid(dst, x []complex128, omega0, domega float64) {
	for k := range dst {
		dst[k] = GoertzelDFT(x, omega0+float64(k)*domega)
	}
}
