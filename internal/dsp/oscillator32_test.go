package dsp

import (
	"math"
	"math/cmplx"
	"testing"
)

// The complex64 lane's error budget is set by the 8-bit ADC front end,
// which quantizes to steps of ~4e-3 of full scale: a mixer or template
// whose phase/magnitude error stays well under that step is invisible
// downstream. The rotator's random-walk drift is pinned at 2e-6 (1/2000 of
// a step); the chirp oscillator compounds r-drift quadratically between
// re-seeds, so it gets 1e-4 (1/40 of a step).
const (
	rot32Tol = 2e-6
	osc32Tol = 1e-4
)

func TestOscillator32DriftAgainstSincos(t *testing.T) {
	const rate = 2.4e6
	const w = 125e3
	for sf := 7; sf <= 12; sf++ {
		n := float64(int(1) << sf)
		k := w * w / n
		total := int(n / w * rate)
		for _, delta := range []float64{-36e3, 0, 17.3e3} {
			f0 := -w/2 + delta
			osc := NewOscillator32(1, 0.8, f0, k, 1/rate)
			var maxPhase, maxMag float64
			for i := 0; i < total; i++ {
				got := complex128(osc.Next())
				want := exactSample(1, 0.8, f0, k, 1/rate, i)
				if pe := phaseErr(got, want); pe > maxPhase {
					maxPhase = pe
				}
				if me := math.Abs(cmplx.Abs(got) - 1); me > maxMag {
					maxMag = me
				}
			}
			if maxPhase > osc32Tol {
				t.Errorf("SF%d δ=%g: max phase error %.3g rad, want < %g", sf, delta, maxPhase, osc32Tol)
			}
			if maxMag > osc32Tol {
				t.Errorf("SF%d δ=%g: max magnitude drift %.3g, want < %g", sf, delta, maxMag, osc32Tol)
			}
		}
	}
}

func TestRotator32DriftAgainstSincos(t *testing.T) {
	const dt = 1 / 2.4e6
	for _, f := range []float64{-743, 0, 22.8e3, 1.1e6} {
		rot := NewRotator32(1, 1.3, f, dt)
		var maxPhase float64
		for i := 0; i < 100_000; i++ {
			got := complex128(rot.Next())
			want := exactSample(1, 1.3, f, 0, dt, i)
			if pe := phaseErr(got, want); pe > maxPhase {
				maxPhase = pe
			}
		}
		if maxPhase > rot32Tol {
			t.Errorf("f=%g: max phase error %.3g rad, want < %g", f, maxPhase, rot32Tol)
		}
	}
}

func TestOscillator32BatchMethodsMatchNext(t *testing.T) {
	const n = 3 * OscChirpRenormInterval32 / 2 // crosses one re-seed boundary
	mk := func() Oscillator32 { return NewOscillator32(0.7, 0.2, -30e3, 1.19e8, 1/2.4e6) }

	ref := mk()
	want := make([]complex64, n)
	for i := range want {
		want[i] = ref.Next()
	}

	fill := make([]complex64, n)
	o := mk()
	o.Fill(fill[:40])
	o.Fill(fill[40:]) // split fills must continue seamlessly
	for i := range fill {
		if fill[i] != want[i] {
			t.Fatalf("Fill[%d] = %v, want %v", i, fill[i], want[i])
		}
	}

	src := make([]complex64, n)
	for i := range src {
		src[i] = complex(float32(i%5)-2, 1)
	}
	mul := make([]complex64, n)
	o = mk()
	o.MulInto(mul, src)
	for i := range mul {
		if mul[i] != src[i]*want[i] {
			t.Fatalf("MulInto[%d] = %v, want %v", i, mul[i], src[i]*want[i])
		}
	}
}

func TestRotator32BatchMethodsMatchNext(t *testing.T) {
	const n = 2*OscRenormInterval32 + 37
	mk := func() Rotator32 { return NewRotator32(1.5, -0.4, 9.7e3, 1/2.4e6) }

	ref := mk()
	want := make([]complex64, n)
	for i := range want {
		want[i] = ref.Next()
	}

	fill := make([]complex64, n)
	o := mk()
	o.Fill(fill)
	for i := range fill {
		if fill[i] != want[i] {
			t.Fatalf("Fill[%d] = %v, want %v", i, fill[i], want[i])
		}
	}

	src := make([]complex64, n)
	for i := range src {
		src[i] = complex(1, float32(i%3))
	}
	inplace := make([]complex64, n)
	copy(inplace, src)
	o = mk()
	o.MulInto(inplace, inplace) // in-place rotation is allowed
	for i := range inplace {
		// The two-lane unroll rounds differently from the scalar recurrence
		// by a few float32 ulp; the re-seed bounds both identically.
		got := complex128(inplace[i])
		exp := complex128(src[i] * want[i])
		if d := cmplx.Abs(got - exp); d > 1e-5 {
			t.Fatalf("in-place MulInto[%d] = %v, want %v (Δ %g)", i, inplace[i], src[i]*want[i], d)
		}
	}
}

func TestOscillator32ZeroAlloc(t *testing.T) {
	dst := make([]complex64, 4096)
	src := make([]complex64, 4096)
	osc := NewOscillator32(1, 0, -20e3, 1.19e8, 1/2.4e6)
	rot := NewRotator32(1, 0, -20e3, 1/2.4e6)
	if allocs := testing.AllocsPerRun(10, func() {
		osc.Fill(dst)
		osc.MulInto(dst, src)
		rot.Fill(dst)
		rot.MulInto(dst, src)
	}); allocs != 0 {
		t.Errorf("complex64 oscillator batch methods allocated %v times per run", allocs)
	}
}

func BenchmarkOscillatorFill(b *testing.B) {
	const n = 4096
	b.Run("complex128", func(b *testing.B) {
		dst := make([]complex128, n)
		osc := NewOscillator(1, 0, -30e3, 1.19e8, 1/2.4e6)
		b.SetBytes(n * 16)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			osc.Fill(dst)
		}
	})
	b.Run("complex64", func(b *testing.B) {
		dst := make([]complex64, n)
		osc := NewOscillator32(1, 0, -30e3, 1.19e8, 1/2.4e6)
		b.SetBytes(n * 8)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			osc.Fill(dst)
		}
	})
}

func BenchmarkRotatorMulInto(b *testing.B) {
	const n = 4096
	b.Run("complex128", func(b *testing.B) {
		dst := make([]complex128, n)
		src := make([]complex128, n)
		for i := range src {
			src[i] = complex(1, 1)
		}
		rot := NewRotator(1, 0, -20e3, 1/2.4e6)
		b.SetBytes(n * 16)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			rot.MulInto(dst, src)
		}
	})
	b.Run("complex64", func(b *testing.B) {
		dst := make([]complex64, n)
		src := make([]complex64, n)
		for i := range src {
			src[i] = complex(1, 1)
		}
		rot := NewRotator32(1, 0, -20e3, 1/2.4e6)
		b.SetBytes(n * 8)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			rot.MulInto(dst, src)
		}
	})
}
