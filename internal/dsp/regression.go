package dsp

// LinearFit holds the result of an ordinary least-squares straight-line fit
// y = Slope*x + Intercept.
type LinearFit struct {
	Slope     float64
	Intercept float64
	// R2 is the coefficient of determination in [0, 1]; 1 means a perfect
	// fit. It is 0 when y has no variance.
	R2 float64
}

// LinearRegression fits a straight line to the points (x[i], y[i]) by
// ordinary least squares. Inputs must have equal, non-zero length; otherwise
// a zero-valued fit is returned.
func LinearRegression(x, y []float64) LinearFit {
	n := len(x)
	if n == 0 || len(y) != n {
		return LinearFit{}
	}
	var sx, sy float64
	for i := 0; i < n; i++ {
		sx += x[i]
		sy += y[i]
	}
	mx, my := sx/float64(n), sy/float64(n)
	var sxx, sxy, syy float64
	for i := 0; i < n; i++ {
		dx, dy := x[i]-mx, y[i]-my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		return LinearFit{Intercept: my}
	}
	slope := sxy / sxx
	fit := LinearFit{Slope: slope, Intercept: my - slope*mx}
	if syy > 0 {
		ssRes := syy - slope*sxy
		fit.R2 = 1 - ssRes/syy
		if fit.R2 < 0 {
			fit.R2 = 0
		}
	}
	return fit
}

// LinearRegressionUniform fits y against uniformly spaced x values
// x[i] = x0 + i*dx, avoiding the allocation of an explicit abscissa slice.
func LinearRegressionUniform(y []float64, x0, dx float64) LinearFit {
	n := len(y)
	if n == 0 || dx == 0 {
		return LinearFit{}
	}
	// Closed form using sums over i.
	fn := float64(n)
	mi := (fn - 1) / 2 // mean of i
	var sy, siy float64
	for i, v := range y {
		sy += v
		siy += float64(i) * v
	}
	my := sy / fn
	// sum((i-mi)^2) = n(n^2-1)/12
	sii := fn * (fn*fn - 1) / 12
	if sii == 0 {
		return LinearFit{Intercept: my}
	}
	siyC := siy - mi*sy
	slopeI := siyC / sii // slope per index step
	slope := slopeI / dx
	intercept := my - slopeI*mi - slope*x0
	var syy, ssRes float64
	for i, v := range y {
		dy := v - my
		syy += dy * dy
		r := v - (slope*(x0+float64(i)*dx) + intercept)
		ssRes += r * r
	}
	fit := LinearFit{Slope: slope, Intercept: intercept}
	if syy > 0 {
		fit.R2 = 1 - ssRes/syy
		if fit.R2 < 0 {
			fit.R2 = 0
		}
	}
	return fit
}
