package dsp

import "math"

// GaussianSource is a fast, seedable standard-normal generator built on a
// 128-layer ziggurat over a splitmix64 counter stream. It exists because the
// SDR front end burns two Gaussian draws per complex sample (ADC dither,
// noise-figure injection) and math/rand's NormFloat64 costs ~10x a ziggurat
// draw; at 15k-sample captures that difference is ~100 us per uplink.
//
// Draws refill an internal block buffer so the steady-state Norm call is a
// bounds check and a buffer read — zero allocations after construction.
// Seeding is O(1) (splitmix64 state assignment), unlike rand.Rand.Seed which
// walks the whole lagged-Fibonacci state; pipelines reseeding per uplink get
// that for free.
//
// The zero value is a valid source seeded with 0. GaussianSource is not safe
// for concurrent use; give each worker its own (it is 2 KiB, embeddable by
// value).
type GaussianSource struct {
	state uint64
	pos   int
	buf   [gaussBlock]float64
}

const gaussBlock = 256

// 128-layer ziggurat constants for the standard normal (Marsaglia & Tsang):
// zigR is the base-layer edge, zigV the common layer area.
const (
	zigR = 3.442619855899
	zigV = 9.91256303526217e-3
)

// zigX[i] is the width of layer i (zigX[0] is the pseudo-width of the
// base/tail layer, zigX[128] = 0 at the cap); zigF[i] = exp(-zigX[i]^2/2).
// zigW/zigK fold the common-case accept test into one integer compare and
// one multiply on a signed 31-bit lattice: x = j*zigW[i] for j in
// [-2^31, 2^31), accepted outright when |j| < zigK[i].
var (
	zigX [129]float64
	zigF [129]float64
	zigW [128]float64
	zigK [128]int64
)

func init() {
	f := math.Exp(-0.5 * zigR * zigR)
	zigX[0] = zigV / f // pseudo-width so the base layer has area zigV
	zigX[1] = zigR
	for i := 2; i < 128; i++ {
		prev := zigX[i-1]
		zigX[i] = math.Sqrt(-2 * math.Log(zigV/prev+math.Exp(-0.5*prev*prev)))
	}
	zigX[128] = 0 // cap layer: every draw takes the density test
	for i := range zigF {
		zigF[i] = math.Exp(-0.5 * zigX[i] * zigX[i])
	}
	for i := range zigW {
		zigW[i] = zigX[i] * 0x1p-31
		zigK[i] = int64(math.Floor(0x1p31 * zigX[i+1] / zigX[i]))
	}
}

// Seed resets the source to a deterministic stream derived from seed and
// discards any buffered draws, so Seed(s) followed by N calls to Norm always
// yields the same N values regardless of prior use.
func (g *GaussianSource) Seed(seed int64) {
	g.state = uint64(seed)
	g.pos = 0
}

// next is a splitmix64 step: a counter plus a finalizer mix. Statistical
// quality is ample for noise synthesis and seeding cost is a single store.
func (g *GaussianSource) next() uint64 {
	g.state += 0x9e3779b97f4a7c15
	z := g.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Norm returns the next standard-normal draw. Steady state is a buffered
// read; every gaussBlock draws the buffer refills in one tight block. pos
// counts remaining buffered values, so the zero value (pos == 0) refills on
// first use instead of leaking an all-zeros buffer.
//
//softlora:allocfree
func (g *GaussianSource) Norm() float64 {
	if g.pos == 0 {
		return g.normRefill()
	}
	g.pos--
	return g.buf[g.pos]
}

// normRefill keeps the refill off Norm's fast path so Norm stays inlinable
// at call sites (the per-sample loops in sdr depend on that). The noinline
// pin is what makes that work: without it the compiler inlines this wrapper
// back into Norm, and Norm itself blows the inlining budget.
//
//go:noinline
func (g *GaussianSource) normRefill() float64 {
	g.refill()
	g.pos--
	return g.buf[g.pos]
}

// NormPair returns two independent standard-normal draws, in stream order —
// the natural shape for complex noise (re, im).
func (g *GaussianSource) NormPair() (float64, float64) {
	return g.Norm(), g.Norm()
}

// refill fills back-to-front so consumption order (buf[pos-1] downward)
// matches draw order. The ~97% rectangle-accept path is flattened into the
// loop and unrolled two draws wide — the splitmix finalizer chains of a
// pair interleave instead of serializing, which the single-draw loop was
// latency-bound on. One next() value feeds both the layer index (low bits)
// and the signed 31-bit lattice coordinate (high bits). A pair with any
// rejection replays serially from the pre-pair state (g.state only syncs
// with the local counter around that fallback), so the emitted stream is
// bit-identical to the rolled loop's.
func (g *GaussianSource) refill() {
	s := g.state
	for i := gaussBlock - 1; i >= 1; i -= 2 {
		z0 := s + 0x9e3779b97f4a7c15
		z1 := s + 0x3c6ef372fe94f82a
		z0 = (z0 ^ (z0 >> 30)) * 0xbf58476d1ce4e5b9
		z1 = (z1 ^ (z1 >> 30)) * 0xbf58476d1ce4e5b9
		z0 = (z0 ^ (z0 >> 27)) * 0x94d049bb133111eb
		z1 = (z1 ^ (z1 >> 27)) * 0x94d049bb133111eb
		z0 ^= z0 >> 31
		z1 ^= z1 >> 31
		j0 := int64(int32(z0 >> 32))
		j1 := int64(int32(z1 >> 32))
		a0, a1 := j0, j1
		if a0 < 0 {
			a0 = -a0
		}
		if a1 < 0 {
			a1 = -a1
		}
		if a0 < zigK[z0&127] && a1 < zigK[z1&127] {
			g.buf[i] = float64(j0) * zigW[z0&127]
			g.buf[i-1] = float64(j1) * zigW[z1&127]
			s += 0x3c6ef372fe94f82a
			continue
		}
		g.state = s
		g.buf[i] = g.drawOne()
		g.buf[i-1] = g.drawOne()
		s = g.state
	}
	g.state = s
	g.pos = gaussBlock
}

// drawOne is one serial ziggurat draw — the replay path for refill pairs
// that hit a rejection.
func (g *GaussianSource) drawOne() float64 {
	z := g.next()
	idx := z & 127
	j := int64(int32(z >> 32))
	a := j
	if a < 0 {
		a = -a
	}
	if a < zigK[idx] {
		return float64(j) * zigW[idx]
	}
	return g.drawSlow(j, idx)
}

// drawSlow resolves a draw that missed the rectangle test: a wedge density
// test for interior layers, the exact exponential tail sampler (Marsaglia's
// method) from the base layer, redrawing on rejection.
func (g *GaussianSource) drawSlow(j int64, i uint64) float64 {
	for {
		x := float64(j) * zigW[i]
		if i == 0 {
			// Base layer beyond zigR: sample the exact Gaussian tail.
			for {
				u1 := (float64(g.next()>>11) + 0.5) * 0x1p-53
				u2 := (float64(g.next()>>11) + 0.5) * 0x1p-53
				ex := -math.Log(u1) / zigR
				ey := -math.Log(u2)
				if ey+ey > ex*ex {
					return math.Copysign(zigR+ex, float64(j))
				}
			}
		}
		// Wedge between layer i's rectangle and the curve (for i == 127 this
		// is the cap region under the peak, where zigF[128] = 1).
		y := zigF[i] + float64(g.next()>>11)*0x1p-53*(zigF[i+1]-zigF[i])
		if y < math.Exp(-0.5*x*x) {
			return x
		}
		u := g.next()
		i = u & 127
		j = int64(int32(u >> 32))
		a := j
		if a < 0 {
			a = -a
		}
		if a < zigK[i] {
			return float64(j) * zigW[i]
		}
	}
}
