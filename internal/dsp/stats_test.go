package dsp

import (
	"math"
	"testing"
)

func TestMeanStd(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	if got := Mean(x); math.Abs(got-2.5) > 1e-12 {
		t.Errorf("Mean = %f", got)
	}
	if got := StdDev(x); math.Abs(got-math.Sqrt(1.25)) > 1e-12 {
		t.Errorf("StdDev = %f", got)
	}
	if Mean(nil) != 0 || StdDev(nil) != 0 || StdDev([]float64{5}) != 0 {
		t.Error("degenerate stats should be 0")
	}
}

func TestMinMax(t *testing.T) {
	lo, hi := MinMax([]float64{3, -1, 4, 1, 5})
	if lo != -1 || hi != 5 {
		t.Errorf("MinMax = (%f, %f)", lo, hi)
	}
	lo, hi = MinMax(nil)
	if lo != 0 || hi != 0 {
		t.Error("empty MinMax should be (0, 0)")
	}
}

func TestPercentile(t *testing.T) {
	x := []float64{10, 20, 30, 40, 50}
	tests := []struct {
		p, want float64
	}{
		{0, 10}, {50, 30}, {100, 50}, {25, 20}, {75, 40}, {10, 14},
	}
	for _, tt := range tests {
		if got := Percentile(x, tt.p); math.Abs(got-tt.want) > 1e-9 {
			t.Errorf("Percentile(%f) = %f, want %f", tt.p, got, tt.want)
		}
	}
	if Percentile(nil, 50) != 0 {
		t.Error("empty percentile should be 0")
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	x := []float64{3, 1, 2}
	Percentile(x, 50)
	if x[0] != 3 || x[1] != 1 || x[2] != 2 {
		t.Error("Percentile must not sort in place")
	}
}

func TestSummarize(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	s := Summarize(x)
	if s.Min != 1 || s.Max != 5 || s.Median != 3 || s.Mean != 3 {
		t.Errorf("Summarize = %+v", s)
	}
	if s.P25 != 2 || s.P75 != 4 {
		t.Errorf("quartiles = %f, %f", s.P25, s.P75)
	}
}

func TestMeanMaxAbs(t *testing.T) {
	x := []float64{-3, 1, -2}
	if got := MeanAbs(x); math.Abs(got-2) > 1e-12 {
		t.Errorf("MeanAbs = %f", got)
	}
	if got := MaxAbs(x); got != 3 {
		t.Errorf("MaxAbs = %f", got)
	}
	if MeanAbs(nil) != 0 || MaxAbs(nil) != 0 {
		t.Error("empty abs stats should be 0")
	}
}

func TestKaiserWindowProperties(t *testing.T) {
	w := KaiserWindow(128, 8)
	if len(w) != 128 {
		t.Fatalf("len = %d", len(w))
	}
	// Symmetric, peak in the middle, edges small.
	for i := 0; i < 64; i++ {
		if math.Abs(w[i]-w[127-i]) > 1e-12 {
			t.Fatalf("asymmetric at %d", i)
		}
	}
	if w[64] < 0.99 {
		t.Errorf("center = %f, want ~1", w[64])
	}
	if w[0] > 0.01 {
		t.Errorf("edge = %f, want ~0 for beta=8", w[0])
	}
	if got := KaiserWindow(1, 8); len(got) != 1 || got[0] != 1 {
		t.Error("single-point window should be [1]")
	}
	if KaiserWindow(0, 8) != nil {
		t.Error("zero-length window should be nil")
	}
}

func TestBesselI0(t *testing.T) {
	// Reference values: I0(0)=1, I0(1)≈1.26607, I0(5)≈27.2399.
	tests := []struct {
		x, want float64
	}{
		{0, 1}, {1, 1.2660658777520084}, {5, 27.239871823604442},
	}
	for _, tt := range tests {
		if got := BesselI0(tt.x); math.Abs(got-tt.want) > 1e-9*tt.want {
			t.Errorf("BesselI0(%f) = %f, want %f", tt.x, got, tt.want)
		}
	}
}

func TestHannWindow(t *testing.T) {
	w := HannWindow(5)
	want := []float64{0, 0.5, 1, 0.5, 0}
	for i := range want {
		if math.Abs(w[i]-want[i]) > 1e-12 {
			t.Fatalf("Hann = %v, want %v", w, want)
		}
	}
	if HannWindow(0) != nil {
		t.Error("zero-length should be nil")
	}
}

func TestRectangularWindow(t *testing.T) {
	w := RectangularWindow(3)
	for _, v := range w {
		if v != 1 {
			t.Fatal("rectangular window must be all ones")
		}
	}
}
