package dsp

import "math"

// AICOnset picks the onset sample of a transient in a real-valued trace
// using the Akaike Information Criterion picker of Maeda (the on-line
// variant of the AR-AIC picker of Sleeman & van Eck used by the paper,
// §6.1.2). For every candidate split point k the trace is modelled as two
// stationary segments; the k minimizing
//
//	AIC(k) = k*ln(var(x[0:k])) + (n-k-1)*ln(var(x[k:n]))
//
// is returned. The detector is threshold-free. It returns -1 for traces
// shorter than 2*margin+2 samples.
//
// margin excludes the first and last margin samples from the candidate set,
// where one of the two segment variances would be estimated from too few
// samples to be meaningful.
func AICOnset(x []float64, margin int) int {
	var s AICScratch
	return s.Onset(x, margin)
}

// AICScratch holds the prefix-sum buffers of the AIC picker so repeated
// picks (per-uplink onset detection) run without allocating. Not safe for
// concurrent use — one scratch per goroutine.
type AICScratch struct {
	sum, sumSq []float64
}

// Onset is AICOnset running on the scratch's reusable buffers.
func (sc *AICScratch) Onset(x []float64, margin int) int {
	n := len(x)
	if margin < 1 {
		margin = 1
	}
	if n < 2*margin+2 {
		return -1
	}
	// Prefix sums for O(1) segment variance.
	if cap(sc.sum) < n+1 {
		sc.sum = make([]float64, n+1)
		sc.sumSq = make([]float64, n+1)
	}
	sum := sc.sum[:n+1]
	sumSq := sc.sumSq[:n+1]
	sum[0], sumSq[0] = 0, 0
	for i, v := range x {
		sum[i+1] = sum[i] + v
		sumSq[i+1] = sumSq[i] + v*v
	}
	varSeg := func(a, b int) float64 { // variance of x[a:b]
		m := float64(b - a)
		if m <= 0 {
			return 0
		}
		mean := (sum[b] - sum[a]) / m
		v := (sumSq[b]-sumSq[a])/m - mean*mean
		if v < 1e-300 {
			v = 1e-300
		}
		return v
	}
	best := math.Inf(1)
	bestK := -1
	for k := margin; k < n-margin; k++ {
		aic := float64(k)*math.Log(varSeg(0, k)) +
			float64(n-k-1)*math.Log(varSeg(k, n))
		if aic < best {
			best = aic
			bestK = k
		}
	}
	return bestK
}

// AICCurve returns the AIC value at every candidate split point (NaN inside
// the margins), for plotting Fig. 9(b)-style diagnostics.
func AICCurve(x []float64, margin int) []float64 {
	n := len(x)
	out := make([]float64, n)
	for i := range out {
		out[i] = math.NaN()
	}
	if margin < 1 {
		margin = 1
	}
	if n < 2*margin+2 {
		return out
	}
	sum := make([]float64, n+1)
	sumSq := make([]float64, n+1)
	for i, v := range x {
		sum[i+1] = sum[i] + v
		sumSq[i+1] = sumSq[i] + v*v
	}
	varSeg := func(a, b int) float64 {
		m := float64(b - a)
		if m <= 0 {
			return 0
		}
		mean := (sum[b] - sum[a]) / m
		v := (sumSq[b]-sumSq[a])/m - mean*mean
		if v < 1e-300 {
			v = 1e-300
		}
		return v
	}
	for k := margin; k < n-margin; k++ {
		out[k] = float64(k)*math.Log(varSeg(0, k)) +
			float64(n-k-1)*math.Log(varSeg(k, n))
	}
	return out
}

// BurgAR fits an autoregressive model of the given order to a real trace
// with Burg's method and returns the AR coefficients a[1..order] (in a slice
// of length order) and the final prediction-error power.
func BurgAR(x []float64, order int) (coeffs []float64, noiseVar float64) {
	n := len(x)
	if n <= order || order < 1 {
		return nil, PowerReal(x)
	}
	f := make([]float64, n)
	b := make([]float64, n)
	copy(f, x)
	copy(b, x)
	a := make([]float64, order)
	e := PowerReal(x) * float64(n)
	prev := make([]float64, order)
	for m := 0; m < order; m++ {
		var num, den float64
		for i := m + 1; i < n; i++ {
			num += f[i] * b[i-1]
			den += f[i]*f[i] + b[i-1]*b[i-1]
		}
		var k float64
		if den != 0 {
			k = -2 * num / den
		}
		copy(prev, a[:m])
		a[m] = k
		for i := 0; i < m; i++ {
			a[i] = prev[i] + k*prev[m-1-i]
		}
		for i := n - 1; i > m; i-- {
			fi := f[i]
			f[i] = fi + k*b[i-1]
			b[i] = b[i-1] + k*fi
		}
		e *= 1 - k*k
	}
	nv := e / float64(n)
	if nv < 0 {
		nv = 0
	}
	return a, nv
}

// ARAICOnset picks a transient onset using the full autoregressive AIC
// formulation (Sleeman & van Eck 1999): for each candidate split point, AR
// models of the given order are fitted to the segments before and after the
// candidate and the AIC is computed from the two prediction-error variances.
// To keep the cost manageable the candidate grid is evaluated every step
// samples and the best cell is refined with the variance-based AICOnset.
// It returns -1 when the trace is too short.
func ARAICOnset(x []float64, order, step int) int {
	n := len(x)
	if step < 1 {
		step = 1
	}
	minSeg := 4 * (order + 1)
	if n < 2*minSeg+step {
		return AICOnset(x, order+1)
	}
	best := math.Inf(1)
	bestK := -1
	for k := minSeg; k < n-minSeg; k += step {
		_, v1 := BurgAR(x[:k], order)
		_, v2 := BurgAR(x[k:], order)
		if v1 < 1e-300 {
			v1 = 1e-300
		}
		if v2 < 1e-300 {
			v2 = 1e-300
		}
		aic := float64(k)*math.Log(v1) + float64(n-k)*math.Log(v2)
		if aic < best {
			best = aic
			bestK = k
		}
	}
	if bestK < 0 {
		return -1
	}
	// Refine within the winning cell using the cheap variance picker.
	lo := bestK - step
	if lo < 0 {
		lo = 0
	}
	hi := bestK + step
	if hi > n {
		hi = n
	}
	fine := AICOnset(x[lo:hi], 2)
	if fine < 0 {
		return bestK
	}
	return lo + fine
}
