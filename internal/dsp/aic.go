package dsp

import "math"

// AICOnset picks the onset sample of a transient in a real-valued trace
// using the Akaike Information Criterion picker of Maeda (the on-line
// variant of the AR-AIC picker of Sleeman & van Eck used by the paper,
// §6.1.2). For every candidate split point k the trace is modelled as two
// stationary segments; the k minimizing
//
//	AIC(k) = k*ln(var(x[0:k])) + (n-k-1)*ln(var(x[k:n]))
//
// is returned. The detector is threshold-free. It returns -1 for traces
// shorter than 2*margin+2 samples.
//
// margin excludes the first and last margin samples from the candidate set,
// where one of the two segment variances would be estimated from too few
// samples to be meaningful.
func AICOnset(x []float64, margin int) int {
	var s AICScratch
	return s.Onset(x, margin)
}

// AICScratch holds the prefix-sum buffers of the AIC picker so repeated
// picks (per-uplink onset detection) run without allocating. Not safe for
// concurrent use — one scratch per goroutine.
type AICScratch struct {
	sum, sumSq []float64
	// Length tables for the float32 lane: lnLen[m] = ln(m) and
	// invLen[m] = 1/m, so the per-candidate work is two fast logs and no
	// divisions (ln(S/m) = ln(S) − lnLen[m], S/m via invLen).
	lnLen  []float32
	invLen []float64
}

// Onset is AICOnset running on the scratch's reusable buffers.
func (sc *AICScratch) Onset(x []float64, margin int) int {
	n := len(x)
	if margin < 1 {
		margin = 1
	}
	if n < 2*margin+2 {
		return -1
	}
	// Prefix sums for O(1) segment variance.
	if cap(sc.sum) < n+1 {
		sc.sum = make([]float64, n+1)
		sc.sumSq = make([]float64, n+1)
	}
	sum := sc.sum[:n+1]
	sumSq := sc.sumSq[:n+1]
	sum[0], sumSq[0] = 0, 0
	for i, v := range x {
		sum[i+1] = sum[i] + v
		sumSq[i+1] = sumSq[i] + v*v
	}
	varSeg := func(a, b int) float64 { // variance of x[a:b]
		m := float64(b - a)
		if m <= 0 {
			return 0
		}
		mean := (sum[b] - sum[a]) / m
		v := (sumSq[b]-sumSq[a])/m - mean*mean
		if v < 1e-300 {
			v = 1e-300
		}
		return v
	}
	best := math.Inf(1)
	bestK := -1
	for k := margin; k < n-margin; k++ {
		aic := float64(k)*math.Log(varSeg(0, k)) +
			float64(n-k-1)*math.Log(varSeg(k, n))
		if aic < best {
			best = aic
			bestK = k
		}
	}
	return bestK
}

// OnsetStrided is Onset with a coarse-to-fine candidate search: a first
// pass evaluates every stride-th split point, a second dense pass refines
// within ±(stride−1) of the winner. For the smooth AIC valleys the
// hierarchical detector's coarse stages produce, the two-pass argmin lands
// on (or within a couple of samples of) the dense argmin at ~1/stride of
// the log evaluations; callers whose next stage re-searches a window around
// the pick absorb the residual. stride ≤ 1 is the dense search.
func (sc *AICScratch) OnsetStrided(x []float64, margin, stride int) int {
	n := len(x)
	if margin < 1 {
		margin = 1
	}
	if n < 2*margin+2 {
		return -1
	}
	if stride < 1 {
		stride = 1
	}
	if cap(sc.sum) < n+1 {
		sc.sum = make([]float64, n+1)
		sc.sumSq = make([]float64, n+1)
	}
	sum := sc.sum[:n+1]
	sumSq := sc.sumSq[:n+1]
	sum[0], sumSq[0] = 0, 0
	for i, v := range x {
		sum[i+1] = sum[i] + v
		sumSq[i+1] = sumSq[i] + v*v
	}
	aicAt := func(k int) float64 {
		m1 := float64(k)
		v1 := sumSq[k]/m1 - (sum[k]/m1)*(sum[k]/m1)
		if v1 < 1e-300 {
			v1 = 1e-300
		}
		m2 := float64(n - k)
		mean2 := (sum[n] - sum[k]) / m2
		v2 := (sumSq[n]-sumSq[k])/m2 - mean2*mean2
		if v2 < 1e-300 {
			v2 = 1e-300
		}
		return float64(k)*math.Log(v1) + float64(n-k-1)*math.Log(v2)
	}
	best := math.Inf(1)
	bestK := -1
	for k := margin; k < n-margin; k += stride {
		if aic := aicAt(k); aic < best {
			best = aic
			bestK = k
		}
	}
	if stride > 1 && bestK >= 0 {
		lo := bestK - stride + 1
		if lo < margin {
			lo = margin
		}
		hi := bestK + stride
		if hi > n-margin {
			hi = n - margin
		}
		for k := lo; k < hi; k++ {
			if k == bestK {
				continue
			}
			if aic := aicAt(k); aic < best {
				best = aic
				bestK = k
			}
		}
	}
	return bestK
}

// Onset32Strided is OnsetStrided on the float32 lane (see Onset32).
func (sc *AICScratch) Onset32Strided(x []float32, margin, stride int) int {
	n := len(x)
	if margin < 1 {
		margin = 1
	}
	if n < 2*margin+2 {
		return -1
	}
	if stride < 1 {
		stride = 1
	}
	if cap(sc.sum) < n+1 {
		sc.sum = make([]float64, n+1)
		sc.sumSq = make([]float64, n+1)
	}
	sum := sc.sum[:n+1]
	sumSq := sc.sumSq[:n+1]
	sum[0], sumSq[0] = 0, 0
	for i, v := range x {
		v64 := float64(v)
		sum[i+1] = sum[i] + v64
		sumSq[i+1] = sumSq[i] + v64*v64
	}
	sc.ensureLenTables(n)
	lnLen, invLen := sc.lnLen, sc.invLen
	totSum, totSq := sum[n], sumSq[n]
	aicAt := func(k int) float32 {
		m2 := n - k
		s1 := sumSq[k] - sum[k]*(sum[k]*invLen[k])
		d2 := totSum - sum[k]
		s2 := (totSq - sumSq[k]) - d2*(d2*invLen[m2])
		if s1 < 1e-30 {
			s1 = 1e-30
		}
		if s2 < 1e-30 {
			s2 = 1e-30
		}
		return float32(k)*(fastLn32(float32(s1))-lnLen[k]) +
			float32(n-k-1)*(fastLn32(float32(s2))-lnLen[m2])
	}
	best := float32(math.Inf(1))
	bestK := -1
	for k := margin; k < n-margin; k += stride {
		if aic := aicAt(k); aic < best {
			best = aic
			bestK = k
		}
	}
	if stride > 1 && bestK >= 0 {
		lo := bestK - stride + 1
		if lo < margin {
			lo = margin
		}
		hi := bestK + stride
		if hi > n-margin {
			hi = n - margin
		}
		for k := lo; k < hi; k++ {
			if k == bestK {
				continue
			}
			if aic := aicAt(k); aic < best {
				best = aic
				bestK = k
			}
		}
	}
	return bestK
}

// Onset32 is the float32 decision lane of Onset: same changepoint picker
// over a single-precision trace, with prefix sums accumulated in float64
// (cancellation protection) and ln(var) evaluated as ln(S) − ln(m) through
// fastLn32 plus precomputed length tables — no divisions or math.Log in the
// hot loop. It exists for the coarse/mid stages of the hierarchical AIC
// detector, where the pick only has to land inside the refinement window of
// the next stage; the final stage stays on the exact float64 Onset.
func (sc *AICScratch) Onset32(x []float32, margin int) int {
	n := len(x)
	if margin < 1 {
		margin = 1
	}
	if n < 2*margin+2 {
		return -1
	}
	if cap(sc.sum) < n+1 {
		sc.sum = make([]float64, n+1)
		sc.sumSq = make([]float64, n+1)
	}
	sum := sc.sum[:n+1]
	sumSq := sc.sumSq[:n+1]
	sum[0], sumSq[0] = 0, 0
	for i, v := range x {
		v64 := float64(v)
		sum[i+1] = sum[i] + v64
		sumSq[i+1] = sumSq[i] + v64*v64
	}
	sc.ensureLenTables(n)
	lnLen, invLen := sc.lnLen, sc.invLen
	totSum, totSq := sum[n], sumSq[n]
	best := float32(math.Inf(1))
	bestK := -1
	for k := margin; k < n-margin; k++ {
		// S1 = k·var(x[0:k]), S2 = (n−k)·var(x[k:n]), via prefix sums.
		m2 := n - k
		mean1 := sum[k] * invLen[k]
		s1 := sumSq[k] - sum[k]*mean1
		mean2 := (totSum - sum[k]) * invLen[m2]
		s2 := (totSq - sumSq[k]) - (totSum-sum[k])*mean2
		// Degenerate floor mirrors Onset's 1e-300 clamp at float32 scale.
		if s1 < 1e-30 {
			s1 = 1e-30
		}
		if s2 < 1e-30 {
			s2 = 1e-30
		}
		aic := float32(k)*(fastLn32(float32(s1))-lnLen[k]) +
			float32(n-k-1)*(fastLn32(float32(s2))-lnLen[m2])
		if aic < best {
			best = aic
			bestK = k
		}
	}
	return bestK
}

// ensureLenTables grows the ln(m)/1/m tables to cover segment lengths up to
// n inclusive.
func (sc *AICScratch) ensureLenTables(n int) {
	if len(sc.lnLen) > n {
		return
	}
	sc.lnLen = make([]float32, n+1)
	sc.invLen = make([]float64, n+1)
	sc.invLen[0] = 0 // length-0 segments never occur; keep a defined value
	for m := 1; m <= n; m++ {
		sc.lnLen[m] = float32(math.Log(float64(m)))
		sc.invLen[m] = 1 / float64(m)
	}
}

// fastLn32 is a single-precision natural log for strictly positive, finite,
// normal inputs (the AIC lane floors its arguments at 1e-30). Range
// reduction to [√2/2, √2) plus the Cephes logf polynomial, evaluated with
// Estrin's scheme so the dependency chain is ~4 multiply-adds deep instead
// of 9 — in the AIC loop, which issues two back-to-back logs per candidate,
// the Horner form was latency-bound and slower than math.Log.
func fastLn32(v float32) float32 {
	bits := math.Float32bits(v)
	e := int32(bits>>23) - 127
	m := math.Float32frombits(bits&0x7fffff | 0x3f800000) // mantissa in [1, 2)
	if m > 1.4142135 {
		m *= 0.5
		e++
	}
	z := m - 1
	zz := z * z
	z4 := zz * zz
	p01 := 3.3333331174e-1 + z*-2.4999993993e-1
	p23 := 2.0000714765e-1 + z*-1.6668057665e-1
	p45 := 1.4249322787e-1 + z*-1.2420140846e-1
	p67 := 1.1676998740e-1 + z*-1.1514610310e-1
	p := (p01 + zz*p23) + z4*((p45+zz*p67)+z4*7.0376836292e-2)
	r := z + zz*z*p - 0.5*zz
	return r + 0.69314718*float32(e)
}

// AICCurve returns the AIC value at every candidate split point (NaN inside
// the margins), for plotting Fig. 9(b)-style diagnostics.
func AICCurve(x []float64, margin int) []float64 {
	n := len(x)
	out := make([]float64, n)
	for i := range out {
		out[i] = math.NaN()
	}
	if margin < 1 {
		margin = 1
	}
	if n < 2*margin+2 {
		return out
	}
	sum := make([]float64, n+1)
	sumSq := make([]float64, n+1)
	for i, v := range x {
		sum[i+1] = sum[i] + v
		sumSq[i+1] = sumSq[i] + v*v
	}
	varSeg := func(a, b int) float64 {
		m := float64(b - a)
		if m <= 0 {
			return 0
		}
		mean := (sum[b] - sum[a]) / m
		v := (sumSq[b]-sumSq[a])/m - mean*mean
		if v < 1e-300 {
			v = 1e-300
		}
		return v
	}
	for k := margin; k < n-margin; k++ {
		out[k] = float64(k)*math.Log(varSeg(0, k)) +
			float64(n-k-1)*math.Log(varSeg(k, n))
	}
	return out
}

// BurgAR fits an autoregressive model of the given order to a real trace
// with Burg's method and returns the AR coefficients a[1..order] (in a slice
// of length order) and the final prediction-error power.
func BurgAR(x []float64, order int) (coeffs []float64, noiseVar float64) {
	n := len(x)
	if n <= order || order < 1 {
		return nil, PowerReal(x)
	}
	f := make([]float64, n)
	b := make([]float64, n)
	copy(f, x)
	copy(b, x)
	a := make([]float64, order)
	e := PowerReal(x) * float64(n)
	prev := make([]float64, order)
	for m := 0; m < order; m++ {
		var num, den float64
		for i := m + 1; i < n; i++ {
			num += f[i] * b[i-1]
			den += f[i]*f[i] + b[i-1]*b[i-1]
		}
		var k float64
		if den != 0 {
			k = -2 * num / den
		}
		copy(prev, a[:m])
		a[m] = k
		for i := 0; i < m; i++ {
			a[i] = prev[i] + k*prev[m-1-i]
		}
		for i := n - 1; i > m; i-- {
			fi := f[i]
			f[i] = fi + k*b[i-1]
			b[i] = b[i-1] + k*fi
		}
		e *= 1 - k*k
	}
	nv := e / float64(n)
	if nv < 0 {
		nv = 0
	}
	return a, nv
}

// ARAICOnset picks a transient onset using the full autoregressive AIC
// formulation (Sleeman & van Eck 1999): for each candidate split point, AR
// models of the given order are fitted to the segments before and after the
// candidate and the AIC is computed from the two prediction-error variances.
// To keep the cost manageable the candidate grid is evaluated every step
// samples and the best cell is refined with the variance-based AICOnset.
// It returns -1 when the trace is too short.
func ARAICOnset(x []float64, order, step int) int {
	n := len(x)
	if step < 1 {
		step = 1
	}
	minSeg := 4 * (order + 1)
	if n < 2*minSeg+step {
		return AICOnset(x, order+1)
	}
	best := math.Inf(1)
	bestK := -1
	for k := minSeg; k < n-minSeg; k += step {
		_, v1 := BurgAR(x[:k], order)
		_, v2 := BurgAR(x[k:], order)
		if v1 < 1e-300 {
			v1 = 1e-300
		}
		if v2 < 1e-300 {
			v2 = 1e-300
		}
		aic := float64(k)*math.Log(v1) + float64(n-k)*math.Log(v2)
		if aic < best {
			best = aic
			bestK = k
		}
	}
	if bestK < 0 {
		return -1
	}
	// Refine within the winning cell using the cheap variance picker.
	lo := bestK - step
	if lo < 0 {
		lo = 0
	}
	hi := bestK + step
	if hi > n {
		hi = n
	}
	fine := AICOnset(x[lo:hi], 2)
	if fine < 0 {
		return bestK
	}
	return lo + fine
}
