package dsp

import (
	"math"
	"math/rand"
)

// GaussianNoise returns n samples of circular complex white Gaussian noise
// with total (I+Q) average power power. The samples come from a fast
// ziggurat stream seeded off rng, not from rng.NormFloat64 — distributional
// statistics are identical (gated by the stattest bounds) but exact values
// differ from pre-GaussianSource releases.
func GaussianNoise(rng *rand.Rand, n int, power float64) []complex128 {
	out := make([]complex128, n)
	sigma := math.Sqrt(power / 2)
	var g GaussianSource
	g.Seed(rng.Int63())
	for i := range out {
		re, im := g.NormPair()
		out[i] = complex(re*sigma, im*sigma)
	}
	return out
}

// ColoredNoiseConfig parameterizes the synthetic "real building noise" model
// used for Fig. 14's second curve: low-pass-colored Gaussian background plus
// sparse impulsive interference bursts, the standard model for indoor
// ISM-band noise.
type ColoredNoiseConfig struct {
	// CutoffFraction is the low-pass cutoff as a fraction of Nyquist in
	// (0, 1]. Default 0.5.
	CutoffFraction float64
	// ImpulseRate is the expected number of impulsive bursts per 1000
	// samples. Zero selects the default of 0.5; a negative value disables
	// impulses entirely.
	ImpulseRate float64
	// ImpulsePowerRatio is the per-burst power relative to the background.
	// Default 30 (≈15 dB hotter).
	ImpulsePowerRatio float64
	// ImpulseLen is the burst length in samples. Default 24.
	ImpulseLen int
}

func (c ColoredNoiseConfig) withDefaults() ColoredNoiseConfig {
	if c.CutoffFraction <= 0 || c.CutoffFraction > 1 {
		c.CutoffFraction = 0.5
	}
	if c.ImpulseRate == 0 {
		c.ImpulseRate = 0.5
	}
	if c.ImpulseRate < 0 {
		c.ImpulseRate = 0
	}
	if c.ImpulsePowerRatio <= 0 {
		c.ImpulsePowerRatio = 30
	}
	if c.ImpulseLen <= 0 {
		c.ImpulseLen = 24
	}
	return c
}

// ColoredNoise returns n samples of colored, impulsive noise with total
// average power normalized to power.
func ColoredNoise(rng *rand.Rand, n int, power float64, cfg ColoredNoiseConfig) []complex128 {
	cfg = cfg.withDefaults()
	if n == 0 {
		return nil
	}
	white := GaussianNoise(rng, n, 1)
	// Color the spectrum with a windowed-sinc low pass at the configured
	// fraction of Nyquist (sample rate normalized to 1).
	f := LowPassFIR(cfg.CutoffFraction*0.5, 1, 101)
	colored := f.Apply(white)
	// Inject impulsive bursts.
	expected := cfg.ImpulseRate * float64(n) / 1000
	bursts := int(expected)
	if rng.Float64() < expected-float64(bursts) {
		bursts++
	}
	burstSigma := math.Sqrt(cfg.ImpulsePowerRatio / 2)
	var g GaussianSource
	g.Seed(rng.Int63())
	for b := 0; b < bursts; b++ {
		at := rng.Intn(n) // placement stays on rng; only Gaussian draws moved
		for i := 0; i < cfg.ImpulseLen && at+i < n; i++ {
			re, im := g.NormPair()
			colored[at+i] += complex(re*burstSigma, im*burstSigma)
		}
	}
	// Normalize to the requested power.
	p := Power(colored)
	if p > 0 {
		ScaleInPlace(colored, math.Sqrt(power/p))
	}
	return colored
}

// AddNoiseSNR adds noise to signal scaled so that the resulting trace has
// the requested SNR in dB, where SNR = signalPower/noisePower. The noise
// trace must be at least as long as the signal; extra noise samples are
// ignored. A fresh slice is returned.
func AddNoiseSNR(signal, noise []complex128, snrDB float64) []complex128 {
	sp := Power(signal)
	np := Power(noise[:min(len(noise), len(signal))])
	out := make([]complex128, len(signal))
	copy(out, signal)
	if sp == 0 || np == 0 {
		return out
	}
	targetNP := sp / FromdB(snrDB)
	g := complex(math.Sqrt(targetNP/np), 0)
	for i := range out {
		if i < len(noise) {
			out[i] += noise[i] * g
		}
	}
	return out
}

// NoiseForSNR returns the gain to apply to a noise trace of power np so a
// signal of power sp observes the requested SNR in dB.
func NoiseForSNR(sp, np, snrDB float64) float64 {
	if sp == 0 || np == 0 {
		return 0
	}
	return math.Sqrt(sp / FromdB(snrDB) / np)
}
