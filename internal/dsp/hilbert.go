package dsp

import "math/cmplx"

// AnalyticSignal computes the analytic signal of a real-valued trace via the
// FFT method: the negative-frequency half of the spectrum is zeroed and the
// positive half doubled. The returned trace has the same length as x.
func AnalyticSignal(x []float64) []complex128 {
	n := len(x)
	if n == 0 {
		return nil
	}
	m := NextPow2(n)
	buf := make([]complex128, m)
	for i, v := range x {
		buf[i] = complex(v, 0)
	}
	fftInPlace(buf, false)
	// h[k] multiplier: 1 for DC and Nyquist, 2 for positive freqs, 0 for
	// negative freqs.
	for k := 1; k < m/2; k++ {
		buf[k] *= 2
	}
	for k := m/2 + 1; k < m; k++ {
		buf[k] = 0
	}
	fftInPlace(buf, true)
	inv := complex(1/float64(m), 0)
	out := make([]complex128, n)
	for i := 0; i < n; i++ {
		out[i] = buf[i] * inv
	}
	return out
}

// Envelope returns the amplitude envelope |analytic(x)| of a real trace,
// as used by the paper's envelope-based preamble onset detector (§6.1.2).
func Envelope(x []float64) []float64 {
	a := AnalyticSignal(x)
	out := make([]float64, len(a))
	for i, v := range a {
		out[i] = cmplx.Abs(v)
	}
	return out
}
