package dsp

import "math"

// HilbertScratch holds the reusable FFT buffer for repeated analytic-signal
// and envelope extraction at (roughly) one trace length. Not safe for
// concurrent use — one scratch per goroutine.
type HilbertScratch struct {
	buf []complex128
}

// analytic computes the analytic signal of x into the scratch buffer via
// the FFT method — the negative-frequency half of the spectrum is zeroed
// and the positive half doubled — and returns the buffer (valid in its
// first len(x) samples).
func (h *HilbertScratch) analytic(x []float64) []complex128 {
	plan := PlanFor(len(x))
	if cap(h.buf) < plan.Size() {
		h.buf = make([]complex128, plan.Size())
	}
	h.buf = h.buf[:plan.Size()]
	buf := h.buf
	m := plan.Size()
	for i, v := range x {
		buf[i] = complex(v, 0)
	}
	for i := len(x); i < m; i++ {
		buf[i] = 0
	}
	plan.TransformInPlace(buf)
	// h[k] multiplier: 1 for DC and Nyquist, 2 for positive freqs, 0 for
	// negative freqs.
	for k := 1; k < m/2; k++ {
		buf[k] *= 2
	}
	for k := m/2 + 1; k < m; k++ {
		buf[k] = 0
	}
	plan.InverseInPlace(buf)
	return buf
}

// AnalyticSignal computes the analytic signal of a real-valued trace into
// dst (pass nil to allocate). The returned trace has the same length as x.
func (h *HilbertScratch) AnalyticSignal(dst []complex128, x []float64) []complex128 {
	n := len(x)
	if n == 0 {
		return dst[:0]
	}
	buf := h.analytic(x)
	if cap(dst) < n {
		dst = make([]complex128, n)
	}
	dst = dst[:n]
	copy(dst, buf[:n])
	return dst
}

// Envelope computes the amplitude envelope |analytic(x)| into dst (pass nil
// to allocate), as used by the paper's envelope-based preamble onset
// detector (§6.1.2).
func (h *HilbertScratch) Envelope(dst []float64, x []float64) []float64 {
	n := len(x)
	if n == 0 {
		return dst[:0]
	}
	buf := h.analytic(x)
	if cap(dst) < n {
		dst = make([]float64, n)
	}
	dst = dst[:n]
	for i := 0; i < n; i++ {
		re, im := real(buf[i]), imag(buf[i])
		dst[i] = math.Sqrt(re*re + im*im)
	}
	return dst
}

// AnalyticSignal computes the analytic signal of a real-valued trace via the
// FFT method: the negative-frequency half of the spectrum is zeroed and the
// positive half doubled. The returned trace has the same length as x.
func AnalyticSignal(x []float64) []complex128 {
	var h HilbertScratch
	return h.AnalyticSignal(nil, x)
}

// Envelope returns the amplitude envelope |analytic(x)| of a real trace,
// as used by the paper's envelope-based preamble onset detector (§6.1.2).
func Envelope(x []float64) []float64 {
	var h HilbertScratch
	return h.Envelope(nil, x)
}
