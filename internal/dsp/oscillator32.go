package dsp

import "math"

// OscRenormInterval32 is the re-seed interval of the complex64 rotator
// lane. float32 recurrence steps lose ~2⁻²⁴ per multiply; for a
// constant-frequency rotator the error is a random walk, so re-seeding
// every 128 steps keeps the phase error near ~1e-6 rad — three orders of
// magnitude under the 8-bit ADC quantization step (~4e-3 of full scale)
// the lane's consumers live against — at an amortized cost of one float64
// math.Sincos per 128 samples.
const OscRenormInterval32 = 128

// OscChirpRenormInterval32 is the tighter re-seed interval of the complex64
// chirp oscillator. The chirp recurrence advances r by q each step, so
// rounding error in r feeds s quadratically (~m²·2⁻²⁵ after m steps);
// 64 steps bounds the drift near ~1e-4 — still 1/40 of an ADC step — while
// keeping the three re-seed Sincos calls under 1 ns/sample amortized.
const OscChirpRenormInterval32 = 64

// The recurrences below spell out the complex multiplies on float32
// components instead of using complex64 arithmetic: gc lowers builtin
// complex64 multiplies through float64 with a CVTSS2SD/CVTSD2SS pair
// around every operand, which makes them slower than complex128. Explicit
// float32 component math stays in single precision end to end; the extra
// per-step rounding is what the tightened re-seed intervals absorb.

// Oscillator32 is the complex64 lane of Oscillator: the same second-order
// recurrence over single-precision phasors, with the exact re-seed always
// computed from the float64 phase polynomial (only the steady-state
// multiplies are single precision). Use it where the consumer tolerates
// ~1e-4 error — decision-stage mixing, template generation for float32
// analyses — not where results feed the bias database.
type Oscillator32 struct {
	sr, si  float32 // current sample s
	rr, ri  float32 // per-step rotation r
	qr, qi  float32 // per-step rotation increment q (chirp)
	i, left int
	amp     float64
	phase0  float64
	f, k    float64
	dt      float64
}

// NewOscillator32 seeds an oscillator producing amp·exp(j·(phase0 +
// 2π·(freqHz·t + sweepHzPerS·t²/2))) at t = i·dt for i = 0, 1, 2, …
func NewOscillator32(amp, phase0, freqHz, sweepHzPerS, dt float64) Oscillator32 {
	o := Oscillator32{amp: amp, phase0: phase0, f: freqHz, k: sweepHzPerS, dt: dt}
	sq, cq := math.Sincos(2 * math.Pi * sweepHzPerS * dt * dt)
	o.qr, o.qi = float32(cq), float32(sq)
	o.reseed(0)
	return o
}

// reseed recomputes s and r exactly from the float64 phase polynomial at
// step i, discarding the accumulated single-precision rounding walk.
func (o *Oscillator32) reseed(i int) {
	o.i = i
	o.left = OscChirpRenormInterval32
	t := float64(i) * o.dt
	sp, cp := math.Sincos(o.phase0 + 2*math.Pi*(o.f*t+0.5*o.k*t*t))
	o.sr, o.si = float32(o.amp*cp), float32(o.amp*sp)
	sr, cr := math.Sincos(2 * math.Pi * (o.f*o.dt + o.k*o.dt*o.dt*(float64(i)+0.5)))
	o.rr, o.ri = float32(cr), float32(sr)
}

func (o *Oscillator32) chunk(n int) int {
	if o.left == 0 {
		o.reseed(o.i)
	}
	if n > o.left {
		n = o.left
	}
	return n
}

// step advances s by r and r by q, all in float32.
func (o *Oscillator32) step() {
	nsr := o.sr*o.rr - o.si*o.ri
	nsi := o.sr*o.ri + o.si*o.rr
	nrr := o.rr*o.qr - o.ri*o.qi
	nri := o.rr*o.qi + o.ri*o.qr
	o.sr, o.si = nsr, nsi
	o.rr, o.ri = nrr, nri
}

// Next returns the current sample and advances one step.
func (o *Oscillator32) Next() complex64 {
	o.chunk(1)
	v := complex(o.sr, o.si)
	o.step()
	o.i++
	o.left--
	return v
}

// Fill writes the next len(dst) samples into dst.
//
//softlora:hotpath
//softlora:allocfree
func (o *Oscillator32) Fill(dst []complex64) {
	for len(dst) > 0 {
		n := o.chunk(len(dst))
		sr, si, rr, ri := o.sr, o.si, o.rr, o.ri
		qr, qi := o.qr, o.qi
		for j := 0; j < n; j++ {
			dst[j] = complex(sr, si)
			nsr := sr*rr - si*ri
			nsi := sr*ri + si*rr
			nrr := rr*qr - ri*qi
			nri := rr*qi + ri*qr
			sr, si, rr, ri = nsr, nsi, nrr, nri
		}
		o.sr, o.si, o.rr, o.ri = sr, si, rr, ri
		o.i += n
		o.left -= n
		dst = dst[n:]
	}
}

// MulInto writes dst[i] = src[i] · s[i] for the next len(src) samples.
// dst must be at least as long as src; dst and src may be the same slice
// (in-place rotation).
//
//softlora:hotpath
func (o *Oscillator32) MulInto(dst, src []complex64) {
	for len(src) > 0 {
		n := o.chunk(len(src))
		sr, si, rr, ri := o.sr, o.si, o.rr, o.ri
		qr, qi := o.qr, o.qi
		for j := 0; j < n; j++ {
			xr, xi := real(src[j]), imag(src[j])
			dst[j] = complex(xr*sr-xi*si, xr*si+xi*sr)
			nsr := sr*rr - si*ri
			nsi := sr*ri + si*rr
			nrr := rr*qr - ri*qi
			nri := rr*qi + ri*qr
			sr, si, rr, ri = nsr, nsi, nrr, nri
		}
		o.sr, o.si, o.rr, o.ri = sr, si, rr, ri
		o.i += n
		o.left -= n
		dst, src = dst[n:], src[n:]
	}
}

// Rotator32 is the complex64 lane of Rotator: constant-frequency rotation
// by four float32 multiplies per sample, re-seeded from the float64 phase
// every OscRenormInterval32 samples.
type Rotator32 struct {
	sr, si  float32
	rr, ri  float32
	i, left int
	amp     float64
	phase0  float64
	f, dt   float64
}

// NewRotator32 seeds a rotator producing amp·exp(j·(phase0 + 2π·freqHz·dt·i)).
func NewRotator32(amp, phase0, freqHz, dt float64) Rotator32 {
	o := Rotator32{amp: amp, phase0: phase0, f: freqHz, dt: dt}
	sr, cr := math.Sincos(2 * math.Pi * freqHz * dt)
	o.rr, o.ri = float32(cr), float32(sr)
	o.reseed(0)
	return o
}

func (o *Rotator32) reseed(i int) {
	o.i = i
	o.left = OscRenormInterval32
	sp, cp := math.Sincos(o.phase0 + 2*math.Pi*o.f*o.dt*float64(i))
	o.sr, o.si = float32(o.amp*cp), float32(o.amp*sp)
}

func (o *Rotator32) chunk(n int) int {
	if o.left == 0 {
		o.reseed(o.i)
	}
	if n > o.left {
		n = o.left
	}
	return n
}

// Next returns the current sample and advances one step.
func (o *Rotator32) Next() complex64 {
	o.chunk(1)
	v := complex(o.sr, o.si)
	nsr := o.sr*o.rr - o.si*o.ri
	nsi := o.sr*o.ri + o.si*o.rr
	o.sr, o.si = nsr, nsi
	o.i++
	o.left--
	return v
}

// Fill writes the next len(dst) samples into dst.
func (o *Rotator32) Fill(dst []complex64) {
	for len(dst) > 0 {
		n := o.chunk(len(dst))
		sr, si, rr, ri := o.sr, o.si, o.rr, o.ri
		for j := 0; j < n; j++ {
			dst[j] = complex(sr, si)
			nsr := sr*rr - si*ri
			nsi := sr*ri + si*rr
			sr, si = nsr, nsi
		}
		o.sr, o.si = sr, si
		o.i += n
		o.left -= n
		dst = dst[n:]
	}
}

// MulInto writes dst[i] = src[i] · s[i] for the next len(src) samples.
// dst must be at least as long as src; dst and src may be the same slice
// (in-place rotation). Two interleaved phasor lanes advanced by r² overlap
// the recurrence's multiply latency, as in Rotator.MulInto.
func (o *Rotator32) MulInto(dst, src []complex64) {
	for len(src) > 0 {
		n := o.chunk(len(src))
		sr, si, rr, ri := o.sr, o.si, o.rr, o.ri
		// Lane 1 starts one step ahead; both lanes advance by r².
		s1r := sr*rr - si*ri
		s1i := sr*ri + si*rr
		r2r := rr*rr - ri*ri
		r2i := 2 * rr * ri
		j := 0
		for ; j+2 <= n; j += 2 {
			x0r, x0i := real(src[j]), imag(src[j])
			x1r, x1i := real(src[j+1]), imag(src[j+1])
			dst[j] = complex(x0r*sr-x0i*si, x0r*si+x0i*sr)
			dst[j+1] = complex(x1r*s1r-x1i*s1i, x1r*s1i+x1i*s1r)
			nsr := sr*r2r - si*r2i
			nsi := sr*r2i + si*r2r
			ns1r := s1r*r2r - s1i*r2i
			ns1i := s1r*r2i + s1i*r2r
			sr, si, s1r, s1i = nsr, nsi, ns1r, ns1i
		}
		if j < n {
			xr, xi := real(src[j]), imag(src[j])
			dst[j] = complex(xr*sr-xi*si, xr*si+xi*sr)
			sr, si = s1r, s1i
		}
		o.sr, o.si = sr, si
		o.i += n
		o.left -= n
		dst, src = dst[n:], src[n:]
	}
}
