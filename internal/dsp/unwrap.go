package dsp

import "math"

// UnwrapPhase rectifies a wrapped phase sequence (values in (-pi, pi]) into
// a continuous sequence by adding multiples of 2*pi whenever consecutive
// samples jump by more than pi. This implements the 2*k*pi rectification of
// the paper's §7.1.1: when atan2 jumps from -pi to pi, k decreases by one;
// when it jumps from pi to -pi, k increases by one.
func UnwrapPhase(phase []float64) []float64 {
	out := make([]float64, len(phase))
	if len(phase) == 0 {
		return out
	}
	out[0] = phase[0]
	offset := 0.0
	for i := 1; i < len(phase); i++ {
		d := phase[i] - phase[i-1]
		if d > math.Pi {
			offset -= 2 * math.Pi
		} else if d < -math.Pi {
			offset += 2 * math.Pi
		}
		out[i] = phase[i] + offset
	}
	return out
}

// UnwrapPhaseInPlace rectifies a wrapped phase sequence in place, using the
// same 2*k*pi rule as UnwrapPhase but without allocating.
func UnwrapPhaseInPlace(phase []float64) {
	offset := 0.0
	for i := 1; i < len(phase); i++ {
		d := phase[i] - (phase[i-1] - offset)
		if d > math.Pi {
			offset -= 2 * math.Pi
		} else if d < -math.Pi {
			offset += 2 * math.Pi
		}
		phase[i] += offset
	}
}

// WrapPhase maps an arbitrary angle to the interval (-pi, pi].
func WrapPhase(theta float64) float64 {
	w := math.Mod(theta+math.Pi, 2*math.Pi)
	if w < 0 {
		w += 2 * math.Pi
	}
	return w - math.Pi
}

// InstantaneousPhase returns the unwrapped phase of a complex trace.
func InstantaneousPhase(x []complex128) []float64 {
	return UnwrapPhase(Phase(x))
}
