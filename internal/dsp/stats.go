package dsp

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of x, or 0 for an empty slice.
func Mean(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	var s float64
	for _, v := range x {
		s += v
	}
	return s / float64(len(x))
}

// StdDev returns the population standard deviation of x.
func StdDev(x []float64) float64 {
	if len(x) < 2 {
		return 0
	}
	m := Mean(x)
	var s float64
	for _, v := range x {
		d := v - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(x)))
}

// MinMax returns the smallest and largest values of x. It returns (0, 0)
// for an empty slice.
func MinMax(x []float64) (lo, hi float64) {
	if len(x) == 0 {
		return 0, 0
	}
	lo, hi = x[0], x[0]
	for _, v := range x[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi
}

// Percentile returns the p-th percentile (0 <= p <= 100) of x using linear
// interpolation between closest ranks. It returns 0 for an empty slice.
func Percentile(x []float64, p float64) float64 {
	if len(x) == 0 {
		return 0
	}
	s := make([]float64, len(x))
	copy(s, x)
	sort.Float64s(s)
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	rank := p / 100 * float64(len(s)-1)
	lo := int(rank)
	frac := rank - float64(lo)
	if lo+1 >= len(s) {
		return s[len(s)-1]
	}
	return s[lo]*(1-frac) + s[lo+1]*frac
}

// BoxStats summarizes a sample the way the paper's box/error-bar plots do.
type BoxStats struct {
	Min    float64
	P25    float64
	Median float64
	P75    float64
	Max    float64
	Mean   float64
}

// Summarize computes BoxStats for x.
func Summarize(x []float64) BoxStats {
	lo, hi := MinMax(x)
	return BoxStats{
		Min:    lo,
		P25:    Percentile(x, 25),
		Median: Percentile(x, 50),
		P75:    Percentile(x, 75),
		Max:    hi,
		Mean:   Mean(x),
	}
}

// MeanAbs returns the mean of |x[i]|.
func MeanAbs(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	var s float64
	for _, v := range x {
		s += math.Abs(v)
	}
	return s / float64(len(x))
}

// MaxAbs returns the largest |x[i]|, or 0 for an empty slice.
func MaxAbs(x []float64) float64 {
	var m float64
	for _, v := range x {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}
