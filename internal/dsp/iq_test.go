package dsp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestIQSplitCombine(t *testing.T) {
	x := []complex128{complex(1, 2), complex(-3, 4), complex(0, -5)}
	iData, qData := I(x), Q(x)
	wantI := []float64{1, -3, 0}
	wantQ := []float64{2, 4, -5}
	for i := range x {
		if iData[i] != wantI[i] || qData[i] != wantQ[i] {
			t.Fatalf("split mismatch at %d", i)
		}
	}
	back := Complex(iData, qData)
	for i := range x {
		if back[i] != x[i] {
			t.Fatalf("combine mismatch at %d: %v vs %v", i, back[i], x[i])
		}
	}
}

func TestComplexShorterInput(t *testing.T) {
	got := Complex([]float64{1, 2, 3}, []float64{4})
	if len(got) != 1 || got[0] != complex(1, 4) {
		t.Fatalf("Complex = %v", got)
	}
}

func TestPower(t *testing.T) {
	x := []complex128{complex(3, 4), complex(0, 0)}
	if got := Power(x); math.Abs(got-12.5) > 1e-12 {
		t.Errorf("Power = %f, want 12.5", got)
	}
	if Power(nil) != 0 {
		t.Error("Power(nil) != 0")
	}
}

func TestScaleAndPowerProperty(t *testing.T) {
	f := func(seed int64, gRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		g := 0.1 + float64(gRaw)/64
		x := make([]complex128, 64)
		for i := range x {
			x[i] = complex(r.NormFloat64(), r.NormFloat64())
		}
		p0 := Power(x)
		p1 := Power(Scale(x, g))
		return math.Abs(p1-g*g*p0) < 1e-9*(1+p0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestAddLengths(t *testing.T) {
	a := []complex128{1, 2}
	b := []complex128{10, 20, 30}
	got := Add(a, b)
	want := []complex128{11, 22, 30}
	if len(got) != 3 {
		t.Fatalf("len = %d", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Add = %v, want %v", got, want)
		}
	}
}

func TestAddInPlaceOffsets(t *testing.T) {
	a := make([]complex128, 5)
	b := []complex128{1, 1, 1}
	AddInPlace(a, b, 3) // clips last sample
	if a[3] != 1 || a[4] != 1 || a[2] != 0 {
		t.Errorf("positive offset: %v", a)
	}
	a2 := make([]complex128, 5)
	AddInPlace(a2, b, -2) // only b[2] lands at a2[0]
	if a2[0] != 1 || a2[1] != 0 {
		t.Errorf("negative offset: %v", a2)
	}
}

func TestSegmentClamping(t *testing.T) {
	x := []complex128{1, 2, 3, 4}
	tests := []struct {
		start, n  int
		wantLen   int
		wantFirst complex128
	}{
		{0, 2, 2, 1},
		{2, 10, 2, 3},
		{-1, 2, 2, 1},
		{10, 2, 0, 0},
		{1, -1, 3, 2},
	}
	for _, tt := range tests {
		got := Segment(x, tt.start, tt.n)
		if len(got) != tt.wantLen {
			t.Errorf("Segment(%d,%d) len = %d, want %d", tt.start, tt.n, len(got), tt.wantLen)
			continue
		}
		if tt.wantLen > 0 && got[0] != tt.wantFirst {
			t.Errorf("Segment(%d,%d)[0] = %v, want %v", tt.start, tt.n, got[0], tt.wantFirst)
		}
	}
}

func TestSegmentIsCopy(t *testing.T) {
	x := []complex128{1, 2, 3}
	s := Segment(x, 0, 3)
	s[0] = 99
	if x[0] != 1 {
		t.Error("Segment must copy, not alias")
	}
}

func TestMulConj(t *testing.T) {
	a := []complex128{complex(1, 1)}
	b := Conj(a)
	if b[0] != complex(1, -1) {
		t.Fatalf("Conj = %v", b[0])
	}
	p := Mul(a, b)
	if p[0] != complex(2, 0) {
		t.Fatalf("Mul = %v", p[0])
	}
}

func TestDBConversions(t *testing.T) {
	if got := TodB(100); math.Abs(got-20) > 1e-12 {
		t.Errorf("TodB(100) = %f", got)
	}
	if got := FromdB(30); math.Abs(got-1000) > 1e-9 {
		t.Errorf("FromdB(30) = %f", got)
	}
	if got := SNRdB(10, 1); math.Abs(got-10) > 1e-12 {
		t.Errorf("SNRdB = %f", got)
	}
	if !math.IsInf(SNRdB(1, 0), 1) {
		t.Error("SNRdB with zero noise should be +Inf")
	}
}

func TestDBRoundTripProperty(t *testing.T) {
	f := func(raw int16) bool {
		db := float64(raw) / 100 // -327..327 dB
		return math.Abs(TodB(FromdB(db))-db) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestPhaseMagnitude(t *testing.T) {
	x := []complex128{complex(0, 2)}
	if got := Phase(x)[0]; math.Abs(got-math.Pi/2) > 1e-12 {
		t.Errorf("Phase = %f", got)
	}
	if got := Magnitude(x)[0]; math.Abs(got-2) > 1e-12 {
		t.Errorf("Magnitude = %f", got)
	}
}
