package dsp

import "math"

// SlidingDFT tracks the windowed DFT sums
//
//	S_k(a) = Σ_{i<n} x[a+i]·e^{−jθ_k·i}
//
// of one n-sample window sliding over a trace, at a fixed set of angular
// frequencies θ_k (radians per sample, not restricted to any FFT grid).
// Advancing the window start by one sample updates every sum in O(1):
//
//	S_k(a+1) = (S_k(a) − x[a] + x[a+n]·e^{−jθ_k·n})·e^{jθ_k}
//
// so a scan over m window positions costs O(bins·(n + m)) instead of the
// O(m·n·log n) of a per-window FFT. This is what turns the onset detector's
// apex refinement from hundreds of full transforms into one anchor FFT plus
// a cheap slide (see core.DechirpOnsetDetector).
//
// The update rotates by unit-magnitude factors only, so float64 drift over
// the few-thousand-sample slides of a chirp window is far below the noise
// floor; re-anchoring per refinement pass (as the detector does) keeps it
// bounded regardless of trace length.
//
// A SlidingDFT reuses its internal slices across Reset calls and is not
// safe for concurrent use: one instance per goroutine.
type SlidingDFT struct {
	n     int
	start int
	sums  []complex128
	rot   []complex128 // e^{+jθ_k}: per-step phase advance
	tail  []complex128 // e^{−jθ_k·n}: rotation of the entering sample
}

// Reset points the tracker at window [start, start+n) of x and evaluates
// the initial sums for the given frequencies (O(len(thetas)·n) via
// Goertzel). It reuses the tracker's slices when their capacity allows, so
// steady-state Reset does not allocate for a bin count it has seen before.
// The window must fit the trace.
func (s *SlidingDFT) Reset(x []complex128, start, n int, thetas []float64) {
	k := len(thetas)
	if cap(s.sums) < k {
		s.sums = make([]complex128, k)
		s.rot = make([]complex128, k)
		s.tail = make([]complex128, k)
	}
	s.sums = s.sums[:k]
	s.rot = s.rot[:k]
	s.tail = s.tail[:k]
	s.n = n
	s.start = start
	for i, th := range thetas {
		s.sums[i] = GoertzelDFT(x[start:start+n], th)
		sin, cos := math.Sincos(th)
		s.rot[i] = complex(cos, sin)
		sinN, cosN := math.Sincos(th * float64(n))
		s.tail[i] = complex(cosN, -sinN)
	}
}

// Start returns the current window start.
func (s *SlidingDFT) Start() int { return s.start }

// Bins returns how many frequencies the tracker follows.
func (s *SlidingDFT) Bins() int { return len(s.sums) }

// Advance slides the window forward by steps samples, updating every bin in
// O(steps·bins). The destination window must fit the trace.
func (s *SlidingDFT) Advance(x []complex128, steps int) {
	n := s.n
	a := s.start
	for t := 0; t < steps; t++ {
		leave := x[a]
		enter := x[a+n]
		for i := range s.sums {
			s.sums[i] = (s.sums[i] - leave + enter*s.tail[i]) * s.rot[i]
		}
		a++
	}
	s.start = a
}

// Sum returns the current DFT sum of bin k.
func (s *SlidingDFT) Sum(k int) complex128 { return s.sums[k] }

// MaxMagSq returns the largest squared magnitude over all tracked bins.
func (s *SlidingDFT) MaxMagSq() float64 {
	best := 0.0
	for _, v := range s.sums {
		re, im := real(v), imag(v)
		if m := re*re + im*im; m > best {
			best = m
		}
	}
	return best
}
