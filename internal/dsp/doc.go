// Package dsp provides the signal-processing substrate used by the SoftLoRa
// gateway: complex baseband (I/Q) trace manipulation, FFT and spectrograms,
// single-frequency DFT evaluation (Goertzel) with sliding-window updates,
// Hilbert-transform envelopes, FIR filtering and decimation, phase
// unwrapping, linear regression, autoregressive modelling with the Akaike
// Information Criterion, differential-evolution optimization, and noise
// generation calibrated to a target SNR.
//
// All routines operate on discrete-time complex baseband traces sampled at a
// caller-supplied rate. The package is deterministic: every stochastic
// routine takes an explicit *rand.Rand so experiments are reproducible.
//
// # Plans and scratch ownership
//
// Hot paths transform through Plan: per-size cached twiddle factors and
// permutation tables whose Transform/TransformInPlace/Inverse entry points
// never allocate after construction. A plan whose size's log2 is even
// (4, 16, …, 1024, 4096, 16384 — every hot gateway size) runs a radix-4
// butterfly kernel, ~25 % fewer multiplies than radix-2; odd-log2 sizes
// fall back to the radix-2 kernel (Plan.Radix reports the selection).
// Plans are immutable, so the process-wide cache behind PlanFor may hand
// the same *Plan to any number of goroutines. Everything mutable is the
// CALLER's scratch — the buffers paired with a plan, and the stateful
// helpers (SpectrogramPlan, HilbertScratch, AICScratch, SlidingDFT, a
// FIRFilter once applied) — and is strictly single-goroutine: one
// plan/scratch set per worker, no sharing. The one-shot conveniences (FFT,
// IFFT, Spectrogram, Envelope, AICOnset, Apply, GoertzelDFT) allocate
// nothing or per call and stay safe for casual use.
//
// # Full-spectrum, few-bin, and decimated evaluation
//
// The package offers three cost tiers for spectral evaluation, which is
// what the onset detector's coarse→fine hierarchy in package core is built
// from. A Plan transform computes every bin in O(n log n). GoertzelDFT
// evaluates one arbitrary frequency in O(n), and SlidingDFT tracks a fixed
// frequency set across a sliding window at O(bins) per one-sample shift —
// the right shape when successive windows overlap almost entirely.
// DechirpScratch.DechirpDecimated trades frequency span instead of
// resolution: it boxcar-sums the dechirped product by the decimation
// factor before a proportionally smaller transform, preserving the full
// window's coherent gain over the surviving band (compensate the boxcar's
// sinc droop per bin with BoxcarDroopSq).
package dsp
