// Package dsp provides the signal-processing substrate used by the SoftLoRa
// gateway: complex baseband (I/Q) trace manipulation, FFT and spectrograms,
// Hilbert-transform envelopes, FIR filtering and decimation, phase
// unwrapping, linear regression, autoregressive modelling with the Akaike
// Information Criterion, differential-evolution optimization, and noise
// generation calibrated to a target SNR.
//
// All routines operate on discrete-time complex baseband traces sampled at a
// caller-supplied rate. The package is deterministic: every stochastic
// routine takes an explicit *rand.Rand so experiments are reproducible.
package dsp
