// Package dsp provides the signal-processing substrate used by the SoftLoRa
// gateway: complex baseband (I/Q) trace manipulation, FFT and spectrograms,
// single-frequency DFT evaluation (Goertzel) with sliding-window updates,
// Hilbert-transform envelopes, FIR filtering and decimation, phase
// unwrapping, linear regression, autoregressive modelling with the Akaike
// Information Criterion, differential-evolution optimization, and noise
// generation calibrated to a target SNR.
//
// All routines operate on discrete-time complex baseband traces sampled at a
// caller-supplied rate. The package is deterministic: every stochastic
// routine takes an explicit *rand.Rand so experiments are reproducible.
//
// # Plans and scratch ownership
//
// Hot paths transform through Plan: per-size cached twiddle factors and
// permutation tables whose Transform/TransformInPlace/Inverse entry points
// never allocate after construction. A plan whose size's log2 is even
// (4, 16, …, 1024, 4096, 16384 — every hot gateway size) runs a radix-4
// butterfly kernel, ~25 % fewer multiplies than radix-2; odd-log2 sizes
// fall back to the radix-2 kernel (Plan.Radix reports the selection).
// Plans are immutable, so the process-wide cache behind PlanFor may hand
// the same *Plan to any number of goroutines. Everything mutable is the
// CALLER's scratch — the buffers paired with a plan, and the stateful
// helpers (SpectrogramPlan, HilbertScratch, AICScratch, SlidingDFT, a
// FIRFilter once applied) — and is strictly single-goroutine: one
// plan/scratch set per worker, no sharing. The one-shot conveniences (FFT,
// IFFT, Spectrogram, Envelope, AICOnset, Apply, GoertzelDFT) allocate
// nothing or per call and stay safe for casual use.
//
// # Full-spectrum, few-bin, and decimated evaluation
//
// The package offers three cost tiers for spectral evaluation, which is
// what the onset detector's coarse→fine hierarchy in package core is built
// from. A Plan transform computes every bin in O(n log n). GoertzelDFT
// evaluates one arbitrary frequency in O(n), and SlidingDFT tracks a fixed
// frequency set across a sliding window at O(bins) per one-sample shift —
// the right shape when successive windows overlap almost entirely.
// DechirpScratch.DechirpDecimated trades frequency span instead of
// resolution: it boxcar-sums the dechirped product by the decimation
// factor before a proportionally smaller transform, preserving the full
// window's coherent gain over the surviving band (compensate the boxcar's
// sinc droop per bin with BoxcarDroopSq; DechirpDecimateInto exposes the
// decimated time series when a caller needs it past the transform).
//
// Two batching tiers sit on top. Plan.TransformMany runs K packed
// same-size transforms through one plan back to back — bit-identical to K
// TransformInPlace calls, but the permutation and twiddle tables stay hot
// in cache across blocks (the coarse-scan windows of a capture, a
// spectrogram's frames). And the decision-stage float32 lanes trade
// precision for bandwidth where the consumer's error budget allows it:
// AICScratch.Onset32/Onset32Strided and the FIRFilter ...32 apply paths
// run the onset detector's coarse/mid argmin stages on float32 data with a
// float32 Cephes log (fastLn32, ~4e-7 relative), halving the memory
// traffic of the widest scans. The contract is that float32 output feeds
// DECISIONS (an argmin handed to a dense float64 refinement), never values
// that flow into the bias database; OnsetStrided/Onset32Strided further
// cut the argmin cost by evaluating every stride-th candidate and densely
// refining around the winner.
//
// ZoomDFT adds the zoom tier between "one bin" and "all bins": a planned
// chirp-Z transform that evaluates a dense uniform grid of `points`
// frequencies anywhere in the band at O((m+points)·log(m+points)) — two
// planned FFTs per call — against O(points·m) for a GoertzelGrid sweep
// (measured ~4.5× faster at the FB estimator's 307-sample/65-point
// geometry, BenchmarkZoomGrid). The frequency-bias estimator's
// coarse-to-fine path is the canonical composition: DechirpDecimateInto
// shrinks the band, a small plan transform localizes the tone to a coarse
// bin, and ZoomDFT refines it on a grid finer than any affordable padded
// FFT, with FoldFrequency wrapping interpolated readouts back into the
// principal alias band.
//
// # Synthesis-path cost tiers and the oscillator drift contract
//
// Waveform synthesis and front-end rotation have their own cost ladder,
// mirrored on the analysis tiers above. Direct rendering — evaluate the
// phase polynomial, then math.Sincos — costs ~25 ns per sample and is the
// reference everything else is tested against. Oscillator and Rotator
// replace it with complex-multiply recurrences: a LoRa chirp's phase is
// quadratic in the sample index, so its sample stream obeys the
// second-order recurrence s[i+1] = s[i]·r[i], r[i+1] = r[i]·q with constant
// q = exp(j·2π·k·dt²) — two multiplies per sample (Oscillator); a
// constant-frequency rotation needs only the first-order s[i+1] = s[i]·r
// (Rotator, one multiply). Measured on the gateway benchmarks the
// recurrences run 5–10× faster than direct trig (BenchmarkChirpSynthesize,
// BenchmarkSDRDownconvert). GaussianSource is the noise-synthesis analogue:
// a seedable 128-layer ziggurat over a splitmix64 counter whose steady-state
// Norm draw is a buffered read (~4 ns, zero allocations, O(1) seeding),
// ~10× cheaper than math/rand's NormFloat64 — the SDR front end burns two
// draws per complex sample on dither and noise-figure injection, so this is
// what keeps quantization off the batch profile's top.
//
// The drift contract: each recurrence step rounds, so magnitude and phase
// wander as a slow random walk. Every OscRenormInterval (1024) steps the
// oscillators re-seed s and r exactly from the closed-form phase
// polynomial, which caps the accumulated error at what ≤1024 complex
// multiplies can introduce — observed < 1e-12 rad and pinned < 1e-9 rad per
// block by the drift property tests (oscillator_test.go, and
// lora's oscillator-vs-Sincos parity suite across SF 7–12 with realistic
// frequency offsets). Consumers therefore treat oscillator output as exact:
// detectors dechirp against Oscillator-rendered references
// (lora.ChirpSpec.FillPhasors) with no accuracy budget set aside for the
// recurrence.
//
// Oscillator32 and Rotator32 are the complex64 lane of the same
// recurrences for float32 consumers, and make the opposite trade: their
// per-step float32 rounding walks fast enough that they re-seed every
// OscRenormInterval32 (128) steps — OscChirpRenormInterval32 (64) for the
// chirp, whose r-drift compounds quadratically — pinning the error to
// ~1e-6 rad (rotator) and ~1e-4 (chirp), both far under the 8-bit ADC
// quantization step of ~4e-3 their consumers live against
// (oscillator32_test.go states the budget). Their inner loops spell the
// complex multiplies out on float32 components because gc lowers builtin
// complex64 arithmetic through float64 conversions, which would cost more
// than complex128. Unlike the float64 oscillators they are NOT exact-by-
// contract: keep them off any path that feeds the bias database.
//
//softlora:float32-lanes
package dsp
