// Package dsp provides the signal-processing substrate used by the SoftLoRa
// gateway: complex baseband (I/Q) trace manipulation, FFT and spectrograms,
// single-frequency DFT evaluation (Goertzel) with sliding-window updates,
// Hilbert-transform envelopes, FIR filtering and decimation, phase
// unwrapping, linear regression, autoregressive modelling with the Akaike
// Information Criterion, differential-evolution optimization, and noise
// generation calibrated to a target SNR.
//
// All routines operate on discrete-time complex baseband traces sampled at a
// caller-supplied rate. The package is deterministic: every stochastic
// routine takes an explicit *rand.Rand so experiments are reproducible.
//
// # Plans and scratch ownership
//
// Hot paths transform through Plan: per-size cached twiddle factors and
// permutation tables whose Transform/TransformInPlace/Inverse entry points
// never allocate after construction. A plan whose size's log2 is even
// (4, 16, …, 1024, 4096, 16384 — every hot gateway size) runs a radix-4
// butterfly kernel, ~25 % fewer multiplies than radix-2; odd-log2 sizes
// fall back to the radix-2 kernel (Plan.Radix reports the selection).
// Plans are immutable, so the process-wide cache behind PlanFor may hand
// the same *Plan to any number of goroutines. Everything mutable is the
// CALLER's scratch — the buffers paired with a plan, and the stateful
// helpers (SpectrogramPlan, HilbertScratch, AICScratch, SlidingDFT, a
// FIRFilter once applied) — and is strictly single-goroutine: one
// plan/scratch set per worker, no sharing. The one-shot conveniences (FFT,
// IFFT, Spectrogram, Envelope, AICOnset, Apply, GoertzelDFT) allocate
// nothing or per call and stay safe for casual use.
//
// # Full-spectrum, few-bin, and decimated evaluation
//
// The package offers three cost tiers for spectral evaluation, which is
// what the onset detector's coarse→fine hierarchy in package core is built
// from. A Plan transform computes every bin in O(n log n). GoertzelDFT
// evaluates one arbitrary frequency in O(n), and SlidingDFT tracks a fixed
// frequency set across a sliding window at O(bins) per one-sample shift —
// the right shape when successive windows overlap almost entirely.
// DechirpScratch.DechirpDecimated trades frequency span instead of
// resolution: it boxcar-sums the dechirped product by the decimation
// factor before a proportionally smaller transform, preserving the full
// window's coherent gain over the surviving band (compensate the boxcar's
// sinc droop per bin with BoxcarDroopSq; DechirpDecimateInto exposes the
// decimated time series when a caller needs it past the transform).
//
// ZoomDFT adds the zoom tier between "one bin" and "all bins": a planned
// chirp-Z transform that evaluates a dense uniform grid of `points`
// frequencies anywhere in the band at O((m+points)·log(m+points)) — two
// planned FFTs per call — against O(points·m) for a GoertzelGrid sweep
// (measured ~4.5× faster at the FB estimator's 307-sample/65-point
// geometry, BenchmarkZoomGrid). The frequency-bias estimator's
// coarse-to-fine path is the canonical composition: DechirpDecimateInto
// shrinks the band, a small plan transform localizes the tone to a coarse
// bin, and ZoomDFT refines it on a grid finer than any affordable padded
// FFT, with FoldFrequency wrapping interpolated readouts back into the
// principal alias band.
//
// # Synthesis-path cost tiers and the oscillator drift contract
//
// Waveform synthesis and front-end rotation have their own cost ladder,
// mirrored on the analysis tiers above. Direct rendering — evaluate the
// phase polynomial, then math.Sincos — costs ~25 ns per sample and is the
// reference everything else is tested against. Oscillator and Rotator
// replace it with complex-multiply recurrences: a LoRa chirp's phase is
// quadratic in the sample index, so its sample stream obeys the
// second-order recurrence s[i+1] = s[i]·r[i], r[i+1] = r[i]·q with constant
// q = exp(j·2π·k·dt²) — two multiplies per sample (Oscillator); a
// constant-frequency rotation needs only the first-order s[i+1] = s[i]·r
// (Rotator, one multiply). Measured on the gateway benchmarks the
// recurrences run 5–10× faster than direct trig (BenchmarkChirpSynthesize,
// BenchmarkSDRDownconvert).
//
// The drift contract: each recurrence step rounds, so magnitude and phase
// wander as a slow random walk. Every OscRenormInterval (1024) steps the
// oscillators re-seed s and r exactly from the closed-form phase
// polynomial, which caps the accumulated error at what ≤1024 complex
// multiplies can introduce — observed < 1e-12 rad and pinned < 1e-9 rad per
// block by the drift property tests (oscillator_test.go, and
// lora's oscillator-vs-Sincos parity suite across SF 7–12 with realistic
// frequency offsets). Consumers therefore treat oscillator output as exact:
// detectors dechirp against Oscillator-rendered references
// (lora.ChirpSpec.FillPhasors) with no accuracy budget set aside for the
// recurrence.
package dsp
