// Package dsp provides the signal-processing substrate used by the SoftLoRa
// gateway: complex baseband (I/Q) trace manipulation, FFT and spectrograms,
// Hilbert-transform envelopes, FIR filtering and decimation, phase
// unwrapping, linear regression, autoregressive modelling with the Akaike
// Information Criterion, differential-evolution optimization, and noise
// generation calibrated to a target SNR.
//
// All routines operate on discrete-time complex baseband traces sampled at a
// caller-supplied rate. The package is deterministic: every stochastic
// routine takes an explicit *rand.Rand so experiments are reproducible.
//
// # Plans and scratch ownership
//
// Hot paths transform through Plan: per-size cached twiddle factors and
// bit-reversal tables whose Transform/TransformInPlace/Inverse entry points
// never allocate after construction. Plans are immutable, so the
// process-wide cache behind PlanFor may hand the same *Plan to any number
// of goroutines. Everything mutable is the CALLER's scratch — the buffers
// paired with a plan, and the stateful helpers (SpectrogramPlan,
// HilbertScratch, AICScratch, a FIRFilter once applied) — and is strictly
// single-goroutine: one plan/scratch set per worker, no sharing. The
// one-shot conveniences (FFT, IFFT, Spectrogram, Envelope, AICOnset,
// Apply) allocate per call and stay safe for casual use.
package dsp
