package dsp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// burstTrace builds noise followed by a higher-variance oscillation starting
// at onset.
func burstTrace(rng *rand.Rand, n, onset int, noiseSigma, amp float64) []float64 {
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64() * noiseSigma
	}
	for i := onset; i < n; i++ {
		x[i] += amp * math.Sin(2*math.Pi*0.05*float64(i-onset))
	}
	return x
}

func TestAICOnsetFindsBurst(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	const n, onset = 4000, 1700
	x := burstTrace(rng, n, onset, 0.05, 1)
	got := AICOnset(x, 10)
	if d := got - onset; d < -5 || d > 5 {
		t.Errorf("AICOnset = %d, want ~%d", got, onset)
	}
}

func TestAICOnsetShortTrace(t *testing.T) {
	if got := AICOnset([]float64{1, 2, 3}, 5); got != -1 {
		t.Errorf("short trace onset = %d, want -1", got)
	}
	if got := AICOnset(nil, 1); got != -1 {
		t.Errorf("nil trace onset = %d, want -1", got)
	}
}

func TestAICOnsetProperty(t *testing.T) {
	// Over random onsets and moderate noise, the picker should land within
	// 20 samples of the true onset.
	f := func(seed int64, onsetSel uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3000
		onset := 500 + int(onsetSel)%2000
		x := burstTrace(rng, n, onset, 0.1, 1)
		got := AICOnset(x, 10)
		d := got - onset
		return d >= -20 && d <= 20
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestAICCurveMinimumAtPick(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	x := burstTrace(rng, 2000, 900, 0.05, 1)
	pick := AICOnset(x, 10)
	curve := AICCurve(x, 10)
	minV := math.Inf(1)
	minI := -1
	for i, v := range curve {
		if !math.IsNaN(v) && v < minV {
			minV = v
			minI = i
		}
	}
	if minI != pick {
		t.Errorf("curve minimum at %d, pick at %d", minI, pick)
	}
	if !math.IsNaN(curve[0]) || !math.IsNaN(curve[len(curve)-1]) {
		t.Error("margins should be NaN")
	}
}

func TestBurgARWhiteNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	x := make([]float64, 4096)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	coeffs, nv := BurgAR(x, 4)
	if len(coeffs) != 4 {
		t.Fatalf("coeffs len = %d", len(coeffs))
	}
	// White noise: AR coefficients ~0, prediction error ~ input variance.
	for i, c := range coeffs {
		if math.Abs(c) > 0.1 {
			t.Errorf("coeff[%d] = %f, want ~0", i, c)
		}
	}
	if math.Abs(nv-1) > 0.15 {
		t.Errorf("noise var = %f, want ~1", nv)
	}
}

func TestBurgARPredictsAR1(t *testing.T) {
	// x[n] = 0.8 x[n-1] + e[n]: Burg should recover a1 ≈ -0.8 (prediction
	// convention) and residual variance ≈ sigma_e^2.
	rng := rand.New(rand.NewSource(13))
	const rho = 0.8
	x := make([]float64, 8192)
	for i := 1; i < len(x); i++ {
		x[i] = rho*x[i-1] + rng.NormFloat64()
	}
	coeffs, nv := BurgAR(x, 1)
	if math.Abs(coeffs[0]+rho) > 0.05 {
		t.Errorf("a1 = %f, want ~%f", coeffs[0], -rho)
	}
	if math.Abs(nv-1) > 0.15 {
		t.Errorf("residual var = %f, want ~1", nv)
	}
}

func TestBurgARDegenerate(t *testing.T) {
	coeffs, _ := BurgAR([]float64{1, 2}, 5)
	if coeffs != nil {
		t.Error("expected nil coeffs for order >= len")
	}
}

func TestARAICOnsetFindsBurst(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	const n, onset = 4000, 2100
	x := burstTrace(rng, n, onset, 0.05, 1)
	got := ARAICOnset(x, 4, 50)
	if d := got - onset; d < -30 || d > 30 {
		t.Errorf("ARAICOnset = %d, want ~%d", got, onset)
	}
}

func TestARAICOnsetShortFallsBack(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	x := burstTrace(rng, 60, 30, 0.05, 1)
	got := ARAICOnset(x, 4, 10)
	if d := got - 30; d < -10 || d > 10 {
		t.Errorf("short-trace onset = %d, want ~30", got)
	}
}

// fastLn32 powers the float32 AIC lane; require ~float32 accuracy over the
// full range of segment statistics the picker can produce.
func TestFastLn32MatchesMathLog(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	check := func(v float32) {
		got := float64(fastLn32(v))
		want := math.Log(float64(v))
		// A few ulps of float32 around the result magnitude.
		tol := 4e-7 * (1 + math.Abs(want))
		if math.Abs(got-want) > tol {
			t.Fatalf("fastLn32(%g) = %v, want %v (err %g)", v, got, want, got-want)
		}
	}
	for _, v := range []float32{1e-30, 1e-20, 1e-6, 0.5, 0.9999999, 1, 1.0000001, 2, math.Pi, 1e6, 1e30} {
		check(v)
	}
	for i := 0; i < 20000; i++ {
		// Log-uniform over the floor..1e30 range the AIC lane feeds in.
		e := rng.Float64()*60 - 30
		check(float32(math.Pow(10, e)))
	}
}

// The float32 lane must agree with the float64 picker to within the coarse
// stage's refinement slack: the next stage re-searches ±margin·dec samples,
// so a handful of samples of disagreement is free.
func TestOnset32ParityWithOnset(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	var sc, sc32 AICScratch
	for trial := 0; trial < 50; trial++ {
		n := 2000 + rng.Intn(2000)
		onset := 400 + rng.Intn(n-800)
		x := burstTrace(rng, n, onset, 0.05+rng.Float64()*0.2, 1)
		x32 := make([]float32, n)
		for i, v := range x {
			x32[i] = float32(v)
		}
		k64 := sc.Onset(x, 10)
		k32 := sc32.Onset32(x32, 10)
		if d := k32 - k64; d < -4 || d > 4 {
			t.Fatalf("trial %d: Onset32 = %d, Onset = %d (onset %d)", trial, k32, k64, onset)
		}
	}
}

func TestOnset32ShortTrace(t *testing.T) {
	var sc AICScratch
	if got := sc.Onset32([]float32{1, 2, 3}, 5); got != -1 {
		t.Errorf("short trace onset = %d, want -1", got)
	}
	if got := sc.Onset32(nil, 1); got != -1 {
		t.Errorf("nil trace onset = %d, want -1", got)
	}
}

func BenchmarkAICOnset(b *testing.B) {
	rng := rand.New(rand.NewSource(18))
	x := burstTrace(rng, 4096, 1700, 0.05, 1)
	var sc AICScratch
	b.Run("float64", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sc.Onset(x, 8)
		}
	})
	x32 := make([]float32, len(x))
	for i, v := range x {
		x32[i] = float32(v)
	}
	b.Run("float32", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sc.Onset32(x32, 8)
		}
	})
}
