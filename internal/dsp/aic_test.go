package dsp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// burstTrace builds noise followed by a higher-variance oscillation starting
// at onset.
func burstTrace(rng *rand.Rand, n, onset int, noiseSigma, amp float64) []float64 {
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64() * noiseSigma
	}
	for i := onset; i < n; i++ {
		x[i] += amp * math.Sin(2*math.Pi*0.05*float64(i-onset))
	}
	return x
}

func TestAICOnsetFindsBurst(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	const n, onset = 4000, 1700
	x := burstTrace(rng, n, onset, 0.05, 1)
	got := AICOnset(x, 10)
	if d := got - onset; d < -5 || d > 5 {
		t.Errorf("AICOnset = %d, want ~%d", got, onset)
	}
}

func TestAICOnsetShortTrace(t *testing.T) {
	if got := AICOnset([]float64{1, 2, 3}, 5); got != -1 {
		t.Errorf("short trace onset = %d, want -1", got)
	}
	if got := AICOnset(nil, 1); got != -1 {
		t.Errorf("nil trace onset = %d, want -1", got)
	}
}

func TestAICOnsetProperty(t *testing.T) {
	// Over random onsets and moderate noise, the picker should land within
	// 20 samples of the true onset.
	f := func(seed int64, onsetSel uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3000
		onset := 500 + int(onsetSel)%2000
		x := burstTrace(rng, n, onset, 0.1, 1)
		got := AICOnset(x, 10)
		d := got - onset
		return d >= -20 && d <= 20
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestAICCurveMinimumAtPick(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	x := burstTrace(rng, 2000, 900, 0.05, 1)
	pick := AICOnset(x, 10)
	curve := AICCurve(x, 10)
	minV := math.Inf(1)
	minI := -1
	for i, v := range curve {
		if !math.IsNaN(v) && v < minV {
			minV = v
			minI = i
		}
	}
	if minI != pick {
		t.Errorf("curve minimum at %d, pick at %d", minI, pick)
	}
	if !math.IsNaN(curve[0]) || !math.IsNaN(curve[len(curve)-1]) {
		t.Error("margins should be NaN")
	}
}

func TestBurgARWhiteNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	x := make([]float64, 4096)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	coeffs, nv := BurgAR(x, 4)
	if len(coeffs) != 4 {
		t.Fatalf("coeffs len = %d", len(coeffs))
	}
	// White noise: AR coefficients ~0, prediction error ~ input variance.
	for i, c := range coeffs {
		if math.Abs(c) > 0.1 {
			t.Errorf("coeff[%d] = %f, want ~0", i, c)
		}
	}
	if math.Abs(nv-1) > 0.15 {
		t.Errorf("noise var = %f, want ~1", nv)
	}
}

func TestBurgARPredictsAR1(t *testing.T) {
	// x[n] = 0.8 x[n-1] + e[n]: Burg should recover a1 ≈ -0.8 (prediction
	// convention) and residual variance ≈ sigma_e^2.
	rng := rand.New(rand.NewSource(13))
	const rho = 0.8
	x := make([]float64, 8192)
	for i := 1; i < len(x); i++ {
		x[i] = rho*x[i-1] + rng.NormFloat64()
	}
	coeffs, nv := BurgAR(x, 1)
	if math.Abs(coeffs[0]+rho) > 0.05 {
		t.Errorf("a1 = %f, want ~%f", coeffs[0], -rho)
	}
	if math.Abs(nv-1) > 0.15 {
		t.Errorf("residual var = %f, want ~1", nv)
	}
}

func TestBurgARDegenerate(t *testing.T) {
	coeffs, _ := BurgAR([]float64{1, 2}, 5)
	if coeffs != nil {
		t.Error("expected nil coeffs for order >= len")
	}
}

func TestARAICOnsetFindsBurst(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	const n, onset = 4000, 2100
	x := burstTrace(rng, n, onset, 0.05, 1)
	got := ARAICOnset(x, 4, 50)
	if d := got - onset; d < -30 || d > 30 {
		t.Errorf("ARAICOnset = %d, want ~%d", got, onset)
	}
}

func TestARAICOnsetShortFallsBack(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	x := burstTrace(rng, 60, 30, 0.05, 1)
	got := ARAICOnset(x, 4, 10)
	if d := got - 30; d < -10 || d > 10 {
		t.Errorf("short-trace onset = %d, want ~30", got)
	}
}
