package dsp

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNextPow2(t *testing.T) {
	tests := []struct {
		in, want int
	}{
		{0, 1}, {1, 1}, {2, 2}, {3, 4}, {4, 4}, {5, 8},
		{1023, 1024}, {1024, 1024}, {1025, 2048},
	}
	for _, tt := range tests {
		if got := NextPow2(tt.in); got != tt.want {
			t.Errorf("NextPow2(%d) = %d, want %d", tt.in, got, tt.want)
		}
	}
}

func TestIsPow2(t *testing.T) {
	for _, n := range []int{1, 2, 4, 1024} {
		if !IsPow2(n) {
			t.Errorf("IsPow2(%d) = false, want true", n)
		}
	}
	for _, n := range []int{0, -2, 3, 6, 1000} {
		if IsPow2(n) {
			t.Errorf("IsPow2(%d) = true, want false", n)
		}
	}
}

func TestFFTSingleTone(t *testing.T) {
	const n = 256
	const bin = 17
	x := make([]complex128, n)
	for i := range x {
		x[i] = cmplx.Exp(complex(0, 2*math.Pi*bin*float64(i)/n))
	}
	spec := FFT(x)
	peak, magSq := PeakBinSq(spec)
	if peak != bin {
		t.Fatalf("peak bin = %d, want %d", peak, bin)
	}
	if math.Abs(math.Sqrt(magSq)-n) > 1e-6 {
		t.Errorf("peak magnitude = %f, want %d", math.Sqrt(magSq), n)
	}
	// All other bins should be tiny.
	for i, v := range spec {
		if i == bin {
			continue
		}
		if cmplx.Abs(v) > 1e-6 {
			t.Errorf("bin %d leakage %g", i, cmplx.Abs(v))
		}
	}
}

func TestFFTRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x := make([]complex128, 512)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	y := IFFT(FFT(x))
	for i := range x {
		if cmplx.Abs(y[i]-x[i]) > 1e-9 {
			t.Fatalf("round trip sample %d: got %v want %v", i, y[i], x[i])
		}
	}
}

func TestFFTRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	f := func(seed int64, sizeSel uint8) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 << (1 + sizeSel%9) // 2..512
		x := make([]complex128, n)
		for i := range x {
			x[i] = complex(r.NormFloat64(), r.NormFloat64())
		}
		y := IFFT(FFT(x))
		for i := range x {
			if cmplx.Abs(y[i]-x[i]) > 1e-8 {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 30, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestFFTParseval(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x := make([]complex128, 256)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	spec := FFT(x)
	timeEnergy := Energy(x)
	freqEnergy := Energy(spec) / float64(len(spec))
	if math.Abs(timeEnergy-freqEnergy) > 1e-6*timeEnergy {
		t.Errorf("Parseval violated: time %f freq %f", timeEnergy, freqEnergy)
	}
}

func TestFFTLinearityProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 128
		a := make([]complex128, n)
		b := make([]complex128, n)
		for i := 0; i < n; i++ {
			a[i] = complex(r.NormFloat64(), r.NormFloat64())
			b[i] = complex(r.NormFloat64(), r.NormFloat64())
		}
		sumSpec := FFT(Add(a, b))
		specSum := Add(FFT(a), FFT(b))
		for i := range sumSpec {
			if cmplx.Abs(sumSpec[i]-specSum[i]) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestFFTShift(t *testing.T) {
	x := []complex128{0, 1, 2, 3}
	got := FFTShift(x)
	want := []complex128{2, 3, 0, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("FFTShift = %v, want %v", got, want)
		}
	}
}

func TestBinFrequency(t *testing.T) {
	tests := []struct {
		k, n int
		rate float64
		want float64
	}{
		{0, 8, 800, 0},
		{1, 8, 800, 100},
		{4, 8, 800, 400},
		{5, 8, 800, -300},
		{7, 8, 800, -100},
	}
	for _, tt := range tests {
		if got := BinFrequency(tt.k, tt.n, tt.rate); math.Abs(got-tt.want) > 1e-9 {
			t.Errorf("BinFrequency(%d,%d,%f) = %f, want %f", tt.k, tt.n, tt.rate, got, tt.want)
		}
	}
}

func TestInterpolatePeakRecoversOffset(t *testing.T) {
	// A tone between bins: interpolation should recover the fractional part.
	const n = 1024
	trueBin := 100.3
	x := make([]complex128, n)
	for i := range x {
		x[i] = cmplx.Exp(complex(0, 2*math.Pi*trueBin*float64(i)/n))
	}
	// Window to reduce leakage bias.
	w := HannWindow(n)
	for i := range x {
		x[i] *= complex(w[i], 0)
	}
	spec := FFT(x)
	peak, _ := PeakBinSq(spec)
	frac := InterpolatePeak(spec, peak)
	got := float64(peak) + frac
	if math.Abs(got-trueBin) > 0.05 {
		t.Errorf("interpolated bin = %f, want %f", got, trueBin)
	}
}

func TestSpectrogramShapeAndPeak(t *testing.T) {
	// Constant tone: every frame should peak at the same bin.
	const n = 2048
	const rate = 2048.0
	const freq = 256.0
	x := make([]complex128, n)
	for i := range x {
		x[i] = cmplx.Exp(complex(0, 2*math.Pi*freq*float64(i)/rate))
	}
	w := KaiserWindow(128, 8)
	sg := Spectrogram(x, w, 16)
	if len(sg) == 0 {
		t.Fatal("empty spectrogram")
	}
	wantFrames := (n-128)/(128-16) + 1
	if len(sg) != wantFrames {
		t.Fatalf("frames = %d, want %d", len(sg), wantFrames)
	}
	for f, psd := range sg {
		best, bestV := 0, 0.0
		for i, v := range psd {
			if v > bestV {
				bestV = v
				best = i
			}
		}
		gotFreq := BinFrequency(best, len(psd), rate)
		if math.Abs(gotFreq-freq) > rate/128 {
			t.Errorf("frame %d peak at %f Hz, want %f", f, gotFreq, freq)
		}
	}
}

func TestSpectrogramEmptyInputs(t *testing.T) {
	if sg := Spectrogram(nil, KaiserWindow(16, 8), 4); sg != nil {
		t.Error("expected nil spectrogram for empty trace")
	}
	if sg := Spectrogram(make([]complex128, 8), KaiserWindow(16, 8), 4); sg != nil {
		t.Error("expected nil spectrogram for trace shorter than window")
	}
}

func BenchmarkFFT4096(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	x := make([]complex128, 4096)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FFT(x)
	}
}
