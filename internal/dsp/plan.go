package dsp

import (
	"fmt"
	"math"
	"math/bits"
	"sync"
)

// Plan holds the precomputed state for FFTs of one fixed power-of-two size:
// the input permutation and the per-stage twiddle factors. Building a Plan
// costs O(n); every transform through it then runs without allocating and
// without recomputing trigonometry, which is what makes the per-uplink
// sliding-window scans of package core cheap.
//
// Sizes whose log2 is even (4, 16, 64, …, 4096, 16384) run a radix-4
// kernel — one complex multiply per four outputs fewer than radix-2, ~25 %
// fewer multiplies overall — which covers every hot gateway size (the
// chirp-window 4096, the 4×-padded 16384, the decimated-scan 1024 and the
// spectrogram 256). Odd-log2 sizes fall back to the radix-2 kernel.
//
// A Plan is immutable after construction and safe for concurrent use by
// multiple goroutines — only the caller-supplied buffers are mutated. The
// scratch buffers a caller pairs with a Plan (see the consumers in package
// core) are NOT shareable: one scratch set per goroutine.
type Plan struct {
	n      int
	radix4 bool
	perm   []int32      // bit-reversal (radix-2) or base-4 digit-reversal targets
	fwd    []complex128 // exp(-2πik/n); k < n/2 (radix-2) or k < 3n/4 (radix-4)
	inv    []complex128 // exp(+2πik/n), same length as fwd
}

// NewPlan builds a plan for n-point transforms. n must be a positive power
// of two.
func NewPlan(n int) *Plan {
	if !IsPow2(n) {
		panic(fmt.Sprintf("dsp: NewPlan size %d is not a power of two", n))
	}
	log2 := bits.Len(uint(n)) - 1
	p := &Plan{n: n, radix4: n >= 4 && log2%2 == 0}
	p.perm = make([]int32, n)
	if p.radix4 {
		// Base-4 digit reversal: the radix-4 DIT stages consume the input
		// with its base-4 digits reversed, exactly as radix-2 needs bit
		// reversal.
		for i := 0; i < n; i++ {
			r := 0
			for j := 0; j < log2; j += 2 {
				r = r<<2 | (i>>j)&3
			}
			p.perm[i] = int32(r)
		}
	} else if n > 1 {
		shift := bits.UintSize - uint(bits.Len(uint(n-1)))
		for i := 0; i < n; i++ {
			p.perm[i] = int32(bits.Reverse(uint(i)) >> shift)
		}
	}
	// The radix-4 butterflies reach twiddle exponents up to 3k with
	// k < n/4, so their table spans 3n/4 entries; radix-2 needs n/2.
	twLen := n / 2
	if p.radix4 {
		twLen = 3 * n / 4
	}
	p.fwd = make([]complex128, twLen)
	p.inv = make([]complex128, twLen)
	for k := 0; k < twLen; k++ {
		s, c := math.Sincos(-2 * math.Pi * float64(k) / float64(n))
		p.fwd[k] = complex(c, s)
		p.inv[k] = complex(c, -s)
	}
	return p
}

// Size returns the transform length the plan was built for.
func (p *Plan) Size() int { return p.n }

// Radix reports which butterfly kernel the plan runs: 4 for even-log2 sizes,
// 2 for the fallback.
func (p *Plan) Radix() int {
	if p.radix4 {
		return 4
	}
	return 2
}

// Transform computes the forward DFT of src into dst without allocating.
// len(dst) must equal the plan size; src may be shorter (it is zero-padded)
// but not longer. dst and src may alias only if they are the same slice.
func (p *Plan) Transform(dst, src []complex128) {
	p.load(dst, src)
	p.run(dst, p.fwd, false)
}

// TransformInPlace computes the forward DFT of buf in place. len(buf) must
// equal the plan size.
//
//softlora:hotpath
//softlora:allocfree
func (p *Plan) TransformInPlace(buf []complex128) {
	p.checkLen(buf)
	p.run(buf, p.fwd, false)
}

// TransformMany computes the forward DFT of each of the len(slab)/n
// consecutive n-point blocks of slab in place, where n is the plan size.
// len(slab) must be a multiple of the plan size (zero blocks is allowed).
// One call walks K packed transforms back to back through the same
// permutation and twiddle tables, so batch callers — the coarse-scan
// windows of a capture, a spectrogram's frames — keep those tables hot in
// cache across blocks instead of re-touching them from cold between
// separate calls. Each block's result is bit-identical to TransformInPlace
// on that block.
//
//softlora:hotpath
//softlora:allocfree
func (p *Plan) TransformMany(slab []complex128) {
	if len(slab)%p.n != 0 {
		//softlora:hotpath-ok panic path, cold by definition
		panic(fmt.Sprintf("dsp: TransformMany slab length %d is not a multiple of plan size %d", len(slab), p.n))
	}
	for off := 0; off < len(slab); off += p.n {
		p.run(slab[off:off+p.n], p.fwd, false)
	}
}

// Inverse computes the normalized inverse DFT of src into dst without
// allocating, under the same length rules as Transform.
func (p *Plan) Inverse(dst, src []complex128) {
	p.load(dst, src)
	p.run(dst, p.inv, true)
	p.normalize(dst)
}

// InverseInPlace computes the normalized inverse DFT of buf in place.
// len(buf) must equal the plan size.
func (p *Plan) InverseInPlace(buf []complex128) {
	p.checkLen(buf)
	p.run(buf, p.inv, true)
	p.normalize(buf)
}

func (p *Plan) checkLen(buf []complex128) {
	if len(buf) != p.n {
		panic(fmt.Sprintf("dsp: plan size %d, buffer length %d", p.n, len(buf)))
	}
}

// load copies src into dst, zero-padding the tail.
func (p *Plan) load(dst, src []complex128) {
	p.checkLen(dst)
	if len(src) > p.n {
		panic(fmt.Sprintf("dsp: plan size %d, source length %d", p.n, len(src)))
	}
	if len(src) > 0 && &dst[0] != &src[0] {
		copy(dst, src)
	}
	for i := len(src); i < p.n; i++ {
		dst[i] = 0
	}
}

func (p *Plan) normalize(buf []complex128) {
	inv := complex(1/float64(p.n), 0)
	for i := range buf {
		buf[i] *= inv
	}
}

// run permutes the input and executes the butterfly stages with table
// twiddles. The table lookup replaces the running product w *= wBase of the
// unplanned FFT, which both removes the per-butterfly complex multiply and
// stops rounding error from accumulating across a stage. Both permutations
// (bit reversal and base-4 digit reversal) are involutions, so the in-place
// swap loop needs no scratch.
//
//softlora:hotpath
func (p *Plan) run(x []complex128, tw []complex128, inverse bool) {
	n := p.n
	if n <= 1 {
		return
	}
	for i, pi := range p.perm {
		if j := int(pi); j > i {
			x[i], x[j] = x[j], x[i]
		}
	}
	if p.radix4 {
		p.runRadix4(x, tw, inverse)
		return
	}
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		stride := n / size
		for start := 0; start < n; start += size {
			ti := 0
			for k := start; k < start+half; k++ {
				a := x[k]
				b := x[k+half] * tw[ti]
				x[k] = a + b
				x[k+half] = a - b
				ti += stride
			}
		}
	}
}

// runRadix4 executes the radix-4 decimation-in-time stages on digit-reversed
// input. Each butterfly combines four quarter-size DFT outputs
// a, b·W^k, c·W^2k, d·W^3k into
//
//	X[k]      = t0 + t2        t0 = a + c    t2 = b + d
//	X[k+q]    = t1 ∓ j·t3      t1 = a − c    t3 = b − d
//	X[k+2q]   = t0 − t2
//	X[k+3q]   = t1 ± j·t3
//
// where the ∓j factor flips sign between the forward and inverse transforms
// (it is the quarter-turn twiddle W^{n/4} = −j, conjugated for the inverse).
func (p *Plan) runRadix4(x []complex128, tw []complex128, inverse bool) {
	n := p.n
	for size := 4; size <= n; size <<= 2 {
		quarter := size >> 2
		stride := n / size
		for start := 0; start < n; start += size {
			for k := 0; k < quarter; k++ {
				i0 := start + k
				i1 := i0 + quarter
				i2 := i1 + quarter
				i3 := i2 + quarter
				ti := k * stride
				a := x[i0]
				b := x[i1] * tw[ti]
				c := x[i2] * tw[2*ti]
				d := x[i3] * tw[3*ti]
				t0 := a + c
				t1 := a - c
				t2 := b + d
				t3 := b - d
				// jt3 = −j·t3 for the forward transform, +j·t3 inverse.
				var jt3 complex128
				if inverse {
					jt3 = complex(-imag(t3), real(t3))
				} else {
					jt3 = complex(imag(t3), -real(t3))
				}
				x[i0] = t0 + t2
				x[i1] = t1 + jt3
				x[i2] = t0 - t2
				x[i3] = t1 - jt3
			}
		}
	}
}

// planCache shares immutable plans across the process. Plans are read-only,
// so handing the same *Plan to many goroutines is safe; per-goroutine state
// lives in the callers' scratch buffers, never in the plan.
var planCache sync.Map // int -> *Plan

// PlanFor returns a process-cached plan for transforms of length NextPow2(n).
// The returned plan is shared: treat it as read-only.
func PlanFor(n int) *Plan {
	size := NextPow2(n)
	if v, ok := planCache.Load(size); ok {
		return v.(*Plan)
	}
	v, _ := planCache.LoadOrStore(size, NewPlan(size))
	return v.(*Plan)
}

// DechirpScratch is the shared scratch shape behind the dechirping
// detectors, estimators and the demodulator: a conjugate chirp template
// with a padded FFT plan and work buffer, invalidated when the chirp
// geometry (length, sample rate, or the caller's comparable key — channel
// params) changes. One instance per goroutine.
type DechirpScratch[K comparable] struct {
	n    int
	rate float64
	key  K
	conj []complex128 // exp(-j·templatePhase[i])
	plan *Plan
	buf  []complex128 // plan-sized FFT buffer

	// Decimated-path scratch (DechirpDecimated), built lazily on first use
	// and invalidated with the rest of the scratch on Init.
	decFactor int
	decPlan   *Plan
	decBuf    []complex128
}

// Stale reports whether the scratch must be rebuilt for this geometry.
// Callers check it first so template phases are only computed (and
// allocated) on an actual rebuild, keeping the steady state alloc-free.
func (s *DechirpScratch[K]) Stale(key K, n int, rate float64) bool {
	return s.n != n || s.rate != rate || s.key != key
}

// Init rebuilds the template exp(-j·phase[i]) and sizes the FFT plan and
// buffer for pad·n-point transforms.
func (s *DechirpScratch[K]) Init(key K, n int, rate float64, pad int, phase []float64) {
	if cap(s.conj) < n {
		s.conj = make([]complex128, n)
	}
	s.conj = s.conj[:n]
	for i, p := range phase[:n] {
		sn, c := math.Sincos(-p)
		s.conj[i] = complex(c, sn)
	}
	s.plan = PlanFor(pad * n)
	if cap(s.buf) < s.plan.Size() {
		s.buf = make([]complex128, s.plan.Size())
	}
	s.buf = s.buf[:s.plan.Size()]
	s.n, s.rate, s.key = n, rate, key
	s.decFactor = 0 // geometry changed: rebuild the decimated plan on demand
}

// Size returns the scratch's FFT length (0 before Init).
func (s *DechirpScratch[K]) Size() int {
	if s.plan == nil {
		return 0
	}
	return s.plan.Size()
}

// Dechirp multiplies seg (length <= template) by the template into the FFT
// buffer, zero-pads, transforms in place and returns the spectrum. The
// returned slice is the scratch buffer: it is overwritten by the next call.
func (s *DechirpScratch[K]) Dechirp(seg []complex128) []complex128 {
	buf := s.buf
	for i, v := range seg {
		buf[i] = v * s.conj[i]
	}
	for i := len(seg); i < len(buf); i++ {
		buf[i] = 0
	}
	s.plan.TransformInPlace(buf)
	return buf
}

// DechirpDecimated dechirps seg at full rate, sums adjacent groups of d
// samples (boxcar decimation) and transforms the n/d-point result through a
// proportionally smaller FFT plan. Unlike plain subsampling, the boxcar
// keeps every sample in the coherent sum, so the despreading gain of the
// full window is preserved; the price is the boxcar's sinc-shaped droop
// over the decimated band (compensate per bin with BoxcarDroopSq). seg must
// be at least n samples (the template length). The returned slice is the
// decimated scratch buffer, overwritten by the next call; its spectrum
// covers ±rate/(2d), so d must leave the dechirped tones inside that band.
//
// The decimated plan/buffer are built on the first call for a given d after
// Init and reused afterwards, keeping repeated calls allocation-free.
func (s *DechirpScratch[K]) DechirpDecimated(seg []complex128, d int) []complex128 {
	if d <= 1 {
		return s.Dechirp(seg[:s.n])
	}
	m := s.n / d
	if s.decFactor != d {
		//softlora:allocfree-ok geometry rebuild on a decimation-factor change; steady state reuses the cached plan
		s.decPlan = PlanFor(m)
		if cap(s.decBuf) < s.decPlan.Size() {
			//softlora:allocfree-ok same geometry rebuild; the buffer is reused until the factor changes again
			s.decBuf = make([]complex128, s.decPlan.Size())
		}
		s.decBuf = s.decBuf[:s.decPlan.Size()]
		s.decFactor = d
	}
	buf := s.decBuf
	s.DechirpDecimateInto(buf[:m], seg, d)
	for i := m; i < len(buf); i++ {
		buf[i] = 0
	}
	s.decPlan.TransformInPlace(buf)
	return buf
}

// DechirpDecimateInto is the time-domain half of DechirpDecimated: it
// dechirps seg against the template and boxcar-sums adjacent groups of d
// samples into dst, returning dst[:n/d] without transforming. Callers that
// need both the decimated spectrum and the decimated time series (the FB
// estimator's coarse FFT + zoom refinement) use this once and transform a
// copy, keeping the time series intact. dst must have capacity ≥ n/d; the
// last n mod d samples of the template window are dropped.
func (s *DechirpScratch[K]) DechirpDecimateInto(dst []complex128, seg []complex128, d int) []complex128 {
	m := s.n / d
	dst = dst[:m]
	conj := s.conj
	for i := 0; i < m; i++ {
		var acc complex128
		base := i * d
		for r := 0; r < d; r++ {
			acc += seg[base+r] * conj[base+r]
		}
		dst[i] = acc
	}
	return dst
}

// SpectrogramPlan computes short-time Fourier transform power spectrograms
// repeatedly with one window function and one cached FFT plan, reusing its
// internal frame buffer across calls. Not safe for concurrent use — build
// one per goroutine (the shared FFT plan underneath is safe to share).
type SpectrogramPlan struct {
	window  []float64
	overlap int
	plan    *Plan
	buf     []complex128 // spectrogramBatch packed frames for TransformMany
}

// spectrogramBatch is how many windowed frames Compute packs into one
// TransformMany slab: enough to amortize the plan tables' cache refill
// across frames without the slab outgrowing L2 at the hot sizes.
const spectrogramBatch = 8

// NewSpectrogramPlan builds a spectrogram plan for the given window function
// and inter-frame overlap (in samples).
func NewSpectrogramPlan(window []float64, overlap int) *SpectrogramPlan {
	plan := PlanFor(len(window))
	return &SpectrogramPlan{
		window:  append([]float64(nil), window...),
		overlap: overlap,
		plan:    plan,
		buf:     make([]complex128, spectrogramBatch*plan.Size()),
	}
}

// hop returns the inter-frame stride in samples (>= 1).
func (s *SpectrogramPlan) hop() int {
	h := len(s.window) - s.overlap
	if h < 1 {
		h = 1
	}
	return h
}

// Frames returns how many spectrogram frames Compute produces for a trace of
// n samples.
func (s *SpectrogramPlan) Frames(n int) int {
	if len(s.window) == 0 || n < len(s.window) {
		return 0
	}
	return (n-len(s.window))/s.hop() + 1
}

// Compute appends the power spectrogram of x to dst (pass nil to allocate)
// and returns it, reusing dst's rows when their capacity allows. Rows are
// indexed as psd[frame][bin] with bins in FFT order, matching Spectrogram.
func (s *SpectrogramPlan) Compute(x []complex128, dst [][]float64) [][]float64 {
	windowLen := len(s.window)
	nFrames := s.Frames(len(x))
	if nFrames == 0 {
		return dst[:0]
	}
	hop := s.hop()
	nfft := s.plan.Size()
	if cap(dst) < nFrames {
		grown := make([][]float64, nFrames)
		copy(grown, dst[:len(dst)])
		dst = grown
	}
	dst = dst[:nFrames]
	for f0 := 0; f0 < nFrames; f0 += spectrogramBatch {
		batch := nFrames - f0
		if batch > spectrogramBatch {
			batch = spectrogramBatch
		}
		for b := 0; b < batch; b++ {
			frame := s.buf[b*nfft : (b+1)*nfft]
			start := (f0 + b) * hop
			for i := 0; i < windowLen; i++ {
				frame[i] = x[start+i] * complex(s.window[i], 0)
			}
			for i := windowLen; i < nfft; i++ {
				frame[i] = 0
			}
		}
		s.plan.TransformMany(s.buf[:batch*nfft])
		for b := 0; b < batch; b++ {
			f := f0 + b
			if cap(dst[f]) < nfft {
				dst[f] = make([]float64, nfft)
			}
			dst[f] = dst[f][:nfft]
			for i, v := range s.buf[b*nfft : (b+1)*nfft] {
				re, im := real(v), imag(v)
				dst[f][i] = re*re + im*im
			}
		}
	}
	return dst
}
