package dsp

import (
	"fmt"
	"math"
	"math/bits"
	"sync"
)

// Plan holds the precomputed state for radix-2 FFTs of one fixed
// power-of-two size: the bit-reversal permutation and the per-stage twiddle
// factors. Building a Plan costs O(n); every transform through it then runs
// without allocating and without recomputing trigonometry, which is what
// makes the per-uplink sliding-window scans of package core cheap.
//
// A Plan is immutable after construction and safe for concurrent use by
// multiple goroutines — only the caller-supplied buffers are mutated. The
// scratch buffers a caller pairs with a Plan (see the consumers in package
// core) are NOT shareable: one scratch set per goroutine.
type Plan struct {
	n    int
	perm []int32      // bit-reversal permutation targets
	fwd  []complex128 // exp(-2πik/n), k < n/2
	inv  []complex128 // exp(+2πik/n), k < n/2
}

// NewPlan builds a plan for n-point transforms. n must be a positive power
// of two.
func NewPlan(n int) *Plan {
	if !IsPow2(n) {
		panic(fmt.Sprintf("dsp: NewPlan size %d is not a power of two", n))
	}
	p := &Plan{n: n}
	p.perm = make([]int32, n)
	if n > 1 {
		shift := bits.UintSize - uint(bits.Len(uint(n-1)))
		for i := 0; i < n; i++ {
			p.perm[i] = int32(bits.Reverse(uint(i)) >> shift)
		}
	}
	half := n / 2
	p.fwd = make([]complex128, half)
	p.inv = make([]complex128, half)
	for k := 0; k < half; k++ {
		s, c := math.Sincos(-2 * math.Pi * float64(k) / float64(n))
		p.fwd[k] = complex(c, s)
		p.inv[k] = complex(c, -s)
	}
	return p
}

// Size returns the transform length the plan was built for.
func (p *Plan) Size() int { return p.n }

// Transform computes the forward DFT of src into dst without allocating.
// len(dst) must equal the plan size; src may be shorter (it is zero-padded)
// but not longer. dst and src may alias only if they are the same slice.
func (p *Plan) Transform(dst, src []complex128) {
	p.load(dst, src)
	p.run(dst, p.fwd)
}

// TransformInPlace computes the forward DFT of buf in place. len(buf) must
// equal the plan size.
func (p *Plan) TransformInPlace(buf []complex128) {
	p.checkLen(buf)
	p.run(buf, p.fwd)
}

// Inverse computes the normalized inverse DFT of src into dst without
// allocating, under the same length rules as Transform.
func (p *Plan) Inverse(dst, src []complex128) {
	p.load(dst, src)
	p.run(dst, p.inv)
	p.normalize(dst)
}

// InverseInPlace computes the normalized inverse DFT of buf in place.
// len(buf) must equal the plan size.
func (p *Plan) InverseInPlace(buf []complex128) {
	p.checkLen(buf)
	p.run(buf, p.inv)
	p.normalize(buf)
}

func (p *Plan) checkLen(buf []complex128) {
	if len(buf) != p.n {
		panic(fmt.Sprintf("dsp: plan size %d, buffer length %d", p.n, len(buf)))
	}
}

// load copies src into dst, zero-padding the tail.
func (p *Plan) load(dst, src []complex128) {
	p.checkLen(dst)
	if len(src) > p.n {
		panic(fmt.Sprintf("dsp: plan size %d, source length %d", p.n, len(src)))
	}
	if len(src) > 0 && &dst[0] != &src[0] {
		copy(dst, src)
	}
	for i := len(src); i < p.n; i++ {
		dst[i] = 0
	}
}

func (p *Plan) normalize(buf []complex128) {
	inv := complex(1/float64(p.n), 0)
	for i := range buf {
		buf[i] *= inv
	}
}

// run executes the iterative radix-2 butterflies with table twiddles. The
// table lookup replaces the running product w *= wBase of the unplanned FFT,
// which both removes the per-butterfly complex multiply and stops rounding
// error from accumulating across a stage.
func (p *Plan) run(x []complex128, tw []complex128) {
	n := p.n
	if n <= 1 {
		return
	}
	for i, pi := range p.perm {
		if j := int(pi); j > i {
			x[i], x[j] = x[j], x[i]
		}
	}
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		stride := n / size
		for start := 0; start < n; start += size {
			ti := 0
			for k := start; k < start+half; k++ {
				a := x[k]
				b := x[k+half] * tw[ti]
				x[k] = a + b
				x[k+half] = a - b
				ti += stride
			}
		}
	}
}

// planCache shares immutable plans across the process. Plans are read-only,
// so handing the same *Plan to many goroutines is safe; per-goroutine state
// lives in the callers' scratch buffers, never in the plan.
var planCache sync.Map // int -> *Plan

// PlanFor returns a process-cached plan for transforms of length NextPow2(n).
// The returned plan is shared: treat it as read-only.
func PlanFor(n int) *Plan {
	size := NextPow2(n)
	if v, ok := planCache.Load(size); ok {
		return v.(*Plan)
	}
	v, _ := planCache.LoadOrStore(size, NewPlan(size))
	return v.(*Plan)
}

// DechirpScratch is the shared scratch shape behind the dechirping
// detectors, estimators and the demodulator: a conjugate chirp template
// with a padded FFT plan and work buffer, invalidated when the chirp
// geometry (length, sample rate, or the caller's comparable key — channel
// params) changes. One instance per goroutine.
type DechirpScratch[K comparable] struct {
	n    int
	rate float64
	key  K
	conj []complex128 // exp(-j·templatePhase[i])
	plan *Plan
	buf  []complex128 // plan-sized FFT buffer
}

// Stale reports whether the scratch must be rebuilt for this geometry.
// Callers check it first so template phases are only computed (and
// allocated) on an actual rebuild, keeping the steady state alloc-free.
func (s *DechirpScratch[K]) Stale(key K, n int, rate float64) bool {
	return s.n != n || s.rate != rate || s.key != key
}

// Init rebuilds the template exp(-j·phase[i]) and sizes the FFT plan and
// buffer for pad·n-point transforms.
func (s *DechirpScratch[K]) Init(key K, n int, rate float64, pad int, phase []float64) {
	if cap(s.conj) < n {
		s.conj = make([]complex128, n)
	}
	s.conj = s.conj[:n]
	for i, p := range phase[:n] {
		sn, c := math.Sincos(-p)
		s.conj[i] = complex(c, sn)
	}
	s.plan = PlanFor(pad * n)
	if cap(s.buf) < s.plan.Size() {
		s.buf = make([]complex128, s.plan.Size())
	}
	s.buf = s.buf[:s.plan.Size()]
	s.n, s.rate, s.key = n, rate, key
}

// Size returns the scratch's FFT length (0 before Init).
func (s *DechirpScratch[K]) Size() int {
	if s.plan == nil {
		return 0
	}
	return s.plan.Size()
}

// Dechirp multiplies seg (length <= template) by the template into the FFT
// buffer, zero-pads, transforms in place and returns the spectrum. The
// returned slice is the scratch buffer: it is overwritten by the next call.
func (s *DechirpScratch[K]) Dechirp(seg []complex128) []complex128 {
	buf := s.buf
	for i, v := range seg {
		buf[i] = v * s.conj[i]
	}
	for i := len(seg); i < len(buf); i++ {
		buf[i] = 0
	}
	s.plan.TransformInPlace(buf)
	return buf
}

// SpectrogramPlan computes short-time Fourier transform power spectrograms
// repeatedly with one window function and one cached FFT plan, reusing its
// internal frame buffer across calls. Not safe for concurrent use — build
// one per goroutine (the shared FFT plan underneath is safe to share).
type SpectrogramPlan struct {
	window  []float64
	overlap int
	plan    *Plan
	buf     []complex128
}

// NewSpectrogramPlan builds a spectrogram plan for the given window function
// and inter-frame overlap (in samples).
func NewSpectrogramPlan(window []float64, overlap int) *SpectrogramPlan {
	plan := PlanFor(len(window))
	return &SpectrogramPlan{
		window:  append([]float64(nil), window...),
		overlap: overlap,
		plan:    plan,
		buf:     make([]complex128, plan.Size()),
	}
}

// hop returns the inter-frame stride in samples (>= 1).
func (s *SpectrogramPlan) hop() int {
	h := len(s.window) - s.overlap
	if h < 1 {
		h = 1
	}
	return h
}

// Frames returns how many spectrogram frames Compute produces for a trace of
// n samples.
func (s *SpectrogramPlan) Frames(n int) int {
	if len(s.window) == 0 || n < len(s.window) {
		return 0
	}
	return (n-len(s.window))/s.hop() + 1
}

// Compute appends the power spectrogram of x to dst (pass nil to allocate)
// and returns it, reusing dst's rows when their capacity allows. Rows are
// indexed as psd[frame][bin] with bins in FFT order, matching Spectrogram.
func (s *SpectrogramPlan) Compute(x []complex128, dst [][]float64) [][]float64 {
	windowLen := len(s.window)
	nFrames := s.Frames(len(x))
	if nFrames == 0 {
		return dst[:0]
	}
	hop := s.hop()
	nfft := s.plan.Size()
	if cap(dst) < nFrames {
		grown := make([][]float64, nFrames)
		copy(grown, dst[:len(dst)])
		dst = grown
	}
	dst = dst[:nFrames]
	for f := 0; f < nFrames; f++ {
		start := f * hop
		for i := 0; i < windowLen; i++ {
			s.buf[i] = x[start+i] * complex(s.window[i], 0)
		}
		for i := windowLen; i < nfft; i++ {
			s.buf[i] = 0
		}
		s.plan.TransformInPlace(s.buf)
		if cap(dst[f]) < nfft {
			dst[f] = make([]float64, nfft)
		}
		dst[f] = dst[f][:nfft]
		for i, v := range s.buf {
			re, im := real(v), imag(v)
			dst[f][i] = re*re + im*im
		}
	}
	return dst
}
