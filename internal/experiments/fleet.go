package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"softlora/internal/core"
	"softlora/internal/faultinject"
	"softlora/internal/netserver"
	"softlora/internal/vfs"
)

// FleetConfig sizes the fleet durability driver. Zero values select the
// full-scale defaults (a million devices, millions of verdicts).
type FleetConfig struct {
	// Devices is the enrolled fleet size.
	Devices int
	// Verdicts is the total number of frame verdicts to issue.
	Verdicts int
	// Batch is the number of observations per CheckBatch call.
	Batch int
	// Workers is the number of concurrent load-generator goroutines
	// (GOMAXPROCS when 0).
	Workers int
	// Dir is the snapshot directory the background flusher writes while
	// the load runs. Empty creates a temp directory and removes it when
	// the driver finishes.
	Dir string
	// FlushInterval is the background flusher's cycle period.
	FlushInterval time.Duration
	// FaultRate is the per-filesystem-op probability of an injected
	// recoverable fault (write error, short write, ENOSPC) while the
	// flusher runs.
	FaultRate float64
	// ReplayRate is the fraction of verdicts issued with an off-band
	// attacker bias, exercising the replay branch under load.
	ReplayRate float64
	// Receivers > 1 switches the load to streaming multi-receiver
	// traffic: each frame is delivered as Receivers gateway copies,
	// perturbed by a seeded traffic injector (duplicates, bounded
	// reorder, delay) and split across CheckBatch calls, so the dedup
	// window — not intra-call grouping — must reassemble it. The driver
	// then asserts exactly one committed verdict per frame.
	Receivers int
	// WindowHold is the streaming mode's dedup window hold in seconds on
	// the observation clock (0.05 when 0).
	WindowHold float64
	// Seed drives the deterministic load pattern.
	Seed int64
}

// FleetResult is what the driver measured.
type FleetResult struct {
	Config FleetConfig

	// Enroll phase.
	EnrollDuration time.Duration

	// Check phase: verdicts issued through CheckBatch while the flusher
	// and fault injector ran.
	CheckDuration  time.Duration
	Verdicts       int64
	VerdictsPerSec float64
	Replays        int64
	Enrolling      int64
	Stats          netserver.Stats

	// Streaming mode (Receivers > 1): frames generated, verdicts the
	// window committed (asserted equal), and post-commit revisions.
	Frames  int64
	Revised int64

	// Flusher + injector counters over the check phase.
	Flush          netserver.FlushStats
	FSOps          int
	FaultsInjected int

	// Recovery from the fault-scarred directory into a fresh server.
	Recovery         netserver.RecoveryStats
	RecoveredDevices int

	// Clean save/load round trip of the full database.
	SaveDuration   time.Duration
	LoadDuration   time.Duration
	SnapshotBytes  int64
	BytesPerDevice float64
}

// Fleet proves the network server at deployment scale: it enrolls
// cfg.Devices devices, then issues cfg.Verdicts frame verdicts through
// CheckBatch from concurrent workers while a background Flusher persists
// dirty shards through a probabilistically faulty filesystem. When the load
// stops it drains the remaining dirty shards through a clean filesystem,
// recovers the directory into a fresh server, verifies the recovered
// database matches the live one, and measures a clean full save/load round
// trip plus the snapshot's bytes-per-device footprint.
func Fleet(cfg FleetConfig) (FleetResult, error) {
	if cfg.Devices <= 0 {
		cfg.Devices = 1_000_000
	}
	if cfg.Verdicts <= 0 {
		cfg.Verdicts = 2_000_000
	}
	if cfg.Batch <= 0 {
		cfg.Batch = 64
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.FlushInterval <= 0 {
		cfg.FlushInterval = 500 * time.Millisecond
	}
	if cfg.FaultRate < 0 {
		cfg.FaultRate = 0
	}
	if cfg.ReplayRate <= 0 {
		cfg.ReplayRate = 0.02
	}
	if cfg.Seed == 0 {
		cfg.Seed = Seed
	}
	streaming := cfg.Receivers > 1
	if streaming && cfg.WindowHold <= 0 {
		cfg.WindowHold = 0.05
	}
	res := FleetResult{Config: cfg}

	dir := cfg.Dir
	if dir == "" {
		tmp, err := os.MkdirTemp("", "softlora-fleet-")
		if err != nil {
			return res, err
		}
		defer os.RemoveAll(tmp)
		dir = tmp
	}

	scfg := netserver.Config{}
	if streaming {
		scfg.Window = netserver.WindowConfig{
			Hold:         cfg.WindowHold,
			MaxReceivers: cfg.Receivers,
			// Injected delays are small; a deep late horizon keeps every
			// late copy reconciling instead of re-verdicting.
			LateHorizon: 1e9,
		}
	}
	s := netserver.New(scfg)

	// Enroll phase: the fleet, split across workers.
	start := time.Now()
	var wg sync.WaitGroup
	per := (cfg.Devices + cfg.Workers - 1) / cfg.Workers
	for w := 0; w < cfg.Workers; w++ {
		lo, hi := w*per, (w+1)*per
		if hi > cfg.Devices {
			hi = cfg.Devices
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				s.Enroll(fleetID(i), fleetBias(i), 10)
			}
		}(lo, hi)
	}
	wg.Wait()
	res.EnrollDuration = time.Since(start)
	if got := s.Devices(); got != cfg.Devices {
		return res, fmt.Errorf("fleet: enrolled %d of %d devices", got, cfg.Devices)
	}

	// Check phase: verdict load with the flusher persisting through an
	// unreliable filesystem underneath.
	inj := faultinject.New(vfs.OS{})
	if cfg.FaultRate > 0 {
		inj.Probabilistic(rand.New(rand.NewSource(cfg.Seed+1)), cfg.FaultRate,
			faultinject.KindFail, faultinject.KindShortWrite, faultinject.KindENOSPC)
	}
	fl, err := netserver.StartFlusher(s, dir, netserver.FlusherOptions{
		Interval: cfg.FlushInterval,
		FS:       inj,
	})
	if err != nil {
		return res, err
	}

	var next, issued, frames, revised, replays, enrolling atomic.Int64
	tally := func(verdicts []netserver.FrameVerdict) {
		for _, v := range verdicts {
			if v.Revised {
				revised.Add(1)
				continue
			}
			issued.Add(1)
			switch v.Verdict {
			case core.VerdictReplay:
				replays.Add(1)
			case core.VerdictEnrolling:
				enrolling.Add(1)
			}
		}
	}
	start = time.Now()
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + 100 + int64(worker)))
			if streaming {
				fleetStreamWorker(s, cfg, worker, rng, &next, &frames, tally)
				return
			}
			obs := make([]netserver.PHYObservation, cfg.Batch)
			for {
				base := next.Add(int64(cfg.Batch)) - int64(cfg.Batch)
				if base >= int64(cfg.Verdicts) {
					return
				}
				for j := range obs {
					dev := rng.Intn(cfg.Devices)
					fb := fleetBias(dev) + rng.NormFloat64()*40
					if rng.Float64() < cfg.ReplayRate {
						// The replay step's attacker transmits through its
						// own oscillator: a gross, off-band bias.
						fb = fleetBias(dev) + 3e3
					}
					obs[j] = netserver.PHYObservation{
						GatewayID:   "gw-fleet",
						DeviceID:    fleetID(dev),
						UplinkIndex: base + int64(j),
						FBHz:        fb,
						JitterHz:    40,
						ArrivalTime: 1000 + float64(base+int64(j))*1e-4,
					}
				}
				verdicts, err := s.CheckBatch(obs)
				if err != nil {
					return
				}
				tally(verdicts)
			}
		}(w)
	}
	wg.Wait()
	if streaming {
		// End of stream: commit what the window still holds and collect
		// the queued verdicts, then prove the invariant the window
		// exists for — exactly one committed verdict per frame, no
		// matter how the injector split, duplicated and delayed copies.
		tally(s.DrainWindow())
		res.Frames = frames.Load()
		res.Revised = revised.Load()
		if got := issued.Load(); got != res.Frames {
			return res, fmt.Errorf("fleet: %d committed verdicts for %d frames", got, res.Frames)
		}
	}
	res.CheckDuration = time.Since(start)
	res.Verdicts = issued.Load()
	res.VerdictsPerSec = float64(res.Verdicts) / res.CheckDuration.Seconds()
	res.Replays = replays.Load()
	res.Enrolling = enrolling.Load()
	res.Stats = s.Stats()

	// One forced cycle while the injector is still armed, so short runs
	// exercise the flush-under-faults path even when the load finished
	// between ticks. Its error, if any, is the injector doing its job.
	_ = fl.FlushNow()

	// The fault phase is over: record the injector's tallies, then let the
	// flusher's final flush drain every still-dirty shard through a clean
	// filesystem — injected faults defer durability, they never lose it,
	// so the drain must converge without error.
	res.FSOps = inj.Ops()
	res.FaultsInjected = inj.Injected()
	inj.Reset()
	if err := fl.Close(); err != nil {
		return res, fmt.Errorf("fleet: final flush: %w", err)
	}
	res.Flush = fl.Stats()

	// Recovery: the fault-scarred directory must load into a fresh server
	// as exactly the live database.
	fresh := netserver.New(netserver.Config{})
	start = time.Now()
	rec, err := fresh.LoadDir(nil, dir)
	if err != nil {
		return res, fmt.Errorf("fleet: recovery: %w", err)
	}
	res.LoadDuration = time.Since(start)
	res.Recovery = rec
	res.RecoveredDevices = fresh.Devices()
	if res.RecoveredDevices != cfg.Devices {
		return res, fmt.Errorf("fleet: recovered %d of %d devices", res.RecoveredDevices, cfg.Devices)
	}
	if err := fleetSpotCheck(s, fresh, cfg.Devices); err != nil {
		return res, err
	}

	// Clean full-save timing + on-disk footprint, into a pristine
	// directory so the sizes reflect one generation.
	cleanDir := filepath.Join(dir, "clean")
	if err := os.RemoveAll(cleanDir); err != nil {
		return res, err
	}
	start = time.Now()
	if err := s.SaveDir(nil, cleanDir); err != nil {
		return res, fmt.Errorf("fleet: clean save: %w", err)
	}
	res.SaveDuration = time.Since(start)
	entries, err := os.ReadDir(cleanDir)
	if err != nil {
		return res, err
	}
	for _, e := range entries {
		if info, err := e.Info(); err == nil && !e.IsDir() {
			res.SnapshotBytes += info.Size()
		}
	}
	res.BytesPerDevice = float64(res.SnapshotBytes) / float64(cfg.Devices)
	return res, nil
}

// fleetStreamWorker is the streaming-mode load body: it claims spans of
// frame indices, renders each frame as cfg.Receivers gateway copies,
// perturbs the span's delivery through a seeded traffic injector
// (duplicates, bounded reorder, sub-hold delays — never drops, every
// frame must be judged), and hands the schedule to the server split
// across several CheckBatch calls. Each worker draws devices from its own
// residue class, so one device's frames stay causally ordered within one
// goroutine — the window's documented reorder contract.
func fleetStreamWorker(s *netserver.NetworkServer, cfg FleetConfig, worker int,
	rng *rand.Rand, next, frames *atomic.Int64, tally func([]netserver.FrameVerdict)) {
	inj := faultinject.NewTraffic(faultinject.TrafficPlan{
		Seed:          cfg.Seed + 500 + int64(worker),
		DupProb:       0.2,
		DupBurst:      2,
		ReorderWindow: 2 * cfg.Receivers,
		DelayProb:     0.1,
		MaxDelay:      cfg.WindowHold / 2,
	},
		func(o netserver.PHYObservation) string { return o.GatewayID },
		func(o netserver.PHYObservation, d float64) netserver.PHYObservation {
			o.ArrivalTime += d
			return o
		})
	span := cfg.Devices / cfg.Workers
	if span <= 0 {
		span = 1
	}
	logical := make([]netserver.PHYObservation, 0, cfg.Batch*cfg.Receivers)
	for {
		base := next.Add(int64(cfg.Batch)) - int64(cfg.Batch)
		if base >= int64(cfg.Verdicts) {
			return
		}
		logical = logical[:0]
		for j := 0; j < cfg.Batch; j++ {
			k := base + int64(j)
			dev := (rng.Intn(span)*cfg.Workers + worker) % cfg.Devices
			bias := fleetBias(dev)
			attack := rng.Float64() < cfg.ReplayRate
			for g := 0; g < cfg.Receivers; g++ {
				fb := bias + rng.NormFloat64()*40
				if attack {
					// A replayed frame shifts common-mode across every
					// receiver: the attacker's oscillator, not the link.
					fb = bias + 3e3 + rng.NormFloat64()*40
				}
				logical = append(logical, netserver.PHYObservation{
					GatewayID:   fmt.Sprintf("gw-%02d", g),
					DeviceID:    fleetID(dev),
					FrameID:     fmt.Sprintf("fr-%d", k),
					UplinkIndex: k,
					FBHz:        fb,
					JitterHz:    40,
					ArrivalTime: 1000 + float64(k)*1e-4,
				})
			}
			frames.Add(1)
		}
		schedule := inj.Schedule(logical)
		// Split the span across calls: the window, not intra-call
		// grouping, must reassemble the copies.
		for _, b := range faultinject.SplitBatches(schedule, len(schedule)/3+1) {
			verdicts, err := s.CheckBatch(b)
			if err != nil {
				return
			}
			tally(verdicts)
		}
	}
}

// fleetID and fleetBias derive a device's identity and enrolled oscillator
// bias from its index, so load generators never need a shared table.
func fleetID(i int) string { return fmt.Sprintf("fleet-%07d", i) }

func fleetBias(i int) float64 {
	// RN2483-like −29..−20 ppm at 868 MHz ≈ −25..−17 kHz, spread
	// deterministically across the fleet.
	return -25e3 + float64(i%97)*85
}

// fleetSpotCheck compares a deterministic sample of records between the
// live and the recovered database.
func fleetSpotCheck(live, recovered *netserver.NetworkServer, devices int) error {
	step := devices/1000 + 1
	for i := 0; i < devices; i += step {
		id := fleetID(i)
		a, okA := live.Record(id)
		b, okB := recovered.Record(id)
		if okA != okB || a != b {
			return fmt.Errorf("fleet: device %s diverged after recovery: %+v vs %+v", id, a, b)
		}
	}
	return nil
}

// PrintFleet prints the driver's report.
func PrintFleet(w io.Writer, r FleetResult) {
	section(w, "Fleet durability driver (extension)")
	c := r.Config
	fmt.Fprintf(w, "fleet: %d devices enrolled in %.2f s (%d workers)\n",
		c.Devices, r.EnrollDuration.Seconds(), c.Workers)
	fmt.Fprintf(w, "load:  %d verdicts via CheckBatch(%d) in %.2f s = %.0f verdicts/s\n",
		r.Verdicts, c.Batch, r.CheckDuration.Seconds(), r.VerdictsPerSec)
	fmt.Fprintf(w, "       %d replays flagged, %d enrolling, %d observations consumed\n",
		r.Replays, r.Enrolling, r.Stats.Observations)
	if c.Receivers > 1 {
		fmt.Fprintf(w, "window: %d frames x %d receivers, hold %.0f ms: one committed verdict each (proven), %d revised\n",
			r.Frames, c.Receivers, c.WindowHold*1e3, r.Revised)
		fmt.Fprintf(w, "        %d merged across calls, %d late copies reconciled, %d shed, %d dup-suppressed, %d gateways quarantined\n",
			r.Stats.WindowMerged, r.Stats.LateObservations, r.Stats.WindowShed,
			r.Stats.DuplicatesSuppressed, r.Stats.GatewaysQuarantined)
	}
	fmt.Fprintf(w, "flush: %d cycles, %d shard snapshots, interval %s\n",
		r.Flush.Cycles, r.Flush.ShardsFlushed, c.FlushInterval)
	fmt.Fprintf(w, "faults: %d of %d fs ops injected (rate %.0f%%): %d flush errors, %d retries, %d gave up\n",
		r.FaultsInjected, r.FSOps, c.FaultRate*100, r.Flush.Errors, r.Flush.Retries, r.Flush.GaveUp)
	fmt.Fprintf(w, "recovery: %d/%d devices from %d shard files in %.2f s (%d newest gen, %d older gen, %d lost, %d quarantined)\n",
		r.RecoveredDevices, c.Devices, r.Recovery.ShardFiles, r.LoadDuration.Seconds(),
		r.Recovery.ShardsLoaded, r.Recovery.ShardsRecoveredOlder, r.Recovery.ShardsLost,
		r.Recovery.FilesQuarantined)
	fmt.Fprintf(w, "snapshot: clean full save %.2f s, %d bytes on disk = %.1f bytes/device\n",
		r.SaveDuration.Seconds(), r.SnapshotBytes, r.BytesPerDevice)
}
