// Package experiments regenerates every table and figure of the paper's
// evaluation from the simulated substrates. Each experiment returns
// structured rows and can print them in the same layout the paper reports,
// alongside the paper's measured values where applicable.
//
// The package is consumed by the repository's bench harness
// (bench_test.go, one benchmark per table/figure) and by cmd/experiments.
package experiments

import (
	"fmt"
	"io"
	"math/rand"
)

// Seed is the deterministic seed all experiments derive their randomness
// from, so printed tables are reproducible run to run.
const Seed = 20200707 // ICDCS 2020 presentation week

// newRand returns the deterministic random source for an experiment,
// offset so experiments are independent.
func newRand(offset int64) *rand.Rand {
	return rand.New(rand.NewSource(Seed + offset))
}

// section prints a table/figure header.
func section(w io.Writer, title string) {
	fmt.Fprintf(w, "\n=== %s ===\n", title)
}
