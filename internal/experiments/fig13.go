package experiments

import (
	"fmt"
	"io"

	"softlora/internal/attack"
	"softlora/internal/core"
	"softlora/internal/dsp"
	"softlora/internal/lora"
	"softlora/internal/sdr"
)

// Fig13Row summarizes one node's estimated FBs over 20 original and 20
// replayed frames (Fig. 13's error bars).
type Fig13Row struct {
	NodeID   string
	Original dsp.BoxStats // Hz
	Replayed dsp.BoxStats // Hz
	// ExtraHz is the mean additional bias the replay introduced.
	ExtraHz float64
}

// Fig13 estimates the FBs of a 16-node fleet from original and
// USRP-replayed transmissions (20 frames each). The paper measures
// original biases of −25 to −17 kHz and replay-added biases of −543 to
// −743 Hz.
func Fig13(framesPerNode int) ([]Fig13Row, error) {
	if framesPerNode <= 0 {
		framesPerNode = 20
	}
	rng := newRand(13)
	const rate = sdr.DefaultSampleRate
	p := lora.DefaultParams(7)
	fleet := lora.NewFleet(16, -29, -20, rng)
	replayer := &attack.Replayer{FrequencyBiasHz: -643, JitterHz: 40, Rand: rng}
	est := &core.LinearRegressionEstimator{Params: p}
	rows := make([]Fig13Row, 0, len(fleet))
	for _, tx := range fleet {
		var orig, rep []float64
		for f := 0; f < framesPerNode; f++ {
			imp := tx.NextImpairments(p, rng)
			spec := lora.ChirpSpec{
				SF:              p.SF,
				Bandwidth:       p.Bandwidth,
				FrequencyOffset: imp.FrequencyBias,
				Phase:           imp.InitialPhase,
			}
			iq := spec.Synthesize(rate)
			noise := dsp.GaussianNoise(rng, len(iq), 0.01)
			for i := range iq {
				iq[i] += noise[i]
			}
			e, err := est.EstimateFB(iq, rate)
			if err != nil {
				return nil, fmt.Errorf("experiments: fig 13 original: %w", err)
			}
			orig = append(orig, e.DeltaHz)
			// The replayer re-emits the same waveform through its own
			// front end.
			replayed := replayer.Reemit(iq, rate)
			er, err := est.EstimateFB(replayed, rate)
			if err != nil {
				return nil, fmt.Errorf("experiments: fig 13 replayed: %w", err)
			}
			rep = append(rep, er.DeltaHz)
		}
		rows = append(rows, Fig13Row{
			NodeID:   tx.ID,
			Original: dsp.Summarize(orig),
			Replayed: dsp.Summarize(rep),
			ExtraHz:  dsp.Mean(rep) - dsp.Mean(orig),
		})
	}
	return rows, nil
}

// PrintFig13 renders the per-node FB comparison.
func PrintFig13(w io.Writer, rows []Fig13Row) {
	section(w, "Fig. 13: FBs of 16 nodes, original vs USRP-replayed (kHz)")
	fmt.Fprintf(w, "%-9s | %9s [%9s,%9s] | %9s [%9s,%9s] | %8s\n",
		"node", "orig", "min", "max", "replayed", "min", "max", "extra(Hz)")
	var extras []float64
	for _, r := range rows {
		fmt.Fprintf(w, "%-9s | %9.2f [%9.2f,%9.2f] | %9.2f [%9.2f,%9.2f] | %8.0f\n",
			r.NodeID,
			r.Original.Mean/1e3, r.Original.Min/1e3, r.Original.Max/1e3,
			r.Replayed.Mean/1e3, r.Replayed.Min/1e3, r.Replayed.Max/1e3,
			r.ExtraHz)
		extras = append(extras, r.ExtraHz)
	}
	lo, hi := dsp.MinMax(extras)
	fmt.Fprintf(w, "replay-added FB across fleet: %.0f to %.0f Hz (paper: −543 to −743 Hz)\n", lo, hi)
}
