package experiments

import (
	"fmt"
	"io"

	"softlora/internal/attack"
	"softlora/internal/core"
	"softlora/internal/dsp"
	"softlora/internal/lora"
	"softlora/internal/sdr"
)

// Fig16Row is one transmit-power setting of the FB-vs-power experiment.
type Fig16Row struct {
	TxPowerdBm float64
	// Box stats of the estimated FB (kHz) at the three observation points.
	Eavesdropper dsp.BoxStats
	Gateway      dsp.BoxStats
	Replayed     dsp.BoxStats
}

// Fig16 sweeps the end device's transmit power and estimates FBs at the
// eavesdropper, at the SoftLoRa gateway (no attack), and at the gateway for
// USRP-replayed waveforms. Two different USRPs act as eavesdropper and
// replayer, so their biases superimpose on the replayed path (the paper
// measures ≈2 kHz additional FB in this setup).
func Fig16(framesPerPoint int) ([]Fig16Row, error) {
	if framesPerPoint <= 0 {
		framesPerPoint = 12
	}
	rng := newRand(16)
	const rate = sdr.DefaultSampleRate
	p := lora.DefaultParams(8)
	p.LowDataRateOptimize = false
	device := &lora.Transmitter{ID: "ed", BiasPPM: -25, PowerdBm: 14}
	// Distinct receiver biases: the eavesdropper USRP, the gateway's
	// RTL-SDR, and the replayer USRP.
	// Chosen so the replayed row sits ≈2 kHz above the gateway row, as the
	// paper measures with two superimposed USRP biases:
	// extra = −eaveBias + replayerBias = +1.2 + 0.8 = +2.0 kHz.
	const (
		eaveBias     = -1.2e3 // eavesdropper USRP δRx
		gatewayBias  = +0.8e3 // SoftLoRa RTL-SDR δRx
		replayerBias = +0.8e3 // replayer USRP δTx (adds on re-emission)
	)
	replayer := &attack.Replayer{FrequencyBiasHz: replayerBias, JitterHz: 25, Rand: rng}
	est := &core.LinearRegressionEstimator{Params: p}
	powers := []float64{3.6, 4.7, 5.8, 6.9, 8.1, 9.3, 10.4}
	rows := make([]Fig16Row, 0, len(powers))
	for _, pw := range powers {
		var eave, gw, rep []float64
		for f := 0; f < framesPerPoint; f++ {
			imp := device.NextImpairments(p, rng)
			spec := lora.ChirpSpec{
				SF:              p.SF,
				Bandwidth:       p.Bandwidth,
				FrequencyOffset: imp.FrequencyBias,
				Phase:           imp.InitialPhase,
			}
			iq := spec.Synthesize(rate)
			// Higher TX power → higher received SNR at every observer.
			noisePower := dsp.FromdB(-(pw - 3.6 + 12)) // 12–19 dB SNR range
			addNoise := func(x []complex128) []complex128 {
				n := dsp.GaussianNoise(rng, len(x), noisePower)
				out := make([]complex128, len(x))
				for i := range x {
					out[i] = x[i] + n[i]
				}
				return out
			}
			rotate := func(x []complex128, bias float64) []complex128 {
				r := &attack.Replayer{FrequencyBiasHz: -bias} // rotation by −bias ≡ receiver bias
				return r.Reemit(x, rate)
			}
			// Eavesdropper view (its USRP bias subtracts).
			e, err := est.EstimateFB(addNoise(rotate(iq, eaveBias)), rate)
			if err != nil {
				return nil, fmt.Errorf("experiments: fig 16 eavesdropper: %w", err)
			}
			eave = append(eave, e.DeltaHz)
			// Gateway view, no attack.
			g, err := est.EstimateFB(addNoise(rotate(iq, gatewayBias)), rate)
			if err != nil {
				return nil, fmt.Errorf("experiments: fig 16 gateway: %w", err)
			}
			gw = append(gw, g.DeltaHz)
			// Replayed view: recorded by the eavesdropper (its bias baked
			// in), re-emitted by the replayer (its bias added), received
			// by the gateway (its bias subtracted).
			recorded := rotate(iq, eaveBias)
			replayed := rotate(replayer.Reemit(recorded, rate), gatewayBias)
			r, err := est.EstimateFB(addNoise(replayed), rate)
			if err != nil {
				return nil, fmt.Errorf("experiments: fig 16 replayed: %w", err)
			}
			rep = append(rep, r.DeltaHz)
		}
		rows = append(rows, Fig16Row{
			TxPowerdBm:   pw,
			Eavesdropper: dsp.Summarize(eave),
			Gateway:      dsp.Summarize(gw),
			Replayed:     dsp.Summarize(rep),
		})
	}
	return rows, nil
}

// PrintFig16 renders the power sweep.
func PrintFig16(w io.Writer, rows []Fig16Row) {
	section(w, "Fig. 16: estimated FB vs end-device TX power (kHz)")
	fmt.Fprintf(w, "%10s | %12s %12s %12s | %10s\n",
		"power(dBm)", "eavesdrop", "gateway", "replayed", "extra(kHz)")
	for _, r := range rows {
		fmt.Fprintf(w, "%10.1f | %12.2f %12.2f %12.2f | %10.2f\n",
			r.TxPowerdBm,
			r.Eavesdropper.Mean/1e3, r.Gateway.Mean/1e3, r.Replayed.Mean/1e3,
			(r.Replayed.Mean-r.Gateway.Mean)/1e3)
	}
	fmt.Fprintf(w, "paper: rows differ by receiver bias; replay adds ≈2 kHz (two superimposed USRPs); power has little effect\n")
}
