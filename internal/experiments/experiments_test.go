package experiments

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestTable1MatchesPaperShape(t *testing.T) {
	rows, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if rel := math.Abs(r.W2-r.PaperW2) / r.PaperW2; rel > 0.25 {
			t.Errorf("SF%d/%dB: w2 %.1f vs paper %.0f (%.0f%%)", r.SF, r.PayloadLen, r.W2, r.PaperW2, rel*100)
		}
		if r.W1 >= r.W2 || r.W2 >= r.W3 {
			t.Errorf("SF%d/%dB: window ordering broken", r.SF, r.PayloadLen)
		}
	}
	var buf bytes.Buffer
	PrintTable1(&buf, rows)
	if !strings.Contains(buf.String(), "Table 1") {
		t.Error("printer missing header")
	}
}

func TestTable2AICBeatsEnvelope(t *testing.T) {
	res := Table2()
	if len(res.AICI) != 10 || len(res.EnvI) != 10 {
		t.Fatalf("trials: %d/%d", len(res.AICI), len(res.EnvI))
	}
	var aicMax, envMax float64
	for i := range res.AICI {
		aicMax = math.Max(aicMax, math.Max(res.AICI[i], res.AICQ[i]))
		envMax = math.Max(envMax, math.Max(res.EnvI[i], res.EnvQ[i]))
	}
	if aicMax > 2.5 {
		t.Errorf("AIC max error %.2f µs, paper reports < 2", aicMax)
	}
	if envMax > 15 {
		t.Errorf("envelope max error %.2f µs, paper reports ≤ 9.8", envMax)
	}
	var buf bytes.Buffer
	PrintTable2(&buf, res)
	if !strings.Contains(buf.String(), "AIC I") {
		t.Error("printer missing rows")
	}
}

func TestFig6SweepIsLinear(t *testing.T) {
	r := Fig6()
	if r.Frames < 15 {
		t.Errorf("frames = %d, want ~20", r.Frames)
	}
	// Sweep rate ≈ W²/2^SF = 122.07 MHz/s.
	want := 125e3 * 125e3 / 128
	if math.Abs(r.SweepFit.Slope-want) > 0.05*want {
		t.Errorf("sweep = %.2f MHz/s, want %.2f", r.SweepFit.Slope/1e6, want/1e6)
	}
	// The 128-point window quantizes frequency to 18.75 kHz bins (the
	// coarse resolution the paper's §6.1.2 complains about), so the fit is
	// a staircase: demand linear trend, not exactness.
	if r.SweepFit.R2 < 0.95 {
		t.Errorf("sweep linearity R² = %.3f", r.SweepFit.R2)
	}
	var buf bytes.Buffer
	PrintFig6(&buf, r)
	if !strings.Contains(buf.String(), "sweep rate") {
		t.Error("printer output incomplete")
	}
}

func TestFig7PhaseChangesShape(t *testing.T) {
	r := Fig7()
	// θ=0 vs θ=π: antiphase cosine → strong negative correlation.
	if r.Correlation > -0.9 {
		t.Errorf("correlation = %.3f, want ≈ −1", r.Correlation)
	}
	if r.MaxDiff < 1 {
		t.Errorf("max diff = %.2f, want large", r.MaxDiff)
	}
}

func TestFig8BiasShiftsDip(t *testing.T) {
	r := Fig8()
	// δ = −22.8 kHz moves the dip later: (W/2−δ)/k vs (W/2)/k.
	if r.DipBiasedMs <= r.DipUnbiasedMs {
		t.Errorf("dip did not shift: %.3f vs %.3f ms", r.DipBiasedMs, r.DipUnbiasedMs)
	}
	k := 125e3 * 125e3 / 128
	wantShift := -r.BiasHz / k * 1e3
	gotShift := r.DipBiasedMs - r.DipUnbiasedMs
	if math.Abs(gotShift-wantShift) > 0.08 {
		t.Errorf("dip shift = %.3f ms, want %.3f", gotShift, wantShift)
	}
}

func TestFig9DetectorsAgree(t *testing.T) {
	r, err := Fig9()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.AICPickMs-r.TrueOnsetMs) > 0.005 {
		t.Errorf("AIC pick %.4f ms vs true %.4f", r.AICPickMs, r.TrueOnsetMs)
	}
	if math.Abs(r.EnvelopePeakMs-r.TrueOnsetMs) > 0.02 {
		t.Errorf("envelope pick %.4f ms vs true %.4f", r.EnvelopePeakMs, r.TrueOnsetMs)
	}
}

func TestFig10ErrorGrowsAsSNRDrops(t *testing.T) {
	pts := Fig10(4)
	if len(pts) != 13 {
		t.Fatalf("points = %d", len(pts))
	}
	// High-SNR errors are microseconds; the curve grows toward low SNR.
	last := pts[len(pts)-1] // 40 dB
	if last.MeanErrorUs > 3 {
		t.Errorf("error at 40 dB = %.2f µs", last.MeanErrorUs)
	}
	first := pts[0] // -20 dB
	if first.MeanErrorUs < last.MeanErrorUs {
		t.Error("error should grow as SNR drops")
	}
	// Within the building SNR range (−1..13 dB) the paper expects average
	// errors within 20 µs (§6.2).
	for _, p := range pts {
		if p.SNRdB >= 0 && p.SNRdB <= 15 && p.MeanErrorUs > 20 {
			t.Errorf("error at %.0f dB = %.2f µs, want < 20", p.SNRdB, p.MeanErrorUs)
		}
	}
}

func TestFig11OppositeShifts(t *testing.T) {
	r := Fig11()
	const mid = 0.512
	if !(r.DipMinusMs > mid && r.DipPlusMs < mid) {
		t.Errorf("dips %.3f / %.3f ms do not straddle the midpoint", r.DipMinusMs, r.DipPlusMs)
	}
}

func TestFig12RecoversPaperExample(t *testing.T) {
	r, err := Fig12()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.EstimatedDeltaHz-r.AppliedDeltaHz) > 50 {
		t.Errorf("estimated %.0f Hz, applied %.0f", r.EstimatedDeltaHz, r.AppliedDeltaHz)
	}
	if r.ResidualR2 < 0.999 {
		t.Errorf("R² = %f", r.ResidualR2)
	}
	if r.RectifiedSpanRad >= 0 {
		t.Error("rectified span should be negative for δ < 0")
	}
}

func TestFig13ReplayShiftDetectable(t *testing.T) {
	rows, err := Fig13(6)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 16 {
		t.Fatalf("nodes = %d", len(rows))
	}
	for _, r := range rows {
		// Original biases in the paper's −25..−17 kHz band.
		if r.Original.Mean > -17e3 || r.Original.Mean < -26e3 {
			t.Errorf("%s: original FB %.1f kHz outside paper band", r.NodeID, r.Original.Mean/1e3)
		}
		// Replay shift near the replayer's −643 Hz, far above the 120 Hz
		// resolution.
		if math.Abs(r.ExtraHz+643) > 150 {
			t.Errorf("%s: extra FB %.0f Hz, want ≈ −643", r.NodeID, r.ExtraHz)
		}
	}
}

func TestFig14WithinPaperResolution(t *testing.T) {
	if testing.Short() {
		t.Skip("DE least squares sweep is CPU-heavy")
	}
	pts, err := Fig14(1)
	if err != nil {
		t.Fatal(err)
	}
	// Within-paper-resolution at moderate SNR; at −25/−20 dB the
	// single-chirp Cramér-Rao bound (~110-190 Hz) is the honest floor
	// (see EXPERIMENTS.md).
	for _, p := range pts {
		limit := 120.0
		if p.SNRdB <= -20 {
			limit = 350
		}
		if p.GaussianErrorHz > limit {
			t.Errorf("gaussian error at %.0f dB = %.0f Hz, want ≤ %.0f", p.SNRdB, p.GaussianErrorHz, limit)
		}
		if p.RealErrorHz > limit+80 {
			t.Errorf("real-noise error at %.0f dB = %.0f Hz", p.SNRdB, p.RealErrorHz)
		}
	}
}

func TestFig15SurveyMatchesPaper(t *testing.T) {
	r, err := Fig15()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Cells) != 63 { // 64 survey positions minus the TX cell
		t.Errorf("cells = %d", len(r.Cells))
	}
	if r.MinSNR < -6 || r.MaxSNR > 20 {
		t.Errorf("SNR range [%.1f, %.1f] far from paper's [−1, 13]", r.MinSNR, r.MaxSNR)
	}
	if r.MaxTiming > 10 {
		t.Errorf("max timing error %.2f µs, paper reports sub-10", r.MaxTiming)
	}
	var buf bytes.Buffer
	PrintFig15(&buf, r)
	if !strings.Contains(buf.String(), "SNR map") {
		t.Error("printer output incomplete")
	}
}

func TestFig16ReplayAddsTwoKHz(t *testing.T) {
	rows, err := Fig16(6)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		extra := r.Replayed.Mean - r.Gateway.Mean
		if math.Abs(extra-2e3) > 300 {
			t.Errorf("power %.1f: extra FB %.0f Hz, want ≈ 2000", r.TxPowerdBm, extra)
		}
		// Eavesdropper and gateway rows differ by their receiver biases.
		if math.Abs((r.Gateway.Mean-r.Eavesdropper.Mean)-(-0.8e3-1.2e3)) > 300 {
			t.Errorf("power %.1f: receiver-bias separation off", r.TxPowerdBm)
		}
	}
	// TX power has little effect on the estimates (paper's observation).
	first, last := rows[0].Gateway.Mean, rows[len(rows)-1].Gateway.Mean
	if math.Abs(first-last) > 300 {
		t.Errorf("gateway FB varies %.0f Hz across power sweep", math.Abs(first-last))
	}
}

func TestSec811FullChain(t *testing.T) {
	r, err := Sec811()
	if err != nil {
		t.Fatal(err)
	}
	if r.MinWorkingSF != 8 {
		t.Errorf("min workable SF = %d, paper found 8", r.MinWorkingSF)
	}
	if !r.Stealthy {
		t.Errorf("jam outcome = %v", r.JamOutcome)
	}
	if !r.RecordingUsable || !r.Inconspicuous {
		t.Errorf("recording usable=%v inconspicuous=%v", r.RecordingUsable, r.Inconspicuous)
	}
	if !r.Detected {
		t.Errorf("SoftLoRa failed to detect: replay FB %.0f vs device %.0f", r.ReplayFBHz, r.DeviceFBHz)
	}
}

func TestSec82MicrosecondAccuracy(t *testing.T) {
	r, err := Sec82()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.PropagationUs-3.57) > 0.02 {
		t.Errorf("propagation = %.2f µs", r.PropagationUs)
	}
	for i, e := range r.TrialErrorsUs {
		if e > 10 {
			t.Errorf("trial %d error %.2f µs, want microseconds-level", i, e)
		}
	}
}

func TestSec32PaperNumbers(t *testing.T) {
	r := Sec32()
	if math.Abs(r.SyncSessionsPerHour-14.4) > 0.1 {
		t.Errorf("sessions/hour = %.1f", r.SyncSessionsPerHour)
	}
	if math.Abs(r.MaxBufferMinutes-4.17) > 0.1 {
		t.Errorf("buffer = %.2f min", r.MaxBufferMinutes)
	}
	if r.ElapsedBits != 18 {
		t.Errorf("bits = %d", r.ElapsedBits)
	}
	if r.FramesPerHourSF12 < 20 || r.FramesPerHourSF12 > 28 {
		t.Errorf("frames/hour = %d", r.FramesPerHourSF12)
	}
	if math.Abs(r.TimestampFraction-0.267) > 0.01 {
		t.Errorf("fraction = %.3f", r.TimestampFraction)
	}
}

func TestAblationOnsetRanking(t *testing.T) {
	rows, err := AblationOnset(3)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.SNRdB >= 10 && r.AICUs > r.SpectrogramUs {
			t.Errorf("at %.0f dB AIC (%.2f µs) should beat spectrogram (%.2f µs)",
				r.SNRdB, r.AICUs, r.SpectrogramUs)
		}
	}
}

func TestRTTCost(t *testing.T) {
	r := RTTCost()
	if r.WithRTTFramesPerHour*2 > r.UplinkOnlyFramesPerHour+1 {
		t.Error("RTT must halve the budget")
	}
	if r.SoftLoRaOverheadFrames != 0 {
		t.Error("SoftLoRa adds no communication overhead")
	}
}

func TestAblationUpDownDecoupling(t *testing.T) {
	rows, err := AblationUpDown(2)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.UpDownErrHz > 100 {
			t.Errorf("misalign %.1f µs: up/down error %.0f Hz, want < 100", r.MisalignUs, r.UpDownErrHz)
		}
		if r.MisalignUs >= 5 {
			// Single-chirp error grows ≈ 122 Hz/µs.
			want := 122 * r.MisalignUs
			if r.SingleChirpErrHz < want/2 {
				t.Errorf("misalign %.1f µs: single-chirp error %.0f Hz, expected ≈ %.0f", r.MisalignUs, r.SingleChirpErrHz, want)
			}
		}
		if r.TimingRecoveredUs > 1.5 {
			t.Errorf("misalign %.1f µs: timing residual %.2f µs", r.MisalignUs, r.TimingRecoveredUs)
		}
	}
}

func TestAblationMultiGatewayFusionAtLeastBestSingle(t *testing.T) {
	rows, err := AblationMultiGateway(6)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	fused := rows[len(rows)-1]
	if fused.Receiver != "fused" {
		t.Fatalf("last row = %s, want fused", fused.Receiver)
	}
	best := 0.0
	bestErr := 1e18
	for _, r := range rows[:len(rows)-1] {
		if acc := r.Accuracy(); acc > best {
			best = acc
		}
		if r.MeanAbsErrHz < bestErr {
			bestErr = r.MeanAbsErrHz
		}
	}
	// The acceptance bar: fused replay-detection accuracy must be at
	// least the best single gateway's (inverse-variance weighting is
	// dominated by the best link; the consistency gate rejects receivers
	// that lost the tone).
	if fused.Accuracy() < best {
		t.Errorf("fused accuracy %.2f below best single gateway %.2f", fused.Accuracy(), best)
	}
	// And the fused estimate should not be worse than the best receiver's
	// (strictly better in expectation; allow 20%% slack for the finite run).
	if fused.MeanAbsErrHz > bestErr*1.2 {
		t.Errorf("fused mean |err| %.1f Hz vs best single %.1f Hz", fused.MeanAbsErrHz, bestErr)
	}
	// The far gateway must actually be degraded, or the ablation shows
	// nothing.
	worst := 1.0
	for _, r := range rows[:len(rows)-1] {
		if acc := r.Accuracy(); acc < worst {
			worst = acc
		}
	}
	if worst >= 1 {
		t.Log("note: every single gateway was perfect this run; separation came from mean error only")
	}
}
