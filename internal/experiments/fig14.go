package experiments

import (
	"fmt"
	"io"
	"math"

	"softlora/internal/core"
	"softlora/internal/dsp"
	"softlora/internal/lora"
	"softlora/internal/sdr"
)

// Fig14Point is one SNR point of the least-squares FB-estimation error
// curve, for both noise models.
type Fig14Point struct {
	SNRdB           float64
	GaussianErrorHz float64
	RealErrorHz     float64
}

// Fig14 measures the least-squares estimator's error under calibrated
// Gaussian noise and under the colored/impulsive "real building noise"
// model, like the paper's Fig. 14 (errors ≤ 120 Hz down to −25 dB).
func Fig14(trials int) ([]Fig14Point, error) {
	if trials <= 0 {
		trials = 3
	}
	rng := newRand(14)
	const rate = sdr.DefaultSampleRate
	p := lora.DefaultParams(7)
	const delta = -21.3e3
	spec := lora.ChirpSpec{SF: p.SF, Bandwidth: p.Bandwidth, FrequencyOffset: delta, Phase: 1.3}
	clean := spec.Synthesize(rate)
	sigPower := dsp.Power(clean)
	var out []Fig14Point
	for snr := -25.0; snr <= 10; snr += 5 {
		var gSum, rSum float64
		for trial := 0; trial < trials; trial++ {
			noisePower := sigPower / dsp.FromdB(snr)
			run := func(noise []complex128) (float64, error) {
				iq := make([]complex128, len(clean))
				copy(iq, clean)
				for i := range iq {
					iq[i] += noise[i]
				}
				// The gateway checks frames against a claimed device, so
				// the search is centered on that device's tracked bias
				// with a generous ±3 kHz window.
				// Full-rate samples: the error floor is the single-chirp
				// Cramér-Rao bound (~110 Hz at −20 dB, ~190 Hz at −25 dB
				// for 2457 samples) — see EXPERIMENTS.md for the
				// comparison against the paper's ≤120 Hz claim.
				est := &core.LeastSquaresEstimator{
					Params:        p,
					Decimation:    1,
					NoisePower:    noisePower,
					DeltaCenterHz: delta,
					DeltaBoundHz:  3e3,
					Rand:          rng,
					DE:            dsp.DEConfig{MaxGenerations: 150, PopulationSize: 40, Rand: rng},
				}
				e, err := est.EstimateFB(iq, rate)
				if err != nil {
					return 0, err
				}
				return math.Abs(e.DeltaHz - delta), nil
			}
			gauss := dsp.GaussianNoise(rng, len(clean), noisePower)
			gErr, err := run(gauss)
			if err != nil {
				return nil, fmt.Errorf("experiments: fig 14 gaussian @%g dB: %w", snr, err)
			}
			real_ := dsp.ColoredNoise(rng, len(clean), noisePower, dsp.ColoredNoiseConfig{})
			rErr, err := run(real_)
			if err != nil {
				return nil, fmt.Errorf("experiments: fig 14 real @%g dB: %w", snr, err)
			}
			gSum += gErr
			rSum += rErr
		}
		out = append(out, Fig14Point{
			SNRdB:           snr,
			GaussianErrorHz: gSum / float64(trials),
			RealErrorHz:     rSum / float64(trials),
		})
	}
	return out, nil
}

// PrintFig14 renders the estimation-error series.
func PrintFig14(w io.Writer, pts []Fig14Point) {
	section(w, "Fig. 14: least-squares FB estimation error vs SNR")
	fmt.Fprintf(w, "%8s %14s %14s\n", "SNR(dB)", "gaussian(Hz)", "real-noise(Hz)")
	for _, p := range pts {
		fmt.Fprintf(w, "%8.0f %14.1f %14.1f\n", p.SNRdB, p.GaussianErrorHz, p.RealErrorHz)
	}
	fmt.Fprintf(w, "paper: below 120 Hz (0.14 ppm) down to −25 dB for both noise types\n")
}
