package experiments

import (
	"fmt"
	"io"
	"math"

	"softlora/internal/core"
	"softlora/internal/dsp"
	"softlora/internal/lora"
	"softlora/internal/sdr"
)

// UpDownRow compares single-chirp FB estimation against the up/down joint
// estimator under deliberate onset misalignment.
type UpDownRow struct {
	MisalignUs float64
	// Mean |FB error| in Hz for the paper's single-chirp linear
	// regression and for the up/down extension.
	SingleChirpErrHz float64
	UpDownErrHz      float64
	// TimingRecoveredUs is the mean |Δτ estimate − true misalignment|.
	TimingRecoveredUs float64
}

// AblationUpDown quantifies the δ' = δ + k·Δτ coupling: single-chirp
// estimators absorb ~122 Hz of FB error per µs of onset error (SF7,
// 125 kHz), while the up/down estimator stays flat and recovers the timing
// error itself (DESIGN.md §6).
func AblationUpDown(trials int) ([]UpDownRow, error) {
	if trials <= 0 {
		trials = 4
	}
	rng := newRand(63)
	const rate = sdr.DefaultSampleRate
	p := lora.DefaultParams(7)
	const delta = -21.5e3
	lr := &core.LinearRegressionEstimator{Params: p}
	ud := &core.UpDownEstimator{Params: p}
	n := int(p.SamplesPerChirp(rate))
	var rows []UpDownRow
	for _, misUs := range []float64{0, 1, 2, 5, 10} {
		mis := int(math.Round(misUs * 1e-6 * rate))
		row := UpDownRow{MisalignUs: misUs}
		for trial := 0; trial < trials; trial++ {
			f := lora.Frame{Params: p, Payload: []byte{byte(trial)}}
			lead := 1.5e-3
			dur, err := f.ModulatedDuration()
			if err != nil {
				return nil, fmt.Errorf("experiments: up/down ablation: %w", err)
			}
			iq := make([]complex128, int((lead+dur+1e-3)*rate))
			err = f.ModulateAt(iq, lora.Impairments{
				FrequencyBias: delta,
				InitialPhase:  rng.Float64() * 2 * math.Pi,
			}, rate, lead)
			if err != nil {
				return nil, fmt.Errorf("experiments: up/down ablation: %w", err)
			}
			noise := dsp.GaussianNoise(rng, len(iq), 0.01)
			for i := range iq {
				iq[i] += noise[i]
			}
			onset := int(lead*rate) + mis // deliberately misaligned onset
			single, err := lr.EstimateFB(iq[onset+n:onset+2*n], rate)
			if err != nil {
				return nil, fmt.Errorf("experiments: up/down ablation LR: %w", err)
			}
			joint, err := ud.Estimate(iq, onset, rate)
			if err != nil {
				return nil, fmt.Errorf("experiments: up/down ablation UD: %w", err)
			}
			row.SingleChirpErrHz += math.Abs(single.DeltaHz-delta) / float64(trials)
			row.UpDownErrHz += math.Abs(joint.DeltaHz-delta) / float64(trials)
			recovered := joint.TimingCorrection + float64(mis)/rate
			row.TimingRecoveredUs += math.Abs(recovered) * 1e6 / float64(trials)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// PrintAblationUpDown renders the comparison.
func PrintAblationUpDown(w io.Writer, rows []UpDownRow) {
	section(w, "Ablation: onset-error coupling (δ' = δ + k·Δτ) — single-chirp vs up/down estimator")
	fmt.Fprintf(w, "%14s %18s %14s %20s\n", "misalign(µs)", "single-chirp(Hz)", "up/down(Hz)", "Δτ residual(µs)")
	for _, r := range rows {
		fmt.Fprintf(w, "%14.1f %18.1f %14.1f %20.2f\n",
			r.MisalignUs, r.SingleChirpErrHz, r.UpDownErrHz, r.TimingRecoveredUs)
	}
	fmt.Fprintf(w, "theory: single-chirp error ≈ 122 Hz/µs at SF7/125 kHz; up/down cancels it and refines the timestamp\n")
}
