package experiments

import (
	"fmt"
	"io"
	"math"

	"softlora/internal/core"
	"softlora/internal/dsp"
	"softlora/internal/lora"
	"softlora/internal/sdr"
)

// Table2Result holds the onset error upper bounds (µs) for the envelope and
// AIC detectors on I and Q data over ten trials, like the paper's Table 2.
type Table2Result struct {
	EnvI, EnvQ, AICI, AICQ []float64
}

// onsetTrial builds one high-SNR capture with a known fractional-sample
// onset and returns the capture and the true onset sample position.
func onsetTrial(rng interface {
	Float64() float64
	NormFloat64() float64
}, rate float64) (iq []complex128, trueOnset float64) {
	p := lora.DefaultParams(7)
	spec := lora.ChirpSpec{
		SF:              p.SF,
		Bandwidth:       p.Bandwidth,
		FrequencyOffset: -22e3,
		Phase:           rng.Float64() * 2 * math.Pi,
	}
	lead := int(2e-3 * rate)
	total := lead + int(spec.Duration()*rate) + 64
	iq = make([]complex128, total)
	onset := (float64(lead) + rng.Float64()) / rate
	spec.AddTo(iq, rate, onset)
	for i := range iq {
		iq[i] += complex(rng.NormFloat64()*0.005, rng.NormFloat64()*0.005)
	}
	return iq, onset * rate
}

// Table2 runs the ten onset-accuracy trials of the paper's Table 2 at the
// RTL-SDR rate.
func Table2() Table2Result {
	rng := newRand(2)
	const rate = sdr.DefaultSampleRate
	var res Table2Result
	for trial := 0; trial < 10; trial++ {
		iq, want := onsetTrial(rng, rate)
		measure := func(det core.OnsetDetector) float64 {
			on, err := det.DetectOnset(iq, rate)
			if err != nil {
				return math.NaN()
			}
			// Error upper bound: distance from the detected sample to the
			// true (continuous) onset time (§6.2).
			return math.Abs(float64(on.Sample)-want) / rate * 1e6
		}
		res.EnvI = append(res.EnvI, measure(&core.EnvelopeDetector{Component: core.ComponentI, SmoothLen: 8}))
		res.EnvQ = append(res.EnvQ, measure(&core.EnvelopeDetector{Component: core.ComponentQ, SmoothLen: 8}))
		res.AICI = append(res.AICI, measure(&core.AICDetector{Component: core.ComponentI}))
		res.AICQ = append(res.AICQ, measure(&core.AICDetector{Component: core.ComponentQ}))
	}
	return res
}

// PrintTable2 renders the trial table plus the paper's summary claim.
func PrintTable2(w io.Writer, res Table2Result) {
	section(w, "Table 2: onset error upper bound (µs), 10 trials")
	row := func(name string, xs []float64) {
		fmt.Fprintf(w, "%-10s", name)
		for _, v := range xs {
			fmt.Fprintf(w, " %5.1f", v)
		}
		fmt.Fprintf(w, "  | mean %.2f\n", dsp.Mean(xs))
	}
	row("ENV I", res.EnvI)
	row("ENV Q", res.EnvQ)
	row("AIC I", res.AICI)
	row("AIC Q", res.AICQ)
	fmt.Fprintf(w, "paper: ENV 1.9-9.8 µs; AIC 0.6-1.9 µs (AIC < 2 µs)\n")
}
