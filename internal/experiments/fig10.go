package experiments

import (
	"fmt"
	"io"
	"math"

	"softlora/internal/core"
	"softlora/internal/dsp"
	"softlora/internal/lora"
	"softlora/internal/sdr"
)

// Fig10Point is one SNR point of the AIC timestamping-error curve, plus
// the dechirp-onset extension's error for comparison.
type Fig10Point struct {
	SNRdB       float64
	MeanErrorUs float64
	MaxErrorUs  float64
	// DechirpMeanUs is the despreading-based extension detector's mean
	// error on the same captures (DESIGN.md §6).
	DechirpMeanUs float64
}

// Fig10 measures AIC timestamping error vs SNR by adding calibrated
// Gaussian noise to high-SNR captures, like the paper's Fig. 10
// (SNR −20…40 dB).
func Fig10(trials int) []Fig10Point {
	if trials <= 0 {
		trials = 8
	}
	rng := newRand(10)
	const rate = sdr.DefaultSampleRate
	p := lora.DefaultParams(7)
	var out []Fig10Point
	for snr := -20.0; snr <= 40; snr += 5 {
		var sum, maxE, dcSum float64
		for trial := 0; trial < trials; trial++ {
			spec := lora.ChirpSpec{
				SF:              p.SF,
				Bandwidth:       p.Bandwidth,
				FrequencyOffset: -22e3,
				Phase:           rng.Float64() * 2 * math.Pi,
			}
			lead := int(2e-3 * rate)
			// Two preamble chirps: the dechirp detector needs both flanks
			// of the first boundary (the AIC detector only uses the
			// first).
			total := lead + 2*int(spec.Duration()*rate) + 64
			iq := make([]complex128, total)
			want := (float64(lead) + rng.Float64())
			spec.AddTo(iq, rate, want/rate)
			second := spec
			second.Phase = spec.EndPhase()
			second.AddTo(iq, rate, want/rate+spec.Duration())
			noise := dsp.GaussianNoise(rng, total, 1)
			g := dsp.NoiseForSNR(1, 1, snr)
			for i := range iq {
				iq[i] += noise[i] * complex(g, 0)
			}
			det := &core.AICDetector{LowPassCutoffHz: core.DefaultPrefilterCutoffHz}
			on, err := det.DetectOnset(iq, rate)
			if err != nil {
				continue
			}
			e := math.Abs(float64(on.Sample)-want) / rate * 1e6
			sum += e
			if e > maxE {
				maxE = e
			}
			dc := &core.DechirpOnsetDetector{Params: p}
			dcOn, err := dc.DetectOnset(iq, rate)
			if err != nil {
				continue
			}
			dcSum += math.Abs(float64(dcOn.Sample)-want) / rate * 1e6
		}
		out = append(out, Fig10Point{
			SNRdB:         snr,
			MeanErrorUs:   sum / float64(trials),
			MaxErrorUs:    maxE,
			DechirpMeanUs: dcSum / float64(trials),
		})
	}
	return out
}

// PrintFig10 renders the error-vs-SNR series.
func PrintFig10(w io.Writer, pts []Fig10Point) {
	section(w, "Fig. 10: AIC timestamping error vs SNR")
	fmt.Fprintf(w, "%8s %12s %12s %16s\n", "SNR(dB)", "mean(µs)", "max(µs)", "dechirp-ext(µs)")
	for _, p := range pts {
		fmt.Fprintf(w, "%8.0f %12.2f %12.2f %16.2f\n", p.SNRdB, p.MeanErrorUs, p.MaxErrorUs, p.DechirpMeanUs)
	}
	fmt.Fprintf(w, "paper: ≤20 µs for SNR ≥ −1 dB; ~25 µs at −20 dB (see EXPERIMENTS.md on the low-SNR tail;\n")
	fmt.Fprintf(w, "the dechirp extension column shows despreading gain recovering µs accuracy down to ~−10 dB)\n")
}
