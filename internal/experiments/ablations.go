package experiments

import (
	"fmt"
	"io"
	"math"
	"time"

	"softlora/internal/core"
	"softlora/internal/dsp"
	"softlora/internal/lora"
	"softlora/internal/sdr"
)

// AblationFBRow compares the FB estimators at one SNR: the paper's two,
// the dechirp-FFT extension's decimated+zoom fast path, and the monolithic
// padded-FFT reference that fast path replaced.
type AblationFBRow struct {
	SNRdB float64
	// Mean absolute error (Hz) and mean runtime per estimate.
	LRErrorHz, LSErrorHz, FFTErrorHz, FFTExactErrorHz float64
	LRTime, LSTime, FFTTime, FFTExactTime             time.Duration
}

// AblationFB benchmarks the paper's two estimators against the dechirp-FFT
// extension across SNRs (DESIGN.md §6): accuracy and CPU cost.
func AblationFB(trials int) ([]AblationFBRow, error) {
	if trials <= 0 {
		trials = 3
	}
	rng := newRand(61)
	const rate = sdr.DefaultSampleRate
	p := lora.DefaultParams(7)
	const delta = -22.4e3
	var rows []AblationFBRow
	for _, snr := range []float64{10, 0, -10, -20} {
		row := AblationFBRow{SNRdB: snr}
		for trial := 0; trial < trials; trial++ {
			spec := lora.ChirpSpec{
				SF: p.SF, Bandwidth: p.Bandwidth,
				FrequencyOffset: delta,
				Phase:           rng.Float64() * 2 * math.Pi,
			}
			iq := spec.Synthesize(rate)
			noisePower := dsp.Power(iq) / dsp.FromdB(snr)
			noise := dsp.GaussianNoise(rng, len(iq), noisePower)
			for i := range iq {
				iq[i] += noise[i]
			}
			run := func(est core.FBEstimator) (float64, time.Duration, error) {
				start := time.Now()
				e, err := est.EstimateFB(iq, rate)
				if err != nil {
					return 0, 0, err
				}
				return math.Abs(e.DeltaHz - delta), time.Since(start), nil
			}
			lrE, lrT, err := run(&core.LinearRegressionEstimator{Params: p})
			if err != nil {
				return nil, fmt.Errorf("experiments: ablation LR: %w", err)
			}
			lsE, lsT, err := run(&core.LeastSquaresEstimator{
				Params: p, Decimation: 2, NoisePower: noisePower, Rand: rng,
				DE: dsp.DEConfig{MaxGenerations: 120, PopulationSize: 30, Rand: rng},
			})
			if err != nil {
				return nil, fmt.Errorf("experiments: ablation LS: %w", err)
			}
			fftE, fftT, err := run(&core.DechirpFFTEstimator{Params: p})
			if err != nil {
				return nil, fmt.Errorf("experiments: ablation FFT: %w", err)
			}
			fxE, fxT, err := run(&core.DechirpFFTEstimator{Params: p, Exhaustive: true})
			if err != nil {
				return nil, fmt.Errorf("experiments: ablation FFT-exact: %w", err)
			}
			row.LRErrorHz += lrE / float64(trials)
			row.LSErrorHz += lsE / float64(trials)
			row.FFTErrorHz += fftE / float64(trials)
			row.FFTExactErrorHz += fxE / float64(trials)
			row.LRTime += lrT / time.Duration(trials)
			row.LSTime += lsT / time.Duration(trials)
			row.FFTTime += fftT / time.Duration(trials)
			row.FFTExactTime += fxT / time.Duration(trials)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// PrintAblationFB renders the estimator comparison.
func PrintAblationFB(w io.Writer, rows []AblationFBRow) {
	section(w, "Ablation: FB estimators (mean |error| Hz / runtime)")
	fmt.Fprintf(w, "%8s | %12s %12s | %12s %12s | %12s %12s | %12s %12s\n",
		"SNR(dB)", "LR err", "time", "LS-DE err", "time", "FFT-zoom err", "time", "FFT-exact", "time")
	for _, r := range rows {
		fmt.Fprintf(w, "%8.0f | %12.1f %12s | %12.1f %12s | %12.1f %12s | %12.1f %12s\n",
			r.SNRdB, r.LRErrorHz, r.LRTime.Round(time.Microsecond),
			r.LSErrorHz, r.LSTime.Round(time.Microsecond),
			r.FFTErrorHz, r.FFTTime.Round(time.Microsecond),
			r.FFTExactErrorHz, r.FFTExactTime.Round(time.Microsecond))
	}
	fmt.Fprintf(w, "paper: LR is O(1)-search but degrades at low SNR; LS-DE robust to −25 dB (0.69 s on a Pi)\n")
	fmt.Fprintf(w, "FFT-zoom is the decimated coarse→chirp-Z path; FFT-exact the monolithic padded FFT it replaced\n")
}

// AblationOnsetRow compares the onset detectors at one SNR.
type AblationOnsetRow struct {
	SNRdB                             float64
	AICUs, EnvUs, SpectrogramUs, MFUs float64
}

// AblationOnset compares all four onset detectors, including the two the
// paper dismisses (§6.1.2).
func AblationOnset(trials int) ([]AblationOnsetRow, error) {
	if trials <= 0 {
		trials = 5
	}
	rng := newRand(62)
	const rate = sdr.DefaultSampleRate
	p := lora.DefaultParams(7)
	var rows []AblationOnsetRow
	for _, snr := range []float64{30, 10, 0} {
		row := AblationOnsetRow{SNRdB: snr}
		for trial := 0; trial < trials; trial++ {
			spec := lora.ChirpSpec{
				SF: p.SF, Bandwidth: p.Bandwidth,
				FrequencyOffset: -22e3,
				Phase:           rng.Float64() * 2 * math.Pi,
			}
			lead := int(1.5e-3 * rate)
			total := lead + int(spec.Duration()*rate) + 64
			iq := make([]complex128, total)
			want := float64(lead) + rng.Float64()
			spec.AddTo(iq, rate, want/rate)
			noise := dsp.GaussianNoise(rng, total, 1)
			g := dsp.NoiseForSNR(1, 1, snr)
			for i := range iq {
				iq[i] += noise[i] * complex(g, 0)
			}
			measure := func(det core.OnsetDetector) float64 {
				on, err := det.DetectOnset(iq, rate)
				if err != nil {
					return math.NaN()
				}
				return math.Abs(float64(on.Sample)-want) / rate * 1e6
			}
			row.AICUs += measure(&core.AICDetector{LowPassCutoffHz: core.DefaultPrefilterCutoffHz}) / float64(trials)
			row.EnvUs += measure(&core.EnvelopeDetector{SmoothLen: 8, LowPassCutoffHz: core.DefaultPrefilterCutoffHz}) / float64(trials)
			row.SpectrogramUs += measure(&core.SpectrogramDetector{WindowLen: 128, Overlap: 16}) / float64(trials)
			row.MFUs += measure(&core.MatchedFilterDetector{Params: p}) / float64(trials)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// PrintAblationOnset renders the detector comparison.
func PrintAblationOnset(w io.Writer, rows []AblationOnsetRow) {
	section(w, "Ablation: onset detectors (mean error µs)")
	fmt.Fprintf(w, "%8s %10s %10s %14s %16s\n", "SNR(dB)", "AIC", "envelope", "spectrogram", "matched-filter")
	for _, r := range rows {
		fmt.Fprintf(w, "%8.0f %10.2f %10.2f %14.2f %16.2f\n",
			r.SNRdB, r.AICUs, r.EnvUs, r.SpectrogramUs, r.MFUs)
	}
	fmt.Fprintf(w, "paper §6.1.2: spectrogram limited by hop resolution; matched filter broken by random θ\n")
}

// RTTCostResult quantifies §4.4's rejected round-trip-time detector.
type RTTCostResult struct {
	// UplinkOnlyFramesPerHour is the duty-cycle budget without RTT checks.
	UplinkOnlyFramesPerHour int
	// WithRTTFramesPerHour halves the budget: every uplink consumes a
	// downlink slot at the single-downlink gateway.
	WithRTTFramesPerHour int
	// SoftLoRaOverheadFrames is the per-frame communication overhead of
	// the FB-based detector (zero by construction).
	SoftLoRaOverheadFrames int
}

// RTTCost computes the §4.4 comparison.
func RTTCost() RTTCostResult {
	p := lora.DefaultParams(12)
	uplink := p.MaxFramesPerHour(30, 0.01)
	return RTTCostResult{
		UplinkOnlyFramesPerHour: uplink,
		// Each round trip doubles airtime use and serializes on the
		// gateway's single downlink path.
		WithRTTFramesPerHour:   uplink / 2,
		SoftLoRaOverheadFrames: 0,
	}
}

// PrintRTTCost renders the §4.4 argument.
func PrintRTTCost(w io.Writer, r RTTCostResult) {
	section(w, "§4.4: round-trip-timing detector cost")
	fmt.Fprintf(w, "SF12/30B frames per hour: uplink-only %d, with per-frame RTT %d, SoftLoRa overhead %d frames\n",
		r.UplinkOnlyFramesPerHour, r.WithRTTFramesPerHour, r.SoftLoRaOverheadFrames)
	fmt.Fprintf(w, "paper: RTT doubles communication overhead and clashes with LoRaWAN's uplink-downlink asymmetry\n")
}
