package experiments

import (
	"fmt"
	"io"
	"math"

	"softlora/internal/core"
	"softlora/internal/dsp"
	"softlora/internal/lora"
	"softlora/internal/sdr"
)

// Fig6Result summarizes the ideal up-chirp I trace and spectrogram of
// Fig. 6: the per-frame spectrogram peak frequencies must sweep linearly
// from −W/2 to +W/2.
type Fig6Result struct {
	// Samples is the trace length at 2.4 Msps (paper: 1.024 ms chirp).
	Samples int
	// Frames is the number of spectrogram frames (paper: 20).
	Frames int
	// PeakFrequencies is the spectrogram peak per frame, Hz.
	PeakFrequencies []float64
	// SweepFit is the linear fit of peak frequency vs time; the slope
	// should be W²/2^SF ≈ 122 MHz/s for SF7 at 125 kHz.
	SweepFit dsp.LinearFit
}

// Fig6 regenerates the chirp trace and spectrogram of Fig. 6 (A=2, θ=0,
// S=7, 2^S-point Kaiser window, 16-point overlap).
func Fig6() Fig6Result {
	p := lora.DefaultParams(7)
	spec := lora.ChirpSpec{SF: p.SF, Bandwidth: p.Bandwidth, Amplitude: 2}
	iq := spec.Synthesize(sdr.DefaultSampleRate)
	win := dsp.KaiserWindow(1<<p.SF, 8)
	sg := dsp.Spectrogram(iq, win, 16)
	res := Fig6Result{Samples: len(iq), Frames: len(sg)}
	hop := float64(len(win) - 16)
	for f, psd := range sg {
		best, bestV := 0, 0.0
		for i, v := range psd {
			if v > bestV {
				bestV = v
				best = i
			}
		}
		freq := dsp.BinFrequency(best, len(psd), sdr.DefaultSampleRate)
		res.PeakFrequencies = append(res.PeakFrequencies, freq)
		_ = f
	}
	// Fit the interior frames (edge windows straddle the chirp boundary).
	interiorT := make([]float64, 0, len(res.PeakFrequencies))
	interiorF := make([]float64, 0, len(res.PeakFrequencies))
	for i := 1; i < len(res.PeakFrequencies)-1; i++ {
		interiorT = append(interiorT, (float64(i)*hop+float64(len(win))/2)/sdr.DefaultSampleRate)
		interiorF = append(interiorF, res.PeakFrequencies[i])
	}
	res.SweepFit = dsp.LinearRegression(interiorT, interiorF)
	return res
}

// PrintFig6 renders the spectrogram sweep summary.
func PrintFig6(w io.Writer, r Fig6Result) {
	section(w, "Fig. 6: ideal up chirp I data + spectrogram")
	fmt.Fprintf(w, "trace: %d samples @2.4 Msps, %d spectrogram frames\n", r.Samples, r.Frames)
	fmt.Fprintf(w, "peak frequency per frame (kHz):")
	for _, f := range r.PeakFrequencies {
		fmt.Fprintf(w, " %.1f", f/1e3)
	}
	fmt.Fprintf(w, "\nsweep rate fit: %.1f MHz/s (theory W²/2^SF = %.1f), R²=%.4f\n",
		r.SweepFit.Slope/1e6, 125e3*125e3/128/1e6, r.SweepFit.R2)
}

// Fig7Result compares the I traces of two chirps differing only in θ.
type Fig7Result struct {
	// Correlation between the θ=0 and θ=π I traces (−1 for antiphase at
	// the start; the shapes are visibly different, Fig. 7).
	Correlation float64
	// MaxDiff is the maximum pointwise difference between the traces.
	MaxDiff float64
}

// Fig7 reproduces the θ-dependence of the chirp I waveform.
func Fig7() Fig7Result {
	p := lora.DefaultParams(7)
	a := lora.ChirpSpec{SF: p.SF, Bandwidth: p.Bandwidth, Phase: 0}.Synthesize(sdr.DefaultSampleRate)
	b := lora.ChirpSpec{SF: p.SF, Bandwidth: p.Bandwidth, Phase: math.Pi}.Synthesize(sdr.DefaultSampleRate)
	ia, ib := dsp.I(a), dsp.I(b)
	var dot, na, nb, maxDiff float64
	for i := range ia {
		dot += ia[i] * ib[i]
		na += ia[i] * ia[i]
		nb += ib[i] * ib[i]
		if d := math.Abs(ia[i] - ib[i]); d > maxDiff {
			maxDiff = d
		}
	}
	return Fig7Result{Correlation: dot / math.Sqrt(na*nb), MaxDiff: maxDiff}
}

// PrintFig7 renders the phase-shape comparison.
func PrintFig7(w io.Writer, r Fig7Result) {
	section(w, "Fig. 7: I trace depends on transmitter phase θ")
	fmt.Fprintf(w, "corr(I|θ=0, I|θ=π) = %.3f (antiphase), max pointwise diff = %.2f\n",
		r.Correlation, r.MaxDiff)
	fmt.Fprintf(w, "paper: waveform shapes differ → no fixed matched-filter template\n")
}

// Fig8Result locates the I-trace envelope dip of a received chirp with and
// without frequency bias; the bias shifts the dip center (Fig. 8 vs 7).
type Fig8Result struct {
	// DipUnbiasedMs and DipBiasedMs are the dip-center times, ms.
	DipUnbiasedMs float64
	DipBiasedMs   float64
	// BiasHz is the applied transmitter bias.
	BiasHz float64
}

// iDipCenter finds the minimum of |I(t)| smoothed — the dip of the cosine
// instantaneous-frequency zero crossing region.
func iDipCenter(iq []complex128, rate float64) float64 {
	x := dsp.I(iq)
	// The dip of the I trace is where the instantaneous frequency of the
	// real trace crosses zero: |d/dt I| small and |I| near extremum...
	// Identify via the zero-crossing rate in a sliding window: the dip is
	// the window with the fewest sign changes.
	const win = 256
	best, bestI := math.Inf(1), 0
	for at := 0; at+win < len(x); at += win / 4 {
		crossings := 0
		for i := at + 1; i < at+win; i++ {
			if (x[i] >= 0) != (x[i-1] >= 0) {
				crossings++
			}
		}
		if c := float64(crossings); c < best {
			best = c
			bestI = at + win/2
		}
	}
	return float64(bestI) / rate * 1e3
}

// Fig8 reproduces the FB-induced dip shift.
func Fig8() Fig8Result {
	p := lora.DefaultParams(7)
	const bias = -22.8e3
	clean := lora.ChirpSpec{SF: p.SF, Bandwidth: p.Bandwidth}.Synthesize(sdr.DefaultSampleRate)
	biased := lora.ChirpSpec{SF: p.SF, Bandwidth: p.Bandwidth, FrequencyOffset: bias}.Synthesize(sdr.DefaultSampleRate)
	return Fig8Result{
		DipUnbiasedMs: iDipCenter(clean, sdr.DefaultSampleRate),
		DipBiasedMs:   iDipCenter(biased, sdr.DefaultSampleRate),
		BiasHz:        bias,
	}
}

// PrintFig8 renders the dip-shift comparison.
func PrintFig8(w io.Writer, r Fig8Result) {
	section(w, "Fig. 8: frequency bias shifts the I-trace dip center")
	fmt.Fprintf(w, "dip center: unbiased %.3f ms, δ=%.1f kHz → %.3f ms (shift %.3f ms)\n",
		r.DipUnbiasedMs, r.BiasHz/1e3, r.DipBiasedMs, r.DipBiasedMs-r.DipUnbiasedMs)
	// The instantaneous frequency crosses zero at t = (W/2 − δ)/k; with
	// δ<0 the dip moves later, as in the paper's Fig. 8.
	k := 125e3 * 125e3 / 128
	fmt.Fprintf(w, "theory: dip at (W/2−δ)/k = %.3f ms\n", (62.5e3-r.BiasHz)/k*1e3)
}

// Fig9Result reports the onset positions found by the two detectors on the
// same capture, for the Fig. 9 illustration.
type Fig9Result struct {
	TrueOnsetMs     float64
	EnvelopePeakMs  float64
	AICPickMs       float64
	MaxEnvRatio     float64
	AICCurveMinimum float64
}

// Fig9 builds one noisy capture and reports both detectors' diagnostics.
func Fig9() (Fig9Result, error) {
	rng := newRand(9)
	const rate = sdr.DefaultSampleRate
	iq, want := onsetTrial(rng, rate)
	env := &core.EnvelopeDetector{SmoothLen: 8}
	_, ratios := env.Ratios(iq)
	bestR, bestRI := 0.0, 0
	for i, v := range ratios {
		if v > bestR {
			bestR = v
			bestRI = i
		}
	}
	aic := &core.AICDetector{}
	pick, err := aic.DetectOnset(iq, rate)
	if err != nil {
		return Fig9Result{}, fmt.Errorf("experiments: fig 9: %w", err)
	}
	curve := aic.Curve(iq)
	minV := math.Inf(1)
	for _, v := range curve {
		if !math.IsNaN(v) && v < minV {
			minV = v
		}
	}
	return Fig9Result{
		TrueOnsetMs:     want / rate * 1e3,
		EnvelopePeakMs:  float64(bestRI) / rate * 1e3,
		AICPickMs:       pick.Time * 1e3,
		MaxEnvRatio:     bestR,
		AICCurveMinimum: minV,
	}, nil
}

// PrintFig9 renders the detector diagnostics.
func PrintFig9(w io.Writer, r Fig9Result) {
	section(w, "Fig. 9: preamble onset detection")
	fmt.Fprintf(w, "true onset %.4f ms | envelope max-ratio pick %.4f ms (ratio %.1f) | AIC pick %.4f ms\n",
		r.TrueOnsetMs, r.EnvelopePeakMs, r.AICPickMs, r.MaxEnvRatio)
}

// Fig11Result compares I traces for δ = ±25 kHz (Fig. 11): the axis of
// symmetry (dip) moves to opposite sides.
type Fig11Result struct {
	DipMinusMs float64 // δ = −25 kHz
	DipPlusMs  float64 // δ = +25 kHz
}

// Fig11 reproduces the symmetric dip shift.
func Fig11() Fig11Result {
	p := lora.DefaultParams(7)
	minus := lora.ChirpSpec{SF: p.SF, Bandwidth: p.Bandwidth, FrequencyOffset: -25e3}.Synthesize(sdr.DefaultSampleRate)
	plus := lora.ChirpSpec{SF: p.SF, Bandwidth: p.Bandwidth, FrequencyOffset: 25e3}.Synthesize(sdr.DefaultSampleRate)
	return Fig11Result{
		DipMinusMs: iDipCenter(minus, sdr.DefaultSampleRate),
		DipPlusMs:  iDipCenter(plus, sdr.DefaultSampleRate),
	}
}

// PrintFig11 renders the ±25 kHz comparison.
func PrintFig11(w io.Writer, r Fig11Result) {
	section(w, "Fig. 11: I trace for δ = ±25 kHz")
	fmt.Fprintf(w, "dip center: δ=−25 kHz → %.3f ms, δ=+25 kHz → %.3f ms (chirp midpoint 0.512 ms)\n",
		r.DipMinusMs, r.DipPlusMs)
}

// Fig12Result reports the linear-regression FB extraction intermediates.
type Fig12Result struct {
	AppliedDeltaHz   float64
	EstimatedDeltaHz float64
	ResidualR2       float64
	// RectifiedSpanRad is the total unwrapped phase span (Fig. 12(c)'s
	// ~−200 rad for δ = −22.8 kHz over 1 ms... the dominant term is the
	// 2πδt line minus the quadratic).
	RectifiedSpanRad float64
}

// Fig12 runs the §7.1.1 pipeline on a realistic noisy chirp.
func Fig12() (Fig12Result, error) {
	rng := newRand(12)
	p := lora.DefaultParams(7)
	const delta = -22.8e3
	spec := lora.ChirpSpec{SF: p.SF, Bandwidth: p.Bandwidth, FrequencyOffset: delta, Phase: 0.7}
	iq := spec.Synthesize(sdr.DefaultSampleRate)
	noise := dsp.GaussianNoise(rng, len(iq), 0.01)
	for i := range iq {
		iq[i] += noise[i]
	}
	est := &core.LinearRegressionEstimator{Params: p}
	d, err := est.Extract(iq, sdr.DefaultSampleRate)
	if err != nil {
		return Fig12Result{}, fmt.Errorf("experiments: fig 12: %w", err)
	}
	return Fig12Result{
		AppliedDeltaHz:   delta,
		EstimatedDeltaHz: d.Fit.Slope / (2 * math.Pi),
		ResidualR2:       d.Fit.R2,
		RectifiedSpanRad: d.Rectified[len(d.Rectified)-1] - d.Rectified[0],
	}, nil
}

// PrintFig12 renders the extraction summary.
func PrintFig12(w io.Writer, r Fig12Result) {
	section(w, "Fig. 12: linear-regression FB extraction intermediates")
	fmt.Fprintf(w, "applied δ = %.1f kHz, estimated %.2f kHz (R² %.4f), rectified span %.0f rad\n",
		r.AppliedDeltaHz/1e3, r.EstimatedDeltaHz/1e3, r.ResidualR2, r.RectifiedSpanRad)
	fmt.Fprintf(w, "paper: estimates −22.8 kHz = 26 ppm of 869.75 MHz\n")
}
