package experiments

import (
	"strings"
	"testing"
	"time"
)

// TestFleetSmall runs the full driver machinery — concurrent CheckBatch
// load, background flusher through a heavily faulty filesystem, drain,
// recovery, clean round trip — at a size suited to the test suite. The
// driver itself errors when recovery loses a device or a sampled record
// diverges, so a nil error carries the durability claim.
func TestFleetSmall(t *testing.T) {
	r, err := Fleet(FleetConfig{
		Devices:       3000,
		Verdicts:      20000,
		Batch:         32,
		Workers:       4,
		Dir:           t.TempDir(),
		FlushInterval: 5 * time.Millisecond,
		FaultRate:     0.1,
		Seed:          7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Verdicts < 20000 {
		t.Errorf("issued %d verdicts, want >= 20000", r.Verdicts)
	}
	if r.RecoveredDevices != 3000 {
		t.Errorf("recovered %d devices, want 3000", r.RecoveredDevices)
	}
	if r.Replays == 0 {
		t.Error("replay branch never exercised under load")
	}
	if r.Flush.ShardsFlushed == 0 {
		t.Error("background flusher never flushed a shard")
	}
	if r.FaultsInjected == 0 {
		t.Error("fault injector at rate 0.1 never fired")
	}
	if r.SnapshotBytes <= 0 || r.BytesPerDevice <= 0 {
		t.Errorf("snapshot footprint not measured: %d bytes", r.SnapshotBytes)
	}
	var sb strings.Builder
	PrintFleet(&sb, r)
	if !strings.Contains(sb.String(), "verdicts/s") {
		t.Errorf("report missing throughput line:\n%s", sb.String())
	}
}

// TestFleetStreamingSmall runs the driver in streaming multi-receiver
// mode: every frame arrives as 3 gateway copies, duplicated / reordered /
// delayed by the traffic injector and split across CheckBatch calls, so
// only the dedup window can reassemble it. The driver errors if committed
// verdicts != frames, so a nil error carries the one-verdict-per-frame
// claim at fleet scale.
func TestFleetStreamingSmall(t *testing.T) {
	r, err := Fleet(FleetConfig{
		Devices:       2000,
		Verdicts:      15000,
		Batch:         32,
		Workers:       4,
		Receivers:     3,
		Dir:           t.TempDir(),
		FlushInterval: 5 * time.Millisecond,
		FaultRate:     0.05,
		Seed:          11,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Frames < 15000 {
		t.Errorf("generated %d frames, want >= 15000", r.Frames)
	}
	if r.Verdicts != r.Frames {
		t.Errorf("committed %d verdicts for %d frames", r.Verdicts, r.Frames)
	}
	if r.Stats.WindowMerged == 0 {
		t.Error("streaming load never merged a copy across calls")
	}
	if r.Stats.DuplicatesSuppressed == 0 {
		t.Error("injected duplicates were not suppressed")
	}
	if r.Replays == 0 {
		t.Error("replay branch never exercised under streaming load")
	}
	if r.RecoveredDevices != 2000 {
		t.Errorf("recovered %d devices, want 2000", r.RecoveredDevices)
	}
	var sb strings.Builder
	PrintFleet(&sb, r)
	if !strings.Contains(sb.String(), "one committed verdict each") {
		t.Errorf("report missing window line:\n%s", sb.String())
	}
}
