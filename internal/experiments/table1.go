package experiments

import (
	"fmt"
	"io"

	"softlora/internal/chip"
	"softlora/internal/lora"
)

// Table1Row is one configuration of the jamming-window experiment.
type Table1Row struct {
	SF         int
	PayloadLen int
	// Model windows, milliseconds.
	W1, W2, W3 float64
	// Paper-measured windows, milliseconds (Table 1).
	PaperW1, PaperW2, PaperW3 float64
}

// paperTable1 holds the RN2483 measurements reported in Table 1.
var paperTable1 = []Table1Row{
	{SF: 7, PayloadLen: 10, PaperW1: 5, PaperW2: 28, PaperW3: 141},
	{SF: 7, PayloadLen: 20, PaperW1: 5, PaperW2: 38, PaperW3: 156},
	{SF: 7, PayloadLen: 30, PaperW1: 6, PaperW2: 41, PaperW3: 165},
	{SF: 7, PayloadLen: 40, PaperW1: 6, PaperW2: 54, PaperW3: 178},
	{SF: 8, PayloadLen: 30, PaperW1: 10, PaperW2: 82, PaperW3: 208},
	{SF: 9, PayloadLen: 30, PaperW1: 22, PaperW2: 156, PaperW3: 274},
}

// Table1 measures the jamming windows w1/w2/w3 by sweeping the jamming
// onset over the frame timeline with the behavioural chip model, exactly
// the way the paper measures its Table 1.
func Table1() ([]Table1Row, error) {
	rows := make([]Table1Row, 0, len(paperTable1))
	for _, row := range paperTable1 {
		p := lora.DefaultParams(row.SF)
		p.LowDataRateOptimize = false
		r := chip.NewReceiver(p)
		w1, w2, w3, err := r.SweepWindows(row.PayloadLen, 1e-4)
		if err != nil {
			return nil, fmt.Errorf("experiments: table 1 sweep SF%d/%dB: %w", row.SF, row.PayloadLen, err)
		}
		row.W1 = w1 * 1e3
		row.W2 = w2 * 1e3
		row.W3 = w3 * 1e3
		rows = append(rows, row)
	}
	return rows, nil
}

// PrintTable1 renders the rows next to the paper's measurements.
func PrintTable1(w io.Writer, rows []Table1Row) {
	section(w, "Table 1: jamming attack time windows (ms)")
	fmt.Fprintf(w, "%-4s %-8s | %7s %7s %7s | %7s %7s %7s\n",
		"SF", "payload", "w1", "w2", "w3", "paper1", "paper2", "paper3")
	for _, r := range rows {
		fmt.Fprintf(w, "%-4d %-8d | %7.1f %7.1f %7.1f | %7.0f %7.0f %7.0f\n",
			r.SF, r.PayloadLen, r.W1, r.W2, r.W3, r.PaperW1, r.PaperW2, r.PaperW3)
	}
}
