package experiments

import (
	"fmt"
	"io"
	"math"

	"softlora/internal/core"
	"softlora/internal/dsp"
	"softlora/internal/lora"
	"softlora/internal/radio"
	"softlora/internal/sdr"
)

// Fig15Cell is one survey position of the building experiment.
type Fig15Cell struct {
	Label       string
	Floor       int
	SNRdB       float64
	TimingErrUs float64
}

// Fig15Result is the building SNR survey plus signal-timestamping accuracy.
type Fig15Result struct {
	Cells      []Fig15Cell
	MinSNR     float64
	MaxSNR     float64
	MaxTiming  float64
	MeanTiming float64
}

// Fig15 surveys the six-floor building: for every accessible position it
// computes the link SNR from the fixed node (A1, floor 3, like the paper)
// and measures the AIC timestamping error at that SNR.
func Fig15() (Fig15Result, error) {
	rng := newRand(15)
	const rate = sdr.DefaultSampleRate
	b := radio.DefaultBuilding()
	tx := b.FixedNode()
	p := lora.DefaultParams(12) // the paper's default in-building setting
	res := Fig15Result{MinSNR: math.Inf(1), MaxSNR: math.Inf(-1)}
	var timingSum float64
	for _, pos := range b.SurveyPositions() {
		if pos == tx {
			continue
		}
		snr := b.SNRdB(tx, pos, 14)
		// Timestamping at this SNR: median of three trials, matching the
		// paper's per-position measurement. Onset statistics depend on
		// SNR, not SF, so SF7 chirps keep the sweep fast (§6.2).
		var trialErrs []float64
		for trial := 0; trial < 3; trial++ {
			spec := lora.ChirpSpec{
				SF:              7,
				Bandwidth:       p.Bandwidth,
				FrequencyOffset: -22e3,
				Phase:           rng.Float64() * 2 * math.Pi,
			}
			lead := int(1.5e-3 * rate)
			total := lead + int(spec.Duration()*rate) + 64
			iq := make([]complex128, total)
			want := float64(lead) + rng.Float64()
			spec.AddTo(iq, rate, want/rate)
			noise := dsp.GaussianNoise(rng, total, 1)
			g := dsp.NoiseForSNR(1, 1, snr)
			for i := range iq {
				iq[i] += noise[i] * complex(g, 0)
			}
			det := &core.AICDetector{LowPassCutoffHz: core.DefaultPrefilterCutoffHz}
			on, err := det.DetectOnset(iq, rate)
			if err != nil {
				return res, fmt.Errorf("experiments: fig 15 at %s/%d: %w", pos.Label, pos.Floor, err)
			}
			trialErrs = append(trialErrs, math.Abs(float64(on.Sample)-want)/rate*1e6)
		}
		timingErr := dsp.Percentile(trialErrs, 50)
		res.Cells = append(res.Cells, Fig15Cell{
			Label:       pos.Label,
			Floor:       pos.Floor,
			SNRdB:       snr,
			TimingErrUs: timingErr,
		})
		if snr < res.MinSNR {
			res.MinSNR = snr
		}
		if snr > res.MaxSNR {
			res.MaxSNR = snr
		}
		if timingErr > res.MaxTiming {
			res.MaxTiming = timingErr
		}
		timingSum += timingErr
	}
	res.MeanTiming = timingSum / float64(len(res.Cells))
	return res, nil
}

// PrintFig15 renders the survey as a compact floor/column matrix.
func PrintFig15(w io.Writer, r Fig15Result) {
	section(w, "Fig. 15: building SNR survey + timing error (µs)")
	byPos := map[string]Fig15Cell{}
	cols := []string{"A1", "A2", "A3", "J1", "B1", "B2", "B3", "J2", "C1", "C2", "C3"}
	for _, c := range r.Cells {
		byPos[fmt.Sprintf("%s/%d", c.Label, c.Floor)] = c
	}
	fmt.Fprintf(w, "SNR map (dB):\nfloor")
	for _, c := range cols {
		fmt.Fprintf(w, " %6s", c)
	}
	fmt.Fprintln(w)
	for f := 6; f >= 1; f-- {
		fmt.Fprintf(w, "%5d", f)
		for _, c := range cols {
			cell, ok := byPos[fmt.Sprintf("%s/%d", c, f)]
			if !ok {
				fmt.Fprintf(w, " %6s", "--")
				continue
			}
			fmt.Fprintf(w, " %6.1f", cell.SNRdB)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "timing error (µs):\nfloor")
	for _, c := range cols {
		fmt.Fprintf(w, " %6s", c)
	}
	fmt.Fprintln(w)
	for f := 6; f >= 1; f-- {
		fmt.Fprintf(w, "%5d", f)
		for _, c := range cols {
			cell, ok := byPos[fmt.Sprintf("%s/%d", c, f)]
			if !ok {
				fmt.Fprintf(w, " %6s", "--")
				continue
			}
			fmt.Fprintf(w, " %6.2f", cell.TimingErrUs)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "SNR range [%.1f, %.1f] dB (paper: −1 to 13); timing mean %.2f µs, max %.2f (paper: sub-10 µs)\n",
		r.MinSNR, r.MaxSNR, r.MeanTiming, r.MaxTiming)
}
