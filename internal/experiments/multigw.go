package experiments

import (
	"fmt"
	"io"
	"math"

	"softlora/internal/core"
	"softlora/internal/dsp"
	"softlora/internal/lora"
	"softlora/internal/netserver"
	"softlora/internal/radio"
	"softlora/internal/sdr"
)

// AblationMultiGWRow scores replay detection through one receiver (or the
// jitter-weighted fusion of all of them) in a multi-gateway deployment.
type AblationMultiGWRow struct {
	// Receiver is the gateway id, or "fused" for the network-server
	// fusion row.
	Receiver string
	// SNRdB is the device→receiver link SNR (NaN for the fused row).
	SNRdB float64
	// GenuineOK and ReplayOK count correct verdicts; Frames is the count
	// of each kind.
	GenuineOK, ReplayOK, Frames int
	// MeanAbsErrHz is the mean |FB estimate − truth| of the receiver's
	// (or fused) estimates.
	MeanAbsErrHz float64
}

// Accuracy returns the fraction of correct verdicts over all frames.
func (r AblationMultiGWRow) Accuracy() float64 {
	return float64(r.GenuineOK+r.ReplayOK) / float64(2*r.Frames)
}

// AblationMultiGateway evaluates the §7.2 replay detector when the same
// frame is heard by several receivers at different SNRs (the paper's
// building: device fixed in section A, gateways spread across the top
// floor): each gateway's FB estimate alone versus the network server's
// jitter-weighted fusion. The transmit power is set low enough that the
// far links estimate poorly — fusion must match or beat the best single
// gateway because inverse-variance weighting is dominated by it.
func AblationMultiGateway(trials int) ([]AblationMultiGWRow, error) {
	if trials <= 0 {
		trials = 4
	}
	rng := newRand(63)
	const (
		rate        = sdr.DefaultSampleRate
		txPowerdBm  = -10 // weak uplink: far links drop below −15 dB SNR
		trueBias    = -22.4e3
		replayExtra = -620 // replayer's added bias, paper Fig. 13
		nGW         = 3
	)
	p := lora.DefaultParams(7)
	b := radio.DefaultBuilding()
	device := b.FixedNode()
	cols := b.Columns()

	// Per-receiver link budget and CRB-derived fusion weight.
	n := int(p.SamplesPerChirp(rate))
	snr := make([]float64, nGW)
	jitter := make([]float64, nGW)
	gwIDs := make([]string, nGW)
	for i := 0; i < nGW; i++ {
		pos, err := b.Column(cols[i*(len(cols)-1)/(nGW-1)], b.Floors)
		if err != nil {
			return nil, fmt.Errorf("experiments: multigw placement: %w", err)
		}
		snr[i] = b.SNRdB(device, pos, txPowerdBm)
		lin := dsp.FromdB(snr[i])
		jitter[i] = rate / (2 * math.Pi) * math.Sqrt(6/(lin*float64(n)*float64(n)*float64(n)))
		gwIDs[i] = fmt.Sprintf("gw-%d", i)
	}

	// One independent detector per single-receiver column plus the fused
	// network server, all enrolled with the device's true bias.
	single := make([]*netserver.NetworkServer, nGW)
	estimators := make([]*core.DechirpFFTEstimator, nGW)
	for i := range single {
		single[i] = netserver.New(netserver.Config{})
		single[i].Enroll("node", trueBias, 10)
		estimators[i] = &core.DechirpFFTEstimator{Params: p}
	}
	fused := netserver.New(netserver.Config{})
	fused.Enroll("node", trueBias, 10)

	rows := make([]AblationMultiGWRow, nGW+1)
	for i := 0; i < nGW; i++ {
		rows[i] = AblationMultiGWRow{Receiver: gwIDs[i], SNRdB: snr[i]}
	}
	rows[nGW] = AblationMultiGWRow{Receiver: "fused", SNRdB: math.NaN()}

	frames := 0
	for trial := 0; trial < trials; trial++ {
		for _, replay := range []bool{false, true} {
			frames++
			truth := float64(trueBias)
			if replay {
				truth += replayExtra
			}
			spec := lora.ChirpSpec{
				SF: p.SF, Bandwidth: p.Bandwidth,
				FrequencyOffset: truth,
				Phase:           rng.Float64() * 2 * math.Pi,
			}
			clean := spec.Synthesize(rate)
			obs := make([]netserver.PHYObservation, 0, nGW)
			for i := 0; i < nGW; i++ {
				iq := make([]complex128, len(clean))
				g := complex(dsp.NoiseForSNR(1, 1, snr[i]), 0)
				noise := dsp.GaussianNoise(rng, len(clean), 1)
				for k := range iq {
					iq[k] = clean[k] + noise[k]*g
				}
				est, err := estimators[i].EstimateFB(iq, rate)
				if err != nil {
					return nil, fmt.Errorf("experiments: multigw estimate (gw %d): %w", i, err)
				}
				o := netserver.PHYObservation{
					GatewayID: gwIDs[i],
					DeviceID:  "node",
					FrameID:   fmt.Sprintf("f%d", frames),
					FBHz:      est.DeltaHz,
					JitterHz:  jitter[i],
				}
				obs = append(obs, o)
				rows[i].MeanAbsErrHz += math.Abs(est.DeltaHz - truth)
				score(&rows[i], single[i].Check(o), replay)
			}
			fv, err := fused.CheckFrame(obs)
			if err != nil {
				return nil, fmt.Errorf("experiments: multigw fusion: %w", err)
			}
			rows[nGW].MeanAbsErrHz += math.Abs(fv.FBHz - truth)
			score(&rows[nGW], fv.Verdict, replay)
		}
	}
	for i := range rows {
		rows[i].Frames = frames / 2
		rows[i].MeanAbsErrHz /= float64(frames)
	}
	return rows, nil
}

// score tallies one verdict against the frame's ground truth.
func score(row *AblationMultiGWRow, v core.Verdict, replay bool) {
	if replay && v == core.VerdictReplay {
		row.ReplayOK++
	}
	if !replay && v == core.VerdictGenuine {
		row.GenuineOK++
	}
}

// PrintAblationMultiGateway renders the fused-vs-single comparison.
func PrintAblationMultiGateway(w io.Writer, rows []AblationMultiGWRow) {
	section(w, "Ablation: multi-gateway FB fusion (replay detection per receiver vs fused)")
	fmt.Fprintf(w, "%8s %9s %12s %12s %10s %14s\n",
		"receiver", "SNR(dB)", "genuine-ok", "replay-ok", "accuracy", "mean|err| Hz")
	for _, r := range rows {
		snr := fmt.Sprintf("%.1f", r.SNRdB)
		if math.IsNaN(r.SNRdB) {
			snr = "-"
		}
		fmt.Fprintf(w, "%8s %9s %9d/%-3d %9d/%-3d %9.2f %14.1f\n",
			r.Receiver, snr, r.GenuineOK, r.Frames, r.ReplayOK, r.Frames,
			r.Accuracy(), r.MeanAbsErrHz)
	}
	fmt.Fprintf(w, "fusion weighs each receiver by 1/jitter²: it tracks the best link and suppresses the far ones\n")
}
