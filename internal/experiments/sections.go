package experiments

import (
	"fmt"
	"io"
	"math"

	"softlora/internal/attack"
	"softlora/internal/chip"
	"softlora/internal/clock"
	"softlora/internal/core"
	"softlora/internal/dsp"
	"softlora/internal/lora"
	"softlora/internal/radio"
	"softlora/internal/sdr"
	"softlora/internal/timestamp"
)

// Sec811Result summarizes the full in-building frame delay attack.
type Sec811Result struct {
	MinWorkingSF    int
	JamOutcome      chip.Outcome
	Stealthy        bool
	EavesdropSINRdB float64
	RecordingUsable bool
	ReplayRSSIdBm   float64
	Inconspicuous   bool
	InjectedDelay   float64
	ReplayFBHz      float64
	DeviceFBHz      float64
	Detected        bool
}

// Sec811 runs the paper's §8.1.1 full attack: device in section A floor 3,
// gateway in C3 floor 6, USRP eavesdropper/replayer beside each, SF8
// (the minimum SF that crosses the building), jamming at 14.1 dBm, replay
// at 7 dBm, and checks that the SoftLoRa FB monitor still catches it.
func Sec811() (Sec811Result, error) {
	rng := newRand(811)
	b := radio.DefaultBuilding()
	device := b.FixedNode()
	gwPos, _ := b.Column("C3", 6)
	loss := b.LossdB(device, gwPos)

	// Minimum workable SF: the first whose demodulation floor the link SNR
	// clears with a fading margin — reliable indoor links need headroom
	// over the static floor for multipath fading (the paper finds SF8 is
	// the minimum for reliable communication on this path).
	const fadingMargindB = 8
	res := Sec811Result{MinWorkingSF: -1}
	linkSNR := radio.SNRAtReceiver(14, loss, b.NoiseFloordBm)
	for sf := 7; sf <= 12; sf++ {
		if linkSNR >= lora.DemodulationFloorSNR(sf)+fadingMargindB {
			res.MinWorkingSF = sf
			break
		}
	}
	sf := res.MinWorkingSF
	if sf < 7 {
		sf = 8
	}
	p := lora.DefaultParams(sf)
	p.LowDataRateOptimize = false

	scn := &attack.Scenario{
		Params:     p,
		SampleRate: sdr.DefaultSampleRate,
		Rand:       rng,
		Gateway:    chip.NewReceiver(p),

		DeviceTxPowerdBm:     14,
		DeviceGatewayLossdB:  loss,
		GatewayNoiseFloordBm: b.NoiseFloordBm,

		JammerTxPowerdBm:    14.1,
		JammerGatewayLossdB: 40,
		JamOnsetAfter:       attack.PickJamOnset(chip.NewReceiver(p), 20, 0.5),

		DeviceEaveLossdB:      40,
		JammerEaveLossdB:      loss,
		EaveNoiseFloordBm:     b.NoiseFloordBm,
		ReplayerGatewayLossdB: 40,
		Replayer: attack.Replayer{
			FrequencyBiasHz: -620,
			TxPowerdBm:      7,
			Delay:           5,
			JitterHz:        20,
			Rand:            rng,
		},
	}
	const deviceBias = -21.7e3
	frame := lora.Frame{Params: p, Payload: []byte("building attack demo")}
	out, err := scn.Execute(frame, lora.Impairments{FrequencyBias: deviceBias, InitialPhase: 0.3}, 1)
	if err != nil {
		return res, fmt.Errorf("experiments: §8.1.1: %w", err)
	}
	res.JamOutcome = out.JamOutcome
	res.Stealthy = out.Stealthy
	res.EavesdropSINRdB = out.EavesdropSINRdB
	res.RecordingUsable = out.RecordingUsable
	res.ReplayRSSIdBm = out.ReplayRSSIdBm
	res.Inconspicuous = out.RSSIInconspicuous
	res.InjectedDelay = out.InjectedDelay
	res.DeviceFBHz = deviceBias

	// SoftLoRa detection on the replayed waveform.
	est := &core.LinearRegressionEstimator{Params: p}
	n := int(p.SamplesPerChirp(sdr.DefaultSampleRate))
	fb, err := est.EstimateFB(out.ReplayEmission.Waveform[:n], sdr.DefaultSampleRate)
	if err != nil {
		return res, fmt.Errorf("experiments: §8.1.1 FB: %w", err)
	}
	res.ReplayFBHz = fb.DeltaHz
	det := core.NewReplayDetector()
	det.Enroll("device", deviceBias, 10)
	res.Detected = det.Check("device", fb.DeltaHz) == core.VerdictReplay
	return res, nil
}

// PrintSec811 renders the attack summary.
func PrintSec811(w io.Writer, r Sec811Result) {
	section(w, "§8.1.1: full frame delay attack in the building")
	fmt.Fprintf(w, "min workable SF across building: SF%d (paper: SF8)\n", r.MinWorkingSF)
	fmt.Fprintf(w, "jamming outcome: %v (stealthy=%v)\n", r.JamOutcome, r.Stealthy)
	fmt.Fprintf(w, "eavesdropper SINR: %.1f dB (recording usable=%v)\n", r.EavesdropSINRdB, r.RecordingUsable)
	fmt.Fprintf(w, "replay at 7 dBm → RSSI %.1f dBm, inconspicuous=%v\n", r.ReplayRSSIdBm, r.Inconspicuous)
	fmt.Fprintf(w, "injected delay τ=%.1f s; replay FB %.0f Hz vs device %.0f Hz → detected=%v\n",
		r.InjectedDelay, r.ReplayFBHz, r.DeviceFBHz, r.Detected)
}

// Sec82Result is the campus long-distance timestamping experiment.
type Sec82Result struct {
	DistanceM     float64
	PropagationUs float64
	LinkSNRdB     float64
	TrialErrorsUs []float64
	PaperErrorsUs []float64
}

// Sec82 reproduces the 1.07 km campus experiment: four timestamping trials
// over the free-space link (in heavy rain, hence the extra loss margin).
func Sec82() (Sec82Result, error) {
	rng := newRand(82)
	link := radio.DefaultCampusLink()
	res := Sec82Result{
		DistanceM:     link.Distance,
		PropagationUs: link.PropagationDelay() * 1e6,
		LinkSNRdB:     link.SNRdB(14),
		PaperErrorsUs: []float64{3.52, 2.27, 6.43, 0.23},
	}
	const rate = sdr.DefaultSampleRate
	p := lora.DefaultParams(12)
	for trial := 0; trial < 4; trial++ {
		spec := lora.ChirpSpec{
			SF:              7, // onset statistics depend on SNR, not SF
			Bandwidth:       p.Bandwidth,
			FrequencyOffset: -20e3,
			Phase:           rng.Float64() * 2 * math.Pi,
		}
		lead := int(1.5e-3 * rate)
		total := lead + int(spec.Duration()*rate) + 64
		iq := make([]complex128, total)
		want := float64(lead) + rng.Float64()
		spec.AddTo(iq, rate, want/rate)
		noise := dsp.GaussianNoise(rng, total, 1)
		g := dsp.NoiseForSNR(1, 1, res.LinkSNRdB)
		for i := range iq {
			iq[i] += noise[i] * complex(g, 0)
		}
		det := &core.AICDetector{LowPassCutoffHz: core.DefaultPrefilterCutoffHz}
		on, err := det.DetectOnset(iq, rate)
		if err != nil {
			return res, fmt.Errorf("experiments: §8.2 trial %d: %w", trial, err)
		}
		res.TrialErrorsUs = append(res.TrialErrorsUs,
			math.Abs(float64(on.Sample)-want)/rate*1e6)
	}
	return res, nil
}

// PrintSec82 renders the campus trials.
func PrintSec82(w io.Writer, r Sec82Result) {
	section(w, "§8.2: 1.07 km campus link")
	fmt.Fprintf(w, "distance %.0f m, propagation %.2f µs (paper: 3.57), link SNR %.1f dB\n",
		r.DistanceM, r.PropagationUs, r.LinkSNRdB)
	fmt.Fprintf(w, "trial timing errors (µs): ")
	for _, e := range r.TrialErrorsUs {
		fmt.Fprintf(w, "%.2f ", e)
	}
	fmt.Fprintf(w, "\npaper trials (µs):        ")
	for _, e := range r.PaperErrorsUs {
		fmt.Fprintf(w, "%.2f ", e)
	}
	fmt.Fprintln(w)
}

// Sec32Result reproduces the §3.2 overhead arithmetic.
type Sec32Result struct {
	SyncSessionsPerHour float64
	MaxBufferMinutes    float64
	ElapsedBits         int
	FramesPerHourSF12   int
	TimestampFraction   float64
	CommodityBoundMs    float64
	SoftLoRaBoundMs     float64
}

// Sec32 computes the sync-based vs sync-free comparison numbers.
func Sec32() Sec32Result {
	p := lora.DefaultParams(12)
	oh := timestamp.Overhead{PayloadBytes: 30, TimestampBytes: 8}
	commodity := timestamp.TimestampingError{
		BufferTime:       clock.MaxBufferTime(0.010, clock.PaperExampleDrift),
		DriftPPM:         clock.PaperExampleDrift,
		RadioUncertainty: 3e-3,
		PropagationDelay: 3.57e-6,
	}
	// SoftLoRa row: immediate transmission ("the elapsed time payload is
	// even not needed", §3.2) plus µs-level PHY arrival timestamping.
	softlora := timestamp.TimestampingError{
		BufferTime:       0,
		DriftPPM:         clock.PaperExampleDrift,
		RadioUncertainty: 20e-6,
		PropagationDelay: 3.57e-6,
	}
	return Sec32Result{
		SyncSessionsPerHour: clock.SyncSessionsPerHour(0.010, clock.PaperExampleDrift),
		MaxBufferMinutes:    clock.MaxBufferTime(0.010, clock.PaperExampleDrift) / 60,
		ElapsedBits:         oh.SyncFreePayloadBits(),
		FramesPerHourSF12:   p.MaxFramesPerHour(30, 0.01),
		TimestampFraction:   oh.SyncBasedPayloadFraction(),
		CommodityBoundMs:    commodity.Bound() * 1e3,
		SoftLoRaBoundMs:     softlora.Bound() * 1e3,
	}
}

// PrintSec32 renders the overhead comparison.
func PrintSec32(w io.Writer, r Sec32Result) {
	section(w, "§3.2: sync-based vs sync-free overhead arithmetic")
	fmt.Fprintf(w, "sync sessions/hour for <10 ms @40 ppm: %.1f (paper: 14)\n", r.SyncSessionsPerHour)
	fmt.Fprintf(w, "max buffer time: %.1f min (paper: 4.1); elapsed-time field: %d bits (paper: 18)\n",
		r.MaxBufferMinutes, r.ElapsedBits)
	fmt.Fprintf(w, "SF12 30B frames/hour under 1%% duty cycle: %d (paper: 24)\n", r.FramesPerHourSF12)
	fmt.Fprintf(w, "8B timestamp in 30B payload: %.0f%% of bandwidth (paper: 27%%)\n", r.TimestampFraction*100)
	fmt.Fprintf(w, "end-to-end bound: commodity stack + max buffering %.1f ms; SoftLoRa, immediate TX %.3f ms\n",
		r.CommodityBoundMs, r.SoftLoRaBoundMs)
}
