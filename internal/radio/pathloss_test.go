package radio

import (
	"math"
	"testing"
	"testing/quick"
)

func TestFreeSpacePathLossKnownValue(t *testing.T) {
	// 1.07 km at 869.75 MHz ≈ 91.8 dB.
	got := FreeSpacePathLoss(1070, 869.75e6)
	if math.Abs(got-91.85) > 0.1 {
		t.Errorf("FSPL = %f, want ~91.85", got)
	}
	if FreeSpacePathLoss(0, 869e6) != 0 || FreeSpacePathLoss(100, 0) != 0 {
		t.Error("degenerate inputs should give 0")
	}
}

func TestFreeSpacePathLossDistanceSquareLaw(t *testing.T) {
	f := func(dRaw uint16) bool {
		d := 1 + float64(dRaw)
		// Doubling distance adds ~6.02 dB.
		a := FreeSpacePathLoss(d, 869e6)
		b := FreeSpacePathLoss(2*d, 869e6)
		return math.Abs(b-a-6.0206) < 1e-3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestLogDistance(t *testing.T) {
	l := LogDistance{RefLossdB: 40, RefDistance: 1, Exponent: 3}
	if got := l.LossdB(1); got != 40 {
		t.Errorf("loss at ref = %f", got)
	}
	if got := l.LossdB(10); math.Abs(got-70) > 1e-9 {
		t.Errorf("loss at 10m = %f, want 70", got)
	}
	// Below reference distance: clamped.
	if got := l.LossdB(0.1); got != 40 {
		t.Errorf("loss below ref = %f, want 40", got)
	}
	// Zero RefDistance defaults to 1.
	l2 := LogDistance{RefLossdB: 40, Exponent: 2}
	if got := l2.LossdB(10); math.Abs(got-60) > 1e-9 {
		t.Errorf("default ref distance loss = %f", got)
	}
}

func TestPropagationDelayMatchesPaper(t *testing.T) {
	// Paper §8.2: 1.07 km → 3.57 µs.
	got := PropagationDelay(1070)
	if math.Abs(got-3.57e-6) > 0.02e-6 {
		t.Errorf("delay = %g, want ~3.57 µs", got)
	}
}

func TestThermalNoiseFloor(t *testing.T) {
	// 125 kHz, NF 6: −174 + 51 + 6 ≈ −117 dBm.
	got := ThermalNoiseFloordBm(125e3, 6)
	if math.Abs(got+117.03) > 0.05 {
		t.Errorf("noise floor = %f, want ~-117", got)
	}
}

func TestDBmConversionRoundTrip(t *testing.T) {
	for _, dbm := range []float64{-120, -30, 0, 14} {
		if got := PowerTodBm(DBmToPower(dbm)); math.Abs(got-dbm) > 1e-9 {
			t.Errorf("round trip %f -> %f", dbm, got)
		}
	}
	if !math.IsInf(PowerTodBm(0), -1) {
		t.Error("PowerTodBm(0) should be -Inf")
	}
}

func TestSNRAtReceiver(t *testing.T) {
	// 14 dBm TX, 100 dB loss, −100 dBm floor → 14 dB SNR.
	if got := SNRAtReceiver(14, 100, -100); got != 14 {
		t.Errorf("SNR = %f, want 14", got)
	}
}
