package radio

import (
	"math"
	"math/rand"
	"testing"

	"softlora/internal/lora"
)

func testChannel(noisedBm float64) *Channel {
	return &Channel{
		SampleRate:    500e3,
		NoiseFloordBm: noisedBm,
		Rand:          rand.New(rand.NewSource(60)),
	}
}

func TestReceiveSilence(t *testing.T) {
	ch := testChannel(-30)
	cap, err := ch.Receive(nil, 0, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if len(cap.IQ) != int(0.01*500e3) {
		t.Fatalf("len = %d", len(cap.IQ))
	}
	// Noise power should match the floor.
	var p float64
	for _, v := range cap.IQ {
		p += real(v)*real(v) + imag(v)*imag(v)
	}
	p /= float64(len(cap.IQ))
	if math.Abs(PowerTodBm(p)+30) > 0.5 {
		t.Errorf("noise power = %f dBm, want -30", PowerTodBm(p))
	}
}

func TestReceiveSingleEmission(t *testing.T) {
	ch := testChannel(-120)
	f := lora.Frame{Params: lora.DefaultParams(7), Payload: []byte("ping")}
	em := Emission{
		Frame:      f,
		StartTime:  0.002,
		TxPowerdBm: 14,
		PathLossdB: 60,
		Distance:   100,
	}
	cap, err := ch.Receive([]Emission{em}, 0, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	// Received power should be 14-60 = −46 dBm during the frame.
	onset := int((0.002 + PropagationDelay(100)) * cap.Rate)
	var p float64
	const span = 1000
	for _, v := range cap.IQ[onset+10 : onset+10+span] {
		p += real(v)*real(v) + imag(v)*imag(v)
	}
	p /= span
	if math.Abs(PowerTodBm(p)+46) > 0.5 {
		t.Errorf("rx power = %f dBm, want -46", PowerTodBm(p))
	}
	// Before the frame there should be (almost) nothing.
	var pre float64
	for _, v := range cap.IQ[:onset-10] {
		pre += real(v)*real(v) + imag(v)*imag(v)
	}
	pre /= float64(onset - 10)
	if PowerTodBm(pre) > -100 {
		t.Errorf("pre-frame power = %f dBm, want below -100", PowerTodBm(pre))
	}
}

func TestReceiveDecodableFrame(t *testing.T) {
	ch := testChannel(-120)
	params := lora.DefaultParams(7)
	f := lora.Frame{Params: params, Payload: []byte("end-to-end")}
	em := Emission{
		Frame:       f,
		Impairments: lora.Impairments{FrequencyBias: 200},
		StartTime:   0.001,
		TxPowerdBm:  14,
		PathLossdB:  40,
		Distance:    50,
	}
	dur, err := f.ModulatedDuration()
	if err != nil {
		t.Fatal(err)
	}
	cap, err := ch.Receive([]Emission{em}, 0, dur+0.005)
	if err != nil {
		t.Fatal(err)
	}
	d := &lora.Demodulator{Params: params, SampleRate: cap.Rate}
	res, err := d.Demodulate(cap.IQ)
	if err != nil {
		t.Fatal(err)
	}
	if string(res.Payload) != "end-to-end" || !res.CRCOK {
		t.Fatalf("decode failed: %q crc=%v", res.Payload, res.CRCOK)
	}
	// The frame-start estimate should match the channel timing within a
	// chirp.
	wantStart := cap.SampleAt(0.001 + PropagationDelay(50))
	n := params.SamplesPerChirp(cap.Rate)
	if math.Abs(float64(res.Sync.FrameStart)-wantStart) > n {
		t.Errorf("frame start = %d, want ~%f", res.Sync.FrameStart, wantStart)
	}
}

func TestReceiveCollision(t *testing.T) {
	// Two overlapping emissions must superpose: total power ≈ sum.
	ch := testChannel(-120)
	f := lora.Frame{Params: lora.DefaultParams(7), Payload: []byte("aaaa")}
	ems := []Emission{
		{Frame: f, StartTime: 0.001, TxPowerdBm: 0, PathLossdB: 0, Distance: 1},
		{Frame: f, Impairments: lora.Impairments{FrequencyBias: 40e3}, StartTime: 0.001, TxPowerdBm: 0, PathLossdB: 0, Distance: 1},
	}
	cap, err := ch.Receive(ems, 0, 0.06)
	if err != nil {
		t.Fatal(err)
	}
	at := int(0.002 * cap.Rate)
	var p float64
	const span = 2000
	for _, v := range cap.IQ[at : at+span] {
		p += real(v)*real(v) + imag(v)*imag(v)
	}
	p /= span
	if math.Abs(p-2) > 0.3 {
		t.Errorf("collision power = %f, want ~2", p)
	}
}

func TestReceiveWaveformReplay(t *testing.T) {
	// A recorded waveform emission must reappear at the scheduled time.
	ch := testChannel(-120)
	spec := lora.ChirpSpec{SF: 7, Bandwidth: 125e3}
	wf := spec.Synthesize(500e3)
	em := Emission{
		Waveform:   wf,
		StartTime:  0.003,
		TxPowerdBm: 0,
		PathLossdB: 20,
		Distance:   10,
	}
	cap, err := ch.Receive([]Emission{em}, 0, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	onset := int((0.003 + PropagationDelay(10)) * cap.Rate)
	var pre, post float64
	for _, v := range cap.IQ[:onset-5] {
		pre += real(v)*real(v) + imag(v)*imag(v)
	}
	pre /= float64(onset - 5)
	for _, v := range cap.IQ[onset+5 : onset+105] {
		post += real(v)*real(v) + imag(v)*imag(v)
	}
	post /= 100
	if PowerTodBm(post)-PowerTodBm(pre) < 30 {
		t.Errorf("replayed waveform not visible: pre %f dBm post %f dBm",
			PowerTodBm(pre), PowerTodBm(post))
	}
	if math.Abs(PowerTodBm(post)+20) > 1 {
		t.Errorf("replay power = %f dBm, want -20", PowerTodBm(post))
	}
}

func TestReceiveErrors(t *testing.T) {
	ch := &Channel{SampleRate: 0, Rand: rand.New(rand.NewSource(1))}
	if _, err := ch.Receive(nil, 0, 1); err == nil {
		t.Error("expected error for zero sample rate")
	}
	ch2 := &Channel{SampleRate: 1e6}
	if _, err := ch2.Receive(nil, 0, 1); err == nil {
		t.Error("expected error for nil Rand")
	}
}

func TestCaptureTimeMapping(t *testing.T) {
	c := Capture{Rate: 1e6, Start: 0.5}
	if got := c.TimeOf(1000); math.Abs(got-0.501) > 1e-12 {
		t.Errorf("TimeOf = %f", got)
	}
	if got := c.SampleAt(0.501); math.Abs(got-1000) > 1e-9 {
		t.Errorf("SampleAt = %f", got)
	}
}

// TestAddScaledWaveformClippedWindow pins the hoisted-bounds placement
// against a per-sample bounds-checked reference, for waveforms overlapping
// the destination start, the destination end, both, and neither.
func TestAddScaledWaveformClippedWindow(t *testing.T) {
	ref := func(dst, wf []complex128, rate, arrival, amp float64) {
		offset := arrival * rate
		base := int(math.Floor(offset))
		frac := offset - float64(base)
		a := complex(amp*(1-frac), 0)
		b := complex(amp*frac, 0)
		for i, v := range wf {
			j := base + i
			if j >= 0 && j < len(dst) {
				dst[j] += v * a
			}
			if j+1 >= 0 && j+1 < len(dst) {
				dst[j+1] += v * b
			}
		}
	}
	const rate = 500e3
	wf := make([]complex128, 64)
	for i := range wf {
		wf[i] = complex(float64(i+1), float64(-i))
	}
	for _, arrival := range []float64{
		-200 / rate,  // entirely before dst
		-32.5 / rate, // straddles dst start
		10.25 / rate, // interior, fractional
		100 / rate,   // straddles dst end (dst len 128)
		500 / rate,   // entirely past dst
		0,            // exact grid alignment (frac == 0)
	} {
		got := make([]complex128, 128)
		want := make([]complex128, 128)
		addScaledWaveform(got, wf, rate, arrival, 0.7)
		ref(want, wf, rate, arrival, 0.7)
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("arrival %g: sample %d = %v, want %v", arrival, i, got[i], want[i])
			}
		}
	}
}

// TestReceiveReleaseRecycles exercises the pooled capture buffer round
// trip: a released capture's buffer is reused by the next Receive, and the
// recycled buffer arrives zeroed (Receive accumulates into it).
func TestReceiveReleaseRecycles(t *testing.T) {
	ch := testChannel(-200) // essentially silent
	wf := make([]complex128, 32)
	for i := range wf {
		wf[i] = 1
	}
	em := []Emission{{Waveform: wf, StartTime: 0, TxPowerdBm: 0}}
	cap1, err := ch.Receive(em, 0, 2e-3)
	if err != nil {
		t.Fatal(err)
	}
	first := cap1.IQ[0]
	cap1.Release()
	if cap1.IQ != nil {
		t.Error("Release must nil the IQ slice")
	}
	cap2, err := ch.Receive(em, 0, 2e-3)
	if err != nil {
		t.Fatal(err)
	}
	defer cap2.Release()
	// Same deterministic emission, but fresh noise draws: the signal part
	// must match to within the noise scale — i.e. no stale data doubled in.
	if d := cmplxAbs(cap2.IQ[0] - first); d > 1e-6 {
		t.Errorf("recycled capture differs at sample 0 by %g (stale buffer?)", d)
	}
}

func cmplxAbs(v complex128) float64 {
	return math.Hypot(real(v), imag(v))
}
