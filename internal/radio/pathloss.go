package radio

import "math"

// SpeedOfLight in m/s, used for propagation delays.
const SpeedOfLight = 299_792_458.0

// FreeSpacePathLoss returns the free-space path loss in dB for distance d
// meters at frequency f Hz (Friis): 20*log10(d) + 20*log10(f) − 147.55.
func FreeSpacePathLoss(d, f float64) float64 {
	if d <= 0 || f <= 0 {
		return 0
	}
	return 20*math.Log10(d) + 20*math.Log10(f) - 147.55
}

// LogDistance models indoor/urban propagation: PL(d) = PL(d0) +
// 10*n*log10(d/d0) plus fixed obstacle losses added by the caller.
type LogDistance struct {
	// RefLossdB is the path loss at the reference distance RefDistance.
	RefLossdB float64
	// RefDistance is the reference distance in meters (default 1).
	RefDistance float64
	// Exponent is the path-loss exponent n (2 free space, 2.7-4 indoor).
	Exponent float64
}

// LossdB returns the path loss in dB at distance d meters.
func (l LogDistance) LossdB(d float64) float64 {
	d0 := l.RefDistance
	if d0 <= 0 {
		d0 = 1
	}
	if d < d0 {
		d = d0
	}
	return l.RefLossdB + 10*l.Exponent*math.Log10(d/d0)
}

// PropagationDelay returns the line-of-sight propagation delay in seconds
// for d meters.
func PropagationDelay(d float64) float64 { return d / SpeedOfLight }

// ThermalNoiseFloordBm returns the thermal noise power in dBm for the given
// bandwidth (Hz) and receiver noise figure (dB): −174 + 10*log10(BW) + NF.
func ThermalNoiseFloordBm(bandwidth, noiseFigure float64) float64 {
	return -174 + 10*math.Log10(bandwidth) + noiseFigure
}

// DBmToPower converts dBm to the linear sample-power convention of this
// package (0 dBm → 1.0).
func DBmToPower(dbm float64) float64 { return math.Pow(10, dbm/10) }

// PowerTodBm converts linear sample power to dBm (1.0 → 0 dBm).
func PowerTodBm(p float64) float64 {
	if p <= 0 {
		return math.Inf(-1)
	}
	return 10 * math.Log10(p)
}
