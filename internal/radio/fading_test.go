package radio

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

func TestFadingUnitMeanPower(t *testing.T) {
	for _, k := range []float64{-40, 0, 10} {
		f := &Fading{KFactordB: k, Rand: rand.New(rand.NewSource(90))}
		var sum float64
		const n = 20000
		for i := 0; i < n; i++ {
			sum += math.Pow(10, f.DrawGaindB()/10)
		}
		if mean := sum / n; math.Abs(mean-1) > 0.05 {
			t.Errorf("K=%v dB: mean linear power = %f, want 1", k, mean)
		}
	}
}

func TestFadingLargeKIsNearlyConstant(t *testing.T) {
	f := &Fading{KFactordB: 40, Rand: rand.New(rand.NewSource(91))}
	for i := 0; i < 100; i++ {
		if g := f.DrawGaindB(); math.Abs(g) > 1 {
			t.Fatalf("K=40 dB gain %f, want ~0", g)
		}
	}
}

func TestRayleighOutageProbabilityMatchesTheory(t *testing.T) {
	// Empirical outage rate at margin m should match 1 − exp(−10^(−m/10)).
	f := &Fading{KFactordB: -60, Rand: rand.New(rand.NewSource(92))}
	const n = 50000
	gains := make([]float64, n)
	for i := range gains {
		gains[i] = f.DrawGaindB()
	}
	sort.Float64s(gains)
	for _, m := range []float64{5, 8, 10} {
		// Outage: gain below −m dB.
		idx := sort.SearchFloat64s(gains, -m)
		got := float64(idx) / n
		want := 1 - math.Exp(-math.Pow(10, -m/10))
		if math.Abs(got-want) > 0.2*want+0.002 {
			t.Errorf("margin %v dB: outage %f, theory %f", m, got, want)
		}
	}
}

func TestRayleighOutageMargin(t *testing.T) {
	// 99% reliability needs ≈ 20 dB; 90% ≈ 9.8 dB — the ~8 dB figure used
	// by §8.1.1's min-SF analysis corresponds to ~85% per-frame
	// reliability, reasonable for retransmitting telemetry.
	if m := RayleighOutageMargindB(0.99); math.Abs(m-19.98) > 0.1 {
		t.Errorf("99%% margin = %f", m)
	}
	if m := RayleighOutageMargindB(0.90); math.Abs(m-9.77) > 0.1 {
		t.Errorf("90%% margin = %f", m)
	}
	if RayleighOutageMargindB(0) != 0 || RayleighOutageMargindB(1) != 0 {
		t.Error("degenerate reliabilities should give 0")
	}
}

func TestFadingMarginConsistentWithSec811(t *testing.T) {
	// The fading margin the §8.1.1 experiment assumes (8 dB) sits in the
	// plausible 85-90% reliability band for Rayleigh.
	lo := RayleighOutageMargindB(0.85)
	hi := RayleighOutageMargindB(0.92)
	if 8 < lo-1 || 8 > hi+1 {
		t.Errorf("8 dB margin outside [%f, %f]", lo, hi)
	}
}
