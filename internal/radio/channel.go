package radio

import (
	"fmt"
	"math"
	"math/rand"

	"softlora/internal/bufpool"
	"softlora/internal/lora"
)

// Emission is one scheduled transmission entering the channel.
type Emission struct {
	// Frame is the LoRa frame to modulate.
	Frame lora.Frame
	// Impairments are the transmitter's analog imperfections.
	Impairments lora.Impairments
	// StartTime is the emission onset in seconds on the channel timeline
	// (time the first preamble sample leaves the antenna).
	StartTime float64
	// TxPowerdBm is the transmit power (unit waveform amplitude ≡ 0 dBm).
	TxPowerdBm float64
	// PathLossdB is the total propagation loss to the receiver.
	PathLossdB float64
	// Distance in meters sets the propagation delay to the receiver.
	Distance float64
	// Waveform, when non-nil, is transmitted instead of modulating Frame —
	// used by the replayer, which re-emits recorded I/Q data verbatim.
	Waveform []complex128
}

// receivedAmplitude converts TX power and path loss into the baseband
// amplitude scale factor applied to a unit waveform.
func (e Emission) receivedAmplitude() float64 {
	rxdBm := e.TxPowerdBm - e.PathLossdB
	return math.Sqrt(DBmToPower(rxdBm))
}

// Channel combines emissions and noise into receiver captures.
type Channel struct {
	// SampleRate of the produced capture in samples/s.
	SampleRate float64
	// NoiseFloordBm is the AWGN power over the capture bandwidth.
	NoiseFloordBm float64
	// Rand supplies the noise; required.
	Rand *rand.Rand
}

// Capture holds a received baseband trace with its timing metadata.
type Capture struct {
	// IQ is the baseband trace.
	IQ []complex128
	// Rate is the sample rate in samples/s.
	Rate float64
	// Start is the channel-timeline time of sample 0, in seconds.
	Start float64
}

// TimeOf returns the channel-timeline time of sample i.
func (c *Capture) TimeOf(i int) float64 { return c.Start + float64(i)/c.Rate }

// SampleAt returns the (fractional) sample index corresponding to channel
// time t.
func (c *Capture) SampleAt(t float64) float64 { return (t - c.Start) * c.Rate }

// Release returns the capture's IQ buffer to the process-wide capture pool
// and clears the slice. Call it once the capture is fully consumed (the
// simulation batch path does, per uplink); never touch the IQ data
// afterwards. Releasing is optional — unreleased captures are ordinary
// garbage.
func (c *Capture) Release() {
	bufpool.Put(c.IQ)
	c.IQ = nil
}

// Receive renders the channel as seen by a receiver over the window
// [start, start+duration): every emission is modulated, delayed by its
// propagation time, scaled by its path gain, and summed, then AWGN at the
// noise floor is added.
func (ch *Channel) Receive(emissions []Emission, start, duration float64) (*Capture, error) {
	if ch.SampleRate <= 0 {
		return nil, fmt.Errorf("radio: sample rate must be positive")
	}
	if ch.Rand == nil {
		return nil, fmt.Errorf("radio: Channel.Rand must be set")
	}
	n := int(math.Ceil(duration * ch.SampleRate))
	iq := bufpool.Get(n)
	for i, e := range emissions {
		arrival := e.StartTime + PropagationDelay(e.Distance) - start
		amp := e.receivedAmplitude()
		if e.Waveform != nil {
			addScaledWaveform(iq, e.Waveform, ch.SampleRate, arrival, amp)
			continue
		}
		imp := e.Impairments
		if imp.Amplitude == 0 {
			imp.Amplitude = 1
		}
		imp.Amplitude *= amp
		if err := e.Frame.ModulateAt(iq, imp, ch.SampleRate, arrival); err != nil {
			return nil, fmt.Errorf("radio: emission %d: %w", i, err)
		}
	}
	// AWGN at the configured floor.
	sigma := math.Sqrt(DBmToPower(ch.NoiseFloordBm) / 2)
	for i := range iq {
		iq[i] += complex(ch.Rand.NormFloat64()*sigma, ch.Rand.NormFloat64()*sigma)
	}
	return &Capture{IQ: iq, Rate: ch.SampleRate, Start: start}, nil
}

// addScaledWaveform adds a pre-rendered waveform (sampled at the channel
// rate) into dst at continuous start time arrival, scaled by amp. The
// waveform is placed at the nearest sample grid point with linear
// interpolation between neighbors to honor fractional delays.
func addScaledWaveform(dst, wf []complex128, rate, arrival, amp float64) {
	offset := arrival * rate
	base := int(math.Floor(offset))
	frac := offset - float64(base)
	a := complex(amp*(1-frac), 0)
	b := complex(amp*frac, 0)
	// Clip each tap's overlap window against dst once, instead of
	// bounds-checking every sample.
	lo, hi := overlap(base, len(wf), len(dst))
	for i := lo; i < hi; i++ {
		dst[base+i] += wf[i] * a
	}
	lo, hi = overlap(base+1, len(wf), len(dst))
	for i := lo; i < hi; i++ {
		dst[base+1+i] += wf[i] * b
	}
}

// overlap returns the waveform index range [lo, hi) whose samples land
// inside a destination of length dstLen when placed at offset base.
func overlap(base, wfLen, dstLen int) (lo, hi int) {
	lo = 0
	if base < 0 {
		lo = -base
	}
	hi = wfLen
	if m := dstLen - base; m < hi {
		hi = m
	}
	return lo, hi
}

// SNRAtReceiver returns the SNR in dB a receiver observes for the given
// transmit power, path loss, and noise floor.
func SNRAtReceiver(txPowerdBm, pathLossdB, noiseFloordBm float64) float64 {
	return txPowerdBm - pathLossdB - noiseFloordBm
}
