package radio

import (
	"math"
	"math/rand"
)

// Fading models small-scale multipath fading on top of the deterministic
// path loss: per-frame block fading with a Rician/Rayleigh envelope. The
// fading margin required for reliable indoor links (≈8 dB, used by the
// §8.1.1 minimum-SF analysis) follows directly from the Rayleigh outage
// curve implemented here.
type Fading struct {
	// KFactordB is the Rician K factor: the power ratio of the dominant
	// (line-of-sight) path to the scattered paths. −Inf (or very negative)
	// degenerates to Rayleigh; large K degenerates to no fading.
	KFactordB float64
	// Rand supplies the per-frame draw; required.
	Rand *rand.Rand
}

// DrawGaindB samples one frame's fading gain in dB (0 dB mean power).
// Block fading: the whole frame experiences one draw, appropriate for
// LoRa's narrowband, quasi-static indoor channels.
func (f *Fading) DrawGaindB() float64 {
	k := math.Pow(10, f.KFactordB/10)
	// Rician fading: complex gain = sqrt(K/(K+1)) + CN(0, 1/(K+1)).
	sigma := math.Sqrt(1 / (2 * (k + 1)))
	los := math.Sqrt(k / (k + 1))
	re := los + f.Rand.NormFloat64()*sigma
	im := f.Rand.NormFloat64() * sigma
	p := re*re + im*im
	if p <= 0 {
		p = 1e-12
	}
	return 10 * math.Log10(p)
}

// RayleighOutageMargindB returns the fading margin (dB) required so that a
// Rayleigh-faded link stays above its threshold with the given reliability
// (e.g. 0.99): for Rayleigh, P(outage) = 1 − exp(−10^(−m/10)) ≈ 10^(−m/10),
// so m = −10·log10(−ln(reliability)).
func RayleighOutageMargindB(reliability float64) float64 {
	if reliability <= 0 || reliability >= 1 {
		return 0
	}
	return -10 * math.Log10(-math.Log(reliability))
}
