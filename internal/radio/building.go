package radio

import (
	"fmt"
	"math"
)

// Building models the paper's Fig. 15 evaluation site: a 190 m long,
// six-floor concrete building with three sections (A, B, C) separated by
// two junctions (J). Radio paths accumulate log-distance loss plus
// per-floor and per-junction penetration losses; a fixed system loss
// absorbs antenna and measurement-chain effects, calibrated so the SNR
// survey spans the paper's measured −1 to 13 dB.
type Building struct {
	// Floors is the number of floors (6 in the paper).
	Floors int
	// FloorHeight is the floor-to-floor height in meters.
	FloorHeight float64
	// Length is the building's long dimension in meters (190 in the
	// paper).
	Length float64
	// PathLoss is the in-building log-distance model.
	PathLoss LogDistance
	// FloorAttdB is the attenuation per concrete floor crossed.
	FloorAttdB float64
	// JunctionAttdB is the attenuation per section junction crossed.
	JunctionAttdB float64
	// NoiseFloordBm is the in-building interference-dominated noise floor
	// over the LoRa channel bandwidth.
	NoiseFloordBm float64
}

// Position is a location inside the building.
type Position struct {
	// Label names the column (A1..C3 with J junction columns).
	Label string
	// X is the distance along the long dimension in meters.
	X float64
	// Floor is the floor number, 1-based.
	Floor int
}

// columnLabels are the 11 survey columns of Fig. 15 along the 190 m
// dimension.
var columnLabels = []string{"A1", "A2", "A3", "J1", "B1", "B2", "B3", "J2", "C1", "C2", "C3"}

// junctionX returns the X coordinates of the two section junctions.
func (b *Building) junctionX() (float64, float64) {
	step := b.Length / float64(len(columnLabels)-1)
	return 3 * step, 7 * step
}

// Columns returns the survey column labels in order along the long
// dimension, for callers placing nodes or gateways on the geometry.
func (b *Building) Columns() []string {
	out := make([]string, len(columnLabels))
	copy(out, columnLabels)
	return out
}

// Column returns the position of the named column on the given floor.
func (b *Building) Column(label string, floor int) (Position, error) {
	step := b.Length / float64(len(columnLabels)-1)
	for i, l := range columnLabels {
		if l == label {
			return Position{Label: label, X: float64(i) * step, Floor: floor}, nil
		}
	}
	return Position{}, fmt.Errorf("radio: unknown building column %q", label)
}

// Distance returns the 3D straight-line distance between two positions.
func (b *Building) Distance(a, c Position) float64 {
	dx := a.X - c.X
	dz := float64(a.Floor-c.Floor) * b.FloorHeight
	return math.Sqrt(dx*dx + dz*dz)
}

// LossdB returns the total path loss between two positions: log-distance
// loss plus floor and junction penetration.
func (b *Building) LossdB(a, c Position) float64 {
	loss := b.PathLoss.LossdB(b.Distance(a, c))
	floors := a.Floor - c.Floor
	if floors < 0 {
		floors = -floors
	}
	loss += float64(floors) * b.FloorAttdB
	j1, j2 := b.junctionX()
	lo, hi := a.X, c.X
	if lo > hi {
		lo, hi = hi, lo
	}
	if lo < j1 && hi > j1 {
		loss += b.JunctionAttdB
	}
	if lo < j2 && hi > j2 {
		loss += b.JunctionAttdB
	}
	return loss
}

// SNRdB returns the SNR a receiver at rx observes for a transmitter at tx
// with the given power.
func (b *Building) SNRdB(tx, rx Position, txPowerdBm float64) float64 {
	return SNRAtReceiver(txPowerdBm, b.LossdB(tx, rx), b.NoiseFloordBm)
}

// SurveyPositions returns measurement positions across all columns and
// floors (excluding inaccessible cells, mirroring the paper's note that C3
// on floors 1-2 was not accessible).
func (b *Building) SurveyPositions() []Position {
	var out []Position
	for f := 1; f <= b.Floors; f++ {
		for _, label := range columnLabels {
			if label == "C3" && f <= 2 {
				continue // not accessible, per the paper
			}
			p, err := b.Column(label, f)
			if err != nil {
				continue
			}
			out = append(out, p)
		}
	}
	return out
}

// FixedNode returns the paper's fixed transmitter position: section A
// (column A1), 3rd floor.
func (b *Building) FixedNode() Position {
	p, _ := b.Column("A1", 3)
	return p
}

// DefaultBuilding returns the Fig. 15 site calibrated so the SNR survey
// spans approximately −1 to 13 dB, the range the paper measured.
func DefaultBuilding() *Building {
	return &Building{
		Floors:      6,
		FloorHeight: 3.5,
		Length:      190,
		PathLoss: LogDistance{
			RefLossdB:   96.8,
			RefDistance: 1,
			Exponent:    0.55,
		},
		FloorAttdB:    1.2,
		JunctionAttdB: 1.0,
		NoiseFloordBm: -100,
	}
}
