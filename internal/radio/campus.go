package radio

// CampusLink models the paper's §8.2 long-distance experiment: a LoRaWAN
// end device on a roof top and a SoftLoRa gateway in an open stair case of
// another building, 1.07 km apart, evaluated during heavy rain.
type CampusLink struct {
	// Distance between the two sites in meters (1070 in the paper).
	Distance float64
	// Frequency is the RF carrier in Hz.
	Frequency float64
	// ExtraLossdB covers rain, foliage, and antenna misalignment (rain
	// attenuation at 868 MHz is fractions of a dB; the paper notes heavy
	// rain during the tests).
	ExtraLossdB float64
	// NoiseFloordBm is the outdoor noise floor over the channel bandwidth.
	NoiseFloordBm float64
}

// DefaultCampusLink returns the §8.2 deployment: 1.07 km free-space link at
// 869.75 MHz with a small rain margin.
func DefaultCampusLink() *CampusLink {
	return &CampusLink{
		Distance:      1070,
		Frequency:     869.75e6,
		ExtraLossdB:   3,
		NoiseFloordBm: -110,
	}
}

// LossdB returns the total link loss (free space + extra losses).
func (c *CampusLink) LossdB() float64 {
	return FreeSpacePathLoss(c.Distance, c.Frequency) + c.ExtraLossdB
}

// SNRdB returns the receiver SNR for the given transmit power.
func (c *CampusLink) SNRdB(txPowerdBm float64) float64 {
	return SNRAtReceiver(txPowerdBm, c.LossdB(), c.NoiseFloordBm)
}

// PropagationDelay returns the one-way signal flight time in seconds
// (3.57 µs at 1.07 km, as the paper reports).
func (c *CampusLink) PropagationDelay() float64 {
	return PropagationDelay(c.Distance)
}
