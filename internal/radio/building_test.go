package radio

import (
	"math"
	"testing"
)

func TestBuildingColumns(t *testing.T) {
	b := DefaultBuilding()
	a1, err := b.Column("A1", 3)
	if err != nil {
		t.Fatal(err)
	}
	if a1.X != 0 || a1.Floor != 3 {
		t.Errorf("A1 = %+v", a1)
	}
	c3, err := b.Column("C3", 6)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c3.X-190) > 1e-9 {
		t.Errorf("C3.X = %f, want 190", c3.X)
	}
	if _, err := b.Column("Z9", 1); err == nil {
		t.Error("expected error for unknown column")
	}
}

func TestBuildingDistance(t *testing.T) {
	b := DefaultBuilding()
	a, _ := b.Column("A1", 1)
	c, _ := b.Column("A1", 3)
	if got := b.Distance(a, c); math.Abs(got-7) > 1e-9 {
		t.Errorf("two floors = %f m, want 7", got)
	}
	if got := b.Distance(a, a); got != 0 {
		t.Errorf("self distance = %f", got)
	}
}

func TestBuildingJunctionLoss(t *testing.T) {
	b := DefaultBuilding()
	a1, _ := b.Column("A1", 3)
	a3, _ := b.Column("A3", 3) // same section: no junction
	b1, _ := b.Column("B1", 3) // crosses J1
	c1, _ := b.Column("C1", 3) // crosses J1 and J2
	lossA3 := b.LossdB(a1, a3)
	lossB1 := b.LossdB(a1, b1)
	lossC1 := b.LossdB(a1, c1)
	distLossB1 := b.PathLoss.LossdB(b.Distance(a1, b1))
	if math.Abs((lossB1-distLossB1)-b.JunctionAttdB) > 1e-9 {
		t.Errorf("B1 junction loss = %f, want %f", lossB1-distLossB1, b.JunctionAttdB)
	}
	distLossC1 := b.PathLoss.LossdB(b.Distance(a1, c1))
	if math.Abs((lossC1-distLossC1)-2*b.JunctionAttdB) > 1e-9 {
		t.Errorf("C1 junction loss = %f, want %f", lossC1-distLossC1, 2*b.JunctionAttdB)
	}
	if lossA3 >= lossB1 {
		t.Error("closer same-section position should have less loss")
	}
}

func TestBuildingFloorLoss(t *testing.T) {
	b := DefaultBuilding()
	tx := b.FixedNode()
	same, _ := b.Column("A2", 3)
	above, _ := b.Column("A2", 6)
	lossSame := b.LossdB(tx, same)
	lossAbove := b.LossdB(tx, above)
	if lossAbove-lossSame < 3*b.FloorAttdB-1 {
		t.Errorf("3-floor penalty = %f, want >= %f", lossAbove-lossSame, 3*b.FloorAttdB)
	}
}

func TestBuildingSurveySNRRangeMatchesPaper(t *testing.T) {
	// Paper Fig. 15: survey SNRs from −1 to 13 dB with TX power 14 dBm.
	b := DefaultBuilding()
	tx := b.FixedNode()
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, pos := range b.SurveyPositions() {
		if pos == tx {
			continue
		}
		snr := b.SNRdB(tx, pos, 14)
		if snr < lo {
			lo = snr
		}
		if snr > hi {
			hi = snr
		}
	}
	if lo < -6 || lo > 3 {
		t.Errorf("min survey SNR = %f, want near -1", lo)
	}
	if hi < 9 || hi > 20 {
		t.Errorf("max survey SNR = %f, want near 13", hi)
	}
}

func TestBuildingSNRDecaysWithDistance(t *testing.T) {
	b := DefaultBuilding()
	tx := b.FixedNode()
	a2, _ := b.Column("A2", 3)
	c2, _ := b.Column("C2", 3)
	if b.SNRdB(tx, a2, 14) <= b.SNRdB(tx, c2, 14) {
		t.Error("SNR should decay along the building")
	}
}

func TestSurveyPositionsExcludeInaccessible(t *testing.T) {
	b := DefaultBuilding()
	for _, p := range b.SurveyPositions() {
		if p.Label == "C3" && p.Floor <= 2 {
			t.Fatalf("inaccessible position %+v included", p)
		}
	}
	// 11 columns × 6 floors − 2 inaccessible = 64.
	if got := len(b.SurveyPositions()); got != 64 {
		t.Errorf("survey positions = %d, want 64", got)
	}
}

func TestCampusLink(t *testing.T) {
	c := DefaultCampusLink()
	if got := c.PropagationDelay(); math.Abs(got-3.57e-6) > 0.02e-6 {
		t.Errorf("delay = %g, want 3.57 µs", got)
	}
	// SNR should be comfortably above the SF12 demodulation floor.
	snr := c.SNRdB(14)
	if snr < 0 || snr > 40 {
		t.Errorf("campus SNR = %f, want positive and plausible", snr)
	}
}
