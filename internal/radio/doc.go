// Package radio simulates the wireless environment between LoRa
// transmitters and receivers at complex equivalent baseband: path-loss
// models (free-space, log-distance, multi-floor indoor), propagation delay,
// additive white Gaussian channel noise, and the superposition of multiple
// concurrent emitters into a single receiver capture.
//
// Power convention: a unit-amplitude baseband waveform (average power 1.0)
// represents 0 dBm at the transmit antenna; path gains scale amplitudes so
// that sample power corresponds to received power in milliwatts. The
// thermal/interference noise floor is configured in dBm over the channel
// bandwidth.
//
// The package also provides the two site models used by the paper's
// evaluation: the 190 m six-floor concrete building of Fig. 15 and the
// 1.07 km campus link of §8.2.
package radio
