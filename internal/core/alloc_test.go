package core

import (
	"math"
	"math/rand"
	"testing"

	"softlora/internal/dsp"
	"softlora/internal/lora"
)

// Allocation-regression tests: the planned-DSP refactor made the per-uplink
// hot paths allocation-free in steady state (after one warm-up call sizes
// the scratch). These tests pin that property so later changes cannot
// silently reintroduce per-window allocations.

// chirpAtSNR synthesizes one biased chirp with trailing margin at the given
// SNR, long enough for the single-chirp FB estimators.
func chirpAtSNR(rng *rand.Rand, deltaHz, snrDB float64) []complex128 {
	p := lora.DefaultParams(7)
	spec := lora.ChirpSpec{SF: p.SF, Bandwidth: p.Bandwidth, FrequencyOffset: deltaHz, Phase: 0.4}
	iq := spec.Synthesize(testRate)
	noise := dsp.GaussianNoise(rng, len(iq), 1)
	g := dsp.NoiseForSNR(1, 1, snrDB)
	for i := range iq {
		iq[i] += noise[i] * complex(g, 0)
	}
	return iq
}

func TestDechirpFFTEstimatorZeroAllocSteadyState(t *testing.T) {
	rng := rand.New(rand.NewSource(201))
	iq := chirpAtSNR(rng, -21e3, 30)
	// Both the decimated coarse→zoom fast path and the monolithic
	// padded-FFT reference must stay allocation-free once warm.
	for _, exhaustive := range []bool{false, true} {
		est := &DechirpFFTEstimator{Params: lora.DefaultParams(7), Exhaustive: exhaustive}
		if _, err := est.EstimateFB(iq, testRate); err != nil { // warm-up sizes scratch
			t.Fatal(err)
		}
		allocs := testing.AllocsPerRun(20, func() {
			if _, err := est.EstimateFB(iq, testRate); err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Errorf("EstimateFB (exhaustive=%v) allocated %v times per run in steady state", exhaustive, allocs)
		}
	}
	// The zoom fast path must actually be exercising the decimated branch
	// at the test geometry, not degenerating to D=1.
	est := &DechirpFFTEstimator{Params: lora.DefaultParams(7)}
	if _, err := est.EstimateFB(iq, testRate); err != nil {
		t.Fatal(err)
	}
	if est.dec < 2 {
		t.Fatalf("fast path decimation = %d at %g Msps; decimated branch not exercised", est.dec, testRate/1e6)
	}
}

func TestLinearRegressionEstimatorZeroAllocSteadyState(t *testing.T) {
	rng := rand.New(rand.NewSource(202))
	iq := chirpAtSNR(rng, -21e3, 30)
	est := &LinearRegressionEstimator{Params: lora.DefaultParams(7)}
	if _, err := est.EstimateFB(iq, testRate); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := est.EstimateFB(iq, testRate); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("LinearRegressionEstimator.EstimateFB allocated %v times per run in steady state", allocs)
	}
}

func TestDechirpOnsetZeroAllocSteadyState(t *testing.T) {
	rng := rand.New(rand.NewSource(203))
	det := &DechirpOnsetDetector{Params: testParams()}
	iq, _ := frameCapture(t, rng, -22e3, 0.8, 20)
	// The default (hierarchical) detector at the test rate must actually
	// exercise the paths this test pins: the boxcar-decimated coarse scan
	// and the sliding-DFT/Goertzel refinement.
	n := int(det.Params.SamplesPerChirp(testRate))
	if dec := det.coarseDecimation(n, testRate); dec < 2 {
		t.Fatalf("coarse decimation = %d at %g Msps; decimated path not exercised", dec, testRate/1e6)
	}
	if _, err := det.DetectOnset(iq, testRate); err != nil { // warm-up
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(5, func() {
		if _, err := det.DetectOnset(iq, testRate); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("DechirpOnsetDetector.DetectOnset allocated %v times per run in steady state", allocs)
	}
}

// TestDechirpOnsetHierarchyPathsZeroAlloc pins the two new hot paths of the
// hierarchical search in isolation: the decimated coarse fill metric and
// the sliding-DFT/Goertzel refinement, each allocation-free after warm-up.
func TestDechirpOnsetHierarchyPathsZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(207))
	det := &DechirpOnsetDetector{Params: testParams()}
	iq, _ := frameCapture(t, rng, -21e3, 1.2, 20)
	n := int(det.Params.SamplesPerChirp(testRate))
	det.ensureScratch(n, testRate)
	dec := det.coarseDecimation(n, testRate)
	det.ensureDroop(n, dec)
	det.ensureGlobalDechirp(iq, testRate)
	// Warm-up: sizes the decimated plan, sliding bins and theta buffer.
	det.fillMagDec(iq, 0, n, testRate, dec)
	det.refineApex(iq, 2*n, n, testRate)
	if allocs := testing.AllocsPerRun(10, func() {
		det.fillMagDec(iq, n/4, n, testRate, dec)
	}); allocs != 0 {
		t.Errorf("decimated coarse scan allocated %v times per run", allocs)
	}
	if allocs := testing.AllocsPerRun(5, func() {
		det.ensureGlobalDechirp(iq, testRate)
		det.refineApex(iq, 2*n, n, testRate)
		det.toneMetric(n, n, 0)
	}); allocs != 0 {
		t.Errorf("sliding-DFT/Goertzel refinement allocated %v times per run", allocs)
	}
}

// TestDechirpOnsetExhaustiveZeroAllocSteadyState keeps the brute-force
// reference path allocation-free too, so parity runs do not skew
// benchmarks with GC noise.
func TestDechirpOnsetExhaustiveZeroAllocSteadyState(t *testing.T) {
	rng := rand.New(rand.NewSource(208))
	det := &DechirpOnsetDetector{Params: testParams(), Exhaustive: true}
	iq, _ := frameCapture(t, rng, -22e3, 0.8, 20)
	if _, err := det.DetectOnset(iq, testRate); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(3, func() {
		if _, err := det.DetectOnset(iq, testRate); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("exhaustive DetectOnset allocated %v times per run in steady state", allocs)
	}
}

func TestUpDownEstimatorZeroAllocSteadyState(t *testing.T) {
	rng := rand.New(rand.NewSource(204))
	est := &UpDownEstimator{Params: testParams()}
	iq, onset := frameCapture(t, rng, -20e3, 0.3, 25)
	if _, err := est.Estimate(iq, int(onset), testRate); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(10, func() {
		if _, err := est.Estimate(iq, int(onset), testRate); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("UpDownEstimator.Estimate allocated %v times per run in steady state", allocs)
	}
}

// TestScratchResultsMatchFreshDetector guards the scratch reuse itself:
// running a warm detector on a second, different capture must match a
// freshly built detector bit for bit.
func TestScratchResultsMatchFreshDetector(t *testing.T) {
	rngA := rand.New(rand.NewSource(205))
	warm := &DechirpOnsetDetector{Params: testParams()}
	iq1, _ := frameCapture(t, rngA, -22e3, 0.8, 10)
	iq2, _ := frameCapture(t, rngA, 15e3, 2.1, 10)
	if _, err := warm.DetectOnset(iq1, testRate); err != nil {
		t.Fatal(err)
	}
	got, err := warm.DetectOnset(iq2, testRate)
	if err != nil {
		t.Fatal(err)
	}
	fresh := &DechirpOnsetDetector{Params: testParams()}
	want, err := fresh.DetectOnset(iq2, testRate)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("warm detector: %+v, fresh detector: %+v", got, want)
	}

	est := &DechirpFFTEstimator{Params: testParams()}
	chirp := chirpAtSNR(rand.New(rand.NewSource(206)), -9e3, 20)
	if _, err := est.EstimateFB(iq1[:len(chirp)], testRate); err != nil {
		t.Fatal(err)
	}
	gotFB, err := est.EstimateFB(chirp, testRate)
	if err != nil {
		t.Fatal(err)
	}
	wantFB, err := (&DechirpFFTEstimator{Params: testParams()}).EstimateFB(chirp, testRate)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(gotFB.DeltaHz-wantFB.DeltaHz) != 0 || gotFB.Quality != wantFB.Quality {
		t.Errorf("warm estimator: %+v, fresh estimator: %+v", gotFB, wantFB)
	}
}
