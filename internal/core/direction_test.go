package core

import (
	"math/rand"
	"testing"

	"softlora/internal/dsp"
	"softlora/internal/lora"
)

func dirSegment(t *testing.T, rng *rand.Rand, down bool, snrDB float64) []complex128 {
	t.Helper()
	p := lora.DefaultParams(7)
	spec := lora.ChirpSpec{
		SF:              p.SF,
		Bandwidth:       p.Bandwidth,
		Down:            down,
		FrequencyOffset: -21e3,
		Phase:           rng.Float64() * 6,
	}
	iq := spec.Synthesize(testRate)
	noise := dsp.GaussianNoise(rng, len(iq), 1)
	g := dsp.NoiseForSNR(1, 1, snrDB)
	for i := range iq {
		iq[i] += noise[i] * complex(g, 0)
	}
	return iq
}

func TestDirectionDetectorWithinOneChirp(t *testing.T) {
	// §4.2.2: the adversary senses the direction within a chirp time.
	rng := rand.New(rand.NewSource(150))
	det := &DirectionDetector{Params: lora.DefaultParams(7)}
	for trial := 0; trial < 10; trial++ {
		if got := det.Classify(dirSegment(t, rng, false, 10), testRate); got != DirectionUplink {
			t.Errorf("trial %d: up chirp classified %v", trial, got)
		}
		if got := det.Classify(dirSegment(t, rng, true, 10), testRate); got != DirectionDownlink {
			t.Errorf("trial %d: down chirp classified %v", trial, got)
		}
	}
}

func TestDirectionDetectorNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(151))
	det := &DirectionDetector{Params: lora.DefaultParams(7)}
	noise := dsp.GaussianNoise(rng, 4096, 1)
	if got := det.Classify(noise, testRate); got != DirectionUnknown {
		t.Errorf("noise classified %v", got)
	}
	if got := det.Classify(nil, testRate); got != DirectionUnknown {
		t.Errorf("empty classified %v", got)
	}
}

func TestDirectionDetectorLowSNR(t *testing.T) {
	rng := rand.New(rand.NewSource(152))
	det := &DirectionDetector{Params: lora.DefaultParams(7), MinConcentration: 0.05}
	correct := 0
	const trials = 10
	for trial := 0; trial < trials; trial++ {
		if det.Classify(dirSegment(t, rng, false, -10), testRate) == DirectionUplink {
			correct++
		}
	}
	if correct < 8 {
		t.Errorf("only %d/%d correct at -10 dB", correct, trials)
	}
}

func TestDirectionString(t *testing.T) {
	if DirectionUplink.String() != "uplink" ||
		DirectionDownlink.String() != "downlink" ||
		DirectionUnknown.String() != "unknown" {
		t.Error("String() mismatch")
	}
}

func TestDisentangleCollisionTwoTransmitters(t *testing.T) {
	// Two colliding preamble chirps with distinct biases (the Choir
	// observation): both peaks recoverable.
	rng := rand.New(rand.NewSource(153))
	p := lora.DefaultParams(7)
	a := lora.ChirpSpec{SF: p.SF, Bandwidth: p.Bandwidth, FrequencyOffset: -22e3, Phase: 0.4}
	b := lora.ChirpSpec{SF: p.SF, Bandwidth: p.Bandwidth, FrequencyOffset: -17e3, Phase: 2.2, Amplitude: 0.7}
	iq := a.Synthesize(testRate)
	bIQ := b.Synthesize(testRate)
	for i := range iq {
		iq[i] += bIQ[i]
	}
	noise := dsp.GaussianNoise(rng, len(iq), 0.01)
	for i := range iq {
		iq[i] += noise[i]
	}
	got := DisentangleCollision(p, iq, testRate, 0, 0)
	if len(got) != 2 {
		t.Fatalf("colliders found = %d, want 2 (%+v)", len(got), got)
	}
	// Strongest first: transmitter a (amplitude 1) then b (0.7).
	if abs := got[0].DeltaHz + 22e3; abs > 200 || -abs > 200 {
		t.Errorf("strongest collider at %f, want −22 kHz", got[0].DeltaHz)
	}
	if abs := got[1].DeltaHz + 17e3; abs > 200 || -abs > 200 {
		t.Errorf("second collider at %f, want −17 kHz", got[1].DeltaHz)
	}
	if got[1].RelativePower >= got[0].RelativePower {
		t.Error("ordering by power broken")
	}
}

func TestDisentangleCollisionSingle(t *testing.T) {
	rng := rand.New(rand.NewSource(154))
	p := lora.DefaultParams(7)
	spec := lora.ChirpSpec{SF: p.SF, Bandwidth: p.Bandwidth, FrequencyOffset: -20e3}
	iq := spec.Synthesize(testRate)
	noise := dsp.GaussianNoise(rng, len(iq), 0.01)
	for i := range iq {
		iq[i] += noise[i]
	}
	got := DisentangleCollision(p, iq, testRate, 0, 0)
	if len(got) != 1 {
		t.Fatalf("peaks = %d, want 1", len(got))
	}
}

func TestDisentangleCollisionDegenerate(t *testing.T) {
	p := lora.DefaultParams(7)
	if got := DisentangleCollision(p, nil, testRate, 0, 0); got != nil {
		t.Error("expected nil for empty segment")
	}
	if got := DisentangleCollision(p, make([]complex128, 4096), testRate, 0, 0); got != nil {
		t.Error("expected nil for silent segment")
	}
}

func TestDirectionDetectorOnModulatedFrames(t *testing.T) {
	// Cross-validation against the full PHY modulator: uplink and downlink
	// frames classified from their first preamble chirp, as the adversary
	// does in §4.2.2.
	rng := rand.New(rand.NewSource(155))
	p := lora.DefaultParams(7)
	det := &DirectionDetector{Params: p}
	for _, downlink := range []bool{false, true} {
		f := lora.Frame{Params: p, Payload: []byte("dir"), Downlink: downlink}
		iq, err := f.Modulate(lora.Impairments{FrequencyBias: -20e3, InitialPhase: rng.Float64()}, testRate)
		if err != nil {
			t.Fatal(err)
		}
		want := DirectionUplink
		if downlink {
			want = DirectionDownlink
		}
		if got := det.Classify(iq, testRate); got != want {
			t.Errorf("downlink=%v: classified %v, want %v", downlink, got, want)
		}
	}
}
