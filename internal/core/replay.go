package core

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"sync"
)

// Replay-detection defaults.
const (
	// DefaultToleranceHz is the FB deviation beyond which a frame is
	// flagged as replayed. The paper's estimation resolution is 120 Hz
	// (0.14 ppm) and a USRP replayer adds ≥543 Hz (0.62 ppm); 360 Hz
	// (3× the resolution) separates the two with margin on both sides.
	DefaultToleranceHz = 360
	// DefaultEWMAAlpha is the database update weight for tracking slow
	// temperature-induced skew (§7.2: "continuously update the database
	// entries based on the FBs estimated from recent frames").
	DefaultEWMAAlpha = 0.2
	// DefaultEnrollFrames is how many frames are used to learn a new
	// device's bias before detection becomes active for it.
	DefaultEnrollFrames = 3
	// DefaultDevMultiplier widens the acceptance band to this multiple of
	// the tracked per-frame estimation deviation. At low SNR the per-frame
	// FB estimate inherits jitter from the PHY onset timestamp
	// (δ' = δ + k·Δτ, see fb.go), so a device observed through a noisy
	// link legitimately spreads wider than the nominal tolerance.
	DefaultDevMultiplier = 4.0
)

// Verdict classifies a received frame.
type Verdict int

// Verdicts.
const (
	// VerdictGenuine: the FB is consistent with the claimed device.
	VerdictGenuine Verdict = iota + 1
	// VerdictReplay: the FB deviates beyond tolerance — the frame delay
	// attack's replay step is detected.
	VerdictReplay
	// VerdictEnrolling: the device is still being learned; no decision.
	VerdictEnrolling
)

// String implements fmt.Stringer.
func (v Verdict) String() string {
	switch v {
	case VerdictGenuine:
		return "genuine"
	case VerdictReplay:
		return "replay"
	case VerdictEnrolling:
		return "enrolling"
	default:
		return fmt.Sprintf("Verdict(%d)", int(v))
	}
}

// BiasRecord is the learned frequency-bias state for one device.
type BiasRecord struct {
	// Mean is the EWMA-tracked bias in Hz.
	Mean float64 `json:"mean_hz"`
	// Dev is the EWMA-tracked mean absolute per-frame deviation in Hz —
	// the device's observed estimation jitter through this gateway's
	// pipeline (grows on low-SNR links).
	Dev float64 `json:"dev_hz"`
	// Min and Max track the observed genuine range.
	Min float64 `json:"min_hz"`
	Max float64 `json:"max_hz"`
	// Count is the number of genuine frames folded in.
	Count int `json:"count"`
}

// Band returns the acceptance half-width for the record given the nominal
// tolerance and deviation multiplier.
func (rec BiasRecord) Band(toleranceHz, devMultiplier float64) float64 {
	if b := devMultiplier * rec.Dev; b > toleranceHz {
		return b
	}
	return toleranceHz
}

// ReplayDetector implements §7.2: per-device FB history with
// deviation-based replay detection. The acceptance band adapts to the
// device's observed estimation jitter, implementing the paper's
// "continuously update the database entries based on the FBs estimated
// from recent frames". It is safe for concurrent use.
type ReplayDetector struct {
	// ToleranceHz is the minimum acceptance half-width around the tracked
	// mean (default DefaultToleranceHz).
	ToleranceHz float64
	// DevMultiplier scales the tracked per-frame deviation into the
	// adaptive band (default DefaultDevMultiplier).
	DevMultiplier float64
	// Alpha is the EWMA update weight (default DefaultEWMAAlpha).
	Alpha float64
	// EnrollFrames is the learning period per device (default
	// DefaultEnrollFrames).
	EnrollFrames int

	mu      sync.Mutex
	devices map[string]*BiasRecord
}

// NewReplayDetector returns a detector with the paper-calibrated defaults.
func NewReplayDetector() *ReplayDetector {
	return &ReplayDetector{
		ToleranceHz:   DefaultToleranceHz,
		DevMultiplier: DefaultDevMultiplier,
		Alpha:         DefaultEWMAAlpha,
		EnrollFrames:  DefaultEnrollFrames,
		devices:       make(map[string]*BiasRecord),
	}
}

func (r *ReplayDetector) defaults() (tol, devMul, alpha float64, enroll int) {
	tol = r.ToleranceHz
	if tol <= 0 {
		tol = DefaultToleranceHz
	}
	devMul = r.DevMultiplier
	if devMul <= 0 {
		devMul = DefaultDevMultiplier
	}
	alpha = r.Alpha
	if alpha <= 0 || alpha > 1 {
		alpha = DefaultEWMAAlpha
	}
	enroll = r.EnrollFrames
	if enroll <= 0 {
		enroll = DefaultEnrollFrames
	}
	return tol, devMul, alpha, enroll
}

// Check classifies a frame from the claimed device with the given estimated
// FB (Hz) and updates the database according to the paper's policy: genuine
// and enrolling estimates update the record; a replay-flagged estimate is
// NOT folded in ("the FB estimated from a frame that is detected to be a
// replayed one should not be used to update the database").
func (r *ReplayDetector) Check(deviceID string, fbHz float64) Verdict {
	r.mu.Lock()
	defer r.mu.Unlock()
	tol, devMul, alpha, enroll := r.defaults()
	if r.devices == nil {
		r.devices = make(map[string]*BiasRecord)
	}
	rec, ok := r.devices[deviceID]
	if !ok {
		r.devices[deviceID] = &BiasRecord{Mean: fbHz, Min: fbHz, Max: fbHz, Count: 1}
		return VerdictEnrolling
	}
	if rec.Count < enroll {
		r.fold(rec, fbHz, alpha)
		return VerdictEnrolling
	}
	if math.Abs(fbHz-rec.Mean) > rec.Band(tol, devMul) {
		return VerdictReplay
	}
	r.fold(rec, fbHz, alpha)
	return VerdictGenuine
}

// fold updates a record with a genuine estimate.
func (r *ReplayDetector) fold(rec *BiasRecord, fbHz, alpha float64) {
	dev := math.Abs(fbHz - rec.Mean)
	rec.Dev = (1-alpha)*rec.Dev + alpha*dev
	rec.Mean = (1-alpha)*rec.Mean + alpha*fbHz
	if fbHz < rec.Min {
		rec.Min = fbHz
	}
	if fbHz > rec.Max {
		rec.Max = fbHz
	}
	rec.Count++
}

// Record returns a copy of the learned state for a device and whether it
// exists.
func (r *ReplayDetector) Record(deviceID string) (BiasRecord, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	rec, ok := r.devices[deviceID]
	if !ok {
		return BiasRecord{}, false
	}
	return *rec, true
}

// Devices returns the number of devices in the database.
func (r *ReplayDetector) Devices() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.devices)
}

// Enroll pre-loads a device record (offline database construction, §7.2).
func (r *ReplayDetector) Enroll(deviceID string, fbHz float64, frames int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.devices == nil {
		r.devices = make(map[string]*BiasRecord)
	}
	if frames < 1 {
		frames = 1
	}
	r.devices[deviceID] = &BiasRecord{Mean: fbHz, Min: fbHz, Max: fbHz, Count: frames}
}

// ErrBadDatabase is returned when loading a malformed database.
var ErrBadDatabase = errors.New("core: malformed bias database")

// Save serializes the database as JSON.
func (r *ReplayDetector) Save(w io.Writer) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r.devices); err != nil {
		return fmt.Errorf("core: saving bias database: %w", err)
	}
	return nil
}

// Load replaces the database from JSON previously written by Save.
func (r *ReplayDetector) Load(reader io.Reader) error {
	var devices map[string]*BiasRecord
	if err := json.NewDecoder(reader).Decode(&devices); err != nil {
		return fmt.Errorf("%w: %v", ErrBadDatabase, err)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if devices == nil {
		devices = make(map[string]*BiasRecord)
	}
	r.devices = devices
	return nil
}
