package core

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
)

// Replay-detection defaults.
const (
	// DefaultToleranceHz is the FB deviation beyond which a frame is
	// flagged as replayed. The paper's estimation resolution is 120 Hz
	// (0.14 ppm) and a USRP replayer adds ≥543 Hz (0.62 ppm); 360 Hz
	// (3× the resolution) separates the two with margin on both sides.
	DefaultToleranceHz = 360
	// DefaultEWMAAlpha is the database update weight for tracking slow
	// temperature-induced skew (§7.2: "continuously update the database
	// entries based on the FBs estimated from recent frames").
	DefaultEWMAAlpha = 0.2
	// DefaultEnrollFrames is how many frames are used to learn a new
	// device's bias before detection becomes active for it.
	DefaultEnrollFrames = 3
	// DefaultDevMultiplier widens the acceptance band to this multiple of
	// the tracked per-frame estimation deviation. At low SNR the per-frame
	// FB estimate inherits jitter from the PHY onset timestamp
	// (δ' = δ + k·Δτ, see fb.go), so a device observed through a noisy
	// link legitimately spreads wider than the nominal tolerance.
	DefaultDevMultiplier = 4.0
)

// Verdict classifies a received frame.
type Verdict int

// Verdicts.
const (
	// VerdictGenuine: the FB is consistent with the claimed device.
	VerdictGenuine Verdict = iota + 1
	// VerdictReplay: the FB deviates beyond tolerance — the frame delay
	// attack's replay step is detected.
	VerdictReplay
	// VerdictEnrolling: the device is still being learned; no decision.
	VerdictEnrolling
	// VerdictPending: the frame is held in a streaming dedup window
	// waiting for more receiver copies; the committed verdict follows as
	// a window event.
	VerdictPending
)

// String implements fmt.Stringer.
func (v Verdict) String() string {
	switch v {
	case VerdictGenuine:
		return "genuine"
	case VerdictReplay:
		return "replay"
	case VerdictEnrolling:
		return "enrolling"
	case VerdictPending:
		return "pending"
	default:
		return fmt.Sprintf("Verdict(%d)", int(v))
	}
}

// BiasRecord is the learned frequency-bias state for one device.
type BiasRecord struct {
	// Mean is the EWMA-tracked bias in Hz.
	Mean float64 `json:"mean_hz"`
	// Dev is the EWMA-tracked mean absolute per-frame deviation in Hz —
	// the device's observed estimation jitter through this gateway's
	// pipeline (grows on low-SNR links).
	Dev float64 `json:"dev_hz"`
	// Min and Max track the observed genuine range.
	Min float64 `json:"min_hz"`
	Max float64 `json:"max_hz"`
	// Count is the number of genuine frames folded in.
	Count int `json:"count"`
	// LastSeen is when the device was last observed, in seconds on the
	// deployment's observation timeline (the PHY arrival-time clock, not
	// wall time). Zero means "never stamped" — records written before
	// aging existed, or by backends without a timeline (ReplayDetector).
	// The network server's TTL sweep evicts on it; see
	// NetworkServer.EvictExpired for how zero is handled.
	LastSeen float64 `json:"last_seen_s,omitempty"`
}

// Touch stamps the record as observed at now. LastSeen only moves forward:
// observations can commit out of arrival order (CheckBatch orders by
// UplinkIndex, gateways' clocks by arrival), and an older frame must not
// rejuvenate-then-expose the record to an earlier eviction horizon.
// Non-finite times are ignored rather than poisoning the record.
func (rec *BiasRecord) Touch(now float64) {
	if math.IsNaN(now) || math.IsInf(now, 0) {
		return
	}
	if now > rec.LastSeen {
		rec.LastSeen = now
	}
}

// Band returns the acceptance half-width for the record given the nominal
// tolerance and deviation multiplier.
func (rec BiasRecord) Band(toleranceHz, devMultiplier float64) float64 {
	if b := devMultiplier * rec.Dev; b > toleranceHz {
		return b
	}
	return toleranceHz
}

// Fold updates the record with a genuine estimate. While the device is
// still enrolling (Count < enrollFrames) the statistics are count-weighted
// running averages, so the learned mean is exactly the average of the
// enrollment window and the deviation its mean absolute deviation; an EWMA
// here would weight the first frame by (1−α)^(n−1) — 0.64 of the total at
// the default α=0.2 over 3 frames. Once enrolled, the EWMA with weight
// alpha tracks slow temperature-induced skew (§7.2).
func (rec *BiasRecord) Fold(fbHz, alpha float64, enrollFrames int) {
	dev := math.Abs(fbHz - rec.Mean)
	if rec.Count < enrollFrames {
		n := float64(rec.Count)
		rec.Mean += (fbHz - rec.Mean) / (n + 1)
		rec.Dev += (dev - rec.Dev) / (n + 1)
	} else {
		rec.Dev = (1-alpha)*rec.Dev + alpha*dev
		rec.Mean = (1-alpha)*rec.Mean + alpha*fbHz
	}
	if fbHz < rec.Min {
		rec.Min = fbHz
	}
	if fbHz > rec.Max {
		rec.Max = fbHz
	}
	rec.Count++
}

// CheckRecord applies the §7.2 verdict-and-update policy to one device
// record: unknown devices (rec == nil) start enrolling (the returned record
// must be stored by the caller), enrolling devices fold the estimate into
// their running statistics, and enrolled devices are classified against the
// adaptive acceptance band — genuine estimates update the record, replays do
// not ("the FB estimated from a frame that is detected to be a replayed one
// should not be used to update the database"). A non-finite estimate fails
// closed: VerdictReplay, nothing folded, no record created — folding a NaN
// into Mean would make the band comparison vacuously true forever after and
// silently disable detection for the device. It is exported so every bias
// database backend (the in-process ReplayDetector, the network server's
// sharded store) applies the identical policy under its own locking.
//
//softlora:hotpath
func CheckRecord(rec *BiasRecord, fbHz, toleranceHz, devMultiplier, alpha float64, enrollFrames int) (Verdict, *BiasRecord) {
	if math.IsNaN(fbHz) || math.IsInf(fbHz, 0) {
		return VerdictReplay, rec
	}
	if rec == nil {
		//softlora:allocfree-ok enrollment of a first-seen device: one record per device lifetime, never on the steady-state verdict path
		return VerdictEnrolling, &BiasRecord{Mean: fbHz, Min: fbHz, Max: fbHz, Count: 1}
	}
	if rec.Count < enrollFrames {
		rec.Fold(fbHz, alpha, enrollFrames)
		return VerdictEnrolling, rec
	}
	if math.Abs(fbHz-rec.Mean) > rec.Band(toleranceHz, devMultiplier) {
		return VerdictReplay, rec
	}
	rec.Fold(fbHz, alpha, enrollFrames)
	return VerdictGenuine, rec
}

// Validate rejects records that would corrupt detection: non-finite
// statistics (a NaN Dev makes Band NaN and the band comparison always
// false, accepting every frame), negative deviations or counts, and an
// inverted observed range.
func (rec *BiasRecord) Validate() error {
	for _, f := range [...]struct {
		name  string
		value float64
	}{
		{"mean_hz", rec.Mean}, {"dev_hz", rec.Dev},
		{"min_hz", rec.Min}, {"max_hz", rec.Max},
		{"last_seen_s", rec.LastSeen},
	} {
		if math.IsNaN(f.value) || math.IsInf(f.value, 0) {
			return fmt.Errorf("%s %v is not finite", f.name, f.value)
		}
	}
	if rec.Dev < 0 {
		return fmt.Errorf("dev_hz %v is negative", rec.Dev)
	}
	if rec.Count < 0 {
		return fmt.Errorf("count %d is negative", rec.Count)
	}
	if rec.Min > rec.Max {
		return fmt.Errorf("min_hz %v exceeds max_hz %v", rec.Min, rec.Max)
	}
	return nil
}

// ValidateDatabase checks every record of a decoded bias database,
// wrapping failures in ErrBadDatabase. Both ReplayDetector.Load and the
// network server's loader gate on it so a hostile database (e.g. a NaN Dev
// smuggled into a record) cannot disable detection for a device.
func ValidateDatabase(devices map[string]*BiasRecord) error {
	// Validate in sorted-ID order so a database with several bad records
	// reports the same one every run.
	ids := make([]string, 0, len(devices))
	//softlora:nondeterministic-ok keys are sorted before use
	for id := range devices {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		rec := devices[id]
		if rec == nil {
			return fmt.Errorf("%w: device %q: null record", ErrBadDatabase, id)
		}
		if err := rec.Validate(); err != nil {
			return fmt.Errorf("%w: device %q: %v", ErrBadDatabase, id, err)
		}
	}
	return nil
}

// ReplayDetector implements §7.2: per-device FB history with
// deviation-based replay detection. The acceptance band adapts to the
// device's observed estimation jitter, implementing the paper's
// "continuously update the database entries based on the FBs estimated
// from recent frames". It is safe for concurrent use.
type ReplayDetector struct {
	// ToleranceHz is the minimum acceptance half-width around the tracked
	// mean (default DefaultToleranceHz).
	ToleranceHz float64
	// DevMultiplier scales the tracked per-frame deviation into the
	// adaptive band (default DefaultDevMultiplier).
	DevMultiplier float64
	// Alpha is the EWMA update weight (default DefaultEWMAAlpha).
	Alpha float64
	// EnrollFrames is the learning period per device (default
	// DefaultEnrollFrames).
	EnrollFrames int

	mu      sync.Mutex
	devices map[string]*BiasRecord
}

// NewReplayDetector returns a detector with the paper-calibrated defaults.
func NewReplayDetector() *ReplayDetector {
	return &ReplayDetector{
		ToleranceHz:   DefaultToleranceHz,
		DevMultiplier: DefaultDevMultiplier,
		Alpha:         DefaultEWMAAlpha,
		EnrollFrames:  DefaultEnrollFrames,
		devices:       make(map[string]*BiasRecord),
	}
}

func (r *ReplayDetector) defaults() (tol, devMul, alpha float64, enroll int) {
	tol = r.ToleranceHz
	if tol <= 0 {
		tol = DefaultToleranceHz
	}
	devMul = r.DevMultiplier
	if devMul <= 0 {
		devMul = DefaultDevMultiplier
	}
	alpha = r.Alpha
	if alpha <= 0 || alpha > 1 {
		alpha = DefaultEWMAAlpha
	}
	enroll = r.EnrollFrames
	if enroll <= 0 {
		enroll = DefaultEnrollFrames
	}
	return tol, devMul, alpha, enroll
}

// Check classifies a frame from the claimed device with the given estimated
// FB (Hz) and updates the database according to the paper's policy: genuine
// and enrolling estimates update the record; a replay-flagged estimate is
// NOT folded in ("the FB estimated from a frame that is detected to be a
// replayed one should not be used to update the database").
func (r *ReplayDetector) Check(deviceID string, fbHz float64) Verdict {
	r.mu.Lock()
	defer r.mu.Unlock()
	tol, devMul, alpha, enroll := r.defaults()
	if r.devices == nil {
		r.devices = make(map[string]*BiasRecord)
	}
	verdict, rec := CheckRecord(r.devices[deviceID], fbHz, tol, devMul, alpha, enroll)
	if rec != nil {
		r.devices[deviceID] = rec
	}
	return verdict
}

// Record returns a copy of the learned state for a device and whether it
// exists.
func (r *ReplayDetector) Record(deviceID string) (BiasRecord, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	rec, ok := r.devices[deviceID]
	if !ok {
		return BiasRecord{}, false
	}
	return *rec, true
}

// Devices returns the number of devices in the database.
func (r *ReplayDetector) Devices() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.devices)
}

// Enroll pre-loads a device record (offline database construction, §7.2).
func (r *ReplayDetector) Enroll(deviceID string, fbHz float64, frames int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.devices == nil {
		r.devices = make(map[string]*BiasRecord)
	}
	if frames < 1 {
		frames = 1
	}
	r.devices[deviceID] = &BiasRecord{Mean: fbHz, Min: fbHz, Max: fbHz, Count: frames}
}

// ErrBadDatabase is returned when loading a malformed database.
var ErrBadDatabase = errors.New("core: malformed bias database")

// Save serializes the database as JSON.
func (r *ReplayDetector) Save(w io.Writer) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r.devices); err != nil {
		return fmt.Errorf("core: saving bias database: %w", err)
	}
	return nil
}

// Load replaces the database from JSON previously written by Save. Records
// are validated before installation (ErrBadDatabase otherwise): a hostile
// or corrupted database must not be able to disable detection, and a
// failed Load leaves the current database untouched.
func (r *ReplayDetector) Load(reader io.Reader) error {
	var devices map[string]*BiasRecord
	if err := json.NewDecoder(reader).Decode(&devices); err != nil {
		return fmt.Errorf("%w: %v", ErrBadDatabase, err)
	}
	if err := ValidateDatabase(devices); err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if devices == nil {
		devices = make(map[string]*BiasRecord)
	}
	r.devices = devices
	return nil
}
