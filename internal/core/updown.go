package core

import (
	"fmt"
	"math"

	"softlora/internal/dsp"
	"softlora/internal/lora"
)

// UpDownEstimator is an extension beyond the paper (DESIGN.md §6) that
// removes the fundamental coupling between PHY-timestamp error and
// frequency-bias error.
//
// A single up chirp cannot distinguish a frequency bias δ from a timing
// misalignment Δτ: the segment looks identical for δ' = δ + k·Δτ (k is the
// chirp sweep rate), so every single-chirp estimator inherits k·Δτ of bias
// from the onset detector — ~122 Hz per µs at SF7/125 kHz. Dechirping a
// preamble *up* chirp yields a tone at δ + k·Δτ, while dechirping an SFD
// *down* chirp yields δ − k·Δτ; their average recovers δ exactly and their
// difference refines the timing:
//
//	δ  = (f_up + f_down) / 2
//	Δτ = −(f_up − f_down) / (2k)  (the onset-correction to apply)
//
// The cost is a longer SDR capture: the SFD begins PreambleChirps+2 chirp
// times after the onset, so the capture must span ~12.5 chirps instead of
// the paper's 2.
// An estimator instance holds reusable scratch (conjugate up/down chirp
// templates, FFT plan and buffer) and is not safe for concurrent use: one
// instance per worker goroutine.
type UpDownEstimator struct {
	Params lora.Params

	up   dechirpScratch
	down dechirpScratch
}

// UpDownResult is the joint estimate.
type UpDownResult struct {
	// DeltaHz is the frequency bias, free of timing-induced error.
	DeltaHz float64
	// TimingCorrection is Δτ in seconds: add it to the detected onset to
	// refine the PHY timestamp (positive means the true onset is later
	// than detected).
	TimingCorrection float64
	// FUp and FDown are the raw dechirped tone frequencies (diagnostics).
	FUp, FDown float64
}

// sweepRate returns k = W²/2^SF in Hz/s.
func (u *UpDownEstimator) sweepRate() float64 {
	w := u.Params.Bandwidth
	return w * w / float64(u.Params.ChipsPerSymbol())
}

// chirpPhases samples a chirp's phase at each of n sample instants.
func chirpPhases(spec lora.ChirpSpec, sampleRate float64, n int) []float64 {
	dt := 1 / sampleRate
	out := make([]float64, n)
	for i := range out {
		out[i] = spec.PhaseAt(float64(i) * dt)
	}
	return out
}

// dechirpTone multiplies one chirp-long segment by the conjugate base chirp
// (up or down) and returns the interpolated peak frequency.
func (u *UpDownEstimator) dechirpTone(seg []complex128, sampleRate float64, down bool) (float64, error) {
	n := int(u.Params.SamplesPerChirp(sampleRate))
	if len(seg) < n {
		return 0, fmt.Errorf("%w: need %d samples, have %d", ErrChirpTooShort, n, len(seg))
	}
	sc := &u.up
	if down {
		sc = &u.down
	}
	if sc.Stale(u.Params, n, sampleRate) {
		ref := lora.ChirpSpec{SF: u.Params.SF, Bandwidth: u.Params.Bandwidth, Down: down}
		sc.Init(u.Params, n, sampleRate, 4, chirpPhases(ref, sampleRate, n))
	}
	spec := sc.Dechirp(seg[:n])
	bin, magSq := dsp.PeakBinSq(spec)
	if magSq == 0 {
		return 0, ErrNoEstimate
	}
	frac := dsp.InterpolatePeak(spec, bin)
	return dsp.BinFrequency(bin, len(spec), sampleRate) + frac*sampleRate/float64(len(spec)), nil
}

// Estimate runs the joint estimation on a capture whose preamble onset was
// detected at onsetSample. The capture must extend at least
// PreambleChirps + 3 chirp times past the onset (through the first full
// SFD down chirp).
func (u *UpDownEstimator) Estimate(iq []complex128, onsetSample int, sampleRate float64) (UpDownResult, error) {
	if err := u.Params.Validate(); err != nil {
		return UpDownResult{}, fmt.Errorf("core: %w", err)
	}
	spc := u.Params.SamplesPerChirp(sampleRate) // fractional at 2.4 Msps
	n := int(spc)
	if onsetSample < 0 {
		return UpDownResult{}, fmt.Errorf("core: negative onset sample %d", onsetSample)
	}
	// Chirp boundaries sit at fractional sample positions (2457.6 samples
	// per SF7 chirp at 2.4 Msps); round each boundary independently so the
	// error never accumulates across the 10-chirp stride to the SFD.
	upStart := onsetSample + int(math.Round(spc)) // second preamble chirp
	downStart := onsetSample + int(math.Round(float64(u.Params.PreambleChirps+2)*spc))
	if downStart+n > len(iq) {
		return UpDownResult{}, fmt.Errorf("%w: capture ends before the SFD (need %d samples)", ErrChirpTooShort, downStart+n)
	}
	fUp, err := u.dechirpTone(iq[upStart:upStart+n], sampleRate, false)
	if err != nil {
		return UpDownResult{}, err
	}
	fDown, err := u.dechirpTone(iq[downStart:downStart+n], sampleRate, true)
	if err != nil {
		return UpDownResult{}, err
	}
	k := u.sweepRate()
	// (f_up − f_down)/(2k) measures how LATE the believed onset is; the
	// correction to add to the detected onset is its negation.
	return UpDownResult{
		DeltaHz:          (fUp + fDown) / 2,
		TimingCorrection: -(fUp - fDown) / (2 * k),
		FUp:              fUp,
		FDown:            fDown,
	}, nil
}
