package core

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"softlora/internal/dsp"
	"softlora/internal/lora"
)

// preambleCapture synthesizes lead-in noise followed by chirps consecutive
// preamble up chirps at the given SNR, returning the capture and the exact
// (fractional) onset sample.
func preambleCapture(rng *rand.Rand, p lora.Params, rate, deltaHz, snrDB float64, chirps int) (iq []complex128, onset float64) {
	spec := lora.ChirpSpec{
		SF:              p.SF,
		Bandwidth:       p.Bandwidth,
		FrequencyOffset: deltaHz,
		Phase:           rng.Float64() * 2 * math.Pi,
	}
	n := p.SamplesPerChirp(rate)
	lead := int(1.2*n) + rng.Intn(int(n/2))
	total := lead + int(float64(chirps)*spec.Duration()*rate) + 64
	iq = make([]complex128, total)
	frac := rng.Float64()
	onset = float64(lead) + frac
	for c := 0; c < chirps; c++ {
		spec.AddTo(iq, rate, (onset+float64(c)*spec.Duration()*rate)/rate)
	}
	noise := dsp.GaussianNoise(rng, total, 1)
	g := dsp.NoiseForSNR(1, 1, snrDB)
	for i := range iq {
		iq[i] += noise[i] * complex(g, 0)
	}
	return iq, onset
}

// hierarchyTestRate keeps the chirp window (and so the exhaustive
// reference's cost) bounded across spreading factors: high SFs run at a
// reduced — still realistic — capture rate.
func hierarchyTestRate(sf int) float64 {
	rate := 2.4e6 * math.Pow(2, float64(7-sf))
	if rate < 600e3 {
		rate = 600e3
	}
	return rate
}

// TestHierarchicalOnsetMatchesExhaustive is the parity property of the
// coarse→fine search: across spreading factors and the −20…0 dB SNR sweep,
// the hierarchical detector must land within ±FitStep samples of the
// brute-force exhaustive detector on the same capture. (FitStep is the fine
// grid's stride — the two metrics sample identical window grids, so any
// disagreement beyond one grid step would mean the sliding/decimated
// approximations changed a discrete decision.)
func TestHierarchicalOnsetMatchesExhaustive(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for sf := 7; sf <= 12; sf++ {
		p := lora.DefaultParams(sf)
		rate := hierarchyTestRate(sf)
		n := int(p.SamplesPerChirp(rate))
		step := n / 256
		if step < 1 {
			step = 1
		}
		hier := &DechirpOnsetDetector{Params: p}
		exh := &DechirpOnsetDetector{Params: p, Exhaustive: true}
		for _, snr := range []float64{0, -10, -20} {
			t.Run(fmt.Sprintf("sf%d_snr%+g", sf, snr), func(t *testing.T) {
				iq, _ := preambleCapture(rng, p, rate, -20e3, snr, 5)
				got, err := hier.DetectOnset(iq, rate)
				if err != nil {
					t.Fatalf("hierarchical: %v", err)
				}
				want, err := exh.DetectOnset(iq, rate)
				if err != nil {
					t.Fatalf("exhaustive: %v", err)
				}
				if diff := got.Sample - want.Sample; diff < -step || diff > step {
					t.Errorf("hierarchical onset %d vs exhaustive %d: |diff| %d > FitStep %d",
						got.Sample, want.Sample, abs(diff), step)
				}
			})
		}
	}
}

// TestHierarchicalOnsetAccuracy pins the hierarchical detector's absolute
// error against the known synthetic onset across the same sweep, so parity
// cannot be satisfied by both detectors drifting together. The bounds
// document the detector's envelope: a few fine-grid steps down to −10 dB,
// and sub-chirp best-effort at −20 dB, where single-window chirp/noise
// decisions carry an irreducible few-percent error rate (the paper's own
// detectors have drifted by milliseconds long before this point).
func TestHierarchicalOnsetAccuracy(t *testing.T) {
	for _, sf := range []int{7, 9, 12} {
		p := lora.DefaultParams(sf)
		rate := hierarchyTestRate(sf)
		n := int(p.SamplesPerChirp(rate))
		step := n / 256
		det := &DechirpOnsetDetector{Params: p}
		for _, snr := range []float64{0, -10, -20} {
			rng := rand.New(rand.NewSource(int64(100*sf) + int64(snr)))
			const trials = 6
			var sum, worst float64
			for i := 0; i < trials; i++ {
				iq, want := preambleCapture(rng, p, rate, -20e3, snr, 5)
				got, err := det.DetectOnset(iq, rate)
				if err != nil {
					t.Fatalf("sf %d snr %g: %v", sf, snr, err)
				}
				e := math.Abs(float64(got.Sample) - want)
				sum += e
				if e > worst {
					worst = e
				}
			}
			mean := sum / trials
			switch {
			case snr >= -10:
				if tol := float64(8 * step); worst > tol {
					t.Errorf("sf %d snr %g: worst onset error %.0f samples (tol %.0f)", sf, snr, worst, tol)
				}
			default: // −20 dB: sub-chirp best effort
				if tol := float64(n) / 3; mean > tol {
					t.Errorf("sf %d snr %g: mean onset error %.0f samples (tol %.0f)", sf, snr, mean, tol)
				}
				if tol := 1.5 * float64(n); worst > tol {
					t.Errorf("sf %d snr %g: worst onset error %.0f samples (tol %.0f)", sf, snr, worst, tol)
				}
			}
		}
	}
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
