package core

import (
	"math"
	"math/cmplx"
	"sort"

	"softlora/internal/dsp"
	"softlora/internal/lora"
)

// CollidingBias is one transmitter found in a collided chirp window.
type CollidingBias struct {
	// DeltaHz is the transmitter's apparent frequency bias.
	DeltaHz float64
	// RelativePower is the peak power relative to the strongest collider.
	RelativePower float64
}

// DisentangleCollision finds the distinct frequency biases of transmitters
// whose preamble chirps overlap in the window — the Choir observation the
// paper builds on ([8]: "exploits the diverse FBs of the LoRaWAN end
// devices to decode colliding frames"): each collider's chirp dechirps to
// its own tone at its own δ, so multiple spectral peaks reveal multiple
// transmitters.
//
// minSeparationHz merges peaks closer than that (default: one chip width),
// and floorFraction discards peaks below that fraction of the strongest
// (default 0.25). Results are sorted strongest first.
func DisentangleCollision(p lora.Params, seg []complex128, sampleRate float64, minSeparationHz, floorFraction float64) []CollidingBias {
	n := int(p.SamplesPerChirp(sampleRate))
	if len(seg) < n || n < 8 {
		return nil
	}
	if minSeparationHz <= 0 {
		minSeparationHz = p.Bandwidth / float64(p.ChipsPerSymbol())
	}
	if floorFraction <= 0 {
		floorFraction = 0.25
	}
	ref := lora.ChirpSpec{SF: p.SF, Bandwidth: p.Bandwidth, Down: true}
	prod := make([]complex128, n)
	ref.FillPhasors(prod, sampleRate, 0)
	for i := 0; i < n; i++ {
		prod[i] *= seg[i]
	}
	padded := make([]complex128, dsp.NextPow2(4*n))
	copy(padded, prod)
	spec := dsp.FFT(padded)
	mags := make([]float64, len(spec))
	maxMag := 0.0
	for i, v := range spec {
		mags[i] = cmplx.Abs(v)
		if mags[i] > maxMag {
			maxMag = mags[i]
		}
	}
	if maxMag == 0 {
		return nil
	}
	// Local maxima above the floor, restricted to plausible oscillator
	// offsets (±W/2).
	nb := len(spec)
	var peaks []CollidingBias
	for i := range mags {
		f := dsp.BinFrequency(i, nb, sampleRate)
		if math.Abs(f) > p.Bandwidth/2 {
			continue
		}
		prev := mags[(i-1+nb)%nb]
		next := mags[(i+1)%nb]
		if mags[i] < prev || mags[i] <= next {
			continue
		}
		if mags[i] < floorFraction*maxMag {
			continue
		}
		frac := dsp.InterpolatePeak(spec, i)
		peaks = append(peaks, CollidingBias{
			DeltaHz:       f + frac*sampleRate/float64(nb),
			RelativePower: (mags[i] / maxMag) * (mags[i] / maxMag),
		})
	}
	sort.Slice(peaks, func(a, b int) bool { return peaks[a].RelativePower > peaks[b].RelativePower })
	// Merge peaks within the separation (side lobes of the same tone).
	var out []CollidingBias
	for _, pk := range peaks {
		dup := false
		for _, kept := range out {
			if math.Abs(kept.DeltaHz-pk.DeltaHz) < minSeparationHz {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, pk)
		}
	}
	return out
}
