package core

import (
	"math"

	"softlora/internal/dsp"
	"softlora/internal/lora"
)

// Direction of a LoRa transmission, distinguished by its preamble chirps.
type Direction int

// Transmission directions.
const (
	// DirectionUnknown: no chirp energy detected.
	DirectionUnknown Direction = iota
	// DirectionUplink: up-chirp preamble (device → gateway).
	DirectionUplink
	// DirectionDownlink: down-chirp preamble (gateway → device).
	DirectionDownlink
)

// String implements fmt.Stringer.
func (d Direction) String() string {
	switch d {
	case DirectionUplink:
		return "uplink"
	case DirectionDownlink:
		return "downlink"
	default:
		return "unknown"
	}
}

// DirectionDetector classifies a transmission's direction from a single
// chirp time of samples — the capability §4.2.2 attributes to the
// adversary: "the uplink preamble uses up chirps, whereas the downlink
// preamble uses down chirps. Thus, the adversary can quickly detect the
// direction of the current transmission within a chirp time."
//
// An up chirp dechirped with the conjugate up reference collapses to a
// single tone (high peak); dechirped with the down reference it spreads
// over the band (low peak). Comparing the two peak concentrations decides
// the direction.
type DirectionDetector struct {
	Params lora.Params
	// MinConcentration is the peak-to-energy ratio below which the window
	// is declared noise (default 0.25; a perfectly dechirped chirp scores
	// 1.0).
	MinConcentration float64

	// Scratch reused across windows (reference phasors and dechirp
	// product); a detector instance is not safe for concurrent use.
	ref  []complex128
	prod []complex128
}

// concentration dechirps one window with the given reference direction and
// returns |peak|²/(N·energy) ∈ [0, 1]. The reference chirp phasors come
// from the oscillator recurrence instead of a per-sample cmplx.Exp.
func (d *DirectionDetector) concentration(seg []complex128, sampleRate float64, down bool) float64 {
	n := int(d.Params.SamplesPerChirp(sampleRate))
	if len(seg) < n {
		n = len(seg)
	}
	if n < 8 {
		return 0
	}
	if cap(d.ref) < n {
		d.ref = make([]complex128, n)
		d.prod = make([]complex128, n)
	}
	ref := lora.ChirpSpec{SF: d.Params.SF, Bandwidth: d.Params.Bandwidth, Down: !down}
	refIQ := d.ref[:n]
	ref.FillPhasors(refIQ, sampleRate, 0)
	prod := d.prod[:n]
	var energy float64
	for i := 0; i < n; i++ {
		prod[i] = seg[i] * refIQ[i]
		energy += real(seg[i])*real(seg[i]) + imag(seg[i])*imag(seg[i])
	}
	if energy == 0 {
		return 0
	}
	spec := dsp.FFT(prod)
	_, magSq := dsp.PeakBinSq(spec)
	return magSq / (float64(n) * energy)
}

// Classify decides the direction of the transmission occupying the first
// chirp time of seg.
func (d *DirectionDetector) Classify(seg []complex128, sampleRate float64) Direction {
	minC := d.MinConcentration
	if minC <= 0 {
		minC = 0.25
	}
	up := d.concentration(seg, sampleRate, false)
	down := d.concentration(seg, sampleRate, true)
	best := math.Max(up, down)
	if best < minC {
		return DirectionUnknown
	}
	if up >= down {
		return DirectionUplink
	}
	return DirectionDownlink
}
