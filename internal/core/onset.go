package core

import (
	"errors"
	"math"

	"softlora/internal/dsp"
	"softlora/internal/lora"
)

// Component selects which SDR trace component an onset detector analyzes.
type Component int

// Trace components.
const (
	ComponentI Component = iota + 1
	ComponentQ
)

// ErrOnsetNotFound is returned when a detector cannot locate a preamble
// onset.
var ErrOnsetNotFound = errors.New("core: preamble onset not found")

// Onset is a detected preamble arrival.
type Onset struct {
	// Sample is the onset sample index in the analyzed trace.
	Sample int
	// Time is the onset instant in seconds relative to trace sample 0.
	Time float64
}

// OnsetDetector locates the preamble onset in an I/Q capture. All detectors
// are threshold-free (they solve optimization problems, §6.1.2).
type OnsetDetector interface {
	// DetectOnset returns the preamble onset in the capture sampled at
	// sampleRate. The capture should contain some noise-only lead-in
	// followed by the frame.
	DetectOnset(iq []complex128, sampleRate float64) (Onset, error)
	// Name identifies the detector in reports.
	Name() string
}

// component extracts the selected real trace.
func component(iq []complex128, c Component) []float64 {
	if c == ComponentQ {
		return dsp.Q(iq)
	}
	return dsp.I(iq)
}

// componentInto extracts the selected real trace into dst (grown as needed).
func componentInto(dst []float64, iq []complex128, c Component) []float64 {
	if cap(dst) < len(iq) {
		dst = make([]float64, len(iq))
	}
	dst = dst[:len(iq)]
	if c == ComponentQ {
		for i, v := range iq {
			dst[i] = imag(v)
		}
	} else {
		for i, v := range iq {
			dst[i] = real(v)
		}
	}
	return dst
}

// prefilterScratch band-limits the capture to the LoRa channel before
// detection, caching the FIR filter and its output buffer so per-uplink
// detection reuses both. The SDR samples 2.4 MHz of spectrum but the chirp
// occupies only ~125 kHz; removing out-of-band noise buys ~10 dB of
// processing gain, which is what lets the detectors work below the
// demodulation floor. The filter is group-delay compensated, so onset
// positions are preserved.
type prefilterScratch struct {
	fir      *dsp.FIRFilter
	firRate  float64
	firCut   float64
	filtered []complex128
}

// filter returns the cached FIR for the given rate/cutoff, rebuilding it
// when either changed.
func (p *prefilterScratch) filter(sampleRate, cutoffHz float64) *dsp.FIRFilter {
	if p.fir == nil || p.firRate != sampleRate || p.firCut != cutoffHz {
		p.fir = dsp.LowPassFIR(cutoffHz, sampleRate, 129)
		p.firRate = sampleRate
		p.firCut = cutoffHz
	}
	return p.fir
}

// apply band-limits iq through the cached filter and reusable output
// buffer. The returned slice is the scratch buffer when filtering ran, or
// iq itself when filtering is disabled.
func (p *prefilterScratch) apply(iq []complex128, sampleRate, cutoffHz float64) []complex128 {
	if cutoffHz <= 0 || cutoffHz >= sampleRate/2 {
		return iq
	}
	p.filtered = p.filter(sampleRate, cutoffHz).ApplyInto(p.filtered, iq)
	return p.filtered
}

// DefaultPrefilterCutoffHz covers the 125 kHz LoRa channel plus tens-of-ppm
// oscillator offsets.
const DefaultPrefilterCutoffHz = 100e3

// EnvelopeDetector implements the paper's envelope detector: the Hilbert
// amplitude envelope is extracted and the sample with the largest ratio
// between its envelope and the previous sample's envelope is the onset
// (Fig. 9(a)).
type EnvelopeDetector struct {
	// Component selects I (default) or Q.
	Component Component
	// SmoothLen applies a moving-average to the envelope before the ratio
	// search to suppress noise spikes (0 disables; 8 is a good default for
	// 2.4 Msps).
	SmoothLen int
	// Gap is the sample distance between the two envelope amplitudes whose
	// ratio is maximized (default 8). A gap makes the step ratio dominate
	// single-sample noise fluctuations.
	Gap int
	// LowPassCutoffHz band-limits the capture before detection
	// (0 disables; DefaultPrefilterCutoffHz recommended at low SNR).
	LowPassCutoffHz float64

	// Scratch buffers reused across captures; a detector instance is not
	// safe for concurrent use.
	pre     prefilterScratch
	comp    []float64
	hilbert dsp.HilbertScratch
	env     []float64
	smooth  []float64
	ratios  []float64
}

var _ OnsetDetector = (*EnvelopeDetector)(nil)

// Name implements OnsetDetector.
func (e *EnvelopeDetector) Name() string { return "envelope" }

func (e *EnvelopeDetector) gap() int {
	if e.Gap > 0 {
		return e.Gap
	}
	return 8
}

// Ratios returns the envelope and the gap-separated envelope ratios used by
// the detector (exposed for the Fig. 9(a) reproduction). The returned slices
// are the detector's scratch buffers: they are overwritten by the next call.
func (e *EnvelopeDetector) Ratios(iq []complex128) (envelope, ratios []float64) {
	e.comp = componentInto(e.comp, iq, e.Component)
	e.env = e.hilbert.Envelope(e.env, e.comp)
	env := e.env
	if e.SmoothLen > 1 {
		e.smooth = movingAverageInto(e.smooth, env, e.SmoothLen)
		env = e.smooth
	}
	gap := e.gap()
	if cap(e.ratios) < len(env) {
		e.ratios = make([]float64, len(env))
	}
	r := e.ratios[:len(env)]
	for i := 0; i < gap && i < len(r); i++ {
		r[i] = 0
	}
	// Floor the denominator at a fraction of the peak envelope so
	// noise-over-noise ratios cannot dominate the signal step.
	floor := dsp.MaxAbs(env) * 0.05
	if floor <= 0 {
		floor = 1e-12
	}
	for i := gap; i < len(env); i++ {
		a := env[i-gap]
		if a < floor {
			a = floor
		}
		r[i] = env[i] / a
	}
	return env, r
}

// DetectOnset implements OnsetDetector.
func (e *EnvelopeDetector) DetectOnset(iq []complex128, sampleRate float64) (Onset, error) {
	if len(iq) < 4 {
		return Onset{}, ErrOnsetNotFound
	}
	filtered := e.pre.apply(iq, sampleRate, e.LowPassCutoffHz)
	_, ratios := e.Ratios(filtered)
	best, bestI := 0.0, -1
	for i, v := range ratios {
		if v > best {
			best = v
			bestI = i
		}
	}
	if bestI < 0 {
		return Onset{}, ErrOnsetNotFound
	}
	// The max ratio lands up to one gap after the true step; report the
	// gap midpoint.
	k := bestI - e.gap()/2
	if k < 0 {
		k = 0
	}
	return Onset{Sample: k, Time: float64(k) / sampleRate}, nil
}

// movingAverageInto smooths x with a trailing window of length w, writing
// into dst (grown as needed; pass nil to allocate).
func movingAverageInto(dst []float64, x []float64, w int) []float64 {
	if cap(dst) < len(x) {
		dst = make([]float64, len(x))
	}
	out := dst[:len(x)]
	var sum float64
	for i, v := range x {
		sum += v
		if i >= w {
			sum -= x[i-w]
		}
		n := i + 1
		if n > w {
			n = w
		}
		out[i] = sum / float64(n)
	}
	return out
}

// DefaultAICCoarseDecimation is the boxcar decimation of the band-limited
// trace ahead of the coarse AIC pick. The 100 kHz prefilter band tolerates
// 4× decimation of the 2.4 Msps trace (new Nyquist 300 kHz), and the AIC
// split-point search — two math.Log per candidate — shrinks by the same
// factor; the full-rate refinement stage restores single-sample accuracy.
// (8× stays alias-free too, but costs a few µs of mean error below 0 dB
// SNR; 4× keeps the Fig. 15 survey inside the paper's sub-10 µs envelope.)
const DefaultAICCoarseDecimation = 4

// AICDetector implements the paper's AIC detector: the autoregressive
// Akaike Information Criterion picker used for seismic P-phase arrival
// estimation (Sleeman & van Eck), applied to the I or Q trace. It achieves
// single-sample accuracy (Table 2: < 2 µs at 2.4 Msps).
type AICDetector struct {
	// Component selects I (default) or Q.
	Component Component
	// Margin excludes this many samples at each trace end from the
	// candidate set (default 16).
	Margin int
	// LowPassCutoffHz band-limits the capture before detection
	// (0 disables; DefaultPrefilterCutoffHz recommended at low SNR).
	LowPassCutoffHz float64
	// CoarseDecimation boxcar-decimates the band-limited trace before the
	// coarse AIC pick (0 = DefaultAICCoarseDecimation, 1 disables). Only
	// meaningful with a prefilter: the raw-trace refinement stage absorbs
	// the coarse granularity.
	CoarseDecimation int

	// Scratch buffers reused across captures; a detector instance is not
	// safe for concurrent use.
	pre  prefilterScratch
	comp []float64 // raw-trace component
	dec  []float64 // filtered + decimated component (coarse stage)
	mid  []float64 // filtered full-rate component window (intermediate stage)
	aic  dsp.AICScratch
}

var _ OnsetDetector = (*AICDetector)(nil)

// Name implements OnsetDetector.
func (a *AICDetector) Name() string { return "aic" }

// DetectOnset implements OnsetDetector.
//
// With a prefilter configured, detection is three-stage and works on the
// selected real component throughout (the prefilter taps are real, so
// filtering the component equals taking the component of the filtered
// trace): a coarse AIC pick on the polyphase filtered-and-decimated trace,
// a full-rate re-pick on the band-limited component inside a window around
// it (processing gain against out-of-band noise, at O(window·taps) instead
// of a full-trace convolution), then the AIC refinement on the raw trace.
// The refinement removes the edge smear the FIR transition band introduces
// (~half the filter length), which would otherwise bias the pick early.
func (a *AICDetector) DetectOnset(iq []complex128, sampleRate float64) (Onset, error) {
	margin := a.Margin
	if margin <= 0 {
		margin = 16
	}
	a.comp = componentInto(a.comp, iq, a.Component)
	if a.LowPassCutoffHz <= 0 || a.LowPassCutoffHz >= sampleRate/2 {
		k := a.aic.Onset(a.comp, margin)
		if k < 0 {
			return Onset{}, ErrOnsetNotFound
		}
		return Onset{Sample: k, Time: float64(k) / sampleRate}, nil
	}
	coarse := a.coarsePick(iq, sampleRate, margin)
	if coarse < 0 {
		return Onset{}, ErrOnsetNotFound
	}
	const window = 256
	lo := coarse - window
	if lo < 0 {
		lo = 0
	}
	hi := coarse + window
	if hi > len(iq) {
		hi = len(iq)
	}
	k := a.aic.Onset(a.comp[lo:hi], 8)
	if k < 0 {
		return Onset{Sample: coarse, Time: float64(coarse) / sampleRate}, nil
	}
	final := lo + k
	return Onset{Sample: final, Time: float64(final) / sampleRate}, nil
}

// coarsePick locates the onset on the band-limited component: a coarse AIC
// split on the filtered trace decimated by CoarseDecimation (computed
// polyphase — only every dec-th filter output is evaluated), then a
// full-rate re-pick on filtered samples inside a window around the
// decimated split. The window absorbs both the decimation granularity and
// the low-SNR wander of the decimated AIC minimum, so the result converges
// to the undecimated filtered-trace pick at O(n/dec + window) filter/log
// evaluations instead of O(n). Falls back to the full-rate filtered pick —
// through the O(n log n) overlap-save convolution, not the direct form —
// when decimation is disabled or the trace is too short to decimate.
func (a *AICDetector) coarsePick(iq []complex128, sampleRate float64, margin int) int {
	fir := a.pre.filter(sampleRate, a.LowPassCutoffHz)
	dec := a.CoarseDecimation
	if dec == 0 {
		dec = DefaultAICCoarseDecimation
	}
	if dec > 1 {
		decMargin := margin / dec
		if decMargin < 2 {
			decMargin = 2
		}
		if len(a.comp)/dec >= 2*decMargin+2 {
			a.dec = fir.ApplyRealDecimatedInto(a.dec, a.comp, dec)
			if k := a.aic.Onset(a.dec, decMargin); k >= 0 {
				window := 128 * dec
				lo := k*dec + dec/2 - window
				if lo < 0 {
					lo = 0
				}
				hi := k*dec + dec/2 + window
				if hi > len(a.comp) {
					hi = len(a.comp)
				}
				a.mid = fir.ApplyRealRangeInto(a.mid, a.comp, lo, hi)
				if fine := a.aic.Onset(a.mid, margin); fine >= 0 {
					return lo + fine
				}
				return k*dec + dec/2
			}
		}
	}
	filtered := a.pre.apply(iq, sampleRate, a.LowPassCutoffHz)
	a.mid = componentInto(a.mid, filtered, a.Component)
	return a.aic.Onset(a.mid, margin)
}

// Curve returns the AIC curve for Fig. 9(b)-style diagnostics.
func (a *AICDetector) Curve(iq []complex128) []float64 {
	margin := a.Margin
	if margin <= 0 {
		margin = 16
	}
	return dsp.AICCurve(component(iq, a.Component), margin)
}

// SpectrogramDetector is the ablation detector the paper dismisses in
// §6.1.2: it locates the first STFT frame whose chirp-band energy exceeds
// the noise floor. Its time resolution is limited to the hop size (~50 µs
// with the paper's Fig. 6 parameters), which is why it is not used.
type SpectrogramDetector struct {
	// WindowLen is the STFT window (default 128).
	WindowLen int
	// Overlap between windows (default 16).
	Overlap int
}

var _ OnsetDetector = (*SpectrogramDetector)(nil)

// Name implements OnsetDetector.
func (s *SpectrogramDetector) Name() string { return "spectrogram" }

// DetectOnset implements OnsetDetector.
func (s *SpectrogramDetector) DetectOnset(iq []complex128, sampleRate float64) (Onset, error) {
	win := s.WindowLen
	if win <= 0 {
		win = 128
	}
	overlap := s.Overlap
	if overlap <= 0 {
		overlap = 16
	}
	sg := dsp.Spectrogram(iq, dsp.KaiserWindow(win, 8), overlap)
	if len(sg) == 0 {
		return Onset{}, ErrOnsetNotFound
	}
	// Frame powers.
	powers := make([]float64, len(sg))
	for i, psd := range sg {
		var p float64
		for _, v := range psd {
			p += v
		}
		powers[i] = p
	}
	// Threshold-free split: maximize the between-segment power contrast
	// (equivalent to a 1D two-segment fit).
	hop := win - overlap
	best, bestI := math.Inf(-1), -1
	prefix := make([]float64, len(powers)+1)
	for i, p := range powers {
		prefix[i+1] = prefix[i] + p
	}
	for k := 1; k < len(powers); k++ {
		before := prefix[k] / float64(k)
		after := (prefix[len(powers)] - prefix[k]) / float64(len(powers)-k)
		if c := after - before; c > best {
			best = c
			bestI = k
		}
	}
	if bestI < 0 {
		return Onset{}, ErrOnsetNotFound
	}
	sample := bestI * hop
	return Onset{Sample: sample, Time: float64(sample) / sampleRate}, nil
}

// MatchedFilterDetector is the second ablation detector of §6.1.2: it
// correlates the I trace against a fixed-phase chirp template. Because the
// receiver is not phase-locked (θ is random) and the transmitter has an
// unknown frequency bias, the real-valued template rarely matches — the
// paper's reason for rejecting it. (A complex correlator would work, but
// the paper's argument concerns the classic real matched filter.)
type MatchedFilterDetector struct {
	// Params defines the template chirp.
	Params lora.Params
	// TemplatePhase is the assumed transmitter phase θ of the template
	// (the detector's weakness: the true phase is unknown).
	TemplatePhase float64
}

var _ OnsetDetector = (*MatchedFilterDetector)(nil)

// Name implements OnsetDetector.
func (m *MatchedFilterDetector) Name() string { return "matched-filter" }

// DetectOnset implements OnsetDetector.
func (m *MatchedFilterDetector) DetectOnset(iq []complex128, sampleRate float64) (Onset, error) {
	spec := lora.ChirpSpec{
		SF:        m.Params.SF,
		Bandwidth: m.Params.Bandwidth,
		Phase:     m.TemplatePhase,
	}
	tmpl := spec.Synthesize(sampleRate)
	if len(tmpl) == 0 || len(iq) < len(tmpl) {
		return Onset{}, ErrOnsetNotFound
	}
	x := dsp.I(iq)
	t := dsp.I(tmpl)
	best, bestI := math.Inf(-1), -1
	// Slide the real template; normalize by local energy.
	step := 1
	for at := 0; at+len(t) <= len(x); at += step {
		var corr, energy float64
		for j := 0; j < len(t); j++ {
			corr += x[at+j] * t[j]
			energy += x[at+j] * x[at+j]
		}
		if energy <= 0 {
			continue
		}
		score := corr / math.Sqrt(energy)
		if score > best {
			best = score
			bestI = at
		}
	}
	if bestI < 0 {
		return Onset{}, ErrOnsetNotFound
	}
	return Onset{Sample: bestI, Time: float64(bestI) / sampleRate}, nil
}
