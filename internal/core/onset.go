package core

import (
	"errors"
	"math"

	"softlora/internal/dsp"
	"softlora/internal/lora"
)

// Component selects which SDR trace component an onset detector analyzes.
type Component int

// Trace components.
const (
	ComponentI Component = iota + 1
	ComponentQ
)

// ErrOnsetNotFound is returned when a detector cannot locate a preamble
// onset.
var ErrOnsetNotFound = errors.New("core: preamble onset not found")

// Onset is a detected preamble arrival.
type Onset struct {
	// Sample is the onset sample index in the analyzed trace.
	Sample int
	// Time is the onset instant in seconds relative to trace sample 0.
	Time float64
}

// OnsetDetector locates the preamble onset in an I/Q capture. All detectors
// are threshold-free (they solve optimization problems, §6.1.2).
type OnsetDetector interface {
	// DetectOnset returns the preamble onset in the capture sampled at
	// sampleRate. The capture should contain some noise-only lead-in
	// followed by the frame.
	DetectOnset(iq []complex128, sampleRate float64) (Onset, error)
	// Name identifies the detector in reports.
	Name() string
}

// component extracts the selected real trace.
func component(iq []complex128, c Component) []float64 {
	if c == ComponentQ {
		return dsp.Q(iq)
	}
	return dsp.I(iq)
}

// componentInto extracts the selected real trace into dst (grown as needed).
func componentInto(dst []float64, iq []complex128, c Component) []float64 {
	if cap(dst) < len(iq) {
		dst = make([]float64, len(iq))
	}
	dst = dst[:len(iq)]
	if c == ComponentQ {
		for i, v := range iq {
			dst[i] = imag(v)
		}
	} else {
		for i, v := range iq {
			dst[i] = real(v)
		}
	}
	return dst
}

// componentInto32 is componentInto on the float32 decision lane.
func componentInto32(dst []float32, iq []complex128, c Component) []float32 {
	if cap(dst) < len(iq) {
		dst = make([]float32, len(iq))
	}
	dst = dst[:len(iq)]
	if c == ComponentQ {
		for i, v := range iq {
			dst[i] = float32(imag(v))
		}
	} else {
		for i, v := range iq {
			dst[i] = float32(real(v))
		}
	}
	return dst
}

// componentRangeInto extracts iq[lo:hi]'s selected component at full float64
// precision — the float32 lane uses it to hand the final AIC refinement the
// exact raw-trace window without materializing the whole float64 component.
func componentRangeInto(dst []float64, iq []complex128, c Component, lo, hi int) []float64 {
	n := hi - lo
	if n < 0 {
		n = 0
	}
	if cap(dst) < n {
		dst = make([]float64, n)
	}
	dst = dst[:n]
	if c == ComponentQ {
		for j := range dst {
			dst[j] = imag(iq[lo+j])
		}
	} else {
		for j := range dst {
			dst[j] = real(iq[lo+j])
		}
	}
	return dst
}

// boxcarDecimate writes the mean of each complete dec-sample block of x into
// dst (len(x)/dec outputs; a trailing partial block is dropped). The boxcar
// is the cheap first anti-alias stage of the coarse AIC pick: first null at
// rate/dec, ~14 dB down across the first folding band, with the residual
// cleaned up by a short low-pass at the decimated rate.
func boxcarDecimate(dst, x []float64, dec int) []float64 {
	n := len(x) / dec
	if cap(dst) < n {
		dst = make([]float64, n)
	}
	dst = dst[:n]
	inv := 1 / float64(dec)
	for j := range dst {
		var s float64
		for _, v := range x[j*dec : j*dec+dec] {
			s += v
		}
		dst[j] = s * inv
	}
	return dst
}

// boxcarDecimate32 is boxcarDecimate on the float32 lane.
func boxcarDecimate32(dst, x []float32, dec int) []float32 {
	n := len(x) / dec
	if cap(dst) < n {
		dst = make([]float32, n)
	}
	dst = dst[:n]
	inv := 1 / float32(dec)
	for j := range dst {
		var s float32
		for _, v := range x[j*dec : j*dec+dec] {
			s += v
		}
		dst[j] = s * inv
	}
	return dst
}

// prefilterScratch band-limits the capture to the LoRa channel before
// detection, caching the FIR filter and its output buffer so per-uplink
// detection reuses both. The SDR samples 2.4 MHz of spectrum but the chirp
// occupies only ~125 kHz; removing out-of-band noise buys ~10 dB of
// processing gain, which is what lets the detectors work below the
// demodulation floor. The filter is group-delay compensated, so onset
// positions are preserved.
type prefilterScratch struct {
	fir      *dsp.FIRFilter
	firRate  float64
	firCut   float64
	filtered []complex128

	// Short cleanup filter for the boxcar-decimated coarse stage: same
	// cutoff, but designed at the decimated rate with an eighth of the taps
	// (the boxcar has already knocked the folding bands down, and the
	// full-rate re-pick absorbs what a 17-tap transition band lets through).
	decFir     *dsp.FIRFilter
	decFirRate float64
	decFirCut  float64
}

// filter returns the cached FIR for the given rate/cutoff, rebuilding it
// when either changed.
func (p *prefilterScratch) filter(sampleRate, cutoffHz float64) *dsp.FIRFilter {
	if p.fir == nil || p.firRate != sampleRate || p.firCut != cutoffHz {
		p.fir = dsp.LowPassFIR(cutoffHz, sampleRate, 129)
		p.firRate = sampleRate
		p.firCut = cutoffHz
	}
	return p.fir
}

// decFilter returns the cached post-decimation cleanup FIR for the given
// decimated rate/cutoff, or nil when the cutoff is at or beyond the new
// Nyquist (nothing left to clean up — the boxcar is the whole anti-alias).
func (p *prefilterScratch) decFilter(decRate, cutoffHz float64) *dsp.FIRFilter {
	if cutoffHz >= decRate/2 {
		return nil
	}
	if p.decFir == nil || p.decFirRate != decRate || p.decFirCut != cutoffHz {
		p.decFir = dsp.LowPassFIR(cutoffHz, decRate, 17)
		p.decFirRate = decRate
		p.decFirCut = cutoffHz
	}
	return p.decFir
}

// apply band-limits iq through the cached filter and reusable output
// buffer. The returned slice is the scratch buffer when filtering ran, or
// iq itself when filtering is disabled.
func (p *prefilterScratch) apply(iq []complex128, sampleRate, cutoffHz float64) []complex128 {
	if cutoffHz <= 0 || cutoffHz >= sampleRate/2 {
		return iq
	}
	p.filtered = p.filter(sampleRate, cutoffHz).ApplyInto(p.filtered, iq)
	return p.filtered
}

// DefaultPrefilterCutoffHz covers the 125 kHz LoRa channel plus tens-of-ppm
// oscillator offsets.
const DefaultPrefilterCutoffHz = 100e3

// EnvelopeDetector implements the paper's envelope detector: the Hilbert
// amplitude envelope is extracted and the sample with the largest ratio
// between its envelope and the previous sample's envelope is the onset
// (Fig. 9(a)).
type EnvelopeDetector struct {
	// Component selects I (default) or Q.
	Component Component
	// SmoothLen applies a moving-average to the envelope before the ratio
	// search to suppress noise spikes (0 disables; 8 is a good default for
	// 2.4 Msps).
	SmoothLen int
	// Gap is the sample distance between the two envelope amplitudes whose
	// ratio is maximized (default 8). A gap makes the step ratio dominate
	// single-sample noise fluctuations.
	Gap int
	// LowPassCutoffHz band-limits the capture before detection
	// (0 disables; DefaultPrefilterCutoffHz recommended at low SNR).
	LowPassCutoffHz float64

	// Scratch buffers reused across captures; a detector instance is not
	// safe for concurrent use.
	pre     prefilterScratch
	comp    []float64
	hilbert dsp.HilbertScratch
	env     []float64
	smooth  []float64
	ratios  []float64
}

var _ OnsetDetector = (*EnvelopeDetector)(nil)

// Name implements OnsetDetector.
func (e *EnvelopeDetector) Name() string { return "envelope" }

func (e *EnvelopeDetector) gap() int {
	if e.Gap > 0 {
		return e.Gap
	}
	return 8
}

// Ratios returns the envelope and the gap-separated envelope ratios used by
// the detector (exposed for the Fig. 9(a) reproduction). The returned slices
// are the detector's scratch buffers: they are overwritten by the next call.
func (e *EnvelopeDetector) Ratios(iq []complex128) (envelope, ratios []float64) {
	e.comp = componentInto(e.comp, iq, e.Component)
	e.env = e.hilbert.Envelope(e.env, e.comp)
	env := e.env
	if e.SmoothLen > 1 {
		e.smooth = movingAverageInto(e.smooth, env, e.SmoothLen)
		env = e.smooth
	}
	gap := e.gap()
	if cap(e.ratios) < len(env) {
		e.ratios = make([]float64, len(env))
	}
	r := e.ratios[:len(env)]
	for i := 0; i < gap && i < len(r); i++ {
		r[i] = 0
	}
	// Floor the denominator at a fraction of the peak envelope so
	// noise-over-noise ratios cannot dominate the signal step.
	floor := dsp.MaxAbs(env) * 0.05
	if floor <= 0 {
		floor = 1e-12
	}
	for i := gap; i < len(env); i++ {
		a := env[i-gap]
		if a < floor {
			a = floor
		}
		r[i] = env[i] / a
	}
	return env, r
}

// DetectOnset implements OnsetDetector.
func (e *EnvelopeDetector) DetectOnset(iq []complex128, sampleRate float64) (Onset, error) {
	if len(iq) < 4 {
		return Onset{}, ErrOnsetNotFound
	}
	filtered := e.pre.apply(iq, sampleRate, e.LowPassCutoffHz)
	_, ratios := e.Ratios(filtered)
	best, bestI := 0.0, -1
	for i, v := range ratios {
		if v > best {
			best = v
			bestI = i
		}
	}
	if bestI < 0 {
		return Onset{}, ErrOnsetNotFound
	}
	// The max ratio lands up to one gap after the true step; report the
	// gap midpoint.
	k := bestI - e.gap()/2
	if k < 0 {
		k = 0
	}
	return Onset{Sample: k, Time: float64(k) / sampleRate}, nil
}

// movingAverageInto smooths x with a trailing window of length w, writing
// into dst (grown as needed; pass nil to allocate).
func movingAverageInto(dst []float64, x []float64, w int) []float64 {
	if cap(dst) < len(x) {
		dst = make([]float64, len(x))
	}
	out := dst[:len(x)]
	var sum float64
	for i, v := range x {
		sum += v
		if i >= w {
			sum -= x[i-w]
		}
		n := i + 1
		if n > w {
			n = w
		}
		out[i] = sum / float64(n)
	}
	return out
}

// DefaultAICCoarseDecimation is the boxcar decimation of the component
// trace ahead of the coarse AIC pick. The 100 kHz signal band tolerates
// 4× decimation of the 2.4 Msps trace (new Nyquist 300 kHz), and the AIC
// split-point search — two logs per candidate — shrinks by the same
// factor; the full-rate refinement stage restores single-sample accuracy.
// (8× stays alias-free too, but costs a few µs of mean error below 0 dB
// SNR; 4× keeps the Fig. 15 survey inside the paper's sub-10 µs envelope.)
const DefaultAICCoarseDecimation = 4

// aicSearchStride is the candidate stride of the coarse and intermediate
// AIC split searches (dsp.AICScratch.OnsetStrided). Both stages hand their
// pick to a follow-up stage that re-searches a window far wider than the
// stride, so the ≤(stride−1)-sample slack of the two-pass argmin is free,
// and the log evaluations drop ~4×. The final raw-trace refinement is
// always a dense search.
const aicSearchStride = 4

// AICDetector implements the paper's AIC detector: the autoregressive
// Akaike Information Criterion picker used for seismic P-phase arrival
// estimation (Sleeman & van Eck), applied to the I or Q trace. It achieves
// single-sample accuracy (Table 2: < 2 µs at 2.4 Msps).
type AICDetector struct {
	// Component selects I (default) or Q.
	Component Component
	// Margin excludes this many samples at each trace end from the
	// candidate set (default 16).
	Margin int
	// LowPassCutoffHz band-limits the capture before detection
	// (0 disables; DefaultPrefilterCutoffHz recommended at low SNR).
	LowPassCutoffHz float64
	// CoarseDecimation boxcar-decimates the band-limited trace before the
	// coarse AIC pick (0 = DefaultAICCoarseDecimation, 1 disables). Only
	// meaningful with a prefilter: the raw-trace refinement stage absorbs
	// the coarse granularity.
	CoarseDecimation int
	// Float64 forces the coarse and intermediate decision stages onto the
	// float64 reference lane. The default (false) runs them in float32 —
	// their only output is a window position handed to the next stage, and
	// the final refinement always re-picks on the exact float64 raw trace,
	// so the lanes converge to the same onset (the parity suites gate it).
	Float64 bool

	// Scratch buffers reused across captures; a detector instance is not
	// safe for concurrent use.
	pre    prefilterScratch
	comp   []float64 // raw-trace component (float64 lane / no-prefilter path)
	comp32 []float32 // raw-trace component (float32 lane)
	box    []float64 // boxcar-decimated component (coarse stage input)
	box32  []float32
	dec    []float64 // decimated + cleaned-up component (coarse stage)
	dec32  []float32
	mid    []float64 // filtered full-rate component window (intermediate stage)
	mid32  []float32
	win    []float64 // raw float64 window for the final refinement (float32 lane)
	aic    dsp.AICScratch
}

var _ OnsetDetector = (*AICDetector)(nil)

// Name implements OnsetDetector.
func (a *AICDetector) Name() string { return "aic" }

// DetectOnset implements OnsetDetector.
//
// With a prefilter configured, detection is three-stage and works on the
// selected real component throughout (the prefilter taps are real, so
// filtering the component equals taking the component of the filtered
// trace): a coarse AIC pick on a boxcar-decimated and band-limited trace,
// a full-rate re-pick on the band-limited component inside a window around
// it (processing gain against out-of-band noise, at O(window·taps) instead
// of a full-trace convolution), then the AIC refinement on the raw trace.
// The refinement removes the edge smear the FIR transition band introduces
// (~half the filter length), which would otherwise bias the pick early.
//
// Unless Float64 is set, the first two stages run on the float32 lane
// (single-precision component, filters and AIC log); the final refinement
// always runs in float64 on the raw trace, so the lanes agree on the onset.
func (a *AICDetector) DetectOnset(iq []complex128, sampleRate float64) (Onset, error) {
	margin := a.Margin
	if margin <= 0 {
		margin = 16
	}
	if a.LowPassCutoffHz <= 0 || a.LowPassCutoffHz >= sampleRate/2 {
		a.comp = componentInto(a.comp, iq, a.Component)
		k := a.aic.Onset(a.comp, margin)
		if k < 0 {
			return Onset{}, ErrOnsetNotFound
		}
		return Onset{Sample: k, Time: float64(k) / sampleRate}, nil
	}
	var coarse int
	f32 := !a.Float64
	if f32 {
		a.comp32 = componentInto32(a.comp32, iq, a.Component)
		coarse = a.coarsePick32(iq, sampleRate, margin)
	} else {
		a.comp = componentInto(a.comp, iq, a.Component)
		coarse = a.coarsePick(iq, sampleRate, margin)
	}
	if coarse < 0 {
		return Onset{}, ErrOnsetNotFound
	}
	const window = 256
	lo := coarse - window
	if lo < 0 {
		lo = 0
	}
	hi := coarse + window
	if hi > len(iq) {
		hi = len(iq)
	}
	var k int
	if f32 {
		a.win = componentRangeInto(a.win, iq, a.Component, lo, hi)
		k = a.aic.Onset(a.win, 8)
	} else {
		k = a.aic.Onset(a.comp[lo:hi], 8)
	}
	if k < 0 {
		return Onset{Sample: coarse, Time: float64(coarse) / sampleRate}, nil
	}
	final := lo + k
	return Onset{Sample: final, Time: float64(final) / sampleRate}, nil
}

// coarsePick locates the onset on the band-limited component: a coarse AIC
// split on the boxcar-decimated trace (cleaned up by a short low-pass at
// the decimated rate — the boxcar's stopband rejection plus a 33-tap FIR
// at rate/dec costs a quarter of the MACs of evaluating the full 129-tap
// prefilter polyphase), then a full-rate re-pick on filtered samples inside
// a window around the decimated split. The window absorbs the decimation
// granularity, the boxcar's residual alias noise and the low-SNR wander of
// the decimated AIC minimum, so the result converges to the undecimated
// filtered-trace pick at O(n/dec + window) filter/log evaluations instead
// of O(n). Falls back to the full-rate filtered pick — through the
// O(n log n) overlap-save convolution, not the direct form — when
// decimation is disabled or the trace is too short to decimate.
func (a *AICDetector) coarsePick(iq []complex128, sampleRate float64, margin int) int {
	dec := a.CoarseDecimation
	if dec == 0 {
		dec = DefaultAICCoarseDecimation
	}
	if dec > 1 {
		decMargin := margin / dec
		if decMargin < 2 {
			decMargin = 2
		}
		if len(a.comp)/dec >= 2*decMargin+2 {
			a.box = boxcarDecimate(a.box, a.comp, dec)
			coarseIn := a.box
			if fir2 := a.pre.decFilter(sampleRate/float64(dec), a.LowPassCutoffHz); fir2 != nil {
				a.dec = fir2.ApplyRealDecimatedInto(a.dec, a.box, 1)
				coarseIn = a.dec
			}
			if k := a.aic.OnsetStrided(coarseIn, decMargin, aicSearchStride); k >= 0 {
				window := 96 * dec
				lo := k*dec + dec/2 - window
				if lo < 0 {
					lo = 0
				}
				hi := k*dec + dec/2 + window
				if hi > len(a.comp) {
					hi = len(a.comp)
				}
				fir := a.pre.filter(sampleRate, a.LowPassCutoffHz)
				a.mid = fir.ApplyRealRangeInto(a.mid, a.comp, lo, hi)
				if fine := a.aic.OnsetStrided(a.mid, margin, aicSearchStride); fine >= 0 {
					return lo + fine
				}
				return k*dec + dec/2
			}
		}
	}
	filtered := a.pre.apply(iq, sampleRate, a.LowPassCutoffHz)
	a.mid = componentInto(a.mid, filtered, a.Component)
	return a.aic.Onset(a.mid, margin)
}

// coarsePick32 is coarsePick on the float32 lane: identical staging
// (boxcar-decimate, short cleanup FIR, coarse AIC, full-rate windowed
// re-pick) over the single-precision component, with the AIC split running
// on the fast-log Onset32. The decimated-rate fallback drops to the float64
// coarsePick — it needs the complex prefilter, which stays double.
func (a *AICDetector) coarsePick32(iq []complex128, sampleRate float64, margin int) int {
	dec := a.CoarseDecimation
	if dec == 0 {
		dec = DefaultAICCoarseDecimation
	}
	if dec > 1 {
		decMargin := margin / dec
		if decMargin < 2 {
			decMargin = 2
		}
		if len(a.comp32)/dec >= 2*decMargin+2 {
			a.box32 = boxcarDecimate32(a.box32, a.comp32, dec)
			coarseIn := a.box32
			if fir2 := a.pre.decFilter(sampleRate/float64(dec), a.LowPassCutoffHz); fir2 != nil {
				a.dec32 = fir2.ApplyRealDecimatedInto32(a.dec32, a.box32, 1)
				coarseIn = a.dec32
			}
			if k := a.aic.Onset32Strided(coarseIn, decMargin, aicSearchStride); k >= 0 {
				window := 96 * dec
				lo := k*dec + dec/2 - window
				if lo < 0 {
					lo = 0
				}
				hi := k*dec + dec/2 + window
				if hi > len(a.comp32) {
					hi = len(a.comp32)
				}
				fir := a.pre.filter(sampleRate, a.LowPassCutoffHz)
				a.mid32 = fir.ApplyRealRangeInto32(a.mid32, a.comp32, lo, hi)
				if fine := a.aic.Onset32Strided(a.mid32, margin, aicSearchStride); fine >= 0 {
					return lo + fine
				}
				return k*dec + dec/2
			}
		}
	}
	a.comp = componentInto(a.comp, iq, a.Component)
	return a.coarsePick(iq, sampleRate, margin)
}

// Curve returns the AIC curve for Fig. 9(b)-style diagnostics.
func (a *AICDetector) Curve(iq []complex128) []float64 {
	margin := a.Margin
	if margin <= 0 {
		margin = 16
	}
	return dsp.AICCurve(component(iq, a.Component), margin)
}

// SpectrogramDetector is the ablation detector the paper dismisses in
// §6.1.2: it locates the first STFT frame whose chirp-band energy exceeds
// the noise floor. Its time resolution is limited to the hop size (~50 µs
// with the paper's Fig. 6 parameters), which is why it is not used.
type SpectrogramDetector struct {
	// WindowLen is the STFT window (default 128).
	WindowLen int
	// Overlap between windows (default 16).
	Overlap int
}

var _ OnsetDetector = (*SpectrogramDetector)(nil)

// Name implements OnsetDetector.
func (s *SpectrogramDetector) Name() string { return "spectrogram" }

// DetectOnset implements OnsetDetector.
func (s *SpectrogramDetector) DetectOnset(iq []complex128, sampleRate float64) (Onset, error) {
	win := s.WindowLen
	if win <= 0 {
		win = 128
	}
	overlap := s.Overlap
	if overlap <= 0 {
		overlap = 16
	}
	sg := dsp.Spectrogram(iq, dsp.KaiserWindow(win, 8), overlap)
	if len(sg) == 0 {
		return Onset{}, ErrOnsetNotFound
	}
	// Frame powers.
	powers := make([]float64, len(sg))
	for i, psd := range sg {
		var p float64
		for _, v := range psd {
			p += v
		}
		powers[i] = p
	}
	// Threshold-free split: maximize the between-segment power contrast
	// (equivalent to a 1D two-segment fit).
	hop := win - overlap
	best, bestI := math.Inf(-1), -1
	prefix := make([]float64, len(powers)+1)
	for i, p := range powers {
		prefix[i+1] = prefix[i] + p
	}
	for k := 1; k < len(powers); k++ {
		before := prefix[k] / float64(k)
		after := (prefix[len(powers)] - prefix[k]) / float64(len(powers)-k)
		if c := after - before; c > best {
			best = c
			bestI = k
		}
	}
	if bestI < 0 {
		return Onset{}, ErrOnsetNotFound
	}
	sample := bestI * hop
	return Onset{Sample: sample, Time: float64(sample) / sampleRate}, nil
}

// MatchedFilterDetector is the second ablation detector of §6.1.2: it
// correlates the I trace against a fixed-phase chirp template. Because the
// receiver is not phase-locked (θ is random) and the transmitter has an
// unknown frequency bias, the real-valued template rarely matches — the
// paper's reason for rejecting it. (A complex correlator would work, but
// the paper's argument concerns the classic real matched filter.)
type MatchedFilterDetector struct {
	// Params defines the template chirp.
	Params lora.Params
	// TemplatePhase is the assumed transmitter phase θ of the template
	// (the detector's weakness: the true phase is unknown).
	TemplatePhase float64
}

var _ OnsetDetector = (*MatchedFilterDetector)(nil)

// Name implements OnsetDetector.
func (m *MatchedFilterDetector) Name() string { return "matched-filter" }

// DetectOnset implements OnsetDetector.
func (m *MatchedFilterDetector) DetectOnset(iq []complex128, sampleRate float64) (Onset, error) {
	spec := lora.ChirpSpec{
		SF:        m.Params.SF,
		Bandwidth: m.Params.Bandwidth,
		Phase:     m.TemplatePhase,
	}
	tmpl := spec.Synthesize(sampleRate)
	if len(tmpl) == 0 || len(iq) < len(tmpl) {
		return Onset{}, ErrOnsetNotFound
	}
	x := dsp.I(iq)
	t := dsp.I(tmpl)
	best, bestI := math.Inf(-1), -1
	// Slide the real template; normalize by local energy.
	step := 1
	for at := 0; at+len(t) <= len(x); at += step {
		var corr, energy float64
		for j := 0; j < len(t); j++ {
			corr += x[at+j] * t[j]
			energy += x[at+j] * x[at+j]
		}
		if energy <= 0 {
			continue
		}
		score := corr / math.Sqrt(energy)
		if score > best {
			best = score
			bestI = at
		}
	}
	if bestI < 0 {
		return Onset{}, ErrOnsetNotFound
	}
	return Onset{Sample: bestI, Time: float64(bestI) / sampleRate}, nil
}
