// Package core implements the SoftLoRa gateway's PHY-layer defense — the
// paper's primary contribution:
//
//   - Microsecond-accurate LoRa signal timestamping (§6): preamble onset
//     detection on the SDR's I/Q traces with an envelope detector (Hilbert
//     transform + amplitude-ratio maximization) and an Akaike Information
//     Criterion detector, both threshold-free. Ablation detectors the paper
//     dismisses (spectrogram, matched filter) are included for comparison.
//
//   - Frequency-bias estimation (§7.1): the linear-regression estimator
//     (unwrap the instantaneous phase, subtract the known quadratic chirp
//     phase, fit the residual line whose slope is 2πδ) and the
//     least-squares estimator solved with differential evolution, which
//     stays accurate below the demodulation SNR floor. A dechirp-FFT
//     estimator is provided as a fast extension.
//
//   - Frame delay attack detection (§7.2): a per-device frequency-bias
//     database; a received frame whose estimated bias falls outside the
//     claimed source's learned range is flagged as a replay and its bias is
//     not folded back into the database.
package core
