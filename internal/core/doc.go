// Package core implements the SoftLoRa gateway's PHY-layer defense — the
// paper's primary contribution:
//
//   - Microsecond-accurate LoRa signal timestamping (§6): preamble onset
//     detection on the SDR's I/Q traces with an envelope detector (Hilbert
//     transform + amplitude-ratio maximization) and an Akaike Information
//     Criterion detector, both threshold-free. Ablation detectors the paper
//     dismisses (spectrogram, matched filter) are included for comparison.
//
//   - Frequency-bias estimation (§7.1): the linear-regression estimator
//     (unwrap the instantaneous phase, subtract the known quadratic chirp
//     phase, fit the residual line whose slope is 2πδ) and the
//     least-squares estimator solved with differential evolution, which
//     stays accurate below the demodulation SNR floor. A dechirp-FFT
//     estimator is provided as a fast extension. Its default path is a
//     two-tier coarse-to-fine estimate: dechirp + boxcar-decimate (full
//     despreading gain, sinc droop divided out per bin) localizes the δ
//     tone on an n/D-point FFT restricted to the ±BW/2 fingerprint band,
//     then a chirp-Z zoom grid ≥4× finer than the legacy padded FFT's
//     bins refines it, with parabolic interpolation on top and θ read
//     from one Goertzel evaluation at the final frequency. The monolithic
//     4×-zero-padded full-rate FFT survives behind the estimator's
//     Exhaustive knob (softlora.Config.FBExhaustive) as the full-band
//     accuracy reference; fb_accuracy_test.go pins the fast path to the
//     reference's error envelope across SF 7–12 × SNR × δ. Both paths
//     fold interpolated frequencies into (−rate/2, +rate/2] (the Nyquist
//     readout fix) and derotate θ by the fractional-bin offset so phase
//     stays unbiased for off-grid δ.
//
//   - Frame delay attack detection (§7.2): a per-device frequency-bias
//     database; a received frame whose estimated bias falls outside the
//     claimed source's learned range is flagged as a replay and its bias is
//     not folded back into the database. The per-record policy (CheckRecord:
//     enroll with count-weighted running statistics, then classify against
//     the adaptive band and EWMA-fold genuine estimates) is exported so
//     every database backend applies it identically: the in-process
//     ReplayDetector here, and the sharded multi-gateway store in package
//     netserver. Loaded databases are validated record by record
//     (ValidateDatabase) — a non-finite mean or deviation would otherwise
//     make the acceptance test vacuously true and silently disable
//     detection for that device.
//
// # Detection ordering contract
//
// Check (and CheckRecord) both reads and updates state, so the verdict for
// frame k depends on which frames folded in before it. Callers that process
// frames concurrently must therefore split work into a side-effect-free PHY
// stage and an ordered commit stage that applies Check in a deterministic
// frame order — softlora.Gateway.ProcessBatch commits in uplink-index order
// and netserver.NetworkServer.CheckBatch sorts frames by UplinkIndex —
// otherwise verdicts and the learned database depend on goroutine
// scheduling.
//
//softlora:deterministic
package core
