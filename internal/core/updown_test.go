package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"softlora/internal/dsp"
	"softlora/internal/lora"
)

// frameCapture modulates a minimal frame with lead-in noise and returns the
// capture plus the exact onset sample position (float).
func frameCapture(t *testing.T, rng *rand.Rand, deltaHz, theta, snrDB float64) (iq []complex128, onset float64) {
	t.Helper()
	p := lora.DefaultParams(7)
	f := lora.Frame{Params: p, Payload: []byte{0x42}}
	lead := 1.5e-3
	dur, err := f.ModulatedDuration()
	if err != nil {
		t.Fatal(err)
	}
	iq = make([]complex128, int((lead+dur+1e-3)*testRate))
	err = f.ModulateAt(iq, lora.Impairments{FrequencyBias: deltaHz, InitialPhase: theta}, testRate, lead)
	if err != nil {
		t.Fatal(err)
	}
	noise := dsp.GaussianNoise(rng, len(iq), 1)
	g := dsp.NoiseForSNR(1, 1, snrDB)
	for i := range iq {
		iq[i] += noise[i] * complex(g, 0)
	}
	return iq, lead * testRate
}

func TestUpDownRecoversBias(t *testing.T) {
	rng := rand.New(rand.NewSource(140))
	est := &UpDownEstimator{Params: lora.DefaultParams(7)}
	for _, delta := range []float64{-25e3, -620, 0, 15e3} {
		iq, onset := frameCapture(t, rng, delta, 0.9, 30)
		res, err := est.Estimate(iq, int(onset), testRate)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(res.DeltaHz-delta) > 60 {
			t.Errorf("δ = %f: estimated %f", delta, res.DeltaHz)
		}
	}
}

func TestUpDownImmuneToOnsetMisalignment(t *testing.T) {
	// The headline property: feed the estimator a deliberately wrong onset
	// and the bias estimate must not move, while the single-chirp
	// estimator degrades by k·Δτ.
	rng := rand.New(rand.NewSource(141))
	const delta = -21e3
	iq, onset := frameCapture(t, rng, delta, 1.4, 30)
	p := lora.DefaultParams(7)
	ud := &UpDownEstimator{Params: p}
	lr := &LinearRegressionEstimator{Params: p}
	n := int(p.SamplesPerChirp(testRate))
	k := p.Bandwidth * p.Bandwidth / float64(p.ChipsPerSymbol())
	for _, misalign := range []int{-24, -8, 8, 24} { // samples
		at := int(onset) + misalign
		udRes, err := ud.Estimate(iq, at, testRate)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(udRes.DeltaHz-delta) > 80 {
			t.Errorf("misalign %d: up/down δ = %f, want %f", misalign, udRes.DeltaHz, delta)
		}
		// The timing correction must expose the misalignment.
		wantCorr := -float64(misalign) / testRate
		if math.Abs(udRes.TimingCorrection-wantCorr) > 2.5/testRate {
			t.Errorf("misalign %d: correction = %g, want %g", misalign, udRes.TimingCorrection, wantCorr)
		}
		// Single-chirp estimator absorbs k·Δτ.
		lrRes, err := lr.EstimateFB(iq[at+n:at+2*n], testRate)
		if err != nil {
			t.Fatal(err)
		}
		inducedErr := math.Abs(lrRes.DeltaHz - delta)
		wantInduced := k * math.Abs(float64(misalign)) / testRate
		if math.Abs(inducedErr-wantInduced) > wantInduced/2+60 {
			t.Errorf("misalign %d: LR induced error %f, expected ≈ %f", misalign, inducedErr, wantInduced)
		}
	}
}

func TestUpDownPropertyRandomMisalignment(t *testing.T) {
	rng := rand.New(rand.NewSource(142))
	est := &UpDownEstimator{Params: lora.DefaultParams(7)}
	iq, onset := frameCapture(t, rng, -19.5e3, 0.2, 25)
	f := func(misRaw int8) bool {
		mis := int(misRaw) / 4 // ±32 samples
		res, err := est.Estimate(iq, int(onset)+mis, testRate)
		if err != nil {
			return false
		}
		return math.Abs(res.DeltaHz+19.5e3) < 100
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestUpDownLowSNR(t *testing.T) {
	rng := rand.New(rand.NewSource(143))
	est := &UpDownEstimator{Params: lora.DefaultParams(7)}
	var sum float64
	const trials = 5
	for i := 0; i < trials; i++ {
		iq, onset := frameCapture(t, rng, -22e3, rng.Float64()*2*math.Pi, -15)
		res, err := est.Estimate(iq, int(onset), testRate)
		if err != nil {
			t.Fatal(err)
		}
		sum += math.Abs(res.DeltaHz + 22e3)
	}
	if avg := sum / trials; avg > 150 {
		t.Errorf("mean error at −15 dB = %.0f Hz", avg)
	}
}

func TestUpDownErrors(t *testing.T) {
	est := &UpDownEstimator{Params: lora.DefaultParams(7)}
	if _, err := est.Estimate(make([]complex128, 100), 0, testRate); err == nil {
		t.Error("expected error for capture without SFD")
	}
	if _, err := est.Estimate(make([]complex128, 100), -1, testRate); err == nil {
		t.Error("expected error for negative onset")
	}
	bad := &UpDownEstimator{Params: lora.Params{SF: 99}}
	if _, err := bad.Estimate(nil, 0, testRate); err == nil {
		t.Error("expected error for invalid params")
	}
}

func TestUpDownDiagnosticsConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(144))
	est := &UpDownEstimator{Params: lora.DefaultParams(7)}
	iq, onset := frameCapture(t, rng, -20e3, 0.5, 30)
	res, err := est.Estimate(iq, int(onset), testRate)
	if err != nil {
		t.Fatal(err)
	}
	if got := (res.FUp + res.FDown) / 2; math.Abs(got-res.DeltaHz) > 1e-9 {
		t.Error("DeltaHz inconsistent with raw tones")
	}
	k := 125e3 * 125e3 / 128
	if got := -(res.FUp - res.FDown) / (2 * k); math.Abs(got-res.TimingCorrection) > 1e-15 {
		t.Error("TimingCorrection inconsistent with raw tones")
	}
}
