package core

import (
	"math"
	"math/rand"
	"testing"

	"softlora/internal/dsp"
	"softlora/internal/lora"
)

const testRate = 2.4e6

// chirpCapture builds a capture with noiseLead seconds of noise followed by
// one SF7 up chirp with the given impairments, at the requested SNR (dB).
func chirpCapture(rng *rand.Rand, noiseLead, snrDB, deltaHz, theta float64) (iq []complex128, onsetSample float64) {
	p := lora.DefaultParams(7)
	spec := lora.ChirpSpec{
		SF:              p.SF,
		Bandwidth:       p.Bandwidth,
		FrequencyOffset: deltaHz,
		Phase:           theta,
	}
	lead := int(noiseLead * testRate)
	// Place the onset at a fractional sample to exercise the error upper
	// bound like the paper (real onsets fall between samples).
	frac := rng.Float64()
	total := lead + int(spec.Duration()*testRate) + 64
	iq = make([]complex128, total)
	onset := (float64(lead) + frac) / testRate
	spec.AddTo(iq, testRate, onset)
	noise := dsp.GaussianNoise(rng, total, 1)
	sigPower := 1.0 // unit-amplitude chirp
	g := dsp.NoiseForSNR(sigPower, 1, snrDB)
	for i := range iq {
		iq[i] += noise[i] * complex(g, 0)
	}
	return iq, onset * testRate
}

func TestAICDetectorHighSNR(t *testing.T) {
	rng := rand.New(rand.NewSource(90))
	for trial := 0; trial < 10; trial++ {
		iq, want := chirpCapture(rng, 2e-3, 40, -22.8e3, rng.Float64()*2*math.Pi)
		for _, comp := range []Component{ComponentI, ComponentQ} {
			det := &AICDetector{Component: comp}
			got, err := det.DetectOnset(iq, testRate)
			if err != nil {
				t.Fatal(err)
			}
			// Paper Table 2: AIC error upper bound < 2 µs at 2.4 Msps.
			errUs := math.Abs(float64(got.Sample)-want) / testRate * 1e6
			if errUs > 2 {
				t.Errorf("trial %d comp %d: AIC error %.2f µs, want < 2", trial, comp, errUs)
			}
		}
	}
}

func TestEnvelopeDetectorHighSNR(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	for trial := 0; trial < 10; trial++ {
		iq, want := chirpCapture(rng, 2e-3, 40, -20e3, rng.Float64()*2*math.Pi)
		det := &EnvelopeDetector{SmoothLen: 8}
		got, err := det.DetectOnset(iq, testRate)
		if err != nil {
			t.Fatal(err)
		}
		// Paper Table 2: envelope error upper bound ≈ 2-10 µs.
		errUs := math.Abs(float64(got.Sample)-want) / testRate * 1e6
		if errUs > 12 {
			t.Errorf("trial %d: envelope error %.2f µs, want < 12", trial, errUs)
		}
	}
}

func TestAICBeatsEnvelope(t *testing.T) {
	// Paper Table 2's headline: the AIC detector is more accurate.
	rng := rand.New(rand.NewSource(92))
	var aicSum, envSum float64
	const trials = 15
	for trial := 0; trial < trials; trial++ {
		iq, want := chirpCapture(rng, 2e-3, 25, -22e3, rng.Float64()*2*math.Pi)
		aic := &AICDetector{}
		env := &EnvelopeDetector{SmoothLen: 8}
		a, err := aic.DetectOnset(iq, testRate)
		if err != nil {
			t.Fatal(err)
		}
		e, err := env.DetectOnset(iq, testRate)
		if err != nil {
			t.Fatal(err)
		}
		aicSum += math.Abs(float64(a.Sample) - want)
		envSum += math.Abs(float64(e.Sample) - want)
	}
	if aicSum > envSum {
		t.Errorf("AIC mean error %.1f samples > envelope %.1f", aicSum/trials, envSum/trials)
	}
}

func TestAICDetectorBuildingSNRRange(t *testing.T) {
	// Fig. 15: sub-10 µs signal timestamping across the building, whose
	// SNR survey spans −1 to 13 dB.
	rng := rand.New(rand.NewSource(93))
	for _, snr := range []float64{-1, 5, 13} {
		var sum float64
		const trials = 8
		for trial := 0; trial < trials; trial++ {
			iq, want := chirpCapture(rng, 2e-3, snr, -22e3, rng.Float64()*2*math.Pi)
			det := &AICDetector{LowPassCutoffHz: DefaultPrefilterCutoffHz}
			got, err := det.DetectOnset(iq, testRate)
			if err != nil {
				t.Fatal(err)
			}
			sum += math.Abs(float64(got.Sample)-want) / testRate * 1e6
		}
		if avg := sum / trials; avg > 10 {
			t.Errorf("mean AIC error at %+.0f dB = %.1f µs, want < 10", snr, avg)
		}
	}
}

func TestAICDetectorLowSNR(t *testing.T) {
	// Below the building range the error grows; the detector must stay
	// within ~150 µs at −10 dB (see EXPERIMENTS.md for the Fig. 10
	// comparison — the paper reports tighter tails than plain AR-AIC on
	// Gaussian noise achieves).
	rng := rand.New(rand.NewSource(93))
	var sum float64
	const trials = 8
	for trial := 0; trial < trials; trial++ {
		iq, want := chirpCapture(rng, 2e-3, -10, -22e3, rng.Float64()*2*math.Pi)
		det := &AICDetector{LowPassCutoffHz: DefaultPrefilterCutoffHz}
		got, err := det.DetectOnset(iq, testRate)
		if err != nil {
			t.Fatal(err)
		}
		sum += math.Abs(float64(got.Sample)-want) / testRate * 1e6
	}
	if avg := sum / trials; avg > 150 {
		t.Errorf("mean AIC error at -10 dB = %.1f µs, want < 150", avg)
	}
}

func TestAICErrorGrowsAsSNRDrops(t *testing.T) {
	rng := rand.New(rand.NewSource(94))
	meanErr := func(snr float64) float64 {
		var sum float64
		const trials = 6
		for i := 0; i < trials; i++ {
			iq, want := chirpCapture(rng, 2e-3, snr, -22e3, rng.Float64()*2*math.Pi)
			det := &AICDetector{LowPassCutoffHz: DefaultPrefilterCutoffHz}
			got, err := det.DetectOnset(iq, testRate)
			if err != nil {
				t.Fatal(err)
			}
			sum += math.Abs(float64(got.Sample) - want)
		}
		return sum / trials
	}
	if meanErr(30) > meanErr(-15) {
		t.Error("AIC error should grow as SNR drops")
	}
}

func TestEnvelopeRatiosShape(t *testing.T) {
	rng := rand.New(rand.NewSource(95))
	iq, want := chirpCapture(rng, 2e-3, 30, -20e3, 1)
	det := &EnvelopeDetector{SmoothLen: 8}
	env, ratios := det.Ratios(iq)
	if len(env) != len(iq) || len(ratios) != len(iq) {
		t.Fatal("length mismatch")
	}
	// The max ratio should sit near the onset (Fig. 9(a)).
	best, bestI := 0.0, 0
	for i, v := range ratios {
		if v > best {
			best = v
			bestI = i
		}
	}
	if math.Abs(float64(bestI)-want) > 40 {
		t.Errorf("max ratio at %d, onset at %.0f", bestI, want)
	}
	// Envelope after onset should be near the chirp amplitude 1.
	after := dsp.Mean(env[int(want)+200 : int(want)+1200])
	if math.Abs(after-1) > 0.2 {
		t.Errorf("post-onset envelope = %f", after)
	}
}

func TestSpectrogramDetectorCoarse(t *testing.T) {
	// The ablation point (§6.1.2): the spectrogram finds the onset but
	// only at hop-size resolution (~50 µs), 10-100x worse than AIC.
	rng := rand.New(rand.NewSource(96))
	iq, want := chirpCapture(rng, 2e-3, 30, -20e3, 1)
	det := &SpectrogramDetector{WindowLen: 128, Overlap: 16}
	got, err := det.DetectOnset(iq, testRate)
	if err != nil {
		t.Fatal(err)
	}
	errUs := math.Abs(float64(got.Sample)-want) / testRate * 1e6
	if errUs > 120 {
		t.Errorf("spectrogram error %.1f µs, want < 120 (coarse but sane)", errUs)
	}
	if errUs < 0.42 {
		t.Logf("note: spectrogram got lucky (%.2f µs), typical error is tens of µs", errUs)
	}
}

func TestMatchedFilterPhaseSensitive(t *testing.T) {
	// The paper's §6.1.2 dismissal: the real matched filter degrades when
	// the transmitter phase differs from the template's. Verify the
	// correlation score drops with phase mismatch.
	rng := rand.New(rand.NewSource(97))
	p := lora.DefaultParams(7)
	score := func(theta float64) float64 {
		spec := lora.ChirpSpec{SF: p.SF, Bandwidth: p.Bandwidth, Phase: theta}
		lead := int(1e-3 * testRate)
		iq := make([]complex128, lead+int(spec.Duration()*testRate)+32)
		spec.AddTo(iq, testRate, float64(lead)/testRate)
		noise := dsp.GaussianNoise(rng, len(iq), 0.0001)
		for i := range iq {
			iq[i] += noise[i]
		}
		det := &MatchedFilterDetector{Params: p, TemplatePhase: 0}
		got, err := det.DetectOnset(iq, testRate)
		if err != nil {
			return math.Inf(1)
		}
		return math.Abs(float64(got.Sample) - float64(lead))
	}
	matched := score(0)
	mismatched := score(math.Pi / 2)
	if matched > 4 {
		t.Errorf("phase-matched template missed onset by %f samples", matched)
	}
	if mismatched < 4 {
		t.Errorf("phase-mismatched template should degrade, error = %f samples", mismatched)
	}
}

func TestDetectorsOnFullFramePreamble(t *testing.T) {
	// The detectors must also work on a real modulated frame (preamble
	// first), not just an isolated chirp.
	rng := rand.New(rand.NewSource(98))
	p := lora.DefaultParams(7)
	f := lora.Frame{Params: p, Payload: []byte("x")}
	lead := 3e-3
	dur, err := f.ModulatedDuration()
	if err != nil {
		t.Fatal(err)
	}
	iq := make([]complex128, int((lead+dur+0.001)*testRate))
	if err := f.ModulateAt(iq, lora.Impairments{FrequencyBias: -21e3, InitialPhase: 2.2}, testRate, lead); err != nil {
		t.Fatal(err)
	}
	noise := dsp.GaussianNoise(rng, len(iq), 0.001)
	for i := range iq {
		iq[i] += noise[i]
	}
	det := &AICDetector{}
	// Analyze only the first few ms (the SDR captures the first two
	// chirps, §5.1).
	window := iq[:int((lead+2.5e-3)*testRate)]
	got, err := det.DetectOnset(window, testRate)
	if err != nil {
		t.Fatal(err)
	}
	errUs := math.Abs(got.Time-lead) * 1e6
	if errUs > 3 {
		t.Errorf("frame preamble onset error %.2f µs", errUs)
	}
}

func TestOnsetErrors(t *testing.T) {
	det := &AICDetector{}
	if _, err := det.DetectOnset(make([]complex128, 4), testRate); err == nil {
		t.Error("expected error on tiny trace")
	}
	env := &EnvelopeDetector{}
	if _, err := env.DetectOnset(nil, testRate); err == nil {
		t.Error("expected error on empty trace")
	}
	sg := &SpectrogramDetector{}
	if _, err := sg.DetectOnset(make([]complex128, 16), testRate); err == nil {
		t.Error("expected error on trace shorter than window")
	}
	mf := &MatchedFilterDetector{Params: lora.DefaultParams(7)}
	if _, err := mf.DetectOnset(make([]complex128, 16), testRate); err == nil {
		t.Error("expected error on trace shorter than template")
	}
}

// The float32 decision lanes must hand the final float64 refinement a
// window containing the same minimum the reference lane finds: on chirp
// fixtures across the SNR range the two lanes must agree on the exact onset
// sample. (The lane only decides window placement; the 8-bit quantized
// trace sits ~40 dB above float32 rounding, so disagreement would mean the
// coarse picks diverged by more than the refinement window absorbs.)
func TestAICDetectorFloat32LaneParity(t *testing.T) {
	rng := rand.New(rand.NewSource(96))
	for _, snr := range []float64{40, 13, 0, -10} {
		for trial := 0; trial < 6; trial++ {
			iq, _ := chirpCapture(rng, 2e-3, snr, -22e3, rng.Float64()*2*math.Pi)
			fast := &AICDetector{LowPassCutoffHz: DefaultPrefilterCutoffHz}
			ref := &AICDetector{LowPassCutoffHz: DefaultPrefilterCutoffHz, Float64: true}
			got32, err := fast.DetectOnset(iq, testRate)
			if err != nil {
				t.Fatal(err)
			}
			got64, err := ref.DetectOnset(iq, testRate)
			if err != nil {
				t.Fatal(err)
			}
			if got32.Sample != got64.Sample {
				t.Errorf("snr %+.0f trial %d: float32 lane onset %d != float64 lane %d",
					snr, trial, got32.Sample, got64.Sample)
			}
		}
	}
}
