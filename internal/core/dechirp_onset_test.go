package core

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"softlora/internal/lora"
)

func TestDechirpOnsetHighSNR(t *testing.T) {
	rng := rand.New(rand.NewSource(160))
	det := &DechirpOnsetDetector{Params: testParams()}
	for trial := 0; trial < 5; trial++ {
		// Real SoftLoRa captures span multiple preamble chirps; the
		// triangle fit needs both flanks of the first boundary.
		iq, want := frameCapture(t, rng, -22e3, rng.Float64()*2*math.Pi, 30)
		got, err := det.DetectOnset(iq, testRate)
		if err != nil {
			t.Fatal(err)
		}
		errUs := math.Abs(float64(got.Sample)-want) / testRate * 1e6
		if errUs > 5 {
			t.Errorf("trial %d: error %.2f µs", trial, errUs)
		}
	}
}

func TestDechirpOnsetVeryLowSNR(t *testing.T) {
	// Despreading gain keeps the detector at microseconds where plain AIC
	// drifts by hundreds of µs: at −10 dB the plain detector averages
	// ~130 µs (Fig. 10), this one stays within tens.
	rng := rand.New(rand.NewSource(161))
	det := &DechirpOnsetDetector{Params: testParams()}
	var sum float64
	const trials = 6
	for trial := 0; trial < trials; trial++ {
		iq, want := frameCapture(t, rng, -22e3, rng.Float64()*2*math.Pi, -10)
		got, err := det.DetectOnset(iq, testRate)
		if err != nil {
			t.Fatal(err)
		}
		sum += math.Abs(float64(got.Sample)-want) / testRate * 1e6
	}
	if avg := sum / trials; avg > 40 {
		t.Errorf("mean error at -10 dB = %.1f µs, want < 40", avg)
	}
}

func TestDechirpOnsetDegenerateCaptures(t *testing.T) {
	// Like the paper's detectors, this one is threshold-free: on pure
	// noise it returns an arbitrary pick rather than an error. Only
	// structurally unusable captures error.
	det := &DechirpOnsetDetector{Params: testParams()}
	if _, err := det.DetectOnset(nil, testRate); err == nil {
		t.Error("empty capture should error")
	}
	if _, err := det.DetectOnset(make([]complex128, 64), testRate); err == nil {
		t.Error("sub-chirp capture should error")
	}
	bad := &DechirpOnsetDetector{Params: lora.Params{SF: 99}}
	if _, err := bad.DetectOnset(make([]complex128, 8192), testRate); err == nil {
		t.Error("invalid params should error")
	}
}

func TestDechirpOnsetWalksBackToFirstChirp(t *testing.T) {
	// A capture holding several preamble chirps: the detector must report
	// the FIRST boundary, not a later one.
	rng := rand.New(rand.NewSource(163))
	p := testParams()
	det := &DechirpOnsetDetector{Params: p}
	iq, want := frameCapture(t, rng, -21e3, 0.7, 10)
	got, err := det.DetectOnset(iq, testRate)
	if err != nil {
		t.Fatal(err)
	}
	errUs := math.Abs(float64(got.Sample)-want) / testRate * 1e6
	if errUs > 10 {
		t.Errorf("onset error %.2f µs (sample %d vs %.0f)", errUs, got.Sample, want)
	}
}

func TestDechirpOnsetErrorVsSNRMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(164))
	det := &DechirpOnsetDetector{Params: testParams()}
	meanErr := func(snr float64) float64 {
		var sum float64
		const trials = 4
		for i := 0; i < trials; i++ {
			iq, want := frameCapture(t, rng, -22e3, rng.Float64()*2*math.Pi, snr)
			got, err := det.DetectOnset(iq, testRate)
			if err != nil {
				t.Fatalf("snr %v: %v", snr, err)
			}
			sum += math.Abs(float64(got.Sample) - want)
		}
		return sum / trials
	}
	hi := meanErr(20)
	lo := meanErr(-10)
	if hi > lo {
		fmt.Println("note: high-SNR error exceeded low-SNR error (small-sample effect)")
	}
	if lo/testRate*1e6 > 60 {
		t.Errorf("error at -10 dB = %.1f µs", lo/testRate*1e6)
	}
}

// testParams returns the default SF7 channel used across core tests.
func testParams() lora.Params { return lora.DefaultParams(7) }
