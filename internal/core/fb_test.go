package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"softlora/internal/dsp"
	"softlora/internal/lora"
)

// cleanChirp synthesizes one SF7 chirp with the given δ and θ at the SDR
// rate, plus noise at snrDB (math.Inf(1) for noiseless).
func cleanChirp(rng *rand.Rand, deltaHz, theta, snrDB float64) []complex128 {
	p := lora.DefaultParams(7)
	spec := lora.ChirpSpec{
		SF:              p.SF,
		Bandwidth:       p.Bandwidth,
		FrequencyOffset: deltaHz,
		Phase:           theta,
	}
	iq := spec.Synthesize(testRate)
	if !math.IsInf(snrDB, 1) {
		noise := dsp.GaussianNoise(rng, len(iq), 1)
		g := dsp.NoiseForSNR(dsp.Power(iq), 1, snrDB)
		for i := range iq {
			iq[i] += noise[i] * complex(g, 0)
		}
	}
	return iq
}

func TestLinearRegressionRecoversKnownBias(t *testing.T) {
	rng := rand.New(rand.NewSource(100))
	est := &LinearRegressionEstimator{Params: lora.DefaultParams(7)}
	for _, delta := range []float64{-25e3, -22.8e3, -5e3, 0, 1e3, 25e3} {
		iq := cleanChirp(rng, delta, 1.2, 35)
		got, err := est.EstimateFB(iq, testRate)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got.DeltaHz-delta) > 30 {
			t.Errorf("δ = %f: estimated %f", delta, got.DeltaHz)
		}
		// R² is only meaningful when the residual line has slope (δ ≠ 0:
		// a flat residual has no variance to explain).
		if math.Abs(delta) > 1e3 && got.Quality < 0.99 {
			t.Errorf("δ = %f: R² = %f", delta, got.Quality)
		}
	}
}

func TestLinearRegressionDiagnosticsFig12(t *testing.T) {
	// Reproduce Fig. 12: the residual must be a straight line whose slope
	// is 2πδ (the paper's example estimates −22.8 kHz).
	rng := rand.New(rand.NewSource(101))
	est := &LinearRegressionEstimator{Params: lora.DefaultParams(7)}
	iq := cleanChirp(rng, -22.8e3, 0.7, 30)
	d, err := est.Extract(iq, testRate)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Atan2) != len(d.Rectified) || len(d.Residual) != len(d.Atan2) {
		t.Fatal("diagnostic lengths differ")
	}
	// Wrapped phase stays in (-π, π].
	for _, v := range d.Atan2 {
		if v <= -math.Pi || v > math.Pi {
			t.Fatalf("wrapped phase %f out of range", v)
		}
	}
	// Rectified phase for a negative bias decreases overall (Fig. 12(c)).
	if d.Rectified[len(d.Rectified)-1] >= d.Rectified[0] {
		t.Error("rectified phase should decrease for negative δ")
	}
	if math.Abs(d.Fit.Slope/(2*math.Pi)+22.8e3) > 30 {
		t.Errorf("slope/2π = %f, want −22.8 kHz", d.Fit.Slope/(2*math.Pi))
	}
	if d.Fit.R2 < 0.999 {
		t.Errorf("R² = %f: residual not a line", d.Fit.R2)
	}
}

func TestLinearRegressionPropertyRandomBias(t *testing.T) {
	est := &LinearRegressionEstimator{Params: lora.DefaultParams(7)}
	f := func(seed int64, deltaRaw int16, thetaRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		delta := float64(deltaRaw) // ±32.7 kHz
		theta := float64(thetaRaw) / 256 * 2 * math.Pi
		iq := cleanChirp(rng, delta, theta, 40)
		got, err := est.EstimateFB(iq, testRate)
		if err != nil {
			return false
		}
		return math.Abs(got.DeltaHz-delta) < 30
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestLinearRegressionDegradesAtLowSNR(t *testing.T) {
	// §7.1.1: "the inverse tangent rectification is susceptible to low
	// received SNRs" — the motivation for the least-squares estimator.
	rng := rand.New(rand.NewSource(102))
	est := &LinearRegressionEstimator{Params: lora.DefaultParams(7)}
	errAt := func(snr float64) float64 {
		var sum float64
		const trials = 5
		for i := 0; i < trials; i++ {
			iq := cleanChirp(rng, -20e3, 1, snr)
			got, err := est.EstimateFB(iq, testRate)
			if err != nil {
				return math.Inf(1)
			}
			sum += math.Abs(got.DeltaHz + 20e3)
		}
		return sum / trials
	}
	high := errAt(30)
	low := errAt(-15)
	if low < 10*high {
		t.Errorf("LR error at -15 dB (%.0f Hz) should be far worse than at 30 dB (%.1f Hz)", low, high)
	}
}

func TestLeastSquaresHighSNR(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	est := &LeastSquaresEstimator{
		Params:     lora.DefaultParams(7),
		Decimation: 8,
		Rand:       rng,
	}
	iq := cleanChirp(rng, -17.4e3, 2.5, 30)
	got, err := est.EstimateFB(iq, testRate)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.DeltaHz+17.4e3) > 60 {
		t.Errorf("δ estimated %f, want −17.4 kHz", got.DeltaHz)
	}
}

func TestLeastSquaresLowSNRWithinPaperResolution(t *testing.T) {
	// Paper Fig. 14: estimation error below 120 Hz (0.14 ppm) down to
	// −25 dB SNR.
	rng := rand.New(rand.NewSource(112))
	var worst float64
	for trial := 0; trial < 3; trial++ {
		est := &LeastSquaresEstimator{
			Params:     lora.DefaultParams(7),
			Decimation: 2,
			NoisePower: 0, // amplitude from total power; bias is small
			Rand:       rng,
			DE:         dsp.DEConfig{MaxGenerations: 150, PopulationSize: 40, Rand: rng},
		}
		const want = -19.1e3
		iq := cleanChirp(rng, want, 0.9, -20)
		est.NoisePower = dsp.Power(iq) * (1 - 1/(1+math.Pow(10, -2))) // known -20 dB mix
		got, err := est.EstimateFB(iq, testRate)
		if err != nil {
			t.Fatal(err)
		}
		if e := math.Abs(got.DeltaHz - want); e > worst {
			worst = e
		}
	}
	if worst > 120 {
		t.Errorf("worst LS error at −20 dB = %.0f Hz, want ≤ 120 (paper resolution)", worst)
	}
}

func TestLeastSquaresRecoversTheta(t *testing.T) {
	rng := rand.New(rand.NewSource(115))
	est := &LeastSquaresEstimator{Params: lora.DefaultParams(7), Decimation: 8, Rand: rng}
	const theta = 1.8
	iq := cleanChirp(rng, -10e3, theta, 35)
	got, err := est.EstimateFB(iq, testRate)
	if err != nil {
		t.Fatal(err)
	}
	d := math.Mod(got.Theta-theta+3*math.Pi, 2*math.Pi) - math.Pi
	if math.Abs(d) > 0.3 {
		t.Errorf("θ estimated %f, want %f", got.Theta, theta)
	}
}

func TestDechirpFFTEstimator(t *testing.T) {
	rng := rand.New(rand.NewSource(106))
	est := &DechirpFFTEstimator{Params: lora.DefaultParams(7)}
	for _, delta := range []float64{-25e3, -543, 0, 743, 22e3} {
		iq := cleanChirp(rng, delta, 1.1, 20)
		got, err := est.EstimateFB(iq, testRate)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got.DeltaHz-delta) > 120 {
			t.Errorf("δ = %f: estimated %f", delta, got.DeltaHz)
		}
	}
}

func TestDechirpFFTLowSNR(t *testing.T) {
	rng := rand.New(rand.NewSource(107))
	est := &DechirpFFTEstimator{Params: lora.DefaultParams(7)}
	var sum float64
	const trials = 5
	for i := 0; i < trials; i++ {
		iq := cleanChirp(rng, -21e3, 0.4, -20)
		got, err := est.EstimateFB(iq, testRate)
		if err != nil {
			t.Fatal(err)
		}
		sum += math.Abs(got.DeltaHz + 21e3)
	}
	if avg := sum / trials; avg > 150 {
		t.Errorf("dechirp-FFT mean error at −20 dB = %.0f Hz", avg)
	}
}

// chirpAtRate synthesizes one chirp at an arbitrary sample rate (cleanChirp
// is pinned to testRate).
func chirpAtRate(rng *rand.Rand, p lora.Params, rate, deltaHz, theta, snrDB float64) []complex128 {
	spec := lora.ChirpSpec{
		SF:              p.SF,
		Bandwidth:       p.Bandwidth,
		FrequencyOffset: deltaHz,
		Phase:           theta,
	}
	iq := spec.Synthesize(rate)
	if !math.IsInf(snrDB, 1) {
		noise := dsp.GaussianNoise(rng, len(iq), 1)
		g := dsp.NoiseForSNR(dsp.Power(iq), 1, snrDB)
		for i := range iq {
			iq[i] += noise[i] * complex(g, 0)
		}
	}
	return iq
}

// TestDechirpFFTNyquistFold is the regression for the Nyquist-fold readout
// bug: at a sample rate close to the bandwidth, a δ just inside −rate/2
// peaks at the fold bin (len/2), and the fractional-bin correction pushes
// the interpolated frequency past +rate/2 unless it is folded back into
// (−rate/2, +rate/2]. The unfixed estimator reported ≈ +rate/2 here — a
// full-band (~125 kHz) error.
func TestDechirpFFTNyquistFold(t *testing.T) {
	rng := rand.New(rand.NewSource(110))
	p := lora.DefaultParams(7)
	rate := p.Bandwidth // critically sampled: Nyquist = ±BW/2
	for _, exhaustive := range []bool{false, true} {
		est := &DechirpFFTEstimator{Params: p, Exhaustive: exhaustive}
		for _, delta := range []float64{
			-p.Bandwidth/2 + 24,  // just inside −BW/2: peak at the fold bin
			-p.Bandwidth/2 + 180, // within one padded bin of the fold
			p.Bandwidth/2 - 24,   // just inside +BW/2
		} {
			iq := chirpAtRate(rng, p, rate, delta, 0.9, 30)
			got, err := est.EstimateFB(iq, rate)
			if err != nil {
				t.Fatal(err)
			}
			if got.DeltaHz > rate/2 || got.DeltaHz <= -rate/2 {
				t.Errorf("exhaustive=%v δ=%.0f: estimate %.1f Hz outside (−rate/2, rate/2]",
					exhaustive, delta, got.DeltaHz)
			}
			// Compare on the alias circle: δ at ±BW/2∓ε is unambiguous, so
			// the folded estimate must also be numerically close.
			errHz := math.Abs(dsp.FoldFrequency(got.DeltaHz-delta, rate))
			if errHz > 60 {
				t.Errorf("exhaustive=%v δ=%.0f: estimated %.1f (error %.1f Hz)",
					exhaustive, delta, got.DeltaHz, errHz)
			}
		}
	}
}

// TestDechirpFFTThetaUnbiasedOffBin is the regression for the fractional-bin
// θ bias: the unfixed estimator read θ from the integer peak bin, which for
// a δ half a bin off the grid rotates θ by up to π·n/(2·nfft) ≈ 0.24 rad.
// Clean chirps, worst-case half-bin offsets; θ is pinned against the true
// synthesized phase and cross-checked against LeastSquaresEstimator.
func TestDechirpFFTThetaUnbiasedOffBin(t *testing.T) {
	p := lora.DefaultParams(7)
	n := int(p.SamplesPerChirp(testRate))
	nfft := float64(dsp.NextPow2(4 * n)) // legacy padded length: 16384
	angDiff := func(a, b float64) float64 {
		return math.Abs(math.Mod(a-b+3*math.Pi, 2*math.Pi) - math.Pi)
	}
	for _, exhaustive := range []bool{false, true} {
		est := &DechirpFFTEstimator{Params: p, Exhaustive: exhaustive}
		for _, tc := range []struct {
			deltaHz, theta float64
		}{
			{(10 + 0.5) * testRate / nfft, 2.0},  // exactly half a padded bin off-grid
			{(-33 - 0.5) * testRate / nfft, 0.3}, // negative side
			{(150 + 0.3) * testRate / nfft, 5.1},
			{1234.5, 4.0}, // arbitrary off-grid δ
		} {
			iq := chirpAtRate(rand.New(rand.NewSource(111)), p, testRate, tc.deltaHz, tc.theta, math.Inf(1))
			got, err := est.EstimateFB(iq, testRate)
			if err != nil {
				t.Fatal(err)
			}
			if d := angDiff(got.Theta, tc.theta); d > 0.06 {
				t.Errorf("exhaustive=%v δ=%.1f: θ=%.3f, want %.3f (off by %.3f rad)",
					exhaustive, tc.deltaHz, got.Theta, tc.theta, d)
			}
		}
	}
	// Cross-check against the least-squares estimator's θ on one clean
	// half-bin-offset chirp (the satellite's reference).
	rng := rand.New(rand.NewSource(112))
	delta := (10 + 0.5) * testRate / nfft
	iq := chirpAtRate(rng, p, testRate, delta, 2.0, math.Inf(1))
	ls := &LeastSquaresEstimator{Params: p, Decimation: 8, Rand: rng}
	want, err := ls.EstimateFB(iq, testRate)
	if err != nil {
		t.Fatal(err)
	}
	df := &DechirpFFTEstimator{Params: p}
	got, err := df.EstimateFB(iq, testRate)
	if err != nil {
		t.Fatal(err)
	}
	if d := angDiff(got.Theta, want.Theta); d > 0.15 {
		t.Errorf("dechirp-FFT θ=%.3f vs least-squares θ=%.3f (off by %.3f rad)", got.Theta, want.Theta, d)
	}
}

// TestDechirpFFTExhaustiveMatchesZoom pins the two paths against each other
// at moderate SNR: the zoom fast path must track the monolithic reference
// within a few Hz.
func TestDechirpFFTExhaustiveMatchesZoom(t *testing.T) {
	rng := rand.New(rand.NewSource(113))
	fast := &DechirpFFTEstimator{Params: lora.DefaultParams(7)}
	ref := &DechirpFFTEstimator{Params: lora.DefaultParams(7), Exhaustive: true}
	for _, delta := range []float64{-55e3, -21.3e3, -543, 0, 743.9, 22e3, 55e3} {
		iq := cleanChirp(rng, delta, 1.1, 10)
		a, err := fast.EstimateFB(iq, testRate)
		if err != nil {
			t.Fatal(err)
		}
		b, err := ref.EstimateFB(iq, testRate)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(a.DeltaHz-b.DeltaHz) > 30 {
			t.Errorf("δ=%.0f: zoom %.1f vs exhaustive %.1f Hz", delta, a.DeltaHz, b.DeltaHz)
		}
	}
}

func TestEstimatorsAgreeOnRealisticChirp(t *testing.T) {
	// Cross-validation: all three estimators within 150 Hz of each other
	// at moderate SNR.
	rng := rand.New(rand.NewSource(112))
	iq := cleanChirp(rng, -23.5e3, 2.0, 15)
	lr := &LinearRegressionEstimator{Params: lora.DefaultParams(7)}
	ls := &LeastSquaresEstimator{Params: lora.DefaultParams(7), Decimation: 4, Rand: rng}
	df := &DechirpFFTEstimator{Params: lora.DefaultParams(7)}
	a, err := lr.EstimateFB(iq, testRate)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ls.EstimateFB(iq, testRate)
	if err != nil {
		t.Fatal(err)
	}
	c, err := df.EstimateFB(iq, testRate)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a.DeltaHz-b.DeltaHz) > 150 || math.Abs(b.DeltaHz-c.DeltaHz) > 150 {
		t.Errorf("estimators disagree: LR %f LS %f FFT %f", a.DeltaHz, b.DeltaHz, c.DeltaHz)
	}
}

func TestEstimateFBErrors(t *testing.T) {
	short := make([]complex128, 16)
	lr := &LinearRegressionEstimator{Params: lora.DefaultParams(7)}
	if _, err := lr.EstimateFB(short, testRate); err == nil {
		t.Error("LR should reject short capture")
	}
	ls := &LeastSquaresEstimator{Params: lora.DefaultParams(7)}
	if _, err := ls.EstimateFB(short, testRate); err == nil {
		t.Error("LS should reject short capture")
	}
	df := &DechirpFFTEstimator{Params: lora.DefaultParams(7)}
	if _, err := df.EstimateFB(short, testRate); err == nil {
		t.Error("FFT should reject short capture")
	}
	// LS without randomness configured.
	rng := rand.New(rand.NewSource(1))
	full := cleanChirp(rng, 0, 0, 30)
	ls2 := &LeastSquaresEstimator{Params: lora.DefaultParams(7)}
	if _, err := ls2.EstimateFB(full, testRate); err == nil {
		t.Error("LS should require a random source")
	}
}

func TestReplayerAddsDetectableBias(t *testing.T) {
	// Fig. 13's core fact: a replayed chirp carries the replayer's extra
	// FB (−543 to −743 Hz), which exceeds the 120 Hz resolution.
	rng := rand.New(rand.NewSource(109))
	est := &LinearRegressionEstimator{Params: lora.DefaultParams(7)}
	original := cleanChirp(rng, -22e3, 1.0, 25)
	replayed := cleanChirp(rng, -22e3-620, 2.9, 25) // replayer adds −620 Hz
	a, err := est.EstimateFB(original, testRate)
	if err != nil {
		t.Fatal(err)
	}
	b, err := est.EstimateFB(replayed, testRate)
	if err != nil {
		t.Fatal(err)
	}
	shift := a.DeltaHz - b.DeltaHz
	if shift < 500 || shift > 750 {
		t.Errorf("replay-induced shift = %f Hz, want ~620", shift)
	}
}
