package core

import (
	"bytes"
	"encoding/json"
	"errors"
	"math"
	"math/rand"
	"sync"
	"testing"
)

func TestVerdictString(t *testing.T) {
	tests := []struct {
		v    Verdict
		want string
	}{
		{VerdictGenuine, "genuine"},
		{VerdictReplay, "replay"},
		{VerdictEnrolling, "enrolling"},
		{Verdict(9), "Verdict(9)"},
	}
	for _, tt := range tests {
		if got := tt.v.String(); got != tt.want {
			t.Errorf("String() = %q, want %q", got, tt.want)
		}
	}
}

func TestDetectorEnrollThenDetect(t *testing.T) {
	d := NewReplayDetector()
	// First frames: enrolling.
	for i := 0; i < DefaultEnrollFrames; i++ {
		if v := d.Check("node-1", -22000+float64(i)*10); v != VerdictEnrolling {
			t.Fatalf("frame %d: verdict = %v, want enrolling", i, v)
		}
	}
	// Genuine frame within tolerance.
	if v := d.Check("node-1", -22050); v != VerdictGenuine {
		t.Errorf("genuine frame: verdict = %v", v)
	}
	// Replay: USRP adds −543..−743 Hz (paper Fig. 13).
	if v := d.Check("node-1", -22000-620); v != VerdictReplay {
		t.Errorf("replayed frame: verdict = %v, want replay", v)
	}
}

func TestDetectorReplayDoesNotPoisonDatabase(t *testing.T) {
	d := NewReplayDetector()
	d.Enroll("node-1", -22000, 10)
	before, _ := d.Record("node-1")
	if v := d.Check("node-1", -22700); v != VerdictReplay {
		t.Fatalf("verdict = %v", v)
	}
	after, _ := d.Record("node-1")
	if after.Mean != before.Mean || after.Count != before.Count {
		t.Error("replay estimate must not update the database (§7.2)")
	}
}

func TestDetectorTracksTemperatureDrift(t *testing.T) {
	// §7.2: the gateway continuously updates entries so slow skew (e.g.
	// temperature) stays within tolerance while the replay step's sudden
	// jump is still caught.
	d := NewReplayDetector()
	d.Enroll("node-1", -22000, 10)
	fb := -22000.0
	for i := 0; i < 200; i++ {
		fb += 20 // 20 Hz per frame: slow drift, 4 kHz total
		if v := d.Check("node-1", fb); v != VerdictGenuine {
			t.Fatalf("drift frame %d (fb %f): verdict = %v", i, fb, v)
		}
	}
	// After drifting 4 kHz, a replayer's extra −620 Hz must still trip.
	if v := d.Check("node-1", fb-620); v != VerdictReplay {
		t.Errorf("post-drift replay: verdict = %v", v)
	}
}

func TestDetectorSimilarBiasesAcrossNodes(t *testing.T) {
	// The paper stresses detection needs no uniqueness: two nodes may
	// share a bias (Fig. 13's nodes 3, 8, 14) and detection still works
	// per-node.
	d := NewReplayDetector()
	d.Enroll("node-3", -21000, 10)
	d.Enroll("node-8", -21010, 10)
	if v := d.Check("node-3", -21020); v != VerdictGenuine {
		t.Errorf("node-3: %v", v)
	}
	if v := d.Check("node-8", -21640); v != VerdictReplay {
		t.Errorf("node-8 replay: %v", v)
	}
}

func TestDetectorColdStart(t *testing.T) {
	d := NewReplayDetector()
	if v := d.Check("newcomer", -20000); v != VerdictEnrolling {
		t.Errorf("first frame: %v", v)
	}
	if d.Devices() != 1 {
		t.Errorf("devices = %d", d.Devices())
	}
	if _, ok := d.Record("missing"); ok {
		t.Error("missing device should not have a record")
	}
}

func TestDetectorZeroValueUsable(t *testing.T) {
	// Zero-value detector must work with defaults (guide: useful zero
	// values).
	var d ReplayDetector
	if v := d.Check("n", 100); v != VerdictEnrolling {
		t.Errorf("verdict = %v", v)
	}
}

func TestDetectorMinMaxTracking(t *testing.T) {
	d := NewReplayDetector()
	d.Enroll("n", -22000, 10)
	d.Check("n", -22100)
	d.Check("n", -21900)
	rec, ok := d.Record("n")
	if !ok {
		t.Fatal("record missing")
	}
	if rec.Min != -22100 || rec.Max != -21900 {
		t.Errorf("range = [%f, %f]", rec.Min, rec.Max)
	}
	if rec.Count != 12 {
		t.Errorf("count = %d", rec.Count)
	}
}

func TestDetectorSaveLoadRoundTrip(t *testing.T) {
	d := NewReplayDetector()
	d.Enroll("node-1", -22000, 5)
	d.Enroll("node-2", -18000, 7)
	var buf bytes.Buffer
	if err := d.Save(&buf); err != nil {
		t.Fatal(err)
	}
	d2 := NewReplayDetector()
	if err := d2.Load(&buf); err != nil {
		t.Fatal(err)
	}
	if d2.Devices() != 2 {
		t.Fatalf("devices = %d", d2.Devices())
	}
	rec, ok := d2.Record("node-2")
	if !ok || rec.Mean != -18000 || rec.Count != 7 {
		t.Errorf("record = %+v ok=%v", rec, ok)
	}
	// Detection still works post-load.
	if v := d2.Check("node-1", -22620); v != VerdictReplay {
		t.Errorf("post-load replay check: %v", v)
	}
}

func TestDetectorLoadMalformed(t *testing.T) {
	d := NewReplayDetector()
	if err := d.Load(bytes.NewBufferString("not json")); err == nil {
		t.Error("expected error for malformed database")
	}
}

func TestDetectorEnrollmentLearnsWindowAverage(t *testing.T) {
	// With the default 3-frame enrollment, the learned mean must be the
	// plain average of the window, not an EWMA that weights the first
	// frame by 0.64 and reacts sluggishly to the rest.
	d := NewReplayDetector()
	window := []float64{-22000, -21900, -21700}
	for i, fb := range window {
		if v := d.Check("n", fb); v != VerdictEnrolling {
			t.Fatalf("frame %d: verdict = %v, want enrolling", i, v)
		}
	}
	rec, ok := d.Record("n")
	if !ok {
		t.Fatal("record missing")
	}
	wantMean := (window[0] + window[1] + window[2]) / 3
	if math.Abs(rec.Mean-wantMean) > 1e-9 {
		t.Errorf("post-enrollment mean = %f, want window average %f", rec.Mean, wantMean)
	}
	if rec.Count != len(window) {
		t.Errorf("count = %d, want %d", rec.Count, len(window))
	}
	// The running mean-abs-deviation must be positive for a spread window
	// (it seeds the adaptive band) and bounded by the window's span.
	if rec.Dev <= 0 || rec.Dev > 300 {
		t.Errorf("post-enrollment dev = %f", rec.Dev)
	}
	// Detection activates on the next frame using the window statistics.
	if v := d.Check("n", wantMean-620); v != VerdictReplay {
		t.Errorf("replay after enrollment: verdict = %v", v)
	}
}

func TestDetectorEnrollmentRunningMeanLongWindow(t *testing.T) {
	// A longer explicit enrollment window must also average exactly: the
	// count-weighted running mean is order-independent up to rounding.
	d := NewReplayDetector()
	d.EnrollFrames = 5
	window := []float64{-100, 300, -500, 700, -900}
	sum := 0.0
	for _, fb := range window {
		d.Check("long", fb)
		sum += fb
	}
	rec, _ := d.Record("long")
	if math.Abs(rec.Mean-sum/5) > 1e-9 {
		t.Errorf("mean = %f, want %f", rec.Mean, sum/5)
	}
}

func TestDetectorLoadRejectsHostileDatabase(t *testing.T) {
	// A record with Dev: NaN makes Band NaN, and |fb − mean| > NaN is
	// always false — every frame from that device would be accepted as
	// genuine. Load must reject such databases outright.
	cases := map[string]string{
		"nan mean":       `{"n": {"mean_hz": "NaN", "dev_hz": 0, "min_hz": 0, "max_hz": 0, "count": 1}}`,
		"negative dev":   `{"n": {"mean_hz": -22000, "dev_hz": -5, "min_hz": -22000, "max_hz": -22000, "count": 10}}`,
		"negative count": `{"n": {"mean_hz": -22000, "dev_hz": 0, "min_hz": -22000, "max_hz": -22000, "count": -1}}`,
		"inverted range": `{"n": {"mean_hz": -22000, "dev_hz": 0, "min_hz": -21000, "max_hz": -22000, "count": 10}}`,
		"null record":    `{"n": null}`,
	}
	for name, db := range cases {
		d := NewReplayDetector()
		d.Enroll("keep", -20000, 10)
		err := d.Load(bytes.NewBufferString(db))
		if !errors.Is(err, ErrBadDatabase) {
			t.Errorf("%s: err = %v, want ErrBadDatabase", name, err)
		}
		// A rejected load must leave the existing database untouched.
		if _, ok := d.Record("keep"); !ok {
			t.Errorf("%s: failed load clobbered the existing database", name)
		}
	}
}

func TestNonFiniteRecordWouldAcceptReplays(t *testing.T) {
	// Demonstrate the attack Validate closes: with a NaN Mean installed,
	// |fb − NaN| > band is always false and CheckRecord accepts an
	// arbitrarily wrong bias as genuine; an infinite Dev inflates the
	// band the same way. Validate must refuse such records before they
	// can reach a database.
	hostile := []BiasRecord{
		{Mean: math.NaN(), Dev: 0, Min: -22000, Max: -22000, Count: 10},
		{Mean: -22000, Dev: math.Inf(1), Min: -22000, Max: -22000, Count: 10},
		{Mean: -22000, Dev: math.NaN(), Min: -22000, Max: -22000, Count: 10},
	}
	for i := range hostile {
		rec := hostile[i]
		v, _ := CheckRecord(&rec, -22000-5e6, DefaultToleranceHz, DefaultDevMultiplier, DefaultEWMAAlpha, DefaultEnrollFrames)
		if i < 2 && v != VerdictGenuine {
			t.Errorf("record %d: verdict = %v: non-finite record no longer swallows replays", i, v)
		}
		if err := hostile[i].Validate(); err == nil {
			t.Errorf("record %d passed validation", i)
		}
	}
}

func TestCheckNonFiniteEstimateFailsClosed(t *testing.T) {
	// A NaN/Inf estimate must be rejected without folding: folding NaN
	// into Mean would disable detection for the device forever after.
	d := NewReplayDetector()
	d.Enroll("n", -22000, 10)
	for _, fb := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		if v := d.Check("n", fb); v != VerdictReplay {
			t.Errorf("Check(%v) = %v, want replay (fail closed)", fb, v)
		}
	}
	rec, _ := d.Record("n")
	if rec.Mean != -22000 || rec.Count != 10 {
		t.Errorf("non-finite estimate mutated the record: %+v", rec)
	}
	// An unknown device must not get a record created from garbage.
	if v := d.Check("newcomer", math.NaN()); v != VerdictReplay {
		t.Errorf("unknown device NaN: %v", v)
	}
	if _, ok := d.Record("newcomer"); ok {
		t.Error("NaN estimate created a device record")
	}
	// Save must still succeed (no NaN smuggled into the database).
	var buf bytes.Buffer
	if err := d.Save(&buf); err != nil {
		t.Errorf("Save after NaN checks: %v", err)
	}
}

func TestValidateBiasRecord(t *testing.T) {
	good := BiasRecord{Mean: -22000, Dev: 10, Min: -22100, Max: -21900, Count: 5}
	if err := good.Validate(); err != nil {
		t.Errorf("valid record rejected: %v", err)
	}
	bad := good
	bad.Max = math.Inf(1)
	if err := bad.Validate(); err == nil {
		t.Error("infinite max accepted")
	}
	bad = good
	bad.LastSeen = math.NaN()
	if err := bad.Validate(); err == nil {
		t.Error("NaN LastSeen accepted")
	}
}

func TestBiasRecordTouchMonotonic(t *testing.T) {
	var rec BiasRecord
	rec.Touch(100)
	if rec.LastSeen != 100 {
		t.Fatalf("LastSeen = %v after Touch(100)", rec.LastSeen)
	}
	// Out-of-order commits must not move the stamp backwards.
	rec.Touch(40)
	if rec.LastSeen != 100 {
		t.Errorf("Touch(40) rewound LastSeen to %v", rec.LastSeen)
	}
	rec.Touch(250.5)
	if rec.LastSeen != 250.5 {
		t.Errorf("Touch(250.5) gave %v", rec.LastSeen)
	}
	// Non-finite times are ignored, never stored.
	rec.Touch(math.NaN())
	rec.Touch(math.Inf(1))
	if rec.LastSeen != 250.5 {
		t.Errorf("non-finite Touch changed LastSeen to %v", rec.LastSeen)
	}
}

func TestBiasRecordLastSeenJSONCompat(t *testing.T) {
	// Legacy databases have no last_seen_s field and must keep decoding
	// to a zero stamp; a zero stamp must re-encode without the field so
	// detector-written files stay byte-stable.
	var rec BiasRecord
	if err := json.Unmarshal([]byte(`{"mean_hz":-22000,"dev_hz":10,"min_hz":-22100,"max_hz":-21900,"count":5}`), &rec); err != nil {
		t.Fatal(err)
	}
	if rec.LastSeen != 0 {
		t.Errorf("legacy decode stamped LastSeen = %v", rec.LastSeen)
	}
	out, err := json.Marshal(&rec)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(out, []byte("last_seen_s")) {
		t.Errorf("zero LastSeen serialized: %s", out)
	}
	rec.Touch(12.5)
	out, err = json.Marshal(&rec)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(out, []byte(`"last_seen_s":12.5`)) {
		t.Errorf("stamped LastSeen missing from %s", out)
	}
}

func TestDetectorConcurrentUse(t *testing.T) {
	d := NewReplayDetector()
	rng := rand.New(rand.NewSource(110))
	ids := []string{"a", "b", "c", "d"}
	for _, id := range ids {
		d.Enroll(id, -20000, 10)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		seed := rng.Int63()
		go func() {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for i := 0; i < 200; i++ {
				id := ids[r.Intn(len(ids))]
				d.Check(id, -20000+r.NormFloat64()*50)
			}
		}()
	}
	wg.Wait()
	for _, id := range ids {
		if v := d.Check(id, -20620); v != VerdictReplay {
			t.Errorf("%s: %v", id, v)
		}
	}
}

func TestDetectorFalsePositiveRate(t *testing.T) {
	// Genuine frames with realistic per-frame jitter (σ = 30-50 Hz, Fig. 13
	// error bars) must essentially never be flagged.
	d := NewReplayDetector()
	d.Enroll("n", -22000, 10)
	rng := rand.New(rand.NewSource(111))
	flagged := 0
	const frames = 2000
	for i := 0; i < frames; i++ {
		fb := -22000 + rng.NormFloat64()*50
		if d.Check("n", fb) == VerdictReplay {
			flagged++
		}
	}
	if flagged > 0 {
		t.Errorf("false positives: %d/%d", flagged, frames)
	}
}

func TestDetectorTruePositiveRate(t *testing.T) {
	// Replays with the paper's measured extra FB (−543..−743 Hz) must
	// always be flagged despite estimation noise.
	d := NewReplayDetector()
	d.Enroll("n", -22000, 10)
	rng := rand.New(rand.NewSource(112))
	const frames = 2000
	for i := 0; i < frames; i++ {
		extra := -543 - rng.Float64()*200
		fb := -22000 + extra + rng.NormFloat64()*50
		if v := d.Check("n", fb); v != VerdictReplay {
			t.Fatalf("frame %d (fb %f): verdict = %v", i, fb, v)
		}
	}
}
