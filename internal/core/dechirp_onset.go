package core

import (
	"math"

	"softlora/internal/dsp"
	"softlora/internal/lora"
)

// DefaultCoarseDecimation is the decimation factor of the hierarchical
// detector's coarse scan when the sample rate leaves enough band for it
// (see DechirpOnsetDetector.CoarseDecimation).
const DefaultCoarseDecimation = 4

// DechirpOnsetDetector is an extension beyond the paper (DESIGN.md §6) that
// restores the paper's Fig. 10 low-SNR behaviour: it exploits LoRa's
// despreading gain instead of raw-trace statistics.
//
// The paper's envelope/AIC detectors operate on the time-domain I/Q trace,
// where at −20 dB the chirp adds only 1 % to the per-sample variance — no
// changepoint statistic can localize that precisely. Dechirping a
// chirp-long window, however, concentrates the whole chirp's energy into
// one FFT bin (a 2^SF processing gain), and the peak magnitude as a
// function of the window start is a triangle with its apex exactly at each
// chirp boundary. The detector finds the first boundary of the preamble by
// fitting the triangle apex, achieving tens of µs at −20 dB where plain
// AIC drifts by milliseconds.
//
// # Coarse→fine hierarchy
//
// The default search is hierarchical, replacing the brute-force
// full-FFT-per-window scan (kept behind Exhaustive) with three tiers whose
// per-capture complexity budget is O(N) + O(windows·(n/D)·log(n/D)) +
// O(bins·n) instead of O(windows·n·log n):
//
//  1. Coarse scan: the quarter-chirp-stride fill-metric scan runs on a
//     boxcar-decimated dechirp (dsp.DechirpScratch.DechirpDecimated, FFT
//     size n/D for decimation D, default 4). The boxcar keeps every sample
//     in the coherent sum, so the full 2^SF despreading gain is preserved;
//     its sinc droop is divided out per bin, and the alias-pair metric is
//     evaluated on the decimated grid — an accuracy-preserving replacement
//     costing ~1/4 of the full-rate windows.
//  2. Apex refinement: one anchor FFT at the refinement center identifies
//     the dechirped tone; every subsequent fine step is evaluated by a
//     sliding DFT (dsp.SlidingDFT) tracking a handful of candidate bins —
//     the anchor tone, its ±W chirp-boundary neighbours, and a ±1-bin comb
//     around each — over the once-per-capture globally dechirped trace.
//     Sliding costs O(1) per bin per sample shift, so the ~2·(n/FitStep)
//     fine steps that previously each paid a full n-point FFT now cost one
//     FFT plus O(bins·n) total.
//  3. Full transforms that remain (anchor FFTs, the decimated coarse FFTs)
//     run radix-4 kernels whenever their size's log2 is even — true for
//     every hot size here — via dsp.Plan's kernel selection.
//
// A detector instance holds reusable scratch (dechirp templates, FFT plans
// and buffers, the global dechirped trace, sliding-DFT state) and is
// therefore NOT safe for concurrent use: give each worker goroutine its
// own instance.
type DechirpOnsetDetector struct {
	Params lora.Params
	// AnchorFraction selects the earliest coarse window whose dechirp peak
	// reaches this fraction of the plateau (75th-percentile window peak)
	// as the preamble anchor (default 0.8). Like the paper's detectors,
	// this one is threshold-free against noise: presence detection is the
	// commodity chip's job, and on a noise-only capture the result is
	// arbitrary.
	AnchorFraction float64
	// ApexFitHalfWidth is the number of metric samples on each side of the
	// coarse apex used for the two-line fit, in units of FitStep samples
	// (default 48).
	ApexFitHalfWidth int
	// FitStep is the metric sampling stride in samples for the apex fit
	// (default n/256).
	FitStep int
	// CoarseDecimation is the boxcar decimation factor of the hierarchical
	// coarse scan (default DefaultCoarseDecimation; 1 disables
	// decimation). It is automatically halved until the decimated band
	// rate/D still holds the dechirped alias pair (≥ ~2.8·Bandwidth), so
	// low-oversampling captures degrade gracefully to the full-rate scan.
	CoarseDecimation int
	// RefineCombBins is the half-width, in anchor-FFT bins, of the
	// frequency comb tracked around each candidate tone during sliding
	// refinement (default 1, i.e. 3 bins per tone, 9 bins total). Wider
	// combs buy scalloping margin at O(bins) extra cost per fine step.
	RefineCombBins int
	// Exhaustive disables the incremental machinery and evaluates the same
	// detector brute-force: the coarse fill metric pays a full-rate
	// dechirp FFT at every window (no decimation) and the apex refinement
	// re-evaluates every candidate frequency from scratch per fine step
	// (per-window Goertzel, no sliding reuse). It computes the same
	// quantities as the hierarchical path without any of its
	// approximations, which makes it the reference implementation the
	// hierarchy is parity-tested against; production paths should leave
	// it false.
	Exhaustive bool

	// Scratch: sized once per (chirp length, sample rate) and reused across
	// every sliding window of every capture, keeping the window scan
	// allocation-free in steady state.
	scratch    dechirpScratch
	magSq      []float64    // per-bin squared magnitudes (fillMag)
	magSqDec   []float64    // per-bin squared magnitudes, decimated scan
	droopInv   []float64    // boxcar droop compensation per decimated bin
	droopDec   int          // decimation the droop table was built for
	droopLen   int          // decimated FFT size of the droop table
	coarseMags []float64    // coarse-scan metric values
	coarseAts  []int        // coarse-scan window starts
	coarseSlab []complex128 // packed decimated windows for TransformMany
	fitXs      []float64    // apex-fit abscissae
	fitYs      []float64    // apex-fit metric values

	// Global-dechirp scratch for the sliding refinement: the capture
	// multiplied by the conjugate infinite chirp anchored at sample 0. In
	// this trace every preamble chirp is a steady tone, the tones of
	// adjacent chirps sit exactly W apart, and a window's dechirped
	// spectrum is the trace's windowed spectrum up to a frequency shift of
	// μ·start (μ = 2πk/rate², k the chirp slope) — which is what lets a
	// fixed-frequency sliding DFT replace per-window FFTs.
	zPar     lora.Params
	zRate    float64
	zConj    []complex128 // conjugate infinite-chirp template, grow-only
	z        []complex128 // globally dechirped capture
	sliding  dsp.SlidingDFT
	thetaBuf []float64
}

var _ OnsetDetector = (*DechirpOnsetDetector)(nil)

// Name implements OnsetDetector.
func (d *DechirpOnsetDetector) Name() string { return "dechirp-onset" }

// ensureScratch sizes the dechirp template, FFT plan and buffers for
// chirp-long windows of n samples at the given rate.
func (d *DechirpOnsetDetector) ensureScratch(n int, sampleRate float64) {
	if !d.scratch.Stale(d.Params, n, sampleRate) {
		return
	}
	d.scratch.Init(d.Params, n, sampleRate, 1, chirpBasePhase(d.Params, sampleRate, n))
	nfft := d.scratch.Size()
	if cap(d.magSq) < nfft {
		d.magSq = make([]float64, nfft)
	}
	d.magSq = d.magSq[:nfft]
}

// coarseDecimation resolves the effective coarse-scan decimation for the
// capture geometry: the configured factor, halved while the decimated band
// cannot hold the dechirped alias pair (tones span ±(W + bias), so the
// decimated rate must stay above ~2.8·W) or while the decimated window
// would drop below a useful FFT length.
func (d *DechirpOnsetDetector) coarseDecimation(n int, sampleRate float64) int {
	dec := d.CoarseDecimation
	if dec == 0 {
		dec = DefaultCoarseDecimation
	}
	if dec < 1 {
		dec = 1
	}
	for dec > 1 && (sampleRate < 2.8*d.Params.Bandwidth*float64(dec) || n/dec < 64) {
		dec /= 2
	}
	return dec
}

// ensureDroop builds the boxcar droop-compensation table for the decimated
// coarse spectrum.
func (d *DechirpOnsetDetector) ensureDroop(n, dec int) {
	m := dsp.NextPow2(n / dec)
	if d.droopDec == dec && d.droopLen == m {
		return
	}
	if cap(d.droopInv) < m {
		d.droopInv = make([]float64, m)
	}
	d.droopInv = d.droopInv[:m]
	for i := range d.droopInv {
		f := float64(i) / float64(m)
		if f >= 0.5 {
			f -= 1
		}
		d.droopInv[i] = 1 / dsp.BoxcarDroopSq(dec, f/float64(dec))
	}
	if cap(d.magSqDec) < m {
		d.magSqDec = make([]float64, m)
	}
	d.magSqDec = d.magSqDec[:m]
	d.droopDec, d.droopLen = dec, m
}

// ensureGlobalDechirp extends the conjugate infinite-chirp template to the
// capture length (grow-only, recomputed only when the chirp geometry
// changes) and dechirps the whole capture into d.z.
func (d *DechirpOnsetDetector) ensureGlobalDechirp(iq []complex128, sampleRate float64) {
	if d.zPar != d.Params || d.zRate != sampleRate {
		d.zConj = d.zConj[:0]
		d.zPar, d.zRate = d.Params, sampleRate
	}
	n := len(iq)
	if len(d.zConj) < n {
		old := len(d.zConj)
		if cap(d.zConj) < n {
			grown := make([]complex128, n)
			copy(grown, d.zConj[:old])
			d.zConj = grown
		} else {
			d.zConj = d.zConj[:n]
		}
		w := d.Params.Bandwidth
		k := w * w / float64(d.Params.ChipsPerSymbol())
		dt := 1 / sampleRate
		for p := old; p < n; p++ {
			t := float64(p) * dt
			ph := math.Pi*k*t*t - math.Pi*w*t
			s, c := math.Sincos(-ph)
			d.zConj[p] = complex(c, s)
		}
	}
	if cap(d.z) < n {
		d.z = make([]complex128, n)
	}
	d.z = d.z[:n]
	for p, v := range iq {
		d.z[p] = v * d.zConj[p]
	}
}

// dechirpWindow multiplies the chirp-long window at start with the conjugate
// base chirp into the FFT buffer and transforms it in place, returning the
// spectrum (nil when the window does not fit the capture).
func (d *DechirpOnsetDetector) dechirpWindow(iq []complex128, start, n int) []complex128 {
	if start < 0 || start+n > len(iq) {
		return nil
	}
	return d.scratch.Dechirp(iq[start : start+n])
}

// aliasPairMaxSq scans the squared-magnitude spectrum for the strongest
// alias pair — two bins exactly wBins apart (the split-tone signature of a
// misaligned but filled dechirp window) — and returns the pair's summed
// power.
func aliasPairMaxSq(magSq []float64, wBins int) float64 {
	nb := len(magSq)
	best := 0.0
	for b := 0; b < nb; b++ {
		if s := magSq[b] + magSq[(b+nb-wBins)%nb]; s > best {
			best = s
		}
	}
	return best
}

// fillMag returns an alignment-insensitive fill metric for the window: a
// window misaligned by m within the preamble dechirps into two tones
// exactly W apart (sizes m and n−m), so the root-sum-square over
// alias-pair bins stays within [0.71, 1]×(full) regardless of alignment,
// while a partially filled window scales with its fill. This is the anchor
// metric; the candidate-tone peak of refineApex is the apex-refinement
// metric.
//
//softlora:allocfree
func (d *DechirpOnsetDetector) fillMag(iq []complex128, start, n int, sampleRate float64) float64 {
	spec := d.dechirpWindow(iq, start, n)
	if spec == nil {
		return 0
	}
	nb := len(spec)
	wBins := int(math.Round(d.Params.Bandwidth / sampleRate * float64(nb)))
	if wBins <= 0 || wBins >= nb {
		wBins = nb / 2
	}
	magSq := d.magSq
	for i, v := range spec {
		re, im := real(v), imag(v)
		magSq[i] = re*re + im*im
	}
	return math.Sqrt(aliasPairMaxSq(magSq, wBins))
}

// fillMagDec is fillMag on the boxcar-decimated dechirp path: same alias-
// pair metric, FFT size n/dec, with the boxcar's sinc droop divided out so
// bin powers match the full-rate transform's across the band. The decimated
// grid keeps the alias-pair geometry because bin widths in Hz are
// preserved: W/(rate/dec)·(nfft/dec) = W/rate·nfft.
//
//softlora:allocfree
func (d *DechirpOnsetDetector) fillMagDec(iq []complex128, start, n int, sampleRate float64, dec int) float64 {
	if start < 0 || start+n > len(iq) {
		return 0
	}
	spec := d.scratch.DechirpDecimated(iq[start:start+n], dec)
	return d.fillMagDecSpec(spec, sampleRate, dec)
}

// fillMagDecSpec is the spectrum half of fillMagDec, split out so the
// batched coarse scan (one TransformMany over every window's decimated
// dechirp) can score pre-transformed blocks with the identical metric.
func (d *DechirpOnsetDetector) fillMagDecSpec(spec []complex128, sampleRate float64, dec int) float64 {
	nb := len(spec)
	wBins := int(math.Round(d.Params.Bandwidth / sampleRate * float64(dec) * float64(nb)))
	if wBins <= 0 || wBins >= nb {
		wBins = nb / 2
	}
	magSq := d.magSqDec[:nb]
	for i, v := range spec {
		re, im := real(v), imag(v)
		magSq[i] = (re*re + im*im) * d.droopInv[i]
	}
	return math.Sqrt(aliasPairMaxSq(magSq, wBins))
}

// DetectOnset implements OnsetDetector.
func (d *DechirpOnsetDetector) DetectOnset(iq []complex128, sampleRate float64) (Onset, error) {
	if err := d.Params.Validate(); err != nil {
		return Onset{}, ErrOnsetNotFound
	}
	n := int(d.Params.SamplesPerChirp(sampleRate))
	if n < 16 || len(iq) < n+8 {
		return Onset{}, ErrOnsetNotFound
	}
	d.ensureScratch(n, sampleRate)
	frac := d.AnchorFraction
	if frac <= 0 || frac >= 1 {
		frac = 0.8
	}
	dec := 1
	if !d.Exhaustive {
		dec = d.coarseDecimation(n, sampleRate)
		if dec > 1 {
			d.ensureDroop(n, dec)
		}
	}
	// Both refinement variants evaluate candidate tones on the globally
	// dechirped trace; the exhaustive one just recomputes each window from
	// scratch instead of sliding.
	d.ensureGlobalDechirp(iq, sampleRate)

	// 1. Coarse scan (quarter-chirp stride): record every window's fill
	// metric (alignment-insensitive). The decimated path batches every
	// window's dechirped-and-decimated block into one slab and runs a
	// single TransformMany through the shared plan — per-block results are
	// bit-identical to the per-window DechirpDecimated transforms, the
	// plan's permutation and twiddle tables just stay hot across windows.
	mags := d.coarseMags[:0]
	ats := d.coarseAts[:0]
	bestMag := 0.0
	for at := 0; at+n <= len(iq); at += n / 4 {
		ats = append(ats, at)
	}
	if dec > 1 {
		m := n / dec
		plan := dsp.PlanFor(m)
		nfft := plan.Size()
		need := len(ats) * nfft
		if cap(d.coarseSlab) < need {
			d.coarseSlab = make([]complex128, need)
		}
		slab := d.coarseSlab[:need]
		for w, at := range ats {
			blk := slab[w*nfft : (w+1)*nfft]
			d.scratch.DechirpDecimateInto(blk[:m], iq[at:at+n], dec)
			for i := m; i < nfft; i++ {
				blk[i] = 0
			}
		}
		plan.TransformMany(slab)
		for w := range ats {
			mg := d.fillMagDecSpec(slab[w*nfft:(w+1)*nfft], sampleRate, dec)
			mags = append(mags, mg)
			if mg > bestMag {
				bestMag = mg
			}
		}
	} else {
		for _, at := range ats {
			mg := d.fillMag(iq, at, n, sampleRate)
			mags = append(mags, mg)
			if mg > bestMag {
				bestMag = mg
			}
		}
	}
	d.coarseMags, d.coarseAts = mags, ats
	if len(mags) < 3 || bestMag == 0 {
		return Onset{}, ErrOnsetNotFound
	}

	// 2. The preamble is the frame's beginning, so the EARLIEST full
	// window sits in its first chirp: the fill metric ramps linearly over
	// the chirp preceding the onset and plateaus at ≥0.71× max inside the
	// preamble, so the first window reaching AnchorFraction of the max
	// starts within ~n/4 of the true onset (noise windows stay below
	// ~0.4× even at −20 dB). Anchoring there (rather than at the global
	// max) avoids the sync/SFD region, whose chirp grid is offset by the
	// SFD's 2.25-chirp length, and keeps exactly one true boundary inside
	// the ±n/2 apex-refinement range.
	// Each candidate anchor is refined and then validated against the
	// preamble's tone-train signature before being trusted: at −20 dB a
	// noise window's fill can cross the anchor fraction, and an anchor in
	// the lead-in noise is unrecoverable for the backward-only walk. A
	// true boundary is followed by further preamble chirps whose global-
	// dechirp tones are the apex tone shifted by exactly −j·W; a noise
	// anchor's tone set is unrelated to the true preamble's, so its slots
	// read noise and the candidate is rejected. The earliest refined
	// candidate is kept as the fallback so noise-only captures still
	// return an arbitrary pick (the threshold-free contract).
	apex, apexPeak := -1, 0.0
	fallback := -1
	for i, m := range mags {
		if m < frac*bestMag {
			continue
		}
		if fallback < 0 {
			fallback = ats[i]
		}
		a, pk := d.refineApex(iq, ats[i]-n/8, n, sampleRate)
		if pk > 0 && d.preambleConsistent(a, n, bestMag, sampleRate) {
			apex, apexPeak = a, pk
			break
		}
	}
	if apex < 0 {
		if fallback < 0 {
			return Onset{}, ErrOnsetNotFound
		}
		// No candidate validated (noise-only capture, interference): fall
		// back to the earliest candidate — re-refined, not replayed from
		// the loop, so the tone set the walk-back probes (d.thetaBuf,
		// overwritten by every refineApex) belongs to the apex it starts
		// from rather than to the last candidate tried.
		apex, apexPeak = d.refineApex(iq, fallback-n/8, n, sampleRate)
	}
	// The true onset lies within ~[anchor − n/4, anchor]; the refinement
	// centered there found the boundary. Noise dips can still delay the
	// anchor by whole chirps, so walk boundaries back while the preceding
	// chirp carries a coherent tone — at the true onset the preceding
	// window holds only noise.
	//
	// The walk-back decides on the candidate-tone metric of the single
	// aligned window [apex−n, apex) — which ends exactly at the current
	// boundary and so contains no chirp energy when the preceding slot is
	// noise. The threshold takes the coarse plateau bestMag (an absolute
	// scale in the same amplitude units as the tone metric) as its floor:
	// a relative-only cut against the apex peak collapses when the apex
	// itself sits in noise, while against bestMag the −20 dB gap stays
	// ~3σ (aligned chirp ≈ 0.85×best; a few-bin noise maximum ≈ 0.25×).
	// The tone values are evaluation-strategy-independent, so the
	// exhaustive and hierarchical variants take near-identical walk-back
	// decisions.
	for k := 0; apexPeak > 0 && k < d.Params.PreambleChirps; k++ {
		prev := apex - n
		thr := 0.55 * apexPeak
		if abs := 0.5 * bestMag; abs > thr {
			thr = abs
		}
		if d.toneMetric(prev, n, 0) < thr {
			break
		}
		apex, apexPeak = d.refineApex(iq, prev, n, sampleRate)
	}
	if apex < 0 {
		apex = 0
	}
	return Onset{Sample: apex, Time: float64(apex) / sampleRate}, nil
}

// refineApex locates the triangle apex nearest to the guess by sampling the
// candidate-tone magnitude metric on a fine grid and fitting straight lines
// to the rising and falling flanks; the apex is their intersection. Fitting
// both flanks averages the noise down by ~sqrt(points), which is where the
// low-SNR accuracy comes from.
//
// One anchor FFT at the guess identifies the dechirped tone; the metric per
// window is then the strongest response over a fixed candidate set — the
// anchor tone, its ±W neighbours (the tones of the adjacent preamble
// chirps, which carry the triangle's flanks), and a ±RefineCombBins comb
// around each for scalloping margin. Restricting the peak search to the
// chirp's known tone set (instead of the full spectrum) keeps the flanks
// clean at low SNR, where the global noise maximum would otherwise flatten
// the triangle below ~0.6×peak.
//
// The candidate frequencies are fixed in the globally dechirped trace, so
// the hierarchical path evaluates them with a sliding DFT at O(bins) per
// sample of slide; the exhaustive reference recomputes every window from
// scratch with per-window Goertzel sums — the same numbers, brute force.
func (d *DechirpOnsetDetector) refineApex(iq []complex128, guess, n int, sampleRate float64) (apex int, peak float64) {
	step, half := d.fitGeometry(n)
	lo := guess - n/2
	hi := guess + n/2
	last := len(iq) - n
	// First valid position on the grid lo + m·step, m ≥ 0. Windows that do
	// not fit the capture are excluded — clamping them would flatten a
	// flank and bias the apex fit.
	at := lo
	if at < 0 {
		at += ((-at + step - 1) / step) * step
	}
	if at > hi || at > last {
		return guess, 0
	}
	// Anchor transform: locate the dominant tone near the guess.
	g := guess
	if g < 0 {
		g = 0
	}
	if g > last {
		g = last
	}
	spec := d.scratch.Dechirp(iq[g : g+n])
	b0, pkSq := dsp.PeakBinSq(spec)
	if pkSq == 0 {
		return guess, 0
	}
	nfft := len(spec)
	w := d.Params.Bandwidth
	k := w * w / float64(d.Params.ChipsPerSymbol())
	// A window-anchored spectrum is the global trace's windowed spectrum
	// shifted by μ·start, so the anchor peak at bin b0 maps to the global
	// frequency 2π·b0/nfft − μ·g.
	mu := 2 * math.Pi * k / (sampleRate * sampleRate)
	theta0 := 2*math.Pi*float64(b0)/float64(nfft) - mu*float64(g)
	dTheta := 2 * math.Pi * w / sampleRate
	dOmega := 2 * math.Pi / float64(nfft)
	comb := d.RefineCombBins
	if comb <= 0 {
		comb = 1
	}
	thetas := d.thetaBuf[:0]
	for tone := -1; tone <= 1; tone++ {
		base := theta0 + float64(tone)*dTheta
		for o := -comb; o <= comb; o++ {
			thetas = append(thetas, base+float64(o)*dOmega)
		}
	}
	d.thetaBuf = thetas

	if !d.Exhaustive {
		d.sliding.Reset(d.z, at, n, thetas)
	}
	xs := d.fitXs[:0]
	ys := d.fitYs[:0]
	bestI, bestV := -1, 0.0
	for {
		var sq float64
		if d.Exhaustive {
			win := d.z[at : at+n]
			for _, th := range thetas {
				v := dsp.GoertzelDFT(win, th)
				if m := real(v)*real(v) + imag(v)*imag(v); m > sq {
					sq = m
				}
			}
		} else {
			sq = d.sliding.MaxMagSq()
		}
		v := math.Sqrt(sq)
		xs = append(xs, float64(at))
		ys = append(ys, v)
		if v > bestV {
			bestV = v
			bestI = len(ys) - 1
		}
		next := at + step
		if next > hi || next > last {
			break
		}
		if !d.Exhaustive {
			d.sliding.Advance(d.z, step)
		}
		at = next
	}
	d.fitXs, d.fitYs = xs, ys
	if bestI < 0 {
		return guess, 0
	}
	return fitApex(xs, ys, bestI, half), bestV
}

// toneMetric evaluates the candidate-tone magnitude of the single window
// [at, at+n) on the globally dechirped trace, using the frequency set of
// the most recent refineApex call (the adjacent-chirp tones sit in it by
// construction) shifted by shift radians/sample. Both detector variants
// evaluate it with per-window Goertzel sums — a handful of O(n) passes —
// so anchor-validation and walk-back decisions are identical across
// evaluation strategies. Returns 0 when the window does not fit the
// capture.
func (d *DechirpOnsetDetector) toneMetric(at, n int, shift float64) float64 {
	if at < 0 || at+n > len(d.z) || len(d.thetaBuf) == 0 {
		return 0
	}
	win := d.z[at : at+n]
	best := 0.0
	for _, th := range d.thetaBuf {
		v := dsp.GoertzelDFT(win, th+shift)
		if m := real(v)*real(v) + imag(v)*imag(v); m > best {
			best = m
		}
	}
	return math.Sqrt(best)
}

// preambleConsistent validates a refined onset candidate against the
// preamble's structure: chirp j after the boundary dechirps globally to
// the apex window's tone set shifted by −j·2πW/rate, so a true boundary's
// following slots read near the coarse plateau bestMag while a noise
// anchor's slots — whose tone set is unrelated to the real preamble —
// read the noise floor. The comparison must be against the absolute
// plateau scale, not the candidate's own (possibly noise-depressed) apex
// peak: relative to the latter, a noise anchor's slots look half-strong. A
// majority of the available next three slots must reach 0.5·bestMag;
// candidates with no following slot in the capture pass vacuously.
func (d *DechirpOnsetDetector) preambleConsistent(apex, n int, bestMag, sampleRate float64) bool {
	dTheta := 2 * math.Pi * d.Params.Bandwidth / sampleRate
	avail, pass := 0, 0
	for j := 1; j <= 3; j++ {
		at := apex + j*n
		if at < 0 || at+n > len(d.z) {
			break
		}
		avail++
		if d.toneMetric(at, n, -float64(j)*dTheta) >= 0.5*bestMag {
			pass++
		}
	}
	return avail == 0 || 2*pass > avail
}

// fitGeometry resolves the fine-grid stride and flank half-width defaults.
func (d *DechirpOnsetDetector) fitGeometry(n int) (step, half int) {
	step = d.FitStep
	if step <= 0 {
		step = n / 256
		if step < 1 {
			step = 1
		}
	}
	half = d.ApexFitHalfWidth
	if half <= 0 {
		half = 48
	}
	return step, half
}

// fitApex intersects straight-line fits of the rising and falling flanks
// around the sampled maximum at index bestI; shared by both refinement
// variants so they differ only in how the metric samples are produced.
func fitApex(xs, ys []float64, bestI, half int) int {
	// Degenerate bracketing (apex at the sampled range's edge): fall back
	// to the raw maximum.
	if bestI < 8 || bestI > len(ys)-9 {
		return int(xs[bestI])
	}
	// Two-line fit on the flanks: use up to half points each side,
	// excluding the rounded tip (±2 steps) where noise dominates shape.
	leftLo := bestI - half
	if leftLo < 0 {
		leftLo = 0
	}
	rightHi := bestI + half
	if rightHi > len(ys)-1 {
		rightHi = len(ys) - 1
	}
	left := dsp.LinearRegression(xs[leftLo:maxInt(bestI-1, leftLo+2)], ys[leftLo:maxInt(bestI-1, leftLo+2)])
	right := dsp.LinearRegression(xs[minInt(bestI+2, rightHi-1):rightHi+1], ys[minInt(bestI+2, rightHi-1):rightHi+1])
	denom := left.Slope - right.Slope
	if denom <= 0 {
		return int(xs[bestI])
	}
	apex := (right.Intercept - left.Intercept) / denom
	// Guard against wild extrapolation.
	if apex < xs[0] || apex > xs[len(xs)-1] {
		return int(xs[bestI])
	}
	return int(math.Round(apex))
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
