package core

import (
	"math"

	"softlora/internal/dsp"
	"softlora/internal/lora"
)

// DechirpOnsetDetector is an extension beyond the paper (DESIGN.md §6) that
// restores the paper's Fig. 10 low-SNR behaviour: it exploits LoRa's
// despreading gain instead of raw-trace statistics.
//
// The paper's envelope/AIC detectors operate on the time-domain I/Q trace,
// where at −20 dB the chirp adds only 1 % to the per-sample variance — no
// changepoint statistic can localize that precisely. Dechirping a
// chirp-long window, however, concentrates the whole chirp's energy into
// one FFT bin (a 2^SF processing gain), and the peak magnitude as a
// function of the window start is a triangle with its apex exactly at each
// chirp boundary. The detector finds the first boundary of the preamble by
// fitting the triangle apex, achieving tens of µs at −20 dB where plain
// AIC drifts by milliseconds.
//
// A detector instance holds reusable scratch (dechirp template, FFT plan
// and buffers) and is therefore NOT safe for concurrent use: give each
// worker goroutine its own instance.
type DechirpOnsetDetector struct {
	Params lora.Params
	// AnchorFraction selects the earliest coarse window whose dechirp peak
	// reaches this fraction of the plateau (75th-percentile window peak)
	// as the preamble anchor (default 0.8). Like the paper's detectors,
	// this one is threshold-free against noise: presence detection is the
	// commodity chip's job, and on a noise-only capture the result is
	// arbitrary.
	AnchorFraction float64
	// ApexFitHalfWidth is the number of metric samples on each side of the
	// coarse apex used for the two-line fit, in units of FitStep samples
	// (default 48).
	ApexFitHalfWidth int
	// FitStep is the metric sampling stride in samples for the apex fit
	// (default n/256).
	FitStep int

	// Scratch: sized once per (chirp length, sample rate) and reused across
	// every sliding window of every capture, keeping the window scan
	// allocation-free in steady state.
	scratch    dechirpScratch
	magSq      []float64 // per-bin squared magnitudes (fillMag)
	coarseMags []float64 // coarse-scan metric values
	coarseAts  []int     // coarse-scan window starts
	fitXs      []float64 // apex-fit abscissae
	fitYs      []float64 // apex-fit metric values
}

var _ OnsetDetector = (*DechirpOnsetDetector)(nil)

// Name implements OnsetDetector.
func (d *DechirpOnsetDetector) Name() string { return "dechirp-onset" }

// ensureScratch sizes the dechirp template, FFT plan and buffers for
// chirp-long windows of n samples at the given rate.
func (d *DechirpOnsetDetector) ensureScratch(n int, sampleRate float64) {
	if !d.scratch.Stale(d.Params, n, sampleRate) {
		return
	}
	d.scratch.Init(d.Params, n, sampleRate, 1, chirpBasePhase(d.Params, sampleRate, n))
	nfft := d.scratch.Size()
	if cap(d.magSq) < nfft {
		d.magSq = make([]float64, nfft)
	}
	d.magSq = d.magSq[:nfft]
}

// dechirpWindow multiplies the chirp-long window at start with the conjugate
// base chirp into the FFT buffer and transforms it in place, returning the
// spectrum (nil when the window does not fit the capture).
func (d *DechirpOnsetDetector) dechirpWindow(iq []complex128, start, n int) []complex128 {
	if start < 0 || start+n > len(iq) {
		return nil
	}
	return d.scratch.Dechirp(iq[start : start+n])
}

// peakMag returns the dechirped FFT peak magnitude of the chirp-long window
// at start (0 when out of range).
func (d *DechirpOnsetDetector) peakMag(iq []complex128, start, n int) float64 {
	spec := d.dechirpWindow(iq, start, n)
	if spec == nil {
		return 0
	}
	_, sq := dsp.PeakBinSq(spec)
	return math.Sqrt(sq)
}

// fillMag returns an alignment-insensitive fill metric for the window: a
// window misaligned by m within the preamble dechirps into two tones
// exactly W apart (sizes m and n−m), so the root-sum-square over
// alias-pair bins stays within [0.71, 1]×(full) regardless of alignment,
// while a partially filled window scales with its fill. This is the anchor
// metric; the single-tone peakMag is the apex-refinement metric.
func (d *DechirpOnsetDetector) fillMag(iq []complex128, start, n int, sampleRate float64) float64 {
	spec := d.dechirpWindow(iq, start, n)
	if spec == nil {
		return 0
	}
	nb := len(spec)
	wBins := int(math.Round(d.Params.Bandwidth / sampleRate * float64(nb)))
	if wBins <= 0 || wBins >= nb {
		wBins = nb / 2
	}
	magSq := d.magSq
	for i, v := range spec {
		re, im := real(v), imag(v)
		magSq[i] = re*re + im*im
	}
	best := 0.0
	for b := 0; b < nb; b++ {
		// Squared root-sum-square over the alias pair; one sqrt at the end.
		if s := magSq[b] + magSq[(b+nb-wBins)%nb]; s > best {
			best = s
		}
	}
	return math.Sqrt(best)
}

// DetectOnset implements OnsetDetector.
func (d *DechirpOnsetDetector) DetectOnset(iq []complex128, sampleRate float64) (Onset, error) {
	if err := d.Params.Validate(); err != nil {
		return Onset{}, ErrOnsetNotFound
	}
	n := int(d.Params.SamplesPerChirp(sampleRate))
	if n < 16 || len(iq) < n+8 {
		return Onset{}, ErrOnsetNotFound
	}
	d.ensureScratch(n, sampleRate)
	frac := d.AnchorFraction
	if frac <= 0 || frac >= 1 {
		frac = 0.8
	}

	// 1. Coarse scan (quarter-chirp stride): record every window's fill
	// metric (alignment-insensitive).
	mags := d.coarseMags[:0]
	ats := d.coarseAts[:0]
	bestMag := 0.0
	for at := 0; at+n <= len(iq); at += n / 4 {
		m := d.fillMag(iq, at, n, sampleRate)
		mags = append(mags, m)
		ats = append(ats, at)
		if m > bestMag {
			bestMag = m
		}
	}
	d.coarseMags, d.coarseAts = mags, ats
	if len(mags) < 3 || bestMag == 0 {
		return Onset{}, ErrOnsetNotFound
	}

	// 2. The preamble is the frame's beginning, so the EARLIEST full
	// window sits in its first chirp: the fill metric ramps linearly over
	// the chirp preceding the onset and plateaus at ≥0.71× max inside the
	// preamble, so the first window reaching AnchorFraction of the max
	// starts within ~n/4 of the true onset (noise windows stay below
	// ~0.4× even at −20 dB). Anchoring there (rather than at the global
	// max) avoids the sync/SFD region, whose chirp grid is offset by the
	// SFD's 2.25-chirp length, and keeps exactly one true boundary inside
	// the ±n/2 apex-refinement range.
	anchor := -1
	for i, m := range mags {
		if m >= frac*bestMag {
			anchor = ats[i]
			break
		}
	}
	if anchor < 0 {
		return Onset{}, ErrOnsetNotFound
	}
	// The true onset lies within ~[anchor − n/4, anchor]; center the apex
	// search there. Noise dips can delay the anchor by whole chirps, so
	// walk boundaries back while the preceding chirp-long window is still
	// filled — at the true onset the preceding window holds only noise.
	apex := d.refineApex(iq, anchor-n/8, n)
	for k := 0; k < d.Params.PreambleChirps; k++ {
		prev := apex - n
		if d.fillMag(iq, prev, n, sampleRate) < 0.55*bestMag {
			break
		}
		apex = d.refineApex(iq, prev, n)
	}
	if apex < 0 {
		apex = 0
	}
	return Onset{Sample: apex, Time: float64(apex) / sampleRate}, nil
}

// refineApex locates the triangle apex nearest to the guess by sampling the
// peak-magnitude metric on a fine grid and fitting straight lines to the
// rising and falling flanks; the apex is their intersection. Fitting both
// flanks averages the noise down by ~sqrt(points), which is where the
// low-SNR accuracy comes from.
func (d *DechirpOnsetDetector) refineApex(iq []complex128, guess, n int) int {
	step := d.FitStep
	if step <= 0 {
		step = n / 256
		if step < 1 {
			step = 1
		}
	}
	half := d.ApexFitHalfWidth
	if half <= 0 {
		half = 48
	}
	// Sample the metric around the guess and locate the max. Windows that
	// do not fit the capture are excluded — clamping them would flatten a
	// flank and bias the apex fit.
	lo := guess - n/2
	hi := guess + n/2
	xs := d.fitXs[:0]
	ys := d.fitYs[:0]
	bestI, bestV := -1, 0.0
	for at := lo; at <= hi; at += step {
		if at < 0 || at+n > len(iq) {
			continue
		}
		v := d.peakMag(iq, at, n)
		xs = append(xs, float64(at))
		ys = append(ys, v)
		if v > bestV {
			bestV = v
			bestI = len(ys) - 1
		}
	}
	d.fitXs, d.fitYs = xs, ys
	if bestI < 0 {
		return guess
	}
	// Degenerate bracketing (apex at the sampled range's edge): fall back
	// to the raw maximum.
	if bestI < 8 || bestI > len(ys)-9 {
		return int(xs[bestI])
	}
	// Two-line fit on the flanks: use up to half points each side,
	// excluding the rounded tip (±2 steps) where noise dominates shape.
	leftLo := bestI - half
	if leftLo < 0 {
		leftLo = 0
	}
	rightHi := bestI + half
	if rightHi > len(ys)-1 {
		rightHi = len(ys) - 1
	}
	left := dsp.LinearRegression(xs[leftLo:maxInt(bestI-1, leftLo+2)], ys[leftLo:maxInt(bestI-1, leftLo+2)])
	right := dsp.LinearRegression(xs[minInt(bestI+2, rightHi-1):rightHi+1], ys[minInt(bestI+2, rightHi-1):rightHi+1])
	denom := left.Slope - right.Slope
	if denom <= 0 {
		return int(xs[bestI])
	}
	apex := (right.Intercept - left.Intercept) / denom
	// Guard against wild extrapolation.
	if apex < xs[0] || apex > xs[len(xs)-1] {
		return int(xs[bestI])
	}
	return int(math.Round(apex))
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
