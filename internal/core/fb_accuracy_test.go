package core

import (
	"math"
	"math/rand"
	"testing"

	"softlora/internal/dsp"
	"softlora/internal/lora"
)

// FB accuracy golden harness: the validation gate for the decimated+zoom
// dechirp-FFT fast path (the same role the hierarchical-onset parity suite
// played for PR 2's onset search). It sweeps SF 7–12 × {0, −10, −20} dB ×
// δ spanning ±BW/2 and asserts, cell by cell, that the fast path's error
// stays within the legacy padded-FFT reference's error envelope. FB is the
// paper's core fingerprint metric, so the fast path is only acceptable if
// it is indistinguishable from the estimator it replaces.

// fbCellError runs one estimator over `trials` noise draws of one
// (SF, SNR, δ) cell and returns the mean absolute error in Hz. Errors are
// measured on the alias circle of the estimator's folded output band, so a
// δ at the very edge of ±BW/2 is not penalized for a legitimate fold.
func fbCellError(t *testing.T, est FBEstimator, p lora.Params, seed int64, deltaHz, snrDB float64, trials int) float64 {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	var sum float64
	for trial := 0; trial < trials; trial++ {
		iq := chirpAtRate(rng, p, testRate, deltaHz, rng.Float64()*2*math.Pi, snrDB)
		got, err := est.EstimateFB(iq, testRate)
		if err != nil {
			t.Fatalf("%s SF%d δ=%.0f SNR=%.0f: %v", est.Name(), p.SF, deltaHz, snrDB, err)
		}
		sum += math.Abs(dsp.FoldFrequency(got.DeltaHz-deltaHz, testRate))
	}
	return sum / float64(trials)
}

// TestFBAccuracyFastWithinLegacyEnvelope is the gate itself: on every cell
// the zoom path's mean error must not exceed the legacy path's by more than
// a small slack (10 Hz absolute or 30 % relative, whichever is larger —
// the two paths project the same noise through different transforms, so
// per-cell errors decorrelate; the slack absorbs that variance plus the
// boxcar's ≤0.6 dB band-edge droop, not a worse estimator), and both must
// stay inside the paper's 120 Hz resolution bound down to −10 dB (150 Hz
// at −20 dB, matching TestDechirpFFTLowSNR's bound for this estimator).
func TestFBAccuracyFastWithinLegacyEnvelope(t *testing.T) {
	if testing.Short() {
		t.Skip("full SF × SNR × δ sweep is a few seconds; skipped with -short")
	}
	snrs := []float64{0, -10, -20}
	for sf := 7; sf <= 12; sf++ {
		// More draws where chirps are short and cells noisy; fewer where
		// the legacy path's half-megapoint FFTs dominate the runtime.
		trials := 16
		if sf >= 10 {
			trials = 4
		}
		p := lora.DefaultParams(sf)
		deltas := []float64{
			-0.49 * p.Bandwidth, // edge of the fingerprint range
			-0.25 * p.Bandwidth,
			-1234.5, // small off-grid bias (replay-shift scale)
			987.6,
			0.25 * p.Bandwidth,
			0.49 * p.Bandwidth,
		}
		fast := &DechirpFFTEstimator{Params: p}
		legacy := &DechirpFFTEstimator{Params: p, Exhaustive: true}
		for _, snr := range snrs {
			for di, delta := range deltas {
				seed := int64(1000*sf + 100*di + int(-snr) + 3)
				fastErr := fbCellError(t, fast, p, seed, delta, snr, trials)
				legacyErr := fbCellError(t, legacy, p, seed, delta, snr, trials)
				slack := 0.3 * legacyErr
				if slack < 10 {
					slack = 10
				}
				if fastErr > legacyErr+slack {
					t.Errorf("SF%d SNR=%+.0f δ=%+.0f: fast %.2f Hz vs legacy %.2f Hz (slack %.2f)",
						sf, snr, delta, fastErr, legacyErr, slack)
				}
				bound := 120.0
				if snr <= -20 {
					bound = 150
				}
				if fastErr > bound || legacyErr > bound {
					t.Errorf("SF%d SNR=%+.0f δ=%+.0f: error above the %.0f Hz bound (fast %.1f, legacy %.1f)",
						sf, snr, delta, bound, fastErr, legacyErr)
				}
			}
		}
	}
}

// TestFBAccuracyLinearRegressionReference keeps the paper's O(1) estimator
// in the same harness at the SNR where it is valid (§7.1.1 documents its
// low-SNR failure) so all three estimators share one accuracy fixture.
func TestFBAccuracyLinearRegressionReference(t *testing.T) {
	for sf := 7; sf <= 12; sf += 5 { // SF 7 and 12 bracket the range
		p := lora.DefaultParams(sf)
		lr := &LinearRegressionEstimator{Params: p}
		for di, delta := range []float64{-0.25 * p.Bandwidth, -1234.5, 987.6, 0.25 * p.Bandwidth} {
			if e := fbCellError(t, lr, p, int64(2000*sf+di), delta, 25, 2); e > 120 {
				t.Errorf("SF%d δ=%+.0f: linear-regression error %.1f Hz at 25 dB", sf, delta, e)
			}
		}
	}
}

// TestFBAccuracyZoomGridFiner pins the resolution claim behind the fast
// path: its zoom grid spacing must be at least 4× finer than the legacy
// padded FFT's bin width at every SF.
func TestFBAccuracyZoomGridFiner(t *testing.T) {
	rng := rand.New(rand.NewSource(777))
	for sf := 7; sf <= 12; sf++ {
		p := lora.DefaultParams(sf)
		n := int(p.SamplesPerChirp(testRate))
		est := &DechirpFFTEstimator{Params: p}
		iq := chirpAtRate(rng, p, testRate, -11e3, 1.0, 20)
		if _, err := est.EstimateFB(iq, testRate); err != nil {
			t.Fatal(err)
		}
		paddedBin := testRate / float64(dsp.NextPow2(4*n))
		if est.zoomStep > paddedBin/4+1e-9 {
			t.Errorf("SF%d: zoom step %.3f Hz coarser than padded-bin/4 = %.3f Hz",
				sf, est.zoomStep, paddedBin/4)
		}
	}
}
