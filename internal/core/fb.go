package core

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"softlora/internal/dsp"
	"softlora/internal/lora"
)

// FB estimation errors.
var (
	ErrChirpTooShort = errors.New("core: capture shorter than one chirp")
	ErrNoEstimate    = errors.New("core: estimator failed to converge")
)

// FBEstimate is the result of a frequency-bias estimation on one chirp.
type FBEstimate struct {
	// DeltaHz is the estimated δ = δTx − δRx in Hz.
	DeltaHz float64
	// Theta is the estimated phase θ = θTx − θRx (least-squares only).
	Theta float64
	// Quality is estimator-specific: R² for linear regression, normalized
	// residual cost for least squares (lower is better there).
	Quality float64
}

// FBEstimator estimates the frequency bias from one preamble up chirp. The
// chirp trace must start at the chirp onset (use an OnsetDetector first —
// "microseconds-accurate PHY signal timestamping is a prerequisite of the
// FB estimation", §5.3) and contain at least one chirp time of samples.
type FBEstimator interface {
	EstimateFB(chirp []complex128, sampleRate float64) (FBEstimate, error)
	Name() string
}

// chirpBasePhase returns the known quadratic CSS phase
// πW²/2^SF·t² − πW·t at each sample, which every estimator subtracts or
// uses as its template.
func chirpBasePhase(p lora.Params, sampleRate float64, n int) []float64 {
	w := p.Bandwidth
	k := w * w / float64(p.ChipsPerSymbol())
	dt := 1 / sampleRate
	out := make([]float64, n)
	for i := range out {
		t := float64(i) * dt
		out[i] = math.Pi*k*t*t - math.Pi*w*t
	}
	return out
}

// dechirpScratch is the chirp-geometry-keyed template/plan/buffer scratch
// shared by the dechirping detectors and estimators (see dsp.DechirpScratch
// for the contract). One instance per goroutine.
type dechirpScratch = dsp.DechirpScratch[lora.Params]

// LinearRegressionEstimator implements §7.1.1: the unwrapped instantaneous
// phase Θ(t) minus the known quadratic chirp phase is the line 2πδt + θ;
// its slope yields δ in closed form (O(1) search complexity). The phase
// unwrap makes it sensitive to low SNR.
//
// An estimator instance holds reusable scratch and is not safe for
// concurrent use: one instance per worker goroutine.
type LinearRegressionEstimator struct {
	Params lora.Params

	// Scratch: cached base phase and residual buffer, keyed by the chirp
	// geometry, so steady-state EstimateFB runs without allocating.
	scratchN    int
	scratchRate float64
	scratchPar  lora.Params
	base        []float64
	residual    []float64
}

var _ FBEstimator = (*LinearRegressionEstimator)(nil)

// Name implements FBEstimator.
func (l *LinearRegressionEstimator) Name() string { return "linear-regression" }

// Diagnostics exposes the intermediate traces of the linear-regression
// extraction for the Fig. 12 reproduction.
type Diagnostics struct {
	// Atan2 is the wrapped instantaneous phase (Fig. 12(b)).
	Atan2 []float64
	// Rectified is the unwrapped phase Θ(t) (Fig. 12(c)).
	Rectified []float64
	// Residual is Θ(t) − πW²/2^SF·t² + πW·t (Fig. 12(d)), the fitted line.
	Residual []float64
	// Fit is the straight-line fit to Residual.
	Fit dsp.LinearFit
}

// Extract runs the full §7.1.1 pipeline and returns the intermediates.
func (l *LinearRegressionEstimator) Extract(chirp []complex128, sampleRate float64) (*Diagnostics, error) {
	n := int(l.Params.SamplesPerChirp(sampleRate))
	if n < 8 || len(chirp) < n {
		return nil, fmt.Errorf("%w: need %d samples, have %d", ErrChirpTooShort, n, len(chirp))
	}
	seg := chirp[:n]
	wrapped := dsp.Phase(seg)
	rect := dsp.UnwrapPhase(wrapped)
	base := chirpBasePhase(l.Params, sampleRate, n)
	residual := make([]float64, n)
	for i := range residual {
		residual[i] = rect[i] - base[i]
	}
	fit := dsp.LinearRegressionUniform(residual, 0, 1/sampleRate)
	return &Diagnostics{Atan2: wrapped, Rectified: rect, Residual: residual, Fit: fit}, nil
}

// ensureScratch caches the base phase for the chirp geometry and sizes the
// residual buffer.
func (l *LinearRegressionEstimator) ensureScratch(n int, sampleRate float64) {
	if l.scratchN == n && l.scratchRate == sampleRate && l.scratchPar == l.Params {
		return
	}
	l.base = chirpBasePhase(l.Params, sampleRate, n)
	if cap(l.residual) < n {
		l.residual = make([]float64, n)
	}
	l.residual = l.residual[:n]
	l.scratchN = n
	l.scratchRate = sampleRate
	l.scratchPar = l.Params
}

// EstimateFB implements FBEstimator. Unlike Extract (which returns the
// intermediate traces for diagnostics), it runs the §7.1.1 pipeline on the
// estimator's scratch buffers: atan2 phase and 2kπ rectification in place,
// base-phase subtraction against the cached template, then the closed-form
// line fit — allocation-free in steady state.
func (l *LinearRegressionEstimator) EstimateFB(chirp []complex128, sampleRate float64) (FBEstimate, error) {
	n := int(l.Params.SamplesPerChirp(sampleRate))
	if n < 8 || len(chirp) < n {
		return FBEstimate{}, fmt.Errorf("%w: need %d samples, have %d", ErrChirpTooShort, n, len(chirp))
	}
	l.ensureScratch(n, sampleRate)
	res := l.residual
	for i, v := range chirp[:n] {
		res[i] = math.Atan2(imag(v), real(v))
	}
	dsp.UnwrapPhaseInPlace(res)
	for i := range res {
		res[i] -= l.base[i]
	}
	fit := dsp.LinearRegressionUniform(res, 0, 1/sampleRate)
	return FBEstimate{
		DeltaHz: fit.Slope / (2 * math.Pi),
		Theta:   fit.Intercept,
		Quality: fit.R2,
	}, nil
}

// LeastSquaresEstimator implements §7.1.2: fit noiseless templates
// A·cosΘ(t), A·sinΘ(t) with Θ(t) = πW²/2^SF·t² − πW·t + 2πδt + θ to the
// received I/Q traces by minimizing the squared residual over (δ, θ) with
// differential evolution. It stays accurate below the demodulation SNR
// floor (−25 dB) at the cost of a population search.
type LeastSquaresEstimator struct {
	Params lora.Params
	// DeltaBoundHz bounds the δ search to [DeltaCenterHz − DeltaBoundHz,
	// DeltaCenterHz + DeltaBoundHz] (default 50 kHz, comfortably covering
	// tens-of-ppm oscillators at 869.75 MHz).
	DeltaBoundHz float64
	// DeltaCenterHz centers the search window. When the gateway checks a
	// frame against a claimed device, it searches around that device's
	// tracked bias — a narrow window is what keeps the estimator reliable
	// at −25 dB, below the single-chirp threshold SNR of an unconstrained
	// frequency search.
	DeltaCenterHz float64
	// NoisePower is the receiver's measured noise power (used to estimate
	// the template amplitude A from the received power, §7.1.2). Zero
	// means negligible noise.
	NoisePower float64
	// Decimation processes every k-th sample to bound cost (default 1).
	// The chirp is low-pass anyway after dechirping; decimation by ≤8 at
	// 2.4 Msps keeps the fit well-determined.
	Decimation int
	// DE configures the optimizer; Rand is required.
	DE dsp.DEConfig
	// Rand seeds the optimizer when DE.Rand is nil.
	Rand *rand.Rand
}

var _ FBEstimator = (*LeastSquaresEstimator)(nil)

// Name implements FBEstimator.
func (l *LeastSquaresEstimator) Name() string { return "least-squares" }

// EstimateFB implements FBEstimator.
func (l *LeastSquaresEstimator) EstimateFB(chirp []complex128, sampleRate float64) (FBEstimate, error) {
	n := int(l.Params.SamplesPerChirp(sampleRate))
	if n < 8 || len(chirp) < n {
		return FBEstimate{}, fmt.Errorf("%w: need %d samples, have %d", ErrChirpTooShort, n, len(chirp))
	}
	dec := l.Decimation
	if dec < 1 {
		dec = 1
	}
	seg := chirp[:n]
	// Estimate the template amplitude from powers: E[I²+Q²] = A² + Pnoise.
	// At very low SNR the measured power fluctuates below the configured
	// noise power; clamp to a small positive floor — the (δ, θ) argmin is
	// invariant to the (positive) amplitude scale, so the clamp does not
	// bias the estimate.
	total := dsp.Power(seg)
	a2 := total - l.NoisePower
	if a2 <= 0 {
		a2 = 0.01 * total
	}
	if a2 <= 0 {
		return FBEstimate{}, fmt.Errorf("%w: empty capture", ErrNoEstimate)
	}
	amp := math.Sqrt(a2)
	bound := l.DeltaBoundHz
	if bound <= 0 {
		bound = 50e3
	}
	// Precompute decimated samples and base phases.
	m := (n + dec - 1) / dec
	xs := make([]complex128, 0, m)
	base := make([]float64, 0, m)
	times := make([]float64, 0, m)
	fullBase := chirpBasePhase(l.Params, sampleRate, n)
	dt := 1 / sampleRate
	for i := 0; i < n; i += dec {
		xs = append(xs, seg[i])
		base = append(base, fullBase[i])
		times = append(times, float64(i)*dt)
	}
	cost := func(v []float64) float64 {
		delta, theta := v[0], v[1]
		var sum float64
		for i, x := range xs {
			th := base[i] + 2*math.Pi*delta*times[i] + theta
			s, c := math.Sincos(th)
			di := real(x) - amp*c
			dq := imag(x) - amp*s
			sum += di*di + dq*dq
		}
		return sum
	}
	cfg := l.DE
	if cfg.Rand == nil {
		cfg.Rand = l.Rand
	}
	if cfg.Rand == nil {
		return FBEstimate{}, fmt.Errorf("%w: no random source configured", ErrNoEstimate)
	}
	if cfg.MaxGenerations == 0 {
		cfg.MaxGenerations = 120
	}
	if cfg.PopulationSize == 0 {
		cfg.PopulationSize = 30
	}
	res := dsp.DifferentialEvolution(cost,
		[]float64{l.DeltaCenterHz - bound, 0},
		[]float64{l.DeltaCenterHz + bound, 2 * math.Pi},
		cfg)
	if math.IsInf(res.Cost, 1) {
		return FBEstimate{}, ErrNoEstimate
	}
	// Normalize the residual by the total power for a comparable quality
	// metric.
	totalP := dsp.Power(xs) * float64(len(xs))
	quality := 0.0
	if totalP > 0 {
		quality = res.Cost / totalP
	}
	return FBEstimate{DeltaHz: res.X[0], Theta: res.X[1], Quality: quality}, nil
}

// DechirpFFTEstimator is an extension beyond the paper (DESIGN.md §6): the
// chirp is multiplied by the conjugate ideal chirp, collapsing it to a tone
// at δ whose frequency is read off an interpolated spectral peak. It is
// orders of magnitude faster than the DE least squares and nearly as
// robust, and serves as the ablation baseline for the estimator comparison
// bench.
//
// The default path is a two-stage coarse-to-fine estimate. Stage one
// dechirps and boxcar-decimates the chirp (dsp.DechirpScratch.
// DechirpDecimateInto — every sample stays in the coherent sum, so the full
// despreading gain survives) and picks the coarse peak from an n/D-point
// FFT with the boxcar's sinc droop divided out per bin. Stage two
// re-evaluates the decimated series on a chirp-Z zoom grid (dsp.ZoomDFT)
// spanning ±2 coarse bins at a spacing at least 4× finer than the legacy
// padded FFT's bins, interpolates the zoom peak parabolically, folds the
// result into the principal alias band, and reads θ from one Goertzel
// evaluation at the final frequency (bias-free for off-grid δ, after
// removing the boxcar's (D−1)/2-sample group delay). The decimation factor
// is capped so the ±BW/2 bias range stays well inside the decimated band.
//
// Exhaustive keeps the original single-stage reference: one monolithic
// 4×-zero-padded full-rate FFT with parabolic interpolation — several times
// slower, retained as the accuracy fallback and ablation baseline. Both
// paths apply the Nyquist fold and the fractional-bin θ derotation.
//
// An estimator instance holds reusable scratch (conjugate chirp template,
// FFT plans, decimation/zoom buffers) and is not safe for concurrent use:
// one instance per worker goroutine.
type DechirpFFTEstimator struct {
	Params lora.Params
	// Exhaustive selects the legacy monolithic padded-FFT reference path
	// instead of the decimated coarse→zoom hierarchy.
	Exhaustive bool

	scratch dechirpScratch
	// scratchExh records which path the scratch was initialized for (the
	// two differ in FFT padding), so toggling Exhaustive rebuilds it.
	scratchExh bool

	// Fast-path scratch, rebuilt alongside the dechirp scratch.
	dec        int          // boxcar decimation factor D
	decTime    []complex128 // n/D decimated dechirped samples (time domain)
	coarsePlan *dsp.Plan
	coarseBuf  []complex128
	droopInv   []float64 // per-coarse-bin boxcar droop compensation
	zoom       dsp.ZoomDFT
	zoomOut    []complex128
	zoomStep   float64 // zoom grid spacing (Hz)
}

var _ FBEstimator = (*DechirpFFTEstimator)(nil)

// Name implements FBEstimator.
func (d *DechirpFFTEstimator) Name() string { return "dechirp-fft" }

// maxFBDecimation caps the coarse stage's boxcar factor; with the band
// constraint in initFast it resolves to 8 at the default 2.4 Msps / 125 kHz
// geometry (a 19.2× oversampled chirp).
const maxFBDecimation = 16

// wrapTwoPi maps an angle into [0, 2π), the estimator's θ convention.
func wrapTwoPi(th float64) float64 {
	th = math.Mod(th, 2*math.Pi)
	if th < 0 {
		th += 2 * math.Pi
	}
	return th
}

// initFast sizes the decimation, coarse-FFT, droop and zoom scratch for one
// chirp geometry.
func (d *DechirpFFTEstimator) initFast(n int, sampleRate float64) {
	// Largest power-of-two decimation that keeps the ±BW/2 bias span
	// inside 70 % of the decimated band (droop ≥ −2 dB there, and the
	// coarse peak cannot park legitimate tones at the decimated Nyquist),
	// with at least 64 decimated samples for a meaningful coarse FFT.
	dec := 1
	for dec*2 <= maxFBDecimation && n/(dec*2) >= 64 &&
		d.Params.Bandwidth*float64(dec*2) <= 0.7*sampleRate {
		dec *= 2
	}
	d.dec = dec
	m := n / dec
	if cap(d.decTime) < m {
		d.decTime = make([]complex128, m)
	}
	d.decTime = d.decTime[:m]
	d.coarsePlan = dsp.PlanFor(m)
	cl := d.coarsePlan.Size()
	if cap(d.coarseBuf) < cl {
		d.coarseBuf = make([]complex128, cl)
	}
	d.coarseBuf = d.coarseBuf[:cl]
	if cap(d.droopInv) < cl {
		d.droopInv = make([]float64, cl)
	}
	d.droopInv = d.droopInv[:cl]
	decRate := sampleRate / float64(dec)
	// The coarse search covers the fingerprint band ±BW/2 (plus a few
	// bins of guard), not the whole decimated spectrum: bins beyond it
	// carry no legitimate δ, and compensating their deeper droop would
	// boost pure noise into false coarse peaks at low SNR. Out-of-band
	// bins get zero weight; Exhaustive remains the full-band reference.
	coarseBinHz := decRate / float64(cl)
	maxAbsHz := d.Params.Bandwidth/2 + 3*coarseBinHz
	for k := 0; k < cl; k++ {
		f := dsp.BinFrequency(k, cl, decRate)
		if math.Abs(f) > maxAbsHz && maxAbsHz < decRate/2 {
			d.droopInv[k] = 0
			continue
		}
		d.droopInv[k] = 1 / dsp.BoxcarDroopSq(dec, f/sampleRate)
	}
	// Zoom grid: ±2 coarse bins at 1/16 coarse-bin spacing. The coarse
	// length is within a factor two of NextPow2(n)/D, so this spacing is
	// always ≥4× finer than the legacy padded FFT's rate/NextPow2(4n) bins
	// (the accuracy harness asserts the resulting error envelope).
	d.zoomStep = coarseBinHz / 16
	const points = 2*32 + 1
	if cap(d.zoomOut) < points {
		d.zoomOut = make([]complex128, points)
	}
	d.zoomOut = d.zoomOut[:points]
	domega := 2 * math.Pi * d.zoomStep / decRate
	if d.zoom.Stale(m, points, domega) {
		d.zoom.Init(m, points, domega)
	}
}

// EstimateFB implements FBEstimator. Both paths run entirely on the
// estimator's reusable scratch — allocation-free in steady state.
func (d *DechirpFFTEstimator) EstimateFB(chirp []complex128, sampleRate float64) (FBEstimate, error) {
	n := int(d.Params.SamplesPerChirp(sampleRate))
	if n < 8 || len(chirp) < n {
		return FBEstimate{}, fmt.Errorf("%w: need %d samples, have %d", ErrChirpTooShort, n, len(chirp))
	}
	if d.scratch.Stale(d.Params, n, sampleRate) || d.scratchExh != d.Exhaustive {
		// The reference path zero-pads 4× for finer bins before
		// interpolation; the zoom path needs no padding (its fine grid
		// comes from the chirp-Z stage).
		pad := 1
		if d.Exhaustive {
			pad = 4
		}
		d.scratch.Init(d.Params, n, sampleRate, pad, chirpBasePhase(d.Params, sampleRate, n))
		d.scratchExh = d.Exhaustive
		if !d.Exhaustive {
			d.initFast(n, sampleRate)
		}
	}
	if d.Exhaustive {
		return d.estimateExhaustive(chirp[:n], sampleRate, n)
	}
	return d.estimateZoom(chirp[:n], sampleRate, n)
}

// estimateExhaustive is the legacy single-stage reference: full-rate
// dechirp, monolithic padded FFT, parabolic interpolation.
func (d *DechirpFFTEstimator) estimateExhaustive(seg []complex128, sampleRate float64, n int) (FBEstimate, error) {
	spec := d.scratch.Dechirp(seg)
	bin, magSq := dsp.PeakBinSq(spec)
	if magSq == 0 {
		return FBEstimate{}, ErrNoEstimate
	}
	nfft := len(spec)
	frac := dsp.InterpolatePeak(spec, bin)
	f := dsp.FoldFrequency(dsp.BinFrequency(bin, nfft, sampleRate)+frac*sampleRate/float64(nfft), sampleRate)
	// The dechirped tone occupies only the n unpadded samples, so a peak
	// a fractional bin off the grid leaves the integer-bin phasor rotated
	// by π·frac·(n−1)/nfft; derotate so θ is unbiased for off-bin δ.
	theta := math.Atan2(imag(spec[bin]), real(spec[bin])) - math.Pi*frac*float64(n-1)/float64(nfft)
	return FBEstimate{
		DeltaHz: f,
		Theta:   wrapTwoPi(theta),
		Quality: math.Sqrt(magSq) / float64(n),
	}, nil
}

// estimateZoom is the decimated coarse→zoom fast path.
func (d *DechirpFFTEstimator) estimateZoom(seg []complex128, sampleRate float64, n int) (FBEstimate, error) {
	dec := d.dec
	m := len(d.decTime)
	d.scratch.DechirpDecimateInto(d.decTime, seg, dec)

	// Coarse stage: droop-compensated peak over the n/D-point spectrum
	// (Transform zero-pads the shorter decimated series into the buffer).
	buf := d.coarseBuf
	d.coarsePlan.Transform(buf, d.decTime)
	bin, best := 0, 0.0
	for k, v := range buf {
		re, im := real(v), imag(v)
		if mm := (re*re + im*im) * d.droopInv[k]; mm > best {
			best, bin = mm, k
		}
	}
	if best == 0 {
		return FBEstimate{}, ErrNoEstimate
	}
	decRate := sampleRate / float64(dec)
	coarseHz := dsp.BinFrequency(bin, len(buf), decRate)

	// Zoom stage: chirp-Z grid over ±2 coarse bins around the pick.
	points := len(d.zoomOut)
	f0 := coarseHz - float64(points/2)*d.zoomStep
	d.zoom.Transform(d.zoomOut, d.decTime, 2*math.Pi*f0/decRate)
	zb, zbest := dsp.PeakBinSq(d.zoomOut)
	if zbest == 0 {
		return FBEstimate{}, ErrNoEstimate
	}
	frac := 0.0
	if zb > 0 && zb < points-1 {
		frac = dsp.InterpolatePeak(d.zoomOut, zb)
	}
	f := dsp.FoldFrequency(f0+(float64(zb)+frac)*d.zoomStep, decRate)

	// θ from one Goertzel evaluation of the decimated series at the final
	// frequency: no integer-bin phase bias, only the boxcar accumulator's
	// (D−1)/2-sample group delay to remove.
	x := dsp.GoertzelDFT(d.decTime, 2*math.Pi*f*float64(dec)/sampleRate)
	theta := math.Atan2(imag(x), real(x)) - math.Pi*f*float64(dec-1)/sampleRate
	droopAmp := math.Sqrt(dsp.BoxcarDroopSq(dec, f/sampleRate))
	quality := 0.0
	if droopAmp > 0 {
		// |X| ≈ A·m·D·droop for a tone of amplitude A: normalize to match
		// the reference path's Quality ≈ A.
		quality = math.Sqrt(real(x)*real(x)+imag(x)*imag(x)) / (float64(m*dec) * droopAmp)
	}
	return FBEstimate{DeltaHz: f, Theta: wrapTwoPi(theta), Quality: quality}, nil
}
