// Package profiling wires the standard pprof profilers into the
// command-line tools, so hot-path regressions in the gateway DSP can be
// diagnosed from a -cpuprofile/-memprofile run instead of by editing code.
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Run executes fn under the requested profilers: CPU profiling for fn's
// duration (stopped via defer, so profiles survive a panic in fn) and a
// heap snapshot after it returns — taken even when fn fails, so aborted
// runs can still be diagnosed. Either path may be empty to skip that
// profiler. fn's error wins over a heap-write error.
func Run(cpuPath, memPath string, fn func() error) error {
	stop, err := Start(cpuPath)
	if err != nil {
		return err
	}
	defer stop()
	runErr := fn()
	if err := WriteHeap(memPath); err != nil && runErr == nil {
		runErr = err
	}
	return runErr
}

// Start begins CPU profiling into cpuPath (no-op when empty) and returns a
// stop function to defer. The stop function is never nil.
func Start(cpuPath string) (stop func(), err error) {
	if cpuPath == "" {
		return func() {}, nil
	}
	f, err := os.Create(cpuPath)
	if err != nil {
		return func() {}, fmt.Errorf("profiling: %w", err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return func() {}, fmt.Errorf("profiling: %w", err)
	}
	return func() {
		pprof.StopCPUProfile()
		f.Close()
	}, nil
}

// WriteHeap dumps a heap profile to memPath after a GC pass (no-op when
// empty), capturing the steady-state allocation picture at exit.
func WriteHeap(memPath string) error {
	if memPath == "" {
		return nil
	}
	f, err := os.Create(memPath)
	if err != nil {
		return fmt.Errorf("profiling: %w", err)
	}
	defer f.Close()
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		return fmt.Errorf("profiling: %w", err)
	}
	return nil
}
