// Package lorawan implements the LoRaWAN 1.0.2 MAC layer: uplink/downlink
// frame formats, AES-128 payload encryption, AES-CMAC message integrity
// codes, ABP sessions with frame counters, Class A receive windows, and
// ETSI duty-cycle accounting.
//
// The package exists to demonstrate the paper's security argument
// end-to-end: the frame delay attack replays bit-exact frames, so MIC
// verification and frame-counter checks — the defenses LoRaWAN prescribes —
// accept the delayed frame. Only the PHY-layer frequency-bias check of the
// SoftLoRa gateway (package core) detects it.
package lorawan

import (
	"crypto/aes"
	"crypto/subtle"
	"errors"
	"fmt"
)

// AES128Key is a LoRaWAN session key (NwkSKey or AppSKey).
type AES128Key [16]byte

// Errors from the crypto routines.
var (
	ErrBadMIC = errors.New("lorawan: message integrity check failed")
)

// cmacSubkeys derives the RFC 4493 subkeys K1, K2 from the AES key.
func cmacSubkeys(key AES128Key) (k1, k2 [16]byte, err error) {
	block, err := aes.NewCipher(key[:])
	if err != nil {
		return k1, k2, fmt.Errorf("lorawan: %w", err)
	}
	var l [16]byte
	block.Encrypt(l[:], l[:])
	shift := func(in [16]byte) (out [16]byte) {
		var carry byte
		for i := 15; i >= 0; i-- {
			out[i] = in[i]<<1 | carry
			carry = in[i] >> 7
		}
		if carry != 0 {
			out[15] ^= 0x87
		}
		return out
	}
	k1 = shift(l)
	k2 = shift(k1)
	return k1, k2, nil
}

// CMAC computes the full 16-byte AES-CMAC (RFC 4493) of msg.
func CMAC(key AES128Key, msg []byte) ([16]byte, error) {
	var mac [16]byte
	k1, k2, err := cmacSubkeys(key)
	if err != nil {
		return mac, err
	}
	block, err := aes.NewCipher(key[:])
	if err != nil {
		return mac, fmt.Errorf("lorawan: %w", err)
	}
	n := (len(msg) + 15) / 16
	complete := n > 0 && len(msg)%16 == 0
	if n == 0 {
		n = 1
	}
	var last [16]byte
	if complete {
		copy(last[:], msg[(n-1)*16:])
		for i := 0; i < 16; i++ {
			last[i] ^= k1[i]
		}
	} else {
		rem := msg[(n-1)*16:]
		copy(last[:], rem)
		last[len(rem)] = 0x80
		for i := 0; i < 16; i++ {
			last[i] ^= k2[i]
		}
	}
	var x [16]byte
	var y [16]byte
	for i := 0; i < n-1; i++ {
		for j := 0; j < 16; j++ {
			y[j] = x[j] ^ msg[i*16+j]
		}
		block.Encrypt(x[:], y[:])
	}
	for j := 0; j < 16; j++ {
		y[j] = x[j] ^ last[j]
	}
	block.Encrypt(mac[:], y[:])
	return mac, nil
}

// Direction of a LoRaWAN frame for crypto block construction.
type Direction byte

// Frame directions.
const (
	DirUplink   Direction = 0
	DirDownlink Direction = 1
)

// EncryptFRMPayload applies the LoRaWAN 1.0.2 §4.3.3 payload encryption
// (AES-128 in the spec's counter-like A-block mode). Encryption and
// decryption are the same operation.
func EncryptFRMPayload(key AES128Key, devAddr uint32, fCnt uint32, dir Direction, payload []byte) ([]byte, error) {
	block, err := aes.NewCipher(key[:])
	if err != nil {
		return nil, fmt.Errorf("lorawan: %w", err)
	}
	out := make([]byte, len(payload))
	var a, s [16]byte
	a[0] = 0x01
	a[5] = byte(dir)
	putUint32LE(a[6:10], devAddr)
	putUint32LE(a[10:14], fCnt)
	for i := 0; i < len(payload); i += 16 {
		a[15] = byte(i/16 + 1)
		block.Encrypt(s[:], a[:])
		for j := 0; j < 16 && i+j < len(payload); j++ {
			out[i+j] = payload[i+j] ^ s[j]
		}
	}
	return out, nil
}

// ComputeMIC computes the 4-byte LoRaWAN frame MIC: the first four bytes of
// AES-CMAC(NwkSKey, B0 | msg), where B0 binds direction, device address and
// frame counter (LoRaWAN 1.0.2 §4.4).
func ComputeMIC(key AES128Key, devAddr uint32, fCnt uint32, dir Direction, msg []byte) ([4]byte, error) {
	var mic [4]byte
	b0 := make([]byte, 16+len(msg))
	b0[0] = 0x49
	b0[5] = byte(dir)
	putUint32LE(b0[6:10], devAddr)
	putUint32LE(b0[10:14], fCnt)
	b0[15] = byte(len(msg))
	copy(b0[16:], msg)
	full, err := CMAC(key, b0)
	if err != nil {
		return mic, err
	}
	copy(mic[:], full[:4])
	return mic, nil
}

// VerifyMIC checks a frame MIC in constant time.
func VerifyMIC(key AES128Key, devAddr uint32, fCnt uint32, dir Direction, msg []byte, mic [4]byte) error {
	want, err := ComputeMIC(key, devAddr, fCnt, dir, msg)
	if err != nil {
		return err
	}
	if subtle.ConstantTimeCompare(want[:], mic[:]) != 1 {
		return ErrBadMIC
	}
	return nil
}

func putUint32LE(dst []byte, v uint32) {
	dst[0] = byte(v)
	dst[1] = byte(v >> 8)
	dst[2] = byte(v >> 16)
	dst[3] = byte(v >> 24)
}

func uint32LE(src []byte) uint32 {
	return uint32(src[0]) | uint32(src[1])<<8 | uint32(src[2])<<16 | uint32(src[3])<<24
}
