package lorawan

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"softlora/internal/lora"
)

func testSession() Session {
	return Session{
		DevAddr: 0x26011BDA,
		NwkSKey: AES128Key{1, 1, 2, 3, 5, 8, 13, 21, 34, 55, 89, 144, 233, 122, 99, 1},
		AppSKey: AES128Key{2, 7, 1, 8, 2, 8, 1, 8, 2, 8, 4, 5, 9, 0, 4, 5},
	}
}

func TestFrameMarshalParseRoundTrip(t *testing.T) {
	f := &MACFrame{
		MType:      MTypeUnconfirmedUp,
		DevAddr:    0x26011BDA,
		FCtrl:      FCtrl{ADR: true},
		FCnt:       777,
		FOpts:      []byte{0x02},
		FPort:      10,
		FRMPayload: []byte{9, 8, 7},
		MIC:        [4]byte{1, 2, 3, 4},
	}
	raw, err := f.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseFrame(raw)
	if err != nil {
		t.Fatal(err)
	}
	if got.MType != f.MType || got.DevAddr != f.DevAddr || got.FCnt != f.FCnt {
		t.Errorf("header mismatch: %+v", got)
	}
	if !got.FCtrl.ADR || got.FCtrl.FOptsLen != 1 {
		t.Errorf("FCtrl mismatch: %+v", got.FCtrl)
	}
	if !bytes.Equal(got.FOpts, f.FOpts) || got.FPort != 10 || !bytes.Equal(got.FRMPayload, f.FRMPayload) {
		t.Errorf("body mismatch: %+v", got)
	}
	if got.MIC != f.MIC {
		t.Errorf("MIC mismatch")
	}
}

func TestFrameNoPort(t *testing.T) {
	f := &MACFrame{MType: MTypeUnconfirmedUp, DevAddr: 1, FCnt: 1, FPort: -1}
	raw, err := f.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseFrame(raw)
	if err != nil {
		t.Fatal(err)
	}
	if got.FPort != -1 || got.FRMPayload != nil {
		t.Errorf("expected empty body, got %+v", got)
	}
}

func TestParseFrameErrors(t *testing.T) {
	if _, err := ParseFrame(make([]byte, 5)); !errors.Is(err, ErrFrameTooShort) {
		t.Errorf("err = %v", err)
	}
	bad := make([]byte, 12)
	bad[0] = 0x41 // major != 0
	if _, err := ParseFrame(bad); !errors.Is(err, ErrBadMajor) {
		t.Errorf("err = %v", err)
	}
	// FOptsLen overrunning the frame.
	overrun := make([]byte, 12)
	overrun[5] = 0x0F
	if _, err := ParseFrame(overrun); !errors.Is(err, ErrFrameTooShort) {
		t.Errorf("err = %v", err)
	}
}

func TestFrameMarshalFOptsTooLong(t *testing.T) {
	f := &MACFrame{MType: MTypeUnconfirmedUp, FOpts: make([]byte, 16), FPort: -1}
	if _, err := f.Marshal(); err == nil {
		t.Error("expected error for 16-byte FOpts")
	}
}

func TestSignVerify(t *testing.T) {
	s := testSession()
	f := &MACFrame{MType: MTypeUnconfirmedUp, DevAddr: s.DevAddr, FCnt: 3, FPort: 1, FRMPayload: []byte{1}}
	if err := f.Sign(s.NwkSKey); err != nil {
		t.Fatal(err)
	}
	if err := f.Verify(s.NwkSKey); err != nil {
		t.Errorf("verify failed: %v", err)
	}
	f.FRMPayload[0] ^= 1
	if err := f.Verify(s.NwkSKey); !errors.Is(err, ErrBadMIC) {
		t.Errorf("tampered frame: err = %v, want ErrBadMIC", err)
	}
}

func TestDeviceBuildUplink(t *testing.T) {
	s := testSession()
	d := NewDevice(s, lora.DefaultParams(7))
	f, err := d.BuildUplink(10, []byte("reading-1"))
	if err != nil {
		t.Fatal(err)
	}
	if f.FCnt != 0 || d.FCntUp() != 1 {
		t.Errorf("counter handling wrong: frame %d next %d", f.FCnt, d.FCntUp())
	}
	if err := f.Verify(s.NwkSKey); err != nil {
		t.Errorf("uplink MIC invalid: %v", err)
	}
	if bytes.Equal(f.FRMPayload, []byte("reading-1")) {
		t.Error("payload must be encrypted on air")
	}
	if _, err := d.BuildUplink(0, nil); err == nil {
		t.Error("port 0 must be rejected for app data")
	}
	if _, err := d.BuildUplink(255, nil); err == nil {
		t.Error("port 255 must be rejected")
	}
}

func TestNetworkServerAcceptsAndDecrypts(t *testing.T) {
	s := testSession()
	d := NewDevice(s, lora.DefaultParams(7))
	ns := NewNetworkServer()
	ns.Register(s)
	f, err := d.BuildUplink(10, []byte("hello ns"))
	if err != nil {
		t.Fatal(err)
	}
	raw, err := f.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	addr, cnt, payload, err := ns.HandleUplink(raw)
	if err != nil {
		t.Fatal(err)
	}
	if addr != s.DevAddr || cnt != 0 || string(payload) != "hello ns" {
		t.Errorf("got addr=%x cnt=%d payload=%q", addr, cnt, payload)
	}
}

func TestNetworkServerRejectsClassicReplay(t *testing.T) {
	// Re-sending the same frame AFTER it was delivered is the classic
	// replay LoRaWAN counters defeat.
	s := testSession()
	d := NewDevice(s, lora.DefaultParams(7))
	ns := NewNetworkServer()
	ns.Register(s)
	f, _ := d.BuildUplink(10, []byte("a"))
	raw, _ := f.Marshal()
	if _, _, _, err := ns.HandleUplink(raw); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := ns.HandleUplink(raw); !errors.Is(err, ErrCounterReplay) {
		t.Errorf("second delivery: err = %v, want ErrCounterReplay", err)
	}
}

func TestNetworkServerAcceptsFrameDelayAttack(t *testing.T) {
	// The paper's point: a frame that was JAMMED (never delivered) and
	// replayed later is bit-exact, carries an unseen counter, and passes
	// every LoRaWAN check. Cryptography cannot detect the delay.
	s := testSession()
	d := NewDevice(s, lora.DefaultParams(7))
	ns := NewNetworkServer()
	ns.Register(s)
	f, _ := d.BuildUplink(10, []byte("delayed data"))
	raw, _ := f.Marshal()
	// ... adversary jams the original delivery, waits τ, replays ...
	_, _, payload, err := ns.HandleUplink(raw)
	if err != nil {
		t.Fatalf("delayed replay rejected (it must not be): %v", err)
	}
	if string(payload) != "delayed data" {
		t.Errorf("payload = %q", payload)
	}
}

func TestNetworkServerUnknownDevice(t *testing.T) {
	ns := NewNetworkServer()
	f := &MACFrame{MType: MTypeUnconfirmedUp, DevAddr: 0xDEAD, FCnt: 0, FPort: -1}
	raw, _ := f.Marshal()
	if _, _, _, err := ns.HandleUplink(raw); !errors.Is(err, ErrUnknownDevice) {
		t.Errorf("err = %v", err)
	}
}

func TestNetworkServerBadMIC(t *testing.T) {
	s := testSession()
	ns := NewNetworkServer()
	ns.Register(s)
	f := &MACFrame{MType: MTypeUnconfirmedUp, DevAddr: s.DevAddr, FCnt: 0, FPort: 1, FRMPayload: []byte{1}}
	// Unsigned (zero) MIC.
	raw, _ := f.Marshal()
	if _, _, _, err := ns.HandleUplink(raw); !errors.Is(err, ErrBadMIC) {
		t.Errorf("err = %v", err)
	}
}

func TestDeviceDutyCycle(t *testing.T) {
	s := testSession()
	p := lora.DefaultParams(12)
	d := NewDevice(s, p)
	airtime, err := d.Transmit(0, 30)
	if err != nil {
		t.Fatal(err)
	}
	if airtime <= 0 {
		t.Fatal("zero airtime")
	}
	// Immediately again: must be blocked.
	if _, err := d.Transmit(airtime, 30); !errors.Is(err, ErrDutyCycle) {
		t.Errorf("err = %v, want ErrDutyCycle", err)
	}
	// After the wait: allowed.
	if _, err := d.Transmit(d.NextTxTime(), 30); err != nil {
		t.Errorf("transmit after wait: %v", err)
	}
	if d.TotalAirtime() <= 0 {
		t.Error("airtime not accounted")
	}
}

func TestDeviceDutyCycleFramesPerHour(t *testing.T) {
	// Simulate an hour at SF12/30B: the device should manage ~24 frames
	// (paper §3.2).
	s := testSession()
	p := lora.DefaultParams(12)
	d := NewDevice(s, p)
	now, frames := 0.0, 0
	for now < 3600 {
		if _, err := d.Transmit(now, 30); err == nil {
			frames++
		}
		now = d.NextTxTime()
	}
	if frames < 20 || frames > 28 {
		t.Errorf("frames in an hour = %d, want ~24", frames)
	}
}

func TestRXWindows(t *testing.T) {
	d := NewDevice(testSession(), lora.DefaultParams(7))
	rx1, rx2 := d.RXWindows(10)
	if rx1 != 11 || rx2 != 12 {
		t.Errorf("rx windows = %f, %f", rx1, rx2)
	}
}

func TestFrameRoundTripProperty(t *testing.T) {
	f := func(addr uint32, cnt uint16, port uint8, payload []byte) bool {
		if len(payload) > 200 {
			payload = payload[:200]
		}
		fr := &MACFrame{
			MType:      MTypeConfirmedUp,
			DevAddr:    addr,
			FCnt:       cnt,
			FPort:      int(port)%223 + 1,
			FRMPayload: payload,
		}
		raw, err := fr.Marshal()
		if err != nil {
			return false
		}
		got, err := ParseFrame(raw)
		if err != nil {
			return false
		}
		return got.DevAddr == addr && got.FCnt == cnt &&
			got.FPort == fr.FPort && bytes.Equal(got.FRMPayload, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
