package lorawan

import (
	"errors"
	"testing"

	"softlora/internal/lora"
)

func testRTT() *RoundTripDetector {
	return &RoundTripDetector{
		Params:           lora.DefaultParams(7),
		DeviceTurnaround: 5e-3,
		MarginSeconds:    0.050,
	}
}

func TestRTTExpected(t *testing.T) {
	r := testRTT()
	rtt := r.ExpectedRTT(3.57e-6, 10)
	// Two SF7 10-byte airtimes + turnaround + 2 flights.
	want := 2*r.Params.Airtime(10) + 5e-3 + 2*3.57e-6
	if rtt != want {
		t.Errorf("rtt = %f, want %f", rtt, want)
	}
}

func TestRTTNoAttackPasses(t *testing.T) {
	r := testRTT()
	flagged, _, err := r.Probe(0, 3.57e-6, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	if flagged {
		t.Error("attack-free probe flagged")
	}
}

func TestRTTDetectsInjectedDelay(t *testing.T) {
	r := testRTT()
	flagged, _, err := r.Probe(0, 3.57e-6, 10, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	if !flagged {
		t.Error("2 s injected delay not flagged")
	}
}

func TestRTTSmallJitterWithinMargin(t *testing.T) {
	r := testRTT()
	flagged, _, err := r.Probe(0, 3.57e-6, 10, 0.020)
	if err != nil {
		t.Fatal(err)
	}
	if flagged {
		t.Error("20 ms jitter flagged despite 50 ms margin")
	}
}

func TestRTTSerializesDownlinks(t *testing.T) {
	// The gateway can run only one probe at a time (Class A's unicast
	// downlink constraint) — the paper's asymmetry argument.
	r := testRTT()
	_, freeAt, err := r.Probe(0, 3.57e-6, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := r.Probe(freeAt/2, 3.57e-6, 10, 0); !errors.Is(err, ErrDownlinkBusy) {
		t.Errorf("overlapping probe: err = %v, want ErrDownlinkBusy", err)
	}
	if _, _, err := r.Probe(freeAt, 3.57e-6, 10, 0); err != nil {
		t.Errorf("probe after free: %v", err)
	}
}

func TestRTTHalvesBudget(t *testing.T) {
	r := &RoundTripDetector{Params: lora.DefaultParams(12)}
	checked, unchecked := r.CheckedFramesPerHour(30, 0.01)
	if checked*2 > unchecked+1 {
		t.Errorf("checked %d vs unchecked %d: overhead not ~2x", checked, unchecked)
	}
}
