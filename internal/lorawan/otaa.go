package lorawan

import (
	"crypto/aes"
	"errors"
	"fmt"
)

// Over-the-air activation (OTAA), LoRaWAN 1.0.2 §6.2: the device sends a
// JoinRequest signed with its AppKey; the network answers with an encrypted
// JoinAccept from which both sides derive the session keys (NwkSKey,
// AppSKey). Implemented because a production gateway must accept joining
// devices before it can learn their frequency biases.

// EUI64 is a device or application extended unique identifier.
type EUI64 [8]byte

// JoinRequest is the over-the-air join message payload.
type JoinRequest struct {
	AppEUI   EUI64
	DevEUI   EUI64
	DevNonce uint16
	MIC      [4]byte
}

// OTAA errors.
var (
	ErrJoinTooShort = errors.New("lorawan: join message too short")
	ErrNonceReplay  = errors.New("lorawan: DevNonce already used (join replay)")
)

// marshalJoinBody serializes MHDR|AppEUI|DevEUI|DevNonce (little-endian
// EUIs, per the spec).
func (j *JoinRequest) marshalBody() []byte {
	out := make([]byte, 0, 19)
	out = append(out, byte(MTypeJoinRequest)<<5)
	for i := 7; i >= 0; i-- {
		out = append(out, j.AppEUI[i])
	}
	for i := 7; i >= 0; i-- {
		out = append(out, j.DevEUI[i])
	}
	out = append(out, byte(j.DevNonce), byte(j.DevNonce>>8))
	return out
}

// Sign computes the JoinRequest MIC with the AppKey (cmac over the whole
// message).
func (j *JoinRequest) Sign(appKey AES128Key) error {
	mac, err := CMAC(appKey, j.marshalBody())
	if err != nil {
		return err
	}
	copy(j.MIC[:], mac[:4])
	return nil
}

// Verify checks the JoinRequest MIC.
func (j *JoinRequest) Verify(appKey AES128Key) error {
	mac, err := CMAC(appKey, j.marshalBody())
	if err != nil {
		return err
	}
	for i := 0; i < 4; i++ {
		if mac[i] != j.MIC[i] {
			return ErrBadMIC
		}
	}
	return nil
}

// Marshal serializes the full JoinRequest PHYPayload.
func (j *JoinRequest) Marshal() []byte {
	return append(j.marshalBody(), j.MIC[:]...)
}

// ParseJoinRequest inverts Marshal.
func ParseJoinRequest(data []byte) (*JoinRequest, error) {
	if len(data) != 23 {
		return nil, fmt.Errorf("%w: %d bytes, want 23", ErrJoinTooShort, len(data))
	}
	j := &JoinRequest{}
	for i := 0; i < 8; i++ {
		j.AppEUI[7-i] = data[1+i]
		j.DevEUI[7-i] = data[9+i]
	}
	j.DevNonce = uint16(data[17]) | uint16(data[18])<<8
	copy(j.MIC[:], data[19:23])
	return j, nil
}

// DeriveSessionKeys computes NwkSKey and AppSKey per LoRaWAN 1.0.2 §6.2.5:
// K = aes128_encrypt(AppKey, prefix | AppNonce | NetID | DevNonce | pad),
// with prefix 0x01 for NwkSKey and 0x02 for AppSKey.
func DeriveSessionKeys(appKey AES128Key, appNonce uint32, netID uint32, devNonce uint16) (nwkSKey, appSKey AES128Key, err error) {
	block, err := aes.NewCipher(appKey[:])
	if err != nil {
		return nwkSKey, appSKey, fmt.Errorf("lorawan: %w", err)
	}
	derive := func(prefix byte) AES128Key {
		var in [16]byte
		in[0] = prefix
		in[1] = byte(appNonce)
		in[2] = byte(appNonce >> 8)
		in[3] = byte(appNonce >> 16)
		in[4] = byte(netID)
		in[5] = byte(netID >> 8)
		in[6] = byte(netID >> 16)
		in[7] = byte(devNonce)
		in[8] = byte(devNonce >> 8)
		var out AES128Key
		block.Encrypt(out[:], in[:])
		return out
	}
	return derive(0x01), derive(0x02), nil
}

// JoinServer is the network-side OTAA endpoint: it validates JoinRequests,
// rejects replayed DevNonces, and issues sessions.
type JoinServer struct {
	// AppKey is the root key shared with the devices (per-device keys in
	// production; one key suffices for the simulation).
	AppKey AES128Key
	// NetID identifies the network.
	NetID uint32

	nextAddr   uint32
	nextNonce  uint32
	usedNonces map[EUI64]map[uint16]bool
}

// NewJoinServer builds a join server assigning addresses from baseAddr.
func NewJoinServer(appKey AES128Key, netID, baseAddr uint32) *JoinServer {
	return &JoinServer{
		AppKey:     appKey,
		NetID:      netID,
		nextAddr:   baseAddr,
		nextNonce:  1,
		usedNonces: make(map[EUI64]map[uint16]bool),
	}
}

// HandleJoin validates a JoinRequest and, on success, returns the new
// session (as both sides will derive it).
func (s *JoinServer) HandleJoin(raw []byte) (Session, error) {
	req, err := ParseJoinRequest(raw)
	if err != nil {
		return Session{}, err
	}
	if err := req.Verify(s.AppKey); err != nil {
		return Session{}, err
	}
	used := s.usedNonces[req.DevEUI]
	if used == nil {
		used = make(map[uint16]bool)
		s.usedNonces[req.DevEUI] = used
	}
	if used[req.DevNonce] {
		return Session{}, fmt.Errorf("%w: %d", ErrNonceReplay, req.DevNonce)
	}
	used[req.DevNonce] = true
	appNonce := s.nextNonce
	s.nextNonce++
	addr := s.nextAddr
	s.nextAddr++
	nwk, app, err := DeriveSessionKeys(s.AppKey, appNonce, s.NetID, req.DevNonce)
	if err != nil {
		return Session{}, err
	}
	return Session{DevAddr: addr, NwkSKey: nwk, AppSKey: app}, nil
}

// JoinDevice performs the device side of OTAA against a JoinServer,
// returning the established session. devNonce must be fresh per attempt.
func JoinDevice(s *JoinServer, appKey AES128Key, appEUI, devEUI EUI64, devNonce uint16) (Session, error) {
	req := &JoinRequest{AppEUI: appEUI, DevEUI: devEUI, DevNonce: devNonce}
	if err := req.Sign(appKey); err != nil {
		return Session{}, err
	}
	return s.HandleJoin(req.Marshal())
}
