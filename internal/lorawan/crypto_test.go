package lorawan

import (
	"bytes"
	"encoding/hex"
	"testing"
	"testing/quick"
)

// RFC 4493 test vectors (key 2b7e1516...).
var rfc4493Key = AES128Key{
	0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6,
	0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c,
}

func mustHex(t *testing.T, s string) []byte {
	t.Helper()
	b, err := hex.DecodeString(s)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestCMACRFC4493Vectors(t *testing.T) {
	tests := []struct {
		name string
		msg  string
		want string
	}{
		{"empty", "", "bb1d6929e95937287fa37d129b756746"},
		{"16 bytes", "6bc1bee22e409f96e93d7e117393172a", "070a16b46b4d4144f79bdd9dd04a287c"},
		{"40 bytes", "6bc1bee22e409f96e93d7e117393172aae2d8a571e03ac9c9eb76fac45af8e5130c81c46a35ce411", "dfa66747de9ae63030ca32611497c827"},
		{"64 bytes", "6bc1bee22e409f96e93d7e117393172aae2d8a571e03ac9c9eb76fac45af8e5130c81c46a35ce411e5fbc1191a0a52eff69f2445df4f9b17ad2b417be66c3710", "51f0bebf7e3b9d92fc49741779363cfe"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := CMAC(rfc4493Key, mustHex(t, tt.msg))
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got[:], mustHex(t, tt.want)) {
				t.Errorf("CMAC = %x, want %s", got, tt.want)
			}
		})
	}
}

func TestEncryptFRMPayloadRoundTrip(t *testing.T) {
	key := AES128Key{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16}
	payload := []byte("temperature=23.4;humidity=67;seq=99")
	enc, err := EncryptFRMPayload(key, 0x26011BDA, 42, DirUplink, payload)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(enc, payload) {
		t.Error("encryption left payload unchanged")
	}
	dec, err := EncryptFRMPayload(key, 0x26011BDA, 42, DirUplink, enc)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dec, payload) {
		t.Errorf("round trip failed: %q", dec)
	}
}

func TestEncryptFRMPayloadDependsOnCounterAndAddr(t *testing.T) {
	key := AES128Key{9}
	payload := []byte("constant payload")
	a, _ := EncryptFRMPayload(key, 1, 1, DirUplink, payload)
	b, _ := EncryptFRMPayload(key, 1, 2, DirUplink, payload)
	c, _ := EncryptFRMPayload(key, 2, 1, DirUplink, payload)
	d, _ := EncryptFRMPayload(key, 1, 1, DirDownlink, payload)
	if bytes.Equal(a, b) || bytes.Equal(a, c) || bytes.Equal(a, d) {
		t.Error("keystream must depend on counter, address, and direction")
	}
}

func TestEncryptFRMPayloadProperty(t *testing.T) {
	f := func(key AES128Key, addr, cnt uint32, payload []byte) bool {
		if len(payload) > 222 {
			payload = payload[:222]
		}
		enc, err := EncryptFRMPayload(key, addr, cnt, DirUplink, payload)
		if err != nil {
			return false
		}
		dec, err := EncryptFRMPayload(key, addr, cnt, DirUplink, enc)
		return err == nil && bytes.Equal(dec, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestMICRoundTripAndTamper(t *testing.T) {
	key := AES128Key{7, 7, 7}
	msg := []byte{0x40, 1, 2, 3, 4, 0x80, 5, 0, 10, 0xAA, 0xBB}
	mic, err := ComputeMIC(key, 0x04030201, 5, DirUplink, msg)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyMIC(key, 0x04030201, 5, DirUplink, msg, mic); err != nil {
		t.Errorf("valid MIC rejected: %v", err)
	}
	// Tampered message.
	tampered := append([]byte(nil), msg...)
	tampered[9] ^= 1
	if err := VerifyMIC(key, 0x04030201, 5, DirUplink, tampered, mic); err == nil {
		t.Error("tampered message accepted")
	}
	// Wrong counter (prevents cross-counter replays of modified frames).
	if err := VerifyMIC(key, 0x04030201, 6, DirUplink, msg, mic); err == nil {
		t.Error("wrong counter accepted")
	}
	// Wrong key.
	if err := VerifyMIC(AES128Key{8}, 0x04030201, 5, DirUplink, msg, mic); err == nil {
		t.Error("wrong key accepted")
	}
}

func TestMICDiffersAcrossDirections(t *testing.T) {
	key := AES128Key{1}
	msg := []byte("same bytes")
	up, _ := ComputeMIC(key, 1, 1, DirUplink, msg)
	down, _ := ComputeMIC(key, 1, 1, DirDownlink, msg)
	if up == down {
		t.Error("MIC must bind direction")
	}
}
