package lorawan

import (
	"errors"
	"fmt"
)

// MType is the LoRaWAN MAC message type.
type MType byte

// LoRaWAN 1.0.2 message types.
const (
	MTypeJoinRequest MType = iota
	MTypeJoinAccept
	MTypeUnconfirmedUp
	MTypeUnconfirmedDown
	MTypeConfirmedUp
	MTypeConfirmedDown
	MTypeRFU
	MTypeProprietary
)

// IsUplink reports whether the message type travels device → gateway.
func (m MType) IsUplink() bool {
	return m == MTypeJoinRequest || m == MTypeUnconfirmedUp || m == MTypeConfirmedUp
}

// Frame parsing errors.
var (
	ErrFrameTooShort = errors.New("lorawan: frame too short")
	ErrBadMajor      = errors.New("lorawan: unsupported major version")
)

// FCtrl is the frame-control byte of the FHDR.
type FCtrl struct {
	ADR       bool
	ADRAckReq bool
	ACK       bool
	FPending  bool
	FOptsLen  int
}

func (f FCtrl) byteValue() byte {
	var b byte
	if f.ADR {
		b |= 0x80
	}
	if f.ADRAckReq {
		b |= 0x40
	}
	if f.ACK {
		b |= 0x20
	}
	if f.FPending {
		b |= 0x10
	}
	return b | byte(f.FOptsLen&0x0F)
}

func parseFCtrl(b byte) FCtrl {
	return FCtrl{
		ADR:       b&0x80 != 0,
		ADRAckReq: b&0x40 != 0,
		ACK:       b&0x20 != 0,
		FPending:  b&0x10 != 0,
		FOptsLen:  int(b & 0x0F),
	}
}

// MACFrame is a parsed LoRaWAN data frame (PHYPayload).
type MACFrame struct {
	MType   MType
	DevAddr uint32
	FCtrl   FCtrl
	// FCnt is the 16-bit on-air frame counter.
	FCnt uint16
	// FOpts carries piggybacked MAC commands (0-15 bytes).
	FOpts []byte
	// FPort distinguishes application ports; port 0 carries MAC commands.
	// -1 means absent (no FRMPayload).
	FPort int
	// FRMPayload is the (encrypted, on-air) application payload.
	FRMPayload []byte
	// MIC is the 4-byte message integrity code.
	MIC [4]byte
}

// Marshal serializes the frame to its on-air PHYPayload byte layout:
// MHDR | DevAddr | FCtrl | FCnt | FOpts | FPort | FRMPayload | MIC.
func (f *MACFrame) Marshal() ([]byte, error) {
	if len(f.FOpts) > 15 {
		return nil, fmt.Errorf("lorawan: FOpts too long (%d)", len(f.FOpts))
	}
	fc := f.FCtrl
	fc.FOptsLen = len(f.FOpts)
	out := make([]byte, 0, 12+len(f.FOpts)+1+len(f.FRMPayload)+4)
	out = append(out, byte(f.MType)<<5) // major 0
	var addr [4]byte
	putUint32LE(addr[:], f.DevAddr)
	out = append(out, addr[:]...)
	out = append(out, fc.byteValue())
	out = append(out, byte(f.FCnt), byte(f.FCnt>>8))
	out = append(out, f.FOpts...)
	if f.FPort >= 0 {
		out = append(out, byte(f.FPort))
		out = append(out, f.FRMPayload...)
	}
	out = append(out, f.MIC[:]...)
	return out, nil
}

// macPayload returns the byte range covered by the MIC (everything except
// the trailing MIC itself).
func (f *MACFrame) macPayload() ([]byte, error) {
	full, err := f.Marshal()
	if err != nil {
		return nil, err
	}
	return full[:len(full)-4], nil
}

// Sign computes and stores the frame MIC using the network session key.
func (f *MACFrame) Sign(nwkSKey AES128Key) error {
	msg, err := f.macPayload()
	if err != nil {
		return err
	}
	dir := DirDownlink
	if f.MType.IsUplink() {
		dir = DirUplink
	}
	mic, err := ComputeMIC(nwkSKey, f.DevAddr, uint32(f.FCnt), dir, msg)
	if err != nil {
		return err
	}
	f.MIC = mic
	return nil
}

// Verify checks the stored MIC against the network session key.
func (f *MACFrame) Verify(nwkSKey AES128Key) error {
	msg, err := f.macPayload()
	if err != nil {
		return err
	}
	dir := DirDownlink
	if f.MType.IsUplink() {
		dir = DirUplink
	}
	return VerifyMIC(nwkSKey, f.DevAddr, uint32(f.FCnt), dir, msg, f.MIC)
}

// ParseFrame parses an on-air PHYPayload into a MACFrame. It does not
// verify the MIC; call Verify for that.
func ParseFrame(data []byte) (*MACFrame, error) {
	// MHDR(1) + DevAddr(4) + FCtrl(1) + FCnt(2) + MIC(4).
	if len(data) < 12 {
		return nil, fmt.Errorf("%w: %d bytes", ErrFrameTooShort, len(data))
	}
	mhdr := data[0]
	if mhdr&0x03 != 0 {
		return nil, fmt.Errorf("%w: major %d", ErrBadMajor, mhdr&0x03)
	}
	f := &MACFrame{MType: MType(mhdr >> 5)}
	f.DevAddr = uint32LE(data[1:5])
	f.FCtrl = parseFCtrl(data[5])
	f.FCnt = uint16(data[6]) | uint16(data[7])<<8
	at := 8
	if at+f.FCtrl.FOptsLen+4 > len(data) {
		return nil, fmt.Errorf("%w: FOpts overruns frame", ErrFrameTooShort)
	}
	if f.FCtrl.FOptsLen > 0 {
		f.FOpts = append([]byte(nil), data[at:at+f.FCtrl.FOptsLen]...)
		at += f.FCtrl.FOptsLen
	}
	rest := data[at : len(data)-4]
	f.FPort = -1
	if len(rest) > 0 {
		f.FPort = int(rest[0])
		f.FRMPayload = append([]byte(nil), rest[1:]...)
	}
	copy(f.MIC[:], data[len(data)-4:])
	return f, nil
}
