package lorawan

import (
	"errors"
	"testing"
	"testing/quick"

	"softlora/internal/lora"
)

var testAppKey = AES128Key{0xA0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 0xAF}

func TestJoinRequestMarshalParse(t *testing.T) {
	req := &JoinRequest{
		AppEUI:   EUI64{1, 2, 3, 4, 5, 6, 7, 8},
		DevEUI:   EUI64{8, 7, 6, 5, 4, 3, 2, 1},
		DevNonce: 0xBEEF,
	}
	if err := req.Sign(testAppKey); err != nil {
		t.Fatal(err)
	}
	got, err := ParseJoinRequest(req.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.AppEUI != req.AppEUI || got.DevEUI != req.DevEUI || got.DevNonce != req.DevNonce {
		t.Errorf("round trip mismatch: %+v", got)
	}
	if err := got.Verify(testAppKey); err != nil {
		t.Errorf("MIC verify failed: %v", err)
	}
}

func TestJoinRequestTamperDetected(t *testing.T) {
	req := &JoinRequest{DevNonce: 1}
	if err := req.Sign(testAppKey); err != nil {
		t.Fatal(err)
	}
	raw := req.Marshal()
	raw[10] ^= 1
	got, err := ParseJoinRequest(raw)
	if err != nil {
		t.Fatal(err)
	}
	if err := got.Verify(testAppKey); !errors.Is(err, ErrBadMIC) {
		t.Errorf("err = %v, want ErrBadMIC", err)
	}
}

func TestParseJoinRequestWrongLength(t *testing.T) {
	if _, err := ParseJoinRequest(make([]byte, 10)); !errors.Is(err, ErrJoinTooShort) {
		t.Errorf("err = %v", err)
	}
}

func TestDeriveSessionKeysDeterministicAndDistinct(t *testing.T) {
	nwk1, app1, err := DeriveSessionKeys(testAppKey, 7, 0x13, 0x42)
	if err != nil {
		t.Fatal(err)
	}
	nwk2, app2, err := DeriveSessionKeys(testAppKey, 7, 0x13, 0x42)
	if err != nil {
		t.Fatal(err)
	}
	if nwk1 != nwk2 || app1 != app2 {
		t.Error("derivation must be deterministic")
	}
	if nwk1 == app1 {
		t.Error("NwkSKey and AppSKey must differ")
	}
	// Different nonce → different keys.
	nwk3, _, err := DeriveSessionKeys(testAppKey, 8, 0x13, 0x42)
	if err != nil {
		t.Fatal(err)
	}
	if nwk3 == nwk1 {
		t.Error("AppNonce must diversify keys")
	}
}

func TestOTAAEndToEnd(t *testing.T) {
	js := NewJoinServer(testAppKey, 0x000013, 0x26010000)
	appEUI := EUI64{1}
	devEUI := EUI64{2}
	session, err := JoinDevice(js, testAppKey, appEUI, devEUI, 100)
	if err != nil {
		t.Fatal(err)
	}
	if session.DevAddr != 0x26010000 {
		t.Errorf("addr = %08x", session.DevAddr)
	}
	// The joined session must carry working crypto end to end.
	ns := NewNetworkServer()
	ns.Register(session)
	dev := NewDevice(session, lora.DefaultParams(7))
	f, err := dev.BuildUplink(10, []byte("joined!"))
	if err != nil {
		t.Fatal(err)
	}
	raw, err := f.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	_, _, payload, err := ns.HandleUplink(raw)
	if err != nil {
		t.Fatal(err)
	}
	if string(payload) != "joined!" {
		t.Errorf("payload = %q", payload)
	}
}

func TestOTAARejectsNonceReplay(t *testing.T) {
	js := NewJoinServer(testAppKey, 1, 0x26010000)
	devEUI := EUI64{9}
	if _, err := JoinDevice(js, testAppKey, EUI64{1}, devEUI, 55); err != nil {
		t.Fatal(err)
	}
	if _, err := JoinDevice(js, testAppKey, EUI64{1}, devEUI, 55); !errors.Is(err, ErrNonceReplay) {
		t.Errorf("err = %v, want ErrNonceReplay", err)
	}
	// A fresh nonce joins fine and gets a new address.
	s, err := JoinDevice(js, testAppKey, EUI64{1}, devEUI, 56)
	if err != nil {
		t.Fatal(err)
	}
	if s.DevAddr != 0x26010001 {
		t.Errorf("addr = %08x", s.DevAddr)
	}
}

func TestOTAARejectsWrongKey(t *testing.T) {
	js := NewJoinServer(testAppKey, 1, 1)
	wrongKey := AES128Key{0xFF}
	req := &JoinRequest{DevEUI: EUI64{3}, DevNonce: 1}
	if err := req.Sign(wrongKey); err != nil {
		t.Fatal(err)
	}
	if _, err := js.HandleJoin(req.Marshal()); !errors.Is(err, ErrBadMIC) {
		t.Errorf("err = %v, want ErrBadMIC", err)
	}
}

func TestJoinRequestProperty(t *testing.T) {
	f := func(app, dev EUI64, nonce uint16) bool {
		req := &JoinRequest{AppEUI: app, DevEUI: dev, DevNonce: nonce}
		if err := req.Sign(testAppKey); err != nil {
			return false
		}
		got, err := ParseJoinRequest(req.Marshal())
		if err != nil {
			return false
		}
		return got.AppEUI == app && got.DevEUI == dev &&
			got.DevNonce == nonce && got.Verify(testAppKey) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
