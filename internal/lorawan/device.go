package lorawan

import (
	"errors"
	"fmt"

	"softlora/internal/lora"
)

// Class A receive-window delays (LoRaWAN 1.0.2 regional defaults, EU868).
const (
	RX1Delay = 1.0 // seconds after uplink end
	RX2Delay = 2.0 // seconds after uplink end
)

// Session is an ABP (activation-by-personalization) device session.
type Session struct {
	DevAddr uint32
	NwkSKey AES128Key
	AppSKey AES128Key
}

// Device is a Class A LoRaWAN end device: it buffers sensor data, respects
// the duty cycle, and emits signed, encrypted uplinks.
type Device struct {
	Session Session
	Params  lora.Params
	// DutyCycle is the regulatory duty-cycle limit (0.01 for EU868).
	DutyCycle float64

	fCntUp       uint32
	nextTxTime   float64
	airtimeTotal float64
}

// Device errors.
var (
	ErrDutyCycle = errors.New("lorawan: duty cycle budget exceeded")
)

// NewDevice builds a Class A device with the EU868 1% duty cycle.
func NewDevice(s Session, p lora.Params) *Device {
	return &Device{Session: s, Params: p, DutyCycle: 0.01}
}

// FCntUp returns the next uplink frame counter value.
func (d *Device) FCntUp() uint32 { return d.fCntUp }

// BuildUplink constructs, encrypts and signs an unconfirmed uplink carrying
// payload on the given port, consuming one frame counter value.
func (d *Device) BuildUplink(port int, payload []byte) (*MACFrame, error) {
	if port < 1 || port > 223 {
		return nil, fmt.Errorf("lorawan: application port %d out of [1, 223]", port)
	}
	enc, err := EncryptFRMPayload(d.Session.AppSKey, d.Session.DevAddr, d.fCntUp, DirUplink, payload)
	if err != nil {
		return nil, err
	}
	f := &MACFrame{
		MType:      MTypeUnconfirmedUp,
		DevAddr:    d.Session.DevAddr,
		FCnt:       uint16(d.fCntUp),
		FPort:      port,
		FRMPayload: enc,
	}
	if err := f.Sign(d.Session.NwkSKey); err != nil {
		return nil, err
	}
	d.fCntUp++
	return f, nil
}

// Transmit checks the duty-cycle budget at time now (seconds) for a frame
// of the given on-air payload length and, if allowed, accounts for the
// transmission and returns the airtime. The next permitted transmit time is
// updated per the ETSI per-transmission rule Tair*(1/dc − 1).
func (d *Device) Transmit(now float64, payloadLen int) (airtime float64, err error) {
	if now < d.nextTxTime {
		return 0, fmt.Errorf("%w: next slot at %.3f s", ErrDutyCycle, d.nextTxTime)
	}
	airtime = d.Params.Airtime(payloadLen)
	d.airtimeTotal += airtime
	if d.DutyCycle > 0 && d.DutyCycle < 1 {
		d.nextTxTime = now + airtime + d.Params.DutyCycleWait(payloadLen, d.DutyCycle)
	} else {
		d.nextTxTime = now + airtime
	}
	return airtime, nil
}

// NextTxTime returns the earliest time the device may transmit again.
func (d *Device) NextTxTime() float64 { return d.nextTxTime }

// TotalAirtime returns the cumulative airtime consumed.
func (d *Device) TotalAirtime() float64 { return d.airtimeTotal }

// RXWindows returns the Class A receive-window open times for an uplink
// that ended at uplinkEnd.
func (d *Device) RXWindows(uplinkEnd float64) (rx1, rx2 float64) {
	return uplinkEnd + RX1Delay, uplinkEnd + RX2Delay
}

// NetworkServer validates uplinks the way a LoRaWAN network server does:
// MIC verification plus a strictly-increasing frame-counter check. It is
// deliberately faithful to the spec so the frame delay attack's success
// against it is meaningful.
type NetworkServer struct {
	sessions map[uint32]Session
	lastFCnt map[uint32]uint32
	seen     map[uint32]bool
}

// NewNetworkServer builds an empty server.
func NewNetworkServer() *NetworkServer {
	return &NetworkServer{
		sessions: make(map[uint32]Session),
		lastFCnt: make(map[uint32]uint32),
		seen:     make(map[uint32]bool),
	}
}

// Register adds a device session.
func (ns *NetworkServer) Register(s Session) { ns.sessions[s.DevAddr] = s }

// Validation errors.
var (
	ErrUnknownDevice = errors.New("lorawan: unknown device address")
	ErrCounterReplay = errors.New("lorawan: frame counter not increasing (classic replay)")
)

// HandleUplink verifies and decrypts an on-air uplink. It returns the
// decrypted application payload. A bit-exact *delayed* frame (the frame
// delay attack) passes both checks because its counter has not been seen
// yet — the property the paper exploits.
func (ns *NetworkServer) HandleUplink(phyPayload []byte) (devAddr uint32, fCnt uint16, payload []byte, err error) {
	f, err := ParseFrame(phyPayload)
	if err != nil {
		return 0, 0, nil, err
	}
	s, okSess := ns.sessions[f.DevAddr]
	if !okSess {
		return 0, 0, nil, fmt.Errorf("%w: %08x", ErrUnknownDevice, f.DevAddr)
	}
	if err := f.Verify(s.NwkSKey); err != nil {
		return 0, 0, nil, err
	}
	if ns.seen[f.DevAddr] && f.FCnt <= uint16(ns.lastFCnt[f.DevAddr]) {
		return 0, 0, nil, fmt.Errorf("%w: got %d, last %d", ErrCounterReplay, f.FCnt, ns.lastFCnt[f.DevAddr])
	}
	ns.lastFCnt[f.DevAddr] = uint32(f.FCnt)
	ns.seen[f.DevAddr] = true
	dec, err := EncryptFRMPayload(s.AppSKey, f.DevAddr, uint32(f.FCnt), DirUplink, f.FRMPayload)
	if err != nil {
		return 0, 0, nil, err
	}
	return f.DevAddr, f.FCnt, dec, nil
}
