package lorawan

import (
	"errors"
	"fmt"

	"softlora/internal/lora"
)

// RoundTripDetector implements the §4.4 strawman the paper argues against:
// detect frame delay attacks by measuring the round-trip time of a
// downlink/uplink exchange and comparing it against a threshold. It works —
// but every check consumes a downlink slot on the gateway (which can
// transmit only one downlink at a time, Class A) and an extra uplink from
// the device, doubling the communication overhead that the FB-based
// SoftLoRa detector avoids entirely.
type RoundTripDetector struct {
	// Params is the channel configuration (sets the exchange airtime).
	Params lora.Params
	// DeviceTurnaround is the device's fixed RX→TX processing time in
	// seconds (firmware-dependent; milliseconds on commodity stacks).
	DeviceTurnaround float64
	// MarginSeconds is the slack added to the expected round trip before
	// declaring an attack (covers clock and scheduling jitter).
	MarginSeconds float64

	// busyUntil serializes the gateway's single downlink path.
	busyUntil float64
}

// ErrDownlinkBusy is returned when a probe is requested while the gateway's
// downlink path is still occupied — the serialization §4.4 points out.
var ErrDownlinkBusy = errors.New("lorawan: gateway downlink busy")

// ExpectedRTT returns the attack-free round-trip time for a probe with the
// given one-way propagation delay and probe payload length: downlink
// airtime + propagation + device turnaround + uplink airtime + propagation.
func (r *RoundTripDetector) ExpectedRTT(propagationDelay float64, probeLen int) float64 {
	airtime := r.Params.Airtime(probeLen)
	return 2*airtime + 2*propagationDelay + r.DeviceTurnaround
}

// Probe runs one round-trip check starting at time now. attackDelay is the
// extra delay an adversary injects into the exchange (0 without attack).
// It returns whether the exchange is flagged and when the downlink path
// frees up.
func (r *RoundTripDetector) Probe(now, propagationDelay float64, probeLen int, attackDelay float64) (flagged bool, freeAt float64, err error) {
	if now < r.busyUntil {
		return false, r.busyUntil, fmt.Errorf("%w until %.3f s", ErrDownlinkBusy, r.busyUntil)
	}
	expected := r.ExpectedRTT(propagationDelay, probeLen)
	measured := expected + attackDelay
	r.busyUntil = now + expected + attackDelay
	margin := r.MarginSeconds
	if margin <= 0 {
		margin = 0.050
	}
	return measured > expected+margin, r.busyUntil, nil
}

// OverheadFactor returns how much the per-datum communication cost grows
// when every uplink is paired with an RTT probe: the device transmits twice
// (data + probe reply) and the gateway once, versus one uplink for the
// FB-based detector.
func (r *RoundTripDetector) OverheadFactor() float64 { return 2 }

// CheckedFramesPerHour returns how many RTT-verified data frames per hour
// the duty cycle permits, versus the unchecked budget.
func (r *RoundTripDetector) CheckedFramesPerHour(payloadLen int, dutyCycle float64) (checked, unchecked int) {
	unchecked = r.Params.MaxFramesPerHour(payloadLen, dutyCycle)
	checked = int(float64(unchecked) / r.OverheadFactor())
	return checked, unchecked
}
