// Package timestamp implements the paper's synchronization-free uplink data
// timestamping (§3.2) and the synchronization-based comparator.
//
// Sync-free operation: the end device records each datum's time of interest
// with its unsynchronized local clock; right before transmitting it rewrites
// those times as elapsed-times-up-to-now (18 bits at 1 ms resolution) and
// sends immediately. The gateway, which has a GPS clock, reconstructs
// global timestamps as (frame arrival time − elapsed), relying on the
// near-zero one-hop propagation delay. No synchronization protocol and no
// absolute timestamps on air.
package timestamp

import (
	"errors"
	"fmt"

	"softlora/internal/clock"
)

// Elapsed-time encoding parameters from §3.2: 18 bits at 1 ms resolution
// covers 262.144 s ≈ 4.4 minutes of buffering, enough for the 4.1-minute
// bound at 40 ppm drift and 10 ms error budget.
const (
	ElapsedBits       = 18
	ElapsedResolution = 1e-3 // seconds
	MaxElapsedSeconds = (1<<ElapsedBits - 1) * ElapsedResolution
)

// Encoding errors.
var (
	ErrElapsedNegative = errors.New("timestamp: negative elapsed time")
	ErrElapsedOverflow = errors.New("timestamp: elapsed time exceeds 18-bit range")
)

// EncodeElapsed quantizes an elapsed time in seconds to the 18-bit wire
// value.
func EncodeElapsed(seconds float64) (uint32, error) {
	if seconds < 0 {
		return 0, fmt.Errorf("%w: %g", ErrElapsedNegative, seconds)
	}
	v := uint32(seconds/ElapsedResolution + 0.5)
	if v >= 1<<ElapsedBits {
		return 0, fmt.Errorf("%w: %g s", ErrElapsedOverflow, seconds)
	}
	return v, nil
}

// DecodeElapsed converts a wire value back to seconds.
func DecodeElapsed(v uint32) float64 {
	return float64(v&(1<<ElapsedBits-1)) * ElapsedResolution
}

// Record is one sensor datum buffered on the device.
type Record struct {
	// LocalTime is the device-clock reading when the datum was taken.
	LocalTime float64
	// Value is the application datum.
	Value []byte
}

// Device implements the sync-free device side: it records data with its
// drifting local clock and converts the records' times to elapsed times at
// transmission.
type Device struct {
	// Clock is the device's free-running oscillator.
	Clock *clock.Oscillator

	buffer []Record
}

// Take buffers a datum observed at the given true global time, stamped with
// the local clock.
func (d *Device) Take(globalNow float64, value []byte) {
	d.buffer = append(d.buffer, Record{
		LocalTime: d.Clock.LocalAt(globalNow),
		Value:     value,
	})
}

// Pending returns the number of buffered records.
func (d *Device) Pending() int { return len(d.buffer) }

// FrameRecord is one record as shipped in an uplink frame.
type FrameRecord struct {
	// Elapsed is the 18-bit elapsed-time value.
	Elapsed uint32
	// Value is the application datum.
	Value []byte
}

// Flush converts every buffered record's local time to an elapsed time
// relative to the local clock at the (true global) transmission instant,
// clearing the buffer. Records older than the 18-bit range are reported as
// errors and dropped, which enforces the §3.2 buffering bound.
func (d *Device) Flush(globalNow float64) ([]FrameRecord, error) {
	nowLocal := d.Clock.LocalAt(globalNow)
	out := make([]FrameRecord, 0, len(d.buffer))
	var firstErr error
	for _, r := range d.buffer {
		elapsed := nowLocal - r.LocalTime
		if elapsed < 0 {
			elapsed = 0
		}
		v, err := EncodeElapsed(elapsed)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		out = append(out, FrameRecord{Elapsed: v, Value: r.Value})
	}
	d.buffer = d.buffer[:0]
	return out, firstErr
}

// Reconstruct computes the global timestamp of a record from the gateway's
// frame arrival time: arrival − elapsed. This is the gateway-side half of
// the sync-free scheme; arrivalTime should come from the gateway's GPS
// clock (or, on a SoftLoRa gateway, from the PHY signal timestamp).
func Reconstruct(arrivalTime float64, rec FrameRecord) float64 {
	return arrivalTime - DecodeElapsed(rec.Elapsed)
}

// Overhead compares the two timestamping approaches for §3.2.
type Overhead struct {
	// PayloadBytes is the application payload per frame.
	PayloadBytes int
	// TimestampBytes is the absolute-timestamp size used by the sync-based
	// approach (the paper cites 8 bytes).
	TimestampBytes int
}

// SyncBasedPayloadFraction returns the fraction of the payload spent on an
// absolute timestamp (paper: 8 of 30 bytes ≈ 27%).
func (o Overhead) SyncBasedPayloadFraction() float64 {
	if o.PayloadBytes <= 0 {
		return 0
	}
	return float64(o.TimestampBytes) / float64(o.PayloadBytes)
}

// SyncFreePayloadBits returns the per-record time cost of the sync-free
// scheme (18 bits vs 64 for an absolute stamp).
func (o Overhead) SyncFreePayloadBits() int { return ElapsedBits }

// TimestampingError bounds the end-to-end sync-free timestamp error.
type TimestampingError struct {
	// BufferTime is how long the record sat on the device (seconds).
	BufferTime float64
	// DriftPPM is the device clock drift.
	DriftPPM float64
	// RadioUncertainty is the TX-request→emission plus gateway arrival
	// timestamping uncertainty (≈3 ms on commodity stacks per the paper's
	// citation [9]; microseconds with SoftLoRa PHY timestamping).
	RadioUncertainty float64
	// PropagationDelay is the one-hop flight time (microseconds).
	PropagationDelay float64
}

// Bound returns the worst-case absolute timestamp error.
func (e TimestampingError) Bound() float64 {
	drift := e.BufferTime * e.DriftPPM * 1e-6
	if drift < 0 {
		drift = -drift
	}
	return drift + e.RadioUncertainty + e.PropagationDelay + ElapsedResolution/2
}
