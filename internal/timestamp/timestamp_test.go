package timestamp

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"softlora/internal/clock"
)

func TestEncodeDecodeElapsed(t *testing.T) {
	tests := []struct {
		in   float64
		want uint32
	}{
		{0, 0}, {0.001, 1}, {1.0, 1000}, {262.143, 262143},
	}
	for _, tt := range tests {
		got, err := EncodeElapsed(tt.in)
		if err != nil {
			t.Fatalf("EncodeElapsed(%f): %v", tt.in, err)
		}
		if got != tt.want {
			t.Errorf("EncodeElapsed(%f) = %d, want %d", tt.in, got, tt.want)
		}
		if back := DecodeElapsed(got); math.Abs(back-tt.in) > ElapsedResolution/2 {
			t.Errorf("decode(%d) = %f, want ~%f", got, back, tt.in)
		}
	}
}

func TestEncodeElapsedErrors(t *testing.T) {
	if _, err := EncodeElapsed(-1); !errors.Is(err, ErrElapsedNegative) {
		t.Errorf("err = %v", err)
	}
	if _, err := EncodeElapsed(MaxElapsedSeconds + 1); !errors.Is(err, ErrElapsedOverflow) {
		t.Errorf("err = %v", err)
	}
}

func TestEncodeElapsedProperty(t *testing.T) {
	f := func(ms uint32) bool {
		ms %= 1 << ElapsedBits
		v, err := EncodeElapsed(float64(ms) * ElapsedResolution)
		return err == nil && v == ms
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestMaxElapsedMatchesPaper(t *testing.T) {
	// 18 bits at 1 ms covers the paper's 4.1-minute buffering bound.
	if MaxElapsedSeconds < 4.1*60 {
		t.Errorf("max elapsed %f s cannot cover 4.1 minutes", MaxElapsedSeconds)
	}
	if MaxElapsedSeconds > 5*60 {
		t.Errorf("max elapsed %f s is wastefully large", MaxElapsedSeconds)
	}
}

func TestDeviceFlushAndReconstruct(t *testing.T) {
	osc := &clock.Oscillator{DriftPPM: 40}
	d := &Device{Clock: osc}
	// Data taken at global t=100 and t=130; transmitted at t=160.
	d.Take(100, []byte("a"))
	d.Take(130, []byte("b"))
	if d.Pending() != 2 {
		t.Fatalf("pending = %d", d.Pending())
	}
	recs, err := d.Flush(160)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || d.Pending() != 0 {
		t.Fatalf("flush returned %d records, pending %d", len(recs), d.Pending())
	}
	// The gateway receives the frame essentially at t=160 (propagation is
	// microseconds).
	arrival := 160.0
	got0 := Reconstruct(arrival, recs[0])
	got1 := Reconstruct(arrival, recs[1])
	// Error budget: 60 s * 40 ppm = 2.4 ms drift + 0.5 ms quantization.
	if math.Abs(got0-100) > 0.005 {
		t.Errorf("record 0 reconstructed at %f, want ~100", got0)
	}
	if math.Abs(got1-130) > 0.005 {
		t.Errorf("record 1 reconstructed at %f, want ~130", got1)
	}
}

func TestDeviceFlushDropsExpiredRecords(t *testing.T) {
	osc := &clock.Oscillator{}
	d := &Device{Clock: osc}
	d.Take(0, []byte("too old"))
	d.Take(290, []byte("fresh"))
	recs, err := d.Flush(300) // first record is 300 s old > 262.1 s range
	if !errors.Is(err, ErrElapsedOverflow) {
		t.Errorf("err = %v, want overflow", err)
	}
	if len(recs) != 1 || string(recs[0].Value) != "fresh" {
		t.Errorf("recs = %+v", recs)
	}
}

func TestReconstructionErrorGrowsWithBufferTime(t *testing.T) {
	osc := &clock.Oscillator{DriftPPM: 40}
	errAt := func(bufferTime float64) float64 {
		d := &Device{Clock: osc}
		take := 1000.0
		d.Take(take, nil)
		recs, err := d.Flush(take + bufferTime)
		if err != nil {
			t.Fatal(err)
		}
		return math.Abs(Reconstruct(take+bufferTime, recs[0]) - take)
	}
	if errAt(10) >= errAt(200) {
		t.Error("reconstruction error should grow with buffer time")
	}
	// At the 4.1-minute bound the error stays within ~10 ms + quantization.
	if e := errAt(250); e > 0.011 {
		t.Errorf("error at 250 s buffer = %f, want <= ~10.5 ms", e)
	}
}

func TestOverheadPaperNumbers(t *testing.T) {
	// Paper §3.2: 8-byte timestamps in 30-byte payloads consume 27% of
	// effective bandwidth.
	o := Overhead{PayloadBytes: 30, TimestampBytes: 8}
	if frac := o.SyncBasedPayloadFraction(); math.Abs(frac-0.2667) > 0.005 {
		t.Errorf("sync-based fraction = %f, want ~0.267", frac)
	}
	if bits := o.SyncFreePayloadBits(); bits != 18 {
		t.Errorf("sync-free bits = %d, want 18", bits)
	}
	if (Overhead{}).SyncBasedPayloadFraction() != 0 {
		t.Error("degenerate overhead should be 0")
	}
}

func TestTimestampingErrorBound(t *testing.T) {
	// Paper: commodity stack uncertainty ~3 ms dominates; SoftLoRa PHY
	// timestamping removes it.
	commodity := TimestampingError{
		BufferTime:       250,
		DriftPPM:         40,
		RadioUncertainty: 3e-3,
		PropagationDelay: 3.57e-6,
	}
	if b := commodity.Bound(); b < 0.013 || b > 0.015 {
		t.Errorf("commodity bound = %f, want ~13.5 ms", b)
	}
	softlora := TimestampingError{
		BufferTime:       0, // immediate transmission
		DriftPPM:         40,
		RadioUncertainty: 20e-6,
		PropagationDelay: 3.57e-6,
	}
	if b := softlora.Bound(); b > 0.001 {
		t.Errorf("SoftLoRa bound = %f, want sub-ms", b)
	}
	neg := TimestampingError{BufferTime: -10, DriftPPM: 40}
	if neg.Bound() < 0 {
		t.Error("bound must be non-negative")
	}
}

func TestFlushNegativeElapsedClamped(t *testing.T) {
	// A record "taken in the future" (clock adjustment) clamps to 0.
	osc := &clock.Oscillator{}
	d := &Device{Clock: osc}
	d.Take(100, nil)
	recs, err := d.Flush(99)
	if err != nil {
		t.Fatal(err)
	}
	if recs[0].Elapsed != 0 {
		t.Errorf("elapsed = %d, want 0", recs[0].Elapsed)
	}
}
