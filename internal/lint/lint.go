package lint

import (
	"softlora/internal/lint/allocfree"
	"softlora/internal/lint/analysis"
	"softlora/internal/lint/complexlane"
	"softlora/internal/lint/determinism"
	"softlora/internal/lint/hotpath"
	"softlora/internal/lint/lockshard"
	"softlora/internal/lint/poolcheck"
)

// Analyzers returns the full softlora-lint suite, in reporting order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		determinism.Analyzer,
		hotpath.Analyzer,
		allocfree.Analyzer,
		complexlane.Analyzer,
		poolcheck.Analyzer,
		lockshard.Analyzer,
	}
}
