package directive

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

func parseFiles(t *testing.T, files map[string]string) (*token.FileSet, []*ast.File) {
	t.Helper()
	fset := token.NewFileSet()
	var parsed []*ast.File
	for name, src := range files {
		f, err := parser.ParseFile(fset, name, src, parser.ParseComments)
		if err != nil {
			t.Fatalf("parse %s: %v", name, err)
		}
		parsed = append(parsed, f)
	}
	return fset, parsed
}

func index(t *testing.T, files map[string]string) *Index {
	fset, parsed := parseFiles(t, files)
	return NewIndex(fset, parsed)
}

func TestPackageLevelDirective(t *testing.T) {
	ix := index(t, map[string]string{
		"doc.go": "// Package p does things.\n//\n//softlora:deterministic\npackage p\n",
	})
	if !ix.PackageHas("deterministic") {
		t.Error("package directive above the package clause not seen")
	}
	if !ix.PackageHasNonTest("deterministic") {
		t.Error("PackageHasNonTest misses a doc.go directive")
	}
}

func TestPackageDirectiveInTestFileScopesOnlyPackageHas(t *testing.T) {
	ix := index(t, map[string]string{
		"p_test.go": "//softlora:deterministic\npackage p\n",
	})
	if !ix.PackageHas("deterministic") {
		t.Error("PackageHas should see test-file package directives")
	}
	if ix.PackageHasNonTest("deterministic") {
		t.Error("PackageHasNonTest must ignore directives in _test.go files")
	}
}

func TestDirectiveBelowPackageClauseIsNotPackageLevel(t *testing.T) {
	ix := index(t, map[string]string{
		"a.go": "package p\n\n//softlora:deterministic\nfunc f() {}\n",
	})
	if ix.PackageHas("deterministic") {
		t.Error("a function-level directive counted as package-level")
	}
}

func TestLeadingSpaceDoesNotMatch(t *testing.T) {
	// "// softlora:" (space after the slashes) is prose, not a directive —
	// same rule as //go: directives.
	ix := index(t, map[string]string{
		"a.go": "package p\n\n// softlora:hotpath\nfunc f() {}\n\nfunc g() {\n\t_ = 1 // softlora:hotpath-ok not a real hatch\n}\n",
	})
	if len(ix.byName["hotpath"]) != 0 {
		t.Error("spaced comment parsed as a directive")
	}
	if len(ix.byName["hotpath-ok"]) != 0 {
		t.Error("spaced trailing comment parsed as a directive")
	}
}

func TestBareNameAndArgs(t *testing.T) {
	ix := index(t, map[string]string{
		"a.go": "package p\n\nfunc f() {\n\t_ = 1 //softlora:nondeterministic-ok map feeds a sorted encoder\n}\n",
	})
	ds := ix.byName["nondeterministic-ok"]
	if len(ds) != 1 {
		t.Fatalf("directives = %v", ds)
	}
	if ds[0].Args != "map feeds a sorted encoder" {
		t.Errorf("Args = %q", ds[0].Args)
	}
	// A bare "//softlora:" with no name is not a directive.
	ix2 := index(t, map[string]string{"a.go": "package p\n\n//softlora:\nfunc f() {}\n"})
	if len(ix2.all) != 0 {
		t.Errorf("nameless directive parsed: %v", ix2.all)
	}
}

func TestDirectiveOnLastLineOfFile(t *testing.T) {
	// No trailing newline after the comment: the file ends at the
	// directive.
	ix := index(t, map[string]string{
		"a.go": "package p\n\nvar x = 1 //softlora:complex64-ok fixture tail",
	})
	ds := ix.byName["complex64-ok"]
	if len(ds) != 1 {
		t.Fatalf("last-line directive not parsed: %v", ix.all)
	}
	if !ix.OKAt(ds[0].Pos, "complex64-ok") {
		t.Error("OKAt misses a directive on its own line")
	}
}

func TestGroupedDeclDirectives(t *testing.T) {
	src := `package p

var (
	a = 1 //softlora:hotpath-ok grouped var trailing comment
	//softlora:hotpath-ok line above b
	b = 2
)

const (
	//softlora:complex64-ok grouped const doc
	C = 3
)
`
	fset, files := parseFiles(t, map[string]string{"a.go": src})
	ix := NewIndex(fset, files)
	if n := len(ix.byName["hotpath-ok"]); n != 2 {
		t.Fatalf("grouped var directives = %d, want 2", n)
	}
	if n := len(ix.byName["complex64-ok"]); n != 1 {
		t.Fatalf("grouped const directives = %d, want 1", n)
	}

	// OKAt: the hatch on a's line silences a's position; the hatch above b
	// silences b's.
	var aPos, bPos token.Pos
	ast.Inspect(files[0], func(n ast.Node) bool {
		if vs, ok := n.(*ast.ValueSpec); ok {
			switch vs.Names[0].Name {
			case "a":
				aPos = vs.Pos()
			case "b":
				bPos = vs.Pos()
			}
		}
		return true
	})
	if !ix.OKAt(aPos, "hotpath-ok") {
		t.Error("same-line hatch in a grouped var decl not honored")
	}
	if !ix.OKAt(bPos, "hotpath-ok") {
		t.Error("line-above hatch in a grouped var decl not honored")
	}
	if ix.OKAt(aPos, "complex64-ok") {
		t.Error("hatch name leaked across directives")
	}
}

func TestCRLFLineEndings(t *testing.T) {
	src := "package p\r\n\r\n//softlora:hotpath\r\nfunc f() {\r\n\t_ = 1 //softlora:hotpath-ok crlf trailing\r\n}\r\n"
	fset, files := parseFiles(t, map[string]string{"a.go": src})
	ix := NewIndex(fset, files)
	if len(ix.byName["hotpath"]) != 1 {
		t.Error("directive not parsed under CRLF line endings")
	}
	ds := ix.byName["hotpath-ok"]
	if len(ds) != 1 {
		t.Fatal("trailing directive not parsed under CRLF line endings")
	}
	if ds[0].Args != "crlf trailing" {
		t.Errorf("CRLF args carry the carriage return: %q", ds[0].Args)
	}
	// FuncHas through the parsed doc comment.
	for _, d := range files[0].Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == "f" {
			if !FuncHas(fd, "hotpath") {
				t.Error("FuncHas misses a CRLF doc directive")
			}
		}
	}
}

func TestMethodOnCrossFileReceiver(t *testing.T) {
	// The receiver type lives in one file, the annotated method in
	// another; FuncHas reads only the method's doc, so the split must not
	// matter.
	fset, files := parseFiles(t, map[string]string{
		"type.go":   "package p\n\ntype T struct{}\n",
		"method.go": "package p\n\n//softlora:hotpath\nfunc (t *T) Hot() {}\n",
	})
	ix := NewIndex(fset, files)
	found := false
	for _, f := range files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Name.Name != "Hot" {
				continue
			}
			found = true
			if !FuncHas(fd, "hotpath") {
				t.Error("FuncHas misses a directive on a cross-file receiver method")
			}
		}
	}
	if !found {
		t.Fatal("method decl not found")
	}
	if ix.PackageHas("hotpath") {
		t.Error("method directive counted as package-level")
	}
}

func TestOKAtSameLineAndLineAbove(t *testing.T) {
	src := `package p

func f() {
	_ = 1 //softlora:hotpath-ok same line
	//softlora:hotpath-ok line above
	_ = 2
	_ = 3
}
`
	fset, files := parseFiles(t, map[string]string{"a.go": src})
	ix := NewIndex(fset, files)

	pos := func(line int) token.Pos {
		var p token.Pos
		ast.Inspect(files[0], func(n ast.Node) bool {
			if n != nil && p == token.NoPos && fset.Position(n.Pos()).Line == line {
				if _, ok := n.(*ast.AssignStmt); ok {
					p = n.Pos()
				}
			}
			return true
		})
		return p
	}
	if !ix.OKAt(pos(4), "hotpath-ok") {
		t.Error("same-line hatch not honored")
	}
	if !ix.OKAt(pos(6), "hotpath-ok") {
		t.Error("line-above hatch not honored")
	}
	if ix.OKAt(pos(7), "hotpath-ok") {
		t.Error("hatch reached two lines down")
	}
}
