// Package directive parses the //softlora: comment directives that scope
// and silence the softlora-lint analyzers. A directive is a line comment
// of the form
//
//	//softlora:<name> [argument or justification...]
//
// attached like a //go: directive: no space after the slashes. Three
// attachment points matter to the analyzers:
//
//   - package scope: a directive anywhere in a package's files (by
//     convention in doc.go next to the package clause) opts the whole
//     package into an analyzer — e.g. //softlora:deterministic.
//   - declaration scope: a directive in a FuncDecl's doc comment group
//     marks that function — e.g. //softlora:hotpath — and a directive in
//     a struct field's doc or trailing comment annotates the field —
//     e.g. //softlora:guarded-by mu.
//   - site scope: an escape hatch on the offending line, or the line
//     directly above it, silences one diagnostic — e.g.
//     //softlora:nondeterministic-ok map feeds a sorted encoder.
//
// Escape hatches should carry a justification after the directive name;
// the analyzers do not enforce one, reviewers do.
package directive

import (
	"go/ast"
	"go/token"
	"strings"
)

const prefix = "//softlora:"

// A Directive is one parsed //softlora: comment.
type Directive struct {
	Name string // e.g. "hotpath", "nondeterministic-ok"
	Args string // remainder of the line, trimmed
	Pos  token.Pos
	Line int
	File string
	// PackageLevel marks a directive placed above the file's package
	// clause — the attachment point that opts a whole package in.
	PackageLevel bool
}

// Index holds every //softlora: directive of one package, queryable by
// package, declaration, and line.
type Index struct {
	fset   *token.FileSet
	all    []Directive
	byName map[string][]Directive
	// byFileLine maps file name and line to the directives on that line.
	byFileLine map[string]map[int][]Directive
}

// NewIndex scans files for //softlora: directives.
func NewIndex(fset *token.FileSet, files []*ast.File) *Index {
	ix := &Index{
		fset:       fset,
		byName:     make(map[string][]Directive),
		byFileLine: make(map[string]map[int][]Directive),
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				d, ok := parse(c.Text)
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				d.Pos = c.Pos()
				d.Line = pos.Line
				d.File = pos.Filename
				d.PackageLevel = c.Pos() < f.Package
				ix.all = append(ix.all, d)
				ix.byName[d.Name] = append(ix.byName[d.Name], d)
				lines := ix.byFileLine[d.File]
				if lines == nil {
					lines = make(map[int][]Directive)
					ix.byFileLine[d.File] = lines
				}
				lines[d.Line] = append(lines[d.Line], d)
			}
		}
	}
	return ix
}

func parse(text string) (Directive, bool) {
	if !strings.HasPrefix(text, prefix) {
		return Directive{}, false
	}
	rest := text[len(prefix):]
	name := rest
	args := ""
	if i := strings.IndexAny(rest, " \t"); i >= 0 {
		name, args = rest[:i], strings.TrimSpace(rest[i+1:])
	}
	if name == "" {
		return Directive{}, false
	}
	return Directive{Name: name, Args: args}, true
}

// PackageHas reports whether any file of the package carries the named
// directive above its package clause (the package-wide opt-in position,
// by convention in doc.go).
func (ix *Index) PackageHas(name string) bool {
	for _, d := range ix.byName[name] {
		if d.PackageLevel {
			return true
		}
	}
	return false
}

// PackageHasNonTest is PackageHas restricted to directives living in
// non-_test.go files. Test-variant loads include the package's regular
// files, so a doc.go package directive would otherwise leak its scope
// onto test functions; analyzers use this form for package-wide opt-ins
// so test code participates only through explicit function annotations.
func (ix *Index) PackageHasNonTest(name string) bool {
	for _, d := range ix.byName[name] {
		if d.PackageLevel && !strings.HasSuffix(d.File, "_test.go") {
			return true
		}
	}
	return false
}

// FromComments returns the first directive with the given name in a
// comment group (a FuncDecl doc, a field doc or trailing comment), if any.
func FromComments(cg *ast.CommentGroup, name string) (Directive, bool) {
	if cg == nil {
		return Directive{}, false
	}
	for _, c := range cg.List {
		if d, ok := parse(c.Text); ok && d.Name == name {
			return d, true
		}
	}
	return Directive{}, false
}

// FuncHas reports whether fn's doc comment carries the named directive.
func FuncHas(fn *ast.FuncDecl, name string) bool {
	_, ok := FromComments(fn.Doc, name)
	return ok
}

// OKAt reports whether an escape-hatch directive with the given name
// appears on the same line as pos or on the line directly above it — the
// two placements that silence a diagnostic at pos.
func (ix *Index) OKAt(pos token.Pos, name string) bool {
	p := ix.fset.Position(pos)
	lines := ix.byFileLine[p.Filename]
	if lines == nil {
		return false
	}
	for _, line := range [2]int{p.Line, p.Line - 1} {
		for _, d := range lines[line] {
			if d.Name == name {
				return true
			}
		}
	}
	return false
}
