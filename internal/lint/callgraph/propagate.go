package callgraph

import (
	"strings"
)

// An Offense is one contract violation somewhere down a call chain: what
// the offending function does (Detail, e.g. "calls time.Now") and the
// chain of display names from — exclusive — the function the offense is
// attributed to, down to the offender. A direct offense has an empty
// Chain; a function whose callee g offends directly carries
// Chain = [g]; and so on.
type Offense struct {
	// Kind tags the violation class so a multi-fact analyzer can pick
	// the fact type to export (e.g. "wallclock" vs "maprange"). Carried
	// unchanged through propagation.
	Kind string
	// Detail describes the primitive violation, phrased after the
	// offender's name: "calls time.Now", "allocates with make".
	Detail string
	// Chain is the path of DisplayName strings from the attributed
	// function (exclusive) to the offender (inclusive). Empty for a
	// direct offense.
	Chain []string
}

// Offender returns the display name of the function that commits the
// primitive violation: the chain's last element, or fallback (the
// attributed function itself) when the offense is direct.
func (o *Offense) Offender(fallback string) string {
	if len(o.Chain) == 0 {
		return fallback
	}
	return o.Chain[len(o.Chain)-1]
}

// Format renders the canonical chain diagnostic,
// "a → b → c: c calls time.Now", for an offense observed from root
// through its callee (the edge's target).
func (o *Offense) Format(root, callee string) string {
	parts := append([]string{root, callee}, o.Chain...)
	offender := o.Offender(callee)
	return strings.Join(parts, " → ") + ": " + offender + " " + o.Detail
}

// A Rule parameterizes offense propagation for one analyzer over one
// package: which body operations offend directly, what is known about
// callees outside the package, and which call edges the analyzer's escape
// hatch silences.
type Rule struct {
	Graph *Graph
	// Direct scans a node's own body (Decl is non-nil) and returns its
	// first primitive offense, hatch-filtered, or nil.
	Direct func(n *Node) *Offense
	// External models callees with no syntax anywhere in the load
	// (standard library, packages outside the lint run). nil is "assumed
	// clean".
	External func(n *Node) *Offense
	// Imported consults facts for callees declared in other loaded
	// packages (already analyzed, dependency order). nil when no fact.
	Imported func(n *Node) *Offense
	// EdgeOK reports whether an escape hatch at the call site silences
	// propagation across this edge.
	EdgeOK func(e *Edge) bool
}

// A Solution is the fixpoint result of propagating a Rule over one
// package's functions.
type Solution struct {
	rule  *Rule
	local map[string]*Offense // key -> offense for in-package nodes
}

// Solve computes, for every node in nodes (one package's declared
// functions), whether it transitively commits an offense: directly in its
// body, or through any un-hatched call edge to an offending callee.
// Callees inside the set resolve through the fixpoint; callees outside
// resolve through Imported (loaded packages, analyzed earlier) or
// External (no syntax). The iteration order is the deterministic node
// order, so chain attribution is stable across runs.
func (r *Rule) Solve(nodes []*Node) *Solution {
	s := &Solution{rule: r, local: make(map[string]*Offense, len(nodes))}
	inSet := make(map[string]bool, len(nodes))
	direct := make(map[string]*Offense, len(nodes))
	for _, n := range nodes {
		inSet[n.Key] = true
		if r.Direct != nil && n.Decl != nil {
			direct[n.Key] = r.Direct(n)
		}
	}
	for changed := true; changed; {
		changed = false
		for _, n := range nodes {
			if s.local[n.Key] != nil {
				continue
			}
			var off *Offense
			if d := direct[n.Key]; d != nil {
				off = d
			} else {
				for _, e := range n.Out {
					if e.InPanic || (r.EdgeOK != nil && r.EdgeOK(e)) {
						continue
					}
					var sub *Offense
					if inSet[e.Callee.Key] {
						sub = s.local[e.Callee.Key]
					} else {
						sub = s.Lookup(e.Callee)
					}
					if sub != nil {
						off = &Offense{
							Kind:   sub.Kind,
							Detail: sub.Detail,
							Chain:  append([]string{DisplayName(e.Callee.Func)}, sub.Chain...),
						}
						break
					}
				}
			}
			if off != nil {
				s.local[n.Key] = off
				changed = true
			}
		}
	}
	return s
}

// Lookup resolves a callee's offense from wherever it is known: the
// package fixpoint for in-package callees, Imported facts for loaded
// ones, the External model otherwise.
func (s *Solution) Lookup(callee *Node) *Offense {
	if off, ok := s.local[callee.Key]; ok {
		return off
	}
	if callee.Decl != nil {
		if s.rule.Imported != nil {
			return s.rule.Imported(callee)
		}
		return nil
	}
	if s.rule.External != nil {
		return s.rule.External(callee)
	}
	return nil
}

// Offense returns the solved (or looked-up) offense for a node.
func (s *Solution) Offense(n *Node) *Offense { return s.Lookup(n) }
