package callgraph

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

// checkPkg typechecks one in-memory source file into a *Package. Files may
// only import packages previously checked in the same test (resolved via
// prev) or nothing at all, so the tests stay hermetic.
func checkPkg(t *testing.T, fset *token.FileSet, path, src string, prev map[string]*types.Package) *Package {
	t.Helper()
	f, err := parser.ParseFile(fset, path+".go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse %s: %v", path, err)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: mapImporter(prev)}
	pkg, err := conf.Check(path, fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatalf("typecheck %s: %v", path, err)
	}
	if prev != nil {
		prev[path] = pkg
	}
	return &Package{Fset: fset, Files: []*ast.File{f}, Pkg: pkg, Info: info}
}

type mapImporter map[string]*types.Package

func (m mapImporter) Import(path string) (*types.Package, error) {
	if p, ok := m[path]; ok {
		return p, nil
	}
	// Fall back to export data for the standard library so fixtures can
	// reference e.g. time.Now as a leaf.
	return importer.Default().Import(path)
}

// edgesOf returns "calleeKey[/dynamic][/panic]" strings for a node's
// out-edges in their stored order.
func edgesOf(n *Node) []string {
	var out []string
	for _, e := range n.Out {
		s := strings.ReplaceAll(e.Callee.Key, "\x00", ".")
		if e.Dynamic {
			s += "/dynamic"
		}
		if e.InPanic {
			s += "/panic"
		}
		out = append(out, s)
	}
	return out
}

func TestStaticEdges(t *testing.T) {
	fset := token.NewFileSet()
	p := checkPkg(t, fset, "a", `package a

func f() { g(); h() }
func g() {}
func h() { g() }
`, nil)
	g := Build([]*Package{p})

	n := g.NodeByKey("a\x00\x00f")
	if n == nil {
		t.Fatal("no node for a.f")
	}
	got := edgesOf(n)
	want := []string{"a..g", "a..h"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("f edges = %v, want %v", got, want)
	}
	for _, e := range n.Out {
		if e.Dynamic {
			t.Errorf("static call to %s marked dynamic", e.Callee.Key)
		}
	}
}

func TestExternalLeafNodes(t *testing.T) {
	fset := token.NewFileSet()
	p := checkPkg(t, fset, "a", `package a

import "time"

func f() time.Time { return time.Now() }
`, nil)
	g := Build([]*Package{p})

	n := g.NodeByKey("a\x00\x00f")
	if n == nil || len(n.Out) != 1 {
		t.Fatalf("a.f edges = %v, want exactly the time.Now leaf", edgesOf(n))
	}
	leaf := n.Out[0].Callee
	if leaf.Key != "time\x00\x00Now" {
		t.Errorf("callee key = %q, want time..Now", strings.ReplaceAll(leaf.Key, "\x00", "."))
	}
	if leaf.Decl != nil {
		t.Error("external leaf has syntax; want Decl == nil")
	}
}

func TestInterfaceCallResolvesToImplementsSet(t *testing.T) {
	fset := token.NewFileSet()
	p := checkPkg(t, fset, "a", `package a

type Runner interface{ Run() }

type A struct{}
func (A) Run() {}

type B struct{}
func (*B) Run() {}

type C struct{}
func (C) Run(x int) {} // wrong signature: not in the set

func drive(r Runner) { r.Run() }
`, nil)
	g := Build([]*Package{p})

	n := g.NodeByKey("a\x00\x00drive")
	got := edgesOf(n)
	want := []string{"a.A.Run/dynamic", "a.B.Run/dynamic"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("drive edges = %v, want %v", got, want)
	}
}

func TestFuncValueCallResolvesBySignature(t *testing.T) {
	fset := token.NewFileSet()
	p := checkPkg(t, fset, "a", `package a

func inc(x int) int { return x + 1 }
func dec(x int) int { return x - 1 }
func name(s string) string { return s }

func apply(f func(int) int, v int) int { return f(v) }
`, nil)
	g := Build([]*Package{p})

	n := g.NodeByKey("a\x00\x00apply")
	got := edgesOf(n)
	// Both int->int functions match; the string one does not.
	want := []string{"a..dec/dynamic", "a..inc/dynamic"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("apply edges = %v, want %v", got, want)
	}
}

func TestPanicArgumentEdgesMarked(t *testing.T) {
	fset := token.NewFileSet()
	p := checkPkg(t, fset, "a", `package a

func msg() string { return "boom" }
func ok() {}

func f() {
	ok()
	panic(msg())
}
`, nil)
	g := Build([]*Package{p})

	n := g.NodeByKey("a\x00\x00f")
	got := edgesOf(n)
	want := []string{"a..ok", "a..msg/panic"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("f edges = %v, want %v", got, want)
	}
}

func TestNodesDeterministicOrder(t *testing.T) {
	fset := token.NewFileSet()
	p := checkPkg(t, fset, "a", `package a

func zebra() {}
func apple() {}
func mango() {}
`, nil)
	for i := 0; i < 3; i++ {
		g := Build([]*Package{p})
		var keys []string
		for _, n := range g.Nodes() {
			keys = append(keys, n.Key)
		}
		if !sortedStrings(keys) {
			t.Fatalf("run %d: Nodes() not sorted by key: %v", i, keys)
		}
	}
}

func sortedStrings(s []string) bool {
	for i := 1; i < len(s); i++ {
		if s[i-1] > s[i] {
			return false
		}
	}
	return true
}

func TestObjectKeyNormalizesTestVariants(t *testing.T) {
	// Packages "p" and "p [p.test]" must key identically; the raw path is
	// all ObjectKey consumes, so exercise normPath directly plus a method
	// receiver through a real checked package.
	if normPath("softlora/internal/dsp [softlora/internal/dsp.test]") != "softlora/internal/dsp" {
		t.Error("normPath does not strip the test-variant suffix")
	}

	fset := token.NewFileSet()
	p := checkPkg(t, fset, "a", `package a

type T struct{}
func (t *T) M() {}
func F() {}
`, nil)
	g := Build([]*Package{p})
	if g.NodeByKey("a\x00T\x00M") == nil {
		t.Error("method key missing receiver type name")
	}
	if g.NodeByKey("a\x00\x00F") == nil {
		t.Error("plain function key missing")
	}
}

func TestSolvePropagatesChains(t *testing.T) {
	fset := token.NewFileSet()
	p := checkPkg(t, fset, "a", `package a

func leaf() {}
func mid()  { leaf() }
func root() { mid() }
func clean() {}
`, nil)
	g := Build([]*Package{p})

	rule := &Rule{
		Graph: g,
		Direct: func(n *Node) *Offense {
			if n.Func.Name() == "leaf" {
				return &Offense{Kind: "k", Detail: "does the bad thing"}
			}
			return nil
		},
	}
	sol := rule.Solve(g.Nodes())

	// The analyzers report at a root's call edge using the *callee's*
	// offense: its chain runs from the callee (exclusive) to the offender.
	root := g.NodeByKey("a\x00\x00root")
	if off := sol.Offense(root); off == nil {
		t.Fatal("root: no propagated offense")
	} else if off.Kind != "k" {
		t.Errorf("Kind not carried through propagation: %q", off.Kind)
	}
	sub := sol.Offense(g.NodeByKey("a\x00\x00mid"))
	if sub == nil {
		t.Fatal("mid: no propagated offense")
	}
	if got := sub.Format("a.root", "a.mid"); got != "a.root → a.mid → a.leaf: a.leaf does the bad thing" {
		t.Errorf("chain format = %q", got)
	}
	if clean := sol.Offense(g.NodeByKey("a\x00\x00clean")); clean != nil {
		t.Errorf("clean function has offense %v", clean)
	}
}

func TestSolveEdgeOKCutsPropagation(t *testing.T) {
	fset := token.NewFileSet()
	p := checkPkg(t, fset, "a", `package a

func leaf() {}
func mid()  { leaf() }
func root() { mid() }
`, nil)
	g := Build([]*Package{p})

	mid := g.NodeByKey("a\x00\x00mid")
	rule := &Rule{
		Graph: g,
		Direct: func(n *Node) *Offense {
			if n.Func.Name() == "leaf" {
				return &Offense{Detail: "does the bad thing"}
			}
			return nil
		},
		// Hatch the mid→leaf edge: nothing should reach root.
		EdgeOK: func(e *Edge) bool { return e.Caller == mid },
	}
	sol := rule.Solve(g.Nodes())
	if off := sol.Offense(g.NodeByKey("a\x00\x00root")); off != nil {
		t.Errorf("root offense survived a hatched edge: %v", off)
	}
}

func TestSolveSkipsPanicEdges(t *testing.T) {
	fset := token.NewFileSet()
	p := checkPkg(t, fset, "a", `package a

func bad() {}
func f() {
	if false {
		panic(badMsg())
	}
}
func badMsg() string { bad(); return "x" }
`, nil)
	g := Build([]*Package{p})

	rule := &Rule{
		Graph: g,
		Direct: func(n *Node) *Offense {
			if n.Func.Name() == "bad" {
				return &Offense{Detail: "does the bad thing"}
			}
			return nil
		},
	}
	sol := rule.Solve(g.Nodes())
	// f's only route to bad is through a panic argument; propagation must
	// not cross it.
	if off := sol.Offense(g.NodeByKey("a\x00\x00f")); off != nil {
		t.Errorf("offense crossed a panic-argument edge: %v", off)
	}
	// badMsg itself still offends (its call to bad is a normal statement).
	if off := sol.Offense(g.NodeByKey("a\x00\x00badMsg")); off == nil {
		t.Error("badMsg lost its non-panic offense")
	}
}

func TestCrossPackageStaticEdges(t *testing.T) {
	fset := token.NewFileSet()
	prev := map[string]*types.Package{}
	dep := checkPkg(t, fset, "dep", `package dep

func Helper() {}
`, prev)
	top := checkPkg(t, fset, "top", `package top

import "dep"

func Use() { dep.Helper() }
`, prev)
	g := Build([]*Package{dep, top})

	n := g.NodeByKey("top\x00\x00Use")
	got := edgesOf(n)
	want := []string{"dep..Helper"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("Use edges = %v, want %v", got, want)
	}
	// The callee is part of the load, so it must carry syntax.
	if n.Out[0].Callee.Decl == nil {
		t.Error("in-load callee has no syntax")
	}
}
