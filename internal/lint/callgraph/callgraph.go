// Package callgraph builds a type-informed, whole-load call graph for the
// softlora-lint analyzers — the backbone of interprocedural contract
// propagation (transitive hotpath/determinism/allocfree checking).
//
// Resolution is CHA-style (class-hierarchy analysis), deliberately
// over-approximate but never silently incomplete:
//
//   - static calls — package functions, methods on concrete receivers —
//     resolve to exactly one callee;
//   - interface method calls resolve to the implements-set: every method
//     of that name on every loaded concrete type whose method set
//     satisfies the interface;
//   - calls through function values (variables, fields, parameters,
//     results) resolve to every loaded function or method whose signature
//     matches the call site's.
//
// Nodes and edges are deterministically ordered (by stable object key,
// then by call position), so diagnostics and propagation chains are
// byte-identical across runs.
//
// The loader (internal/lint/load) type-checks each package from source
// but resolves its imports from compiler export data, so one function is
// described by distinct go/types objects depending on which package is
// looking. The graph therefore keys every function by a stable string
// (ObjectKey) and compares types structurally by normalized string
// (signature matching, implements-sets) rather than by go/types identity
// — the two universes meet at the key.
package callgraph

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// A Node is one function or method in the graph.
type Node struct {
	// Key is the function's stable identity (see ObjectKey).
	Key string
	// Func is a representative types object for the function. When
	// several loaded packages see the function through different
	// importers, this is the instance from the package that declares it
	// (the one with syntax), if any.
	Func *types.Func
	// Decl is the function's declaration when its package is part of the
	// load; nil for functions known only through export data (standard
	// library, packages outside the lint run).
	Decl *ast.FuncDecl
	// Fset positions Decl (nil when Decl is nil).
	Fset *token.FileSet
	// Info is the type info of the package that declared Decl.
	Info *types.Info
	// Out are the node's call edges, ordered by call position then
	// callee key.
	Out []*Edge
}

// An Edge is one call site resolved to one callee.
type Edge struct {
	Caller *Node
	Callee *Node
	// Pos is the call expression's position in the caller.
	Pos token.Pos
	// Dynamic marks edges resolved by over-approximation (interface
	// implements-set or signature match) rather than direct reference.
	Dynamic bool
	// InPanic marks call sites inside a panic(...) argument. Panicking
	// paths are cold by definition, so offense propagation skips these
	// edges (a contract violated only while crashing is not a violation).
	InPanic bool
}

// A Graph is the call graph of one load.
type Graph struct {
	nodes map[string]*Node
	order []*Node
}

// Node returns the graph node for fn, or nil.
func (g *Graph) Node(fn *types.Func) *Node {
	if fn == nil {
		return nil
	}
	return g.nodes[ObjectKey(fn)]
}

// NodeByKey returns the node with the given stable key, or nil.
func (g *Graph) NodeByKey(key string) *Node { return g.nodes[key] }

// Nodes returns every node in deterministic order (sorted by key).
func (g *Graph) Nodes() []*Node { return g.order }

// A Package is one loaded package the graph is built from — the same
// shape internal/lint/analysis.Pass carries.
type Package struct {
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// normPath strips the " [p.test]" suffix go list gives test variants, so
// a function seen through a test variant and through the plain build
// share one identity.
func normPath(path string) string {
	if i := strings.IndexByte(path, ' '); i >= 0 {
		return path[:i]
	}
	return path
}

// ObjectKey returns a stable cross-universe identity for a function or
// method: package path, receiver type name, and function name, joined
// unambiguously. Generic instantiations key as their origin declaration.
func ObjectKey(fn *types.Func) string {
	fn = fn.Origin()
	path := ""
	if fn.Pkg() != nil {
		path = normPath(fn.Pkg().Path())
	}
	recv := ""
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		recv = recvTypeName(sig.Recv().Type())
	}
	return path + "\x00" + recv + "\x00" + fn.Name()
}

// recvTypeName names a receiver's defined type ("Plan" for *Plan,
// "DechirpScratch" for DechirpScratch[K]).
func recvTypeName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	switch t := t.(type) {
	case *types.Named:
		return t.Obj().Name()
	case *types.Interface:
		return t.String()
	}
	return t.String()
}

// DisplayName renders a function for diagnostics and chains:
// "pkg.Func", "pkg.Recv.Method", or plain "Func" for the main package.
func DisplayName(fn *types.Func) string {
	fn = fn.Origin()
	name := fn.Name()
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		name = recvTypeName(sig.Recv().Type()) + "." + name
	}
	if fn.Pkg() != nil {
		return fn.Pkg().Name() + "." + name
	}
	return name
}

// qual renders package paths fully (normalized for test variants) so type
// strings compare structurally across importer universes.
func qual(p *types.Package) string {
	if p == nil {
		return ""
	}
	return normPath(p.Path())
}

// sigKey is a signature's comparison string with the receiver stripped
// and parameters/results unnamed — the shape a function value of that
// type has. Names must not participate: a declaration's "func(x int)"
// and a call site's "func(int)" are the same signature.
func sigKey(sig *types.Signature) string {
	return types.TypeString(
		types.NewSignatureType(nil, nil, nil, unnamedTuple(sig.Params()), unnamedTuple(sig.Results()), sig.Variadic()),
		qual,
	)
}

// unnamedTuple rebuilds a parameter or result tuple with the names
// dropped, keeping only the types.
func unnamedTuple(t *types.Tuple) *types.Tuple {
	if t == nil || t.Len() == 0 {
		return t
	}
	vars := make([]*types.Var, t.Len())
	for i := 0; i < t.Len(); i++ {
		v := t.At(i)
		vars[i] = types.NewVar(token.NoPos, v.Pkg(), "", v.Type())
	}
	return types.NewTuple(vars...)
}

// methodKey is one method's name plus sans-receiver signature string —
// the unit of structural interface satisfaction.
func methodKey(name string, sig *types.Signature) string {
	return name + "\x00" + sigKey(sig)
}

// Build constructs the call graph of the given packages. Every function
// declared in them becomes a node with syntax; callees outside the load
// become leaf nodes without syntax.
func Build(pkgs []*Package) *Graph {
	g := &Graph{nodes: make(map[string]*Node)}
	b := &builder{g: g}

	// Pass 1: nodes for every declared function, and the concrete-type
	// universe for implements-sets.
	for _, p := range pkgs {
		for _, f := range p.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				fn, _ := p.Info.Defs[fd.Name].(*types.Func)
				if fn == nil {
					continue
				}
				key := ObjectKey(fn)
				if n := g.nodes[key]; n != nil {
					// A test variant re-declares its plain build's
					// functions; keep the first instance seen.
					continue
				}
				g.nodes[key] = &Node{Key: key, Func: fn, Decl: fd, Fset: p.Fset, Info: p.Info}
			}
		}
		b.collectTypes(p)
	}
	b.indexMethods()

	// Pass 2: edges. Deterministic package order is the caller's
	// responsibility (load returns dependency order); edges are sorted
	// per node afterwards regardless.
	for _, p := range pkgs {
		for _, f := range p.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, _ := p.Info.Defs[fd.Name].(*types.Func)
				if fn == nil {
					continue
				}
				n := g.nodes[ObjectKey(fn)]
				if n.Decl != fd {
					continue // test-variant duplicate: edges already built
				}
				b.edges(p, n, fd.Body)
			}
		}
	}

	for _, n := range g.nodes {
		sort.Slice(n.Out, func(i, j int) bool {
			a, c := n.Out[i], n.Out[j]
			if a.Pos != c.Pos {
				return a.Pos < c.Pos
			}
			return a.Callee.Key < c.Callee.Key
		})
		g.order = append(g.order, n)
	}
	sort.Slice(g.order, func(i, j int) bool { return g.order[i].Key < g.order[j].Key })
	return g
}

// builder accumulates the concrete-type universe during construction.
type builder struct {
	g *Graph
	// named is every defined (non-interface) type of the load, keyed to
	// dedupe test-variant re-declarations.
	named map[string]*types.Named
	// bySig indexes declared functions by sans-receiver signature string
	// for function-value resolution.
	bySig map[string][]*Node
	// byMethod indexes declared methods by methodKey for implements-set
	// resolution.
	byMethod map[string][]*Node
	// inPanic is set while resolving a call site inside a panic argument
	// (edges() drives it; addEdge stamps it onto the edge).
	inPanic bool
}

func (b *builder) collectTypes(p *Package) {
	if b.named == nil {
		b.named = make(map[string]*types.Named)
	}
	scope := p.Pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok || types.IsInterface(named) {
			continue
		}
		key := qual(p.Pkg) + "\x00" + name
		if _, dup := b.named[key]; !dup {
			b.named[key] = named
		}
	}
}

// indexMethods builds the signature and method indexes over the nodes
// declared in pass 1.
func (b *builder) indexMethods() {
	b.bySig = make(map[string][]*Node)
	b.byMethod = make(map[string][]*Node)
	for _, n := range b.g.nodes {
		sig, ok := n.Func.Type().(*types.Signature)
		if !ok {
			continue
		}
		b.bySig[sigKey(sig)] = append(b.bySig[sigKey(sig)], n)
		if sig.Recv() != nil {
			b.byMethod[methodKey(n.Func.Name(), sig)] = append(b.byMethod[methodKey(n.Func.Name(), sig)], n)
		}
	}
	for _, m := range b.bySig {
		sort.Slice(m, func(i, j int) bool { return m[i].Key < m[j].Key })
	}
	for _, m := range b.byMethod {
		sort.Slice(m, func(i, j int) bool { return m[i].Key < m[j].Key })
	}
}

// leaf returns (creating if needed) the syntax-less node for a function
// outside the load.
func (b *builder) leaf(fn *types.Func) *Node {
	key := ObjectKey(fn)
	if n := b.g.nodes[key]; n != nil {
		return n
	}
	n := &Node{Key: key, Func: fn}
	b.g.nodes[key] = n
	return n
}

// edges walks one function body resolving every call expression.
// Function-literal bodies are attributed to the enclosing declaration:
// for contract propagation a closure's operations belong to the function
// that creates (and overwhelmingly, runs) it. Call sites inside panic
// arguments are resolved too, but marked InPanic.
func (b *builder) edges(p *Package, caller *Node, body *ast.BlockStmt) {
	// Collect the source ranges of panic(...) arguments first, so nested
	// call edges can be marked.
	var panicArgs [][2]token.Pos
	ast.Inspect(body, func(node ast.Node) bool {
		call, ok := node.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
			if p.Info.Uses[id] == types.Universe.Lookup("panic") && len(call.Args) > 0 {
				panicArgs = append(panicArgs, [2]token.Pos{call.Args[0].Pos(), call.Args[len(call.Args)-1].End()})
			}
		}
		return true
	})
	inPanic := func(pos token.Pos) bool {
		for _, r := range panicArgs {
			if r[0] <= pos && pos < r[1] {
				return true
			}
		}
		return false
	}
	ast.Inspect(body, func(node ast.Node) bool {
		call, ok := node.(*ast.CallExpr)
		if !ok {
			return true
		}
		b.inPanic = inPanic(call.Pos())
		b.resolve(p, caller, call)
		return true
	})
	b.inPanic = false
}

func (b *builder) addEdge(caller, callee *Node, pos token.Pos, dynamic bool) {
	caller.Out = append(caller.Out, &Edge{Caller: caller, Callee: callee, Pos: pos, Dynamic: dynamic, InPanic: b.inPanic})
}

func (b *builder) resolve(p *Package, caller *Node, call *ast.CallExpr) {
	fun := ast.Unparen(call.Fun)

	// Conversions are not calls.
	if tv, ok := p.Info.Types[fun]; ok && tv.IsType() {
		return
	}

	var id *ast.Ident
	switch f := fun.(type) {
	case *ast.Ident:
		id = f
	case *ast.SelectorExpr:
		id = f.Sel
	case *ast.FuncLit:
		return // body attributed to the caller; no edge
	case *ast.IndexExpr:
		// Generic instantiation f[T](...): resolve through the index
		// operand when it names a function.
		if inner, ok := ast.Unparen(f.X).(*ast.Ident); ok {
			id = inner
		}
	}

	if id != nil {
		switch obj := p.Info.Uses[id].(type) {
		case *types.Builtin:
			return
		case *types.Func:
			sig, _ := obj.Type().(*types.Signature)
			if sig != nil && sig.Recv() != nil && types.IsInterface(sig.Recv().Type()) {
				b.resolveInterfaceCall(caller, call, obj, sig)
				return
			}
			b.resolveStatic(caller, call, obj)
			return
		}
		// A function-typed variable, field or parameter: fall through to
		// signature over-approximation.
	}

	// Anything else with a function type is a call through a value:
	// over-approximate by signature.
	tv, ok := p.Info.Types[call.Fun]
	if !ok || tv.Type == nil {
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	for _, callee := range b.bySig[sigKey(sig)] {
		b.addEdge(caller, callee, call.Pos(), true)
	}
}

func (b *builder) resolveStatic(caller *Node, call *ast.CallExpr, obj *types.Func) {
	key := ObjectKey(obj)
	callee := b.g.nodes[key]
	if callee == nil {
		callee = b.leaf(obj)
	}
	b.addEdge(caller, callee, call.Pos(), false)
}

// resolveInterfaceCall resolves i.M() to the implements-set: every loaded
// concrete type whose method set structurally satisfies the interface,
// via that type's M. Interface satisfaction is checked by method-key
// subset so it holds across importer universes.
func (b *builder) resolveInterfaceCall(caller *Node, call *ast.CallExpr, obj *types.Func, sig *types.Signature) {
	iface, ok := sig.Recv().Type().Underlying().(*types.Interface)
	if !ok {
		return
	}
	want := make(map[string]bool, iface.NumMethods())
	for i := 0; i < iface.NumMethods(); i++ {
		m := iface.Method(i)
		want[methodKey(m.Name(), m.Type().(*types.Signature))] = true
	}

	var namedKeys []string
	for k := range b.named {
		namedKeys = append(namedKeys, k)
	}
	sort.Strings(namedKeys)
	for _, k := range namedKeys {
		named := b.named[k]
		if !satisfies(named, want) {
			continue
		}
		// The implementing method: same name, same sans-receiver
		// signature as the interface method, on this type.
		mk := methodKey(obj.Name(), obj.Type().(*types.Signature))
		for _, callee := range b.byMethod[mk] {
			if recvNamedKey(callee.Func) == k {
				b.addEdge(caller, callee, call.Pos(), true)
			}
		}
	}
}

// recvNamedKey returns the named-type universe key of a method's
// receiver.
func recvNamedKey(fn *types.Func) string {
	sig, ok := fn.Origin().Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	return qual(named.Obj().Pkg()) + "\x00" + named.Obj().Name()
}

// satisfies reports whether the method set of T or *T structurally covers
// every wanted interface method.
func satisfies(named *types.Named, want map[string]bool) bool {
	have := make(map[string]bool)
	for _, t := range []types.Type{named, types.NewPointer(named)} {
		ms := types.NewMethodSet(t)
		for i := 0; i < ms.Len(); i++ {
			m := ms.At(i).Obj()
			fn, ok := m.(*types.Func)
			if !ok {
				continue
			}
			have[methodKey(fn.Name(), fn.Type().(*types.Signature))] = true
		}
	}
	for k := range want {
		if !have[k] {
			return false
		}
	}
	return true
}
