// Package poolcheck implements the softlora-lint analyzer enforcing
// bufpool ownership discipline (see internal/bufpool's package doc): a
// buffer obtained from bufpool.Get or bufpool.GetUninit is the caller's
// until it is either handed back with bufpool.Put or handed off — stored
// into a longer-lived structure (a Capture), returned, or passed to
// another function that assumes ownership. A buffer that can fall out of
// scope on some path without either is a silent pool leak: correctness
// survives (the GC collects it) but the steady-state zero-alloc contract
// the pool exists for does not.
//
// Per function, for every `buf := bufpool.Get(n)` / GetUninit:
//
//   - a `defer bufpool.Put(buf)` anywhere makes every path safe;
//   - any hand-off (return, store into a field/element/composite literal,
//     alias assignment, or passing buf to a function other than Put)
//     transfers ownership and ends the analysis for that buffer;
//   - otherwise every return statement reachable after the Get must be
//     preceded by a bufpool.Put(buf) on that path — a lexical
//     path walk over if/else, switch, select and loops, conservative in
//     the caller's favor (a Put only inside a loop body does not count as
//     a Put on the fall-through path).
//
// A site with out-of-band ownership (a test helper, a buffer parked in a
// package-level cache) is silenced with //softlora:bufpool-ok <why> on
// the Get line or the line above.
package poolcheck

import (
	"go/ast"
	"go/types"

	"softlora/internal/lint/analysis"
	"softlora/internal/lint/directive"
)

// Analyzer is the bufpool ownership check.
var Analyzer = &analysis.Analyzer{
	Name: "poolcheck",
	Doc:  "flag bufpool.Get/GetUninit buffers that can leave the function without a matching Put or ownership hand-off",
	Run:  run,
}

// EscapeHatch silences one diagnostic when placed on or above the Get.
const EscapeHatch = "bufpool-ok"

// PoolPath is the package whose Get/GetUninit/Put calls are tracked.
const PoolPath = "softlora/internal/bufpool"

func run(pass *analysis.Pass) (any, error) {
	ix := directive.NewIndex(pass.Fset, pass.Files)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkFunc(pass, ix, fn)
		}
	}
	return nil, nil
}

// poolCall classifies a call into the bufpool package; name is "" for
// calls elsewhere.
func poolCall(info *types.Info, call *ast.CallExpr) string {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	obj, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || obj.Pkg() == nil || obj.Pkg().Path() != PoolPath {
		return ""
	}
	return obj.Name()
}

func checkFunc(pass *analysis.Pass, ix *directive.Index, fn *ast.FuncDecl) {
	info := pass.TypesInfo
	// Pass 1: find every `v := bufpool.Get*(...)` with an identifier LHS.
	type tracked struct {
		obj  types.Object
		get  *ast.CallExpr
		name string // Get or GetUninit
	}
	var bufs []*tracked
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return true
		}
		name := poolCall(info, call)
		if name != "Get" && name != "GetUninit" {
			return true
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		if !ok || id.Name == "_" {
			return true
		}
		obj := info.Defs[id]
		if obj == nil {
			obj = info.Uses[id]
		}
		if obj == nil || ix.OKAt(call.Pos(), EscapeHatch) {
			return true
		}
		bufs = append(bufs, &tracked{obj: obj, get: call, name: name})
		return true
	})

	for _, b := range bufs {
		analyzeBuffer(pass, fn, b.obj, b.get, b.name)
	}
}

// analyzeBuffer classifies every use of obj and, when needed, runs the
// path walk.
func analyzeBuffer(pass *analysis.Pass, fn *ast.FuncDecl, obj types.Object, get *ast.CallExpr, getName string) {
	info := pass.TypesInfo
	var (
		deferredPut bool
		transferred bool
		putCalls    = make(map[*ast.CallExpr]bool)
	)

	// usesObj reports whether e is an identifier for obj.
	usesObj := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		return ok && (info.Uses[id] == obj || info.Defs[id] == obj)
	}

	var walkUses func(n ast.Node, inDefer bool)
	walkUses = func(n ast.Node, inDefer bool) {
		ast.Inspect(n, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.DeferStmt:
				walkUses(n.Call, true)
				return false
			case *ast.CallExpr:
				name := poolCall(info, n)
				if name == "Put" && len(n.Args) == 1 && usesObj(n.Args[0]) {
					if inDefer {
						deferredPut = true
					} else {
						putCalls[n] = true
					}
					return false
				}
				// obj (or a subslice of it) passed to any other non-builtin
				// call — including methods such as capture.Release wrappers —
				// transfers ownership. Builtins (len, cap, copy, ...) only
				// read the value.
				if tv, ok := info.Types[n.Fun]; !ok || !tv.IsBuiltin() {
					for _, arg := range n.Args {
						if aliases(info, arg, obj) {
							transferred = true
						}
					}
				}
			case *ast.ReturnStmt:
				for _, r := range n.Results {
					if aliases(info, r, obj) {
						transferred = true
					}
				}
			case *ast.AssignStmt:
				// obj flowing into an assignment whose target is not obj
				// itself (an alias, a field store, a map/slice element)
				// transfers ownership; `buf = buf[:n]`-style self-updates
				// and element reads (`x := buf[0]`) do not.
				for i, rhs := range n.Rhs {
					if i < len(n.Lhs) && usesObj(n.Lhs[i]) {
						continue
					}
					if aliases(info, rhs, obj) {
						transferred = true
					}
				}
			case *ast.CompositeLit:
				for _, el := range n.Elts {
					if mentions(info, el, obj) {
						transferred = true
					}
				}
			case *ast.GoStmt:
				if mentions(info, n.Call, obj) {
					transferred = true
				}
			case *ast.FuncLit:
				// A closure capturing the buffer owns it as far as this
				// analysis can see.
				if mentions(info, n.Body, obj) {
					transferred = true
				}
				return false
			}
			return true
		})
	}
	walkUses(fn.Body, false)

	if deferredPut || transferred {
		return
	}
	if len(putCalls) == 0 {
		pass.Reportf(get.Pos(), "bufpool.%s result %q is never Put back or handed off: pool leak", getName, obj.Name())
		return
	}
	// Path walk: report returns reachable after the Get with no Put yet,
	// and a fall-off-the-end path that never Put.
	w := &pathWalker{pass: pass, info: info, obj: obj, get: get, puts: putCalls}
	if st := w.walk(fn.Body.List, state{}); st.live && !st.terminated {
		pass.Reportf(fn.Body.Rbrace, "function can end without bufpool.Put(%s) on this path: pool leak", obj.Name())
	}
}

// aliases reports whether e both references obj and evaluates to
// something that can still reach the buffer's storage (a slice, pointer,
// struct, interface...) — reading a single element or a length produces a
// basic value and keeps ownership with the function.
func aliases(info *types.Info, e ast.Expr, obj types.Object) bool {
	if !mentions(info, e, obj) {
		return false
	}
	t := info.TypeOf(e)
	if t == nil {
		return true
	}
	b, isBasic := t.Underlying().(*types.Basic)
	return !isBasic || b.Kind() == types.UntypedNil
}

// mentions reports whether the subtree references obj.
func mentions(info *types.Info, n ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && (info.Uses[id] == obj || info.Defs[id] == obj) {
			found = true
		}
		return !found
	})
	return found
}

// state is the abstract per-path state of the walk.
type state struct {
	live       bool // Get executed, no Put yet
	terminated bool // path ends (return) — nothing merges back
}

type pathWalker struct {
	pass *analysis.Pass
	info *types.Info
	obj  types.Object
	get  *ast.CallExpr
	puts map[*ast.CallExpr]bool
}

// contains reports whether the subtree holds the node for which pred is
// true, skipping FuncLit bodies (closure code does not execute here).
func (w *pathWalker) contains(n ast.Node, pred func(ast.Node) bool) bool {
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		if found {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if pred(n) {
			found = true
			return false
		}
		return true
	})
	return found
}

func (w *pathWalker) hasGet(n ast.Node) bool {
	return w.contains(n, func(x ast.Node) bool { return x == ast.Node(w.get) })
}

func (w *pathWalker) hasPut(n ast.Node) bool {
	return w.contains(n, func(x ast.Node) bool {
		c, ok := x.(*ast.CallExpr)
		return ok && w.puts[c]
	})
}

// walk interprets a statement list, reporting returns on live paths.
func (w *pathWalker) walk(list []ast.Stmt, st state) state {
	for _, s := range list {
		if st.terminated {
			return st
		}
		st = w.stmt(s, st)
	}
	return st
}

func (w *pathWalker) stmt(s ast.Stmt, st state) state {
	switch s := s.(type) {
	case *ast.ReturnStmt:
		if st.live {
			w.pass.Reportf(s.Pos(), "return without bufpool.Put(%s) on this path: pool leak (Put, defer the Put, or hand the buffer off)", w.obj.Name())
		}
		st.terminated = true
		return st
	case *ast.BlockStmt:
		return w.walk(s.List, st)
	case *ast.IfStmt:
		if s.Init != nil {
			st = w.stmt(s.Init, st)
		}
		thenSt := w.walk(s.Body.List, st)
		elseSt := st
		if s.Else != nil {
			elseSt = w.stmt(s.Else, st)
		}
		return merge(thenSt, elseSt)
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		var body *ast.BlockStmt
		switch s := s.(type) {
		case *ast.SwitchStmt:
			body = s.Body
		case *ast.TypeSwitchStmt:
			body = s.Body
		case *ast.SelectStmt:
			body = s.Body
		}
		out := st // fall-through when no case matches
		for _, cc := range body.List {
			var stmts []ast.Stmt
			switch cc := cc.(type) {
			case *ast.CaseClause:
				stmts = cc.Body
			case *ast.CommClause:
				stmts = cc.Body
			}
			out = merge(out, w.walk(stmts, st))
		}
		return out
	case *ast.ForStmt:
		// The body may run zero times: the fall-through state keeps st
		// (a Put only inside the loop is not a Put on every path), but
		// returns inside the body are still checked.
		w.walk(s.Body.List, st)
		return st
	case *ast.RangeStmt:
		w.walk(s.Body.List, st)
		return st
	case *ast.LabeledStmt:
		return w.stmt(s.Stmt, st)
	default:
		// Leaf statement: the Get arms the state, a Put disarms it.
		if w.hasGet(s) {
			st.live = true
		}
		if w.hasPut(s) {
			st.live = false
		}
		return st
	}
}

// merge joins two branch states: the buffer is live after the join if any
// continuing branch left it live.
func merge(a, b state) state {
	switch {
	case a.terminated && b.terminated:
		return state{terminated: true}
	case a.terminated:
		return b
	case b.terminated:
		return a
	default:
		return state{live: a.live || b.live}
	}
}
