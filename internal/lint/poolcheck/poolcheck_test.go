package poolcheck_test

import (
	"testing"

	"softlora/internal/lint/analysistest"
	"softlora/internal/lint/poolcheck"
)

func TestPoolCheck(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), poolcheck.Analyzer, "a")
}
