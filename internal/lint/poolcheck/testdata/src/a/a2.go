package a

import "softlora/internal/bufpool"

// Capture mirrors the radio/sdr capture idiom: the buffer is stored and
// Release (defined in another file of this multi-file fixture) puts it
// back later.
type Capture struct{ IQ []complex128 }

// Release returns the capture's buffer to the pool.
func (c *Capture) Release() { bufpool.Put(c.IQ) }

// handedOffStruct stores the buffer in a Capture: ownership transfers.
func handedOffStruct(n int) *Capture {
	buf := bufpool.GetUninit(n)
	return &Capture{IQ: buf}
}

// handedOffReturn returns the buffer itself.
func handedOffReturn(n int) []complex128 {
	buf := bufpool.Get(n)
	return buf
}

// handedOffCall passes the buffer to a consumer that owns it.
func handedOffCall(n int) {
	buf := bufpool.Get(n)
	park(buf)
}

var parked []complex128

func park(buf []complex128) { parked = buf }

// readsAreNotHandoffs takes an element and a length — neither transfers
// ownership, so the missing Put is still a leak.
func readsAreNotHandoffs(n int) (float64, int) {
	buf := bufpool.Get(n) // want `bufpool\.Get result "buf" is never Put back or handed off`
	return real(buf[0]), len(buf)
}

// fallsOffEnd puts only on one branch and ends without a return.
func fallsOffEnd(n int, f bool) {
	buf := bufpool.Get(n)
	if f {
		bufpool.Put(buf)
	}
} // want `function can end without bufpool\.Put\(buf\)`
