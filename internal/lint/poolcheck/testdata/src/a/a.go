package a

import "softlora/internal/bufpool"

// leak never returns the buffer to the pool and never hands it off.
func leak(n int) float64 {
	buf := bufpool.Get(n) // want `bufpool\.Get result "buf" is never Put back or handed off`
	return real(buf[0])
}

// conditionalLeak puts on the happy path but leaks on the early return.
func conditionalLeak(n int, fail bool) float64 {
	buf := bufpool.GetUninit(n)
	if fail {
		return 0 // want `return without bufpool\.Put\(buf\) on this path`
	}
	v := real(buf[0])
	bufpool.Put(buf)
	return v
}

// loopOnlyPut puts only inside a loop that may run zero times.
func loopOnlyPut(n int, xs []int) {
	buf := bufpool.Get(n)
	for range xs {
		bufpool.Put(buf)
		return
	}
	return // want `return without bufpool\.Put\(buf\) on this path`
}

// deferred is safe on every path.
func deferred(n int, fail bool) float64 {
	buf := bufpool.Get(n)
	defer bufpool.Put(buf)
	if fail {
		return 0
	}
	return real(buf[1])
}

// bothBranches puts on each branch before returning.
func bothBranches(n int, fail bool) {
	buf := bufpool.Get(n)
	if fail {
		bufpool.Put(buf)
		return
	}
	buf[0] = 1
	bufpool.Put(buf)
}

// reslicedSelfUpdate keeps ownership through a reslice and puts.
func reslicedSelfUpdate(n int) {
	buf := bufpool.Get(n)
	buf = buf[:n/2]
	bufpool.Put(buf)
}

func hatched(n int) float64 {
	//softlora:bufpool-ok fixture exercises the hatch
	buf := bufpool.Get(n)
	return real(buf[0])
}
