// Package bufpool is a fixture stub sharing the real pool's import path,
// so the poolcheck analyzer resolves Get/GetUninit/Put exactly as it does
// against the repo.
package bufpool

func Get(n int) []complex128       { return make([]complex128, n) }
func GetUninit(n int) []complex128 { return make([]complex128, n) }
func Put(buf []complex128)         {}
