package analysis

import (
	"go/token"
	"go/types"
	"testing"
)

// markFact is a minimal serializable fact for the store tests.
type markFact struct {
	Detail string
	Chain  []string
}

func (*markFact) AFact() {}

// otherFact shares no type with markFact; imports of one must never see
// the other.
type otherFact struct{ N int }

func (*otherFact) AFact() {}

// badFact cannot round-trip through gob (function fields are not
// encodable), so Seal must fail loudly rather than drop it.
type badFact struct{ F func() }

func (*badFact) AFact() {}

func newFunc(pkg *types.Package, name string) *types.Func {
	sig := types.NewSignatureType(nil, nil, nil, nil, nil, false)
	return types.NewFunc(token.NoPos, pkg, name, sig)
}

func newMethod(pkg *types.Package, recvType, name string) *types.Func {
	tn := types.NewTypeName(token.NoPos, pkg, recvType, nil)
	named := types.NewNamed(tn, types.NewStruct(nil, nil), nil)
	recv := types.NewVar(token.NoPos, pkg, "r", named)
	sig := types.NewSignatureType(recv, nil, nil, nil, nil, false)
	return types.NewFunc(token.NoPos, pkg, name, sig)
}

func testAnalyzer(facts ...Fact) *Analyzer {
	return &Analyzer{Name: "testcheck", FactTypes: facts}
}

func TestExportImportRoundTrip(t *testing.T) {
	a := testAnalyzer(new(markFact))
	s := NewStore([]*Analyzer{a})
	pkg := types.NewPackage("example/p", "p")
	fn := newFunc(pkg, "F")

	s.Export(a, fn, &markFact{Detail: "calls time.Now", Chain: []string{"p.g"}})

	var got markFact
	if !s.Import(a, fn, &got) {
		t.Fatal("Import found no fact after Export")
	}
	if got.Detail != "calls time.Now" || len(got.Chain) != 1 || got.Chain[0] != "p.g" {
		t.Errorf("imported fact = %+v", got)
	}

	// A different fact type on the same object is absent.
	var other otherFact
	if s.Import(a, fn, &other) {
		t.Error("Import matched a fact of a different concrete type")
	}
	// A different object is absent.
	var miss markFact
	if s.Import(a, newFunc(pkg, "G"), &miss) {
		t.Error("Import matched a fact on the wrong object")
	}
}

func TestImportAcrossTypeUniverses(t *testing.T) {
	// The exporting side sees the function through a test-variant package
	// path; the importing side sees a distinct types object from the plain
	// path. The string key must unify them.
	a := testAnalyzer(new(markFact))
	s := NewStore([]*Analyzer{a})
	variant := types.NewPackage("example/p [example/p.test]", "p")
	plain := types.NewPackage("example/p", "p")

	s.Export(a, newMethod(variant, "T", "M"), &markFact{Detail: "allocates"})

	var got markFact
	if !s.Import(a, newMethod(plain, "T", "M"), &got) {
		t.Fatal("fact did not cross the test-variant/plain universe boundary")
	}
	if got.Detail != "allocates" {
		t.Errorf("imported fact = %+v", got)
	}
	// Same name on a different receiver must not match.
	var wrongRecv markFact
	if s.Import(a, newMethod(plain, "U", "M"), &wrongRecv) {
		t.Error("fact leaked across receiver types")
	}
}

func TestSealRoundTripsAndReplaces(t *testing.T) {
	a := testAnalyzer(new(markFact))
	s := NewStore([]*Analyzer{a})
	pkg := types.NewPackage("example/p", "p")
	fn := newFunc(pkg, "F")

	live := &markFact{Detail: "ranges over a map", Chain: []string{"p.h", "p.k"}}
	s.Export(a, fn, live)
	if err := s.Seal(a, "example/p"); err != nil {
		t.Fatalf("Seal: %v", err)
	}
	if s.SealedBytes(a, "example/p") == 0 {
		t.Error("SealedBytes == 0 after sealing a non-empty package")
	}

	// Mutating the originally exported value must not affect the store:
	// Seal replaced it with the decoded copy.
	live.Detail = "mutated"
	var got markFact
	if !s.Import(a, fn, &got) {
		t.Fatal("fact lost by Seal")
	}
	if got.Detail != "ranges over a map" {
		t.Errorf("sealed fact shares memory with the live value: %+v", got)
	}
	if len(got.Chain) != 2 || got.Chain[1] != "p.k" {
		t.Errorf("chain did not survive the gob round-trip: %+v", got)
	}
}

func TestSealEmptyPackageIsNoop(t *testing.T) {
	a := testAnalyzer(new(markFact))
	s := NewStore([]*Analyzer{a})
	if err := s.Seal(a, "example/empty"); err != nil {
		t.Fatalf("Seal of factless package: %v", err)
	}
	if s.SealedBytes(a, "example/empty") != 0 {
		t.Error("SealedBytes nonzero for a factless package")
	}
}

func TestSealFailsOnUnencodableFact(t *testing.T) {
	a := testAnalyzer(new(badFact))
	s := NewStore([]*Analyzer{a})
	pkg := types.NewPackage("example/p", "p")
	s.Export(a, newFunc(pkg, "F"), &badFact{F: func() {}})
	if err := s.Seal(a, "example/p"); err == nil {
		t.Error("Seal silently accepted a gob-unencodable fact")
	}
}

func TestBindWiresPass(t *testing.T) {
	a := testAnalyzer(new(markFact))
	s := NewStore([]*Analyzer{a})
	pkg := types.NewPackage("example/p", "p")
	fn := newFunc(pkg, "F")

	var pass Pass
	s.Bind(a, &pass)
	pass.ExportObjectFact(fn, &markFact{Detail: "boxes int into any"})
	var got markFact
	if !pass.ImportObjectFact(fn, &got) || got.Detail != "boxes int into any" {
		t.Errorf("Bind round-trip = %+v", got)
	}
}
