package analysis

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"go/types"
	"reflect"
	"sort"
	"strings"
)

// Store is the driver-side fact database: per analyzer, per owning
// package, a set of (object, fact) pairs. The driver runs packages in
// dependency order; after an analyzer finishes a package the driver
// calls Seal, which serializes that package's facts with encoding/gob
// and replaces the live values with their decoded round-trip — the same
// discipline x/tools' facts layer enforces between compilation units, so
// every fact type is proven serializable on every run, not just when a
// hypothetical out-of-process driver would need it.
type Store struct {
	// facts[analyzer][ownerPath][objKey] = fact
	facts map[string]map[string]map[string]Fact
	// sealedBytes records each sealed package's encoded size (debug
	// surface; also keeps the encoder honest about actually running).
	sealedBytes map[string]int
}

// NewStore returns an empty fact store and registers the analyzers' fact
// types with gob.
func NewStore(analyzers []*Analyzer) *Store {
	for _, a := range analyzers {
		for _, f := range a.FactTypes {
			gob.Register(f)
		}
	}
	return &Store{
		facts:       make(map[string]map[string]map[string]Fact),
		sealedBytes: make(map[string]int),
	}
}

// objectKey is the stable cross-universe identity facts are keyed by:
// the owning package's normalized path, the receiver type name for
// methods, and the object name. It intentionally matches
// callgraph.ObjectKey for functions.
func objectKey(obj types.Object) (owner, key string) {
	if fn, ok := obj.(*types.Func); ok {
		k := funcKey(fn)
		return ownerOf(obj), k
	}
	return ownerOf(obj), "\x00" + obj.Name()
}

func ownerOf(obj types.Object) string {
	if obj.Pkg() == nil {
		return ""
	}
	return normPath(obj.Pkg().Path())
}

func normPath(path string) string {
	if i := strings.IndexByte(path, ' '); i >= 0 {
		return path[:i]
	}
	return path
}

func funcKey(fn *types.Func) string {
	fn = fn.Origin()
	recv := ""
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			recv = named.Obj().Name()
		} else {
			recv = t.String()
		}
	}
	return recv + "\x00" + fn.Name()
}

func (s *Store) bucket(analyzer, owner string) map[string]Fact {
	byOwner := s.facts[analyzer]
	if byOwner == nil {
		byOwner = make(map[string]map[string]Fact)
		s.facts[analyzer] = byOwner
	}
	m := byOwner[owner]
	if m == nil {
		m = make(map[string]Fact)
		byOwner[owner] = m
	}
	return m
}

// Export attaches a fact to obj under the analyzer's namespace. A second
// export of the same fact type to the same object replaces the first.
func (s *Store) Export(a *Analyzer, obj types.Object, fact Fact) {
	owner, key := objectKey(obj)
	// One fact per (object, concrete type): key by type name too.
	s.bucket(a.Name, owner)[key+"\x00"+factTypeName(fact)] = fact
}

// Import copies the fact of fact's concrete type attached to obj into
// fact, reporting whether one was found.
func (s *Store) Import(a *Analyzer, obj types.Object, fact Fact) bool {
	owner, key := objectKey(obj)
	byOwner := s.facts[a.Name]
	if byOwner == nil {
		return false
	}
	stored, ok := byOwner[owner][key+"\x00"+factTypeName(fact)]
	if !ok {
		return false
	}
	dv, sv := reflect.ValueOf(fact), reflect.ValueOf(stored)
	if dv.Type() != sv.Type() || dv.Kind() != reflect.Ptr {
		return false
	}
	dv.Elem().Set(sv.Elem())
	return true
}

func factTypeName(f Fact) string {
	return reflect.TypeOf(f).String()
}

// sealedFact is the gob wire shape of one (object, fact) pair.
type sealedFact struct {
	Key  string
	Fact Fact
}

// Seal serializes the facts an analyzer has exported for the objects of
// pkgPath, then replaces the live values with the decoded copy. Called
// once per (analyzer, package) after the analyzer's run; a test variant
// sealing the same normalized path later re-seals the union.
func (s *Store) Seal(a *Analyzer, pkgPath string) error {
	owner := normPath(pkgPath)
	m := s.facts[a.Name][owner]
	if len(m) == 0 {
		return nil
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	wire := make([]sealedFact, 0, len(keys))
	for _, k := range keys {
		wire = append(wire, sealedFact{Key: k, Fact: m[k]})
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(wire); err != nil {
		return fmt.Errorf("sealing %s facts for %s: %v", a.Name, owner, err)
	}
	s.sealedBytes[a.Name+"\x00"+owner] = buf.Len()
	var decoded []sealedFact
	if err := gob.NewDecoder(&buf).Decode(&decoded); err != nil {
		return fmt.Errorf("unsealing %s facts for %s: %v", a.Name, owner, err)
	}
	fresh := make(map[string]Fact, len(decoded))
	for _, sf := range decoded {
		fresh[sf.Key] = sf.Fact
	}
	s.facts[a.Name][owner] = fresh
	return nil
}

// SealedBytes returns the encoded size of an analyzer's facts for a
// package after its Seal (0 when none were exported) — a debugging and
// test surface.
func (s *Store) SealedBytes(a *Analyzer, pkgPath string) int {
	return s.sealedBytes[a.Name+"\x00"+normPath(pkgPath)]
}

// Bind wires a pass to this store for the given analyzer.
func (s *Store) Bind(a *Analyzer, pass *Pass) {
	pass.ExportObjectFact = func(obj types.Object, fact Fact) { s.Export(a, obj, fact) }
	pass.ImportObjectFact = func(obj types.Object, fact Fact) bool { return s.Import(a, obj, fact) }
}
