// Package analysis is the minimal analyzer framework softlora-lint is
// built on. It deliberately mirrors the shape of
// golang.org/x/tools/go/analysis — Analyzer, Pass, Diagnostic, object
// facts — so the analyzers read like standard vet passes and can migrate
// to the real framework wholesale if the x/tools dependency ever lands.
// The repo builds offline against the baked-in toolchain only, so the
// framework is pure standard library: packages are loaded by
// internal/lint/load from `go list -export` metadata and type-checked
// with go/types.
//
// Facts make the analyzers modular across packages, the way vet's
// unitchecker is: an analyzer running on package P may attach facts to
// P's objects (ExportObjectFact); when a dependee of P is analyzed later
// — the driver runs packages in dependency order — the same analyzer
// reads them back (ImportObjectFact) instead of re-deriving P. Between
// the export and the import the driver serializes each package's facts
// (see Store), so a fact type must round-trip through encoding/gob and
// carries no pointers into the type-checker.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"softlora/internal/lint/callgraph"
)

// An Analyzer is one static check: a name, a contract description, and a
// Run function invoked once per loaded package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and -only filters.
	Name string
	// Doc is the contract the analyzer enforces, shown by -list.
	Doc string
	// Run performs the check on one package, reporting findings through
	// pass.Report. The result value is unused by the driver (kept for
	// x/tools API symmetry).
	Run func(*Pass) (any, error)
	// FactTypes lists the fact types the analyzer exports and imports,
	// one zero-value pointer each (e.g. new(Allocates)). The driver
	// registers them with gob before the first package runs.
	FactTypes []Fact
}

// A Fact is a serializable observation about a types.Object, exported by
// an analyzer run on the object's package and imported by later runs on
// dependees. Implementations must be gob-encodable pointer types.
type Fact interface {
	// AFact is a marker method (x/tools convention).
	AFact()
}

// A Diagnostic is one finding at one position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
	// Chain, when non-empty, is the interprocedural call chain behind
	// the finding: display names from the reporting function down to the
	// offender. Machine output (-json) carries it structurally; the text
	// format already embeds it in Message.
	Chain []string
}

// A Pass provides one analyzer run with a single type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	Report    func(Diagnostic)

	// ForTest is the package under test when this is a test-variant load
	// ("" otherwise). Package-level directive scoping must not leak into
	// test files; analyzers consult this together with file names.
	ForTest string

	// CallGraph is the whole-load call graph (nil for drivers that do
	// not propagate, e.g. single-package tools).
	CallGraph *callgraph.Graph

	// ExportObjectFact associates a fact with obj, visible to later runs
	// of the same analyzer on dependee packages. Nil when the driver has
	// no fact store.
	ExportObjectFact func(obj types.Object, fact Fact)
	// ImportObjectFact copies the fact of the given concrete type
	// attached to obj into fact, reporting whether one was found. Nil
	// when the driver has no fact store.
	ImportObjectFact func(obj types.Object, fact Fact) bool
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// ReportChain reports a diagnostic carrying an interprocedural chain.
func (p *Pass) ReportChain(pos token.Pos, chain []string, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...), Chain: chain})
}
