// Package analysis is the minimal analyzer framework softlora-lint is
// built on. It deliberately mirrors the shape of
// golang.org/x/tools/go/analysis — Analyzer, Pass, Diagnostic — so the
// analyzers read like standard vet passes and can migrate to the real
// framework wholesale if the x/tools dependency ever lands. The repo
// builds offline against the baked-in toolchain only, so the framework is
// pure standard library: packages are loaded by internal/lint/load from
// `go list -export` metadata and type-checked with go/types.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// An Analyzer is one static check: a name, a contract description, and a
// Run function invoked once per loaded package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and -only filters.
	Name string
	// Doc is the contract the analyzer enforces, shown by -list.
	Doc string
	// Run performs the check on one package, reporting findings through
	// pass.Report. The result value is unused by the driver (kept for
	// x/tools API symmetry).
	Run func(*Pass) (any, error)
}

// A Diagnostic is one finding at one position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// A Pass provides one analyzer run with a single type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	Report    func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}
