// Package lockshard implements the softlora-lint analyzer enforcing the
// sharded-state locking discipline of internal/netserver and the
// no-mutex-copies rule everywhere.
//
// Guarded fields: a struct field annotated
//
//	//softlora:guarded-by <mutexField>
//
// (on the field's doc or trailing comment, where <mutexField> is a
// sync.Mutex or sync.RWMutex field of the same struct) may only be
// accessed in functions that, earlier in their body, called
// Lock/RLock on the same base expression's mutex — e.g. sh.mu.Lock()
// before sh.devices. The check is lexical and intra-procedural by design:
// it matches the repo's idiom of locking and accessing a shard inside one
// function, and it is precisely the idiom that keeps shard reasoning
// local. A function whose caller holds the lock is annotated
// //softlora:locked; a constructor touching a not-yet-shared struct is
// silenced per-site with //softlora:lock-ok <why>.
//
// Mutex copies: copying a value whose type (directly or through nested
// structs/arrays/embedding) contains a sync.Mutex or sync.RWMutex copies
// the lock state — a classic shard-aliasing bug. Flagged: assignments and
// declarations copying such a value, non-pointer function parameters and
// results of such types, and range statements whose value variable copies
// one. Composite-literal construction of a fresh value is fine.
package lockshard

import (
	"go/ast"
	"go/types"

	"softlora/internal/lint/analysis"
	"softlora/internal/lint/directive"
)

// Analyzer is the lock/shard discipline check.
var Analyzer = &analysis.Analyzer{
	Name: "lockshard",
	Doc:  "flag guarded-field access outside the owning lock's scope and by-value copies of mutex-bearing structs",
	Run:  run,
}

// EscapeHatch silences one diagnostic when placed on or above the line.
const EscapeHatch = "lock-ok"

func run(pass *analysis.Pass) (any, error) {
	ix := directive.NewIndex(pass.Fset, pass.Files)
	guarded := collectGuarded(pass)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkGuardedAccess(pass, ix, fn, guarded)
			checkMutexCopies(pass, ix, fn)
		}
	}
	return nil, nil
}

// collectGuarded maps each annotated field object to the name of the
// mutex field that guards it.
func collectGuarded(pass *analysis.Pass) map[types.Object]string {
	guarded := make(map[types.Object]string)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				d, ok := directive.FromComments(field.Doc, "guarded-by")
				if !ok {
					d, ok = directive.FromComments(field.Comment, "guarded-by")
				}
				if !ok || d.Args == "" {
					continue
				}
				for _, name := range field.Names {
					if obj := pass.TypesInfo.Defs[name]; obj != nil {
						guarded[obj] = d.Args
					}
				}
			}
			return true
		})
	}
	return guarded
}

// checkGuardedAccess verifies every guarded-field selector in fn is
// preceded by a Lock/RLock on the same base's mutex.
func checkGuardedAccess(pass *analysis.Pass, ix *directive.Index, fn *ast.FuncDecl, guarded map[types.Object]string) {
	if len(guarded) == 0 || directive.FuncHas(fn, "locked") {
		return
	}
	info := pass.TypesInfo

	// lockCalls: positions of <base>.<mutex>.Lock/RLock calls, keyed by the
	// printed base expression and mutex name.
	type lockSite struct {
		base, mutex string
	}
	locks := make(map[lockSite][]ast.Node)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock") {
			return true
		}
		mu, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
		if !ok || !isMutexType(info.TypeOf(mu)) {
			return true
		}
		locks[lockSite{types.ExprString(mu.X), mu.Sel.Name}] = append(locks[lockSite{types.ExprString(mu.X), mu.Sel.Name}], n)
		return true
	})

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		obj := info.Uses[sel.Sel]
		mutexName, isGuarded := guarded[obj]
		if !isGuarded {
			return true
		}
		if ix.OKAt(sel.Pos(), EscapeHatch) {
			return true
		}
		base := types.ExprString(sel.X)
		for _, lock := range locks[lockSite{base, mutexName}] {
			if lock.Pos() < sel.Pos() {
				return true // locked earlier in this function
			}
		}
		pass.Reportf(sel.Pos(), "access to %s.%s outside %s.%s lock scope: take the shard lock first, annotate the function //softlora:locked if the caller holds it", base, sel.Sel.Name, base, mutexName)
		return true
	})
}

// checkMutexCopies flags by-value copies of mutex-bearing types in fn's
// signature and body.
func checkMutexCopies(pass *analysis.Pass, ix *directive.Index, fn *ast.FuncDecl) {
	info := pass.TypesInfo
	report := func(pos ast.Node, what string, t types.Type) {
		if ix.OKAt(pos.Pos(), EscapeHatch) {
			return
		}
		pass.Reportf(pos.Pos(), "%s copies %s, which contains a sync mutex: pass a pointer", what, t)
	}

	if fn.Type.Params != nil {
		for _, p := range fn.Type.Params.List {
			if t := info.TypeOf(p.Type); containsMutex(t) {
				report(p.Type, "parameter", t)
			}
		}
	}
	if fn.Type.Results != nil {
		for _, r := range fn.Type.Results.List {
			if t := info.TypeOf(r.Type); containsMutex(t) {
				report(r.Type, "result", t)
			}
		}
	}

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, rhs := range n.Rhs {
				if id, ok := n.Lhs[i].(*ast.Ident); ok && id.Name == "_" {
					continue // blank assignment performs no copy
				}
				if copiesMutexValue(info, rhs) {
					report(rhs, "assignment", info.TypeOf(rhs))
				}
			}
		case *ast.ValueSpec:
			for _, v := range n.Values {
				if copiesMutexValue(info, v) {
					report(v, "declaration", info.TypeOf(v))
				}
			}
		case *ast.RangeStmt:
			if n.Value == nil {
				return true
			}
			if t := info.TypeOf(n.Value); containsMutex(t) {
				report(n.Value, "range value", t)
			}
		}
		return true
	})
}

// copiesMutexValue reports whether evaluating e copies an existing
// mutex-bearing value (reading a variable, field, element or
// dereference). Fresh composite literals and function calls construct new
// values and are fine.
func copiesMutexValue(info *types.Info, e ast.Expr) bool {
	if !containsMutex(info.TypeOf(e)) {
		return false
	}
	switch ast.Unparen(e).(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.StarExpr, *ast.IndexExpr:
		return true
	}
	return false
}

// isMutexType reports whether t is sync.Mutex or sync.RWMutex.
func isMutexType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
		(obj.Name() == "Mutex" || obj.Name() == "RWMutex")
}

// containsMutex reports whether t holds a sync.Mutex/RWMutex by value,
// directly or nested in structs and arrays.
func containsMutex(t types.Type) bool {
	return containsMutexDepth(t, 0)
}

func containsMutexDepth(t types.Type, depth int) bool {
	if t == nil || depth > 10 {
		return false
	}
	if isMutexType(t) {
		return true
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if containsMutexDepth(u.Field(i).Type(), depth+1) {
				return true
			}
		}
	case *types.Array:
		return containsMutexDepth(u.Elem(), depth+1)
	}
	return false
}
