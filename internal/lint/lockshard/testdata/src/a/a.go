package a

import "sync"

// shard mirrors the netserver shard: devices is only touched under mu.
type shard struct {
	mu sync.RWMutex
	//softlora:guarded-by mu
	devices map[string]int
}

func good(sh *shard, id string) int {
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return sh.devices[id]
}

func goodWrite(sh *shard, id string, v int) {
	sh.mu.Lock()
	sh.devices[id] = v
	sh.mu.Unlock()
}

func bad(sh *shard, id string) int {
	return sh.devices[id] // want `access to sh\.devices outside sh\.mu lock scope`
}

func badWrite(sh *shard, id string) {
	sh.devices[id] = 1 // want `access to sh\.devices outside sh\.mu lock scope`
	sh.mu.Lock()       // locking after the access does not help
	sh.mu.Unlock()
}

// lockedHelper's caller holds the lock.
//
//softlora:locked
func lockedHelper(sh *shard, id string) int {
	return sh.devices[id]
}

// ctor touches a not-yet-shared shard.
func ctor() *shard {
	sh := &shard{}
	sh.devices = make(map[string]int) //softlora:lock-ok fresh value, not yet shared
	return sh
}

// wrongBase locks one shard but reads another.
func wrongBase(x, y *shard, id string) int {
	x.mu.RLock()
	defer x.mu.RUnlock()
	return y.devices[id] // want `access to y\.devices outside y\.mu lock scope`
}
