package b

func byValueParam(s S) {} // want `parameter copies b\.S`

func byValueResult() (s S) { return } // want `result copies b\.S`

func copyDeref(p *S) {
	v := *p // want `assignment copies b\.S`
	_ = v
}

func copyNested(n Nested) {} // want `parameter copies b\.Nested`

func rangeCopy(ss []S) {
	for _, s := range ss { // want `range value copies b\.S`
		_ = s
	}
}

// Pointers, fresh literals and index-free reads are fine.
func fine(ps []*S) *S {
	fresh := S{n: 1}
	_ = fresh
	for _, p := range ps {
		p.n++
	}
	return &S{}
}

func hatched(p *S) {
	v := *p //softlora:lock-ok snapshot of a quiesced value
	_ = v
}
