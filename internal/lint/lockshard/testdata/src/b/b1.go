// Package b exercises the mutex-copy checks across files: the
// mutex-bearing types live here, the copies in b2.go.
package b

import "sync"

// S carries a mutex directly.
type S struct {
	mu sync.Mutex
	n  int
}

// Nested buries one two levels down.
type Nested struct {
	inner [2]S
}
