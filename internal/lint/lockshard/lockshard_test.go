package lockshard_test

import (
	"testing"

	"softlora/internal/lint/analysistest"
	"softlora/internal/lint/lockshard"
)

func TestLockShard(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), lockshard.Analyzer, "a", "b")
}
