package allocfree_test

import (
	"testing"

	"softlora/internal/lint/allocfree"
	"softlora/internal/lint/analysistest"
)

func TestAllocFree(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), allocfree.Analyzer, "a", "transroot", "transleaf")
}
