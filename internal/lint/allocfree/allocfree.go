// Package allocfree implements the softlora-lint analyzer enforcing the
// strictest allocation contract in the repo: a function annotated
// //softlora:allocfree must not allocate at all in steady state — not
// directly, and not through anything it calls. This is the static twin of
// the testing.AllocsPerRun(…) == 0 pins in the benchmark suites: the pins
// catch a regression after the fact on the configurations the tests
// exercise; the annotation rejects the construct at review time on every
// path.
//
// Flagged inside allocfree functions, transitively through the call
// graph:
//   - make(...) and new(...)
//   - slice and map composite literals, and &T{...} (an escaping
//     composite literal)
//   - append(...) unless the destination was presized in-function with a
//     three-argument make — growth reallocates
//   - function literals (closures capture their environment on the heap)
//   - string ↔ []byte / []rune conversions and non-constant string
//     concatenation
//   - implicit interface conversions (boxing) in call arguments,
//     assignments, returns and var initializers
//   - go statements (a goroutine allocates its stack)
//
// Deliberately not flagged: map index writes (they can grow the table,
// but the repo's hot maps are size-stable after warmup and a map write
// ban would outlaw the bias-database update path the contract exists to
// protect) and offenses inside panic(...) arguments (a panicking path is
// cold by definition).
//
// Callees with no source in the load are modeled by package: calls into
// fmt, errors, sort, strings, bytes, strconv, hash/..., and encoding/...
// are assumed allocating; math, sync/atomic and the rest of the loaded
// graph speak for themselves. A deliberate exception is silenced with
// //softlora:allocfree-ok <why> on the line or the line above; placed on
// a call line it also cuts transitive propagation through that edge.
package allocfree

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"softlora/internal/lint/analysis"
	"softlora/internal/lint/callgraph"
	"softlora/internal/lint/directive"
)

// Analyzer is the zero-allocation contract check.
var Analyzer = &analysis.Analyzer{
	Name:      "allocfree",
	Doc:       "forbid all allocation — make/new, literals, append growth, closures, string conversions, boxing, goroutines — in //softlora:allocfree functions, transitively",
	Run:       run,
	FactTypes: []analysis.Fact{new(Allocates)},
}

// EscapeHatch silences one diagnostic when placed on or above the line.
const EscapeHatch = "allocfree-ok"

// Allocates marks a function that (transitively) allocates. Chain is the
// call path below the function, offender last.
type Allocates struct {
	Detail string
	Chain  []string
}

// AFact marks the type as a serializable analyzer fact.
func (*Allocates) AFact() {}

// allocatingStdlib are import-path prefixes of std packages whose calls
// are modeled as allocating when their source is not in the load.
var allocatingStdlib = []string{
	"fmt", "errors", "sort", "strings", "bytes", "strconv",
	"hash/", "encoding/",
}

func stdlibAllocates(path string) bool {
	for _, p := range allocatingStdlib {
		if path == p || (strings.HasSuffix(p, "/") && strings.HasPrefix(path, p)) {
			return true
		}
	}
	return false
}

func run(pass *analysis.Pass) (any, error) {
	ix := directive.NewIndex(pass.Fset, pass.Files)

	// Classic intra-function check on annotated functions.
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !directive.FuncHas(fn, "allocfree") {
				continue
			}
			s := newScanner(pass.Fset, pass.TypesInfo, ix, fn)
			s.emit = func(pos token.Pos, detail string) bool {
				pass.Reportf(pos, "allocation in an allocfree function: %s", detail)
				return true
			}
			s.walk()
		}
	}

	if pass.CallGraph == nil {
		return nil, nil
	}
	propagate(pass, ix)
	return nil, nil
}

func propagate(pass *analysis.Pass, ix *directive.Index) {
	nodes := packageNodes(pass)
	rule := &callgraph.Rule{
		Graph: pass.CallGraph,
		Direct: func(n *callgraph.Node) *callgraph.Offense {
			if n.Decl.Body == nil {
				return nil
			}
			var off *callgraph.Offense
			s := newScanner(n.Fset, n.Info, ix, n.Decl)
			s.emit = func(pos token.Pos, detail string) bool {
				off = &callgraph.Offense{Detail: detail}
				return false
			}
			s.walk()
			return off
		},
		External: func(n *callgraph.Node) *callgraph.Offense {
			pkg := n.Func.Pkg()
			if pkg == nil {
				return nil
			}
			if path := pkg.Path(); stdlibAllocates(path) {
				return &callgraph.Offense{Detail: "is modeled as allocating (package " + path + ")"}
			}
			return nil
		},
		Imported: func(n *callgraph.Node) *callgraph.Offense {
			if pass.ImportObjectFact == nil {
				return nil
			}
			var a Allocates
			if pass.ImportObjectFact(n.Func, &a) {
				return &callgraph.Offense{Detail: a.Detail, Chain: a.Chain}
			}
			return nil
		},
		EdgeOK: func(e *callgraph.Edge) bool { return ix.OKAt(e.Pos, EscapeHatch) },
	}
	sol := rule.Solve(nodes)

	for _, n := range nodes {
		if off := sol.Offense(n); off != nil && pass.ExportObjectFact != nil {
			pass.ExportObjectFact(n.Func, &Allocates{Detail: off.Detail, Chain: off.Chain})
		}
	}

	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !directive.FuncHas(fn, "allocfree") {
				continue
			}
			tfn, _ := pass.TypesInfo.Defs[fn.Name].(*types.Func)
			n := pass.CallGraph.Node(tfn)
			if n == nil {
				continue
			}
			root := callgraph.DisplayName(tfn)
			for _, e := range n.Out {
				if e.InPanic || ix.OKAt(e.Pos, EscapeHatch) {
					continue
				}
				sub := sol.Lookup(e.Callee)
				if sub == nil {
					continue
				}
				callee := callgraph.DisplayName(e.Callee.Func)
				chain := append([]string{root, callee}, sub.Chain...)
				pass.ReportChain(e.Pos, chain,
					"allocfree function reaches an allocation: %s", sub.Format(root, callee))
			}
		}
	}
}

// packageNodes returns the call-graph nodes of this pass's declared
// functions in deterministic order.
func packageNodes(pass *analysis.Pass) []*callgraph.Node {
	want := make(map[*callgraph.Node]bool)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			tfn, _ := pass.TypesInfo.Defs[fn.Name].(*types.Func)
			if n := pass.CallGraph.Node(tfn); n != nil {
				want[n] = true
			}
		}
	}
	var nodes []*callgraph.Node
	for _, n := range pass.CallGraph.Nodes() {
		if want[n] {
			nodes = append(nodes, n)
		}
	}
	return nodes
}

// scanner walks one function body emitting direct allocation sites.
// Offenses inside panic(...) arguments are always skipped.
type scanner struct {
	fset     *token.FileSet
	info     *types.Info
	ix       *directive.Index
	fn       *ast.FuncDecl
	sig      *types.Signature
	presized map[types.Object]bool
	emit     func(pos token.Pos, detail string) bool
	stopped  bool
}

func newScanner(fset *token.FileSet, info *types.Info, ix *directive.Index, fn *ast.FuncDecl) *scanner {
	s := &scanner{fset: fset, info: info, ix: ix, fn: fn, presized: presizedSlices(info, fn)}
	if obj, ok := info.Defs[fn.Name].(*types.Func); ok {
		s.sig, _ = obj.Type().(*types.Signature)
	}
	return s
}

func (s *scanner) report(pos token.Pos, detail string) {
	if s.stopped || s.ix.OKAt(pos, EscapeHatch) {
		return
	}
	if !s.emit(pos, detail) {
		s.stopped = true
	}
}

func (s *scanner) walk() {
	ast.Inspect(s.fn.Body, func(n ast.Node) bool {
		if s.stopped {
			return false
		}
		switch n := n.(type) {
		case *ast.GoStmt:
			s.report(n.Pos(), "starts a goroutine")
		case *ast.FuncLit:
			s.report(n.Pos(), "allocates a closure")
			// Keep walking the body: its allocations are attributed to
			// the enclosing function, same as the call graph does.
		case *ast.CompositeLit:
			s.composite(n)
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					s.report(n.Pos(), "allocates an escaping composite literal")
				}
			}
		case *ast.BinaryExpr:
			s.concat(n)
		case *ast.CallExpr:
			if s.isPanicCall(n) {
				return false // panicking paths are cold; skip the arguments
			}
			s.call(n)
		case *ast.AssignStmt:
			s.assignBoxing(n)
		case *ast.ReturnStmt:
			s.returnBoxing(n)
		case *ast.ValueSpec:
			s.specBoxing(n)
		}
		return true
	})
}

func (s *scanner) isPanicCall(call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	return ok && s.info.Uses[id] == types.Universe.Lookup("panic")
}

// composite flags slice and map literals; struct literals only allocate
// when escaping, which the &T{...} case catches.
func (s *scanner) composite(lit *ast.CompositeLit) {
	t := s.info.TypeOf(lit)
	if t == nil {
		return
	}
	switch t.Underlying().(type) {
	case *types.Slice:
		s.report(lit.Pos(), "allocates a slice literal")
	case *types.Map:
		s.report(lit.Pos(), "allocates a map literal")
	}
}

// concat flags non-constant string concatenation.
func (s *scanner) concat(b *ast.BinaryExpr) {
	if b.Op != token.ADD {
		return
	}
	tv, ok := s.info.Types[b]
	if !ok || tv.Type == nil || tv.Value != nil { // constant-folded: free
		return
	}
	if bt, isBasic := tv.Type.Underlying().(*types.Basic); isBasic && bt.Info()&types.IsString != 0 {
		s.report(b.Pos(), "concatenates strings")
	}
}

func (s *scanner) call(call *ast.CallExpr) {
	info := s.info
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		s.conversion(call, tv.Type)
		return
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		switch info.Uses[id] {
		case types.Universe.Lookup("make"):
			s.report(call.Pos(), "allocates with make")
			return
		case types.Universe.Lookup("new"):
			s.report(call.Pos(), "allocates with new")
			return
		case types.Universe.Lookup("append"):
			if !s.appendPresized(call) {
				s.report(call.Pos(), "grows a slice with append")
			}
			return
		}
	}
	s.callBoxing(call)
}

// conversion flags string ↔ []byte / []rune conversions.
func (s *scanner) conversion(call *ast.CallExpr, to types.Type) {
	if len(call.Args) != 1 {
		return
	}
	from := s.info.TypeOf(call.Args[0])
	if from == nil {
		return
	}
	if isString(to) && isByteOrRuneSlice(from) {
		s.report(call.Pos(), "converts []byte/[]rune to string")
	} else if isByteOrRuneSlice(to) && isString(from) {
		s.report(call.Pos(), "converts string to []byte/[]rune")
	}
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune ||
		b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

func (s *scanner) appendPresized(call *ast.CallExpr) bool {
	if len(call.Args) == 0 {
		return false
	}
	id, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	if !ok {
		return false
	}
	obj := objOf(s.info, id)
	return obj != nil && s.presized[obj]
}

// presizedSlices collects objects assigned from a three-argument
// make(T, len, cap) — appends to those are capacity-bounded. The make
// itself is still reported; this only exempts the appends.
func presizedSlices(info *types.Info, fn *ast.FuncDecl) map[types.Object]bool {
	set := make(map[types.Object]bool)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			call, ok := ast.Unparen(rhs).(*ast.CallExpr)
			if !ok || len(call.Args) != 3 {
				continue
			}
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); !ok || id.Name != "make" || info.Uses[id] != types.Universe.Lookup("make") {
				continue
			}
			if lhs, ok := as.Lhs[i].(*ast.Ident); ok {
				if obj := objOf(info, lhs); obj != nil {
					set[obj] = true
				}
			}
		}
		return true
	})
	return set
}

func objOf(info *types.Info, id *ast.Ident) types.Object {
	if obj := info.Defs[id]; obj != nil {
		return obj
	}
	return info.Uses[id]
}

// callBoxing flags concrete arguments passed to interface parameters.
func (s *scanner) callBoxing(call *ast.CallExpr) {
	tv, ok := s.info.Types[call.Fun]
	if !ok {
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case i < params.Len()-1 || (i < params.Len() && !sig.Variadic()):
			pt = params.At(i).Type()
		case sig.Variadic() && params.Len() > 0:
			if call.Ellipsis.IsValid() {
				pt = params.At(params.Len() - 1).Type()
			} else if sl, ok := params.At(params.Len() - 1).Type().(*types.Slice); ok {
				pt = sl.Elem()
			}
		}
		s.boxing(arg, pt)
	}
}

func (s *scanner) assignBoxing(as *ast.AssignStmt) {
	if len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i, rhs := range as.Rhs {
		s.boxing(rhs, s.info.TypeOf(as.Lhs[i]))
	}
}

func (s *scanner) returnBoxing(ret *ast.ReturnStmt) {
	if s.sig == nil || len(ret.Results) != s.sig.Results().Len() {
		return
	}
	for i, r := range ret.Results {
		s.boxing(r, s.sig.Results().At(i).Type())
	}
}

func (s *scanner) specBoxing(vs *ast.ValueSpec) {
	if vs.Type == nil || len(vs.Values) == 0 {
		return
	}
	t := s.info.TypeOf(vs.Type)
	for _, v := range vs.Values {
		s.boxing(v, t)
	}
}

func (s *scanner) boxing(expr ast.Expr, want types.Type) {
	if want == nil || !types.IsInterface(want) {
		return
	}
	tv, ok := s.info.Types[expr]
	if !ok || tv.Type == nil || types.IsInterface(tv.Type) {
		return
	}
	if b, isBasic := tv.Type.(*types.Basic); isBasic && b.Kind() == types.UntypedNil {
		return
	}
	s.report(expr.Pos(), "boxes "+tv.Type.String()+" into "+want.String())
}
