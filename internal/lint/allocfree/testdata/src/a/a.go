// Package a exercises the allocfree analyzer's direct construct classes.
package a

import "fmt"

type point struct{ x, y int }

func run() {}

//softlora:allocfree
func direct(n int, s string, bs []byte) {
	m := make([]int, n) // want `allocation in an allocfree function: allocates with make`
	_ = m
	p := new(int) // want `allocation in an allocfree function: allocates with new`
	_ = p
	sl := []int{1, 2} // want `allocation in an allocfree function: allocates a slice literal`
	_ = sl
	mp := map[int]int{1: 2} // want `allocation in an allocfree function: allocates a map literal`
	_ = mp
	pt := &point{1, 2} // want `allocation in an allocfree function: allocates an escaping composite literal`
	_ = pt
	var g []int
	g = append(g, n) // want `allocation in an allocfree function: grows a slice with append`
	_ = g
	f := func() int { return n } // want `allocation in an allocfree function: allocates a closure`
	_ = f
	b2 := []byte(s) // want `allocation in an allocfree function: converts string to \[\]byte/\[\]rune`
	_ = b2
	s2 := string(bs) // want `allocation in an allocfree function: converts \[\]byte/\[\]rune to string`
	_ = s2
	cat := s + "!" // want `allocation in an allocfree function: concatenates strings`
	_ = cat
	var i interface{} = n // want `allocation in an allocfree function: boxes int into interface\{\}`
	_ = i
	go run() // want `allocation in an allocfree function: starts a goroutine`
}

//softlora:allocfree
func presized(n int) []int {
	out := make([]int, 0, n) // want `allocation in an allocfree function: allocates with make`
	for i := 0; i < n; i++ {
		out = append(out, i) // no append diagnostic: capacity-bounded by the make above
	}
	return out
}

//softlora:allocfree
func callsFmt(n int) {
	fmt.Println(n) // want `allocation in an allocfree function: boxes int into any` `allocfree function reaches an allocation: a\.callsFmt → fmt\.Println: fmt\.Println is modeled as allocating \(package fmt\)`
}

//softlora:allocfree
func panics(n int) int {
	if n < 0 {
		// No diagnostic: panic arguments are cold by definition.
		panic(fmt.Sprintf("n = %d", n))
	}
	return n
}

//softlora:allocfree
func hatched(n int) []int {
	//softlora:allocfree-ok fixture exercises the hatch
	out := make([]int, n)
	return out
}

// unannotated is never checked directly; constant-folded concatenation
// and comparisons are fine anywhere.
func unannotated(s string) bool {
	const both = "a" + "b"
	return s == both
}
