// Package transleaf is un-annotated helper code whose allocation reaches
// allocfree callers through facts and the external stdlib model.
package transleaf

import "strings"

// stamp's only offense is reaching strings, which has no source in the
// load: the external model supplies the chain's last hop. (strings.Repeat
// takes concrete arguments, so no boxing precedes the external edge.)
func stamp() string { return strings.Repeat("x", 2) }

// Mid adds one un-annotated hop.
func Mid() string { return stamp() }

// Hatched cuts the chain at its own call site.
func Hatched() string {
	//softlora:allocfree-ok fixture: hop-level hatch stops propagation here
	return stamp()
}
