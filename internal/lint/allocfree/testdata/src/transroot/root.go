// Package transroot exercises cross-package transitive allocfree
// checking, including the allocating-stdlib external model two hops down.
package transroot

import "transleaf"

//softlora:allocfree
func root() string {
	return transleaf.Mid() // want `allocfree function reaches an allocation: transroot\.root → transleaf\.Mid → transleaf\.stamp → strings\.Repeat: strings\.Repeat is modeled as allocating \(package strings\)`
}

//softlora:allocfree
func viaHatched() string {
	// No diagnostic: the chain is cut inside transleaf.
	return transleaf.Hatched()
}

//softlora:allocfree
func edgeHatch() string {
	//softlora:allocfree-ok fixture: root edge accepts the callee's allocation
	return transleaf.Mid()
}
