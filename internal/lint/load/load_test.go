package load

import (
	"strings"
	"testing"
)

// The load tests run `go list` against this module itself — the same way
// the driver uses the package — so they exercise real export data and
// real test-variant metadata.

func TestLoadDependencyOrder(t *testing.T) {
	pkgs, err := Load(".", "softlora/internal/lint/...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 5 {
		t.Fatalf("loaded %d packages, expected the lint tree", len(pkgs))
	}
	seen := make(map[string]bool, len(pkgs))
	for _, p := range pkgs {
		for _, imp := range p.Imports {
			if strings.HasPrefix(imp, "softlora/") && hasPkg(pkgs, imp) && !seen[imp] {
				t.Errorf("%s precedes its import %s", p.PkgPath, imp)
			}
		}
		seen[p.PkgPath] = true
	}
}

func TestLoadDeterministic(t *testing.T) {
	order := func() []string {
		pkgs, err := Load(".", "softlora/internal/lint/directive", "softlora/internal/lint/callgraph", "softlora/internal/lint/analysis")
		if err != nil {
			t.Fatal(err)
		}
		var paths []string
		for _, p := range pkgs {
			paths = append(paths, p.PkgPath)
		}
		return paths
	}
	first := order()
	for i := 0; i < 2; i++ {
		if got := order(); strings.Join(got, ",") != strings.Join(first, ",") {
			t.Fatalf("load order unstable: %v vs %v", got, first)
		}
	}
}

func TestLoadTestVariants(t *testing.T) {
	pkgs, err := LoadPackages(".", Options{Tests: true}, "softlora/internal/lint/directive")
	if err != nil {
		t.Fatal(err)
	}

	var plain, variant *Package
	for _, p := range pkgs {
		if strings.HasSuffix(p.PkgPath, ".test") {
			t.Errorf("generated test main %s leaked into the load", p.PkgPath)
		}
		switch {
		case p.PkgPath == "softlora/internal/lint/directive":
			plain = p
		case strings.HasPrefix(p.PkgPath, "softlora/internal/lint/directive ["):
			variant = p
		}
	}
	if plain == nil {
		t.Fatal("plain package missing from -test load")
	}
	if plain.ForTest != "" {
		t.Errorf("plain package has ForTest = %q", plain.ForTest)
	}
	if variant == nil {
		t.Fatal("internal test variant missing from -test load")
	}
	if variant.ForTest != "softlora/internal/lint/directive" {
		t.Errorf("variant ForTest = %q", variant.ForTest)
	}
	// The variant includes the package's regular files plus its _test.go
	// files, type-checked under the plain path.
	if len(variant.Syntax) <= len(plain.Syntax) {
		t.Errorf("variant has %d files, plain has %d; expected test files on top",
			len(variant.Syntax), len(plain.Syntax))
	}
	if got := variant.Types.Path(); got != "softlora/internal/lint/directive" {
		t.Errorf("variant type-checked under %q, want the plain path", got)
	}
}

func hasPkg(pkgs []*Package, path string) bool {
	for _, p := range pkgs {
		if p.PkgPath == path {
			return true
		}
	}
	return false
}
