// Package load turns `go list` package metadata into parsed, type-checked
// packages for the analyzers — a standard-library stand-in for
// golang.org/x/tools/go/packages. Import resolution uses the compiler
// export data the build cache already holds: `go list -export -deps`
// names an export file for every dependency (including the module's own
// packages), and go/importer's gc importer reads those files through a
// lookup function, so no package is ever type-checked twice and the whole
// load works offline.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// Package is one parsed and type-checked package.
type Package struct {
	PkgPath   string
	Dir       string
	Fset      *token.FileSet
	Syntax    []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
}

// listEntry is the subset of `go list -json` output the loader consumes.
type listEntry struct {
	ImportPath string
	Dir        string
	Name       string
	GoFiles    []string
	Export     string
	Standard   bool
}

func goList(dir string, args ...string) ([]listEntry, error) {
	cmd := exec.Command("go", append([]string{"list"}, args...)...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", args, err, stderr.String())
	}
	var entries []listEntry
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var e listEntry
		if err := dec.Decode(&e); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list %v: decoding output: %v", args, err)
		}
		entries = append(entries, e)
	}
	return entries, nil
}

// Load parses and type-checks the packages matched by patterns (./... by
// default), resolving their imports from build-cache export data. dir is
// the module directory the patterns are interpreted in.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	targets, err := goList(dir, append([]string{"-json=ImportPath,Dir,Name,GoFiles"}, patterns...)...)
	if err != nil {
		return nil, err
	}
	// -export builds (or reuses) export data for every dependency; the
	// -deps closure covers the targets' own imports of each other.
	deps, err := goList(dir, append([]string{"-export", "-deps", "-json=ImportPath,Export,Standard"}, patterns...)...)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(deps))
	for _, e := range deps {
		if e.Export != "" {
			exports[e.ImportPath] = e.Export
		}
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})

	var pkgs []*Package
	for _, t := range targets {
		if len(t.GoFiles) == 0 {
			continue
		}
		var files []*ast.File
		for _, name := range t.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(t.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("parsing %s: %v", name, err)
			}
			files = append(files, f)
		}
		info := NewInfo()
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(t.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("type-checking %s: %v", t.ImportPath, err)
		}
		pkgs = append(pkgs, &Package{
			PkgPath:   t.ImportPath,
			Dir:       t.Dir,
			Fset:      fset,
			Syntax:    files,
			Types:     tpkg,
			TypesInfo: info,
		})
	}
	return pkgs, nil
}

// NewInfo returns a types.Info with every map the analyzers consume
// allocated.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
}
