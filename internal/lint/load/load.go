// Package load turns `go list` package metadata into parsed, type-checked
// packages for the analyzers — a standard-library stand-in for
// golang.org/x/tools/go/packages. Import resolution uses the compiler
// export data the build cache already holds: `go list -export -deps`
// names an export file for every dependency (including the module's own
// packages), and go/importer's gc importer reads those files through a
// lookup function, so no package is ever type-checked twice and the whole
// load works offline.
//
// Packages are returned in dependency order — every package appears after
// the packages it imports (among those loaded) — which is what lets the
// softlora-lint driver compute analyzer facts for a dependency before any
// of its dependees ask for them (see internal/lint/analysis.Store).
//
// With Options.Tests, `go list -test` is used instead and the load also
// yields each package's test variants: the internal variant
// ("p [p.test]", the package's own files plus its _test.go files) and the
// external test package ("p_test [p.test]"). Test variants are
// type-checked under their plain import path — exactly how the compiler
// builds them — and their imports are remapped through go list's
// ImportMap, so an external test package resolves its import of "p" to
// the test variant's export data, never the plain build's.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed and type-checked package.
type Package struct {
	// PkgPath is the full `go list` import path, including the
	// " [p.test]" suffix on test variants.
	PkgPath string
	// ForTest names the package under test for test variants ("" for
	// ordinary packages). Analyzers use it to tell test-variant loads
	// apart from plain ones (package-level directive scoping must not
	// leak into test code).
	ForTest string
	Dir     string
	// Imports are the package's direct imports after ImportMap
	// resolution, restricted to packages in the same load (the edges the
	// dependency ordering is computed from).
	Imports   []string
	Fset      *token.FileSet
	Syntax    []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
}

// Options configures a Load.
type Options struct {
	// Tests also loads each matched package's test variants (go list
	// -test): the augmented internal variant and the external _test
	// package. Generated test mains (the ".test" binaries) are never
	// returned.
	Tests bool
}

// listEntry is the subset of `go list -json` output the loader consumes.
type listEntry struct {
	ImportPath string
	Dir        string
	Name       string
	GoFiles    []string
	Imports    []string
	ImportMap  map[string]string
	ForTest    string
	Export     string
	Standard   bool
}

func goList(dir string, args ...string) ([]listEntry, error) {
	cmd := exec.Command("go", append([]string{"list"}, args...)...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", args, err, stderr.String())
	}
	var entries []listEntry
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var e listEntry
		if err := dec.Decode(&e); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list %v: decoding output: %v", args, err)
		}
		entries = append(entries, e)
	}
	return entries, nil
}

// Load parses and type-checks the packages matched by patterns (./... by
// default) with default options. dir is the module directory the patterns
// are interpreted in.
func Load(dir string, patterns ...string) ([]*Package, error) {
	return LoadPackages(dir, Options{}, patterns...)
}

// LoadPackages parses and type-checks the packages matched by patterns
// (./... by default), resolving their imports from build-cache export
// data. The returned slice is in dependency order: a package always
// follows every package it imports that is also in the slice.
func LoadPackages(dir string, opts Options, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	listFlags := []string{"-json=ImportPath,Dir,Name,GoFiles,Imports,ImportMap,ForTest"}
	if opts.Tests {
		listFlags = append(listFlags, "-test")
	}
	targets, err := goList(dir, append(listFlags, patterns...)...)
	if err != nil {
		return nil, err
	}
	// -export builds (or reuses) export data for every dependency; the
	// -deps closure covers the targets' own imports of each other,
	// including test variants when -test is on.
	depFlags := []string{"-export", "-deps", "-json=ImportPath,Export,Standard"}
	if opts.Tests {
		depFlags = append(depFlags, "-test")
	}
	deps, err := goList(dir, append(depFlags, patterns...)...)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(deps))
	for _, e := range deps {
		if e.Export != "" {
			exports[e.ImportPath] = e.Export
		}
	}

	fset := token.NewFileSet()
	gc := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})

	var pkgs []*Package
	for _, t := range order(targets) {
		if len(t.GoFiles) == 0 || isTestMain(t) {
			continue
		}
		var files []*ast.File
		for _, name := range t.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(t.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("parsing %s: %v", name, err)
			}
			files = append(files, f)
		}
		info := NewInfo()
		conf := types.Config{Importer: &mappedImporter{gc: gc, m: t.ImportMap}}
		// Test variants type-check under their plain path, matching how
		// the compiler names them; exports map lookups still use the full
		// bracketed path via ImportMap.
		checkPath := t.ImportPath
		if t.ForTest != "" {
			checkPath = t.ForTest
			if t.Name != "" && strings.HasSuffix(t.Name, "_test") {
				checkPath += "_test"
			}
		}
		tpkg, err := conf.Check(checkPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("type-checking %s: %v", t.ImportPath, err)
		}
		pkgs = append(pkgs, &Package{
			PkgPath:   t.ImportPath,
			ForTest:   t.ForTest,
			Dir:       t.Dir,
			Imports:   resolvedImports(t),
			Fset:      fset,
			Syntax:    files,
			Types:     tpkg,
			TypesInfo: info,
		})
	}
	return pkgs, nil
}

// isTestMain reports whether an entry is a generated test binary main
// package — go list -test's "p.test" entries, whose single source file
// lives in the build cache. They carry no contracts worth checking.
func isTestMain(t listEntry) bool {
	return strings.HasSuffix(t.ImportPath, ".test") && t.Name == "main"
}

// resolvedImports maps an entry's imports through its ImportMap (vendor
// and test-variant remappings).
func resolvedImports(t listEntry) []string {
	out := make([]string, 0, len(t.Imports))
	for _, imp := range t.Imports {
		if mapped, ok := t.ImportMap[imp]; ok {
			imp = mapped
		}
		out = append(out, imp)
	}
	return out
}

// order sorts entries into dependency order: every entry appears after
// all entries it imports (resolved through ImportMap) that are in the
// set. Ties — and the starting order — are lexical by import path, so
// the result is deterministic for a given target set. Import cycles
// cannot occur between Go packages; test-variant self-references are cut
// by the bracketed-name distinction.
func order(targets []listEntry) []listEntry {
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })
	byPath := make(map[string]int, len(targets))
	for i, t := range targets {
		byPath[t.ImportPath] = i
	}
	var out []listEntry
	state := make([]int, len(targets)) // 0 unvisited, 1 visiting, 2 done
	var visit func(i int)
	visit = func(i int) {
		if state[i] != 0 {
			return
		}
		state[i] = 1
		for _, imp := range resolvedImports(targets[i]) {
			if j, ok := byPath[imp]; ok && state[j] == 0 {
				visit(j)
			}
		}
		state[i] = 2
		out = append(out, targets[i])
	}
	for i := range targets {
		visit(i)
	}
	return out
}

// mappedImporter resolves import paths through a go list ImportMap before
// delegating to the export-data importer, so a test package's import of
// "p" reaches the test variant "p [p.test]" it was actually compiled
// against.
type mappedImporter struct {
	gc types.Importer
	m  map[string]string
}

func (mi *mappedImporter) Import(path string) (*types.Package, error) {
	if mapped, ok := mi.m[path]; ok {
		path = mapped
	}
	return mi.gc.Import(path)
}

// NewInfo returns a types.Info with every map the analyzers consume
// allocated.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
}
