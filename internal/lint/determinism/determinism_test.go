package determinism_test

import (
	"testing"

	"softlora/internal/lint/analysistest"
	"softlora/internal/lint/determinism"
)

func TestDeterminism(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), determinism.Analyzer, "a", "b", "transroot", "transleaf")
}
