// Package determinism implements the softlora-lint analyzer enforcing the
// repo's reproducibility contract: verdict-commit and serialization code
// must be a pure function of its inputs. Bit-identical verdicts and
// database bytes across worker counts, float lanes and delivery schedules
// (the `make determinism` gates) cannot survive wall-clock reads, global
// random state, or map iteration order leaking into committed results.
//
// Scope: every function of a package that carries a
// //softlora:deterministic package directive (internal/core and
// internal/netserver), plus any individual function annotated
// //softlora:deterministic elsewhere.
//
// Flagged inside scoped functions:
//   - time.Now / time.Since / time.Until — wall-clock reads
//   - math/rand and math/rand/v2 package-level draws (the process-global
//     generator); explicitly seeded *rand.Rand values are fine
//   - range over a map — iteration order is randomized per run
//
// A site that is deliberately order- or clock-insensitive (a map range
// that fills another map or feeds a sorting step, a retry-backoff clock
// that never touches verdicts) is silenced with
// //softlora:nondeterministic-ok <why> on the line or the line above.
package determinism

import (
	"go/ast"
	"go/types"

	"softlora/internal/lint/analysis"
	"softlora/internal/lint/directive"
)

// Analyzer is the determinism contract check.
var Analyzer = &analysis.Analyzer{
	Name: "determinism",
	Doc:  "flag wall-clock, global-rand and map-iteration nondeterminism in deterministic (verdict/serialization) code",
	Run:  run,
}

// EscapeHatch silences one diagnostic when placed on or above the line.
const EscapeHatch = "nondeterministic-ok"

// globalRand is the set of math/rand (and v2) package-level functions that
// draw from the shared process-global generator.
var globalRand = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int32": true, "Int32N": true, "Int63": true, "Int63n": true,
	"Int64": true, "Int64N": true, "IntN": true, "N": true,
	"Uint": true, "Uint32": true, "Uint32N": true, "Uint64": true,
	"Uint64N": true, "UintN": true, "Float32": true, "Float64": true,
	"ExpFloat64": true, "NormFloat64": true, "Perm": true,
	"Shuffle": true, "Read": true, "Seed": true,
}

var wallClock = map[string]bool{"Now": true, "Since": true, "Until": true}

func run(pass *analysis.Pass) (any, error) {
	ix := directive.NewIndex(pass.Fset, pass.Files)
	pkgScoped := ix.PackageHas("deterministic")
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if !pkgScoped && !directive.FuncHas(fn, "deterministic") {
				continue
			}
			checkFunc(pass, ix, fn)
		}
	}
	return nil, nil
}

func checkFunc(pass *analysis.Pass, ix *directive.Index, fn *ast.FuncDecl) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			obj := calleeFunc(pass.TypesInfo, n)
			if obj == nil || obj.Pkg() == nil {
				return true
			}
			switch obj.Pkg().Path() {
			case "time":
				if wallClock[obj.Name()] && !ix.OKAt(n.Pos(), EscapeHatch) {
					pass.Reportf(n.Pos(), "call to time.%s in deterministic code: commits must be pure functions of their inputs", obj.Name())
				}
			case "math/rand", "math/rand/v2":
				if globalRand[obj.Name()] && !ix.OKAt(n.Pos(), EscapeHatch) {
					pass.Reportf(n.Pos(), "call to global %s.%s in deterministic code: use an explicitly seeded generator", obj.Pkg().Name(), obj.Name())
				}
			}
		case *ast.RangeStmt:
			t := pass.TypesInfo.TypeOf(n.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); isMap && !ix.OKAt(n.Pos(), EscapeHatch) {
				pass.Reportf(n.Pos(), "range over map in deterministic code: iteration order is nondeterministic (sorted-ID encoding is the rule)")
			}
		}
		return true
	})
}

// calleeFunc resolves a call's target to a package-level *types.Func (nil
// for builtins, method values through interfaces, and local closures).
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	if fn == nil {
		return nil
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return nil // a method (e.g. on a seeded *rand.Rand), not a package function
	}
	return fn
}
