// Package determinism implements the softlora-lint analyzer enforcing the
// repo's reproducibility contract: verdict-commit and serialization code
// must be a pure function of its inputs. Bit-identical verdicts and
// database bytes across worker counts, float lanes and delivery schedules
// (the `make determinism` gates) cannot survive wall-clock reads, global
// random state, or map iteration order leaking into committed results.
//
// Scope: every function of a package that carries a
// //softlora:deterministic package directive (internal/core and
// internal/netserver), plus any individual function annotated
// //softlora:deterministic elsewhere. The package directive does not
// reach _test.go files — test code reads clocks legitimately — so in a
// test-variant load only explicitly annotated test functions are
// checked.
//
// Flagged inside scoped functions:
//   - time.Now / time.Since / time.Until — wall-clock reads
//   - math/rand and math/rand/v2 package-level draws (the process-global
//     generator); explicitly seeded *rand.Rand values are fine
//   - range over a map — iteration order is randomized per run
//
// The check is interprocedural: a scoped function calling — through any
// number of un-annotated helpers, across package boundaries — a function
// that commits one of the violations above is flagged at its own call
// edge, with the offending chain spelled out
// ("a → b → c: c calls time.Now"). Per-function findings are exported as
// object facts (CallsWallClock, DrawsGlobalRand, RangesOverMap) that the
// driver serializes per package in dependency order, so the propagation
// stays modular. An escape hatch at any hop — on the primitive site or
// on an intermediate call — cuts the chain there.
//
// A site that is deliberately order- or clock-insensitive (a map range
// that fills another map or feeds a sorting step, a retry-backoff clock
// that never touches verdicts) is silenced with
// //softlora:nondeterministic-ok <why> on the line or the line above.
package determinism

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"softlora/internal/lint/analysis"
	"softlora/internal/lint/callgraph"
	"softlora/internal/lint/directive"
)

// Analyzer is the determinism contract check.
var Analyzer = &analysis.Analyzer{
	Name: "determinism",
	Doc:  "flag wall-clock, global-rand and map-iteration nondeterminism in deterministic (verdict/serialization) code, transitively through the call graph",
	Run:  run,
	FactTypes: []analysis.Fact{
		new(CallsWallClock), new(DrawsGlobalRand), new(RangesOverMap),
	},
}

// EscapeHatch silences one diagnostic when placed on or above the line.
const EscapeHatch = "nondeterministic-ok"

// CallsWallClock marks a function that (transitively) reads the wall
// clock. Chain is the call path below the function, offender last.
type CallsWallClock struct {
	Detail string
	Chain  []string
}

// AFact marks the type as a serializable analyzer fact.
func (*CallsWallClock) AFact() {}

// DrawsGlobalRand marks a function that (transitively) draws from the
// process-global math/rand generator.
type DrawsGlobalRand struct {
	Detail string
	Chain  []string
}

// AFact marks the type as a serializable analyzer fact.
func (*DrawsGlobalRand) AFact() {}

// RangesOverMap marks a function that (transitively) ranges over a map.
type RangesOverMap struct {
	Detail string
	Chain  []string
}

// AFact marks the type as a serializable analyzer fact.
func (*RangesOverMap) AFact() {}

// Offense kinds, used to pick the fact type.
const (
	kindWallClock = "wallclock"
	kindRand      = "rand"
	kindMapRange  = "maprange"
)

// globalRand is the set of math/rand (and v2) package-level functions that
// draw from the shared process-global generator.
var globalRand = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int32": true, "Int32N": true, "Int63": true, "Int63n": true,
	"Int64": true, "Int64N": true, "IntN": true, "N": true,
	"Uint": true, "Uint32": true, "Uint32N": true, "Uint64": true,
	"Uint64N": true, "UintN": true, "Float32": true, "Float64": true,
	"ExpFloat64": true, "NormFloat64": true, "Perm": true,
	"Shuffle": true, "Read": true, "Seed": true,
}

var wallClock = map[string]bool{"Now": true, "Since": true, "Until": true}

func isTestFile(fset *token.FileSet, pos token.Pos) bool {
	return strings.HasSuffix(fset.Position(pos).Filename, "_test.go")
}

func run(pass *analysis.Pass) (any, error) {
	ix := directive.NewIndex(pass.Fset, pass.Files)
	pkgScoped := ix.PackageHasNonTest("deterministic")
	inScope := func(fn *ast.FuncDecl) bool {
		if directive.FuncHas(fn, "deterministic") {
			return true
		}
		return pkgScoped && !isTestFile(pass.Fset, fn.Pos())
	}

	// Classic intra-function check: direct violations inside scoped
	// functions report at the primitive site.
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !inScope(fn) {
				continue
			}
			scanBody(pass.Fset, pass.TypesInfo, ix, fn.Body, func(pos token.Pos, kind, classic string) bool {
				pass.Reportf(pos, "%s", classic)
				return true // keep scanning: report every direct site
			})
		}
	}

	if pass.CallGraph == nil {
		return nil, nil
	}
	propagate(pass, ix, inScope)
	return nil, nil
}

// propagate runs the interprocedural half: fact export for every
// function of the package, and call-edge chain reporting for scoped
// functions.
func propagate(pass *analysis.Pass, ix *directive.Index, inScope func(*ast.FuncDecl) bool) {
	nodes := packageNodes(pass)
	rule := &callgraph.Rule{
		Graph: pass.CallGraph,
		Direct: func(n *callgraph.Node) *callgraph.Offense {
			var off *callgraph.Offense
			if n.Decl.Body == nil {
				return nil
			}
			scanBody(n.Fset, n.Info, ix, n.Decl.Body, func(pos token.Pos, kind, classic string) bool {
				off = &callgraph.Offense{Kind: kind, Detail: detailFor(kind, classic)}
				return false // first offense is the fact
			})
			return off
		},
		// External: the nondeterministic primitives are always *direct*
		// calls into time / math/rand, caught by scanBody in whichever
		// loaded function makes them; an unloaded callee body cannot be
		// modeled and is assumed clean (lint runs on ./..., so in
		// practice every project package is loaded).
		External: nil,
		Imported: func(n *callgraph.Node) *callgraph.Offense {
			return importFact(pass, n.Func)
		},
		EdgeOK: func(e *callgraph.Edge) bool { return ix.OKAt(e.Pos, EscapeHatch) },
	}
	sol := rule.Solve(nodes)

	// Export one fact per offending function of this package.
	for _, n := range nodes {
		off := sol.Offense(n)
		if off == nil || pass.ExportObjectFact == nil {
			continue
		}
		switch off.Kind {
		case kindWallClock:
			pass.ExportObjectFact(n.Func, &CallsWallClock{Detail: off.Detail, Chain: off.Chain})
		case kindRand:
			pass.ExportObjectFact(n.Func, &DrawsGlobalRand{Detail: off.Detail, Chain: off.Chain})
		case kindMapRange:
			pass.ExportObjectFact(n.Func, &RangesOverMap{Detail: off.Detail, Chain: off.Chain})
		}
	}

	// Report scoped functions whose un-hatched call edges reach an
	// offense. Direct violations in the scoped body itself were already
	// reported by the classic check, so only callee offenses are raised
	// here.
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !inScope(fn) {
				continue
			}
			tfn, _ := pass.TypesInfo.Defs[fn.Name].(*types.Func)
			n := pass.CallGraph.Node(tfn)
			if n == nil {
				continue
			}
			root := callgraph.DisplayName(tfn)
			for _, e := range n.Out {
				if e.InPanic || ix.OKAt(e.Pos, EscapeHatch) {
					continue
				}
				sub := sol.Lookup(e.Callee)
				if sub == nil {
					continue
				}
				callee := callgraph.DisplayName(e.Callee.Func)
				chain := append([]string{root, callee}, sub.Chain...)
				pass.ReportChain(e.Pos, chain,
					"deterministic code reaches nondeterminism: %s", sub.Format(root, callee))
			}
		}
	}
}

// importFact maps a dependency function's exported fact, if any, back to
// an offense.
func importFact(pass *analysis.Pass, fn *types.Func) *callgraph.Offense {
	if pass.ImportObjectFact == nil {
		return nil
	}
	var wc CallsWallClock
	if pass.ImportObjectFact(fn, &wc) {
		return &callgraph.Offense{Kind: kindWallClock, Detail: wc.Detail, Chain: wc.Chain}
	}
	var gr DrawsGlobalRand
	if pass.ImportObjectFact(fn, &gr) {
		return &callgraph.Offense{Kind: kindRand, Detail: gr.Detail, Chain: gr.Chain}
	}
	var rm RangesOverMap
	if pass.ImportObjectFact(fn, &rm) {
		return &callgraph.Offense{Kind: kindMapRange, Detail: rm.Detail, Chain: rm.Chain}
	}
	return nil
}

// packageNodes returns the call-graph nodes of this pass's declared
// functions, in deterministic (key) order courtesy of Graph.Nodes.
func packageNodes(pass *analysis.Pass) []*callgraph.Node {
	want := make(map[*callgraph.Node]bool)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			tfn, _ := pass.TypesInfo.Defs[fn.Name].(*types.Func)
			if n := pass.CallGraph.Node(tfn); n != nil {
				want[n] = true
			}
		}
	}
	var nodes []*callgraph.Node
	for _, n := range pass.CallGraph.Nodes() {
		if want[n] {
			nodes = append(nodes, n)
		}
	}
	return nodes
}

// detailFor compresses a classic diagnostic into the chain-detail form
// ("calls time.Now").
func detailFor(kind, classic string) string {
	switch kind {
	case kindMapRange:
		return "ranges over a map"
	default:
		// classic messages open with "call to X in deterministic code:
		// ..."; the detail is "calls X".
		msg := strings.TrimPrefix(classic, "call to ")
		if i := strings.Index(msg, " in deterministic code"); i >= 0 {
			msg = msg[:i]
		}
		msg = strings.TrimPrefix(msg, "global ")
		return "calls " + msg
	}
}

// scanBody walks one function body for direct nondeterminism, invoking
// visit for each un-hatched violation (kind + the classic diagnostic
// text). visit returns false to stop the scan.
func scanBody(fset *token.FileSet, info *types.Info, ix *directive.Index, body *ast.BlockStmt, visit func(pos token.Pos, kind, classic string) bool) {
	stop := false
	ast.Inspect(body, func(n ast.Node) bool {
		if stop {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			obj := calleeFunc(info, n)
			if obj == nil || obj.Pkg() == nil {
				return true
			}
			switch obj.Pkg().Path() {
			case "time":
				if wallClock[obj.Name()] && !ix.OKAt(n.Pos(), EscapeHatch) {
					if !visit(n.Pos(), kindWallClock, "call to time."+obj.Name()+" in deterministic code: commits must be pure functions of their inputs") {
						stop = true
					}
				}
			case "math/rand", "math/rand/v2":
				if globalRand[obj.Name()] && !ix.OKAt(n.Pos(), EscapeHatch) {
					if !visit(n.Pos(), kindRand, "call to global "+obj.Pkg().Name()+"."+obj.Name()+" in deterministic code: use an explicitly seeded generator") {
						stop = true
					}
				}
			}
		case *ast.RangeStmt:
			t := info.TypeOf(n.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); isMap && !ix.OKAt(n.Pos(), EscapeHatch) {
				if !visit(n.Pos(), kindMapRange, "range over map in deterministic code: iteration order is nondeterministic (sorted-ID encoding is the rule)") {
					stop = true
				}
			}
		}
		return !stop
	})
}

// calleeFunc resolves a call's target to a package-level *types.Func (nil
// for builtins, method values through interfaces, and local closures).
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	if fn == nil {
		return nil
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return nil // a method (e.g. on a seeded *rand.Rand), not a package function
	}
	return fn
}
