// Package b exercises the determinism analyzer's per-function scope: no
// package directive, so only annotated functions are checked.
package b

import "time"

func unscoped() time.Time {
	return time.Now() // not in scope: no directive anywhere
}
