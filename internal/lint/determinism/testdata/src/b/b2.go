package b

import "time"

// scoped commits a verdict-like result and opts in individually.
//
//softlora:deterministic
func scoped(m map[int]int) int64 {
	n := time.Now().UnixNano() // want `call to time\.Now in deterministic code`
	for k := range m {         // want `range over map in deterministic code`
		n += int64(k)
	}
	return n
}
