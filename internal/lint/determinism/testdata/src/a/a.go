// Package a exercises the determinism analyzer's package-directive scope.
//
//softlora:deterministic
package a

import (
	"math/rand"
	"time"
)

func commit(m map[string]int) int {
	t := time.Now() // want `call to time\.Now in deterministic code`
	_ = t
	d := time.Since(time.Time{}) // want `call to time\.Since in deterministic code`
	_ = d
	x := rand.Int()     // want `call to global rand\.Int in deterministic code`
	f := rand.Float64() // want `call to global rand\.Float64 in deterministic code`
	_ = f
	for k, v := range m { // want `range over map in deterministic code`
		_ = k
		x += v
	}
	return x
}

func seeded(m map[string]int) int {
	// An explicitly seeded generator is deterministic.
	r := rand.New(rand.NewSource(42))
	x := r.Intn(10)
	//softlora:nondeterministic-ok fills another map; order cannot leak
	for k, v := range m {
		_ = k
		x += v
	}
	y := rand.Intn(3) //softlora:nondeterministic-ok fixture exercises same-line hatch
	return x + y
}
