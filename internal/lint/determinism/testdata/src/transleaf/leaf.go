// Package transleaf is un-scoped helper code; a deterministic package
// calling into it must inherit its wall-clock read through the fact
// propagation, not by being scoped itself.
package transleaf

import "time"

// Stamp reads the wall clock directly.
func Stamp() float64 { return float64(time.Now().UnixNano()) }

// Mid adds one un-annotated hop to the chain.
func Mid() float64 { return Stamp() }

// Hatched cuts the chain at its own call site: callers see no offense.
func Hatched() float64 {
	//softlora:nondeterministic-ok fixture: hop-level hatch stops propagation here
	return Stamp()
}
