package transroot

import "time"

// The package-level //softlora:deterministic directive must not reach
// _test.go files: no diagnostic here.
func helperClock() int64 { return time.Now().UnixNano() }

//softlora:deterministic
func annotatedTestHelper() int64 {
	return time.Now().UnixNano() // want `call to time\.Now in deterministic code`
}
