// Package transroot exercises cross-package transitive determinism: the
// package is scoped, its offenses live two un-annotated hops away in
// package transleaf.
//
//softlora:deterministic
package transroot
