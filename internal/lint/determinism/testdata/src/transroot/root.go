package transroot

import "transleaf"

func commitDeep() float64 {
	return transleaf.Mid() // want `deterministic code reaches nondeterminism: transroot\.commitDeep → transleaf\.Mid → transleaf\.Stamp: transleaf\.Stamp calls time\.Now`
}

func viaHatched() float64 {
	// No diagnostic: the chain is cut inside transleaf.
	return transleaf.Hatched()
}

func hatchAtRoot() float64 {
	//softlora:nondeterministic-ok fixture: root-edge hatch accepts the callee
	return transleaf.Mid()
}
