// Package lint is softlora's static-contract suite: six analyzers that
// machine-check, at the source level, the invariants the runtime test
// gates (`make determinism`, the zero-alloc regression tests, the race
// suite) would otherwise only catch after a violation ships. They run as
// `make lint` (cmd/softlora-lint -tests ./...) in CI; the repo must stay
// clean.
//
// # The analyzers
//
//   - determinism — verdict-commit and serialization code must be a pure
//     function of its inputs: no time.Now/Since/Until, no process-global
//     math/rand draws, no map-range whose order can leak into committed
//     state. Scoped to packages carrying //softlora:deterministic
//     (internal/core, internal/netserver) and to individually annotated
//     functions, and enforced transitively: a deterministic function may
//     not reach nondeterminism through any chain of calls. Escape hatch:
//     //softlora:nondeterministic-ok <why>.
//
//   - hotpath — functions annotated //softlora:hotpath (the batch
//     pipeline stages, dsp kernels, netserver's verdict path) may not
//     call fmt.* or hash/fnv, allocate with make or un-presized append
//     inside loops, or box concrete values into interfaces — directly or
//     through any callee. Escape hatch: //softlora:hotpath-ok <why>.
//
//   - allocfree — functions annotated //softlora:allocfree (the
//     steady-state per-frame kernels: Plan.TransformInPlace, the dechirp
//     magnitude fills, checkDevice) must not allocate at all, anywhere in
//     their call tree: no make/new, no composite literals on the heap, no
//     closures, no un-presized append, no string/[]byte conversions or
//     non-constant concatenation, no interface boxing, no goroutine
//     starts, and no calls into stdlib packages modeled as allocating
//     (fmt, errors, sort, strings, ...). Map writes and panic arguments
//     are exempt (cold paths by definition). Escape hatch:
//     //softlora:allocfree-ok <why>.
//
//   - complexlane — packages carrying //softlora:float32-lanes
//     (internal/dsp) may not use builtin complex64 arithmetic: gc widens
//     it through float64 (3x slower, measured in PR 8); multiplies are
//     spelled on explicit float32 components per the Oscillator32
//     contract in dsp/doc.go. Escape hatch: //softlora:complex64-ok.
//
//   - poolcheck — a bufpool.Get/GetUninit buffer must be Put back, defer-
//     Put, or handed off (stored, returned, passed on) on every path out
//     of the function; a conditional leak is flagged at the leaking
//     return. Escape hatch on the Get line: //softlora:bufpool-ok <why>.
//
//   - lockshard — struct fields annotated //softlora:guarded-by <mu> may
//     only be touched after a Lock/RLock of the same base expression's
//     mutex earlier in the function (//softlora:locked marks functions
//     whose caller holds the lock); and mutex-bearing values must never
//     be copied (parameters, results, assignments, range values). Escape
//     hatch: //softlora:lock-ok <why>.
//
// # Interprocedural propagation
//
// determinism, hotpath and allocfree are transitive: the contract holds
// for everything an annotated root can reach, not just its own body. Two
// pieces make that work.
//
// internal/lint/callgraph builds one CHA-style call graph over the whole
// load: static calls resolve exactly, interface method calls resolve to
// every loaded concrete type satisfying the interface, calls through
// function values resolve to every loaded function of matching signature.
// Call sites inside panic arguments are marked and never propagated
// through — a contract violated only while crashing is not a violation.
// Within one package, callgraph.Rule/Solve computes the transitive
// offense fixpoint.
//
// Across packages, analyzers export object facts (analysis.Store): the
// driver runs packages in dependency order, so when package q imports p,
// the analyzer's verdict on every p function ("transitively allocates",
// "reaches time.Now") is already recorded — and has survived a gob
// serialization round-trip, the same discipline x/tools' facts layer
// enforces — before q asks for it. Callees with no syntax anywhere in the
// load (the standard library) go through a small explicit model instead
// of being silently trusted.
//
// A transitive finding is reported at the root's offending call edge with
// the full chain, e.g.
//
//	hotpath reaches an allocating path: netserver.checkDevice →
//	core.CheckRecord → core.BiasRecord.Fold: core.BiasRecord.Fold
//	calls fmt.Errorf
//
// and -json output carries the chain structurally. An escape hatch on any
// call site along the chain cuts propagation at that hop.
//
// # Adding an analyzer
//
// Create internal/lint/<name> exporting a *analysis.Analyzer, give it an
// analysistest suite with known-bad fixtures under
// internal/lint/<name>/testdata/src/..., and append it to Analyzers in
// lint.go. Scope new contracts with //softlora: directives (package
// directive in doc.go for package-wide contracts, function annotation for
// opt-in checks) so other packages inherit the check by annotating, not
// by editing the analyzer. Package-wide directives scope through
// directive.Index.PackageHasNonTest so test files never inherit them;
// test code opts in per function.
//
// For a transitive contract, additionally declare a fact type (a
// gob-encodable pointer type with the AFact marker) in FactTypes, export
// a fact for every function the package-local callgraph.Solve finds
// offending, and consult ImportObjectFact in the Rule's Imported hook;
// model any relevant stdlib behavior in the External hook. The
// determinism, hotpath and allocfree analyzers are three worked examples
// in ascending order of direct-offense complexity.
//
// # Why not golang.org/x/tools/go/analysis
//
// The repo builds offline against the baked-in toolchain, so the suite
// runs on a small standard-library framework (internal/lint/analysis,
// internal/lint/load, internal/lint/callgraph, internal/lint/analysistest)
// that mirrors the x/tools API shapes — Analyzer/Pass/Diagnostic, object
// facts with ExportObjectFact/ImportObjectFact, testdata/src fixture
// layout, `// want` expectations. If the x/tools dependency ever lands,
// the analyzers port by changing import paths.
package lint
