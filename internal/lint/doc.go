// Package lint is softlora's static-contract suite: five analyzers that
// machine-check, at the source level, the invariants the runtime test
// gates (`make determinism`, the zero-alloc regression tests, the race
// suite) would otherwise only catch after a violation ships. They run as
// `make lint` (cmd/softlora-lint ./...) in CI; the repo must stay clean.
//
// # The analyzers
//
//   - determinism — verdict-commit and serialization code must be a pure
//     function of its inputs: no time.Now/Since/Until, no process-global
//     math/rand draws, no map-range whose order can leak into committed
//     state. Scoped to packages carrying //softlora:deterministic
//     (internal/core, internal/netserver) and to individually annotated
//     functions. Escape hatch: //softlora:nondeterministic-ok <why>.
//
//   - hotpath — functions annotated //softlora:hotpath (the batch
//     pipeline stages, dsp kernels, netserver's verdict path) may not
//     call fmt.* or hash/fnv, allocate with make or un-presized append
//     inside loops, or box concrete values into interfaces. Escape
//     hatch: //softlora:hotpath-ok <why>.
//
//   - complexlane — packages carrying //softlora:float32-lanes
//     (internal/dsp) may not use builtin complex64 arithmetic: gc widens
//     it through float64 (3x slower, measured in PR 8); multiplies are
//     spelled on explicit float32 components per the Oscillator32
//     contract in dsp/doc.go. Escape hatch: //softlora:complex64-ok.
//
//   - poolcheck — a bufpool.Get/GetUninit buffer must be Put back, defer-
//     Put, or handed off (stored, returned, passed on) on every path out
//     of the function; a conditional leak is flagged at the leaking
//     return. Escape hatch on the Get line: //softlora:bufpool-ok <why>.
//
//   - lockshard — struct fields annotated //softlora:guarded-by <mu> may
//     only be touched after a Lock/RLock of the same base expression's
//     mutex earlier in the function (//softlora:locked marks functions
//     whose caller holds the lock); and mutex-bearing values must never
//     be copied (parameters, results, assignments, range values). Escape
//     hatch: //softlora:lock-ok <why>.
//
// # Adding an analyzer
//
// Create internal/lint/<name> exporting a *analysis.Analyzer, give it an
// analysistest suite with known-bad fixtures under
// internal/lint/<name>/testdata/src/..., and append it to Analyzers in
// lint.go. Scope new contracts with //softlora: directives (package
// directive in doc.go for package-wide contracts, function annotation for
// opt-in checks) so other packages inherit the check by annotating, not
// by editing the analyzer.
//
// # Why not golang.org/x/tools/go/analysis
//
// The repo builds offline against the baked-in toolchain, so the suite
// runs on a small standard-library framework (internal/lint/analysis,
// internal/lint/load, internal/lint/analysistest) that mirrors the
// x/tools API shapes — Analyzer/Pass/Diagnostic, testdata/src fixture
// layout, `// want` expectations. If the x/tools dependency ever lands,
// the analyzers port by changing import paths.
package lint
