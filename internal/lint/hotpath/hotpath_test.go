package hotpath_test

import (
	"testing"

	"softlora/internal/lint/analysistest"
	"softlora/internal/lint/hotpath"
)

func TestHotpath(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), hotpath.Analyzer, "a", "b", "transroot", "transleaf")
}
