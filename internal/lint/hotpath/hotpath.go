// Package hotpath implements the softlora-lint analyzer enforcing the
// zero-alloc hot-path contract. The batch pipeline, the dsp kernels and
// the netserver verdict path hold steady-state allocation floors that are
// pinned by testing.AllocsPerRun regression tests; this analyzer rejects
// the construct classes that have historically broken them, at the source
// level, before a benchmark has to catch the regression.
//
// Scope: functions annotated //softlora:hotpath (the annotation is the
// opt-in; un-annotated functions are never checked directly).
//
// Flagged inside hotpath functions:
//   - any call into package fmt (formatting allocates; error paths should
//     use predeclared errors or move formatting off the hot function)
//   - any call into hash/fnv (New32a etc. heap-allocate per call — inline
//     the hash, as netserver's fnv32a does)
//   - make(...) inside a loop (hoist or reuse scratch)
//   - append(...) inside a loop, unless the destination slice was
//     presized in this function with a three-argument make (capacity) —
//     un-presized growth reallocates geometrically
//   - implicit interface conversions (boxing) in call arguments and
//     assignments: a concrete value passed where an interface is expected
//     escapes to the heap
//
// The check is also interprocedural: every loaded function is scanned for
// the same construct classes (offenses inside panic(...) arguments are
// excluded — panicking paths are cold by definition), the result is
// exported as an Allocates object fact, and a hotpath function whose call
// edge reaches — through any number of hops, across packages — an
// offending callee is flagged at that edge with the chain spelled out
// ("a → b → c: c calls fmt.Sprintf"). An escape hatch at any hop cuts the
// chain.
//
// A deliberate exception (a cold error branch, a boxing the compiler
// provably stack-allocates) is silenced with //softlora:hotpath-ok <why>
// on the line or the line above.
package hotpath

import (
	"go/ast"
	"go/token"
	"go/types"

	"softlora/internal/lint/analysis"
	"softlora/internal/lint/callgraph"
	"softlora/internal/lint/directive"
)

// Analyzer is the hot-path allocation-discipline check.
var Analyzer = &analysis.Analyzer{
	Name:      "hotpath",
	Doc:       "flag fmt/fnv calls, loop allocation, un-presized append and interface boxing in //softlora:hotpath functions, transitively through the call graph",
	Run:       run,
	FactTypes: []analysis.Fact{new(Allocates)},
}

// EscapeHatch silences one diagnostic when placed on or above the line.
const EscapeHatch = "hotpath-ok"

// Allocates marks a function that (transitively) commits one of the
// hot-path allocation classes outside a panic argument. Chain is the call
// path below the function, offender last.
type Allocates struct {
	Detail string
	Chain  []string
}

// AFact marks the type as a serializable analyzer fact.
func (*Allocates) AFact() {}

func run(pass *analysis.Pass) (any, error) {
	ix := directive.NewIndex(pass.Fset, pass.Files)

	// Classic intra-function check: every construct-class violation
	// inside an annotated function reports at its own site.
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !directive.FuncHas(fn, "hotpath") {
				continue
			}
			c := newChecker(pass.Fset, pass.TypesInfo, ix, fn, false)
			c.emit = func(pos token.Pos, classic, detail string) bool {
				pass.Reportf(pos, "%s", classic)
				return true
			}
			c.stmts(fn.Body.List, 0)
		}
	}

	if pass.CallGraph == nil {
		return nil, nil
	}
	propagate(pass, ix)
	return nil, nil
}

func propagate(pass *analysis.Pass, ix *directive.Index) {
	nodes := packageNodes(pass)
	rule := &callgraph.Rule{
		Graph: pass.CallGraph,
		Direct: func(n *callgraph.Node) *callgraph.Offense {
			if n.Decl.Body == nil {
				return nil
			}
			var off *callgraph.Offense
			// Fact scans skip panic(...) arguments: a panicking path is
			// cold and its formatting cost is irrelevant to steady-state
			// allocation floors.
			c := newChecker(n.Fset, n.Info, ix, n.Decl, true)
			c.emit = func(pos token.Pos, classic, detail string) bool {
				off = &callgraph.Offense{Detail: detail}
				return false
			}
			c.stmts(n.Decl.Body.List, 0)
			return off
		},
		// External: fmt/fnv calls and the other construct classes are
		// syntactic in the caller, so loaded code is fully covered by
		// Direct scans; unloaded callees are assumed clean.
		External: nil,
		Imported: func(n *callgraph.Node) *callgraph.Offense {
			if pass.ImportObjectFact == nil {
				return nil
			}
			var a Allocates
			if pass.ImportObjectFact(n.Func, &a) {
				return &callgraph.Offense{Detail: a.Detail, Chain: a.Chain}
			}
			return nil
		},
		EdgeOK: func(e *callgraph.Edge) bool { return ix.OKAt(e.Pos, EscapeHatch) },
	}
	sol := rule.Solve(nodes)

	for _, n := range nodes {
		if off := sol.Offense(n); off != nil && pass.ExportObjectFact != nil {
			pass.ExportObjectFact(n.Func, &Allocates{Detail: off.Detail, Chain: off.Chain})
		}
	}

	// Chain reporting at annotated roots: direct violations were already
	// reported by the classic check, so only callee offenses are raised.
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !directive.FuncHas(fn, "hotpath") {
				continue
			}
			tfn, _ := pass.TypesInfo.Defs[fn.Name].(*types.Func)
			n := pass.CallGraph.Node(tfn)
			if n == nil {
				continue
			}
			root := callgraph.DisplayName(tfn)
			for _, e := range n.Out {
				if e.InPanic || ix.OKAt(e.Pos, EscapeHatch) {
					continue
				}
				sub := sol.Lookup(e.Callee)
				if sub == nil {
					continue
				}
				callee := callgraph.DisplayName(e.Callee.Func)
				chain := append([]string{root, callee}, sub.Chain...)
				pass.ReportChain(e.Pos, chain,
					"hotpath reaches an allocating path: %s", sub.Format(root, callee))
			}
		}
	}
}

// packageNodes returns the call-graph nodes of this pass's declared
// functions in deterministic order.
func packageNodes(pass *analysis.Pass) []*callgraph.Node {
	want := make(map[*callgraph.Node]bool)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			tfn, _ := pass.TypesInfo.Defs[fn.Name].(*types.Func)
			if n := pass.CallGraph.Node(tfn); n != nil {
				want[n] = true
			}
		}
	}
	var nodes []*callgraph.Node
	for _, n := range pass.CallGraph.Nodes() {
		if want[n] {
			nodes = append(nodes, n)
		}
	}
	return nodes
}

// presizedSlices collects the objects assigned from a three-argument
// make(T, len, cap) anywhere in fn — appends to those are capacity-bounded
// by construction.
func presizedSlices(info *types.Info, fn *ast.FuncDecl) map[types.Object]bool {
	set := make(map[types.Object]bool)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			call, ok := ast.Unparen(rhs).(*ast.CallExpr)
			if !ok || len(call.Args) != 3 {
				continue
			}
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); !ok || id.Name != "make" || info.Uses[id] != types.Universe.Lookup("make") {
				continue
			}
			if lhs, ok := as.Lhs[i].(*ast.Ident); ok {
				if obj := objOf(info, lhs); obj != nil {
					set[obj] = true
				}
			}
		}
		return true
	})
	return set
}

func objOf(info *types.Info, id *ast.Ident) types.Object {
	if obj := info.Defs[id]; obj != nil {
		return obj
	}
	return info.Uses[id]
}

type checker struct {
	fset     *token.FileSet
	info     *types.Info
	ix       *directive.Index
	presized map[types.Object]bool
	sig      *types.Signature
	// emit receives each un-hatched violation (classic diagnostic text +
	// chain-detail form); returning false stops the walk.
	emit func(pos token.Pos, classic, detail string) bool
	// skipPanicArgs excludes offenses inside panic(...) arguments (fact
	// scans: panicking paths are cold).
	skipPanicArgs bool
	stopped       bool
}

func newChecker(fset *token.FileSet, info *types.Info, ix *directive.Index, fn *ast.FuncDecl, skipPanicArgs bool) *checker {
	c := &checker{fset: fset, info: info, ix: ix, presized: presizedSlices(info, fn), skipPanicArgs: skipPanicArgs}
	if obj, ok := info.Defs[fn.Name].(*types.Func); ok {
		c.sig, _ = obj.Type().(*types.Signature)
	}
	return c
}

func (c *checker) report(pos token.Pos, classic, detail string) {
	if c.stopped {
		return
	}
	if !c.emit(pos, classic, detail) {
		c.stopped = true
	}
}

// stmts walks a statement list tracking loop nesting depth.
func (c *checker) stmts(list []ast.Stmt, loopDepth int) {
	for _, s := range list {
		if c.stopped {
			return
		}
		c.stmt(s, loopDepth)
	}
}

func (c *checker) stmt(s ast.Stmt, loopDepth int) {
	if c.stopped {
		return
	}
	switch s := s.(type) {
	case *ast.ForStmt:
		if s.Init != nil {
			c.stmt(s.Init, loopDepth)
		}
		c.exprs(loopDepth, s.Cond)
		if s.Post != nil {
			c.stmt(s.Post, loopDepth)
		}
		c.stmts(s.Body.List, loopDepth+1)
	case *ast.RangeStmt:
		c.exprs(loopDepth, s.X)
		c.stmts(s.Body.List, loopDepth+1)
	case *ast.BlockStmt:
		c.stmts(s.List, loopDepth)
	case *ast.IfStmt:
		if s.Init != nil {
			c.stmt(s.Init, loopDepth)
		}
		c.exprs(loopDepth, s.Cond)
		c.stmts(s.Body.List, loopDepth)
		if s.Else != nil {
			c.stmt(s.Else, loopDepth)
		}
	case *ast.SwitchStmt:
		if s.Init != nil {
			c.stmt(s.Init, loopDepth)
		}
		c.exprs(loopDepth, s.Tag)
		c.stmts(s.Body.List, loopDepth)
	case *ast.TypeSwitchStmt:
		c.stmts(s.Body.List, loopDepth)
	case *ast.SelectStmt:
		c.stmts(s.Body.List, loopDepth)
	case *ast.CaseClause:
		c.exprs(loopDepth, s.List...)
		c.stmts(s.Body, loopDepth)
	case *ast.CommClause:
		c.stmts(s.Body, loopDepth)
	case *ast.LabeledStmt:
		c.stmt(s.Stmt, loopDepth)
	case *ast.ExprStmt:
		c.exprs(loopDepth, s.X)
	case *ast.AssignStmt:
		c.exprs(loopDepth, s.Rhs...)
		c.exprs(loopDepth, s.Lhs...)
		c.checkAssignBoxing(s)
	case *ast.ReturnStmt:
		c.exprs(loopDepth, s.Results...)
		c.checkReturnBoxing(s)
	case *ast.DeferStmt:
		c.exprs(loopDepth, s.Call)
	case *ast.GoStmt:
		c.exprs(loopDepth, s.Call)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					c.exprs(loopDepth, vs.Values...)
					c.checkSpecBoxing(vs)
				}
			}
		}
	case *ast.IncDecStmt:
		c.exprs(loopDepth, s.X)
	case *ast.SendStmt:
		c.exprs(loopDepth, s.Chan, s.Value)
	}
}

// isPanicCall reports whether call invokes the predeclared panic.
func (c *checker) isPanicCall(call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	return ok && c.info.Uses[id] == types.Universe.Lookup("panic")
}

// exprs inspects expressions for flagged calls at the given loop depth.
// FuncLit bodies are walked at depth 0 — a closure's body is not "inside"
// the enclosing loop.
func (c *checker) exprs(loopDepth int, list ...ast.Expr) {
	for _, e := range list {
		if e == nil || c.stopped {
			continue
		}
		ast.Inspect(e, func(n ast.Node) bool {
			if c.stopped {
				return false
			}
			switch n := n.(type) {
			case *ast.FuncLit:
				c.stmts(n.Body.List, 0)
				return false
			case *ast.CallExpr:
				if c.skipPanicArgs && c.isPanicCall(n) {
					return false
				}
				c.checkCall(n, loopDepth)
			}
			return true
		})
	}
}

func (c *checker) checkCall(call *ast.CallExpr, loopDepth int) {
	info := c.info
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		switch {
		case info.Uses[fun] == types.Universe.Lookup("make"):
			if loopDepth > 0 && !c.ok(call.Pos()) {
				c.report(call.Pos(),
					"make inside a loop on a hotpath: hoist the allocation or reuse scratch",
					"allocates with make inside a loop")
			}
			return
		case info.Uses[fun] == types.Universe.Lookup("append"):
			if loopDepth > 0 && !c.appendPresized(call) && !c.ok(call.Pos()) {
				c.report(call.Pos(),
					"un-presized append inside a loop on a hotpath: presize with make(T, len, cap)",
					"grows a slice with un-presized append in a loop")
			}
			return
		}
	case *ast.SelectorExpr:
		if obj, okf := info.Uses[fun.Sel].(*types.Func); okf && obj.Pkg() != nil {
			switch obj.Pkg().Path() {
			case "fmt":
				if !c.ok(call.Pos()) {
					c.report(call.Pos(),
						"call to fmt."+obj.Name()+" on a hotpath: formatting allocates (use predeclared errors or move it off the hot function)",
						"calls fmt."+obj.Name())
				}
				return
			case "hash/fnv":
				if !c.ok(call.Pos()) {
					c.report(call.Pos(),
						"call to fnv."+obj.Name()+" on a hotpath: hash/fnv allocates per call — inline the hash",
						"calls fnv."+obj.Name())
				}
				return
			}
		}
	}
	c.checkCallBoxing(call)
}

// appendPresized reports whether the append destination is a variable this
// function presized with a capacity make.
func (c *checker) appendPresized(call *ast.CallExpr) bool {
	if len(call.Args) == 0 {
		return false
	}
	id, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	if !ok {
		return false
	}
	obj := objOf(c.info, id)
	return obj != nil && c.presized[obj]
}

// checkCallBoxing flags concrete arguments passed to interface-typed
// parameters.
func (c *checker) checkCallBoxing(call *ast.CallExpr) {
	info := c.info
	tv, ok := info.Types[call.Fun]
	if !ok {
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return // conversion or builtin
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case i < params.Len()-1 || (i < params.Len() && !sig.Variadic()):
			pt = params.At(i).Type()
		case sig.Variadic() && params.Len() > 0:
			if call.Ellipsis.IsValid() {
				pt = params.At(params.Len() - 1).Type()
			} else if sl, ok := params.At(params.Len() - 1).Type().(*types.Slice); ok {
				pt = sl.Elem()
			}
		}
		c.checkBoxing(arg, pt)
	}
}

func (c *checker) checkAssignBoxing(as *ast.AssignStmt) {
	if len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i, rhs := range as.Rhs {
		c.checkBoxing(rhs, c.info.TypeOf(as.Lhs[i]))
	}
}

// checkReturnBoxing flags concrete values returned as interface results.
func (c *checker) checkReturnBoxing(ret *ast.ReturnStmt) {
	if c.sig == nil || len(ret.Results) != c.sig.Results().Len() {
		return
	}
	for i, r := range ret.Results {
		c.checkBoxing(r, c.sig.Results().At(i).Type())
	}
}

func (c *checker) checkSpecBoxing(vs *ast.ValueSpec) {
	if vs.Type == nil || len(vs.Values) == 0 {
		return
	}
	t := c.info.TypeOf(vs.Type)
	for _, v := range vs.Values {
		c.checkBoxing(v, t)
	}
}

// checkBoxing flags expr when it is a concrete (non-interface) value being
// converted to the interface type want.
func (c *checker) checkBoxing(expr ast.Expr, want types.Type) {
	if want == nil || !types.IsInterface(want) {
		return
	}
	tv, ok := c.info.Types[expr]
	if !ok || tv.Type == nil {
		return
	}
	if types.IsInterface(tv.Type) {
		return
	}
	if b, isBasic := tv.Type.(*types.Basic); isBasic && b.Kind() == types.UntypedNil {
		return
	}
	if c.ok(expr.Pos()) {
		return
	}
	c.report(expr.Pos(),
		"interface conversion on a hotpath: "+tv.Type.String()+" boxed into "+want.String()+" escapes to the heap",
		"boxes "+tv.Type.String()+" into "+want.String())
}

func (c *checker) ok(pos token.Pos) bool {
	return c.ix.OKAt(pos, EscapeHatch)
}
