// Package transroot exercises cross-package transitive hotpath checking.
package transroot

import "transleaf"

//softlora:hotpath
func hot(n int) int {
	xs := transleaf.Mid(n) // want `hotpath reaches an allocating path: transroot\.hot → transleaf\.Mid → transleaf\.Grow: transleaf\.Grow grows a slice with un-presized append in a loop`
	return len(xs)
}

//softlora:hotpath
func hotViaHatched(n int) int {
	// No diagnostic: the chain is cut inside transleaf.
	return len(transleaf.Hatched(n))
}

//softlora:hotpath
func hotEdgeHatch(n int) int {
	//softlora:hotpath-ok fixture: root edge accepts the callee's allocation
	xs := transleaf.Mid(n)
	return len(xs)
}

// cold is un-annotated: it inherits a fact but reports nothing.
func cold(n int) int { return len(transleaf.Mid(n)) }
