// Package b exercises the hotpath analyzer's interface-boxing checks
// across files: the sink signatures live here, the hot function in b2.go.
package b

func consume(v any)             {}
func consumeVariadic(vs ...any) {}

type stringer interface{ String() string }

func sink(s stringer) {}
