package b

type point struct{ x, y int }

func (point) String() string { return "" }

//softlora:hotpath
func hotBoxing(n int, p point) any {
	consume(n)            // want `int boxed into any`
	consumeVariadic(n, p) // want `int boxed into any` `b\.point boxed into any`
	sink(p)               // want `b\.point boxed into b\.stringer`
	var v any = n         // want `int boxed into any`
	v = p                 // want `b\.point boxed into any`
	_ = v
	var w any
	consume(w) // already an interface: no boxing
	if n > 0 {
		return p // want `b\.point boxed into any`
	}
	return nil // untyped nil: fine
}

//softlora:hotpath
func hotHatched(n int) {
	consume(n) //softlora:hotpath-ok cold branch, boxing measured free
}
