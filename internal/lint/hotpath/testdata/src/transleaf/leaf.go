// Package transleaf is un-annotated helper code; hotpath callers inherit
// its allocation through the fact propagation.
package transleaf

// Grow appends without presizing; the offense every caller inherits.
func Grow(n int) []int {
	var out []int
	for i := 0; i < n; i++ {
		out = append(out, i)
	}
	return out
}

// Mid adds one un-annotated hop to the chain.
func Mid(n int) []int { return Grow(n) }

// Hatched cuts the chain at its own call site.
func Hatched(n int) []int {
	//softlora:hotpath-ok fixture: hop-level hatch stops propagation here
	return Grow(n)
}
