package a

import (
	"fmt"
	"hash/fnv"
)

// hot is the annotated kernel under test.
//
//softlora:hotpath
func hot(xs []float64) float64 {
	s := 0.0
	out := make([]float64, 0, len(xs)) // presized: appends below are fine
	var grow []float64
	for _, x := range xs {
		s += x
		buf := make([]byte, 8) // want `make inside a loop on a hotpath`
		_ = buf
		out = append(out, x)
		grow = append(grow, x) // want `un-presized append inside a loop on a hotpath`
	}
	if s < 0 {
		fmt.Println("negative") // want `call to fmt\.Println on a hotpath`
	}
	h := fnv.New32a() // want `call to fnv\.New32a on a hotpath`
	_ = h
	_ = out
	_ = grow
	return s
}

// cold is identical but un-annotated: never checked.
func cold(xs []float64) {
	var grow []float64
	for _, x := range xs {
		grow = append(grow, x)
	}
	fmt.Println(grow)
}

//softlora:hotpath
func hatch(xs []float64) []float64 {
	var grow []float64
	for _, x := range xs {
		grow = append(grow, x) //softlora:hotpath-ok fixture exercises the hatch
	}
	return grow
}
