// Package complexlane implements the softlora-lint analyzer enforcing the
// Oscillator32 contract of internal/dsp/doc.go: float32 lanes must spell
// complex multiplies and adds on explicit float32 components, never
// through builtin complex64 arithmetic — gc lowers builtin complex64
// operations through float64 with a CVTSS2SD/CVTSD2SS pair around every
// operand, which PR 8 measured at 3x slower than the component form.
//
// Scope: every package carrying a //softlora:float32-lanes package
// directive (internal/dsp). The package directive does not reach
// _test.go files — reference implementations in tests widen through
// complex64 on purpose, as the readable cross-check the contract is
// validated against. Constructing values with complex(re, im), reading
// real()/imag(), comparisons and conversions are all fine; only the
// arithmetic operators widen.
//
// Flagged:
//   - binary +, -, *, / where the result type is complex64
//   - compound assignments +=, -=, *=, /= on a complex64 operand
//
// An intentional use (cold path, test helper) is silenced with
// //softlora:complex64-ok <why> on the line or the line above.
package complexlane

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"softlora/internal/lint/analysis"
	"softlora/internal/lint/directive"
)

// Analyzer is the complex64-widening check.
var Analyzer = &analysis.Analyzer{
	Name: "complexlane",
	Doc:  "flag builtin complex64 arithmetic in float32-lane packages (gc widens it through float64)",
	Run:  run,
}

// EscapeHatch silences one diagnostic when placed on or above the line.
const EscapeHatch = "complex64-ok"

var arith = map[token.Token]bool{
	token.ADD: true, token.SUB: true, token.MUL: true, token.QUO: true,
}

var arithAssign = map[token.Token]token.Token{
	token.ADD_ASSIGN: token.ADD, token.SUB_ASSIGN: token.SUB,
	token.MUL_ASSIGN: token.MUL, token.QUO_ASSIGN: token.QUO,
}

func run(pass *analysis.Pass) (any, error) {
	ix := directive.NewIndex(pass.Fset, pass.Files)
	if !ix.PackageHasNonTest("float32-lanes") {
		return nil, nil
	}
	for _, f := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(f.Package).Filename, "_test.go") {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				if !arith[n.Op] {
					return true
				}
				tv, ok := pass.TypesInfo.Types[ast.Expr(n)]
				if !ok || tv.Value != nil { // constant-folded: no runtime arithmetic
					return true
				}
				if isComplex64(tv.Type) && !ix.OKAt(n.Pos(), EscapeHatch) {
					pass.Reportf(n.OpPos, "builtin complex64 %q widens through float64: spell it on float32 components (see dsp/doc.go, Oscillator32 contract)", n.Op)
				}
			case *ast.AssignStmt:
				op, ok := arithAssign[n.Tok]
				if !ok || len(n.Lhs) != 1 {
					return true
				}
				if isComplex64(pass.TypesInfo.TypeOf(n.Lhs[0])) && !ix.OKAt(n.Pos(), EscapeHatch) {
					pass.Reportf(n.TokPos, "builtin complex64 %q widens through float64: spell it on float32 components (see dsp/doc.go, Oscillator32 contract)", op)
				}
			}
			return true
		})
	}
	return nil, nil
}

func isComplex64(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Kind() == types.Complex64
}
