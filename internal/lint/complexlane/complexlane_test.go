package complexlane_test

import (
	"testing"

	"softlora/internal/lint/analysistest"
	"softlora/internal/lint/complexlane"
)

func TestComplexLane(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), complexlane.Analyzer, "a", "b")
}
