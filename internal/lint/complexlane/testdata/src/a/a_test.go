package a

// Test files never inherit the package's float32-lanes directive: a
// reference implementation may use builtin complex64 arithmetic to check
// the component-math kernels against. No diagnostics expected here.

func refMul(a, b complex64) complex64 {
	return a * b
}
