// Package a is a float32-lane fixture: the package directive below opts
// every file in, exercising the complexlane analyzer across files.
//
//softlora:float32-lanes
package a
