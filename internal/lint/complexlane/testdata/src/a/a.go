package a

func mul(a, b complex64) complex64 {
	bad := a * b  // want `builtin complex64 "\*" widens through float64`
	bad += a      // want `builtin complex64 "\+" widens through float64`
	sum := a + b  // want `builtin complex64 "\+" widens through float64`
	diff := a - b // want `builtin complex64 "-" widens through float64`
	quot := a / b // want `builtin complex64 "/" widens through float64`
	_ = sum
	_ = diff
	_ = quot
	return bad
}

// good spells the multiply on float32 components — the Oscillator32 idiom.
func good(a, b complex64) complex64 {
	ar, ai := real(a), imag(a)
	br, bi := real(b), imag(b)
	return complex(ar*br-ai*bi, ar*bi+ai*br)
}

// wide is complex128: full-precision arithmetic is not the lane contract's
// business.
func wide(a, b complex128) complex128 {
	return a * b
}

// folded is constant arithmetic: evaluated at compile time, no widening.
const folded = complex64(2+1i) * complex64(3+2i)

func hatched(a, b complex64) complex64 {
	//softlora:complex64-ok cold path, fixture exercises the hatch
	return a * b
}
