// Package b has no //softlora:float32-lanes directive: builtin complex64
// arithmetic is out of the analyzer's scope here.
package b

func mul(a, b complex64) complex64 {
	return a * b
}
