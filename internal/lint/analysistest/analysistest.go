// Package analysistest runs an analyzer over known-good/known-bad fixture
// packages and checks its diagnostics against `// want` expectations — the
// standard-library counterpart of golang.org/x/tools/go/analysis/analysistest,
// sharing its fixture layout: packages live under testdata/src/<path>, and
// a line that should be flagged carries a comment of the form
//
//	x := bad() // want `regexp matching the diagnostic`
//
// with one quoted or backquoted regexp per expected diagnostic on that
// line. Fixture packages may import each other (resolved under
// testdata/src, so a fixture tree can stub a real import path such as
// softlora/internal/bufpool) and the standard library (resolved from
// build-cache export data via `go list -export`).
//
// Run mirrors the softlora-lint driver's interprocedural machinery: the
// call graph is built over the named package and every fixture package it
// (transitively) imports, the analyzer first runs over those dependencies
// in dependency order — diagnostics discarded, object facts exported and
// sealed through their gob round-trip — and only then over the named
// package, whose diagnostics are checked. A fixture tree can therefore
// exercise cross-package fact propagation exactly as the real driver
// performs it.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"

	"softlora/internal/lint/analysis"
	"softlora/internal/lint/callgraph"
	"softlora/internal/lint/load"
)

// TestData returns the absolute path of the calling test's testdata
// directory.
func TestData() string {
	dir, err := filepath.Abs("testdata")
	if err != nil {
		panic(err)
	}
	return dir
}

// stdExports caches `go list -export` lookups of standard-library export
// data across every fixture load in the test process.
var stdExports struct {
	sync.Mutex
	m map[string]string
}

func stdExportFile(path string) (string, error) {
	stdExports.Lock()
	defer stdExports.Unlock()
	if f, ok := stdExports.m[path]; ok {
		return f, nil
	}
	out, err := exec.Command("go", "list", "-export", "-f", "{{.Export}}", path).Output()
	if err != nil {
		return "", fmt.Errorf("go list -export %s: %v", path, err)
	}
	f := strings.TrimSpace(string(out))
	if f == "" {
		return "", fmt.Errorf("no export data for %q", path)
	}
	if stdExports.m == nil {
		stdExports.m = make(map[string]string)
	}
	stdExports.m[path] = f
	return f, nil
}

// fixtureImporter resolves fixture-tree imports from source and everything
// else from standard-library export data.
type fixtureImporter struct {
	testdata string
	fset     *token.FileSet
	cache    map[string]*loaded
	// order lists fixture package paths in completion order: a package is
	// appended after every fixture package it imports (type-checking a
	// package drives its imports to completion first), i.e. dependency
	// order.
	order []string
	std   types.ImporterFrom
}

type loaded struct {
	pkg   *types.Package
	files []*ast.File
	info  *types.Info
	err   error
}

func newFixtureImporter(testdata string, fset *token.FileSet) *fixtureImporter {
	imp := &fixtureImporter{testdata: testdata, fset: fset, cache: make(map[string]*loaded)}
	gc := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, err := stdExportFile(path)
		if err != nil {
			return nil, err
		}
		return os.Open(f)
	})
	imp.std = gc.(types.ImporterFrom)
	return imp
}

func (imp *fixtureImporter) Import(path string) (*types.Package, error) {
	dir := filepath.Join(imp.testdata, "src", filepath.FromSlash(path))
	if st, err := os.Stat(dir); err == nil && st.IsDir() {
		l := imp.load(path)
		return l.pkg, l.err
	}
	return imp.std.ImportFrom(path, imp.testdata, 0)
}

// load parses and type-checks the fixture package at testdata/src/<path>.
func (imp *fixtureImporter) load(path string) *loaded {
	if l, ok := imp.cache[path]; ok {
		return l
	}
	l := &loaded{}
	imp.cache[path] = l
	dir := filepath.Join(imp.testdata, "src", filepath.FromSlash(path))
	names, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil || len(names) == 0 {
		l.err = fmt.Errorf("fixture package %q: no Go files in %s", path, dir)
		return l
	}
	sort.Strings(names)
	for _, name := range names {
		f, err := parser.ParseFile(imp.fset, name, nil, parser.ParseComments)
		if err != nil {
			l.err = fmt.Errorf("parsing fixture %s: %v", name, err)
			return l
		}
		l.files = append(l.files, f)
	}
	l.info = load.NewInfo()
	conf := types.Config{Importer: imp}
	l.pkg, err = conf.Check(path, imp.fset, l.files, l.info)
	if err != nil {
		l.err = fmt.Errorf("type-checking fixture %q: %v", path, err)
		return l
	}
	imp.order = append(imp.order, path)
	return l
}

// expectation is one `// want` regexp at one file line.
type expectation struct {
	re      *regexp.Regexp
	matched bool
}

var wantRe = regexp.MustCompile(`(?m)//\s*want\s+(.*)$`)

// parseWants extracts the `// want` expectations of a file, keyed by line.
func parseWants(t *testing.T, fset *token.FileSet, f *ast.File) map[int][]*expectation {
	wants := make(map[int][]*expectation)
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			m := wantRe.FindStringSubmatch(c.Text)
			if m == nil {
				continue
			}
			line := fset.Position(c.Pos()).Line
			for _, pat := range splitPatterns(t, m[1]) {
				re, err := regexp.Compile(pat)
				if err != nil {
					t.Fatalf("%s: bad want pattern %q: %v", fset.Position(c.Pos()), pat, err)
				}
				wants[line] = append(wants[line], &expectation{re: re})
			}
		}
	}
	return wants
}

// splitPatterns tokenizes `"p1" "p2"` / backquoted want payloads.
func splitPatterns(t *testing.T, s string) []string {
	var pats []string
	s = strings.TrimSpace(s)
	for s != "" {
		switch s[0] {
		case '"':
			end := 1
			for end < len(s) && (s[end] != '"' || s[end-1] == '\\') {
				end++
			}
			if end == len(s) {
				t.Fatalf("unterminated want pattern: %s", s)
			}
			unq, err := strconv.Unquote(s[:end+1])
			if err != nil {
				t.Fatalf("bad want pattern %s: %v", s[:end+1], err)
			}
			pats = append(pats, unq)
			s = strings.TrimSpace(s[end+1:])
		case '`':
			end := strings.IndexByte(s[1:], '`')
			if end < 0 {
				t.Fatalf("unterminated want pattern: %s", s)
			}
			pats = append(pats, s[1:end+1])
			s = strings.TrimSpace(s[end+2:])
		default:
			t.Fatalf("want patterns must be quoted or backquoted: %s", s)
		}
	}
	return pats
}

// Run loads each fixture package under testdata/src, applies the analyzer
// — over the package's fixture dependencies first, facts flowing forward
// exactly as under the real driver — and checks every diagnostic against
// the `// want` expectations (and vice versa).
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgPaths ...string) {
	t.Helper()
	for _, path := range pkgPaths {
		t.Run(path, func(t *testing.T) {
			fset := token.NewFileSet()
			imp := newFixtureImporter(testdata, fset)
			l := imp.load(path)
			if l.err != nil {
				t.Fatal(l.err)
			}

			// The whole fixture universe: the target and every fixture
			// package it pulled in, in dependency order.
			var cgPkgs []*callgraph.Package
			for _, p := range imp.order {
				dl := imp.cache[p]
				cgPkgs = append(cgPkgs, &callgraph.Package{Fset: fset, Files: dl.files, Pkg: dl.pkg, Info: dl.info})
			}
			graph := callgraph.Build(cgPkgs)
			store := analysis.NewStore([]*analysis.Analyzer{a})

			var diags []analysis.Diagnostic
			for _, p := range imp.order {
				dl := imp.cache[p]
				pass := &analysis.Pass{
					Analyzer:  a,
					Fset:      fset,
					Files:     dl.files,
					Pkg:       dl.pkg,
					TypesInfo: dl.info,
					CallGraph: graph,
				}
				store.Bind(a, pass)
				if p == path {
					pass.Report = func(d analysis.Diagnostic) { diags = append(diags, d) }
				} else {
					// Dependency run: facts only, diagnostics dropped (they
					// are checked when the dependency is named directly).
					pass.Report = func(analysis.Diagnostic) {}
				}
				if _, err := a.Run(pass); err != nil {
					t.Fatalf("analyzer %s on %s: %v", a.Name, p, err)
				}
				if err := store.Seal(a, p); err != nil {
					t.Fatal(err)
				}
			}

			wants := make(map[string]map[int][]*expectation)
			for _, f := range l.files {
				name := fset.Position(f.Pos()).Filename
				wants[name] = parseWants(t, fset, f)
			}
			for _, d := range diags {
				p := fset.Position(d.Pos)
				var exp *expectation
				for _, e := range wants[p.Filename][p.Line] {
					if !e.matched && e.re.MatchString(d.Message) {
						exp = e
						break
					}
				}
				if exp == nil {
					t.Errorf("%s:%d: unexpected diagnostic: %s", p.Filename, p.Line, d.Message)
					continue
				}
				exp.matched = true
			}
			for file, byLine := range wants {
				for line, exps := range byLine {
					for _, e := range exps {
						if !e.matched {
							t.Errorf("%s:%d: expected diagnostic matching %q, got none", file, line, e.re)
						}
					}
				}
			}
		})
	}
}
