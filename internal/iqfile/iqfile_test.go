package iqfile

import (
	"bytes"
	"errors"
	"math"
	"math/rand"
	"path/filepath"
	"testing"
	"testing/quick"
)

func TestWriteReadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	iq := make([]complex128, 1000)
	for i := range iq {
		iq[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	var buf bytes.Buffer
	if err := Write(&buf, iq); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 8*len(iq) {
		t.Fatalf("encoded %d bytes, want %d", buf.Len(), 8*len(iq))
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(iq) {
		t.Fatalf("len = %d", len(got))
	}
	for i := range iq {
		// float32 round trip: relative 1e-6.
		if math.Abs(real(got[i])-real(iq[i])) > 1e-5 || math.Abs(imag(got[i])-imag(iq[i])) > 1e-5 {
			t.Fatalf("sample %d: %v vs %v", i, got[i], iq[i])
		}
	}
}

func TestWriteReadProperty(t *testing.T) {
	f := func(res []float64) bool {
		if len(res)%2 == 1 {
			res = res[:len(res)-1]
		}
		iq := make([]complex128, len(res)/2)
		for i := range iq {
			a := float64(float32(res[2*i]))
			b := float64(float32(res[2*i+1]))
			if math.IsNaN(a) || math.IsNaN(b) {
				return true
			}
			iq[i] = complex(a, b)
		}
		var buf bytes.Buffer
		if err := Write(&buf, iq); err != nil {
			return false
		}
		got, err := Read(&buf)
		if err != nil {
			return false
		}
		if len(got) != len(iq) {
			return false
		}
		for i := range iq {
			if got[i] != iq[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestReadOddFloatCount(t *testing.T) {
	var buf bytes.Buffer
	buf.Write(make([]byte, 12)) // 1.5 samples
	if _, err := Read(&buf); !errors.Is(err, ErrOddFloatCount) {
		t.Errorf("err = %v", err)
	}
}

func TestReadEmpty(t *testing.T) {
	got, err := Read(bytes.NewReader(nil))
	if err != nil || len(got) != 0 {
		t.Errorf("got %d samples, err %v", len(got), err)
	}
}

func TestSaveLoadWithMetadata(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "capture.iq")
	iq := []complex128{complex(1, 2), complex(3, 4)}
	meta := Metadata{SampleRate: 2.4e6, StartTime: 1.5, CenterFrequency: 869.75e6, Description: "test"}
	if err := Save(path, iq, meta); err != nil {
		t.Fatal(err)
	}
	got, gotMeta, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != complex(1, 2) {
		t.Errorf("iq = %v", got)
	}
	if gotMeta != meta {
		t.Errorf("meta = %+v", gotMeta)
	}
}

func TestLoadMissingSidecar(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bare.iq")
	if err := Save(path, []complex128{1}, Metadata{SampleRate: 1}); err != nil {
		t.Fatal(err)
	}
	// Remove sidecar manually by saving to a fresh file without one.
	if err := Write(mustCreate(t, filepath.Join(dir, "nosidecar.iq")), []complex128{1}); err != nil {
		t.Fatal(err)
	}
	iq, meta, err := Load(filepath.Join(dir, "nosidecar.iq"))
	if err != nil {
		t.Fatal(err)
	}
	if len(iq) != 1 || meta.SampleRate != 0 {
		t.Errorf("iq %v meta %+v", iq, meta)
	}
}

func TestLoadMissingFile(t *testing.T) {
	if _, _, err := Load(filepath.Join(t.TempDir(), "missing.iq")); err == nil {
		t.Error("expected error")
	}
}

func TestLoadBadSidecar(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.iq")
	if err := Write(mustCreate(t, path), []complex128{1}); err != nil {
		t.Fatal(err)
	}
	if err := writeFile(path+".json", "not json"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Load(path); !errors.Is(err, ErrBadMetadata) {
		t.Errorf("err = %v", err)
	}
}
