package iqfile

import (
	"io"
	"os"
	"testing"
)

// mustCreate opens a file for writing and registers cleanup.
func mustCreate(t *testing.T, path string) io.Writer {
	t.Helper()
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	return f
}

// writeFile writes a string to a path.
func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}
