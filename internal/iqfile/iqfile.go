// Package iqfile reads and writes baseband captures in the de-facto SDR
// interchange format: interleaved little-endian float32 I/Q pairs (the
// format GNU Radio file sinks and rtl_sdr post-processing tools use), with
// an optional JSON sidecar carrying sample rate and timing metadata.
package iqfile

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
)

// Metadata is the JSON sidecar describing a capture.
type Metadata struct {
	// SampleRate in samples/s.
	SampleRate float64 `json:"sample_rate"`
	// StartTime of sample 0 on the capture timeline, seconds.
	StartTime float64 `json:"start_time"`
	// CenterFrequency of the tuned channel in Hz (informational).
	CenterFrequency float64 `json:"center_frequency,omitempty"`
	// Description is free-form.
	Description string `json:"description,omitempty"`
}

// Errors.
var (
	ErrOddFloatCount = errors.New("iqfile: trailing I sample without Q")
	ErrBadMetadata   = errors.New("iqfile: malformed metadata")
)

// Write streams the capture as interleaved float32 I/Q.
func Write(w io.Writer, iq []complex128) error {
	bw := bufio.NewWriter(w)
	var buf [8]byte
	for _, v := range iq {
		binary.LittleEndian.PutUint32(buf[0:4], math.Float32bits(float32(real(v))))
		binary.LittleEndian.PutUint32(buf[4:8], math.Float32bits(float32(imag(v))))
		if _, err := bw.Write(buf[:]); err != nil {
			return fmt.Errorf("iqfile: %w", err)
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("iqfile: %w", err)
	}
	return nil
}

// Read consumes interleaved float32 I/Q until EOF.
func Read(r io.Reader) ([]complex128, error) {
	br := bufio.NewReader(r)
	var out []complex128
	var buf [8]byte
	for {
		n, err := io.ReadFull(br, buf[:])
		switch {
		case err == nil:
			i := math.Float32frombits(binary.LittleEndian.Uint32(buf[0:4]))
			q := math.Float32frombits(binary.LittleEndian.Uint32(buf[4:8]))
			out = append(out, complex(float64(i), float64(q)))
		case errors.Is(err, io.EOF) && n == 0:
			return out, nil
		case errors.Is(err, io.ErrUnexpectedEOF) && n == 4:
			return nil, ErrOddFloatCount
		default:
			return nil, fmt.Errorf("iqfile: %w", err)
		}
	}
}

// metaPath returns the sidecar path for an IQ file path.
func metaPath(iqPath string) string { return iqPath + ".json" }

// Save writes the capture and its metadata sidecar to path and path+".json".
func Save(path string, iq []complex128, meta Metadata) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("iqfile: %w", err)
	}
	if err := Write(f, iq); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("iqfile: %w", err)
	}
	mf, err := os.Create(metaPath(path))
	if err != nil {
		return fmt.Errorf("iqfile: %w", err)
	}
	defer mf.Close()
	enc := json.NewEncoder(mf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(meta); err != nil {
		return fmt.Errorf("iqfile: %w", err)
	}
	return nil
}

// Load reads a capture and its metadata sidecar. A missing sidecar yields
// zero-valued metadata without error.
func Load(path string) ([]complex128, Metadata, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, Metadata{}, fmt.Errorf("iqfile: %w", err)
	}
	defer f.Close()
	iq, err := Read(f)
	if err != nil {
		return nil, Metadata{}, err
	}
	var meta Metadata
	mf, err := os.Open(metaPath(path))
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return iq, meta, nil
		}
		return nil, Metadata{}, fmt.Errorf("iqfile: %w", err)
	}
	defer mf.Close()
	if err := json.NewDecoder(mf).Decode(&meta); err != nil {
		return nil, Metadata{}, fmt.Errorf("%w: %v", ErrBadMetadata, err)
	}
	return iq, meta, nil
}
