package clock

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestOscillatorDrift(t *testing.T) {
	o := &Oscillator{DriftPPM: 40}
	// After 250 s of global time, a +40 ppm clock is 10 ms ahead.
	local := o.LocalAt(250)
	if math.Abs(local-250.01) > 1e-9 {
		t.Errorf("local = %f, want 250.01", local)
	}
	if got := o.DriftOver(250); math.Abs(got-0.01) > 1e-12 {
		t.Errorf("drift = %f, want 0.01", got)
	}
}

func TestOscillatorOffset(t *testing.T) {
	o := &Oscillator{OffsetSeconds: 5}
	if got := o.LocalAt(0); got != 5 {
		t.Errorf("local = %f, want 5", got)
	}
}

func TestOscillatorJitter(t *testing.T) {
	o := &Oscillator{JitterSeconds: 1e-3, Rand: rand.New(rand.NewSource(80))}
	a := o.LocalAt(100)
	b := o.LocalAt(100)
	if a == b {
		t.Error("jittered readings should differ")
	}
	if math.Abs(a-100) > 0.01 {
		t.Errorf("reading %f too far from 100", a)
	}
}

func TestSyncSessionsPerHourPaperExample(t *testing.T) {
	// Paper §3.2: 40 ppm drift, sub-10 ms error → 14 sessions/hour.
	got := SyncSessionsPerHour(0.010, 40)
	if math.Abs(got-14.4) > 0.1 {
		t.Errorf("sessions/hour = %f, want 14.4", got)
	}
	if SyncSessionsPerHour(0, 40) != 0 || SyncSessionsPerHour(0.01, 0) != 0 {
		t.Error("degenerate inputs should give 0")
	}
}

func TestMaxBufferTimePaperExample(t *testing.T) {
	// Paper §3.2: 10 ms bound at 40 ppm → 250 s ≈ 4.1 minutes.
	got := MaxBufferTime(0.010, 40)
	if math.Abs(got-250) > 1e-9 {
		t.Errorf("buffer time = %f, want 250", got)
	}
	if got/60 < 4.0 || got/60 > 4.2 {
		t.Errorf("buffer time = %f min, want ~4.1", got/60)
	}
}

func TestSyncSessionsInverseOfBufferTime(t *testing.T) {
	f := func(errRaw, ppmRaw uint8) bool {
		maxErr := 0.001 + float64(errRaw)/1000
		ppm := 1 + float64(ppmRaw)
		sessions := SyncSessionsPerHour(maxErr, ppm)
		buffer := MaxBufferTime(maxErr, ppm)
		return math.Abs(sessions*buffer-3600) < 1e-6*3600
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestGPSClock(t *testing.T) {
	g := &GPSClock{}
	if got := g.Now(123.456); got != 123.456 {
		t.Errorf("ideal GPS = %f", got)
	}
	g2 := &GPSClock{ErrorBoundSeconds: 1e-6, Rand: rand.New(rand.NewSource(81))}
	for i := 0; i < 100; i++ {
		if d := math.Abs(g2.Now(50) - 50); d > 1e-6 {
			t.Fatalf("GPS error %g exceeds bound", d)
		}
	}
}
