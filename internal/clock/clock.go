// Package clock models the oscillators behind data timestamping: drifting
// device crystals, the GPS-disciplined gateway clock, and the arithmetic of
// §3.2 of the paper that compares synchronization-based and
// synchronization-free timestamping overheads.
package clock

import (
	"errors"
	"math/rand"
)

// Typical crystal drift rates (ppm) for microcontrollers and PCs, per the
// paper's §3.2 (30-50 ppm; the paper's worked example uses 40).
const (
	TypicalDriftPPMLow  = 30
	TypicalDriftPPMHigh = 50
	PaperExampleDrift   = 40
)

// ErrNegativeDuration is returned for negative time spans.
var ErrNegativeDuration = errors.New("clock: negative duration")

// Oscillator models a free-running clock with a constant drift rate and
// optional white jitter on readings.
type Oscillator struct {
	// DriftPPM is the rate error in parts-per-million: a positive value
	// makes the local clock run fast.
	DriftPPM float64
	// OffsetSeconds is the initial phase error against global time.
	OffsetSeconds float64
	// JitterSeconds is the standard deviation of per-reading noise
	// (crystal + read-out quantization). Zero disables jitter.
	JitterSeconds float64
	// Rand supplies jitter; required only when JitterSeconds > 0.
	Rand *rand.Rand
}

// LocalAt converts a global time (seconds since the oscillator's epoch)
// into the oscillator's local reading.
func (o *Oscillator) LocalAt(global float64) float64 {
	local := o.OffsetSeconds + global*(1+o.DriftPPM*1e-6)
	if o.JitterSeconds > 0 && o.Rand != nil {
		local += o.Rand.NormFloat64() * o.JitterSeconds
	}
	return local
}

// DriftOver returns the clock error accumulated over a global time span dt.
func (o *Oscillator) DriftOver(dt float64) float64 {
	return dt * o.DriftPPM * 1e-6
}

// SyncSessionsPerHour returns how many clock-synchronization sessions per
// hour a device needs to keep its clock error below maxError seconds at the
// given drift rate. The paper's example: 40 ppm and sub-10 ms error →
// 14 sessions/hour.
func SyncSessionsPerHour(maxError, driftPPM float64) float64 {
	if maxError <= 0 || driftPPM <= 0 {
		return 0
	}
	interval := maxError / (driftPPM * 1e-6)
	return 3600 / interval
}

// MaxBufferTime returns how long a record may sit in the device's buffer
// before transmission while keeping the local-clock drift below maxDrift
// seconds (the sync-free approach's §3.2 bound: 10 ms at 40 ppm →
// 4.1 minutes).
func MaxBufferTime(maxDrift, driftPPM float64) float64 {
	if maxDrift <= 0 || driftPPM <= 0 {
		return 0
	}
	return maxDrift / (driftPPM * 1e-6)
}

// GPSClock models the gateway's GPS-disciplined clock: unbiased with small
// bounded error.
type GPSClock struct {
	// ErrorBoundSeconds is the ± accuracy of readings (tens of ns for real
	// GPS; configurable for sensitivity studies).
	ErrorBoundSeconds float64
	// Rand supplies the per-reading error; required when
	// ErrorBoundSeconds > 0.
	Rand *rand.Rand
}

// Now returns the GPS reading for the given true global time.
func (g *GPSClock) Now(global float64) float64 {
	if g.ErrorBoundSeconds > 0 && g.Rand != nil {
		return global + (g.Rand.Float64()*2-1)*g.ErrorBoundSeconds
	}
	return global
}
