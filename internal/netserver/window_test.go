package netserver

import (
	"strings"
	"testing"

	"softlora/internal/core"
)

// windowed builds a server with the streaming window enabled and one
// enrolled device "n" at -22000 Hz (acceptance band ±360 Hz).
func windowed(t *testing.T, cfg WindowConfig) *NetworkServer {
	t.Helper()
	s := New(Config{Window: cfg})
	s.Enroll("n", -22000, 10)
	return s
}

func TestWindowMergesAcrossCalls(t *testing.T) {
	s := windowed(t, WindowConfig{Hold: 5})
	if v := s.Check(PHYObservation{GatewayID: "g1", DeviceID: "n", FrameID: "f1",
		FBHz: -22100, JitterHz: 40, ArrivalTime: 0}); v != core.VerdictPending {
		t.Fatalf("first copy verdict = %v, want pending", v)
	}
	// Second copy in a *separate* call merges instead of re-verdicting.
	if v := s.Check(PHYObservation{GatewayID: "g2", DeviceID: "n", FrameID: "f1",
		FBHz: -22060, JitterHz: 40, ArrivalTime: 1}); v != core.VerdictPending {
		t.Fatalf("second copy verdict = %v, want pending", v)
	}
	if n := s.PendingFrames(); n != 1 {
		t.Fatalf("pending frames = %d, want 1", n)
	}
	evs := s.AdvanceWindow(10)
	if len(evs) != 1 {
		t.Fatalf("events after hold expiry = %d, want 1", len(evs))
	}
	fv := evs[0]
	if fv.Receivers != 2 || fv.Verdict != core.VerdictGenuine || fv.FrameID != "f1" {
		t.Fatalf("bad committed verdict: %+v", fv)
	}
	st := s.Stats()
	if st.FramesChecked != 1 || st.WindowMerged != 1 || st.Observations != 2 {
		t.Fatalf("stats = %+v, want 1 frame / 1 merged / 2 obs", st)
	}
	if rec, _ := s.Record("n"); rec.Count != 11 {
		t.Fatalf("record folded %d times, want 11 (exactly one fold)", rec.Count)
	}
}

func TestWindowCommitsWhenFull(t *testing.T) {
	s := windowed(t, WindowConfig{Hold: 1000, MaxReceivers: 2})
	s.Check(PHYObservation{GatewayID: "g1", DeviceID: "n", FrameID: "f1",
		FBHz: -22100, JitterHz: 40, ArrivalTime: 0})
	// The filling copy commits the frame inside this very call.
	if v := s.Check(PHYObservation{GatewayID: "g2", DeviceID: "n", FrameID: "f1",
		FBHz: -22060, JitterHz: 40, ArrivalTime: 0.01}); v != core.VerdictGenuine {
		t.Fatalf("filling copy verdict = %v, want genuine", v)
	}
	if n := s.PendingFrames(); n != 0 {
		t.Fatalf("pending frames = %d, want 0 after full commit", n)
	}
}

func TestWindowSameGatewayDuplicateDoesNotFill(t *testing.T) {
	s := windowed(t, WindowConfig{Hold: 1000, MaxReceivers: 2})
	o := PHYObservation{GatewayID: "g1", DeviceID: "n", FrameID: "f1",
		FBHz: -22100, JitterHz: 40, ArrivalTime: 0}
	s.Check(o)
	// An exact duplicate from the same gateway is one receiver, not two.
	if v := s.Check(o); v != core.VerdictPending {
		t.Fatalf("duplicate copy verdict = %v, want pending", v)
	}
	evs := s.DrainWindow()
	if len(evs) != 1 || evs[0].Receivers != 1 {
		t.Fatalf("drained %d events, receivers %d; want 1 event from 1 receiver",
			len(evs), evs[0].Receivers)
	}
}

func TestWindowLateCopyRevisesVerdict(t *testing.T) {
	s := windowed(t, WindowConfig{Hold: 1, LateHorizon: 1000})
	s.Check(PHYObservation{GatewayID: "g1", DeviceID: "n", FrameID: "f1",
		FBHz: -22300, JitterHz: 120, ArrivalTime: 0})
	evs := s.AdvanceWindow(5)
	if len(evs) != 1 || evs[0].Verdict != core.VerdictGenuine {
		t.Fatalf("commit events = %+v, want one genuine", evs)
	}
	folds, _ := s.Record("n")
	// A much tighter late copy far from the committed estimate: the
	// re-fused value anchors on it, leaves the band, and the verdict
	// flips — as a notification, not a second fold.
	if v := s.Check(PHYObservation{GatewayID: "g2", DeviceID: "n", FrameID: "f1",
		FBHz: -21000, JitterHz: 1, ArrivalTime: 5.5}); v != core.VerdictPending {
		t.Fatalf("late copy verdict = %v, want pending (event is queued)", v)
	}
	evs = s.PollWindow()
	if len(evs) != 1 {
		t.Fatalf("revision events = %d, want 1", len(evs))
	}
	rv := evs[0]
	if !rv.Revised || rv.PrevVerdict != core.VerdictGenuine || rv.Verdict != core.VerdictReplay {
		t.Fatalf("bad revision: %+v", rv)
	}
	if rec, _ := s.Record("n"); rec.Count != folds.Count {
		t.Fatalf("late copy folded the database: %d -> %d", folds.Count, rec.Count)
	}
	st := s.Stats()
	if st.LateObservations != 1 || st.VerdictsRevised != 1 || st.FramesChecked != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestWindowLateDuplicateIsSilent(t *testing.T) {
	s := windowed(t, WindowConfig{Hold: 1, LateHorizon: 1000})
	o := PHYObservation{GatewayID: "g1", DeviceID: "n", FrameID: "f1",
		FBHz: -22100, JitterHz: 40, ArrivalTime: 0}
	s.Check(o)
	s.AdvanceWindow(5)
	// The same copy redelivered after commit: reconciled, no flip, no event.
	o.ArrivalTime = 6
	if v := s.Check(o); v != core.VerdictPending {
		t.Fatalf("late duplicate verdict = %v, want pending", v)
	}
	if evs := s.PollWindow(); len(evs) != 0 {
		t.Fatalf("late duplicate emitted %d events, want 0", len(evs))
	}
	st := s.Stats()
	if st.LateObservations != 1 || st.VerdictsRevised != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestWindowShedsOldestAtCap(t *testing.T) {
	s := New(Config{Window: WindowConfig{Hold: 1e9, MaxPending: 8}})
	var obs []PHYObservation
	for i := 0; i < 100; i++ {
		obs = append(obs, PHYObservation{
			GatewayID: "g1", DeviceID: "n", FrameID: frameID(i),
			UplinkIndex: int64(i), FBHz: -22000, JitterHz: 40,
			ArrivalTime: float64(i),
		})
	}
	evs, err := s.CheckBatch(obs)
	if err != nil {
		t.Fatal(err)
	}
	if n := s.PendingFrames(); n > 8 {
		t.Fatalf("pending frames = %d, exceeds MaxPending 8", n)
	}
	if st := s.Stats(); st.WindowShed != 92 {
		t.Fatalf("WindowShed = %d, want 92", st.WindowShed)
	}
	evs = append(evs, s.DrainWindow()...)
	if len(evs) != 100 {
		t.Fatalf("total committed verdicts = %d, want 100 (shed frames still judged)", len(evs))
	}
}

func TestWindowEmptyFrameIDJudgedImmediately(t *testing.T) {
	s := windowed(t, WindowConfig{Hold: 1000})
	// No identity to dedup on: not held.
	if v := s.Check(PHYObservation{GatewayID: "g1", DeviceID: "n",
		FBHz: -22100, JitterHz: 40, ArrivalTime: 0}); v != core.VerdictGenuine {
		t.Fatalf("frameless observation verdict = %v, want genuine", v)
	}
	if n := s.PendingFrames(); n != 0 {
		t.Fatalf("pending frames = %d, want 0", n)
	}
}

func TestWindowDrainCommitsInUplinkOrder(t *testing.T) {
	s := windowed(t, WindowConfig{Hold: 1000})
	for _, i := range []int{3, 0, 2, 1} {
		s.Check(PHYObservation{GatewayID: "g1", DeviceID: "n", FrameID: frameID(i),
			UplinkIndex: int64(i), FBHz: -22000, JitterHz: 40, ArrivalTime: float64(i)})
	}
	evs := s.DrainWindow()
	if len(evs) != 4 {
		t.Fatalf("drained %d, want 4", len(evs))
	}
	for i, fv := range evs {
		if fv.FrameID != frameID(i) {
			t.Fatalf("drain order: event %d is frame %s", i, fv.FrameID)
		}
	}
}

func TestWindowedBatchPartialOnError(t *testing.T) {
	s := windowed(t, WindowConfig{Hold: 1000, MaxReceivers: 1})
	obs := []PHYObservation{
		{GatewayID: "g1", DeviceID: "n", FrameID: "f1", UplinkIndex: 0,
			FBHz: -22000, JitterHz: 40, ArrivalTime: 0},
		{GatewayID: "g1", FrameID: "f2", UplinkIndex: 1, FBHz: -22000,
			ArrivalTime: 1}, // no device ID
		{GatewayID: "g1", DeviceID: "n", FrameID: "f3", UplinkIndex: 2,
			FBHz: -22000, JitterHz: 40, ArrivalTime: 2},
	}
	evs, err := s.CheckBatch(obs)
	if err == nil || !strings.Contains(err.Error(), "observation 1 of batch") {
		t.Fatalf("err = %v, want observation-1 error", err)
	}
	// The frame ingested before the bad observation still committed and
	// its verdict is visible alongside the error.
	if len(evs) != 1 || evs[0].FrameID != "f1" {
		t.Fatalf("partial events = %+v, want committed f1", evs)
	}
}

func TestCheckBatchPartialVerdictsOnError(t *testing.T) {
	// Regression (non-windowed path): a mid-batch CheckFrame error used to
	// return nil verdicts even though earlier frames had already folded
	// into the database.
	s := New(Config{})
	s.Enroll("n", -22000, 10)
	obs := []PHYObservation{
		{GatewayID: "g1", DeviceID: "n", FrameID: "f1", UplinkIndex: 0,
			FBHz: -22040, JitterHz: 40},
		{GatewayID: "g1", FrameID: "", UplinkIndex: 1, FBHz: -22000}, // no device
	}
	verdicts, err := s.CheckBatch(obs)
	if err == nil {
		t.Fatal("want a frame error")
	}
	if len(verdicts) != 1 || verdicts[0].FrameID != "f1" {
		t.Fatalf("partial verdicts = %+v, want the committed f1", verdicts)
	}
	if rec, _ := s.Record("n"); rec.Count != 11 {
		t.Fatalf("f1's fold missing: count = %d", rec.Count)
	}
}

func frameID(i int) string {
	return "f" + string(rune('a'+i/26)) + string(rune('a'+i%26))
}
