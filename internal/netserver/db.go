package netserver

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"softlora/internal/core"
)

// DefaultShards is the number of independently locked database partitions.
// Power of two so the shard index is a mask of the device-ID hash.
const DefaultShards = 64

// DefaultJitterHz is the per-observation estimation jitter assumed when an
// observation does not carry one (JitterHz <= 0): the paper's 120 Hz
// estimation resolution, a neutral weight.
const DefaultJitterHz = 120

// PHYObservation is one gateway's side-effect-free PHY-stage result for one
// received frame copy: everything the network server needs to fuse, judge
// and timestamp the frame, and nothing that touches the bias database.
type PHYObservation struct {
	// GatewayID identifies the receiver that produced the observation.
	GatewayID string
	// DeviceID is the frame's claimed source device.
	DeviceID string
	// FrameID identifies the frame so copies heard by several gateways
	// deduplicate. Empty means "unknown": the observation is treated as
	// its own frame and never merged.
	FrameID string
	// UplinkIndex is the frame's position in the commit order (the batch
	// index at a gateway, a sequence number in a deployment). CheckBatch
	// commits frames in ascending UplinkIndex so database state is
	// independent of arrival interleaving.
	UplinkIndex int64
	// FBHz is the estimated frequency bias δ = δTx − δRx.
	FBHz float64
	// JitterHz is the PHY stage's per-frame FB estimation jitter (1σ, Hz)
	// through this receiver's link — the fusion weight. <= 0 means
	// unknown (DefaultJitterHz is assumed).
	JitterHz float64
	// ArrivalTime is the PHY-timestamped preamble onset on the channel
	// timeline (seconds).
	ArrivalTime float64
	// OnsetSample is the onset position within the receiver's capture.
	OnsetSample int
}

// FrameVerdict is the network server's per-frame decision after dedup and
// fusion.
type FrameVerdict struct {
	// DeviceID and FrameID identify the judged frame.
	DeviceID string
	FrameID  string
	// Verdict is the §7.2 decision, made once per frame.
	Verdict core.Verdict
	// FBHz is the fused (inverse-variance weighted) frequency bias the
	// verdict was computed from.
	FBHz float64
	// JitterHz is the fused estimate's jitter: 1/sqrt(Σ 1/σi²), at least
	// as tight as the best contributing receiver.
	JitterHz float64
	// ArrivalTime and GatewayID are the PHY timestamp and identity of the
	// lowest-jitter receiver — timestamping uses one receiver's PHY
	// clock, not a blend of unsynchronized ones.
	ArrivalTime float64
	GatewayID   string
	// Receivers is how many observations the frame arrived with (dedup
	// count + 1).
	Receivers int
	// OutliersRejected is how many of those observations the fusion's
	// consistency gate excluded from the weighted mean (a receiver that
	// lost the tone returns a gross outlier, not a jitter-sized error).
	OutliersRejected int
	// QuarantinedExcluded is how many observations came from gateways the
	// health tracker currently quarantines; they were excluded from the
	// fusion (but still tracked for probation recovery).
	QuarantinedExcluded int
	// Revised marks a post-commit reconciliation event: a copy of the
	// frame arrived after its verdict committed, the fused estimate was
	// recomputed, and the verdict flipped. The original fold stands — a
	// revision is a notification, never a second database update.
	Revised bool
	// PrevVerdict is the originally committed verdict when Revised.
	PrevVerdict core.Verdict
}

// Stats are cumulative network-server counters.
type Stats struct {
	// FramesChecked is the number of per-frame verdicts issued.
	FramesChecked int64
	// Observations is the number of PHYObservations consumed.
	Observations int64
	// DuplicatesSuppressed counts observations merged into another
	// observation of the same frame instead of receiving their own
	// verdict.
	DuplicatesSuppressed int64
	// Evicted counts device records removed by the TTL sweep
	// (EvictExpired), cumulatively.
	Evicted int64
	// WindowMerged counts observations that fused into a pending window
	// entry opened by an earlier Check/CheckBatch call — the cross-call
	// duplicates the streaming window exists to suppress.
	WindowMerged int64
	// LateObservations counts copies that arrived after their frame's
	// verdict committed and were reconciled against the committed state.
	LateObservations int64
	// VerdictsRevised counts late reconciliations that flipped the
	// committed verdict (emitted as Revised FrameVerdicts).
	VerdictsRevised int64
	// WindowShed counts pending frames force-committed early because the
	// window hit its MaxPending memory cap (oldest first) — a duplicate
	// storm degrades dedup, never memory.
	WindowShed int64
	// WindowEventsDropped counts committed verdicts discarded because the
	// window's event queue overflowed without being polled.
	WindowEventsDropped int64
	// GatewaysQuarantined counts health-tracker quarantine transitions,
	// cumulatively (a gateway that recovers and relapses counts twice).
	GatewaysQuarantined int64
}

// Config configures a NetworkServer. Zero values select the
// paper-calibrated defaults of package core.
type Config struct {
	// ToleranceHz is the minimum acceptance half-width
	// (core.DefaultToleranceHz when 0).
	ToleranceHz float64
	// DevMultiplier scales tracked per-frame deviation into the adaptive
	// band (core.DefaultDevMultiplier when 0).
	DevMultiplier float64
	// Alpha is the post-enrollment EWMA weight (core.DefaultEWMAAlpha
	// when 0).
	Alpha float64
	// EnrollFrames is the per-device learning period
	// (core.DefaultEnrollFrames when 0).
	EnrollFrames int
	// Shards is the number of database partitions, rounded up to a power
	// of two (DefaultShards when 0).
	Shards int
	// RecordTTL evicts device records not observed for this many seconds
	// on the observation timeline (see EvictExpired). Zero disables
	// aging. Only sweeps triggered by a Flusher or by explicit
	// EvictExpired calls apply it; the verdict hot path never scans.
	RecordTTL float64
	// Window configures the streaming cross-call frame dedup window.
	// Window.Hold <= 0 (the zero value) disables it: Check/CheckBatch
	// judge frames immediately, deduplicating only within one call.
	Window WindowConfig
	// Health configures the gateway health tracker. Health.Enabled false
	// (the zero value) disables it: every receiver's observation joins
	// the fusion regardless of its history.
	Health HealthConfig
}

// shard is one independently read-write-locked database partition.
// Steady-state traffic is read-dominated in aggregate — Record lookups,
// Devices counts, Save/flush snapshots — while only Check/Enroll/Load
// mutate, so readers share the lock and a flusher serializing a shard
// never blocks reads of the other 63.
type shard struct {
	mu      sync.RWMutex
	devices map[string]*core.BiasRecord //softlora:guarded-by mu
	// dirty marks the shard as modified since its last successful
	// snapshot flush. Set by every mutation, cleared by the flusher with
	// Swap(false); a mutation racing the flush re-marks it so the next
	// cycle rewrites the shard — flushes may repeat, never skip.
	dirty atomic.Bool
}

// markDirty flags the shard for the next incremental flush. Cheaper than
// an unconditional atomic store on the hot path: steady-state traffic
// re-dirties an already-dirty shard, so the load almost always short-
// circuits.
func (sh *shard) markDirty() {
	if !sh.dirty.Load() {
		sh.dirty.Store(true)
	}
}

// NetworkServer owns the per-device frequency-bias database behind sharded
// locks and applies the §7.2 verdict once per frame. All methods are safe
// for concurrent use from any number of gateways.
type NetworkServer struct {
	tol    float64
	devMul float64
	alpha  float64
	enroll int
	ttl    float64

	shards []shard

	// win is the streaming dedup window (nil when disabled), guarded by
	// winMu; health is the gateway health tracker (nil when disabled).
	// Lock order: winMu may be held while taking shard locks (window
	// commits fold into the database); shard locks never take winMu.
	winMu  sync.Mutex
	win    *window
	health *healthTracker

	// latest is the max observation ArrivalTime seen, as float64 bits —
	// the "now" of the TTL sweep, so aging follows the deployment's own
	// timeline instead of wall clock.
	latest atomic.Uint64

	framesChecked atomic.Int64
	observations  atomic.Int64
	duplicates    atomic.Int64
	evicted       atomic.Int64
	winMerged     atomic.Int64
	lateObs       atomic.Int64
	revised       atomic.Int64
	shed          atomic.Int64
	eventsDropped atomic.Int64
}

// New builds a NetworkServer with the given configuration.
func New(cfg Config) *NetworkServer {
	if cfg.ToleranceHz <= 0 {
		cfg.ToleranceHz = core.DefaultToleranceHz
	}
	if cfg.DevMultiplier <= 0 {
		cfg.DevMultiplier = core.DefaultDevMultiplier
	}
	if cfg.Alpha <= 0 || cfg.Alpha > 1 {
		cfg.Alpha = core.DefaultEWMAAlpha
	}
	if cfg.EnrollFrames <= 0 {
		cfg.EnrollFrames = core.DefaultEnrollFrames
	}
	n := cfg.Shards
	if n <= 0 {
		n = DefaultShards
	}
	// Round up to a power of two so shardFor can mask instead of mod.
	pow := 1
	for pow < n {
		pow <<= 1
	}
	s := &NetworkServer{
		tol:    cfg.ToleranceHz,
		devMul: cfg.DevMultiplier,
		alpha:  cfg.Alpha,
		enroll: cfg.EnrollFrames,
		ttl:    cfg.RecordTTL,
		shards: make([]shard, pow),
	}
	for i := range s.shards {
		s.shards[i].devices = make(map[string]*core.BiasRecord) //softlora:lock-ok constructor; the server is not shared yet
	}
	if cfg.Window.Hold > 0 {
		s.win = newWindow(cfg.Window)
	}
	if cfg.Health.Enabled {
		s.health = newHealthTracker(cfg.Health)
	}
	return s
}

// fnv32a is an inlined allocation-free FNV-1a over the device ID —
// hash/fnv's New32a would heap-allocate on the per-frame Check hot path.
//
//softlora:hotpath
func fnv32a(s string) uint32 {
	const offset32, prime32 = 2166136261, 16777619
	h := uint32(offset32)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= prime32
	}
	return h
}

// shardFor maps a device ID onto its partition.
//
//softlora:hotpath
func (s *NetworkServer) shardFor(deviceID string) *shard {
	return &s.shards[fnv32a(deviceID)&uint32(len(s.shards)-1)]
}

// checkDevice applies the shared §7.2 record policy under the device's
// shard lock, stamping the record's LastSeen with the frame's arrival time
// and marking the shard dirty for the incremental flusher. A replay verdict
// still touches LastSeen: the device is demonstrably of interest, and
// evicting a record mid-attack would let the attacker re-enroll as the
// device it is impersonating.
//
//softlora:hotpath
//softlora:allocfree
func (s *NetworkServer) checkDevice(deviceID string, fbHz, now float64) core.Verdict {
	sh := s.shardFor(deviceID)
	sh.mu.Lock()
	verdict, rec := core.CheckRecord(sh.devices[deviceID], fbHz, s.tol, s.devMul, s.alpha, s.enroll)
	if rec != nil {
		rec.Touch(now)
		sh.devices[deviceID] = rec
		sh.markDirty()
	}
	sh.mu.Unlock()
	s.observeTime(now)
	s.framesChecked.Add(1)
	return verdict
}

// observeTime advances the server's notion of "now" on the observation
// timeline (monotonic max). Non-finite and non-advancing times are
// ignored; the common case is one load + compare, no CAS.
func (s *NetworkServer) observeTime(now float64) {
	if math.IsNaN(now) || math.IsInf(now, 0) {
		return
	}
	for {
		old := s.latest.Load()
		if now <= math.Float64frombits(old) {
			return
		}
		if s.latest.CompareAndSwap(old, math.Float64bits(now)) {
			return
		}
	}
}

// LatestObservation returns the newest ArrivalTime the server has seen —
// the TTL sweep's reference clock.
func (s *NetworkServer) LatestObservation() float64 {
	return math.Float64frombits(s.latest.Load())
}

// Check judges a single-receiver frame: the observation is its own frame
// (no fusion) and the database is read and updated once, under the
// device's shard lock. This is the single-gateway hot path.
//
// With the streaming window enabled and a non-empty FrameID, Check
// ingests the observation instead: if the frame commits during this call
// (it filled to MaxReceivers) its verdict is returned, otherwise
// core.VerdictPending — the committed verdict surfaces later from
// CheckBatch, PollWindow, AdvanceWindow or DrainWindow.
func (s *NetworkServer) Check(obs PHYObservation) core.Verdict {
	if s.win != nil && obs.FrameID != "" {
		return s.ingestOne(obs)
	}
	s.observations.Add(1)
	return s.checkDevice(obs.DeviceID, obs.FBHz, obs.ArrivalTime)
}

// Frame-level errors.
var (
	ErrNoObservations = errors.New("netserver: frame has no observations")
	ErrMixedFrame     = errors.New("netserver: observations from different devices in one frame")
	ErrNoDevice       = errors.New("netserver: observation without a device ID")
)

// ConsistencySigma is the outlier gate of Fuse: an observation whose FB
// disagrees with the best receiver's by more than this many combined
// standard deviations is excluded from the weighted mean. Estimation errors
// are jitter-sized Gaussians only while a receiver holds the tone; a
// receiver that lost it (deep-fade link) returns a gross outlier that
// inverse-variance weighting alone cannot discount enough. A replay's bias
// shift is common-mode across receivers, so the gate never masks one.
const ConsistencySigma = 8

// effJitter returns an observation's usable jitter: DefaultJitterHz when
// the PHY stage could not estimate one.
func effJitter(o PHYObservation) float64 {
	j := o.JitterHz
	if j <= 0 || math.IsNaN(j) || math.IsInf(j, 0) {
		return DefaultJitterHz
	}
	return j
}

// Fuse combines multi-receiver observations of one frame into a fused FB
// estimate: the lowest-jitter receiver with a finite estimate anchors the
// fusion (and provides the PHY timestamp), observations inconsistent with
// it beyond ConsistencySigma — or with a non-finite FB — are rejected as
// outliers, and the rest are averaged by inverse-variance weight. If no
// receiver produced a finite estimate the fused FB is NaN, which the
// verdict stage fails closed on (core.CheckRecord flags non-finite
// estimates as replays without touching the database). Fuse itself does
// not touch the database. Observations without a device ID are rejected
// with ErrNoDevice: a nameless frame would fold every such device into
// one shared record.
func Fuse(obs []PHYObservation) (FrameVerdict, error) {
	return fuseDetail(obs, nil, nil)
}

// fuseDetail is Fuse with two optional slices. When rejected is non-nil
// (len(obs)), rejected[i] reports whether the fusion's consistency gate
// excluded obs[i] — the health tracker's raw material. When elect is
// non-nil (len(obs)), elect[i] multiplies obs[i]'s jitter in the anchor
// election ONLY (the health tracker's per-gateway penalty, see
// electWeightLocked): a sick receiver stops winning the lowest-jitter
// election — and with it the frame's PHY timestamp — by reporting an
// optimistic jitter, while the consistency gate and the inverse-variance
// averaging still use every copy's raw jitter, so the fused numbers are
// unchanged unless the anchor actually moves.
func fuseDetail(obs []PHYObservation, rejected []bool, elect []float64) (FrameVerdict, error) {
	if len(obs) == 0 {
		return FrameVerdict{}, ErrNoObservations
	}
	if obs[0].DeviceID == "" {
		return FrameVerdict{}, ErrNoDevice
	}
	fv := FrameVerdict{
		DeviceID:  obs[0].DeviceID,
		FrameID:   obs[0].FrameID,
		Receivers: len(obs),
	}
	ew := func(i int) float64 {
		if i < len(elect) {
			return elect[i]
		}
		return 1
	}
	best := -1
	for i, o := range obs {
		if o.DeviceID != fv.DeviceID {
			return FrameVerdict{}, fmt.Errorf("%w: %q vs %q", ErrMixedFrame, o.DeviceID, fv.DeviceID)
		}
		if math.IsNaN(o.FBHz) || math.IsInf(o.FBHz, 0) {
			continue
		}
		if best < 0 || effJitter(o)*ew(i) < effJitter(obs[best])*ew(best) {
			best = i
		}
	}
	if best < 0 {
		fv.FBHz = math.NaN()
		fv.JitterHz = math.NaN()
		fv.OutliersRejected = len(obs)
		fv.ArrivalTime = obs[0].ArrivalTime
		fv.GatewayID = obs[0].GatewayID
		for i := range rejected {
			rejected[i] = true
		}
		return fv, nil
	}
	bestJ := effJitter(obs[best])
	var sumW, sumWFB float64
	for i, o := range obs {
		j := effJitter(o)
		gate := ConsistencySigma * math.Hypot(j, bestJ)
		if !(math.Abs(o.FBHz-obs[best].FBHz) <= gate) {
			fv.OutliersRejected++
			if rejected != nil {
				rejected[i] = true
			}
			continue
		}
		w := 1 / (j * j)
		sumW += w
		sumWFB += w * o.FBHz
	}
	fv.FBHz = sumWFB / sumW
	fv.JitterHz = 1 / math.Sqrt(sumW)
	fv.ArrivalTime = obs[best].ArrivalTime
	fv.GatewayID = obs[best].GatewayID
	return fv, nil
}

// commitObs is the single commit path every frame takes — CheckFrame,
// window commits and window sheds all end here: health-filter the copies,
// fuse what remains, fold the fused estimate into the database once, and
// feed the per-receiver outcomes back to the health tracker. Copies from
// quarantined gateways are excluded from the fusion unless every copy is
// quarantined (fail open: the frame must still be judged).
func (s *NetworkServer) commitObs(obs []PHYObservation) (FrameVerdict, error) {
	active, excluded := obs, []PHYObservation(nil)
	var rejected []bool
	var elect []float64
	if s.health != nil {
		active, excluded, elect = s.health.filter(obs)
		rejected = make([]bool, len(active))
	}
	fv, err := fuseDetail(active, rejected, elect)
	if err != nil {
		return fv, err
	}
	fv.Receivers = len(obs)
	fv.QuarantinedExcluded = len(excluded)
	fv.Verdict = s.checkDevice(fv.DeviceID, fv.FBHz, fv.ArrivalTime)
	if s.health != nil {
		s.health.observe(&fv, active, rejected, excluded, refArrival(obs))
	}
	return fv, nil
}

// peekVerdict evaluates the §7.2 policy against a copy of the device's
// current record without folding anything — the read-only re-check late
// window reconciliation uses. The copy is judged against the database as
// it stands now, after the frame's original fold.
func (s *NetworkServer) peekVerdict(deviceID string, fbHz float64) core.Verdict {
	sh := s.shardFor(deviceID)
	sh.mu.RLock()
	rec, ok := sh.devices[deviceID]
	var cp core.BiasRecord
	if ok {
		cp = *rec
	}
	sh.mu.RUnlock()
	var rp *core.BiasRecord
	if ok {
		rp = &cp
	}
	v, _ := core.CheckRecord(rp, fbHz, s.tol, s.devMul, s.alpha, s.enroll)
	return v
}

// CheckFrame judges one frame heard by one or more receivers: the
// observations (all from the same claimed device) are fused and the §7.2
// verdict runs once, so N receivers cause one database update, not N.
// CheckFrame is the "every copy already in hand" path: it judges
// immediately even when the streaming window is enabled (use Check or
// CheckBatch to let copies accumulate across calls).
func (s *NetworkServer) CheckFrame(obs []PHYObservation) (FrameVerdict, error) {
	fv, err := s.commitObs(obs)
	if err != nil {
		return fv, err
	}
	s.observations.Add(int64(len(obs)))
	s.duplicates.Add(int64(len(obs) - 1))
	return fv, nil
}

// CheckBatch judges a batch of observations from any number of gateways:
// observations sharing (DeviceID, FrameID) deduplicate into one frame
// (empty FrameIDs never merge), frames commit in ascending UplinkIndex
// (ties broken by first appearance), and one FrameVerdict per frame is
// returned in commit order. Database state after a CheckBatch is therefore
// a pure function of the batch's contents, regardless of how the
// observations were gathered or ordered by the callers.
//
// A mid-batch error returns the verdicts of the frames that already
// committed ALONGSIDE the error — their database folds have happened, and
// the caller must be able to see them.
//
// With the streaming window enabled, CheckBatch instead ingests the
// observations into the cross-call window and returns every FrameVerdict
// that committed during the call — including frames opened by earlier
// calls whose hold expired, and Revised events from late reconciliation.
// The returned verdicts need not correspond to this call's frames.
func (s *NetworkServer) CheckBatch(obs []PHYObservation) ([]FrameVerdict, error) {
	if s.win != nil {
		return s.ingestBatch(obs)
	}
	type group struct {
		key   string
		index int64 // min UplinkIndex of the group
		obs   []PHYObservation
	}
	var groups []*group
	byKey := make(map[string]*group, len(obs))
	for _, o := range obs {
		key := ""
		if o.FrameID != "" {
			// The key embeds the device ID, so a FrameID collision across
			// devices yields separate frames rather than a mixed group.
			key = o.DeviceID + "\x00" + o.FrameID
		}
		if key != "" {
			if g, ok := byKey[key]; ok {
				g.obs = append(g.obs, o)
				if o.UplinkIndex < g.index {
					g.index = o.UplinkIndex
				}
				continue
			}
		}
		g := &group{key: key, index: o.UplinkIndex, obs: []PHYObservation{o}}
		groups = append(groups, g)
		if key != "" {
			byKey[key] = g
		}
	}
	sort.SliceStable(groups, func(i, j int) bool { return groups[i].index < groups[j].index })
	verdicts := make([]FrameVerdict, 0, len(groups))
	for _, g := range groups {
		fv, err := s.CheckFrame(g.obs)
		if err != nil {
			return verdicts, fmt.Errorf("netserver: frame %d of batch (device %q, frame %q): %w",
				len(verdicts), g.obs[0].DeviceID, g.obs[0].FrameID, err)
		}
		verdicts = append(verdicts, fv)
	}
	return verdicts, nil
}

// Enroll pre-loads a device record (offline database construction, §7.2).
func (s *NetworkServer) Enroll(deviceID string, fbHz float64, frames int) {
	if frames < 1 {
		frames = 1
	}
	sh := s.shardFor(deviceID)
	sh.mu.Lock()
	sh.devices[deviceID] = &core.BiasRecord{Mean: fbHz, Min: fbHz, Max: fbHz, Count: frames}
	sh.markDirty()
	sh.mu.Unlock()
}

// Record returns a copy of the learned state for a device and whether it
// exists.
func (s *NetworkServer) Record(deviceID string) (core.BiasRecord, bool) {
	sh := s.shardFor(deviceID)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	rec, ok := sh.devices[deviceID]
	if !ok {
		return core.BiasRecord{}, false
	}
	return *rec, true
}

// Devices returns the number of devices in the database.
func (s *NetworkServer) Devices() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		n += len(sh.devices)
		sh.mu.RUnlock()
	}
	return n
}

// Stats returns the cumulative counters.
func (s *NetworkServer) Stats() Stats {
	st := Stats{
		FramesChecked:        s.framesChecked.Load(),
		Observations:         s.observations.Load(),
		DuplicatesSuppressed: s.duplicates.Load(),
		Evicted:              s.evicted.Load(),
		WindowMerged:         s.winMerged.Load(),
		LateObservations:     s.lateObs.Load(),
		VerdictsRevised:      s.revised.Load(),
		WindowShed:           s.shed.Load(),
		WindowEventsDropped:  s.eventsDropped.Load(),
	}
	if s.health != nil {
		st.GatewaysQuarantined = s.health.quarantines.Load()
	}
	return st
}

// EvictExpired removes device records whose LastSeen is older than ttl
// seconds before now (both on the observation timeline) and returns how
// many were evicted. Records with a zero LastSeen — written before aging
// existed, or enrolled offline — are stamped with now on the first sweep
// instead of evicted, so a freshly migrated fleet gets a full TTL of grace
// rather than being wiped by its first sweep. ttl <= 0 is a no-op. Shards
// that lose records are marked dirty so the next flush persists the
// eviction.
func (s *NetworkServer) EvictExpired(now, ttl float64) int {
	if ttl <= 0 || math.IsNaN(now) || math.IsInf(now, 0) {
		return 0
	}
	horizon := now - ttl
	total := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		n := 0
		//softlora:nondeterministic-ok per-record predicate; the surviving set and count are order-independent
		for id, rec := range sh.devices {
			if rec.LastSeen == 0 {
				rec.LastSeen = now
				continue
			}
			if rec.LastSeen < horizon {
				delete(sh.devices, id)
				n++
			}
		}
		if n > 0 {
			sh.markDirty()
		}
		sh.mu.Unlock()
		total += n
	}
	if total > 0 {
		s.evicted.Add(int64(total))
	}
	return total
}

// Sweep runs EvictExpired at the server's configured TTL against its own
// latest observed time — the form the background Flusher calls each cycle.
func (s *NetworkServer) Sweep() int {
	return s.EvictExpired(s.LatestObservation(), s.ttl)
}

// snapshotShard copies shard i's records under its read lock, appending to
// dst — the flusher serializes and writes the copy outside the lock so a
// slow disk never stalls verdict traffic. Records are deep-copied: the
// originals keep mutating under Check while the flush encodes.
func (s *NetworkServer) snapshotShard(i int, dst map[string]core.BiasRecord) map[string]core.BiasRecord {
	sh := &s.shards[i]
	sh.mu.RLock()
	if dst == nil {
		dst = make(map[string]core.BiasRecord, len(sh.devices))
	}
	//softlora:nondeterministic-ok copies into a map; encodeSnapshot sorts IDs before encoding
	for id, rec := range sh.devices {
		dst[id] = *rec
	}
	sh.mu.RUnlock()
	return dst
}

// installShards replaces the whole database with devices, re-hashed onto
// the current shard count: a concurrent Check serializes against each
// shard's lock and sees either the old or the new record set for its
// shard, never a torn mix within one. Every shard is marked dirty so the
// first flush after a load persists the full database (this is also what
// migrates a legacy monolithic snapshot to sharded files).
func (s *NetworkServer) installShards(devices map[string]*core.BiasRecord) {
	staged := make([]map[string]*core.BiasRecord, len(s.shards))
	for i := range staged {
		staged[i] = make(map[string]*core.BiasRecord)
	}
	//softlora:nondeterministic-ok re-hashing into maps; shard assignment is a pure function of the ID
	for id, rec := range devices {
		staged[fnv32a(id)&uint32(len(s.shards)-1)][id] = rec
	}
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		sh.devices = staged[i]
		sh.markDirty()
		sh.mu.Unlock()
	}
}

// Save serializes the database as JSON — the same schema
// core.ReplayDetector writes, so databases move between a single gateway
// and the network server unchanged. Shards are merged and keys sorted by
// the encoder, so equal database states serialize to equal bytes.
//
// Save offers no atomicity: it writes whatever the caller's io.Writer is.
// Use SaveFile (temp + fsync + rename + checksum) for a durable single
// file, or a Snapshotter/Flusher for sharded incremental snapshots.
func (s *NetworkServer) Save(w io.Writer) error {
	merged := make(map[string]*core.BiasRecord, s.Devices())
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		//softlora:nondeterministic-ok merges into a map; encoding/json sorts map keys
		for id, rec := range sh.devices {
			cp := *rec
			merged[id] = &cp
		}
		sh.mu.RUnlock()
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(merged); err != nil {
		return fmt.Errorf("netserver: saving bias database: %w", err)
	}
	return nil
}

// Load replaces the database from JSON previously written by Save (or by
// core.ReplayDetector.Save). Every record is validated first
// (core.ErrBadDatabase otherwise) and a failed load leaves the current
// database untouched.
func (s *NetworkServer) Load(r io.Reader) error {
	var devices map[string]*core.BiasRecord
	if err := json.NewDecoder(r).Decode(&devices); err != nil {
		return fmt.Errorf("%w: %v", core.ErrBadDatabase, err)
	}
	if err := core.ValidateDatabase(devices); err != nil {
		return err
	}
	s.installShards(devices)
	return nil
}
