package netserver

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"softlora/internal/core"
	"softlora/internal/faultinject"
	"softlora/internal/vfs"
)

func TestFlusherPersistsInBackground(t *testing.T) {
	dir := t.TempDir()
	s := New(Config{})
	f, err := StartFlusher(s, dir, FlusherOptions{Interval: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	populate(s, 50, 11)
	deadline := time.Now().Add(5 * time.Second)
	for {
		fresh := New(Config{})
		if _, err := fresh.LoadDir(nil, dir); err != nil {
			t.Fatal(err)
		}
		if fresh.Devices() == 50 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("background flusher never persisted the fleet (on disk: %d devices)", fresh.Devices())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	st := f.Stats()
	if st.Cycles == 0 || st.ShardsFlushed == 0 {
		t.Errorf("flusher stats = %+v", st)
	}
}

func TestFlusherCloseFlushesOutstandingDirtyShards(t *testing.T) {
	dir := t.TempDir()
	s := New(Config{})
	// Interval far beyond the test's lifetime: only Close can flush.
	f, err := StartFlusher(s, dir, FlusherOptions{Interval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	populate(s, 30, 12)
	want := dump(s)
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	fresh := New(Config{})
	if _, err := fresh.LoadDir(nil, dir); err != nil {
		t.Fatal(err)
	}
	equalDB(t, want, dump(fresh), "after Close final flush")
}

func TestFlusherRetriesWithBackoffThenConverges(t *testing.T) {
	dir := t.TempDir()
	s := New(Config{})
	populate(s, 40, 13)
	want := dump(s)
	inj := faultinject.New(vfs.OS{})
	// The first three sync ops fail: the first flush attempt dies, two
	// backoff retries also hit faults, the third retry goes through.
	inj.FailAt(faultinject.OpSync, 1, faultinject.KindFail)
	inj.FailAt(faultinject.OpSync, 2, faultinject.KindENOSPC)
	inj.FailAt(faultinject.OpSync, 3, faultinject.KindFail)
	f, err := StartFlusher(s, dir, FlusherOptions{
		Interval: time.Hour, // driven manually via FlushNow
		FS:       inj,
		Backoff:  time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.FlushNow(); err != nil {
		t.Fatalf("flush did not converge through retries: %v", err)
	}
	st := f.Stats()
	if st.Errors != 3 || st.Retries != 3 || st.GaveUp != 0 {
		t.Errorf("stats = %+v, want 3 errors / 3 retries / 0 give-ups", st)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	fresh := New(Config{})
	if _, err := fresh.LoadDir(nil, dir); err != nil {
		t.Fatal(err)
	}
	equalDB(t, want, dump(fresh), "after retried flush")
}

func TestFlusherGivesUpAfterBoundedRetriesThenRecovers(t *testing.T) {
	dir := t.TempDir()
	s := New(Config{})
	populate(s, 20, 14)
	want := dump(s)
	inj := faultinject.New(vfs.OS{})
	// More consecutive faults than the retry budget: the cycle must give
	// up (bounded, not infinite) and leave the shards dirty.
	for i := 1; i <= 20; i++ {
		inj.FailAt(faultinject.OpCreate, i, faultinject.KindENOSPC)
	}
	f, err := StartFlusher(s, dir, FlusherOptions{
		Interval:   time.Hour,
		FS:         inj,
		Backoff:    time.Millisecond,
		MaxRetries: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.FlushNow(); err == nil {
		t.Fatal("flush succeeded through a disk that always fails")
	}
	if st := f.Stats(); st.GaveUp != 1 {
		t.Errorf("stats = %+v, want one gave-up cycle", st)
	}
	// The "disk" heals (faults exhausted by the failed attempts? no —
	// Create faults 4..20 still armed; clear them).
	inj.Reset()
	if err := f.FlushNow(); err != nil {
		t.Fatalf("flush after disk recovery: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	fresh := New(Config{})
	if _, err := fresh.LoadDir(nil, dir); err != nil {
		t.Fatal(err)
	}
	equalDB(t, want, dump(fresh), "after disk recovery")
}

func TestEvictExpired(t *testing.T) {
	s := New(Config{RecordTTL: 100})
	// Three devices: fresh, stale, and never-stamped (legacy).
	s.Enroll("fresh", -22000, 3)
	s.Enroll("stale", -21000, 3)
	s.Enroll("legacy", -20000, 3)
	s.Check(PHYObservation{DeviceID: "fresh", FBHz: -22000, ArrivalTime: 950})
	s.Check(PHYObservation{DeviceID: "stale", FBHz: -21000, ArrivalTime: 700})
	// First sweep at t=1000: stale (last seen 700, horizon 900) goes;
	// legacy (never stamped) is granted a fresh TTL instead of dying.
	if n := s.EvictExpired(1000, 100); n != 1 {
		t.Fatalf("evicted %d, want 1", n)
	}
	if _, ok := s.Record("stale"); ok {
		t.Error("stale record survived the sweep")
	}
	if _, ok := s.Record("legacy"); !ok {
		t.Error("legacy (unstamped) record was evicted on its first sweep")
	}
	if _, ok := s.Record("fresh"); !ok {
		t.Error("fresh record was evicted")
	}
	// Second sweep: fresh (last seen 950) ages out against horizon 980,
	// the grace-stamped legacy record (stamped 1000) survives.
	if n := s.EvictExpired(1080, 100); n != 1 {
		t.Errorf("second sweep evicted %d, want 1 (the t=950 record)", n)
	}
	if _, ok := s.Record("legacy"); !ok {
		t.Error("grace-stamped legacy record evicted early")
	}
	// Third sweep: the grace stamp itself ages out.
	if n := s.EvictExpired(1150, 100); n != 1 {
		t.Errorf("third sweep evicted %d, want 1 (the stamped legacy record)", n)
	}
	if st := s.Stats(); st.Evicted != 3 {
		t.Errorf("Stats.Evicted = %d, want 3", st.Evicted)
	}
	// TTL 0 disables aging entirely.
	if n := s.EvictExpired(1e9, 0); n != 0 {
		t.Errorf("ttl=0 sweep evicted %d", n)
	}
}

func TestSweepUsesObservationClock(t *testing.T) {
	s := New(Config{RecordTTL: 50})
	s.Check(PHYObservation{DeviceID: "old", FBHz: -22000, ArrivalTime: 10})
	s.Check(PHYObservation{DeviceID: "new", FBHz: -21000, ArrivalTime: 100})
	if got := s.LatestObservation(); got != 100 {
		t.Fatalf("LatestObservation = %v", got)
	}
	if n := s.Sweep(); n != 1 {
		t.Fatalf("Sweep evicted %d, want 1 (the t=10 record against horizon 50)", n)
	}
	if _, ok := s.Record("new"); !ok {
		t.Error("current record evicted")
	}
}

func TestEvictionPersistsThroughFlush(t *testing.T) {
	dir := t.TempDir()
	s := New(Config{RecordTTL: 100})
	s.Check(PHYObservation{DeviceID: "old", FBHz: -22000, ArrivalTime: 10})
	s.Check(PHYObservation{DeviceID: "new", FBHz: -21000, ArrivalTime: 500})
	sn, err := NewSnapshotter(nil, dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sn.FlushDirty(s); err != nil {
		t.Fatal(err)
	}
	if n := s.Sweep(); n != 1 {
		t.Fatalf("evicted %d, want 1", n)
	}
	// The eviction dirtied the shard; the next flush must persist it.
	if n, err := sn.FlushDirty(s); err != nil || n == 0 {
		t.Fatalf("post-eviction flush wrote %d shards (err %v)", n, err)
	}
	fresh := New(Config{})
	if _, err := fresh.LoadDir(nil, dir); err != nil {
		t.Fatal(err)
	}
	if _, ok := fresh.Record("old"); ok {
		t.Error("evicted record resurrected from disk")
	}
	if _, ok := fresh.Record("new"); !ok {
		t.Error("live record lost")
	}
}

// TestVerdictsUnaffectedByFlusherTiming runs the same observation sequence
// against a bare server and against one with an aggressive background
// flusher (and fault-injected disk trouble): verdicts and final records
// must be bit-identical — persistence is an observer, never a participant.
func TestVerdictsUnaffectedByFlusherTiming(t *testing.T) {
	obs := make([]PHYObservation, 0, 600)
	rng := rand.New(rand.NewSource(77))
	for i := 0; i < 600; i++ {
		id := fmt.Sprintf("dev-%d", rng.Intn(20))
		fb := -22000 + rng.NormFloat64()*60
		if rng.Intn(15) == 0 {
			fb -= 700
		}
		obs = append(obs, PHYObservation{DeviceID: id, FBHz: fb, ArrivalTime: float64(i)})
	}
	bare := New(Config{})
	wantVerdicts := make([]core.Verdict, len(obs))
	for i, o := range obs {
		wantVerdicts[i] = bare.Check(o)
	}

	inj := faultinject.New(vfs.OS{})
	inj.Probabilistic(rand.New(rand.NewSource(5)), 0.2,
		faultinject.KindShortWrite, faultinject.KindENOSPC, faultinject.KindFail)
	flushed := New(Config{})
	f, err := StartFlusher(flushed, t.TempDir(), FlusherOptions{
		Interval: time.Millisecond,
		FS:       inj,
		Backoff:  time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, o := range obs {
		if v := flushed.Check(o); v != wantVerdicts[i] {
			t.Fatalf("obs %d: verdict %v with flusher, %v without", i, v, wantVerdicts[i])
		}
		if i%100 == 0 {
			time.Sleep(2 * time.Millisecond) // let flush cycles interleave
		}
	}
	_ = f.Close() // faults may leave the final flush failing; state check below
	equalDB(t, dump(bare), dump(flushed), "records with vs without flusher")
}

// TestConcurrentCheckBatchFlushEvict is the -race exercise: many gateways
// hammer CheckBatch while the background flusher snapshots shards, the TTL
// sweep evicts, and readers poll Record/Devices/Stats — no deadlocks, no
// data races, and the loop terminates.
func TestConcurrentCheckBatchFlushEvict(t *testing.T) {
	dir := t.TempDir()
	s := New(Config{RecordTTL: 50})
	f, err := StartFlusher(s, dir, FlusherOptions{Interval: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	const gateways = 8
	var wg sync.WaitGroup
	for g := 0; g < gateways; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for round := 0; round < 50; round++ {
				batch := make([]PHYObservation, 0, 16)
				for i := 0; i < 16; i++ {
					batch = append(batch, PHYObservation{
						GatewayID:   fmt.Sprintf("gw-%d", g),
						DeviceID:    fmt.Sprintf("dev-%d", rng.Intn(200)),
						FrameID:     fmt.Sprintf("f-%d-%d-%d", g, round, i),
						UplinkIndex: int64(round*16 + i),
						FBHz:        -22000 + rng.NormFloat64()*50,
						ArrivalTime: float64(round*16 + i),
					})
				}
				if _, err := s.CheckBatch(batch); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	// Concurrent readers and sweeps.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			s.Record(fmt.Sprintf("dev-%d", i%200))
			s.Devices()
			s.Stats()
			s.Sweep()
		}
	}()
	wg.Wait()
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	// The final on-disk state equals the final in-memory state.
	fresh := New(Config{})
	if _, err := fresh.LoadDir(nil, dir); err != nil {
		t.Fatal(err)
	}
	equalDB(t, dump(s), dump(fresh), "after concurrent hammer")
}
