package netserver

import (
	"testing"

	"softlora/internal/core"
)

// healthServer builds a server with the health tracker on a short fuse so
// tests converge quickly, and "n" enrolled at -22000 Hz.
func healthServer(t *testing.T) *NetworkServer {
	t.Helper()
	s := New(Config{Health: HealthConfig{
		Enabled: true, Window: 8, MinSamples: 4, Probation: 4,
	}})
	s.Enroll("n", -22000, 10)
	return s
}

// frame3 is one frame heard by two honest gateways and one with the given
// FB and arrival offsets.
func frame3(i int, badFB, badSkew float64) []PHYObservation {
	at := float64(i)
	return []PHYObservation{
		{GatewayID: "ga", DeviceID: "n", FrameID: frameID(i), UplinkIndex: int64(i),
			FBHz: -22010, JitterHz: 40, ArrivalTime: at},
		{GatewayID: "gb", DeviceID: "n", FrameID: frameID(i), UplinkIndex: int64(i),
			FBHz: -21990, JitterHz: 40, ArrivalTime: at},
		{GatewayID: "gx", DeviceID: "n", FrameID: frameID(i), UplinkIndex: int64(i),
			FBHz: -22000 + badFB, JitterHz: 40, ArrivalTime: at + badSkew},
	}
}

func TestHealthQuarantinesPersistentOutlier(t *testing.T) {
	s := healthServer(t)
	// gx returns gross outliers (a deep-fade link that lost the tone)
	// frame after frame: the fusion gate rejects each copy, and after
	// MinSamples the tracker quarantines the gateway.
	var last FrameVerdict
	for i := 0; i < 8; i++ {
		fv, err := s.CheckFrame(frame3(i, 90000, 0))
		if err != nil {
			t.Fatal(err)
		}
		last = fv
	}
	if got := s.QuarantinedGateways(); len(got) != 1 || got[0] != "gx" {
		t.Fatalf("quarantined = %v, want [gx]", got)
	}
	if last.QuarantinedExcluded != 1 {
		t.Fatalf("last verdict QuarantinedExcluded = %d, want 1", last.QuarantinedExcluded)
	}
	if st := s.Stats(); st.GatewaysQuarantined != 1 {
		t.Fatalf("GatewaysQuarantined = %d, want 1", st.GatewaysQuarantined)
	}
}

func TestHealthQuarantinesSkewedClock(t *testing.T) {
	s := healthServer(t)
	// gx agrees on FB but its PHY clock is 200 ms off the elected
	// receivers — useless for timestamping, quarantined on skew alone.
	for i := 0; i < 8; i++ {
		if _, err := s.CheckFrame(frame3(i, 0, 0.2)); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.QuarantinedGateways(); len(got) != 1 || got[0] != "gx" {
		t.Fatalf("quarantined = %v, want [gx]", got)
	}
}

func TestHealthProbationReinstates(t *testing.T) {
	s := healthServer(t)
	i := 0
	for ; i < 8; i++ {
		s.CheckFrame(frame3(i, 90000, 0))
	}
	if len(s.QuarantinedGateways()) != 1 {
		t.Fatal("setup: gx should be quarantined")
	}
	// gx behaves again: its shadow samples (judged against the fusion it
	// no longer joins) run a clean streak through probation.
	for n := 0; n < 8; n++ {
		s.CheckFrame(frame3(i, 0, 0))
		i++
	}
	if got := s.QuarantinedGateways(); len(got) != 0 {
		t.Fatalf("quarantined after probation = %v, want none", got)
	}
	// Reinstated for real: its copies join the fusion again.
	fv, err := s.CheckFrame(frame3(i, 0, 0))
	if err != nil {
		t.Fatal(err)
	}
	if fv.QuarantinedExcluded != 0 || fv.Receivers != 3 {
		t.Fatalf("post-recovery verdict: %+v", fv)
	}
}

func TestHealthRelapseCountsAgain(t *testing.T) {
	s := healthServer(t)
	i := 0
	sick := func() {
		for n := 0; n < 8; n++ {
			s.CheckFrame(frame3(i, 90000, 0))
			i++
		}
	}
	clean := func() {
		for n := 0; n < 8; n++ {
			s.CheckFrame(frame3(i, 0, 0))
			i++
		}
	}
	sick()
	clean()
	sick()
	if st := s.Stats(); st.GatewaysQuarantined != 2 {
		t.Fatalf("GatewaysQuarantined = %d, want 2 (relapse counts)", st.GatewaysQuarantined)
	}
}

func TestHealthFailsOpenWhenAllQuarantined(t *testing.T) {
	s := New(Config{Health: HealthConfig{
		Enabled: true, Window: 8, MinSamples: 4, Probation: 100,
	}})
	s.Enroll("n", -22000, 10)
	s.Enroll("m", -5000, 10)
	// Quarantine gx via skew against two healthy receivers.
	for i := 0; i < 8; i++ {
		if _, err := s.CheckFrame(frame3(i, 0, 0.2)); err != nil {
			t.Fatal(err)
		}
	}
	if len(s.QuarantinedGateways()) != 1 {
		t.Fatal("setup: gx should be quarantined")
	}
	// A frame heard ONLY by the quarantined gateway must still be judged.
	fv, err := s.CheckFrame([]PHYObservation{{
		GatewayID: "gx", DeviceID: "m", FrameID: "solo", FBHz: -5010,
		JitterHz: 40, ArrivalTime: 100,
	}})
	if err != nil {
		t.Fatal(err)
	}
	if fv.Verdict != core.VerdictGenuine || fv.QuarantinedExcluded != 0 {
		t.Fatalf("fail-open verdict: %+v", fv)
	}
}

func TestHealthDisabledIsTransparent(t *testing.T) {
	s := New(Config{})
	s.Enroll("n", -22000, 10)
	for i := 0; i < 20; i++ {
		if _, err := s.CheckFrame(frame3(i, 90000, 0.5)); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.QuarantinedGateways(); got != nil {
		t.Fatalf("disabled tracker quarantined %v", got)
	}
	if st := s.Stats(); st.GatewaysQuarantined != 0 {
		t.Fatalf("GatewaysQuarantined = %d, want 0", st.GatewaysQuarantined)
	}
}
