package netserver

import (
	"testing"

	"softlora/internal/core"
)

// healthServer builds a server with the health tracker on a short fuse so
// tests converge quickly, and "n" enrolled at -22000 Hz.
func healthServer(t *testing.T) *NetworkServer {
	t.Helper()
	s := New(Config{Health: HealthConfig{
		Enabled: true, Window: 8, MinSamples: 4, Probation: 4,
	}})
	s.Enroll("n", -22000, 10)
	return s
}

// frame3 is one frame heard by two honest gateways and one with the given
// FB and arrival offsets.
func frame3(i int, badFB, badSkew float64) []PHYObservation {
	at := float64(i)
	return []PHYObservation{
		{GatewayID: "ga", DeviceID: "n", FrameID: frameID(i), UplinkIndex: int64(i),
			FBHz: -22010, JitterHz: 40, ArrivalTime: at},
		{GatewayID: "gb", DeviceID: "n", FrameID: frameID(i), UplinkIndex: int64(i),
			FBHz: -21990, JitterHz: 40, ArrivalTime: at},
		{GatewayID: "gx", DeviceID: "n", FrameID: frameID(i), UplinkIndex: int64(i),
			FBHz: -22000 + badFB, JitterHz: 40, ArrivalTime: at + badSkew},
	}
}

func TestHealthQuarantinesPersistentOutlier(t *testing.T) {
	s := healthServer(t)
	// gx returns gross outliers (a deep-fade link that lost the tone)
	// frame after frame: the fusion gate rejects each copy, and after
	// MinSamples the tracker quarantines the gateway.
	var last FrameVerdict
	for i := 0; i < 8; i++ {
		fv, err := s.CheckFrame(frame3(i, 90000, 0))
		if err != nil {
			t.Fatal(err)
		}
		last = fv
	}
	if got := s.QuarantinedGateways(); len(got) != 1 || got[0] != "gx" {
		t.Fatalf("quarantined = %v, want [gx]", got)
	}
	if last.QuarantinedExcluded != 1 {
		t.Fatalf("last verdict QuarantinedExcluded = %d, want 1", last.QuarantinedExcluded)
	}
	if st := s.Stats(); st.GatewaysQuarantined != 1 {
		t.Fatalf("GatewaysQuarantined = %d, want 1", st.GatewaysQuarantined)
	}
}

func TestHealthQuarantinesSkewedClock(t *testing.T) {
	s := healthServer(t)
	// gx agrees on FB but its PHY clock is 200 ms off the elected
	// receivers — useless for timestamping, quarantined on skew alone.
	for i := 0; i < 8; i++ {
		if _, err := s.CheckFrame(frame3(i, 0, 0.2)); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.QuarantinedGateways(); len(got) != 1 || got[0] != "gx" {
		t.Fatalf("quarantined = %v, want [gx]", got)
	}
}

func TestHealthProbationReinstates(t *testing.T) {
	s := healthServer(t)
	i := 0
	for ; i < 8; i++ {
		s.CheckFrame(frame3(i, 90000, 0))
	}
	if len(s.QuarantinedGateways()) != 1 {
		t.Fatal("setup: gx should be quarantined")
	}
	// gx behaves again: its shadow samples (judged against the fusion it
	// no longer joins) run a clean streak through probation.
	for n := 0; n < 8; n++ {
		s.CheckFrame(frame3(i, 0, 0))
		i++
	}
	if got := s.QuarantinedGateways(); len(got) != 0 {
		t.Fatalf("quarantined after probation = %v, want none", got)
	}
	// Reinstated for real: its copies join the fusion again.
	fv, err := s.CheckFrame(frame3(i, 0, 0))
	if err != nil {
		t.Fatal(err)
	}
	if fv.QuarantinedExcluded != 0 || fv.Receivers != 3 {
		t.Fatalf("post-recovery verdict: %+v", fv)
	}
}

func TestHealthRelapseCountsAgain(t *testing.T) {
	s := healthServer(t)
	i := 0
	sick := func() {
		for n := 0; n < 8; n++ {
			s.CheckFrame(frame3(i, 90000, 0))
			i++
		}
	}
	clean := func() {
		for n := 0; n < 8; n++ {
			s.CheckFrame(frame3(i, 0, 0))
			i++
		}
	}
	sick()
	clean()
	sick()
	if st := s.Stats(); st.GatewaysQuarantined != 2 {
		t.Fatalf("GatewaysQuarantined = %d, want 2 (relapse counts)", st.GatewaysQuarantined)
	}
}

func TestHealthFailsOpenWhenAllQuarantined(t *testing.T) {
	s := New(Config{Health: HealthConfig{
		Enabled: true, Window: 8, MinSamples: 4, Probation: 100,
	}})
	s.Enroll("n", -22000, 10)
	s.Enroll("m", -5000, 10)
	// Quarantine gx via skew against two healthy receivers.
	for i := 0; i < 8; i++ {
		if _, err := s.CheckFrame(frame3(i, 0, 0.2)); err != nil {
			t.Fatal(err)
		}
	}
	if len(s.QuarantinedGateways()) != 1 {
		t.Fatal("setup: gx should be quarantined")
	}
	// A frame heard ONLY by the quarantined gateway must still be judged.
	fv, err := s.CheckFrame([]PHYObservation{{
		GatewayID: "gx", DeviceID: "m", FrameID: "solo", FBHz: -5010,
		JitterHz: 40, ArrivalTime: 100,
	}})
	if err != nil {
		t.Fatal(err)
	}
	if fv.Verdict != core.VerdictGenuine || fv.QuarantinedExcluded != 0 {
		t.Fatalf("fail-open verdict: %+v", fv)
	}
}

func TestHealthDisabledIsTransparent(t *testing.T) {
	s := New(Config{})
	s.Enroll("n", -22000, 10)
	for i := 0; i < 20; i++ {
		if _, err := s.CheckFrame(frame3(i, 90000, 0.5)); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.QuarantinedGateways(); got != nil {
		t.Fatalf("disabled tracker quarantined %v", got)
	}
	if st := s.Stats(); st.GatewaysQuarantined != 0 {
		t.Fatalf("GatewaysQuarantined = %d, want 0", st.GatewaysQuarantined)
	}
}

// TestHealthFilterElectionWeights unit-tests the weights filter hands the
// fusion's anchor election: 1 for clean or under-observed gateways,
// 1 + 4·outlierRate for flaky ones, and quarantine-dominated on the
// fail-open path.
func TestHealthFilterElectionWeights(t *testing.T) {
	h := newHealthTracker(HealthConfig{Enabled: true, Window: 8, MinSamples: 4})
	h.mu.Lock()
	for i := 0; i < 8; i++ {
		h.sample("ga", false, 0)    // clean
		h.sample("gx", i%2 == 1, 0) // flaky: rejection rate 0.5
		h.sample("gq", true, 0)     // hopeless: quarantined after MinSamples
	}
	h.mu.Unlock()

	active, excluded, elect := h.filter([]PHYObservation{
		{GatewayID: "ga"}, {GatewayID: "gx"}, {GatewayID: "gq"}, {GatewayID: "new"},
	})
	if len(active) != 3 || len(excluded) != 1 || excluded[0].GatewayID != "gq" {
		t.Fatalf("filter split: active %d, excluded %v", len(active), excluded)
	}
	if len(elect) != len(active) {
		t.Fatalf("elect len %d, active len %d", len(elect), len(active))
	}
	if elect[0] != 1 || elect[2] != 1 {
		t.Errorf("clean/under-observed weights = %v/%v, want 1/1", elect[0], elect[2])
	}
	if elect[1] != 3 { // 1 + 4·0.5
		t.Errorf("flaky gateway weight = %v, want 3", elect[1])
	}

	// Fail open: all copies quarantined stay active, but their election
	// weights keep the quarantine stain.
	active, excluded, elect = h.filter([]PHYObservation{{GatewayID: "gq"}})
	if len(active) != 1 || excluded != nil {
		t.Fatalf("fail-open split: active %d, excluded %v", len(active), excluded)
	}
	if elect[0] < quarantineElectWeight {
		t.Errorf("fail-open weight = %v, want >= %v", elect[0], quarantineElectWeight)
	}
}

// TestHealthElectionPenalizesOutlierProneAnchor drives the weighting end to
// end: a gateway with a 50% rejection rate — too flaky to trust, not flaky
// enough to quarantine — reports the frame's lowest jitter, and must still
// lose the anchor election (and with it the frame's PHY timestamp) to a
// clean receiver.
func TestHealthElectionPenalizesOutlierProneAnchor(t *testing.T) {
	s := healthServer(t)
	for i := 0; i < 8; i++ {
		bad := 0.0
		if i%2 == 1 {
			bad = 90000
		}
		if _, err := s.CheckFrame(frame3(i, bad, 0)); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.QuarantinedGateways(); len(got) != 0 {
		t.Fatalf("setup: gx should be flaky but not quarantined, got %v", got)
	}
	obs := []PHYObservation{
		{GatewayID: "ga", DeviceID: "n", FrameID: "anchor", FBHz: -22010, JitterHz: 40, ArrivalTime: 50},
		{GatewayID: "gb", DeviceID: "n", FrameID: "anchor", FBHz: -21990, JitterHz: 40, ArrivalTime: 50},
		{GatewayID: "gx", DeviceID: "n", FrameID: "anchor", FBHz: -22000, JitterHz: 30, ArrivalTime: 50.04},
	}
	// Control: raw fusion (no health signal) hands gx the anchor on its
	// optimistic jitter alone.
	raw, err := Fuse(obs)
	if err != nil {
		t.Fatal(err)
	}
	if raw.GatewayID != "gx" {
		t.Fatalf("control: raw fusion anchor = %q, want gx", raw.GatewayID)
	}
	fv, err := s.CheckFrame(obs)
	if err != nil {
		t.Fatal(err)
	}
	if fv.GatewayID == "gx" {
		t.Fatalf("outlier-prone gateway won the weighted anchor election: %+v", fv)
	}
	if fv.ArrivalTime != 50 {
		t.Fatalf("fused timestamp %v came from the flaky clock, want 50", fv.ArrivalTime)
	}
}
